#!/usr/bin/env python3
"""End-to-end smoke test of the live introspection server.

Drives the built gupt_cli binary the way an operator would:

  1. writes a small CSV dataset,
  2. runs `gupt_cli query --serve=0 --workers 4 --metrics-out=...` with
     `--amplification=raw --amplification-rate=0.25` (ephemeral
     introspection port, parsed from stdout); resampling (--gamma) is
     mutually exclusive with amplification and stays covered by the unit
     suites,
  3. while the process holds on stdin, scrapes /healthz, /metrics,
     /budgetz?format=json, /varz, /tracez, /slowz, /timeseriesz,
     /alertz, and a short /profilez capture over a real socket,
  4. lints both the scraped /metrics payload and the --metrics-out file
     with check_metrics_names.py --payload,
  5. checks the /budgetz ledger arithmetic — the run is amplified, so
     the spend must be the discounted epsilon' and the per-dataset
     amplification aggregates must reconcile with it exactly — and that
     /tracez is valid Chrome trace_event JSON with block spans,
  6. waits for the 100ms time-series collector to tick, then checks
     that /timeseriesz carries the budget series (spent == the /budgetz
     ledger) and /alertz the built-in rules, in both text and JSON,
     and that `gupt_cli alerts` / `gupt_cli top` render against the
     same live port,
  7. closes stdin and expects a clean exit.

Usage: introspect_smoke.py /path/to/gupt_cli /path/to/check_metrics_names.py
"""

import http.client
import json
import random
import re
import subprocess
import sys
import tempfile
import pathlib
import time


def fail(message: str) -> None:
    print(f"introspect_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def get(port: int, target: str, want_status: int = 200) -> tuple[str, str]:
    """GET http://127.0.0.1:port/target -> (content_type, body)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        connection.request("GET", target)
        response = connection.getresponse()
        body = response.read().decode("utf-8", errors="replace")
        if response.status != want_status:
            fail(
                f"GET {target}: status {response.status} "
                f"(want {want_status}): {body[:200]}"
            )
        return response.getheader("Content-Type", ""), body
    finally:
        connection.close()


def read_line(process: subprocess.Popen, pattern: str, deadline: float) -> str:
    """Reads stdout lines until one matches `pattern` (regex)."""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            fail(f"gupt_cli exited before printing /{pattern}/")
        sys.stdout.write("  cli| " + line)
        match = re.search(pattern, line)
        if match:
            return line
    fail(f"timed out waiting for /{pattern}/")
    raise AssertionError  # unreachable


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    cli = sys.argv[1]
    checker = sys.argv[2]

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="gupt_introspect_smoke_"))
    csv_path = workdir / "ages.csv"
    metrics_out = workdir / "metrics.prom"
    scraped = workdir / "scraped_metrics.prom"

    rng = random.Random(7)
    rows = "\n".join(str(rng.randint(18, 90)) for _ in range(4000))
    csv_path.write_text("age\n" + rows + "\n", encoding="utf-8")

    budget, epsilon = 5.0, 0.5
    process = subprocess.Popen(
        [
            cli, "query",
            f"--data={csv_path}", "--header",
            "--program=mean", "--params=dim=0",
            f"--epsilon={epsilon}", "--range=0,150", f"--budget={budget}",
            "--workers=4", "--seed=11",
            # Pad each block to a fixed 1.5ms cycle budget: with columnar
            # zero-copy blocks the raw per-block work is sub-microsecond and
            # a single pool worker can drain the whole queue before the
            # others wake, leaving every span on one lane. Padding makes the
            # multi-lane assertion below deterministic.
            "--pad-deadline-us=1500",
            # A fast collector cadence so /timeseriesz history and alert
            # evaluations accumulate within the smoke-test window.
            "--collector-period-ms=100",
            # Amplification: the query runs on a Bernoulli(0.25) subsample
            # (n_mech = 1000 rows -> ~16 default blocks, plenty for the
            # multi-lane assertion below), noise stays at --epsilon, and
            # the ledger is debited epsilon' = ln(1 + rate*(e^eps - 1)).
            "--amplification=raw", "--amplification-rate=0.25",
            "--serve=0", f"--metrics-out={metrics_out}",
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        deadline = time.monotonic() + 60
        serving = read_line(
            process, r"serving on http://127\.0\.0\.1:(\d+)/", deadline
        )
        port = int(re.search(r":(\d+)/", serving).group(1))
        # The query and the metrics file are done before the hold begins;
        # the amplified run must announce its discounted charge.
        read_line(process, r"amplification\s*:\s*raw_epsilon", deadline)
        read_line(process, r"metrics: written to", deadline)

        # --- /healthz -------------------------------------------------------
        _, health = get(port, "/healthz")
        if health.strip() != "ok":
            fail(f"/healthz body: {health!r}")

        # --- /metrics -------------------------------------------------------
        content_type, payload = get(port, "/metrics")
        if "text/plain" not in content_type:
            fail(f"/metrics content type: {content_type}")
        for needle in (
            "gupt_runtime_queries_total",
            "gupt_dp_epsilon_charged_total",
            "gupt_introspect_requests_total",
        ):
            if needle not in payload:
                fail(f"/metrics payload is missing {needle}")
        scraped.write_text(payload, encoding="utf-8")
        for target in (scraped, metrics_out):
            lint = subprocess.run(
                [sys.executable, checker, "--payload", str(target)],
                capture_output=True, text=True,
            )
            if lint.returncode != 0:
                fail(
                    f"payload lint of {target.name} failed:\n"
                    f"{lint.stdout}{lint.stderr}"
                )

        # --- /budgetz -------------------------------------------------------
        content_type, body = get(port, "/budgetz?format=json")
        if "application/json" not in content_type:
            fail(f"/budgetz content type: {content_type}")
        ledger = json.loads(body)
        datasets = ledger["datasets"]
        if len(datasets) != 1 or datasets[0]["dataset"] != "cli":
            fail(f"/budgetz datasets: {datasets}")
        entry = datasets[0]
        if entry["total_epsilon"] != budget:
            fail(f"total_epsilon {entry['total_epsilon']} != {budget}")
        # The run is amplified: the ledger holds epsilon' strictly below
        # the raw epsilon the noise was calibrated at.
        spent = entry["spent_epsilon"]
        if not 0.0 < spent < epsilon:
            fail(f"amplified spent_epsilon {spent} not in (0, {epsilon})")
        if entry["remaining_epsilon"] != budget - spent:
            fail(f"remaining_epsilon {entry['remaining_epsilon']}")
        if entry["num_charges"] != 1 or len(entry["charges"]) != 1:
            fail(f"charges: {entry['charges']}")
        if abs(sum(c["epsilon"] for c in entry["charges"]) - spent) > 0:
            fail("charge history does not sum to the spent total")
        amplification = entry.get("amplification")
        if amplification is None:
            fail("/budgetz entry has no amplification aggregates")
        if amplification["queries"] != 1:
            fail(f"amplification queries: {amplification['queries']}")
        if amplification["epsilon_raw"] != epsilon:
            fail(f"amplification epsilon_raw: {amplification['epsilon_raw']}")
        if amplification["epsilon_charged"] != spent:
            fail(
                f"amplification epsilon_charged "
                f"{amplification['epsilon_charged']} != ledger spent {spent}"
            )
        if amplification["epsilon_saved"] != epsilon - spent:
            fail(f"amplification epsilon_saved: {amplification['epsilon_saved']}")
        _, text_table = get(port, "/budgetz")
        if "epsilon remaining" not in text_table:
            fail(f"/budgetz text table: {text_table[:200]!r}")

        # --- /varz ----------------------------------------------------------
        _, varz = get(port, "/varz")
        json.loads(varz)

        # --- /tracez --------------------------------------------------------
        content_type, trace_body = get(port, "/tracez")
        if "application/json" not in content_type:
            fail(f"/tracez content type: {content_type}")
        trace = json.loads(trace_body)
        events = trace["traceEvents"]
        blocks = [e for e in events if e.get("cat") == "block"]
        stages = [e for e in events if e.get("cat") == "stage"]
        if not blocks:
            fail("/tracez has no block spans")
        if not any(e.get("name") == "execute_blocks" for e in stages):
            fail("/tracez has no execute_blocks stage span")
        worker_lanes = {e["tid"] for e in blocks}
        if len(worker_lanes) < 2:
            fail(f"block spans all on one lane: {worker_lanes}")
        for event in blocks + stages:
            if event.get("ph") != "X":
                fail(f"span without ph=X: {event}")

        # --- /slowz ---------------------------------------------------------
        content_type, slow_body = get(port, "/slowz?format=json")
        if "application/json" not in content_type:
            fail(f"/slowz content type: {content_type}")
        slowz = json.loads(slow_body)
        if slowz["queries_considered"] < 1:
            fail(f"/slowz considered no queries: {slow_body[:200]}")
        entries = slowz["queries"]
        if not entries:
            fail("/slowz retained no queries")
        entry = entries[0]
        if entry["program"] != "mean" or entry["query_id"] <= 0:
            fail(f"/slowz entry: {entry}")
        stage_names = {s["name"] for s in entry["stages"]}
        if "execute_blocks" not in stage_names:
            fail(f"/slowz entry has no execute_blocks stage: {stage_names}")
        # The slow query's per-stage CPU must sum to no more than the
        # query CPU plus clock granularity.
        stage_cpu = sum(s["cpu_seconds"] for s in entry["stages"])
        if stage_cpu > entry["cpu_seconds"] + 1e-3 * (len(entry["stages"]) + 1):
            fail(
                f"/slowz stage CPU {stage_cpu} exceeds query CPU "
                f"{entry['cpu_seconds']}"
            )
        _, slow_text = get(port, "/slowz")
        if f"qid={entry['query_id']}" not in slow_text:
            fail(f"/slowz text is missing qid={entry['query_id']}")

        # --- /profilez ------------------------------------------------------
        # A short capture: the process is idle, so zero samples is a valid
        # (and likely) outcome — the payload must still be valid folded
        # stacks, i.e. every line is "stage:<frames...> <count>".
        content_type, folded = get(port, "/profilez?seconds=0.2&hz=97")
        if "text/plain" not in content_type:
            fail(f"/profilez content type: {content_type}")
        for line in folded.splitlines():
            if not re.fullmatch(r"stage:\S+ \d+", line):
                fail(f"/profilez line is not a folded stack: {line!r}")
        get(port, "/profilez?seconds=nope", want_status=400)
        get(port, "/profilez?hz=9999", want_status=400)

        # --- /timeseriesz ---------------------------------------------------
        # The collector runs at 100ms; poll until it has ticked at least
        # twice (counters need a prior sample before rates appear) and
        # the budget sweep has published the spent-epsilon gauge.
        spent_name = "gupt_budget_spent_epsilon{dataset=cli}:value"
        series_index = {}
        poll_deadline = time.monotonic() + 30
        while time.monotonic() < poll_deadline:
            content_type, ts_body = get(port, "/timeseriesz?format=json")
            if "application/json" not in content_type:
                fail(f"/timeseriesz content type: {content_type}")
            timeseries = json.loads(ts_body)
            series_index = {s["name"]: s for s in timeseries["series"]}
            if timeseries["ticks"] >= 2 and spent_name in series_index:
                break
            time.sleep(0.1)
        else:
            fail(
                f"collector never published {spent_name} "
                f"(ticks={timeseries.get('ticks')}, "
                f"series={sorted(series_index)[:10]})"
            )
        if timeseries["period_ms"] != 100:
            fail(f"/timeseriesz period_ms: {timeseries['period_ms']}")
        if timeseries["capacity"] < 1:
            fail(f"/timeseriesz capacity: {timeseries['capacity']}")
        if timeseries["matched"] != len(timeseries["series"]):
            fail(
                f"matched {timeseries['matched']} != "
                f"{len(timeseries['series'])} series entries"
            )
        if timeseries["tracked"] < timeseries["matched"]:
            fail("tracked series < matched series")
        for summary in timeseries["series"]:
            if summary["points"] < 1:
                fail(f"series {summary['name']} has no points")
            # The running mean accumulates ulp-scale rounding, so a flat
            # series can report mean a hair outside [min, max].
            slack = 1e-9 * max(abs(summary["min"]), abs(summary["max"]), 1.0)
            if not (summary["min"] - slack
                    <= summary["mean"]
                    <= summary["max"] + slack):
                fail(f"series {summary['name']} min/mean/max out of order")
        # The spent-epsilon series must agree with the /budgetz ledger
        # (the amplified epsilon', not the raw query epsilon).
        if series_index[spent_name]["latest"] != spent:
            fail(
                f"{spent_name} latest {series_index[spent_name]['latest']} "
                f"!= ledger spent {spent}"
            )
        # A name filter switches on the raw point dumps; timestamps must
        # be strictly monotone and end at the summary's latest value.
        _, filtered_body = get(
            port, "/timeseriesz?format=json&name=gupt_budget_spent_epsilon"
        )
        filtered = json.loads(filtered_body)
        if not filtered["series"]:
            fail("name filter matched no budget series")
        for summary in filtered["series"]:
            samples = summary.get("samples")
            if not samples:
                fail(f"filtered series {summary['name']} has no samples")
            stamps = [s["t_ns"] for s in samples]
            if stamps != sorted(set(stamps)):
                fail(f"series {summary['name']} timestamps not monotone")
            if samples[-1]["value"] != summary["latest"]:
                fail(f"series {summary['name']} last sample != latest")
        _, ts_text = get(port, "/timeseriesz")
        if "gupt_budget_spent_epsilon" not in ts_text:
            fail("/timeseriesz text is missing the budget series")

        # --- /alertz --------------------------------------------------------
        content_type, alert_body = get(port, "/alertz?format=json")
        if "application/json" not in content_type:
            fail(f"/alertz content type: {content_type}")
        alertz = json.loads(alert_body)
        rules = {r["name"]: r for r in alertz["rules"]}
        if "budget_exhaustion_imminent" not in rules:
            fail(f"built-in burn-rate rule missing: {sorted(rules)}")
        if rules["budget_exhaustion_imminent"]["severity"] != "critical":
            fail("budget_exhaustion_imminent is not critical")
        valid_states = {"inactive", "pending", "firing", "resolved"}
        instances = alertz["instances"]
        for instance in instances:
            if instance["state"] not in valid_states:
                fail(f"alert instance in unknown state: {instance}")
        budget_instances = [
            i for i in instances
            if i["rule"] == "budget_exhaustion_imminent"
            and i["instance"] == "cli"
        ]
        if not budget_instances:
            fail("no budget_exhaustion_imminent instance for dataset cli")
        _, alert_text = get(port, "/alertz")
        if "budget_exhaustion_imminent" not in alert_text:
            fail("/alertz text is missing the built-in burn-rate rule")

        # --- gupt_cli alerts / top against the live port --------------------
        alerts_cli = subprocess.run(
            [cli, "alerts", f"--port={port}", "--json"],
            capture_output=True, text=True, timeout=30,
        )
        if alerts_cli.returncode != 0:
            fail(f"gupt_cli alerts failed: {alerts_cli.stderr[:200]}")
        if "rules" not in json.loads(alerts_cli.stdout):
            fail("gupt_cli alerts --json did not print the rule table")
        top_cli = subprocess.run(
            [cli, "top", f"--port={port}"],
            capture_output=True, text=True, timeout=30,
        )
        if top_cli.returncode != 0:
            fail(f"gupt_cli top failed: {top_cli.stderr[:200]}")
        for needle in ("== health", "== budgets", "== alerts", "== series"):
            if needle not in top_cli.stdout:
                fail(f"gupt_cli top output is missing {needle!r}")

        # --- index + 404 ----------------------------------------------------
        _, index = get(port, "/")
        for endpoint in ("/budgetz", "/timeseriesz", "/alertz"):
            if endpoint not in index:
                fail(f"index does not list {endpoint}")
        get(port, "/nonexistent", want_status=404)

        # --- clean shutdown -------------------------------------------------
        process.stdin.close()
        code = process.wait(timeout=30)
        if code != 0:
            fail(f"gupt_cli exited with {code}")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    print("introspect_smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
