#!/usr/bin/env python3
"""Bench-regression harness: run JSON-emitting bench binaries, stamp the
results with machine info + git sha, and compare runs for regressions.

Each overhead-style bench in bench/ (obs_overhead, prof_overhead,
failpoint_overhead, svt_throughput, ...) writes a flat BENCH_<name>.json
into its working directory. This runner executes the requested benches in
a scratch directory, wraps each payload as

  {
    "bench": "<name>",
    "git_sha": "<rev-parse HEAD or 'unknown'>",
    "unix_time": <seconds>,
    "machine": {"platform": ..., "cpu_count": ..., "mem_total_kb": ...},
    "results": { ...the bench's own flat JSON... }
  }

and writes it to BENCH_<name>.json at the repo root, where the perf
trajectory is tracked run over run.

Comparison treats any numeric field in "results" whose key ends in `_s`
or `_ratio` as a latency-like metric (higher = worse): a new value more
than --threshold percent above the old one is a regression and the exit
code is nonzero. Other fields (counts, sample totals) are informational.

Usage:
  bench_runner.py --build-dir BUILD [--bench NAME ...] [--repo-root DIR]
  bench_runner.py --compare OLD.json NEW.json [--threshold PCT]
  bench_runner.py --self-test

`--bench` defaults to every known JSON-emitting bench. `--compare` takes
two wrapped artifacts (or raw bench payloads) and only compares; no
benches run. `--self-test` exercises the wrap + compare paths on
synthetic data — this is what ctest runs, so CI stays fast and
deterministic while real bench runs remain a manual/periodic act.

Exit 0 = ok, 1 = regression or bench failure, 2 = usage error.
"""

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile
import time

# Benches that emit a flat BENCH_<name>.json of scalar results, keyed by
# logical bench name: `binary` is the executable under <build>/bench/ and
# `artifact` the flat JSON it writes into its working directory (several
# benches share a binary or use a short artifact name). fig6's
# BENCH_obs.json (a full metrics-registry dump) is deliberately excluded:
# it is a trajectory artifact, not a flat scalar payload.
KNOWN_BENCHES = {
    "chamber_pool": {
        "binary": "chamber_pool", "artifact": "BENCH_chamber_pool.json"},
    "obs_overhead": {
        "binary": "obs_overhead", "artifact": "BENCH_obs_overhead.json"},
    "prof_overhead": {
        "binary": "prof_overhead", "artifact": "BENCH_prof_overhead.json"},
    "series_overhead": {
        "binary": "series_overhead", "artifact": "BENCH_series_overhead.json"},
    "failpoint_overhead": {
        "binary": "failpoint_overhead",
        "artifact": "BENCH_failpoint_overhead.json"},
    "svt_throughput": {
        "binary": "svt_throughput", "artifact": "BENCH_svt.json"},
    # The amplification lifetime pair rides on the fig8 budget bench; the
    # binary itself enforces the >=5x queries-before-exhaustion bar by
    # exiting nonzero below it.
    "amplification": {
        "binary": "fig8_budget_lifetime",
        "artifact": "BENCH_amplification.json"},
}

DEFAULT_THRESHOLD_PCT = 10.0


def machine_info() -> dict:
    info = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 0,
    }
    try:
        with open("/proc/meminfo", encoding="utf-8") as f:
            for line in f:
                if line.startswith("MemTotal:"):
                    info["mem_total_kb"] = int(line.split()[1])
                    break
    except OSError:
        pass
    return info


def git_sha(repo_root: pathlib.Path) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root, capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.TimeoutExpired):
        pass
    return "unknown"


def wrap(name: str, results: dict, repo_root: pathlib.Path) -> dict:
    return {
        "bench": name,
        "git_sha": git_sha(repo_root),
        "unix_time": int(time.time()),
        "machine": machine_info(),
        "results": results,
    }


def run_bench(name: str, build_dir: pathlib.Path,
              repo_root: pathlib.Path) -> bool:
    spec = KNOWN_BENCHES[name]
    binary = build_dir / "bench" / spec["binary"]
    if not binary.is_file():
        print(f"bench_runner: no such binary {binary}", file=sys.stderr)
        return False
    artifact = spec["artifact"]
    with tempfile.TemporaryDirectory(prefix="gupt_bench_") as scratch:
        print(f"bench_runner: running {name} ...")
        proc = subprocess.run([str(binary)], cwd=scratch)
        if proc.returncode != 0:
            print(f"bench_runner: {name} exited {proc.returncode}",
                  file=sys.stderr)
            return False
        payload_path = pathlib.Path(scratch) / artifact
        if not payload_path.is_file():
            print(f"bench_runner: {name} did not write {artifact}",
                  file=sys.stderr)
            return False
        results = json.loads(payload_path.read_text(encoding="utf-8"))
    out_path = repo_root / f"BENCH_{name}.json"
    out_path.write_text(
        json.dumps(wrap(name, results, repo_root), indent=2) + "\n",
        encoding="utf-8",
    )
    print(f"bench_runner: wrote {out_path}")
    return True


def flat_results(payload: dict) -> dict:
    """Accepts either a wrapped artifact or a bench's raw flat JSON."""
    return payload.get("results", payload)


def compare(old_path: pathlib.Path, new_path: pathlib.Path,
            threshold_pct: float) -> int:
    old = flat_results(json.loads(old_path.read_text(encoding="utf-8")))
    new = flat_results(json.loads(new_path.read_text(encoding="utf-8")))
    regressions = []
    compared = 0
    for key, old_value in sorted(old.items()):
        if not isinstance(old_value, (int, float)) or isinstance(old_value, bool):
            continue
        if not (key.endswith("_s") or key.endswith("_ratio")):
            continue
        new_value = new.get(key)
        if not isinstance(new_value, (int, float)):
            print(f"  {key}: missing from new run (skipped)")
            continue
        compared += 1
        if old_value > 0:
            delta_pct = 100.0 * (new_value - old_value) / old_value
        else:
            delta_pct = 0.0 if new_value <= old_value else float("inf")
        marker = ""
        if delta_pct > threshold_pct:
            marker = "  <-- REGRESSION"
            regressions.append((key, old_value, new_value, delta_pct))
        print(f"  {key}: {old_value:.9g} -> {new_value:.9g} "
              f"({delta_pct:+.2f}%){marker}")
    if compared == 0:
        print("bench_runner: no comparable fields", file=sys.stderr)
        return 1
    if regressions:
        print(
            f"bench_runner: {len(regressions)} regression(s) beyond "
            f"{threshold_pct:.1f}%", file=sys.stderr,
        )
        return 1
    print(f"bench_runner: {compared} fields within {threshold_pct:.1f}%")
    return 0


def self_test() -> int:
    """Wrap + compare smoke on synthetic payloads (what ctest runs)."""
    info = machine_info()
    if info["cpu_count"] <= 0 or not info["platform"]:
        print("bench_runner: self-test: bad machine info", file=sys.stderr)
        return 1
    with tempfile.TemporaryDirectory(prefix="gupt_bench_selftest_") as scratch:
        root = pathlib.Path(scratch)
        base = {"queries": 31, "off_median_s": 0.100, "armed_median_s": 0.103,
                "armed_ratio": 1.03}
        same = dict(base)
        worse = dict(base, armed_median_s=0.150, armed_ratio=1.50)
        old_path = root / "old.json"
        old_path.write_text(
            json.dumps(wrap("selftest", base, root)), encoding="utf-8")
        ok_path = root / "ok.json"
        ok_path.write_text(json.dumps(same), encoding="utf-8")
        bad_path = root / "bad.json"
        bad_path.write_text(
            json.dumps(wrap("selftest", worse, root)), encoding="utf-8")
        if compare(old_path, ok_path, DEFAULT_THRESHOLD_PCT) != 0:
            print("bench_runner: self-test: clean pair flagged",
                  file=sys.stderr)
            return 1
        if compare(old_path, bad_path, DEFAULT_THRESHOLD_PCT) == 0:
            print("bench_runner: self-test: planted regression missed",
                  file=sys.stderr)
            return 1
    print("bench_runner: self-test ok")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build-dir", type=pathlib.Path)
    parser.add_argument("--repo-root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent)
    parser.add_argument("--bench", action="append", choices=sorted(KNOWN_BENCHES),
                        help="bench to run (repeatable; default: all)")
    parser.add_argument("--compare", nargs=2, type=pathlib.Path,
                        metavar=("OLD", "NEW"))
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD_PCT,
                        metavar="PCT", help="regression threshold percent")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.compare:
        return compare(args.compare[0], args.compare[1], args.threshold)
    if args.build_dir is None:
        parser.error("--build-dir is required to run benches")
    benches = args.bench or sorted(KNOWN_BENCHES)
    failed = [b for b in benches
              if not run_bench(b, args.build_dir, args.repo_root)]
    if failed:
        print(f"bench_runner: failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
