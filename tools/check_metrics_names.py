#!/usr/bin/env python3
"""Lint: every registered metric name follows gupt_<subsystem>_<name>_<unit>.

Scans the C++ sources for string literals passed to the metrics registry
(GetCounter / GetGauge / GetHistogram) and fails when a name violates the
convention enforced by obs::MetricsRegistry::IsValidMetricName:

  * lower-case ASCII words joined by single underscores
  * first word "gupt", at least four words total
  * final word drawn from the unit vocabulary below

Keep ALLOWED_UNITS in sync with IsUnitWord() in src/obs/metrics.cc.

Also lints failpoint site names (the gupt_failpoint_* metric family takes
its `name` label from these literals): every string passed to
GUPT_FAILPOINT / GUPT_FAILPOINT_STATUS / failpoints::Eval /
failpoints::EvalDetailed must be a dot-separated lower-case path whose
first segment is a registered src/ module, e.g. `exec.chamber.entry` or
`service.introspect.accept` (see docs/testing.md).

Subsystems added later are picked up by the same scan with no lint
changes: the interactive SVT subsystem's `gupt_svt_*` family
(src/service/svt_session.cc) and its `service.svt.*` failpoint sites
(docs/svt.md) are linted here like every other registration, as are the
profiling & resource-accounting families `gupt_prof_*` (stage/query CPU,
/profilez capture outcomes, sample and slow-query counters) and
`gupt_rusage_*` (child CPU/RSS from wait4, fault and context-switch
deltas) with their `exec.rusage` and `service.introspect.profilez`
failpoint sites (docs/observability.md). The pre-warmed chamber pool's
`gupt_chamber_pool_*` family (workers gauge; spawned/leases/resets/
respawns/shipped-bytes counters; lease-wait histogram — see
src/exec/chamber_pool.cc) and the columnar partitioner's
`gupt_data_partition_copied_bytes_total` likewise lint with no special
cases, as do the pool's `exec.pool.{spawn,lease,reset}` failpoint
sites. The amplification-by-sampling charging path contributes the
`gupt_amplification_*` family (amplified-query counter, sampling-rate
gauge, epsilon-saved counter — see src/core/pipeline/stages.cc) and the
`core.amplify.{calibrate,charge}` failpoint sites guarding the ledger
debit (docs/amplification.md); both are covered by the same scan.

The time-series subsystem adds a third check: every series-reference
literal `<metric>[{labels}]:<agg>` in src/ — the built-in alert rules'
`series`/`denominator` fields (src/obs/series/alerts.cc) and the
respawn-storm detector's store lookups (src/service/gupt_service.cc) —
must name a registered metric family, with the aggregation suffix
matching the family's kind (counters -> :rate, gauges -> :value,
histograms -> :p50/:p95/:p99). A rule watching a never-written series
would otherwise sit silently inactive forever.

Usage:
  check_metrics_names.py [repo_root]      lint registrations in the sources
  check_metrics_names.py --payload FILE...  lint a scraped Prometheus
      exposition payload instead: every sample name must follow the
      convention, allowing the _bucket/_sum/_count suffixes histograms
      append to their base name.

Exit 0 = clean, 1 = violations (or an empty payload).
"""

import pathlib
import re
import sys

ALLOWED_UNITS = {
    "seconds",
    "bytes",
    "total",
    "count",
    "ratio",
    "epsilon",
    "scale",
    "depth",
}

# A Get* call with its first string-literal argument (the metric name),
# which may sit on the following line after a line break. The kind is
# captured so time-series references can be checked against it.
CALL_RE = re.compile(
    r"Get(Counter|Gauge|Histogram)\s*\(\s*\"([^\"]+)\"", re.MULTILINE
)
NAME_RE = re.compile(r"^[a-z0-9]+(?:_[a-z0-9]+){3,}$")

# A failpoint evaluation with a string-literal site name.
FAILPOINT_CALL_RE = re.compile(
    r"(?:GUPT_FAILPOINT(?:_STATUS)?|failpoints::Eval(?:Detailed)?)"
    r"\s*\(\s*\"([^\"]+)\"",
    re.MULTILINE,
)
FAILPOINT_NAME_RE = re.compile(r"^[a-z0-9_]+(?:\.[a-z0-9_]+)+$")

# A time-series reference literal, `<metric>{labels}:<agg>`, as used by
# the alert rules in src/obs/series/alerts.cc and the respawn-storm
# detector in src/service/gupt_service.cc. The base metric must be a
# registered family and the aggregation must match its kind: counters
# produce :rate, gauges :value, histograms :p50/:p95/:p99 (see the
# SeriesCollector sweep in src/obs/series/collector.cc).
SERIES_REF_RE = re.compile(
    r"\"(gupt_[a-z0-9_]+)(\{[^\"]*\})?:(rate|value|p50|p95|p99)\""
)
AGG_FOR_KIND = {
    "Counter": {"rate"},
    "Gauge": {"value"},
    "Histogram": {"p50", "p95", "p99"},
}
# First segment of a failpoint name must be a src/ module (keep in sync
# with tools/check_layering.py).
FAILPOINT_MODULES = {
    "obs", "common", "testing", "dp", "data", "exec", "core",
    "analytics", "baselines", "service",
}

# Directories whose registrations must pass. Tests deliberately register
# bad names to cover the validator, so they are not linted.
LINTED_DIRS = ("src", "tools", "bench", "examples")


def metric_names(root: pathlib.Path):
    """Yields (path, line, kind, name) for every registration literal."""
    for directory in LINTED_DIRS:
        base = root / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in {".cc", ".cpp", ".h"}:
                continue
            text = path.read_text(encoding="utf-8", errors="replace")
            for match in CALL_RE.finditer(text):
                line = text.count("\n", 0, match.start()) + 1
                yield path.relative_to(root), line, match.group(1), match.group(2)


def series_references(root: pathlib.Path):
    """`<metric>[{labels}]:<agg>` literals in src/ — alert-rule series,
    ratio denominators, and the service's storm-detector lookups."""
    base = root / "src"
    if not base.is_dir():
        return
    for path in sorted(base.rglob("*")):
        if path.suffix not in {".cc", ".cpp", ".h"}:
            continue
        text = path.read_text(encoding="utf-8", errors="replace")
        for match in SERIES_REF_RE.finditer(text):
            line = text.count("\n", 0, match.start()) + 1
            yield path.relative_to(root), line, match.group(1), match.group(3)


def failpoint_names(root: pathlib.Path):
    """Failpoint site literals in src/ (tests may use free-form names for
    registry coverage, so only production sites are linted)."""
    base = root / "src"
    if not base.is_dir():
        return
    for path in sorted(base.rglob("*")):
        if path.suffix not in {".cc", ".cpp", ".h"}:
            continue
        text = path.read_text(encoding="utf-8", errors="replace")
        for match in FAILPOINT_CALL_RE.finditer(text):
            line = text.count("\n", 0, match.start()) + 1
            yield path.relative_to(root), line, match.group(1)


def valid_failpoint_name(name: str) -> bool:
    return bool(
        FAILPOINT_NAME_RE.match(name)
        and name.split(".")[0] in FAILPOINT_MODULES
    )


def valid_metric_name(name: str) -> bool:
    words = name.split("_")
    return bool(
        NAME_RE.match(name)
        and words[0] == "gupt"
        and words[-1] in ALLOWED_UNITS
    )


def valid_sample_name(name: str) -> bool:
    """A payload sample: the metric name itself, or a histogram series
    (<base>_bucket / _sum / _count) whose base name passes."""
    if valid_metric_name(name):
        return True
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and valid_metric_name(name[: -len(suffix)]):
            return True
    return False


def payload_sample_names(text: str):
    """Sample names in a Prometheus text-exposition payload, with line
    numbers. Comment (#) and blank lines are skipped."""
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name = re.split(r"[{\s]", line, maxsplit=1)[0]
        if name:
            yield number, name


def lint_payloads(paths) -> int:
    violations = []
    seen = 0
    for path in paths:
        text = pathlib.Path(path).read_text(encoding="utf-8", errors="replace")
        for number, name in payload_sample_names(text):
            seen += 1
            if not valid_sample_name(name):
                violations.append((path, number, name))
    if not seen:
        print("check_metrics_names: payload has no samples", file=sys.stderr)
        return 1
    for path, number, name in violations:
        print(
            f"{path}:{number}: sample name '{name}' violates "
            "gupt_<subsystem>_<name>_<unit>[_bucket|_sum|_count] "
            f"(units: {', '.join(sorted(ALLOWED_UNITS))})",
            file=sys.stderr,
        )
    if violations:
        return 1
    print(f"check_metrics_names: {seen} payload samples ok")
    return 0


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "--payload":
        if len(sys.argv) < 3:
            print("usage: check_metrics_names.py --payload FILE...",
                  file=sys.stderr)
            return 2
        return lint_payloads(sys.argv[2:])
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    violations = []
    seen = 0
    registered = {}  # name -> set of kinds (misuse aside, one per name)
    for path, line, kind, name in metric_names(root):
        seen += 1
        registered.setdefault(name, set()).add(kind)
        if not valid_metric_name(name):
            violations.append((path, line, name))
    if not seen:
        print("check_metrics_names: found no metric registrations", file=sys.stderr)
        return 1
    for path, line, name in violations:
        print(
            f"{path}:{line}: metric name '{name}' violates "
            "gupt_<subsystem>_<name>_<unit> "
            f"(units: {', '.join(sorted(ALLOWED_UNITS))})",
            file=sys.stderr,
        )
    fp_violations = []
    fp_seen = 0
    for path, line, name in failpoint_names(root):
        fp_seen += 1
        if not valid_failpoint_name(name):
            fp_violations.append((path, line, name))
    for path, line, name in fp_violations:
        print(
            f"{path}:{line}: failpoint name '{name}' violates "
            "<module>.<component>.<site> (lower-case dotted path, module "
            f"one of: {', '.join(sorted(FAILPOINT_MODULES))})",
            file=sys.stderr,
        )
    series_violations = []
    series_seen = 0
    for path, line, name, agg in series_references(root):
        series_seen += 1
        kinds = registered.get(name)
        if kinds is None:
            series_violations.append(
                (path, line, f"'{name}:{agg}' references an unregistered "
                             "metric family")
            )
        elif not any(agg in AGG_FOR_KIND[kind] for kind in kinds):
            series_violations.append(
                (path, line, f"':{agg}' does not match the registered kind "
                             f"of '{name}' ({', '.join(sorted(kinds))})")
            )
    for path, line, message in series_violations:
        print(f"{path}:{line}: series reference {message}", file=sys.stderr)
    if violations or fp_violations or series_violations:
        return 1
    print(
        f"check_metrics_names: {seen} registrations ok, "
        f"{fp_seen} failpoint sites ok, "
        f"{series_seen} series references ok"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
