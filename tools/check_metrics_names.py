#!/usr/bin/env python3
"""Lint: every registered metric name follows gupt_<subsystem>_<name>_<unit>.

Scans the C++ sources for string literals passed to the metrics registry
(GetCounter / GetGauge / GetHistogram) and fails when a name violates the
convention enforced by obs::MetricsRegistry::IsValidMetricName:

  * lower-case ASCII words joined by single underscores
  * first word "gupt", at least four words total
  * final word drawn from the unit vocabulary below

Keep ALLOWED_UNITS in sync with IsUnitWord() in src/obs/metrics.cc.

Usage: check_metrics_names.py [repo_root]   (exit 0 = clean, 1 = violations)
"""

import pathlib
import re
import sys

ALLOWED_UNITS = {
    "seconds",
    "bytes",
    "total",
    "count",
    "ratio",
    "epsilon",
    "scale",
    "depth",
}

# A Get* call with its first string-literal argument (the metric name),
# which may sit on the following line after a line break.
CALL_RE = re.compile(
    r"Get(?:Counter|Gauge|Histogram)\s*\(\s*\"([^\"]+)\"", re.MULTILINE
)
NAME_RE = re.compile(r"^[a-z0-9]+(?:_[a-z0-9]+){3,}$")

# Directories whose registrations must pass. Tests deliberately register
# bad names to cover the validator, so they are not linted.
LINTED_DIRS = ("src", "tools", "bench", "examples")


def metric_names(root: pathlib.Path):
    for directory in LINTED_DIRS:
        base = root / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in {".cc", ".cpp", ".h"}:
                continue
            text = path.read_text(encoding="utf-8", errors="replace")
            for match in CALL_RE.finditer(text):
                line = text.count("\n", 0, match.start()) + 1
                yield path.relative_to(root), line, match.group(1)


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    violations = []
    seen = 0
    for path, line, name in metric_names(root):
        seen += 1
        words = name.split("_")
        if (
            not NAME_RE.match(name)
            or words[0] != "gupt"
            or words[-1] not in ALLOWED_UNITS
        ):
            violations.append((path, line, name))
    if not seen:
        print("check_metrics_names: found no metric registrations", file=sys.stderr)
        return 1
    for path, line, name in violations:
        print(
            f"{path}:{line}: metric name '{name}' violates "
            "gupt_<subsystem>_<name>_<unit> "
            f"(units: {', '.join(sorted(ALLOWED_UNITS))})",
            file=sys.stderr,
        )
    if violations:
        return 1
    print(f"check_metrics_names: {seen} registrations ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
