// gupt_cli — command-line front end for the GUPT service.
//
// Lets a data owner serve private queries over a CSV table without
// writing any code, with a durable budget ledger so the composition bound
// survives process restarts:
//
//   gupt_cli info     --data table.csv [--header]
//   gupt_cli programs
//   gupt_cli query    --data table.csv [--header] --program mean
//                     [--params dim=0,trim=0.05] --epsilon 0.5
//                     --range 0,150 --budget 5 [--ledger table.ledger]
//                     [--block-size N] [--gamma G] [--mode tight|loose]
//                     [--workers N] [--seed S] [--analyst NAME]
//   gupt_cli svt      --data table.csv [--header] --threshold T
//                     --epsilon E --queries candidates.txt --budget 5
//                     [--c K] [--records-per-user N] [--ledger FILE]
//                     [--seed S] [--analyst NAME]
//   gupt_cli selftest
//
// `query` registers the table under the given total budget, restores any
// prior charges from the ledger file, runs one private query through the
// hosted GuptService (so the attempt is audit-logged), and persists the
// updated ledger. Multi-output programs accept one --range reused for
// every output dimension.
//
// `svt` opens one interactive Sparse Vector session (charged E once,
// however many candidates follow), streams every candidate from the
// queries file through it, and prints ABOVE/below verdicts with the
// positives ranked by their free-gap release. Each line of the queries
// file is `dim,lo,hi[,label]` — the count of rows whose column `dim`
// falls in [lo, hi] is tested against the threshold. `inf`/`-inf` bounds
// and `#` comment lines are accepted.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.h"
#include "data/synthetic.h"
#include "dp/amplification.h"
#include "obs/introspect/http_client.h"
#include "obs/prof/profiler.h"
#include "service/gupt_service.h"

namespace gupt {
namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool has_header = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    std::size_t eq;
    if (arg == "--header") {
      args.has_header = true;
    } else if (arg == "--async") {
      args.options.emplace("async", "1");
    } else if (arg == "--amplification") {
      args.options.emplace("amplification", "raw_epsilon");
    } else if (arg == "--metrics") {
      args.options["metrics"] = "prom";
    } else if (arg == "--json") {
      args.options.emplace("json", "1");
    } else if (arg == "--fail-on-firing") {
      args.options.emplace("fail-on-firing", "1");
    } else if (arg.rfind("--", 0) == 0 &&
               (eq = arg.find('=')) != std::string::npos) {
      args.options[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    } else if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
      args.options[arg.substr(2)] = argv[++i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

/// Rejects an unknown --metrics format. Called before the query runs: a
/// typo'd format must fail up front, not after budget has been charged.
bool ValidateMetricsFormat(const Args& args) {
  auto it = args.options.find("metrics");
  if (it == args.options.end() || it->second == "prom" ||
      it->second == "json") {
    return true;
  }
  std::fprintf(stderr, "unknown metrics format: %s (want prom or json)\n",
               it->second.c_str());
  return false;
}

/// Prints the process-global metrics registry when --metrics[=prom|json]
/// was given. Returns false on an unknown format.
bool MaybeDumpMetrics(const Args& args) {
  auto it = args.options.find("metrics");
  if (it == args.options.end()) return true;
  if (it->second == "prom") {
    std::fputs(GuptService::DumpMetrics(MetricsFormat::kPrometheus).c_str(),
               stdout);
  } else if (it->second == "json") {
    std::printf("%s\n", GuptService::DumpMetrics(MetricsFormat::kJson).c_str());
  } else {
    std::fprintf(stderr, "unknown metrics format: %s (want prom or json)\n",
                 it->second.c_str());
    return false;
  }
  return true;
}

Result<std::string> Require(const Args& args, const std::string& key) {
  auto it = args.options.find(key);
  if (it == args.options.end()) {
    return Status::InvalidArgument("missing required option --" + key);
  }
  return it->second;
}

std::string Optional(const Args& args, const std::string& key,
                     const std::string& fallback) {
  auto it = args.options.find(key);
  return it == args.options.end() ? fallback : it->second;
}

Result<Range> ParseRange(const std::string& text) {
  std::size_t comma = text.find(',');
  if (comma == std::string::npos) {
    return Status::InvalidArgument("range must be LO,HI: " + text);
  }
  char* end = nullptr;
  double lo = std::strtod(text.c_str(), &end);
  double hi = std::strtod(text.c_str() + comma + 1, &end);
  if (!(lo <= hi)) {
    return Status::InvalidArgument("range lo > hi: " + text);
  }
  return Range{lo, hi};
}

/// "dim=0,trim=0.05" -> {{"dim","0"},{"trim","0.05"}}.
Result<std::map<std::string, std::string>> ParseParams(
    const std::string& text) {
  std::map<std::string, std::string> params;
  if (text.empty()) return params;
  std::stringstream ss(text);
  std::string field;
  while (std::getline(ss, field, ',')) {
    std::size_t eq = field.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("param must be key=value: " + field);
    }
    params[field.substr(0, eq)] = field.substr(eq + 1);
  }
  return params;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  gupt_cli info     --data FILE.csv [--header]\n"
      "  gupt_cli programs\n"
      "  gupt_cli query    --data FILE.csv [--header] --program NAME\n"
      "                    [--params k=v,k=v] --epsilon E --range LO,HI\n"
      "                    --budget TOTAL [--ledger FILE] [--block-size N]\n"
      "                    [--gamma G] [--mode tight|loose] [--workers N]\n"
      "                    [--seed S] [--analyst NAME] [--metrics[=prom|json]]\n"
      "                    [--metrics-out FILE] [--serve PORT]\n"
      "                    [--async] [--queue-depth N] [--pad-deadline-us N]\n"
      "                    [--chamber-pool N]\n"
      "                    [--amplification[=off|raw_epsilon|charged_epsilon]\n"
      "                     --amplification-rate=GAMMA]\n"
      "  gupt_cli svt      --data FILE.csv [--header] --threshold T\n"
      "                    --epsilon E --queries FILE --budget TOTAL\n"
      "                    [--c K] [--records-per-user N] [--ledger FILE]\n"
      "                    [--seed S] [--analyst NAME]\n"
      "  gupt_cli profile  --port PORT [--seconds N] [--hz H]\n"
      "                    [--out FILE.folded]\n"
      "  gupt_cli alerts   --port PORT [--json] [--fail-on-firing]\n"
      "  gupt_cli top      --port PORT [--window SECONDS]\n"
      "  gupt_cli selftest\n"
      "\n"
      "profile captures N seconds (default 1) of CPU samples at H Hz\n"
      "(default 99) from a serving gupt process's /profilez endpoint and\n"
      "writes folded stacks to FILE (default gupt.folded) — feed it to\n"
      "FlameGraph's flamegraph.pl or https://speedscope.app.\n"
      "\n"
      "svt answers every candidate in the queries file (lines of\n"
      "`dim,lo,hi[,label]`) through ONE Sparse Vector session: epsilon E\n"
      "is charged once at open, below-threshold verdicts are then free,\n"
      "and the session halts after K ABOVE answers (default 1).\n"
      "\n"
      "--async submits through the service's bounded admission queue\n"
      "(SubmitQueryAsync) and waits on the returned future; --queue-depth\n"
      "bounds that queue (submissions beyond it are refused, not blocked).\n"
      "--serve starts the introspection HTTP server (/metrics, /varz,\n"
      "/healthz, /budgetz, /tracez, /timeseriesz, /alertz) on\n"
      "127.0.0.1:PORT (0 = ephemeral; the bound port is printed) and keeps\n"
      "the process alive after the query until stdin reaches EOF.\n"
      "--collector-period-ms sets the time-series sampling cadence\n"
      "(default 1000). --metrics-out writes the final metrics dump\n"
      "(--metrics format, default prom) to FILE.\n"
      "--amplification enables amplification by sampling\n"
      "(docs/amplification.md): the query runs on a Bernoulli(GAMMA)\n"
      "subsample of the data (GAMMA from the required\n"
      "--amplification-rate, in (0, 1]) and the ledger is debited the\n"
      "amplified epsilon' = ln(1 + GAMMA (e^eps - 1)) while the noise\n"
      "stays calibrated at the raw epsilon (raw_epsilon, the bare-flag\n"
      "default); charged_epsilon instead treats --epsilon as the target\n"
      "charge and runs the subsampled chambers at the larger raw epsilon\n"
      "(capped; see docs/amplification.md).\n"
      "\n"
      "alerts prints /alertz from a serving process (--fail-on-firing\n"
      "exits 3 when any rule instance is firing); top is a one-shot text\n"
      "dashboard joining /healthz, /budgetz, /alertz and /timeseriesz\n"
      "(--window bounds the series summaries, default 300 s).\n");
  return 2;
}

int RunPrograms() {
  ProgramRegistry registry = ProgramRegistry::WithStandardPrograms();
  for (const std::string& name : registry.ListPrograms()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int RunInfo(const Args& args) {
  auto path = Require(args, "data");
  if (!path.ok()) {
    std::fprintf(stderr, "%s\n", path.status().ToString().c_str());
    return 2;
  }
  auto data = Dataset::FromCsvFile(*path, args.has_header);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("rows: %zu\ndims: %zu\n", data->num_rows(), data->num_dims());
  if (!data->column_names().empty()) {
    std::printf("columns:");
    for (const std::string& name : data->column_names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
  }
  // Deliberately no per-column min/max/mean: those are private.
  return 0;
}

int RunQuery(const Args& args) {
  auto path = Require(args, "data");
  auto program_name = Require(args, "program");
  auto epsilon_text = Require(args, "epsilon");
  auto range_text = Require(args, "range");
  auto budget_text = Require(args, "budget");
  for (const auto* r :
       {&path, &program_name, &epsilon_text, &range_text, &budget_text}) {
    if (!r->ok()) {
      std::fprintf(stderr, "%s\n", r->status().ToString().c_str());
      return 2;
    }
  }
  if (!ValidateMetricsFormat(args)) return 2;
  auto data = Dataset::FromCsvFile(*path, args.has_header);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto range = ParseRange(*range_text);
  if (!range.ok()) {
    std::fprintf(stderr, "%s\n", range.status().ToString().c_str());
    return 2;
  }
  auto params = ParseParams(Optional(args, "params", ""));
  if (!params.ok()) {
    std::fprintf(stderr, "%s\n", params.status().ToString().c_str());
    return 2;
  }

  ServiceOptions service_options;
  service_options.ledger_path = Optional(args, "ledger", "");
  service_options.runtime.num_workers = static_cast<std::size_t>(
      std::strtoul(Optional(args, "workers", "0").c_str(), nullptr, 10));
  // --chamber-pool N pre-forks N pooled chamber workers at service start;
  // blocks are then leased to warm workers instead of forking per block.
  service_options.chamber_pool_workers = static_cast<std::size_t>(
      std::strtoul(Optional(args, "chamber-pool", "0").c_str(), nullptr, 10));
  // Default to fresh entropy: reusing one noise stream across process
  // invocations would correlate releases (and, if the data changed between
  // runs, leak the difference). --seed exists for reproducible debugging.
  std::string seed_text = Optional(args, "seed", "");
  service_options.runtime.seed =
      seed_text.empty() ? std::random_device{}()
                        : std::strtoull(seed_text.c_str(), nullptr, 10);
  // --pad-deadline-us N pads every block execution to a fixed N-microsecond
  // cycle budget (paper §6.2 timing defence). Besides the side-channel
  // rationale, a driver script can use it to make per-block wall time
  // deterministic regardless of how fast the chambers actually run.
  std::string pad_text = Optional(args, "pad-deadline-us", "");
  if (!pad_text.empty()) {
    long long micros = std::strtoll(pad_text.c_str(), nullptr, 10);
    if (micros <= 0) {
      std::fprintf(stderr, "--pad-deadline-us must be positive\n");
      return 2;
    }
    service_options.runtime.chamber_policy.deadline =
        std::chrono::microseconds(micros);
    service_options.runtime.chamber_policy.pad_to_deadline = true;
  }
  std::string queue_depth_text = Optional(args, "queue-depth", "");
  if (!queue_depth_text.empty()) {
    service_options.admission_queue_capacity = static_cast<std::size_t>(
        std::strtoul(queue_depth_text.c_str(), nullptr, 10));
  }
  const std::string serve_text = Optional(args, "serve", "");
  if (!serve_text.empty()) {
    service_options.introspect_port =
        static_cast<int>(std::strtol(serve_text.c_str(), nullptr, 10));
  }
  // --collector-period-ms N samples metrics + budget ledgers into the
  // /timeseriesz history every N ms (default 1000; smoke tests use ~100
  // so history accumulates fast).
  std::string collector_text = Optional(args, "collector-period-ms", "");
  if (!collector_text.empty()) {
    service_options.collector_period_ms =
        std::strtoll(collector_text.c_str(), nullptr, 10);
  }
  // --amplification[=off|raw_epsilon|charged_epsilon] runs queries on a
  // Bernoulli(--amplification-rate) subsample and charges the ledger the
  // amplified epsilon' = ln(1 + rate * (e^eps - 1)) instead of the raw
  // epsilon (dp/amplification.h). Bare --amplification means raw_epsilon;
  // any non-off mode requires an explicit rate.
  std::string amplification_text = Optional(args, "amplification", "");
  if (!amplification_text.empty()) {
    auto mode = dp::ParseAmplificationMode(amplification_text);
    if (!mode.ok()) {
      std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
      return 2;
    }
    service_options.amplification = *mode;
  }
  std::string amplification_rate_text =
      Optional(args, "amplification-rate", "");
  if (!amplification_rate_text.empty()) {
    char* end = nullptr;
    double rate = std::strtod(amplification_rate_text.c_str(), &end);
    if (end == amplification_rate_text.c_str() || *end != '\0' ||
        !(rate > 0.0) || rate > 1.0) {
      std::fprintf(stderr,
                   "--amplification-rate must be a number in (0, 1]\n");
      return 2;
    }
    service_options.amplification_rate = rate;
  }
  if (service_options.amplification != dp::AmplificationMode::kOff &&
      !service_options.amplification_rate.has_value()) {
    std::fprintf(stderr,
                 "--amplification requires --amplification-rate=GAMMA (the "
                 "Bernoulli subsample rate, in (0, 1])\n");
    return 2;
  }

  GuptService service(service_options,
                      ProgramRegistry::WithStandardPrograms());
  if (!serve_text.empty()) {
    int port = service.introspect_port();
    if (port < 0) {
      std::fprintf(stderr, "introspection server failed to start\n");
      return 1;
    }
    // Machine-readable so a driver script can discover an ephemeral port.
    std::printf("introspection: serving on http://127.0.0.1:%d/\n", port);
    std::fflush(stdout);
  }
  DatasetOptions owner;
  owner.total_epsilon = std::strtod(budget_text->c_str(), nullptr);
  Status registered =
      service.RegisterDataset("cli", std::move(data).value(), owner);
  if (!registered.ok()) {
    std::fprintf(stderr, "%s\n", registered.ToString().c_str());
    return 1;
  }
  if (!service_options.ledger_path.empty()) {
    Status restored = service.RestoreLedger();
    if (!restored.ok()) {
      std::fprintf(stderr, "ledger restore failed: %s\n",
                   restored.ToString().c_str());
      return 1;
    }
  }

  QueryRequest request;
  request.analyst = Optional(args, "analyst", "cli");
  request.dataset = "cli";
  request.program.name = *program_name;
  request.program.params = *params;
  request.epsilon = std::strtod(epsilon_text->c_str(), nullptr);
  std::string mode = Optional(args, "mode", "tight");
  if (mode == "tight") {
    request.range_mode = RangeMode::kTight;
  } else if (mode == "loose") {
    request.range_mode = RangeMode::kLoose;
  } else {
    std::fprintf(stderr, "unknown mode: %s\n", mode.c_str());
    return 2;
  }
  // The declared range applies to every output dimension; probe the
  // program for its arity.
  auto probe = ProgramRegistry::WithStandardPrograms().Build(request.program);
  if (!probe.ok()) {
    std::fprintf(stderr, "%s\n", probe.status().ToString().c_str());
    return 2;
  }
  std::size_t output_dims = (*probe)()->output_dims();
  request.output_ranges.assign(output_dims, *range);

  std::string block_text = Optional(args, "block-size", "");
  if (!block_text.empty()) {
    request.block_size = static_cast<std::size_t>(
        std::strtoul(block_text.c_str(), nullptr, 10));
  }
  request.gamma = static_cast<std::size_t>(
      std::strtoul(Optional(args, "gamma", "1").c_str(), nullptr, 10));

  const bool async = args.options.count("async") > 0;
  Result<QueryReport> report =
      async ? service.SubmitQueryAsync(request).get()
            : service.SubmitQuery(request);
  if (!report.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("result          :");
  for (double v : report->output) std::printf(" %.6f", v);
  std::printf("\n");
  std::printf("epsilon spent   : %.4f\n", report->epsilon_spent);
  if (report->amplification != dp::AmplificationMode::kOff) {
    std::printf("amplification   : %s (rate=%.6f, epsilon raw %.4f -> "
                "charged %.4f)\n",
                dp::AmplificationModeToString(report->amplification),
                report->sampling_rate, report->epsilon_raw,
                report->epsilon_spent);
  }
  std::printf("budget remaining: %.4f\n",
              service.RemainingBudget("cli").value_or(0.0));
  std::printf("blocks          : %zu x %zu rows (gamma=%zu)\n",
              report->num_blocks, report->block_size, report->gamma);
  std::printf("trace           : %s\n", report->trace.Summary().c_str());
  if (!MaybeDumpMetrics(args)) return 2;

  const std::string metrics_out = Optional(args, "metrics-out", "");
  if (!metrics_out.empty()) {
    const std::string format = Optional(args, "metrics", "prom");
    std::string dump = GuptService::DumpMetrics(
        format == "json" ? MetricsFormat::kJson : MetricsFormat::kPrometheus);
    std::FILE* out = std::fopen(metrics_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write metrics to %s\n", metrics_out.c_str());
      return 1;
    }
    std::fwrite(dump.data(), 1, dump.size(), out);
    std::fclose(out);
    std::printf("metrics: written to %s\n", metrics_out.c_str());
    std::fflush(stdout);
  }

  if (!serve_text.empty()) {
    // Hold the service (and its introspection server) up for scraping
    // until the driver closes our stdin.
    std::printf("serving: close stdin (Ctrl-D) to exit\n");
    std::fflush(stdout);
    while (std::fgetc(stdin) != EOF) {
    }
  }
  return 0;
}

/// Parses one `dim,lo,hi[,label]` line. Blank lines and `#` comments
/// yield an empty result (ok() but no candidate).
Result<std::vector<SvtCandidateQuery>> ParseCandidateFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot read queries file: " + path);
  }
  std::vector<SvtCandidateQuery> candidates;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    std::stringstream ss(line);
    std::string dim_text, lo_text, hi_text, label;
    if (!std::getline(ss, dim_text, ',') || !std::getline(ss, lo_text, ',') ||
        !std::getline(ss, hi_text, ',')) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) +
          ": candidate must be dim,lo,hi[,label]: " + line);
    }
    std::getline(ss, label);  // optional; may contain commas
    SvtCandidateQuery candidate;
    char* end = nullptr;
    candidate.dim = static_cast<std::size_t>(
        std::strtoul(dim_text.c_str(), &end, 10));
    candidate.lo = std::strtod(lo_text.c_str(), nullptr);
    candidate.hi = std::strtod(hi_text.c_str(), nullptr);
    candidate.label = label.empty()
                          ? "line" + std::to_string(line_number)
                          : label;
    candidates.push_back(std::move(candidate));
  }
  if (candidates.empty()) {
    return Status::InvalidArgument("queries file has no candidates: " + path);
  }
  return candidates;
}

int RunSvt(const Args& args) {
  auto path = Require(args, "data");
  auto threshold_text = Require(args, "threshold");
  auto epsilon_text = Require(args, "epsilon");
  auto queries_path = Require(args, "queries");
  auto budget_text = Require(args, "budget");
  for (const auto* r :
       {&path, &threshold_text, &epsilon_text, &queries_path, &budget_text}) {
    if (!r->ok()) {
      std::fprintf(stderr, "%s\n", r->status().ToString().c_str());
      return 2;
    }
  }
  auto data = Dataset::FromCsvFile(*path, args.has_header);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto candidates = ParseCandidateFile(*queries_path);
  if (!candidates.ok()) {
    std::fprintf(stderr, "%s\n", candidates.status().ToString().c_str());
    return 2;
  }

  ServiceOptions service_options;
  service_options.introspect_port = -1;
  service_options.ledger_path = Optional(args, "ledger", "");
  std::string seed_text = Optional(args, "seed", "");
  service_options.runtime.seed =
      seed_text.empty() ? std::random_device{}()
                        : std::strtoull(seed_text.c_str(), nullptr, 10);
  GuptService service(service_options,
                      ProgramRegistry::WithStandardPrograms());
  DatasetOptions owner;
  owner.total_epsilon = std::strtod(budget_text->c_str(), nullptr);
  Status registered =
      service.RegisterDataset("cli", std::move(data).value(), owner);
  if (!registered.ok()) {
    std::fprintf(stderr, "%s\n", registered.ToString().c_str());
    return 1;
  }
  if (!service_options.ledger_path.empty()) {
    Status restored = service.RestoreLedger();
    if (!restored.ok()) {
      std::fprintf(stderr, "ledger restore failed: %s\n",
                   restored.ToString().c_str());
      return 1;
    }
  }

  SvtSessionRequest session;
  session.analyst = Optional(args, "analyst", "cli");
  session.dataset = "cli";
  session.threshold = std::strtod(threshold_text->c_str(), nullptr);
  session.epsilon = std::strtod(epsilon_text->c_str(), nullptr);
  session.max_positives = static_cast<std::size_t>(
      std::strtoul(Optional(args, "c", "1").c_str(), nullptr, 10));
  session.records_per_user = static_cast<std::size_t>(std::strtoul(
      Optional(args, "records-per-user", "1").c_str(), nullptr, 10));
  auto opened = service.OpenSvtSession(session);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::printf("session         : %s (epsilon %.4f charged once, c=%zu, "
              "threshold %g)\n",
              opened->session_id.c_str(), session.epsilon,
              session.max_positives, session.threshold);

  auto batch = service.SvtQueryBatch(opened->session_id, *candidates);
  if (!batch.ok()) {
    std::fprintf(stderr, "batch failed: %s\n",
                 batch.status().ToString().c_str());
    return 1;
  }

  std::printf("%-24s %-8s %s\n", "candidate", "verdict", "gap");
  for (const SvtBatchItem& item : batch->items) {
    if (item.verdict == dp::SvtVerdict::kAbove) {
      std::printf("%-24s %-8s %.3f\n", item.label.c_str(), "ABOVE", item.gap);
    } else {
      std::printf("%-24s %-8s -\n", item.label.c_str(), "below");
    }
  }
  if (batch->exhausted_midway) {
    std::printf("(halted: all %zu positives spent; %zu candidate(s) "
                "unanswered)\n",
                session.max_positives,
                candidates->size() - batch->items.size());
  }

  std::vector<SvtBatchItem> positives;
  for (const SvtBatchItem& item : batch->items) {
    if (item.verdict == dp::SvtVerdict::kAbove) positives.push_back(item);
  }
  std::sort(positives.begin(), positives.end(),
            [](const SvtBatchItem& a, const SvtBatchItem& b) {
              return a.gap > b.gap;
            });
  if (!positives.empty()) {
    std::printf("top-%zu by free gap:\n", positives.size());
    for (std::size_t rank = 0; rank < positives.size(); ++rank) {
      std::printf("  %zu. %s (gap %.3f)\n", rank + 1,
                  positives[rank].label.c_str(), positives[rank].gap);
    }
  }

  // Exhausted sessions auto-close; an explicit close of one is NotFound,
  // which is fine — the charge stays either way.
  (void)service.CloseSvtSession(opened->session_id);
  std::printf("epsilon charged : %.4f (for %zu candidate answers)\n",
              session.epsilon, batch->items.size());
  std::printf("budget remaining: %.4f\n",
              service.RemainingBudget("cli").value_or(0.0));
  return 0;
}

int RunProfile(const Args& args) {
  auto port_text = Require(args, "port");
  if (!port_text.ok()) {
    std::fprintf(stderr, "%s\n", port_text.status().ToString().c_str());
    return 2;
  }
  const int port = std::atoi(port_text->c_str());
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bad --port: %s\n", port_text->c_str());
    return 2;
  }
  const std::string seconds = Optional(args, "seconds", "1");
  const std::string hz = Optional(args, "hz", "99");
  const std::string out_path = Optional(args, "out", "gupt.folded");

  const double wait_s = std::strtod(seconds.c_str(), nullptr);
  const int timeout_ms =
      static_cast<int>((wait_s > 0 ? wait_s : 1) * 1000.0) + 10000;
  obs::introspect::HttpGetResult result = obs::introspect::HttpGet(
      "127.0.0.1", port, "/profilez?seconds=" + seconds + "&hz=" + hz,
      timeout_ms);
  if (!result.ok) {
    std::fprintf(stderr, "profile fetch failed: %s\n", result.error.c_str());
    return 1;
  }
  if (result.status != 200) {
    std::fprintf(stderr, "profile refused (HTTP %d): %s", result.status,
                 result.body.c_str());
    return 1;
  }
  const std::int64_t samples = obs::prof::FoldedSampleCount(result.body);
  if (samples < 0) {
    std::fprintf(stderr, "profile payload is not valid folded stacks\n");
    return 1;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << result.body;
  out.close();
  std::printf("wrote %s: %lld samples over %ss at %s Hz\n", out_path.c_str(),
              static_cast<long long>(samples), seconds.c_str(), hz.c_str());
  std::printf("render: flamegraph.pl %s > flame.svg, or load it in "
              "https://speedscope.app\n",
              out_path.c_str());
  return 0;
}

/// Fetches one introspection path from a serving gupt process.
Result<std::string> FetchIntrospection(const Args& args,
                                       const std::string& path) {
  auto port_text = Require(args, "port");
  if (!port_text.ok()) return port_text.status();
  const int port = std::atoi(port_text->c_str());
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad --port: " + *port_text);
  }
  obs::introspect::HttpGetResult result =
      obs::introspect::HttpGet("127.0.0.1", port, path, 10000);
  if (!result.ok) {
    return Status::Internal("fetch " + path + " failed: " + result.error);
  }
  if (result.status != 200) {
    return Status::Internal("fetch " + path + " refused (HTTP " +
                            std::to_string(result.status) + "): " +
                            result.body);
  }
  return result.body;
}

int RunAlerts(const Args& args) {
  const bool json = args.options.count("json") > 0;
  auto body = FetchIntrospection(
      args, json ? "/alertz?format=json" : "/alertz");
  if (!body.ok()) {
    std::fprintf(stderr, "%s\n", body.status().ToString().c_str());
    return 1;
  }
  std::fputs(body->c_str(), stdout);
  if (args.options.count("fail-on-firing") > 0) {
    // The JSON body spells instance state unambiguously.
    auto status_body =
        json ? body : FetchIntrospection(args, "/alertz?format=json");
    if (status_body.ok() &&
        status_body->find("\"state\":\"firing\"") != std::string::npos) {
      std::fprintf(stderr, "alerts firing\n");
      return 3;
    }
  }
  return 0;
}

int RunTop(const Args& args) {
  // One-shot text dashboard: health, budgets + burn, alerts, series.
  const std::string window = Optional(args, "window", "300");
  struct Section {
    const char* title;
    std::string path;
  };
  const Section sections[] = {
      {"health", "/healthz?verbose=1"},
      {"budgets", "/budgetz"},
      {"alerts", "/alertz"},
      {"series", "/timeseriesz?window=" + window},
  };
  for (const Section& section : sections) {
    auto body = FetchIntrospection(args, section.path);
    std::printf("== %s (%s) ==\n", section.title, section.path.c_str());
    if (!body.ok()) {
      // /healthz answers 503 when unhealthy — still worth printing.
      std::printf("%s\n\n", body.status().ToString().c_str());
      continue;
    }
    std::fputs(body->c_str(), stdout);
    std::printf("\n");
  }
  return 0;
}

int RunSelfTest() {
  // End-to-end smoke: write a CSV, query it twice through a ledger, and
  // verify the third invocation is refused by the restored ledger.
  const std::string csv_path = "/tmp/gupt_cli_selftest.csv";
  const std::string ledger_path = "/tmp/gupt_cli_selftest.ledger";
  std::remove(ledger_path.c_str());

  synthetic::CensusAgeOptions gen;
  gen.num_rows = 5000;
  Dataset ages = synthetic::CensusAges(gen).value();
  csv::Table table;
  table.column_names = {"age"};
  table.rows = ages.MaterializeRows();
  if (!csv::WriteFile(csv_path, table).ok()) return 1;

  auto run_query = [&](const char* epsilon) {
    Args args;
    args.command = "query";
    args.has_header = true;
    args.options = {{"data", csv_path},    {"program", "mean"},
                    {"params", "dim=0"},   {"epsilon", epsilon},
                    {"range", "0,150"},    {"budget", "2"},
                    {"ledger", ledger_path}};
    return RunQuery(args);
  };
  if (run_query("0.9") != 0) return 1;
  if (run_query("0.9") != 0) return 1;
  // 1.8 of 2.0 spent; a third query must be refused by the restored ledger.
  if (run_query("0.9") == 0) {
    std::fprintf(stderr, "selftest: third query should have been refused\n");
    return 1;
  }
  // The runs above flowed through the instrumented pipeline, so the metric
  // dumps must carry the core DP and stage series in both formats.
  std::string prom = GuptService::DumpMetrics(MetricsFormat::kPrometheus);
  std::string json = GuptService::DumpMetrics(MetricsFormat::kJson);
  for (const char* needle :
       {"gupt_dp_epsilon_charged_total", "gupt_runtime_stage_duration_seconds",
        "gupt_exec_block_duration_seconds"}) {
    if (prom.find(needle) == std::string::npos ||
        json.find(needle) == std::string::npos) {
      std::fprintf(stderr, "selftest: metrics dump is missing %s\n", needle);
      return 1;
    }
  }
  std::printf(
      "selftest: ok (ledger enforced the budget across runs; metrics "
      "exported)\n");
  return 0;
}

int Main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.command == "info") return RunInfo(args);
  if (args.command == "programs") return RunPrograms();
  if (args.command == "query") return RunQuery(args);
  if (args.command == "svt") return RunSvt(args);
  if (args.command == "profile") return RunProfile(args);
  if (args.command == "alerts") return RunAlerts(args);
  if (args.command == "top") return RunTop(args);
  if (args.command == "selftest") return RunSelfTest();
  return Usage();
}

}  // namespace
}  // namespace gupt

int main(int argc, char** argv) { return gupt::Main(argc, argv); }
