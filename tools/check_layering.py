#!/usr/bin/env python3
"""Layering lint: src/ modules may only include from layers below them.

The source tree is a strict DAG (see docs/architecture.md):

    obs < common < testing < dp < data < exec < core
        < analytics, baselines < service

`obs` sits at the bottom because even the thread pool reports metrics.
`testing` (the failpoint registry) sits just above common so every
runtime layer can compile fault sites in, while obs and common stay
failpoint-free (the introspection accept loop gets its fault hook
injected from the service layer instead). Each module may include its
own headers and those of lower layers, never a higher or sibling layer
(analytics and baselines are siblings). In particular this keeps the
staged query pipeline (src/core/pipeline/) free of service-level
concerns: core must never include service/. The same split governs the
interactive SVT subsystem: the mechanism (dp/svt.h) knows nothing of
sessions; the stateful registry (service/svt_session.h) composes it
with data/ and obs/ from the top layer. The profiling subsystem
(obs/prof/) follows the same doctrine: the sampler, rusage capture, and
slow-query log are plain bottom-layer mechanisms every layer may use
(core tags pipeline stages, exec sums child rusage), while their fault
hooks (`exec.rusage`, `service.introspect.profilez`) and the /profilez
and /slowz endpoints live in exec/ and service/ — obs stays
failpoint-free and serves no policy. The columnar-memory subsystem
splits the same way: the arena allocator (common/arena.h) is a plain
bottom-layer mechanism; the zero-copy ColumnStore/DatasetView types and
the block-gathering partitioner live in data/; the pre-warmed chamber
pool (exec/chamber_pool.h) composes data views, obs metrics, and the
testing failpoints from the exec layer; and only service/ decides
whether a pool exists at all (it owns the ChamberPool — core holds a
non-owning pointer and must never include service/ to get one).

Usage: check_layering.py <repo-root>
Exits non-zero listing every violating include.
"""

import pathlib
import re
import sys

# Module -> layer rank. Equal ranks are siblings and may not include each
# other. A module may include modules of strictly lower rank (and itself).
LAYER = {
    "obs": 0,
    "common": 1,
    "testing": 2,
    "dp": 3,
    "data": 4,
    "exec": 5,
    "core": 6,
    "analytics": 7,
    "baselines": 7,
    "service": 8,
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([a-z_]+)/')


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    src = pathlib.Path(sys.argv[1]) / "src"
    if not src.is_dir():
        print(f"no src/ directory under {sys.argv[1]}", file=sys.stderr)
        return 2

    violations = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        module = path.relative_to(src).parts[0]
        if module not in LAYER:
            violations.append(f"{path}: unknown module '{module}' "
                              f"(register it in tools/check_layering.py)")
            continue
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            match = INCLUDE_RE.match(line)
            if not match:
                continue
            target = match.group(1)
            if target not in LAYER:
                violations.append(
                    f"{path}:{lineno}: include of unknown module "
                    f"'{target}/'")
                continue
            if target == module:
                continue
            if LAYER[target] >= LAYER[module]:
                violations.append(
                    f"{path}:{lineno}: '{module}' (layer {LAYER[module]}) "
                    f"may not include '{target}/' (layer {LAYER[target]})")

    if violations:
        print("layering violations:")
        for v in violations:
            print(f"  {v}")
        return 1
    print("layering ok: all src/ includes point strictly downward")
    return 0


if __name__ == "__main__":
    sys.exit(main())
