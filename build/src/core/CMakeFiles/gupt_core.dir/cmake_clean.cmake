file(REMOVE_RECURSE
  "CMakeFiles/gupt_core.dir/aging.cc.o"
  "CMakeFiles/gupt_core.dir/aging.cc.o.d"
  "CMakeFiles/gupt_core.dir/block_planner.cc.o"
  "CMakeFiles/gupt_core.dir/block_planner.cc.o.d"
  "CMakeFiles/gupt_core.dir/budget_allocator.cc.o"
  "CMakeFiles/gupt_core.dir/budget_allocator.cc.o.d"
  "CMakeFiles/gupt_core.dir/budget_estimator.cc.o"
  "CMakeFiles/gupt_core.dir/budget_estimator.cc.o.d"
  "CMakeFiles/gupt_core.dir/canonical.cc.o"
  "CMakeFiles/gupt_core.dir/canonical.cc.o.d"
  "CMakeFiles/gupt_core.dir/gupt.cc.o"
  "CMakeFiles/gupt_core.dir/gupt.cc.o.d"
  "CMakeFiles/gupt_core.dir/output_range.cc.o"
  "CMakeFiles/gupt_core.dir/output_range.cc.o.d"
  "CMakeFiles/gupt_core.dir/sample_aggregate.cc.o"
  "CMakeFiles/gupt_core.dir/sample_aggregate.cc.o.d"
  "libgupt_core.a"
  "libgupt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gupt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
