file(REMOVE_RECURSE
  "libgupt_core.a"
)
