
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aging.cc" "src/core/CMakeFiles/gupt_core.dir/aging.cc.o" "gcc" "src/core/CMakeFiles/gupt_core.dir/aging.cc.o.d"
  "/root/repo/src/core/block_planner.cc" "src/core/CMakeFiles/gupt_core.dir/block_planner.cc.o" "gcc" "src/core/CMakeFiles/gupt_core.dir/block_planner.cc.o.d"
  "/root/repo/src/core/budget_allocator.cc" "src/core/CMakeFiles/gupt_core.dir/budget_allocator.cc.o" "gcc" "src/core/CMakeFiles/gupt_core.dir/budget_allocator.cc.o.d"
  "/root/repo/src/core/budget_estimator.cc" "src/core/CMakeFiles/gupt_core.dir/budget_estimator.cc.o" "gcc" "src/core/CMakeFiles/gupt_core.dir/budget_estimator.cc.o.d"
  "/root/repo/src/core/canonical.cc" "src/core/CMakeFiles/gupt_core.dir/canonical.cc.o" "gcc" "src/core/CMakeFiles/gupt_core.dir/canonical.cc.o.d"
  "/root/repo/src/core/gupt.cc" "src/core/CMakeFiles/gupt_core.dir/gupt.cc.o" "gcc" "src/core/CMakeFiles/gupt_core.dir/gupt.cc.o.d"
  "/root/repo/src/core/output_range.cc" "src/core/CMakeFiles/gupt_core.dir/output_range.cc.o" "gcc" "src/core/CMakeFiles/gupt_core.dir/output_range.cc.o.d"
  "/root/repo/src/core/sample_aggregate.cc" "src/core/CMakeFiles/gupt_core.dir/sample_aggregate.cc.o" "gcc" "src/core/CMakeFiles/gupt_core.dir/sample_aggregate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gupt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/gupt_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gupt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gupt_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
