# Empty dependencies file for gupt_core.
# This may be replaced when dependencies are built.
