file(REMOVE_RECURSE
  "CMakeFiles/gupt_analytics.dir/kmeans.cc.o"
  "CMakeFiles/gupt_analytics.dir/kmeans.cc.o.d"
  "CMakeFiles/gupt_analytics.dir/linear_regression.cc.o"
  "CMakeFiles/gupt_analytics.dir/linear_regression.cc.o.d"
  "CMakeFiles/gupt_analytics.dir/logistic_regression.cc.o"
  "CMakeFiles/gupt_analytics.dir/logistic_regression.cc.o.d"
  "CMakeFiles/gupt_analytics.dir/pagerank.cc.o"
  "CMakeFiles/gupt_analytics.dir/pagerank.cc.o.d"
  "CMakeFiles/gupt_analytics.dir/pca.cc.o"
  "CMakeFiles/gupt_analytics.dir/pca.cc.o.d"
  "CMakeFiles/gupt_analytics.dir/queries.cc.o"
  "CMakeFiles/gupt_analytics.dir/queries.cc.o.d"
  "libgupt_analytics.a"
  "libgupt_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gupt_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
