file(REMOVE_RECURSE
  "libgupt_analytics.a"
)
