
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/kmeans.cc" "src/analytics/CMakeFiles/gupt_analytics.dir/kmeans.cc.o" "gcc" "src/analytics/CMakeFiles/gupt_analytics.dir/kmeans.cc.o.d"
  "/root/repo/src/analytics/linear_regression.cc" "src/analytics/CMakeFiles/gupt_analytics.dir/linear_regression.cc.o" "gcc" "src/analytics/CMakeFiles/gupt_analytics.dir/linear_regression.cc.o.d"
  "/root/repo/src/analytics/logistic_regression.cc" "src/analytics/CMakeFiles/gupt_analytics.dir/logistic_regression.cc.o" "gcc" "src/analytics/CMakeFiles/gupt_analytics.dir/logistic_regression.cc.o.d"
  "/root/repo/src/analytics/pagerank.cc" "src/analytics/CMakeFiles/gupt_analytics.dir/pagerank.cc.o" "gcc" "src/analytics/CMakeFiles/gupt_analytics.dir/pagerank.cc.o.d"
  "/root/repo/src/analytics/pca.cc" "src/analytics/CMakeFiles/gupt_analytics.dir/pca.cc.o" "gcc" "src/analytics/CMakeFiles/gupt_analytics.dir/pca.cc.o.d"
  "/root/repo/src/analytics/queries.cc" "src/analytics/CMakeFiles/gupt_analytics.dir/queries.cc.o" "gcc" "src/analytics/CMakeFiles/gupt_analytics.dir/queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gupt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gupt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gupt_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/gupt_dp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
