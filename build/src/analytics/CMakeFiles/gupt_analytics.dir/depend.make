# Empty dependencies file for gupt_analytics.
# This may be replaced when dependencies are built.
