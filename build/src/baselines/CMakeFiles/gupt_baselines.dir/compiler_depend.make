# Empty compiler generated dependencies file for gupt_baselines.
# This may be replaced when dependencies are built.
