file(REMOVE_RECURSE
  "CMakeFiles/gupt_baselines.dir/airavat.cc.o"
  "CMakeFiles/gupt_baselines.dir/airavat.cc.o.d"
  "CMakeFiles/gupt_baselines.dir/nonprivate.cc.o"
  "CMakeFiles/gupt_baselines.dir/nonprivate.cc.o.d"
  "CMakeFiles/gupt_baselines.dir/pinq.cc.o"
  "CMakeFiles/gupt_baselines.dir/pinq.cc.o.d"
  "libgupt_baselines.a"
  "libgupt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gupt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
