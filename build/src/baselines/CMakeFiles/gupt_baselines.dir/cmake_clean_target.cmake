file(REMOVE_RECURSE
  "libgupt_baselines.a"
)
