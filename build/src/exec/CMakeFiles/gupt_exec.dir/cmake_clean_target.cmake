file(REMOVE_RECURSE
  "libgupt_exec.a"
)
