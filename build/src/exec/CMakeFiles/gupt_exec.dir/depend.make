# Empty dependencies file for gupt_exec.
# This may be replaced when dependencies are built.
