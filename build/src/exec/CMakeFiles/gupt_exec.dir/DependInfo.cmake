
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/chamber.cc" "src/exec/CMakeFiles/gupt_exec.dir/chamber.cc.o" "gcc" "src/exec/CMakeFiles/gupt_exec.dir/chamber.cc.o.d"
  "/root/repo/src/exec/computation_manager.cc" "src/exec/CMakeFiles/gupt_exec.dir/computation_manager.cc.o" "gcc" "src/exec/CMakeFiles/gupt_exec.dir/computation_manager.cc.o.d"
  "/root/repo/src/exec/process_chamber.cc" "src/exec/CMakeFiles/gupt_exec.dir/process_chamber.cc.o" "gcc" "src/exec/CMakeFiles/gupt_exec.dir/process_chamber.cc.o.d"
  "/root/repo/src/exec/program.cc" "src/exec/CMakeFiles/gupt_exec.dir/program.cc.o" "gcc" "src/exec/CMakeFiles/gupt_exec.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gupt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gupt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/gupt_dp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
