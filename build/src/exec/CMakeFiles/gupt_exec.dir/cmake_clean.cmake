file(REMOVE_RECURSE
  "CMakeFiles/gupt_exec.dir/chamber.cc.o"
  "CMakeFiles/gupt_exec.dir/chamber.cc.o.d"
  "CMakeFiles/gupt_exec.dir/computation_manager.cc.o"
  "CMakeFiles/gupt_exec.dir/computation_manager.cc.o.d"
  "CMakeFiles/gupt_exec.dir/process_chamber.cc.o"
  "CMakeFiles/gupt_exec.dir/process_chamber.cc.o.d"
  "CMakeFiles/gupt_exec.dir/program.cc.o"
  "CMakeFiles/gupt_exec.dir/program.cc.o.d"
  "libgupt_exec.a"
  "libgupt_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gupt_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
