# Empty compiler generated dependencies file for gupt_data.
# This may be replaced when dependencies are built.
