file(REMOVE_RECURSE
  "CMakeFiles/gupt_data.dir/budget_store.cc.o"
  "CMakeFiles/gupt_data.dir/budget_store.cc.o.d"
  "CMakeFiles/gupt_data.dir/dataset.cc.o"
  "CMakeFiles/gupt_data.dir/dataset.cc.o.d"
  "CMakeFiles/gupt_data.dir/dataset_manager.cc.o"
  "CMakeFiles/gupt_data.dir/dataset_manager.cc.o.d"
  "CMakeFiles/gupt_data.dir/partitioner.cc.o"
  "CMakeFiles/gupt_data.dir/partitioner.cc.o.d"
  "CMakeFiles/gupt_data.dir/synthetic.cc.o"
  "CMakeFiles/gupt_data.dir/synthetic.cc.o.d"
  "libgupt_data.a"
  "libgupt_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gupt_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
