file(REMOVE_RECURSE
  "libgupt_data.a"
)
