
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/budget_store.cc" "src/data/CMakeFiles/gupt_data.dir/budget_store.cc.o" "gcc" "src/data/CMakeFiles/gupt_data.dir/budget_store.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/gupt_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/gupt_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/dataset_manager.cc" "src/data/CMakeFiles/gupt_data.dir/dataset_manager.cc.o" "gcc" "src/data/CMakeFiles/gupt_data.dir/dataset_manager.cc.o.d"
  "/root/repo/src/data/partitioner.cc" "src/data/CMakeFiles/gupt_data.dir/partitioner.cc.o" "gcc" "src/data/CMakeFiles/gupt_data.dir/partitioner.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/gupt_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/gupt_data.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gupt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/gupt_dp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
