file(REMOVE_RECURSE
  "libgupt_common.a"
)
