file(REMOVE_RECURSE
  "CMakeFiles/gupt_common.dir/csv.cc.o"
  "CMakeFiles/gupt_common.dir/csv.cc.o.d"
  "CMakeFiles/gupt_common.dir/logging.cc.o"
  "CMakeFiles/gupt_common.dir/logging.cc.o.d"
  "CMakeFiles/gupt_common.dir/rng.cc.o"
  "CMakeFiles/gupt_common.dir/rng.cc.o.d"
  "CMakeFiles/gupt_common.dir/status.cc.o"
  "CMakeFiles/gupt_common.dir/status.cc.o.d"
  "CMakeFiles/gupt_common.dir/thread_pool.cc.o"
  "CMakeFiles/gupt_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/gupt_common.dir/vec.cc.o"
  "CMakeFiles/gupt_common.dir/vec.cc.o.d"
  "libgupt_common.a"
  "libgupt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gupt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
