# Empty dependencies file for gupt_common.
# This may be replaced when dependencies are built.
