
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/accountant.cc" "src/dp/CMakeFiles/gupt_dp.dir/accountant.cc.o" "gcc" "src/dp/CMakeFiles/gupt_dp.dir/accountant.cc.o.d"
  "/root/repo/src/dp/laplace.cc" "src/dp/CMakeFiles/gupt_dp.dir/laplace.cc.o" "gcc" "src/dp/CMakeFiles/gupt_dp.dir/laplace.cc.o.d"
  "/root/repo/src/dp/noisy_ops.cc" "src/dp/CMakeFiles/gupt_dp.dir/noisy_ops.cc.o" "gcc" "src/dp/CMakeFiles/gupt_dp.dir/noisy_ops.cc.o.d"
  "/root/repo/src/dp/percentile.cc" "src/dp/CMakeFiles/gupt_dp.dir/percentile.cc.o" "gcc" "src/dp/CMakeFiles/gupt_dp.dir/percentile.cc.o.d"
  "/root/repo/src/dp/snapping.cc" "src/dp/CMakeFiles/gupt_dp.dir/snapping.cc.o" "gcc" "src/dp/CMakeFiles/gupt_dp.dir/snapping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gupt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
