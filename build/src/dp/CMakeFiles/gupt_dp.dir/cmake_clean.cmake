file(REMOVE_RECURSE
  "CMakeFiles/gupt_dp.dir/accountant.cc.o"
  "CMakeFiles/gupt_dp.dir/accountant.cc.o.d"
  "CMakeFiles/gupt_dp.dir/laplace.cc.o"
  "CMakeFiles/gupt_dp.dir/laplace.cc.o.d"
  "CMakeFiles/gupt_dp.dir/noisy_ops.cc.o"
  "CMakeFiles/gupt_dp.dir/noisy_ops.cc.o.d"
  "CMakeFiles/gupt_dp.dir/percentile.cc.o"
  "CMakeFiles/gupt_dp.dir/percentile.cc.o.d"
  "CMakeFiles/gupt_dp.dir/snapping.cc.o"
  "CMakeFiles/gupt_dp.dir/snapping.cc.o.d"
  "libgupt_dp.a"
  "libgupt_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gupt_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
