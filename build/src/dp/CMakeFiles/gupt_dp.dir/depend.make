# Empty dependencies file for gupt_dp.
# This may be replaced when dependencies are built.
