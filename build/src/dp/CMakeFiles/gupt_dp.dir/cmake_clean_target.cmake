file(REMOVE_RECURSE
  "libgupt_dp.a"
)
