file(REMOVE_RECURSE
  "libgupt_service.a"
)
