# Empty compiler generated dependencies file for gupt_service.
# This may be replaced when dependencies are built.
