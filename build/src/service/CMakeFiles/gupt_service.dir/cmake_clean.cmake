file(REMOVE_RECURSE
  "CMakeFiles/gupt_service.dir/gupt_service.cc.o"
  "CMakeFiles/gupt_service.dir/gupt_service.cc.o.d"
  "CMakeFiles/gupt_service.dir/program_registry.cc.o"
  "CMakeFiles/gupt_service.dir/program_registry.cc.o.d"
  "libgupt_service.a"
  "libgupt_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gupt_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
