# Empty compiler generated dependencies file for private_clustering.
# This may be replaced when dependencies are built.
