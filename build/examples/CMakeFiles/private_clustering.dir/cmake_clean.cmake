file(REMOVE_RECURSE
  "CMakeFiles/private_clustering.dir/private_clustering.cpp.o"
  "CMakeFiles/private_clustering.dir/private_clustering.cpp.o.d"
  "private_clustering"
  "private_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
