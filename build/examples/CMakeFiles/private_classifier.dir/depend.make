# Empty dependencies file for private_classifier.
# This may be replaced when dependencies are built.
