file(REMOVE_RECURSE
  "CMakeFiles/private_classifier.dir/private_classifier.cpp.o"
  "CMakeFiles/private_classifier.dir/private_classifier.cpp.o.d"
  "private_classifier"
  "private_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
