file(REMOVE_RECURSE
  "CMakeFiles/hosted_service.dir/hosted_service.cpp.o"
  "CMakeFiles/hosted_service.dir/hosted_service.cpp.o.d"
  "hosted_service"
  "hosted_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosted_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
