# Empty dependencies file for hosted_service.
# This may be replaced when dependencies are built.
