file(REMOVE_RECURSE
  "CMakeFiles/budget_planner.dir/budget_planner.cpp.o"
  "CMakeFiles/budget_planner.dir/budget_planner.cpp.o.d"
  "budget_planner"
  "budget_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/budget_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
