# Empty dependencies file for budget_planner.
# This may be replaced when dependencies are built.
