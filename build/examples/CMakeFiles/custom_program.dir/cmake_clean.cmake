file(REMOVE_RECURSE
  "CMakeFiles/custom_program.dir/custom_program.cpp.o"
  "CMakeFiles/custom_program.dir/custom_program.cpp.o.d"
  "custom_program"
  "custom_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
