# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/dp_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/analytics_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/service_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
