file(REMOVE_RECURSE
  "CMakeFiles/dp_test.dir/dp/accountant_test.cc.o"
  "CMakeFiles/dp_test.dir/dp/accountant_test.cc.o.d"
  "CMakeFiles/dp_test.dir/dp/laplace_test.cc.o"
  "CMakeFiles/dp_test.dir/dp/laplace_test.cc.o.d"
  "CMakeFiles/dp_test.dir/dp/noisy_ops_test.cc.o"
  "CMakeFiles/dp_test.dir/dp/noisy_ops_test.cc.o.d"
  "CMakeFiles/dp_test.dir/dp/percentile_test.cc.o"
  "CMakeFiles/dp_test.dir/dp/percentile_test.cc.o.d"
  "CMakeFiles/dp_test.dir/dp/quantile_pair_test.cc.o"
  "CMakeFiles/dp_test.dir/dp/quantile_pair_test.cc.o.d"
  "CMakeFiles/dp_test.dir/dp/snapping_test.cc.o"
  "CMakeFiles/dp_test.dir/dp/snapping_test.cc.o.d"
  "dp_test"
  "dp_test.pdb"
  "dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
