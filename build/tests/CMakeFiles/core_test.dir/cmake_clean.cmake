file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/aging_test.cc.o"
  "CMakeFiles/core_test.dir/core/aging_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/block_planner_test.cc.o"
  "CMakeFiles/core_test.dir/core/block_planner_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/budget_allocator_test.cc.o"
  "CMakeFiles/core_test.dir/core/budget_allocator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/budget_estimator_test.cc.o"
  "CMakeFiles/core_test.dir/core/budget_estimator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/canonical_test.cc.o"
  "CMakeFiles/core_test.dir/core/canonical_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/gupt_modes_test.cc.o"
  "CMakeFiles/core_test.dir/core/gupt_modes_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/gupt_test.cc.o"
  "CMakeFiles/core_test.dir/core/gupt_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/output_range_test.cc.o"
  "CMakeFiles/core_test.dir/core/output_range_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/saf_property_test.cc.o"
  "CMakeFiles/core_test.dir/core/saf_property_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/sample_aggregate_test.cc.o"
  "CMakeFiles/core_test.dir/core/sample_aggregate_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/user_privacy_test.cc.o"
  "CMakeFiles/core_test.dir/core/user_privacy_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
