
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/aging_test.cc" "tests/CMakeFiles/core_test.dir/core/aging_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/aging_test.cc.o.d"
  "/root/repo/tests/core/block_planner_test.cc" "tests/CMakeFiles/core_test.dir/core/block_planner_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/block_planner_test.cc.o.d"
  "/root/repo/tests/core/budget_allocator_test.cc" "tests/CMakeFiles/core_test.dir/core/budget_allocator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/budget_allocator_test.cc.o.d"
  "/root/repo/tests/core/budget_estimator_test.cc" "tests/CMakeFiles/core_test.dir/core/budget_estimator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/budget_estimator_test.cc.o.d"
  "/root/repo/tests/core/canonical_test.cc" "tests/CMakeFiles/core_test.dir/core/canonical_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/canonical_test.cc.o.d"
  "/root/repo/tests/core/gupt_modes_test.cc" "tests/CMakeFiles/core_test.dir/core/gupt_modes_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/gupt_modes_test.cc.o.d"
  "/root/repo/tests/core/gupt_test.cc" "tests/CMakeFiles/core_test.dir/core/gupt_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/gupt_test.cc.o.d"
  "/root/repo/tests/core/output_range_test.cc" "tests/CMakeFiles/core_test.dir/core/output_range_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/output_range_test.cc.o.d"
  "/root/repo/tests/core/saf_property_test.cc" "tests/CMakeFiles/core_test.dir/core/saf_property_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/saf_property_test.cc.o.d"
  "/root/repo/tests/core/sample_aggregate_test.cc" "tests/CMakeFiles/core_test.dir/core/sample_aggregate_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sample_aggregate_test.cc.o.d"
  "/root/repo/tests/core/user_privacy_test.cc" "tests/CMakeFiles/core_test.dir/core/user_privacy_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/user_privacy_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gupt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/gupt_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gupt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gupt_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gupt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/gupt_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gupt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/gupt_service.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
