
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/service/gupt_service_test.cc" "tests/CMakeFiles/service_test.dir/service/gupt_service_test.cc.o" "gcc" "tests/CMakeFiles/service_test.dir/service/gupt_service_test.cc.o.d"
  "/root/repo/tests/service/program_registry_test.cc" "tests/CMakeFiles/service_test.dir/service/program_registry_test.cc.o" "gcc" "tests/CMakeFiles/service_test.dir/service/program_registry_test.cc.o.d"
  "/root/repo/tests/service/service_stress_test.cc" "tests/CMakeFiles/service_test.dir/service/service_stress_test.cc.o" "gcc" "tests/CMakeFiles/service_test.dir/service/service_stress_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gupt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/gupt_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gupt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gupt_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gupt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/gupt_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gupt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/gupt_service.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
