
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/csv_property_test.cc" "tests/CMakeFiles/common_test.dir/common/csv_property_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/csv_property_test.cc.o.d"
  "/root/repo/tests/common/csv_test.cc" "tests/CMakeFiles/common_test.dir/common/csv_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/csv_test.cc.o.d"
  "/root/repo/tests/common/logging_test.cc" "tests/CMakeFiles/common_test.dir/common/logging_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/logging_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/common_test.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/common_test.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/status_test.cc.o.d"
  "/root/repo/tests/common/thread_pool_test.cc" "tests/CMakeFiles/common_test.dir/common/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/thread_pool_test.cc.o.d"
  "/root/repo/tests/common/vec_test.cc" "tests/CMakeFiles/common_test.dir/common/vec_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/vec_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gupt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/gupt_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gupt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gupt_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gupt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/gupt_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gupt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/gupt_service.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
