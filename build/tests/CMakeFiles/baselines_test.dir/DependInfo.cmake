
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/airavat_kmeans_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/airavat_kmeans_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/airavat_kmeans_test.cc.o.d"
  "/root/repo/tests/baselines/airavat_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/airavat_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/airavat_test.cc.o.d"
  "/root/repo/tests/baselines/nonprivate_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/nonprivate_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/nonprivate_test.cc.o.d"
  "/root/repo/tests/baselines/pinq_logreg_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/pinq_logreg_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/pinq_logreg_test.cc.o.d"
  "/root/repo/tests/baselines/pinq_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/pinq_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/pinq_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gupt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/gupt_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gupt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gupt_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gupt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/gupt_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gupt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/gupt_service.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
