file(REMOVE_RECURSE
  "CMakeFiles/analytics_test.dir/analytics/kmeans_test.cc.o"
  "CMakeFiles/analytics_test.dir/analytics/kmeans_test.cc.o.d"
  "CMakeFiles/analytics_test.dir/analytics/linear_regression_test.cc.o"
  "CMakeFiles/analytics_test.dir/analytics/linear_regression_test.cc.o.d"
  "CMakeFiles/analytics_test.dir/analytics/logistic_regression_test.cc.o"
  "CMakeFiles/analytics_test.dir/analytics/logistic_regression_test.cc.o.d"
  "CMakeFiles/analytics_test.dir/analytics/matrix_queries_test.cc.o"
  "CMakeFiles/analytics_test.dir/analytics/matrix_queries_test.cc.o.d"
  "CMakeFiles/analytics_test.dir/analytics/pagerank_test.cc.o"
  "CMakeFiles/analytics_test.dir/analytics/pagerank_test.cc.o.d"
  "CMakeFiles/analytics_test.dir/analytics/pca_test.cc.o"
  "CMakeFiles/analytics_test.dir/analytics/pca_test.cc.o.d"
  "CMakeFiles/analytics_test.dir/analytics/queries_test.cc.o"
  "CMakeFiles/analytics_test.dir/analytics/queries_test.cc.o.d"
  "CMakeFiles/analytics_test.dir/analytics/robust_queries_test.cc.o"
  "CMakeFiles/analytics_test.dir/analytics/robust_queries_test.cc.o.d"
  "analytics_test"
  "analytics_test.pdb"
  "analytics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
