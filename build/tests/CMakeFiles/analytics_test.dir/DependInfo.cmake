
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analytics/kmeans_test.cc" "tests/CMakeFiles/analytics_test.dir/analytics/kmeans_test.cc.o" "gcc" "tests/CMakeFiles/analytics_test.dir/analytics/kmeans_test.cc.o.d"
  "/root/repo/tests/analytics/linear_regression_test.cc" "tests/CMakeFiles/analytics_test.dir/analytics/linear_regression_test.cc.o" "gcc" "tests/CMakeFiles/analytics_test.dir/analytics/linear_regression_test.cc.o.d"
  "/root/repo/tests/analytics/logistic_regression_test.cc" "tests/CMakeFiles/analytics_test.dir/analytics/logistic_regression_test.cc.o" "gcc" "tests/CMakeFiles/analytics_test.dir/analytics/logistic_regression_test.cc.o.d"
  "/root/repo/tests/analytics/matrix_queries_test.cc" "tests/CMakeFiles/analytics_test.dir/analytics/matrix_queries_test.cc.o" "gcc" "tests/CMakeFiles/analytics_test.dir/analytics/matrix_queries_test.cc.o.d"
  "/root/repo/tests/analytics/pagerank_test.cc" "tests/CMakeFiles/analytics_test.dir/analytics/pagerank_test.cc.o" "gcc" "tests/CMakeFiles/analytics_test.dir/analytics/pagerank_test.cc.o.d"
  "/root/repo/tests/analytics/pca_test.cc" "tests/CMakeFiles/analytics_test.dir/analytics/pca_test.cc.o" "gcc" "tests/CMakeFiles/analytics_test.dir/analytics/pca_test.cc.o.d"
  "/root/repo/tests/analytics/queries_test.cc" "tests/CMakeFiles/analytics_test.dir/analytics/queries_test.cc.o" "gcc" "tests/CMakeFiles/analytics_test.dir/analytics/queries_test.cc.o.d"
  "/root/repo/tests/analytics/robust_queries_test.cc" "tests/CMakeFiles/analytics_test.dir/analytics/robust_queries_test.cc.o" "gcc" "tests/CMakeFiles/analytics_test.dir/analytics/robust_queries_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gupt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/gupt_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gupt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gupt_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gupt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/gupt_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gupt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/gupt_service.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
