# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_usage "/root/repo/build/tools/gupt_cli")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_selftest "/root/repo/build/tools/gupt_cli" "selftest")
set_tests_properties(cli_selftest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
