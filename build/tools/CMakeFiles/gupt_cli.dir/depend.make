# Empty dependencies file for gupt_cli.
# This may be replaced when dependencies are built.
