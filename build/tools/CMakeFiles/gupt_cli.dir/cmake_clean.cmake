file(REMOVE_RECURSE
  "CMakeFiles/gupt_cli.dir/gupt_cli.cpp.o"
  "CMakeFiles/gupt_cli.dir/gupt_cli.cpp.o.d"
  "gupt_cli"
  "gupt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gupt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
