# Empty dependencies file for ablation_pinq_logreg.
# This may be replaced when dependencies are built.
