file(REMOVE_RECURSE
  "CMakeFiles/ablation_pinq_logreg.dir/ablation_pinq_logreg.cc.o"
  "CMakeFiles/ablation_pinq_logreg.dir/ablation_pinq_logreg.cc.o.d"
  "ablation_pinq_logreg"
  "ablation_pinq_logreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pinq_logreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
