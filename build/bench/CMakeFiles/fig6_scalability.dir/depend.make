# Empty dependencies file for fig6_scalability.
# This may be replaced when dependencies are built.
