file(REMOVE_RECURSE
  "CMakeFiles/fig6_scalability.dir/fig6_scalability.cc.o"
  "CMakeFiles/fig6_scalability.dir/fig6_scalability.cc.o.d"
  "fig6_scalability"
  "fig6_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
