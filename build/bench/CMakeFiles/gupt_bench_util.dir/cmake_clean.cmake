file(REMOVE_RECURSE
  "CMakeFiles/gupt_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/gupt_bench_util.dir/bench_util.cc.o.d"
  "libgupt_bench_util.a"
  "libgupt_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gupt_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
