# Empty compiler generated dependencies file for gupt_bench_util.
# This may be replaced when dependencies are built.
