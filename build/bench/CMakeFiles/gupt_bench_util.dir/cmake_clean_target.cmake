file(REMOVE_RECURSE
  "libgupt_bench_util.a"
)
