file(REMOVE_RECURSE
  "CMakeFiles/fig4_kmeans_icv.dir/fig4_kmeans_icv.cc.o"
  "CMakeFiles/fig4_kmeans_icv.dir/fig4_kmeans_icv.cc.o.d"
  "fig4_kmeans_icv"
  "fig4_kmeans_icv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_kmeans_icv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
