# Empty compiler generated dependencies file for fig4_kmeans_icv.
# This may be replaced when dependencies are built.
