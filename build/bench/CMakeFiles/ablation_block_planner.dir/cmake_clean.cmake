file(REMOVE_RECURSE
  "CMakeFiles/ablation_block_planner.dir/ablation_block_planner.cc.o"
  "CMakeFiles/ablation_block_planner.dir/ablation_block_planner.cc.o.d"
  "ablation_block_planner"
  "ablation_block_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_block_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
