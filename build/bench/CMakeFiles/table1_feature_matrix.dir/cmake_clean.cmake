file(REMOVE_RECURSE
  "CMakeFiles/table1_feature_matrix.dir/table1_feature_matrix.cc.o"
  "CMakeFiles/table1_feature_matrix.dir/table1_feature_matrix.cc.o.d"
  "table1_feature_matrix"
  "table1_feature_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_feature_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
