# Empty dependencies file for table1_feature_matrix.
# This may be replaced when dependencies are built.
