# Empty dependencies file for fig7_accuracy_cdf.
# This may be replaced when dependencies are built.
