file(REMOVE_RECURSE
  "CMakeFiles/fig7_accuracy_cdf.dir/fig7_accuracy_cdf.cc.o"
  "CMakeFiles/fig7_accuracy_cdf.dir/fig7_accuracy_cdf.cc.o.d"
  "fig7_accuracy_cdf"
  "fig7_accuracy_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_accuracy_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
