# Empty compiler generated dependencies file for ablation_resampling.
# This may be replaced when dependencies are built.
