file(REMOVE_RECURSE
  "CMakeFiles/ablation_resampling.dir/ablation_resampling.cc.o"
  "CMakeFiles/ablation_resampling.dir/ablation_resampling.cc.o.d"
  "ablation_resampling"
  "ablation_resampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_resampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
