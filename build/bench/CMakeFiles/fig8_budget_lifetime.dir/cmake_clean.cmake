file(REMOVE_RECURSE
  "CMakeFiles/fig8_budget_lifetime.dir/fig8_budget_lifetime.cc.o"
  "CMakeFiles/fig8_budget_lifetime.dir/fig8_budget_lifetime.cc.o.d"
  "fig8_budget_lifetime"
  "fig8_budget_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_budget_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
