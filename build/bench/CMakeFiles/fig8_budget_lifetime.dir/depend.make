# Empty dependencies file for fig8_budget_lifetime.
# This may be replaced when dependencies are built.
