file(REMOVE_RECURSE
  "CMakeFiles/fig3_logreg_accuracy.dir/fig3_logreg_accuracy.cc.o"
  "CMakeFiles/fig3_logreg_accuracy.dir/fig3_logreg_accuracy.cc.o.d"
  "fig3_logreg_accuracy"
  "fig3_logreg_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_logreg_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
