# Empty compiler generated dependencies file for fig3_logreg_accuracy.
# This may be replaced when dependencies are built.
