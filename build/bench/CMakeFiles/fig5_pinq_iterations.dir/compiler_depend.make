# Empty compiler generated dependencies file for fig5_pinq_iterations.
# This may be replaced when dependencies are built.
