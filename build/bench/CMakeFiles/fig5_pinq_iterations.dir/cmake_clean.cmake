file(REMOVE_RECURSE
  "CMakeFiles/fig5_pinq_iterations.dir/fig5_pinq_iterations.cc.o"
  "CMakeFiles/fig5_pinq_iterations.dir/fig5_pinq_iterations.cc.o.d"
  "fig5_pinq_iterations"
  "fig5_pinq_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_pinq_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
