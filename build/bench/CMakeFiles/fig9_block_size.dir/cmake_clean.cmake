file(REMOVE_RECURSE
  "CMakeFiles/fig9_block_size.dir/fig9_block_size.cc.o"
  "CMakeFiles/fig9_block_size.dir/fig9_block_size.cc.o.d"
  "fig9_block_size"
  "fig9_block_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_block_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
