# Empty dependencies file for fig9_block_size.
# This may be replaced when dependencies are built.
