file(REMOVE_RECURSE
  "CMakeFiles/sandbox_overhead.dir/sandbox_overhead.cc.o"
  "CMakeFiles/sandbox_overhead.dir/sandbox_overhead.cc.o.d"
  "sandbox_overhead"
  "sandbox_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sandbox_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
