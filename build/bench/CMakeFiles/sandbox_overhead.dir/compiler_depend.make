# Empty compiler generated dependencies file for sandbox_overhead.
# This may be replaced when dependencies are built.
