// Time-series collector overhead: the padded ~5ms query path through the
// hosted service with the series subsystem (a) disabled outright
// (series_capacity=0: no store, no collector thread, no alert engine)
// and (b) armed the way an operator would run it — the 1 Hz background
// collector plus ten custom alert rules on top of the built-ins, so
// every collector tick sweeps the full registry and evaluates the whole
// rule table while queries are in flight.
//
// Expectation: the collector wakes once a second, sweeps a few dozen
// metric families and evaluates ~14 rules in well under a millisecond,
// so the armed median query latency stays within 5% of collector-off.
// Emits BENCH_series_overhead.json so the claim is machine-checkable.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "obs/series/alerts.h"
#include "obs/series/collector.h"
#include "service/gupt_service.h"

namespace gupt {
namespace {

constexpr int kWarmupQueries = 5;
// Long enough that the 1 Hz collector ticks several times inside the
// timed region (~3s at ~5ms per query), yet the median stays a per-query
// statistic.
constexpr int kTimedQueries = 601;
constexpr int kCustomRules = 10;

QueryRequest MeanRequest() {
  QueryRequest request;
  request.analyst = "bench";
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = 0.1;
  request.range_mode = RangeMode::kTight;
  request.output_ranges = {Range{0.0, 150.0}};
  request.gamma = 3;
  // 4000 rows x gamma 3 / 1000-row blocks = 12 padded blocks; on 4
  // workers that is 3 cycles of the 1.5ms deadline, a ~5ms query.
  request.block_size = 1000;
  return request;
}

/// Ten synthetic threshold rules over real, always-written series. The
/// thresholds are unreachable so no rule ever leaves `inactive` — the
/// bench measures evaluation cost, not alert churn.
void InstallCustomRules(obs::series::AlertRuleEngine* engine) {
  using obs::series::AlertAgg;
  using obs::series::AlertRule;
  const AlertAgg aggs[] = {AlertAgg::kLatest, AlertAgg::kMean,
                           AlertAgg::kMax, AlertAgg::kMin, AlertAgg::kDelta};
  const char* series[] = {"gupt_runtime_queries_total:rate",
                          "gupt_runtime_query_duration_seconds:p95"};
  int added = 0;
  for (const char* name : series) {
    for (AlertAgg agg : aggs) {
      AlertRule rule;
      rule.name = "bench_custom_rule_" + std::to_string(added++);
      rule.description = "synthetic bench rule (never fires)";
      rule.series = name;
      rule.agg = agg;
      rule.threshold = 1e18;
      rule.window_ms = 60000;
      engine->AddRule(rule);
    }
  }
  if (added != kCustomRules) std::exit(1);
}

/// Median per-query seconds over kTimedQueries runs. `armed` switches the
/// whole series subsystem on with its production 1 Hz cadence (the
/// dataset carries an effectively unbounded budget so accounting never
/// interferes with timing).
double MedianQuerySeconds(bool armed, std::uint64_t* ticks_seen) {
  ServiceOptions options;
  options.introspect_port = -1;  // isolate the collector's own cost
  options.runtime.num_workers = 4;
  options.runtime.seed = 99;
  // Pad every block to a fixed 1.5ms cycle budget (§6.2 timing defence):
  // query latency becomes deterministic, so the off/armed ratio measures
  // the collector, not scheduler noise.
  options.runtime.chamber_policy.deadline = std::chrono::microseconds(1500);
  options.runtime.chamber_policy.pad_to_deadline = true;
  options.series_capacity = armed ? 512 : 0;
  options.collector_period_ms = 1000;
  GuptService service(std::move(options),
                      ProgramRegistry::WithStandardPrograms());
  synthetic::CensusAgeOptions gen;
  gen.num_rows = 4000;
  DatasetOptions ds;
  ds.total_epsilon = 1e6;
  if (!service.RegisterDataset("ages", synthetic::CensusAges(gen).value(), ds)
           .ok()) {
    std::exit(1);
  }
  if (armed) InstallCustomRules(service.mutable_alert_engine());

  auto one_query = [&service] {
    auto report = service.SubmitQuery(MeanRequest());
    if (!report.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   report.status().ToString().c_str());
      std::exit(1);
    }
  };
  for (int i = 0; i < kWarmupQueries; ++i) one_query();
  std::vector<double> seconds;
  seconds.reserve(kTimedQueries);
  for (int i = 0; i < kTimedQueries; ++i) {
    seconds.push_back(bench::TimeSeconds(one_query));
  }
  if (armed) {
    *ticks_seen = service.series_collector()->Ticks();
    std::printf("# armed run: %llu collector ticks, %zu rules\n",
                static_cast<unsigned long long>(*ticks_seen),
                service.alert_engine()->NumRules());
  }
  std::nth_element(seconds.begin(), seconds.begin() + kTimedQueries / 2,
                   seconds.end());
  return seconds[kTimedQueries / 2];
}

int Run() {
  bench::PrintHeader(
      "series_overhead",
      "query latency with the time-series collector off vs armed at 1 Hz "
      "with ten custom alert rules",
      "an armed collector + full rule table adds <= 5% to the median "
      "query latency on the padded ~5ms path");

  std::uint64_t ticks = 0;
  double off_median_s = MedianQuerySeconds(/*armed=*/false, nullptr);
  double armed_median_s = MedianQuerySeconds(/*armed=*/true, &ticks);
  if (ticks == 0) {
    // A timed region the collector never visited proves nothing.
    std::fprintf(stderr, "armed run saw no collector ticks\n");
    return 1;
  }

  double armed_ratio = armed_median_s / off_median_s;
  bench::PrintRow({"config", "median_query_s"});
  bench::PrintRow({"collector_off", bench::Fmt(off_median_s, 6)});
  bench::PrintRow({"collector_1hz_10rules", bench::Fmt(armed_median_s, 6)});
  bench::PrintRow({"armed_ratio", bench::Fmt(armed_ratio, 4)});

  std::FILE* out = std::fopen("BENCH_series_overhead.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_series_overhead.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\"queries\": %d, \"custom_rules\": %d, "
               "\"collector_ticks\": %llu, \"off_median_s\": %.9f, "
               "\"armed_median_s\": %.9f, \"armed_ratio\": %.6f}\n",
               kTimedQueries, kCustomRules,
               static_cast<unsigned long long>(ticks), off_median_s,
               armed_median_s, armed_ratio);
  std::fclose(out);
  std::printf("# wrote BENCH_series_overhead.json\n");
  return 0;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
