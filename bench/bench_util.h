// Shared helpers for the figure-reproduction harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation (§7) and prints the same rows/series the paper plots, plus the
// non-private anchors. Output is plain aligned text so the series can be
// eyeballed or scraped.

#ifndef GUPT_BENCH_BENCH_UTIL_H_
#define GUPT_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "analytics/kmeans.h"
#include "analytics/logistic_regression.h"
#include "core/gupt.h"
#include "data/dataset_manager.h"
#include "data/synthetic.h"

namespace gupt {
namespace bench {

/// Prints the figure banner: id, paper caption, what to look for.
void PrintHeader(const std::string& figure_id, const std::string& caption,
                 const std::string& expectation);

/// Prints an aligned row of columns.
void PrintRow(const std::vector<std::string>& cells);

/// Formats a double with `digits` decimals.
std::string Fmt(double value, int digits = 3);

/// Wall-clock seconds spent running `fn`.
double TimeSeconds(const std::function<void()>& fn);

/// The paper's life-sciences stand-in with its k-means/LR configuration.
struct LifeSciencesBench {
  Dataset data;
  synthetic::LifeSciencesOptions gen;
  std::vector<std::size_t> cluster_dims;  // PCs used for k-means
  analytics::KMeansOptions kmeans;
  analytics::LogisticRegressionOptions logreg;
  std::vector<Range> kmeans_tight_ranges;  // empirical min/max per centre dim
  std::vector<Range> kmeans_loose_ranges;  // paper: [2*min, 2*max]
  std::vector<Range> logreg_weight_ranges;
  double baseline_icv = 0.0;       // non-private k-means ICV
  double baseline_accuracy = 0.0;  // non-private LR accuracy
};

/// Builds the life-sciences benchmark environment (shared by Figs 3-6).
/// `num_rows` of 0 means the full 26,733-row replica.
LifeSciencesBench MakeLifeSciencesBench(std::size_t num_rows = 0);

/// ICV of GUPT's flattened k-means output against the bench dataset,
/// normalised so the non-private baseline is 100.
double NormalizedIcv(const LifeSciencesBench& bench, const Row& flat_centers);

}  // namespace bench
}  // namespace gupt

#endif  // GUPT_BENCH_BENCH_UTIL_H_
