// Ablation (§3.3/§4.3/§5.1): how much aged (non-private) data the tuning
// machinery needs.
//
// The block planner and the accuracy-to-epsilon estimator both learn from
// the aged slice. This ablation sweeps the aged fraction and reports (a)
// the block size the planner picks and (b) the epsilon the estimator
// solves for a fixed accuracy goal, against the values computed from a
// large reference slice. Expectation: estimates stabilise quickly — a few
// percent of aged data suffices, which is why the model is practical.

#include "analytics/queries.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/block_planner.h"
#include "core/budget_estimator.h"

namespace gupt {
namespace {

int Run() {
  bench::PrintHeader(
      "Ablation: aged-slice size",
      "planner block size and solved epsilon vs aged fraction",
      "both estimates stabilise with a small aged fraction");

  synthetic::CensusAgeOptions gen;
  gen.num_rows = 32561;
  Dataset full = synthetic::CensusAges(gen).value();
  const std::size_t private_n = full.num_rows();

  BlockPlannerOptions planner;
  planner.epsilon_per_dim = 1.0;
  planner.range_widths = {150.0};

  BudgetEstimatorOptions estimator;
  estimator.goal = AccuracyGoal{0.90, 0.10};
  estimator.block_size = 400;
  estimator.range_width = 150.0;

  bench::PrintRow({"aged_frac", "aged_rows", "planner_beta", "solved_eps"});
  Rng rng(7);
  for (double fraction : {0.01, 0.02, 0.05, 0.10, 0.20, 0.40}) {
    auto aged_rows = static_cast<std::size_t>(fraction * private_n);
    auto parts = full.SplitAt(aged_rows).value();
    const Dataset& aged = parts.first;

    // The planner column uses the median: its estimation error actually
    // depends on beta (Fig. 9), so the chosen block size is informative.
    auto choice = PlanBlockSize(aged, private_n, analytics::MedianQuery(0),
                                planner, &rng);
    auto estimate = EstimateBudgetForAccuracy(
        aged, private_n, analytics::MeanQuery(0), estimator, &rng);
    bench::PrintRow(
        {bench::Fmt(fraction, 2), std::to_string(aged_rows),
         choice.ok() ? std::to_string(choice->block_size) : "error",
         estimate.ok() ? bench::Fmt(estimate->epsilon, 4) : "error"});
  }
  return 0;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
