// Chamber-pool micro-benchmark: pre-warmed workers vs fork-per-block, and
// zero-copy columnar block views vs the row-copy partitioning they replaced.
//
// Two claims are made machine-checkable here (BENCH_chamber_pool.json, run
// through tools/bench_runner.py so regressions gate on the _s/_ratio
// fields):
//
//   1. Leasing a pre-warmed worker per block beats forking a fresh chamber
//      child per block by >= 5x on paper-shaped blocks, because the fork/
//      page-table/exit tax dwarfs a mean over a few hundred rows.
//   2. The columnar partitioner copies each cell exactly once (the single
//      block-shuffled gather); the row-major flow it replaced copied every
//      cell twice — once gathering the block Subset, once handing the
//      chamber its private row copy — before counting per-Row allocation
//      overhead.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "data/partitioner.h"
#include "exec/chamber_pool.h"
#include "exec/process_chamber.h"
#include "obs/metrics.h"

namespace gupt {
namespace {

constexpr std::size_t kRows = 80000;
constexpr std::size_t kDims = 2;
constexpr std::size_t kNumBlocks = 400;  // 200 rows per block

Dataset MakeData() {
  Rng rng(4242);
  std::vector<std::vector<double>> columns(kDims);
  for (std::size_t d = 0; d < kDims; ++d) {
    columns[d].reserve(kRows);
    for (std::size_t i = 0; i < kRows; ++i) {
      columns[d].push_back(rng.Gaussian(40.0, 10.0));
    }
  }
  return Dataset::FromColumns(std::move(columns)).value();
}

ProgramFactory MeanFactory() {
  return MakeProgramFactory("mean0", 1,
                            [](const Dataset& block) -> Result<Row> {
                              double sum = 0.0;
                              const double* col = block.col(0);
                              for (std::size_t r = 0; r < block.num_rows();
                                   ++r) {
                                sum += col[r];
                              }
                              return Row{sum / static_cast<double>(
                                                   block.num_rows())};
                            });
}

double PartitionCounterValue() {
  return obs::MetricsRegistry::Get()
      .GetCounter("gupt_data_partition_copied_bytes_total", "")
      ->Value();
}

struct CopyCosts {
  double columnar_bytes = 0.0;
  double row_bytes = 0.0;
};

/// Bytes copied to stand up kNumBlocks executable blocks, columnar vs the
/// row-major replica of the pre-refactor flow.
CopyCosts MeasureCopiedBytes(const Dataset& data) {
  CopyCosts costs;

  // Columnar: one block-shuffled gather; every view after it is free.
  {
    Rng rng(7);
    double before = PartitionCounterValue();
    auto set = PartitionDisjointView(data, kNumBlocks, &rng);
    if (!set.ok()) std::exit(1);
    costs.columnar_bytes = PartitionCounterValue() - before;
    for (std::size_t b = 0; b < kNumBlocks; ++b) {
      DatasetView view = set->view(b);  // zero-copy by construction
      if (view.num_rows() == 0) std::exit(1);
    }
  }

  // Row replica: the flow this refactor replaced — gather a Subset per
  // block, then give the chamber its private row-major copy.
  {
    Rng rng(7);
    auto plan = PartitionDisjoint(data.num_rows(), kNumBlocks, &rng);
    if (!plan.ok()) std::exit(1);
    for (const auto& indices : plan->blocks) {
      auto block = data.Subset(indices);
      if (!block.ok()) std::exit(1);
      costs.row_bytes +=
          static_cast<double>(indices.size() * kDims * sizeof(double));
      std::vector<Row> private_copy = block->MaterializeRows();
      costs.row_bytes += static_cast<double>(private_copy.size() * kDims *
                                             sizeof(double));
    }
  }
  return costs;
}

/// Seconds per block forking a fresh chamber child per block.
double ForkSecondsPerBlock(const BlockSet& set, const Row& fallback) {
  ProcessChamber chamber{ChamberPolicy{}};
  ProgramFactory factory = MeanFactory();
  double seconds = bench::TimeSeconds([&] {
    for (std::size_t b = 0; b < set.slices.size(); ++b) {
      auto run = chamber.Execute(factory, set.block(b), fallback);
      if (!run.ok() || run->used_fallback) std::exit(1);
    }
  });
  return seconds / static_cast<double>(set.slices.size());
}

/// Seconds per block leasing one pre-warmed worker (sequential leases, the
/// apples-to-apples shape against the sequential fork loop).
double PooledSecondsPerBlock(const BlockSet& set, const Row& fallback) {
  ChamberPool pool(ChamberPolicy{}, 1);
  pool.SetProgramResolver(
      [](const std::string& token) -> Result<ProgramFactory> {
        if (token != "mean0") {
          return Status::InvalidArgument("unknown token: " + token);
        }
        return MeanFactory();
      });
  if (!pool.Start().ok()) std::exit(1);
  double seconds = bench::TimeSeconds([&] {
    for (std::size_t b = 0; b < set.slices.size(); ++b) {
      auto run = pool.Execute("mean0", set.view(b), fallback);
      if (!run.ok() || run->used_fallback) std::exit(1);
    }
  });
  ChamberPoolStats stats = pool.Stats();
  std::printf("# pool: %llu leases, %llu resets, %llu respawns, %.1f KB "
              "shipped\n",
              static_cast<unsigned long long>(stats.leases),
              static_cast<unsigned long long>(stats.resets),
              static_cast<unsigned long long>(stats.respawns),
              static_cast<double>(stats.shipped_bytes) / 1024.0);
  if (stats.respawns != 0) std::exit(1);  // a crash would skew the timing
  return seconds / static_cast<double>(set.slices.size());
}

int Run() {
  bench::PrintHeader(
      "chamber_pool",
      "per-block isolation cost: pre-warmed pool lease vs fork-per-block, "
      "and bytes copied standing up blocks: columnar views vs row Subsets",
      "pooled leases beat fork-per-block by >= 5x; the columnar partitioner "
      "copies each cell once where the row flow copied it twice");

  Dataset data = MakeData();
  Rng rng(7);
  auto set = PartitionDisjointView(data, kNumBlocks, &rng);
  if (!set.ok()) std::exit(1);
  Row fallback{0.0};

  // Warm both paths once so first-touch costs stay out of the timing.
  double fork_block_s = ForkSecondsPerBlock(*set, fallback);
  double pool_block_s = PooledSecondsPerBlock(*set, fallback);
  double speedup = fork_block_s / pool_block_s;

  CopyCosts costs = MeasureCopiedBytes(data);
  double copied_bytes_ratio = costs.columnar_bytes / costs.row_bytes;

  bench::PrintRow({"path", "block_s", "blocks_per_s"});
  bench::PrintRow({"fork_per_block", bench::Fmt(fork_block_s, 6),
                   bench::Fmt(1.0 / fork_block_s, 1)});
  bench::PrintRow({"pooled_lease", bench::Fmt(pool_block_s, 6),
                   bench::Fmt(1.0 / pool_block_s, 1)});
  bench::PrintRow({"fork_over_pool_speedup", bench::Fmt(speedup, 2)});
  bench::PrintRow({"columnar_copied_mb",
                   bench::Fmt(costs.columnar_bytes / 1048576.0, 2)});
  bench::PrintRow(
      {"row_copied_mb", bench::Fmt(costs.row_bytes / 1048576.0, 2)});
  bench::PrintRow({"copied_bytes_ratio", bench::Fmt(copied_bytes_ratio, 4)});
  std::printf("# speedup %s the >= 5x claim\n",
              speedup >= 5.0 ? "meets" : "MISSES");

  std::FILE* out = std::fopen("BENCH_chamber_pool.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_chamber_pool.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\"num_blocks\": %zu, \"block_rows\": %zu, "
               "\"fork_block_s\": %.9f, \"pool_block_s\": %.9f, "
               "\"fork_over_pool_speedup\": %.3f, "
               "\"columnar_copied_bytes\": %.0f, "
               "\"row_copied_bytes\": %.0f, "
               "\"copied_bytes_ratio\": %.6f}\n",
               kNumBlocks, kRows / kNumBlocks, fork_block_s, pool_block_s,
               speedup, costs.columnar_bytes, costs.row_bytes,
               copied_bytes_ratio);
  std::fclose(out);
  std::printf("# wrote BENCH_chamber_pool.json\n");
  return speedup >= 5.0 ? 0 : 1;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
