// Figure 4: intra-cluster variance of k-means on the life sciences dataset
// versus the privacy budget, for GUPT-tight and GUPT-loose output ranges.
//
// Paper series: normalized ICV (baseline = 100) falling towards the
// baseline as epsilon grows; GUPT-tight nearly on the baseline even at
// small epsilon, GUPT-loose needing a larger budget for the same ICV.

#include "bench_util.h"

namespace gupt {
namespace {

int Run() {
  bench::PrintHeader(
      "Figure 4", "k-means intra-cluster variance vs privacy budget",
      "ICV decreases in epsilon; GUPT-tight ~ baseline even at small "
      "epsilon; GUPT-loose needs more budget for the same ICV");

  bench::LifeSciencesBench env = bench::MakeLifeSciencesBench();
  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 1e6;
  if (!manager.Register("ds1.10", env.data, opts).ok()) return 1;
  GuptRuntime runtime(&manager, GuptOptions{});

  std::printf("baseline ICV (non-private)    : %s (normalized 100)\n\n",
              bench::Fmt(env.baseline_icv).c_str());
  bench::PrintRow({"epsilon", "gupt_tight_icv", "gupt_loose_icv",
                   "baseline"});

  auto normalized_icv_at = [&](double epsilon, bool tight) {
    const int kTrials = 5;
    double sum = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      QuerySpec spec;
      spec.program = analytics::KMeansQuery(env.kmeans);
      spec.epsilon = epsilon;
      // Paper-mode accounting: the plotted epsilon applies per released
      // centre coordinate, matching the paper's Fig. 4 configuration (see
      // EXPERIMENTS.md on the Theorem 1 alternative).
      spec.accounting = BudgetAccounting::kPerDimension;
      spec.range = tight ? OutputRangeSpec::Tight(env.kmeans_tight_ranges)
                         : OutputRangeSpec::Loose(env.kmeans_loose_ranges);
      auto report = runtime.Execute("ds1.10", spec);
      if (!report.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     report.status().ToString().c_str());
        std::exit(1);
      }
      sum += bench::NormalizedIcv(env, report->output);
    }
    return sum / kTrials;
  };

  for (double epsilon : {0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 2.0, 3.0, 4.0}) {
    bench::PrintRow({bench::Fmt(epsilon, 1),
                     bench::Fmt(normalized_icv_at(epsilon, /*tight=*/true), 1),
                     bench::Fmt(normalized_icv_at(epsilon, /*tight=*/false), 1),
                     "100.0"});
  }
  return 0;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
