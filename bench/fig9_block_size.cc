// Figure 9: normalized RMSE of "mean" and "median" aspect-ratio queries on
// the internet-ads dataset as the block size beta varies, at eps 2 and 6.
//
// Paper shape: for the mean, SAF's outer average already does the work, so
// the best block size is 1 and error grows with beta (noise dominates as
// blocks shrink in number). For the median at eps=2, error is U-shaped
// with a minimum near beta=10 (small blocks give biased medians, large
// blocks give few blocks and thus more noise); at eps=6 the noise term is
// cheap, so error keeps falling as beta grows.

#include <cmath>

#include "analytics/queries.h"
#include "bench_util.h"

namespace gupt {
namespace {

constexpr int kTrials = 60;

int Run() {
  bench::PrintHeader(
      "Figure 9", "normalized RMSE vs block size (internet ads aspect ratio)",
      "mean: error rises with beta (best at 1); median eps=2: U-shape with "
      "a minimum near beta~10; median eps=6: error keeps falling in beta");

  synthetic::InternetAdsOptions gen;
  Dataset data = synthetic::InternetAdAspectRatios(gen).value();
  auto column = data.Column(0).value();
  const double true_mean = stats::Mean(column);
  const double true_median = stats::Quantile(column, 0.5).value();
  std::printf("n=%zu, true mean=%s, true median=%s\n\n", data.num_rows(),
              bench::Fmt(true_mean).c_str(), bench::Fmt(true_median).c_str());

  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 1e9;
  if (!manager.Register("ads", std::move(data), opts).ok()) return 1;
  GuptRuntime runtime(&manager, GuptOptions{});

  const Range output_range{0.0, gen.max_ratio};

  auto normalized_rmse = [&](const ProgramFactory& program, double truth,
                             std::size_t beta, double epsilon) {
    double sq_sum = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      QuerySpec spec;
      spec.program = program;
      spec.epsilon = epsilon;
      spec.range = OutputRangeSpec::Tight({output_range});
      spec.block_size = beta;
      auto report = runtime.Execute("ads", spec);
      if (!report.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     report.status().ToString().c_str());
        std::exit(1);
      }
      double err = report->output[0] - truth;
      sq_sum += err * err;
    }
    return std::sqrt(sq_sum / kTrials) / truth;
  };

  bench::PrintRow({"beta", "mean_eps2", "mean_eps6", "median_eps2",
                   "median_eps6"});
  for (std::size_t beta : {1u, 5u, 10u, 20u, 30u, 40u, 50u, 70u}) {
    bench::PrintRow(
        {std::to_string(beta),
         bench::Fmt(normalized_rmse(analytics::MeanQuery(0), true_mean, beta,
                                    2.0)),
         bench::Fmt(normalized_rmse(analytics::MeanQuery(0), true_mean, beta,
                                    6.0)),
         bench::Fmt(normalized_rmse(analytics::MedianQuery(0), true_median,
                                    beta, 2.0)),
         bench::Fmt(normalized_rmse(analytics::MedianQuery(0), true_median,
                                    beta, 6.0))});
  }
  return 0;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
