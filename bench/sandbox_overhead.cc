// §6.1 micro-benchmark: overhead of the isolated execution chamber.
//
// The paper measures the AppArmor sandbox by running k-means 6,000 times
// and reports a 1.26% slowdown. Here the google-benchmark harness compares
// the same k-means block computation run bare against run inside an
// execution chamber (fresh instance + private block copy + MAC-policed
// services), which is this reproduction's sandbox equivalent.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>

#include "analytics/kmeans.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "exec/chamber.h"
#include "exec/process_chamber.h"

namespace gupt {
namespace {

Dataset MakeBlock(std::size_t rows) {
  Rng rng(99);
  std::vector<Row> out;
  out.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    double c = rng.Bernoulli(0.5) ? 0.0 : 6.0;
    out.push_back({c + rng.Gaussian(), c + rng.Gaussian()});
  }
  return Dataset::Create(std::move(out)).value();
}

analytics::KMeansOptions BlockKMeans() {
  analytics::KMeansOptions opts;
  opts.k = 2;
  opts.feature_dims = {0, 1};
  opts.max_iterations = 10;
  return opts;
}

void BM_KMeansBare(benchmark::State& state) {
  Dataset block = MakeBlock(static_cast<std::size_t>(state.range(0)));
  ProgramFactory factory = analytics::KMeansQuery(BlockKMeans());
  for (auto _ : state) {
    auto program = factory();
    auto out = program->Run(block);
    if (!out.ok()) state.SkipWithError("k-means failed");
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_KMeansBare)->Arg(200)->Arg(1000);

void BM_KMeansInChamber(benchmark::State& state) {
  Dataset block = MakeBlock(static_cast<std::size_t>(state.range(0)));
  ProgramFactory factory = analytics::KMeansQuery(BlockKMeans());
  ExecutionChamber chamber{ChamberPolicy{}};  // no deadline: measure MAC cost
  Row fallback(4, 0.0);
  for (auto _ : state) {
    auto run = chamber.Execute(factory, block, fallback);
    if (!run.ok() || run->used_fallback) state.SkipWithError("chamber failed");
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_KMeansInChamber)->Arg(200)->Arg(1000);

// The fork-based backend: the upper bound on isolation (own address
// space, real SIGKILL) and on overhead (~a fork + pipe per block) — the
// closest analogue to the paper's AppArmor-confined processes. Wall time
// alone flatters this backend on a loaded machine, so the per-block child
// CPU captured from wait4() rusage is reported alongside: the gap between
// block_cpu_s and the wall rate is the fork/pipe/schedule tax.
void BM_KMeansInSubprocess(benchmark::State& state) {
  Dataset block = MakeBlock(static_cast<std::size_t>(state.range(0)));
  ProgramFactory factory = analytics::KMeansQuery(BlockKMeans());
  ProcessChamber chamber{ChamberPolicy{}};
  Row fallback(4, 0.0);
  std::int64_t child_cpu_ns = 0;
  std::int64_t child_max_rss_kb = 0;
  for (auto _ : state) {
    auto run = chamber.Execute(factory, block, fallback);
    if (!run.ok() || run->used_fallback) state.SkipWithError("chamber failed");
    child_cpu_ns += run->child_user_cpu_ns + run->child_sys_cpu_ns;
    child_max_rss_kb = std::max(child_max_rss_kb, run->child_max_rss_kb);
    benchmark::DoNotOptimize(run);
  }
  state.counters["block_cpu_s"] = benchmark::Counter(
      static_cast<double>(child_cpu_ns) / 1e9, benchmark::Counter::kAvgIterations);
  state.counters["block_max_rss_kb"] =
      benchmark::Counter(static_cast<double>(child_max_rss_kb));
}
BENCHMARK(BM_KMeansInSubprocess)->Arg(200)->Arg(1000);

}  // namespace
}  // namespace gupt

BENCHMARK_MAIN();
