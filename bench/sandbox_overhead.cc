// §6.1 micro-benchmark: overhead of the isolated execution chamber.
//
// The paper measures the AppArmor sandbox by running k-means 6,000 times
// and reports a 1.26% slowdown. Here the google-benchmark harness compares
// the same k-means block computation run bare against run inside an
// execution chamber (fresh instance + private block copy + MAC-policed
// services), which is this reproduction's sandbox equivalent.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "analytics/kmeans.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "data/partitioner.h"
#include "exec/chamber.h"
#include "exec/chamber_pool.h"
#include "exec/process_chamber.h"
#include "obs/metrics.h"

namespace gupt {
namespace {

Dataset MakeBlock(std::size_t rows) {
  Rng rng(99);
  std::vector<Row> out;
  out.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    double c = rng.Bernoulli(0.5) ? 0.0 : 6.0;
    out.push_back({c + rng.Gaussian(), c + rng.Gaussian()});
  }
  return Dataset::Create(std::move(out)).value();
}

analytics::KMeansOptions BlockKMeans() {
  analytics::KMeansOptions opts;
  opts.k = 2;
  opts.feature_dims = {0, 1};
  opts.max_iterations = 10;
  return opts;
}

void BM_KMeansBare(benchmark::State& state) {
  Dataset block = MakeBlock(static_cast<std::size_t>(state.range(0)));
  ProgramFactory factory = analytics::KMeansQuery(BlockKMeans());
  for (auto _ : state) {
    auto program = factory();
    auto out = program->Run(block);
    if (!out.ok()) state.SkipWithError("k-means failed");
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_KMeansBare)->Arg(200)->Arg(1000);

void BM_KMeansInChamber(benchmark::State& state) {
  Dataset block = MakeBlock(static_cast<std::size_t>(state.range(0)));
  ProgramFactory factory = analytics::KMeansQuery(BlockKMeans());
  ExecutionChamber chamber{ChamberPolicy{}};  // no deadline: measure MAC cost
  Row fallback(4, 0.0);
  for (auto _ : state) {
    auto run = chamber.Execute(factory, block, fallback);
    if (!run.ok() || run->used_fallback) state.SkipWithError("chamber failed");
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_KMeansInChamber)->Arg(200)->Arg(1000);

// The fork-based backend: the upper bound on isolation (own address
// space, real SIGKILL) and on overhead (~a fork + pipe per block) — the
// closest analogue to the paper's AppArmor-confined processes. Wall time
// alone flatters this backend on a loaded machine, so the per-block child
// CPU captured from wait4() rusage is reported alongside: the gap between
// block_cpu_s and the wall rate is the fork/pipe/schedule tax.
void BM_KMeansInSubprocess(benchmark::State& state) {
  Dataset block = MakeBlock(static_cast<std::size_t>(state.range(0)));
  ProgramFactory factory = analytics::KMeansQuery(BlockKMeans());
  ProcessChamber chamber{ChamberPolicy{}};
  Row fallback(4, 0.0);
  std::int64_t child_cpu_ns = 0;
  std::int64_t child_max_rss_kb = 0;
  for (auto _ : state) {
    auto run = chamber.Execute(factory, block, fallback);
    if (!run.ok() || run->used_fallback) state.SkipWithError("chamber failed");
    child_cpu_ns += run->child_user_cpu_ns + run->child_sys_cpu_ns;
    child_max_rss_kb = std::max(child_max_rss_kb, run->child_max_rss_kb);
    benchmark::DoNotOptimize(run);
  }
  state.counters["block_cpu_s"] = benchmark::Counter(
      static_cast<double>(child_cpu_ns) / 1e9, benchmark::Counter::kAvgIterations);
  state.counters["block_max_rss_kb"] =
      benchmark::Counter(static_cast<double>(child_max_rss_kb));
}
BENCHMARK(BM_KMeansInSubprocess)->Arg(200)->Arg(1000);

// The pre-warmed pool backend: same OS-level isolation as the subprocess
// path but the fork is paid once, not per block — each iteration is one
// lease (ship columns, run, reset). The lease/reset counters confirm every
// iteration reused a warm worker (respawns stay 0 on a healthy run).
void BM_KMeansInPooledChamber(benchmark::State& state) {
  Dataset block = MakeBlock(static_cast<std::size_t>(state.range(0)));
  ChamberPool pool{ChamberPolicy{}, 1};
  pool.SetProgramResolver(
      [](const std::string& token) -> Result<ProgramFactory> {
        if (token != "kmeans") {
          return Status::InvalidArgument("unknown token: " + token);
        }
        return analytics::KMeansQuery(BlockKMeans());
      });
  if (!pool.Start().ok()) {
    state.SkipWithError("pool failed to start");
    return;
  }
  Row fallback(4, 0.0);
  ChamberPoolStats before = pool.Stats();
  for (auto _ : state) {
    auto run = pool.Execute("kmeans", block.view(), fallback);
    if (!run.ok() || run->used_fallback) state.SkipWithError("lease failed");
    benchmark::DoNotOptimize(run);
  }
  ChamberPoolStats after = pool.Stats();
  state.counters["pool_leases"] =
      benchmark::Counter(static_cast<double>(after.leases - before.leases));
  state.counters["pool_resets"] =
      benchmark::Counter(static_cast<double>(after.resets - before.resets));
  state.counters["pool_respawns"] = benchmark::Counter(
      static_cast<double>(after.respawns - before.respawns));
  state.counters["shipped_kb_per_lease"] = benchmark::Counter(
      static_cast<double>(after.shipped_bytes - before.shipped_bytes) /
      1024.0 / static_cast<double>(after.leases - before.leases));
}
BENCHMARK(BM_KMeansInPooledChamber)->Arg(200)->Arg(1000);

// Cost of standing up executable blocks: one block-shuffled columnar
// gather per query, after which every block view is zero-copy. The
// copied_mb_per_iter counter is the partitioner's own
// gupt_data_partition_copied_bytes_total delta — each cell moves exactly
// once.
void BM_PartitionColumnarGather(benchmark::State& state) {
  Dataset data = MakeBlock(static_cast<std::size_t>(state.range(0)));
  obs::Counter* copied = obs::MetricsRegistry::Get().GetCounter(
      "gupt_data_partition_copied_bytes_total", "");
  const double before = copied->Value();
  Rng rng(1234);
  for (auto _ : state) {
    auto set = PartitionDisjointView(data, /*num_blocks=*/16, &rng);
    if (!set.ok()) state.SkipWithError("partition failed");
    benchmark::DoNotOptimize(set);
  }
  state.counters["copied_mb_per_iter"] = benchmark::Counter(
      (copied->Value() - before) / 1048576.0,
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_PartitionColumnarGather)->Arg(4096)->Arg(65536);

}  // namespace
}  // namespace gupt

BENCHMARK_MAIN();
