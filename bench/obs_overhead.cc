// Introspection overhead: the fig6-style query path through the hosted
// service, with the live introspection server disabled vs enabled (idle).
//
// The server costs one listener thread parked in poll() plus the handler
// pool parked on a condition variable; none of them touch the query path,
// so the expectation is a median-latency overhead within noise (well under
// 5%). Emits BENCH_obs_overhead.json so the claim is machine-checkable.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "obs/introspect/http_client.h"
#include "service/gupt_service.h"

namespace gupt {
namespace {

constexpr int kWarmupQueries = 3;
constexpr int kTimedQueries = 31;

QueryRequest MeanRequest() {
  QueryRequest request;
  request.analyst = "bench";
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = 0.1;
  request.range_mode = RangeMode::kTight;
  request.output_ranges = {Range{0.0, 150.0}};
  request.gamma = 3;  // resampled fan-out: the scalability-path shape
  return request;
}

/// Median per-query seconds over kTimedQueries runs against a service
/// configured with `options` (the dataset carries an effectively unbounded
/// budget so accounting never interferes with timing).
double MedianQuerySeconds(ServiceOptions options, bool scrape_once) {
  options.runtime.num_workers = 4;
  options.runtime.seed = 99;
  GuptService service(std::move(options),
                      ProgramRegistry::WithStandardPrograms());
  synthetic::CensusAgeOptions gen;
  gen.num_rows = 20000;
  DatasetOptions ds;
  ds.total_epsilon = 1e6;
  if (!service.RegisterDataset("ages", synthetic::CensusAges(gen).value(), ds)
           .ok()) {
    std::exit(1);
  }
  if (scrape_once) {
    // Prove the server is actually live, then leave it idle while timing.
    obs::introspect::HttpGetResult scrape =
        obs::introspect::HttpGet("127.0.0.1", service.introspect_port(),
                                 "/healthz");
    if (!scrape.ok || scrape.status != 200) {
      std::fprintf(stderr, "introspection server not answering: %s\n",
                   scrape.error.c_str());
      std::exit(1);
    }
  }

  auto one_query = [&service] {
    auto report = service.SubmitQuery(MeanRequest());
    if (!report.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   report.status().ToString().c_str());
      std::exit(1);
    }
  };
  for (int i = 0; i < kWarmupQueries; ++i) one_query();
  std::vector<double> seconds;
  seconds.reserve(kTimedQueries);
  for (int i = 0; i < kTimedQueries; ++i) {
    seconds.push_back(bench::TimeSeconds(one_query));
  }
  std::nth_element(seconds.begin(), seconds.begin() + kTimedQueries / 2,
                   seconds.end());
  return seconds[kTimedQueries / 2];
}

int Run() {
  bench::PrintHeader(
      "obs_overhead", "query latency with the introspection server on vs off",
      "the idle server adds no work to the query path: median overhead "
      "within noise (<= 5%)");

  ServiceOptions off;
  off.introspect_port = -1;
  double off_median_s = MedianQuerySeconds(off, /*scrape_once=*/false);

  ServiceOptions on;
  on.introspect_port = 0;  // ephemeral; serving but idle during timing
  double on_median_s = MedianQuerySeconds(on, /*scrape_once=*/true);

  double ratio = on_median_s / off_median_s;
  bench::PrintRow({"config", "median_query_s"});
  bench::PrintRow({"server_off", bench::Fmt(off_median_s, 6)});
  bench::PrintRow({"server_on_idle", bench::Fmt(on_median_s, 6)});
  bench::PrintRow({"overhead_ratio", bench::Fmt(ratio, 4)});

  std::FILE* out = std::fopen("BENCH_obs_overhead.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_obs_overhead.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\"queries\": %d, \"off_median_s\": %.9f, "
               "\"on_median_s\": %.9f, \"overhead_ratio\": %.6f}\n",
               kTimedQueries, off_median_s, on_median_s, ratio);
  std::fclose(out);
  std::printf("# wrote BENCH_obs_overhead.json\n");
  return 0;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
