#include "bench_util.h"

#include <cstdarg>
#include <functional>

namespace gupt {
namespace bench {

void PrintHeader(const std::string& figure_id, const std::string& caption,
                 const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure_id.c_str(), caption.c_str());
  std::printf("Paper expectation: %s\n", expectation.c_str());
  std::printf("==============================================================\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& cell : cells) {
    std::printf("%-16s", cell.c_str());
  }
  std::printf("\n");
}

std::string Fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

double TimeSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

LifeSciencesBench MakeLifeSciencesBench(std::size_t num_rows) {
  LifeSciencesBench bench;
  if (num_rows != 0) bench.gen.num_rows = num_rows;
  bench.data = synthetic::LifeSciences(bench.gen).value();

  bench.cluster_dims = {0, 1};
  bench.kmeans.k = bench.gen.num_clusters;
  bench.kmeans.feature_dims = bench.cluster_dims;
  bench.kmeans.max_iterations = 20;

  bench.logreg.feature_dims.resize(bench.gen.num_features);
  for (std::size_t d = 0; d < bench.gen.num_features; ++d) {
    bench.logreg.feature_dims[d] = d;
  }
  bench.logreg.label_dim = bench.gen.num_features;
  bench.logreg.max_iterations = 60;
  bench.logreg_weight_ranges.assign(bench.gen.num_features + 1,
                                    Range{-1.5, 1.5});

  auto empirical = bench.data.EmpiricalRanges();
  for (std::size_t c = 0; c < bench.kmeans.k; ++c) {
    for (std::size_t d : bench.cluster_dims) {
      bench.kmeans_tight_ranges.push_back(
          Range{empirical[d].lo, empirical[d].hi});
      // Paper §7.1.1: loose range is [min*2, max*2]. (For a negative min
      // that widens downward, as intended.)
      bench.kmeans_loose_ranges.push_back(
          Range{empirical[d].lo * 2.0, empirical[d].hi * 2.0});
    }
  }

  auto baseline = analytics::RunKMeans(bench.data, bench.kmeans).value();
  bench.baseline_icv = analytics::IntraClusterVariance(
                           bench.data, baseline.centers, bench.cluster_dims)
                           .value();
  auto model =
      analytics::TrainLogisticRegression(bench.data, bench.logreg).value();
  bench.baseline_accuracy =
      analytics::ClassificationAccuracy(bench.data, model, bench.logreg)
          .value();
  return bench;
}

double NormalizedIcv(const LifeSciencesBench& bench, const Row& flat_centers) {
  auto centers = analytics::UnflattenCenters(flat_centers, bench.kmeans.k,
                                             bench.cluster_dims.size())
                     .value();
  double icv = analytics::IntraClusterVariance(bench.data, centers,
                                               bench.cluster_dims)
                   .value();
  return icv / bench.baseline_icv * 100.0;
}

}  // namespace bench
}  // namespace gupt
