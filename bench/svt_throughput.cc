// SVT throughput: queries served per unit of privacy budget, interactive
// SVT session vs the one-shot baseline.
//
// The workload is threshold monitoring (the subsystem's target use case):
// an analyst repeatedly asks "does the count of rows in this interval
// exceed tau?". Two ways to pay for it:
//
//   svt      one session opened at epsilon_session = 0.1 answers every
//            below-threshold probe for free (pay-only-on-positive); the
//            ledger moves exactly once, at open.
//   one_shot each probe is a standalone PINQ-style NoisyCount charged
//            epsilon = 0.1 to the same kind of ledger (sequential
//            composition, paper section 3.1).
//
// With a fixed epsilon slice the one-shot baseline buys exactly
// 1 / epsilon answers per unit epsilon; the SVT session buys
// queries_served / epsilon_session. The headline ratio is the quotient,
// and the bench exits non-zero unless it clears 100x so the claim is
// machine-checkable. Emits BENCH_svt.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "dp/accountant.h"
#include "dp/noisy_ops.h"
#include "service/gupt_service.h"

namespace gupt {
namespace {

constexpr std::size_t kRows = 5000;
constexpr int kSvtQueries = 20000;
constexpr int kOneShotQueries = 500;  // timing sample; budget math is exact
constexpr double kEpsilonSlice = 0.1;

int Run() {
  bench::PrintHeader(
      "svt_throughput",
      "threshold-monitoring queries served per unit epsilon: interactive "
      "SVT session vs one-shot noisy counts",
      "pay-only-on-positive accounting buys >= 100x more below-threshold "
      "answers per unit epsilon than one-shot composition");

  // --- SVT arm: one session, kSvtQueries below-threshold probes. ---
  ServiceOptions options;
  options.introspect_port = -1;
  GuptService service(std::move(options),
                      ProgramRegistry::WithStandardPrograms());
  synthetic::CensusAgeOptions gen;
  gen.num_rows = kRows;
  DatasetOptions ds;
  ds.total_epsilon = 100.0;
  if (!service.RegisterDataset("ages", synthetic::CensusAges(gen).value(), ds)
           .ok()) {
    std::fprintf(stderr, "cannot register dataset\n");
    return 1;
  }

  SvtSessionRequest session;
  session.analyst = "bench";
  session.dataset = "ages";
  session.threshold = 2.0 * static_cast<double>(kRows);  // never crossed
  session.epsilon = kEpsilonSlice;
  session.max_positives = 1;
  auto opened = service.OpenSvtSession(session);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }

  SvtCandidateQuery probe;
  probe.dim = 0;
  probe.lo = 30.0;
  probe.hi = 50.0;
  int svt_served = 0;
  const double svt_seconds = bench::TimeSeconds([&] {
    for (int i = 0; i < kSvtQueries; ++i) {
      auto answer = service.SvtQuery(opened->session_id, probe);
      if (answer.ok()) ++svt_served;
    }
  });
  const double svt_epsilon_spent =
      100.0 - service.RemainingBudget("ages").value();

  // --- One-shot arm: NoisyCount at kEpsilonSlice each, own ledger. ---
  dp::PrivacyAccountant ledger(100.0);
  Rng rng(42);
  const std::size_t in_interval = [&] {
    // The same interval count the session evaluates, computed once; the
    // one-shot loop re-pays for the identical question every time.
    return static_cast<std::size_t>(kRows / 3);
  }();
  int one_shot_served = 0;
  const double one_shot_seconds = bench::TimeSeconds([&] {
    for (int i = 0; i < kOneShotQueries; ++i) {
      if (!ledger.Charge(kEpsilonSlice, "one_shot_count").ok()) break;
      auto count = dp::NoisyCount(in_interval, kEpsilonSlice, &rng);
      if (count.ok()) ++one_shot_served;
    }
  });
  const double one_shot_epsilon_spent = ledger.spent_epsilon();

  const double svt_qpe = static_cast<double>(svt_served) / svt_epsilon_spent;
  const double one_shot_qpe =
      static_cast<double>(one_shot_served) / one_shot_epsilon_spent;
  const double ratio = svt_qpe / one_shot_qpe;
  const double svt_qps = static_cast<double>(svt_served) / svt_seconds;
  const double one_shot_qps =
      static_cast<double>(one_shot_served) / one_shot_seconds;

  bench::PrintRow({"arm", "served", "eps_spent", "queries_per_eps",
                   "queries_per_s"});
  bench::PrintRow({"svt_session", std::to_string(svt_served),
                   bench::Fmt(svt_epsilon_spent, 4), bench::Fmt(svt_qpe, 1),
                   bench::Fmt(svt_qps, 0)});
  bench::PrintRow({"one_shot", std::to_string(one_shot_served),
                   bench::Fmt(one_shot_epsilon_spent, 4),
                   bench::Fmt(one_shot_qpe, 1), bench::Fmt(one_shot_qps, 0)});
  bench::PrintRow({"qpe_ratio", bench::Fmt(ratio, 1)});

  std::FILE* out = std::fopen("BENCH_svt.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_svt.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\"rows\": %zu, \"epsilon_slice\": %.3f, "
               "\"svt_queries_served\": %d, \"svt_epsilon_spent\": %.6f, "
               "\"svt_queries_per_epsilon\": %.1f, "
               "\"svt_queries_per_second\": %.1f, "
               "\"one_shot_queries_served\": %d, "
               "\"one_shot_epsilon_spent\": %.6f, "
               "\"one_shot_queries_per_epsilon\": %.1f, "
               "\"one_shot_queries_per_second\": %.1f, "
               "\"queries_per_epsilon_ratio\": %.1f}\n",
               kRows, kEpsilonSlice, svt_served, svt_epsilon_spent, svt_qpe,
               svt_qps, one_shot_served, one_shot_epsilon_spent, one_shot_qpe,
               one_shot_qps, ratio);
  std::fclose(out);
  std::printf("# wrote BENCH_svt.json\n");

  if (svt_served != kSvtQueries) {
    std::fprintf(stderr, "expected %d served, got %d\n", kSvtQueries,
                 svt_served);
    return 1;
  }
  if (ratio < 100.0) {
    std::fprintf(stderr, "queries-per-epsilon ratio %.1f below 100x\n", ratio);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
