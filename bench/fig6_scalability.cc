// Figure 6: wall-clock time of k-means vs the iteration count, comparing
// the non-private run against GUPT-helper and GUPT-loose.
//
// Paper shape: GUPT-helper pays the biggest fixed overhead (DP percentile
// over all n inputs), GUPT-loose a smaller one (percentile over the ~n^0.4
// block outputs); the private runs' time grows *more slowly* with the
// iteration count because each instance works on a small block, so the
// overhead amortises as computation grows.

#include <cstdio>

#include "baselines/nonprivate.h"
#include "bench_util.h"
#include "obs/metrics.h"

namespace gupt {
namespace {

/// Dumps the process-global metrics registry so the perf trajectory of
/// this figure is machine-readable run over run: per-stage durations,
/// per-block chamber latencies, thread-pool behaviour, epsilon charged.
int WriteObsJson(const char* path) {
  std::string json = obs::MetricsRegistry::Get().ExportJson();
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fputs(json.c_str(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("# metrics dump: %s\n", path);
  return 0;
}

int Run() {
  bench::PrintHeader(
      "Figure 6", "k-means completion time vs iteration count",
      "private curves start above the non-private one (range-estimation "
      "overhead, helper > loose) but grow more slowly with iterations");

  bench::LifeSciencesBench env = bench::MakeLifeSciencesBench();
  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 1e6;
  // Owner-declared loose input ranges for the helper-mode translator.
  auto empirical = env.data.EmpiricalRanges();
  std::vector<Range> loose_inputs;
  for (const Range& r : empirical) {
    loose_inputs.push_back(Range{r.lo * 2.0, r.hi * 2.0});
  }
  opts.input_ranges = loose_inputs;
  if (!manager.Register("ds1.10", env.data, opts).ok()) return 1;
  GuptRuntime runtime(&manager, GuptOptions{});

  // Helper translator: a centre coordinate for feature d lies inside that
  // feature's (tight, privately estimated) input range.
  std::size_t k = env.kmeans.k;
  std::vector<std::size_t> dims = env.cluster_dims;
  RangeTranslator translator =
      [k, dims](const std::vector<Range>& input) -> Result<std::vector<Range>> {
    std::vector<Range> out;
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t d : dims) {
        out.push_back(input[d]);
      }
    }
    return out;
  };

  // Wall time alone understates the private runs on a multicore box: the
  // block fan-out burns CPU in parallel (and, under process isolation, in
  // child processes wall clocks never see). The _cpu_s columns total the
  // coordinator thread-CPU plus child rusage from the query's resource
  // ledger, so the figure reports both the latency the analyst feels and
  // the compute the cluster pays.
  bench::PrintRow({"iterations", "non_private_s", "gupt_loose_s",
                   "loose_cpu_s", "gupt_helper_s", "helper_cpu_s"});
  for (std::size_t iterations : {20u, 80u, 100u, 200u}) {
    analytics::KMeansOptions kmeans = env.kmeans;
    kmeans.max_iterations = iterations;
    kmeans.tolerance = 0.0;

    double non_private_s = bench::TimeSeconds([&] {
      auto out = baselines::RunNonPrivate(analytics::KMeansQuery(kmeans),
                                          env.data);
      if (!out.ok()) std::exit(1);
    });

    struct GuptCost {
      double wall_s = 0;
      double cpu_s = 0;
    };
    auto run_gupt = [&](OutputRangeSpec range) {
      GuptCost cost;
      cost.wall_s = bench::TimeSeconds([&] {
        QuerySpec spec;
        spec.program = analytics::KMeansQuery(kmeans);
        spec.epsilon = 2.0;
        spec.range = std::move(range);
        auto report = runtime.Execute("ds1.10", spec);
        if (!report.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       report.status().ToString().c_str());
          std::exit(1);
        }
        cost.cpu_s = report->resources.TotalCpuSeconds();
      });
      return cost;
    };
    GuptCost loose = run_gupt(OutputRangeSpec::Loose(env.kmeans_loose_ranges));
    GuptCost helper = run_gupt(OutputRangeSpec::Helper(translator));

    bench::PrintRow({std::to_string(iterations), bench::Fmt(non_private_s),
                     bench::Fmt(loose.wall_s), bench::Fmt(loose.cpu_s),
                     bench::Fmt(helper.wall_s), bench::Fmt(helper.cpu_s)});
  }

  // Data-movement footnote: total bytes the partitioner gathered across
  // all the private runs above (each cell is copied once into the
  // block-shuffled store; the per-block views are zero-copy), plus the
  // chamber-pool lease/reset counters — zero here, since this figure runs
  // in-thread chambers, but reported so a future pool-backed run of the
  // same figure is directly comparable.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  std::printf("# partition_copied_mb %.2f  pool_leases %.0f  pool_resets "
              "%.0f\n",
              registry.GetCounter("gupt_data_partition_copied_bytes_total",
                                  "")->Value() / 1048576.0,
              registry.GetCounter("gupt_chamber_pool_leases_total", "")
                  ->Value(),
              registry.GetCounter("gupt_chamber_pool_resets_total", "")
                  ->Value());
  return WriteObsJson("BENCH_obs.json");
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
