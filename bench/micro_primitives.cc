// Micro-benchmarks of the DP substrate: the per-operation costs that
// determine the runtime's fixed overheads (Figure 6's offsets are made of
// exactly these pieces).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "data/partitioner.h"
#include "dp/accountant.h"
#include "dp/laplace.h"
#include "dp/percentile.h"

namespace gupt {
namespace {

void BM_LaplaceSample(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Laplace(1.0));
  }
}
BENCHMARK(BM_LaplaceSample);

void BM_LaplaceMechanism(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::LaplaceMechanism(1.0, 1.0, 0.5, &rng));
  }
}
BENCHMARK(BM_LaplaceMechanism);

void BM_PrivatePercentile(benchmark::State& state) {
  Rng data_rng(3);
  std::vector<double> values(static_cast<std::size_t>(state.range(0)));
  for (double& v : values) v = data_rng.UniformDouble(0.0, 100.0);
  dp::PercentileOptions opts;
  opts.lo = 0.0;
  opts.hi = 100.0;
  opts.epsilon = 1.0;
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::PrivatePercentile(values, opts, &rng));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PrivatePercentile)->Range(1 << 8, 1 << 15)->Complexity();

void BM_AccountantCharge(benchmark::State& state) {
  dp::PrivacyAccountant accountant(1e18);
  for (auto _ : state) {
    benchmark::DoNotOptimize(accountant.Charge(1e-6, "bench"));
  }
}
BENCHMARK(BM_AccountantCharge);

void BM_PartitionDisjoint(benchmark::State& state) {
  Rng rng(5);
  auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionDisjoint(n, DefaultNumBlocks(n), &rng));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PartitionDisjoint)->Range(1 << 10, 1 << 16)->Complexity();

void BM_PartitionResampled(benchmark::State& state) {
  Rng rng(6);
  auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionResampled(n, n / 16, 4, &rng));
  }
}
BENCHMARK(BM_PartitionResampled)->Range(1 << 10, 1 << 16);

}  // namespace
}  // namespace gupt

BENCHMARK_MAIN();
