// Ablation (§4.2): effect of the resampling factor gamma on output error.
//
// Claim 1 says the Laplace noise scale is unchanged by gamma at a fixed
// block size, while the partition-induced variance shrinks ~1/gamma. The
// partition variance only exists for *non-linear* queries (for the mean,
// the average of disjoint block means is exactly the dataset mean), so
// this ablation uses the median, and runs at a large epsilon so the noise
// floor does not drown the partition variance that resampling targets.
// Reported: the standard deviation of the released output across repeated
// runs (partition + noise variance, no bias floor) and the analytic noise
// scale (constant in gamma — Claim 1).

#include <cmath>

#include "analytics/queries.h"
#include "bench_util.h"

namespace gupt {
namespace {

constexpr int kTrials = 300;

int Run() {
  bench::PrintHeader(
      "Ablation: resampling (gamma)",
      "std-dev of the median-age query vs resampling factor at fixed beta",
      "output std-dev falls as gamma grows and flattens at the noise "
      "floor; the analytic noise scale stays constant (Claim 1)");

  synthetic::CensusAgeOptions gen;
  gen.num_rows = 10000;
  Dataset data = synthetic::CensusAges(gen).value();

  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 1e9;
  if (!manager.Register("census", std::move(data), opts).ok()) return 1;
  GuptRuntime runtime(&manager, GuptOptions{});

  bench::PrintRow({"gamma", "output_stddev", "noise_scale(analytic)"});
  const std::size_t beta = 250;
  const double epsilon = 200.0;  // suppress the noise floor (see header)
  for (std::size_t gamma : {1u, 2u, 3u, 4u, 6u, 8u}) {
    std::vector<double> outputs;
    double noise_scale = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      QuerySpec spec;
      spec.program = analytics::MedianQuery(0);
      spec.epsilon = epsilon;
      spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
      spec.block_size = beta;
      spec.gamma = gamma;
      auto report = runtime.Execute("census", spec);
      if (!report.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
      outputs.push_back(report->output[0]);
      noise_scale = static_cast<double>(report->gamma) * 150.0 /
                    (static_cast<double>(report->num_blocks) *
                     report->epsilon_saf_per_dim);
    }
    bench::PrintRow({std::to_string(gamma),
                     bench::Fmt(stats::StdDev(outputs), 4),
                     bench::Fmt(noise_scale, 4)});
  }
  return 0;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
