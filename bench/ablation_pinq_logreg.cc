// Ablation (§7.1.2, applied to Fig. 3's workload): GUPT vs a PINQ-style
// noisy-gradient logistic regression at matched total budgets.
//
// PINQ's per-iteration budgeting hits iterative training exactly as it
// hits k-means: the analyst must guess the iteration count, and the same
// total budget split over more iterations means noisier gradients. GUPT
// runs the unmodified trainer per block and noises only the final model.

#include "analytics/logistic_regression.h"
#include "baselines/pinq.h"
#include "bench_util.h"
#include "common/rng.h"

namespace gupt {
namespace {

constexpr int kTrials = 3;

int Run() {
  bench::PrintHeader(
      "Ablation: logistic regression, GUPT vs PINQ-style noisy gradients",
      "classification accuracy at matched budgets",
      "GUPT is insensitive to the trainer's iteration count; PINQ degrades "
      "when the declared iteration count grows");

  bench::LifeSciencesBench env = bench::MakeLifeSciencesBench(8000);
  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 1e7;
  if (!manager.Register("ds", env.data, opts).ok()) return 1;
  GuptRuntime runtime(&manager, GuptOptions{});

  auto gupt_accuracy = [&](double epsilon) {
    double sum = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      QuerySpec spec;
      spec.program = analytics::LogisticRegressionQuery(env.logreg);
      spec.epsilon = epsilon;
      spec.range = OutputRangeSpec::Tight(env.logreg_weight_ranges);
      auto report = runtime.Execute("ds", spec);
      if (!report.ok()) std::exit(1);
      analytics::LogisticModel model;
      model.weights = report->output;
      sum += analytics::ClassificationAccuracy(env.data, model, env.logreg)
                 .value();
    }
    return sum / kTrials;
  };

  auto pinq_accuracy = [&](double epsilon, std::size_t iterations,
                           std::uint64_t seed) {
    dp::PrivacyAccountant accountant(1e7);
    Rng rng(seed);
    baselines::PinqLogisticRegressionOptions pl;
    pl.feature_dims = env.logreg.feature_dims;
    pl.label_dim = env.logreg.label_dim;
    pl.iterations = iterations;
    pl.total_epsilon = epsilon;
    pl.feature_bound = 10.0;
    double sum = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      auto weights =
          baselines::PinqLogisticRegression(env.data, pl, &accountant, &rng);
      if (!weights.ok()) std::exit(1);
      analytics::LogisticModel model;
      model.weights = *weights;
      sum += analytics::ClassificationAccuracy(env.data, model, env.logreg)
                 .value();
    }
    return sum / kTrials;
  };

  std::printf("non-private baseline accuracy: %s\n\n",
              bench::Fmt(env.baseline_accuracy).c_str());
  bench::PrintRow({"epsilon", "gupt", "pinq_it20", "pinq_it100",
                   "pinq_it400"});
  for (double epsilon : {4.0, 8.0, 16.0}) {
    bench::PrintRow({bench::Fmt(epsilon, 1),
                     bench::Fmt(gupt_accuracy(epsilon)),
                     bench::Fmt(pinq_accuracy(epsilon, 20, 11)),
                     bench::Fmt(pinq_accuracy(epsilon, 100, 12)),
                     bench::Fmt(pinq_accuracy(epsilon, 400, 13))});
  }
  return 0;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
