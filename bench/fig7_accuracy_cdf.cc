// Figure 7: CDF of output accuracy for the average-age query on the census
// dataset, comparing fixed privacy budgets against GUPT's variable budget
// derived from an accuracy goal ("90% accuracy with 90% probability").
//
// Paper shape: the fixed eps=1 curve overshoots the goal (wasting budget),
// fixed eps=0.3 undershoots it, and the variable-eps curve hugs the goal —
// ~90% of queries at >= 90% accuracy, not much more.

#include <algorithm>
#include <cmath>

#include "analytics/queries.h"
#include "bench_util.h"

namespace gupt {
namespace {

constexpr double kGoalAccuracy = 0.90;
constexpr double kGoalProbability = 0.90;
constexpr std::size_t kBlockSize = 100;
constexpr int kQueries = 150;

int Run() {
  bench::PrintHeader(
      "Figure 7",
      "CDF of average-age query accuracy: fixed eps vs accuracy-goal eps",
      "fixed eps=1 overshoots the 90% goal, eps=0.3 undershoots it, the "
      "variable-eps curve meets it with the least budget");

  synthetic::CensusAgeOptions gen;
  Dataset data = synthetic::CensusAges(gen).value();
  double true_mean = stats::Mean(data.Column(0).value());
  std::printf("true average age: %s (paper: 38.5816)\n\n",
              bench::Fmt(true_mean, 4).c_str());

  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 1e6;
  opts.aged_fraction = 0.10;  // paper: 10% assumed privacy-insensitive
  opts.input_ranges = std::vector<Range>{{0.0, 150.0}};
  if (!manager.Register("census", std::move(data), opts).ok()) return 1;
  // The aged split shifts the private mean slightly; measure against it.
  true_mean = stats::Mean(
      manager.Get("census").value()->data().Column(0).value());
  GuptRuntime runtime(&manager, GuptOptions{});

  auto accuracies_for = [&](std::optional<double> epsilon) {
    std::vector<double> accuracies;
    double epsilon_used = 0.0;
    for (int q = 0; q < kQueries; ++q) {
      QuerySpec spec;
      spec.program = analytics::MeanQuery(0);
      spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
      spec.block_size = kBlockSize;
      if (epsilon) {
        spec.epsilon = *epsilon;
      } else {
        spec.accuracy_goal = AccuracyGoal{kGoalAccuracy, 1.0 - kGoalProbability};
      }
      auto report = runtime.Execute("census", spec);
      if (!report.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     report.status().ToString().c_str());
        std::exit(1);
      }
      epsilon_used = report->epsilon_spent;
      accuracies.push_back(
          1.0 - std::fabs(report->output[0] - true_mean) / true_mean);
    }
    std::sort(accuracies.begin(), accuracies.end());
    std::printf("  (per-query epsilon: %s)\n", bench::Fmt(epsilon_used, 4).c_str());
    return accuracies;
  };

  std::printf("running %d queries per scheme...\n", kQueries);
  std::printf("scheme: constant eps=1\n");
  auto eps1 = accuracies_for(1.0);
  std::printf("scheme: constant eps=0.3\n");
  auto eps03 = accuracies_for(0.3);
  std::printf("scheme: variable eps (goal: %.0f%% accuracy, %.0f%% of queries)\n",
              kGoalAccuracy * 100, kGoalProbability * 100);
  auto variable = accuracies_for(std::nullopt);

  std::printf("\nCDF: result accuracy at each fraction of queries\n");
  bench::PrintRow({"pct_queries", "eps_1.0", "eps_0.3", "variable_eps",
                   "goal"});
  for (int pct : {5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 95}) {
    std::size_t idx = static_cast<std::size_t>(
        pct / 100.0 * static_cast<double>(kQueries - 1));
    bench::PrintRow({std::to_string(pct), bench::Fmt(eps1[idx] * 100, 1),
                     bench::Fmt(eps03[idx] * 100, 1),
                     bench::Fmt(variable[idx] * 100, 1), "90.0"});
  }

  auto fraction_meeting = [&](const std::vector<double>& accuracies) {
    std::size_t meeting = 0;
    for (double a : accuracies) {
      if (a >= kGoalAccuracy) ++meeting;
    }
    return static_cast<double>(meeting) / accuracies.size() * 100.0;
  };
  std::printf("\nfraction of queries meeting the 90%% accuracy goal:\n");
  bench::PrintRow({"eps_1.0", "eps_0.3", "variable_eps", "target"});
  bench::PrintRow({bench::Fmt(fraction_meeting(eps1), 1),
                   bench::Fmt(fraction_meeting(eps03), 1),
                   bench::Fmt(fraction_meeting(variable), 1), "90.0"});
  return 0;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
