// Table 1: qualitative comparison of GUPT, PINQ and Airavat.
//
// Rather than restating the paper's table, each row is *demonstrated*
// behaviourally where possible: attack programs and unmodified programs
// are run against the three runtimes built in this repository and the
// verdicts derive from what actually happens.

#include <chrono>
#include <thread>

#include "analytics/queries.h"
#include "baselines/airavat.h"
#include "baselines/pinq.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/gupt.h"

namespace gupt {
namespace {

Dataset SmallColumn() {
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) rows.push_back({static_cast<double>(i % 10)});
  return Dataset::Create(std::move(rows)).value();
}

// GUPT runs an arbitrary black-box program unmodified.
bool GuptRunsUnmodifiedProgram() {
  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 100.0;
  if (!manager.Register("d", SmallColumn(), opts).ok()) return false;
  GuptRuntime runtime(&manager, GuptOptions{});
  QuerySpec spec;
  // "Unmodified": a plain statistical routine with no DP annotations,
  // primitives, or map-reduce structure.
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 1.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 10.0}});
  return runtime.Execute("d", spec).ok();
}

// PINQ requires the program to be rewritten against budgeted primitives —
// demonstrated by running the same mean through its operator surface.
bool PinqNeedsRewrite() {
  Dataset data = SmallColumn();
  dp::PrivacyAccountant accountant(100.0);
  Rng rng(1);
  baselines::PinqQueryable q(&data, &accountant, &rng);
  // The analyst cannot hand PINQ a black box; they must call NoisyAverage.
  return q.NoisyAverage(0, Range{0.0, 10.0}, 1.0).ok();
}

// GUPT: the runtime owns the ledger, so spend == declared regardless of
// program behaviour. (See tests/integration/side_channel_test.cc for the
// full attack suite; this re-checks the observable invariant.)
bool GuptStopsBudgetAttack() {
  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 10.0;
  if (!manager.Register("d", SmallColumn(), opts).ok()) return false;
  GuptRuntime runtime(&manager, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 2.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 10.0}});
  if (!runtime.Execute("d", spec).ok()) return false;
  return manager.Get("d").value()->accountant().spent_epsilon() == 2.0;
}

// PINQ: the (untrusted) program issues budgeted operations itself, so a
// malicious program drains the ledger at will.
bool PinqVulnerableToBudgetAttack() {
  Dataset data = SmallColumn();
  dp::PrivacyAccountant accountant(10.0);
  Rng rng(2);
  baselines::PinqQueryable q(&data, &accountant, &rng);
  // The "program" decides to burn everything.
  while (q.NoisyCount(1.0).ok()) {
  }
  return accountant.remaining_epsilon() < 1.0;  // drained
}

// GUPT: a stalling program is killed at the cycle budget and replaced by a
// constant, so timing reveals nothing.
bool GuptStopsTimingAttack() {
  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 100.0;
  if (!manager.Register("d", SmallColumn(), opts).ok()) return false;
  GuptOptions options;
  options.chamber_policy.deadline = std::chrono::microseconds(20000);
  GuptRuntime runtime(&manager, options);
  QuerySpec spec;
  spec.program = MakeProgramFactory("staller", 1,
                                    [](const Dataset&) -> Result<Row> {
                                      std::this_thread::sleep_for(
                                          std::chrono::milliseconds(200));
                                      return Row{0.0};
                                    });
  spec.epsilon = 2.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 10.0}});
  spec.block_size = 100;  // 2 blocks
  auto report = runtime.Execute("d", spec);
  return report.ok() && report->deadline_exceeded_blocks == report->num_blocks;
}

const char* YesNo(bool yes) { return yes ? "Yes" : "No"; }

int Run() {
  bench::PrintHeader("Table 1", "GUPT vs PINQ vs Airavat feature matrix",
                     "GUPT: yes on every row; PINQ: expressive but no "
                     "sandboxing or budget automation; Airavat: sandboxed "
                     "map-reduce only");

  bool gupt_unmodified = GuptRunsUnmodifiedProgram();
  bool pinq_primitives = PinqNeedsRewrite();
  bool gupt_budget = GuptStopsBudgetAttack();
  bool pinq_budget_attack = PinqVulnerableToBudgetAttack();
  bool gupt_timing = GuptStopsTimingAttack();

  bench::PrintRow({"feature", "GUPT", "PINQ", "Airavat"});
  bench::PrintRow({"----------------", "----", "----", "-------"});
  // Demonstrated: GUPT ran analytics::MeanQuery as a black box; PINQ's
  // surface is budgeted primitives; Airavat requires the mapper/reducer
  // split (see baselines/airavat.h).
  bench::PrintRow({"unmodified_prog", YesNo(gupt_unmodified), "No", "No"});
  // PINQ composes arbitrary primitive pipelines; Airavat is limited to
  // one mapper + trusted reducer (no global state, fixed key space).
  bench::PrintRow({"expressive_prog", "Yes", YesNo(pinq_primitives), "No"});
  // GUPT converts accuracy goals and allocates budget itself (§5); the
  // others make the analyst do it.
  bench::PrintRow({"auto_budget", "Yes", "No", "No"});
  bench::PrintRow(
      {"budget_attack_ok", YesNo(gupt_budget), YesNo(!pinq_budget_attack),
       "Yes"});
  // State attacks: GUPT isolates instances (demonstrated in the test
  // suite); PINQ/Airavat programs share a process with mutable state.
  bench::PrintRow({"state_attack_ok", "Yes", "No", "No"});
  bench::PrintRow({"timing_attack_ok", YesNo(gupt_timing), "No", "No"});

  std::printf(
      "\nbehavioural evidence: gupt_unmodified=%d pinq_primitives=%d "
      "gupt_budget=%d pinq_drained=%d gupt_timing=%d\n",
      gupt_unmodified, pinq_primitives, gupt_budget, pinq_budget_attack,
      gupt_timing);
  return (gupt_unmodified && gupt_budget && pinq_budget_attack && gupt_timing)
             ? 0
             : 1;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
