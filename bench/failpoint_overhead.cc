// Failpoint overhead: the fig6-style query path through the hosted
// service with the failpoint sites compiled in (GUPT_FAILPOINTS_ENABLED=ON,
// the default), measured unarmed vs with a no-op failpoint armed on the
// hottest site.
//
// Unarmed, every site is one relaxed atomic load of the global armed
// count; the expectation is a median latency within noise of a build with
// the sites compiled out (the PR-3 BENCH_obs_overhead.json numbers are
// the comparable baseline for this query shape). Arming even a no-op
// routes every evaluation through the registry mutex, which is the
// documented test-only cost. Emits BENCH_failpoint_overhead.json so the
// claim is machine-checkable.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "service/gupt_service.h"
#include "testing/failpoints/failpoints.h"

namespace gupt {
namespace {

constexpr int kWarmupQueries = 3;
constexpr int kTimedQueries = 31;

QueryRequest MeanRequest() {
  QueryRequest request;
  request.analyst = "bench";
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = 0.1;
  request.range_mode = RangeMode::kTight;
  request.output_ranges = {Range{0.0, 150.0}};
  request.gamma = 3;  // resampled fan-out: the scalability-path shape
  return request;
}

/// Median per-query seconds over kTimedQueries runs (same shape and
/// seed as bench/obs_overhead.cc so the numbers are comparable).
double MedianQuerySeconds() {
  ServiceOptions options;
  options.introspect_port = -1;
  options.runtime.num_workers = 4;
  options.runtime.seed = 99;
  GuptService service(std::move(options),
                      ProgramRegistry::WithStandardPrograms());
  synthetic::CensusAgeOptions gen;
  gen.num_rows = 20000;
  DatasetOptions ds;
  ds.total_epsilon = 1e6;
  if (!service.RegisterDataset("ages", synthetic::CensusAges(gen).value(), ds)
           .ok()) {
    std::exit(1);
  }

  auto one_query = [&service] {
    auto report = service.SubmitQuery(MeanRequest());
    if (!report.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   report.status().ToString().c_str());
      std::exit(1);
    }
  };
  for (int i = 0; i < kWarmupQueries; ++i) one_query();
  std::vector<double> seconds;
  seconds.reserve(kTimedQueries);
  for (int i = 0; i < kTimedQueries; ++i) {
    seconds.push_back(bench::TimeSeconds(one_query));
  }
  std::nth_element(seconds.begin(), seconds.begin() + kTimedQueries / 2,
                   seconds.end());
  return seconds[kTimedQueries / 2];
}

int Run() {
  bench::PrintHeader(
      "failpoint_overhead",
      "query latency with failpoint sites unarmed vs a no-op armed",
      "unarmed sites are one relaxed load each: median within noise of a "
      "build without the sites (compare BENCH_obs_overhead.json)");

  failpoints::DisarmAll();
  const double unarmed_median_s = MedianQuerySeconds();

  // Arm a no-op on the per-block chamber site — the hottest failpoint on
  // this query shape — so every block execution takes the locked slow
  // path but injects nothing.
  failpoints::Config noop;
  noop.action = failpoints::Action::kNoop;
  noop.every_nth = 1;
  if (!failpoints::Arm("exec.chamber.program", noop).ok()) {
    if (!failpoints::CompiledIn()) {
      std::printf("# failpoints compiled out: armed run skipped\n");
    } else {
      std::fprintf(stderr, "cannot arm exec.chamber.program\n");
      return 1;
    }
  }
  const double armed_median_s = MedianQuerySeconds();
  failpoints::DisarmAll();

  const double ratio = armed_median_s / unarmed_median_s;
  bench::PrintRow({"config", "median_query_s"});
  bench::PrintRow({"unarmed", bench::Fmt(unarmed_median_s, 6)});
  bench::PrintRow({"armed_noop", bench::Fmt(armed_median_s, 6)});
  bench::PrintRow({"ratio", bench::Fmt(ratio, 4)});

  std::FILE* out = std::fopen("BENCH_failpoint_overhead.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_failpoint_overhead.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\"queries\": %d, \"compiled_in\": %s, "
               "\"unarmed_median_s\": %.9f, \"armed_noop_median_s\": %.9f, "
               "\"armed_over_unarmed\": %.6f}\n",
               kTimedQueries, failpoints::CompiledIn() ? "true" : "false",
               unarmed_median_s, armed_median_s, ratio);
  std::fclose(out);
  std::printf("# wrote BENCH_failpoint_overhead.json\n");
  return 0;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
