// Figure 5: total perturbation vs the number of k-means iterations, GUPT
// against PINQ.
//
// PINQ must pre-declare the iteration count and split its budget across
// iterations, so over-declaring (200 when 20 suffice) degrades the
// clusters; GUPT perturbs only the final output, so its ICV is flat in the
// iteration count. The paper runs PINQ at a *weaker* privacy constraint
// (eps 2 and 4) than GUPT (eps 1 and 2) and GUPT still wins.

#include "baselines/airavat.h"
#include "baselines/pinq.h"
#include "bench_util.h"
#include "common/rng.h"

namespace gupt {
namespace {

int Run() {
  bench::PrintHeader(
      "Figure 5", "k-means ICV vs declared iteration count (GUPT vs PINQ)",
      "PINQ ICV grows with the declared iteration count; GUPT ICV is flat "
      "and lower even at half the privacy budget");

  bench::LifeSciencesBench env = bench::MakeLifeSciencesBench();
  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 1e7;
  if (!manager.Register("ds1.10", env.data, opts).ok()) return 1;
  GuptRuntime runtime(&manager, GuptOptions{});

  std::vector<Range> feature_ranges;
  for (std::size_t i = 0; i < env.cluster_dims.size(); ++i) {
    feature_ranges.push_back(env.kmeans_tight_ranges[i]);
  }

  const int kTrials = 9;
  auto pinq_icv = [&](std::size_t iterations, double epsilon,
                      std::uint64_t seed) {
    dp::PrivacyAccountant accountant(1e7);
    Rng rng(seed);
    baselines::PinqKMeansOptions pk;
    pk.k = env.kmeans.k;
    pk.iterations = iterations;
    pk.total_epsilon = epsilon;
    pk.feature_dims = env.cluster_dims;
    pk.feature_ranges = feature_ranges;
    double sum = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      auto centers =
          baselines::PinqKMeans(env.data, pk, &accountant, &rng).value();
      sum += analytics::IntraClusterVariance(env.data, centers,
                                             env.cluster_dims)
                 .value();
    }
    return sum / kTrials / env.baseline_icv * 100.0;
  };

  auto gupt_icv = [&](std::size_t iterations, double epsilon) {
    analytics::KMeansOptions kmeans = env.kmeans;
    kmeans.max_iterations = iterations;
    kmeans.tolerance = 0.0;  // run all declared iterations, like the paper
    double sum = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      QuerySpec spec;
      spec.program = analytics::KMeansQuery(kmeans);
      spec.epsilon = epsilon;
      spec.accounting = BudgetAccounting::kPerDimension;  // as in Fig. 4
      spec.range = OutputRangeSpec::Tight(env.kmeans_tight_ranges);
      auto report = runtime.Execute("ds1.10", spec);
      if (!report.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     report.status().ToString().c_str());
        std::exit(1);
      }
      sum += bench::NormalizedIcv(env, report->output);
    }
    return sum / kTrials;
  };

  // Extension beyond the paper's figure: Airavat expressed as one
  // map-reduce job per iteration hits the same budget-splitting wall (§7.3
  // discusses why; the paper does not plot it).
  auto airavat_icv = [&](std::size_t iterations, double epsilon,
                         std::uint64_t seed) {
    dp::PrivacyAccountant accountant(1e7);
    Rng rng(seed);
    baselines::AiravatKMeansOptions ak;
    ak.k = env.kmeans.k;
    ak.iterations = iterations;
    ak.total_epsilon = epsilon;
    ak.feature_dims = env.cluster_dims;
    ak.feature_ranges = feature_ranges;
    double sum = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      auto centers =
          baselines::AiravatKMeans(env.data, ak, &accountant, &rng).value();
      sum += analytics::IntraClusterVariance(env.data, centers,
                                             env.cluster_dims)
                 .value();
    }
    return sum / kTrials / env.baseline_icv * 100.0;
  };

  std::printf("normalized ICV, baseline = 100\n\n");
  bench::PrintRow({"iterations", "pinq_eps2", "pinq_eps4", "gupt_eps1",
                   "gupt_eps2", "airavat_eps4*"});
  for (std::size_t iterations : {20u, 80u, 200u}) {
    bench::PrintRow({std::to_string(iterations),
                     bench::Fmt(pinq_icv(iterations, 2.0, iterations), 1),
                     bench::Fmt(pinq_icv(iterations, 4.0, iterations + 1), 1),
                     bench::Fmt(gupt_icv(iterations, 1.0), 1),
                     bench::Fmt(gupt_icv(iterations, 2.0), 1),
                     bench::Fmt(airavat_icv(iterations, 4.0, iterations + 2),
                                1)});
  }
  std::printf("\n* airavat column is an extension (not in the paper's "
              "figure): one map-reduce job per iteration\n");
  return 0;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
