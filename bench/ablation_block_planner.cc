// Ablation (§4.3): the aged-data block planner against the default n^0.6
// block size.
//
// Example 3's claim: for the mean, the default block size costs O(1/n^0.4)
// error where the optimum (beta ~ 1) costs O(1/n); for the median, the
// optimum sits in between. This bench runs both configurations end to end
// on the census ages and reports RMSE vs the true answer.

#include <cmath>

#include "analytics/queries.h"
#include "bench_util.h"

namespace gupt {
namespace {

constexpr int kTrials = 80;

int Run() {
  bench::PrintHeader(
      "Ablation: block planner vs default n^0.6",
      "end-to-end RMSE of mean and median queries under both block policies",
      "planner matches or beats the default for both queries; the mean "
      "gains the most (optimal beta ~ 1, Example 3)");

  synthetic::CensusAgeOptions gen;
  Dataset data = synthetic::CensusAges(gen).value();

  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 1e9;
  opts.aged_fraction = 0.10;
  if (!manager.Register("census", std::move(data), opts).ok()) return 1;
  auto registered = manager.Get("census").value();
  double true_mean = stats::Mean(registered->data().Column(0).value());
  double true_median =
      stats::Quantile(registered->data().Column(0).value(), 0.5).value();
  GuptRuntime runtime(&manager, GuptOptions{});

  auto rmse = [&](const ProgramFactory& program, double truth, bool optimize,
                  double epsilon) {
    double sq_sum = 0.0;
    std::size_t beta = 0;
    for (int t = 0; t < kTrials; ++t) {
      QuerySpec spec;
      spec.program = program;
      spec.epsilon = epsilon;
      spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
      spec.optimize_block_size = optimize;
      auto report = runtime.Execute("census", spec);
      if (!report.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     report.status().ToString().c_str());
        std::exit(1);
      }
      double err = report->output[0] - truth;
      sq_sum += err * err;
      beta = report->block_size;
    }
    std::printf("  (beta = %zu)\n", beta);
    return std::sqrt(sq_sum / kTrials);
  };

  const double epsilon = 0.5;
  std::printf("epsilon per query: %.1f\n\n", epsilon);
  bench::PrintRow({"query", "default_rmse", "planner_rmse"});
  std::printf("mean:\n");
  double mean_default =
      rmse(analytics::MeanQuery(0), true_mean, false, epsilon);
  double mean_planned = rmse(analytics::MeanQuery(0), true_mean, true, epsilon);
  std::printf("median:\n");
  double median_default =
      rmse(analytics::MedianQuery(0), true_median, false, epsilon);
  double median_planned =
      rmse(analytics::MedianQuery(0), true_median, true, epsilon);
  bench::PrintRow({"mean", bench::Fmt(mean_default, 4),
                   bench::Fmt(mean_planned, 4)});
  bench::PrintRow({"median", bench::Fmt(median_default, 4),
                   bench::Fmt(median_planned, 4)});
  return 0;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
