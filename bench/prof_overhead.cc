// Sampling-profiler overhead: the fig6-style query path through the hosted
// service with the profiler (a) never started, (b) installed but disarmed
// (the steady state after any capture: SIGPROF handler resident, interval
// timer off), and (c) armed at 99 Hz for the whole timed run.
//
// Expectation: a disarmed profiler is free (no timer, no signals), and an
// armed 99 Hz capture costs one signal + one backtrace per ~10ms of CPU,
// which should stay within 5% of median query latency. Emits
// BENCH_prof_overhead.json so the claim is machine-checkable.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "obs/prof/profiler.h"
#include "service/gupt_service.h"

namespace gupt {
namespace {

constexpr int kWarmupQueries = 3;
constexpr int kTimedQueries = 31;

QueryRequest MeanRequest() {
  QueryRequest request;
  request.analyst = "bench";
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = 0.1;
  request.range_mode = RangeMode::kTight;
  request.output_ranges = {Range{0.0, 150.0}};
  request.gamma = 3;  // resampled fan-out: the scalability-path shape
  return request;
}

enum class ProfilerState { kOff, kIdle, kArmed };

/// Median per-query seconds over kTimedQueries runs with the profiler in
/// the given state (the dataset carries an effectively unbounded budget so
/// accounting never interferes with timing).
double MedianQuerySeconds(ProfilerState state) {
  ServiceOptions options;
  options.introspect_port = -1;  // isolate the profiler's own cost
  options.runtime.num_workers = 4;
  options.runtime.seed = 99;
  GuptService service(std::move(options),
                      ProgramRegistry::WithStandardPrograms());
  synthetic::CensusAgeOptions gen;
  gen.num_rows = 20000;
  DatasetOptions ds;
  ds.total_epsilon = 1e6;
  if (!service.RegisterDataset("ages", synthetic::CensusAges(gen).value(), ds)
           .ok()) {
    std::exit(1);
  }

  obs::prof::Profiler& profiler = obs::prof::Profiler::Get();
  if (state == ProfilerState::kIdle) {
    // One start/stop cycle leaves the SIGPROF handler installed with the
    // interval timer disarmed: the post-capture steady state.
    obs::prof::ProfilerOptions opts;
    if (!profiler.Start(opts)) std::exit(1);
    (void)profiler.Stop();
  }
  if (state == ProfilerState::kArmed) {
    obs::prof::ProfilerOptions opts;
    opts.hz = 99;
    opts.max_samples = 1 << 20;  // never saturate during the timed run
    if (!profiler.Start(opts)) std::exit(1);
  }

  auto one_query = [&service] {
    auto report = service.SubmitQuery(MeanRequest());
    if (!report.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   report.status().ToString().c_str());
      std::exit(1);
    }
  };
  for (int i = 0; i < kWarmupQueries; ++i) one_query();
  std::vector<double> seconds;
  seconds.reserve(kTimedQueries);
  for (int i = 0; i < kTimedQueries; ++i) {
    seconds.push_back(bench::TimeSeconds(one_query));
  }
  if (state == ProfilerState::kArmed) {
    obs::prof::Profile profile = profiler.Stop();
    std::printf("# armed run captured %zu samples (%llu dropped)\n",
                profile.samples.size(),
                static_cast<unsigned long long>(profile.dropped));
  }
  std::nth_element(seconds.begin(), seconds.begin() + kTimedQueries / 2,
                   seconds.end());
  return seconds[kTimedQueries / 2];
}

int Run() {
  bench::PrintHeader(
      "prof_overhead",
      "query latency with the sampling profiler off / idle / armed at 99 Hz",
      "a disarmed profiler is within noise of off; armed 99 Hz sampling "
      "adds <= 5% to the median query latency");

  double off_median_s = MedianQuerySeconds(ProfilerState::kOff);
  double idle_median_s = MedianQuerySeconds(ProfilerState::kIdle);
  double armed_median_s = MedianQuerySeconds(ProfilerState::kArmed);

  double idle_ratio = idle_median_s / off_median_s;
  double armed_ratio = armed_median_s / off_median_s;
  bench::PrintRow({"config", "median_query_s"});
  bench::PrintRow({"profiler_off", bench::Fmt(off_median_s, 6)});
  bench::PrintRow({"profiler_idle", bench::Fmt(idle_median_s, 6)});
  bench::PrintRow({"profiler_armed_99hz", bench::Fmt(armed_median_s, 6)});
  bench::PrintRow({"idle_ratio", bench::Fmt(idle_ratio, 4)});
  bench::PrintRow({"armed_ratio", bench::Fmt(armed_ratio, 4)});

  std::FILE* out = std::fopen("BENCH_prof_overhead.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_prof_overhead.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\"queries\": %d, \"off_median_s\": %.9f, "
               "\"idle_median_s\": %.9f, \"armed_median_s\": %.9f, "
               "\"idle_ratio\": %.6f, \"armed_ratio\": %.6f}\n",
               kTimedQueries, off_median_s, idle_median_s, armed_median_s,
               idle_ratio, armed_ratio);
  std::fclose(out);
  std::printf("# wrote BENCH_prof_overhead.json\n");
  return 0;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
