// Figure 8: lifetime of the total privacy budget under different per-query
// budget policies for the average-age query.
//
// Paper shape (normalized to constant eps=1): the accuracy-goal-driven
// variable epsilon answers ~2.3x more queries; a fixed eps=0.3 answers
// ~3.3x more but misses the accuracy goal (Fig. 7 shows its accuracy CDF
// undershoots). Lifetime here is measured by actually running queries
// against a real ledger until it is exhausted.

#include "analytics/queries.h"
#include "bench_util.h"

namespace gupt {
namespace {

constexpr double kTotalBudget = 30.0;
constexpr std::size_t kBlockSize = 100;

int Run() {
  bench::PrintHeader(
      "Figure 8", "privacy budget lifetime under different query policies",
      "variable eps answers ~2-3x the queries of constant eps=1 while still "
      "meeting the accuracy goal; eps=0.3 answers more but misses the goal");

  auto queries_until_exhaustion = [&](std::optional<double> epsilon) {
    synthetic::CensusAgeOptions gen;
    Dataset data = synthetic::CensusAges(gen).value();
    DatasetManager manager;
    DatasetOptions opts;
    opts.total_epsilon = kTotalBudget;
    opts.aged_fraction = 0.10;
    opts.input_ranges = std::vector<Range>{{0.0, 150.0}};
    if (!manager.Register("census", std::move(data), opts).ok()) std::exit(1);
    GuptRuntime runtime(&manager, GuptOptions{});

    int answered = 0;
    for (;;) {
      QuerySpec spec;
      spec.program = analytics::MeanQuery(0);
      spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
      spec.block_size = kBlockSize;
      if (epsilon) {
        spec.epsilon = *epsilon;
      } else {
        spec.accuracy_goal = AccuracyGoal{0.90, 0.10};
      }
      auto report = runtime.Execute("census", spec);
      if (!report.ok()) {
        if (report.status().code() == StatusCode::kBudgetExhausted) break;
        std::fprintf(stderr, "query failed: %s\n",
                     report.status().ToString().c_str());
        std::exit(1);
      }
      ++answered;
      if (answered > 100000) break;  // safety valve
    }
    return answered;
  };

  int n_eps1 = queries_until_exhaustion(1.0);
  int n_eps03 = queries_until_exhaustion(0.3);
  int n_variable = queries_until_exhaustion(std::nullopt);

  std::printf("total budget per run: %.1f, one scheme per fresh dataset\n\n",
              kTotalBudget);
  bench::PrintRow({"scheme", "queries_answered", "normalized_lifetime"});
  bench::PrintRow({"eps_1.0", std::to_string(n_eps1), "1.00"});
  bench::PrintRow({"variable_eps", std::to_string(n_variable),
                   bench::Fmt(static_cast<double>(n_variable) / n_eps1, 2)});
  bench::PrintRow({"eps_0.3", std::to_string(n_eps03),
                   bench::Fmt(static_cast<double>(n_eps03) / n_eps1, 2)});
  return 0;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
