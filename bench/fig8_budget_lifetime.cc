// Figure 8: lifetime of the total privacy budget under different per-query
// budget policies for the average-age query.
//
// Paper shape (normalized to constant eps=1): the accuracy-goal-driven
// variable epsilon answers ~2.3x more queries; a fixed eps=0.3 answers
// ~3.3x more but misses the accuracy goal (Fig. 7 shows its accuracy CDF
// undershoots). Lifetime here is measured by actually running queries
// against a real ledger until it is exhausted.

#include "analytics/queries.h"
#include "bench_util.h"
#include "dp/amplification.h"

namespace gupt {
namespace {

constexpr double kTotalBudget = 30.0;
constexpr std::size_t kBlockSize = 100;

// The amplification lifetime pair runs on its own smaller budget: the
// amplified ledger charges ~epsilon*rate per query, so a 30.0 budget
// would take thousands of full executions to exhaust. One unit of budget
// keeps the bench fast while the ratio is unchanged (both runs divide
// the same budget by their per-query charge).
constexpr double kAmplifiedBudget = 1.0;
// Bernoulli subsample rate of the amplified runs: each amplified query
// reads a 5% subsample (that mechanism change is what makes the
// epsilon' = ln(1 + rate*(e^eps - 1)) charge sound), so its noise is
// wider than the raw run's — the budget stretches ~12x in exchange for
// per-query accuracy, an honest tradeoff rather than a free discount.
constexpr double kAmplificationRate = 0.05;

int Run() {
  bench::PrintHeader(
      "Figure 8", "privacy budget lifetime under different query policies",
      "variable eps answers ~2-3x the queries of constant eps=1 while still "
      "meeting the accuracy goal; eps=0.3 answers more but misses the goal");

  double last_sampling_rate = 1.0;
  double last_epsilon_spent = 0.0;
  auto queries_until_exhaustion =
      [&](std::optional<double> epsilon, double budget,
          dp::AmplificationMode amplification) {
    synthetic::CensusAgeOptions gen;
    Dataset data = synthetic::CensusAges(gen).value();
    DatasetManager manager;
    DatasetOptions opts;
    opts.total_epsilon = budget;
    opts.aged_fraction = 0.10;
    opts.input_ranges = std::vector<Range>{{0.0, 150.0}};
    if (!manager.Register("census", std::move(data), opts).ok()) std::exit(1);
    GuptRuntime runtime(&manager, GuptOptions{});

    int answered = 0;
    for (;;) {
      QuerySpec spec;
      spec.program = analytics::MeanQuery(0);
      spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
      spec.block_size = kBlockSize;
      spec.amplification = amplification;
      if (amplification != dp::AmplificationMode::kOff) {
        spec.amplification_rate = kAmplificationRate;
      }
      if (epsilon) {
        spec.epsilon = *epsilon;
      } else {
        spec.accuracy_goal = AccuracyGoal{0.90, 0.10};
      }
      auto report = runtime.Execute("census", spec);
      if (!report.ok()) {
        if (report.status().code() == StatusCode::kBudgetExhausted) break;
        std::fprintf(stderr, "query failed: %s\n",
                     report.status().ToString().c_str());
        std::exit(1);
      }
      last_sampling_rate = report->sampling_rate;
      last_epsilon_spent = report->epsilon_spent;
      ++answered;
      if (answered > 100000) break;  // safety valve
    }
    return answered;
  };

  int n_eps1 = queries_until_exhaustion(1.0, kTotalBudget,
                                        dp::AmplificationMode::kOff);
  int n_eps03 = queries_until_exhaustion(0.3, kTotalBudget,
                                         dp::AmplificationMode::kOff);
  int n_variable = queries_until_exhaustion(std::nullopt, kTotalBudget,
                                            dp::AmplificationMode::kOff);

  std::printf("total budget per run: %.1f, one scheme per fresh dataset\n\n",
              kTotalBudget);
  bench::PrintRow({"scheme", "queries_answered", "normalized_lifetime"});
  bench::PrintRow({"eps_1.0", std::to_string(n_eps1), "1.00"});
  bench::PrintRow({"variable_eps", std::to_string(n_variable),
                   bench::Fmt(static_cast<double>(n_variable) / n_eps1, 2)});
  bench::PrintRow({"eps_0.3", std::to_string(n_eps03),
                   bench::Fmt(static_cast<double>(n_eps03) / n_eps1, 2)});

  // Amplification lifetime pair: eps=1 queries, one run on the full data
  // charged raw, one on Bernoulli(kAmplificationRate) subsamples charged
  // the amplified epsilon' = ln(1 + rate*(e^eps - 1)). The amplified run
  // trades per-query accuracy (fewer blocks -> wider noise) for lifetime.
  int n_raw = queries_until_exhaustion(1.0, kAmplifiedBudget,
                                       dp::AmplificationMode::kOff);
  int n_amplified = queries_until_exhaustion(1.0, kAmplifiedBudget,
                                             dp::AmplificationMode::kRawEpsilon);
  const double sampling_rate = last_sampling_rate;
  const double epsilon_amplified = last_epsilon_spent;
  const double gain =
      n_raw > 0 ? static_cast<double>(n_amplified) / n_raw : 0.0;

  std::printf("\namplification pair (budget %.1f, eps=1 per query, "
              "sampling rate %.6f)\n\n", kAmplifiedBudget, sampling_rate);
  bench::PrintRow({"charging", "queries_answered", "epsilon_per_query"});
  bench::PrintRow({"raw", std::to_string(n_raw), "1.000000"});
  bench::PrintRow({"amplified", std::to_string(n_amplified),
                   bench::Fmt(epsilon_amplified, 6)});
  std::printf("\namplified answers %.1fx the queries of raw charging\n", gain);

  std::FILE* out = std::fopen("BENCH_amplification.json", "w");
  if (!out) {
    std::fprintf(stderr, "cannot write BENCH_amplification.json\n");
    return 1;
  }
  // `amplified_over_raw_x` deliberately avoids the `_s`/`_ratio` suffixes:
  // bench_runner --compare treats those as higher-is-worse, and this gain
  // is higher-is-better.
  std::fprintf(out,
               "{\n"
               "  \"queries_raw\": %d,\n"
               "  \"queries_amplified\": %d,\n"
               "  \"amplified_over_raw_x\": %.6f,\n"
               "  \"sampling_rate\": %.9f,\n"
               "  \"epsilon_per_query_raw\": 1.0,\n"
               "  \"epsilon_per_query_amplified\": %.12f\n"
               "}\n",
               n_raw, n_amplified, gain, sampling_rate, epsilon_amplified);
  std::fclose(out);
  std::printf("# wrote BENCH_amplification.json\n");

  // The acceptance bar: amplified charging must stretch the same budget at
  // least 5x further than raw charging on this workload.
  return gain >= 5.0 ? 0 : 1;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
