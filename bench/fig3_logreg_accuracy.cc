// Figure 3: prediction accuracy of logistic regression on the life
// sciences dataset as a function of the privacy budget.
//
// Paper series: GUPT-tight accuracy over epsilon in [2, 10] landing at
// 75-80%, against a 94% non-private baseline; the paper attributes most of
// the gap to block-level training (a non-private run on one n^0.6-row
// block scores ~82%).

#include "analytics/logistic_regression.h"
#include "baselines/nonprivate.h"
#include "bench_util.h"
#include "common/rng.h"
#include "data/partitioner.h"

namespace gupt {
namespace {

int Run() {
  bench::PrintHeader(
      "Figure 3", "Logistic regression accuracy vs privacy budget (GUPT-tight)",
      "private accuracy well below the ~94% baseline but far above chance, "
      "roughly flat-to-rising in epsilon; block-level accuracy explains most "
      "of the gap");

  bench::LifeSciencesBench env = bench::MakeLifeSciencesBench();
  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 1e6;
  if (!manager.Register("ds1.10", env.data, opts).ok()) return 1;
  GuptRuntime runtime(&manager, GuptOptions{});

  // The paper's diagnostic: train non-privately on a single default-size
  // block (n^0.6 rows) to isolate the estimation-error component.
  std::size_t block_size =
      env.data.num_rows() / DefaultNumBlocks(env.data.num_rows());
  Rng rng(1);
  auto plan = PartitionDisjoint(env.data.num_rows(),
                                env.data.num_rows() / block_size, &rng)
                  .value();
  Dataset one_block = env.data.Subset(plan.blocks[0]).value();
  auto block_model =
      analytics::TrainLogisticRegression(one_block, env.logreg).value();
  double block_accuracy =
      analytics::ClassificationAccuracy(env.data, block_model, env.logreg)
          .value();

  std::printf("non-private baseline accuracy : %s\n",
              bench::Fmt(env.baseline_accuracy).c_str());
  std::printf("single-block (n^0.6) accuracy : %s\n\n",
              bench::Fmt(block_accuracy).c_str());

  bench::PrintRow({"epsilon", "gupt_tight_acc", "baseline_acc"});
  const int kTrials = 5;
  for (double epsilon : {2.0, 4.0, 6.0, 8.0, 10.0}) {
    double accuracy_sum = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      QuerySpec spec;
      spec.program = analytics::LogisticRegressionQuery(env.logreg);
      spec.epsilon = epsilon;
      spec.range = OutputRangeSpec::Tight(env.logreg_weight_ranges);
      auto report = runtime.Execute("ds1.10", spec);
      if (!report.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
      analytics::LogisticModel model;
      model.weights = report->output;
      accuracy_sum +=
          analytics::ClassificationAccuracy(env.data, model, env.logreg)
              .value();
    }
    bench::PrintRow({bench::Fmt(epsilon, 1), bench::Fmt(accuracy_sum / kTrials),
                     bench::Fmt(env.baseline_accuracy)});
  }
  return 0;
}

}  // namespace
}  // namespace gupt

int main() { return gupt::Run(); }
