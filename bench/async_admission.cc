// Micro-benchmark for the service's asynchronous admission path.
//
// Compares the synchronous front door (submit-and-wait through the
// admission queue) against batched SubmitQueryAsync, where several
// analysts' queries overlap on the admission workers. The interesting
// number is per-query latency as the in-flight batch grows: with the
// bounded queue and dedicated admission pool, concurrent submissions
// should approach worker-count speed-up until the runtime's block
// executors saturate.

#include <benchmark/benchmark.h>

#include <future>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "service/gupt_service.h"

namespace gupt {
namespace {

Dataset Ages(std::size_t rows) {
  Rng rng(21);
  std::vector<double> values;
  values.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(40.0, 10.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

std::unique_ptr<GuptService> MakeService(std::size_t admission_workers) {
  ServiceOptions options;
  options.admission_workers = admission_workers;
  // Effectively infinite budget so the benchmark never exhausts it.
  auto service = std::make_unique<GuptService>(
      options, ProgramRegistry::WithStandardPrograms());
  DatasetOptions ds;
  ds.total_epsilon = 1e12;
  if (!service->RegisterDataset("ages", Ages(20000), ds).ok()) return nullptr;
  return service;
}

QueryRequest MeanRequest() {
  QueryRequest request;
  request.analyst = "bench";
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = 0.1;
  request.range_mode = RangeMode::kTight;
  request.output_ranges = {Range{0.0, 150.0}};
  return request;
}

void BM_SubmitQuerySync(benchmark::State& state) {
  auto service = MakeService(/*admission_workers=*/1);
  if (!service) {
    state.SkipWithError("service setup failed");
    return;
  }
  QueryRequest request = MeanRequest();
  for (auto _ : state) {
    auto report = service->SubmitQuery(request);
    if (!report.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SubmitQuerySync);

// Arg = batch size: that many queries in flight at once, 4 admission
// workers. Reported time is per batch; divide by the arg for per-query
// latency under overlap.
void BM_SubmitQueryAsyncBatch(benchmark::State& state) {
  auto service = MakeService(/*admission_workers=*/4);
  if (!service) {
    state.SkipWithError("service setup failed");
    return;
  }
  QueryRequest request = MeanRequest();
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<std::future<Result<QueryReport>>> futures;
    futures.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      futures.push_back(service->SubmitQueryAsync(request));
    }
    for (auto& future : futures) {
      auto report = future.get();
      if (!report.ok()) state.SkipWithError("query failed");
      benchmark::DoNotOptimize(report);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_SubmitQueryAsyncBatch)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace gupt

BENCHMARK_MAIN();
