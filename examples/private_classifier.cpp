// Private logistic regression: train a carcinogen classifier without
// seeing individual compounds (the paper's Fig. 3 workload).
//
// The training code is an off-the-shelf L2-regularised logistic regression
// with no privacy logic. GUPT trains it independently on every block and
// releases the noisy average model; the analyst then evaluates that model
// wherever they like — the model itself is differentially private, so
// anything derived from it is too (post-processing).
//
// Build & run:  ./build/examples/private_classifier

#include <cstdio>

#include "analytics/logistic_regression.h"
#include "core/gupt.h"
#include "data/synthetic.h"

int main() {
  using namespace gupt;

  synthetic::LifeSciencesOptions gen;
  gen.num_rows = 26733;
  Dataset compounds = synthetic::LifeSciences(gen).value();

  analytics::LogisticRegressionOptions lr;
  lr.feature_dims = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  lr.label_dim = 10;  // "reactive" column
  lr.max_iterations = 60;

  auto baseline_model =
      analytics::TrainLogisticRegression(compounds, lr).value();
  double baseline_accuracy =
      analytics::ClassificationAccuracy(compounds, baseline_model, lr).value();

  DatasetManager manager;
  DatasetOptions owner;
  owner.total_epsilon = 40.0;
  if (!manager.Register("compounds", compounds, owner).ok()) return 1;
  GuptOptions options;
  options.num_workers = 4;
  GuptRuntime runtime(&manager, options);

  std::printf("non-private baseline accuracy: %.1f%%\n\n",
              baseline_accuracy * 100);
  std::printf("%-10s%-16s%-14s\n", "epsilon", "private_acc", "budget_left");

  for (double epsilon : {2.0, 4.0, 8.0}) {
    QuerySpec spec;
    spec.program = analytics::LogisticRegressionQuery(lr);
    spec.epsilon = epsilon;
    // Tight mode: regularised weights on standardised PCs stay small.
    spec.range = OutputRangeSpec::Tight(
        std::vector<Range>(lr.feature_dims.size() + 1, Range{-1.5, 1.5}));
    auto report = runtime.Execute("compounds", spec);
    if (!report.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    analytics::LogisticModel model;
    model.weights = report->output;
    double accuracy =
        analytics::ClassificationAccuracy(compounds, model, lr).value();
    std::printf("%-10.1f%-16.1f%-14.2f\n", epsilon, accuracy * 100,
                manager.Get("compounds").value()->accountant()
                    .remaining_epsilon());
  }
  return 0;
}
