// Private k-means on a chemical-compound table (the paper's §7.1 workload).
//
// An analyst clusters compounds by their leading principal components.
// The clustering package knows nothing about privacy; GUPT runs it on
// blocks and releases noisy averaged centres. The example compares the
// three output-range modes — tight, loose, and helper — and scores each
// against the non-private baseline by intra-cluster variance.
//
// Build & run:  ./build/examples/private_clustering

#include <cstdio>

#include "analytics/kmeans.h"
#include "core/gupt.h"
#include "data/synthetic.h"

int main() {
  using namespace gupt;

  synthetic::LifeSciencesOptions gen;
  gen.num_rows = 26733;  // ds1.10's size
  Dataset compounds = synthetic::LifeSciences(gen).value();

  analytics::KMeansOptions kmeans;
  kmeans.k = 4;
  kmeans.feature_dims = {0, 1};  // two leading PCs
  kmeans.max_iterations = 20;

  // Non-private baseline for reference.
  auto baseline = analytics::RunKMeans(compounds, kmeans).value();
  double baseline_icv =
      analytics::IntraClusterVariance(compounds, baseline.centers,
                                      kmeans.feature_dims)
          .value();

  // Owner registration with public input ranges (needed by helper mode).
  auto empirical = compounds.EmpiricalRanges();
  std::vector<Range> public_inputs;
  for (const Range& r : empirical) {
    public_inputs.push_back(Range{r.lo * 2.0, r.hi * 2.0});
  }
  DatasetManager manager;
  DatasetOptions owner;
  owner.total_epsilon = 50.0;
  owner.input_ranges = public_inputs;
  if (!manager.Register("compounds", compounds, owner).ok()) return 1;
  GuptRuntime runtime(&manager, GuptOptions{});

  // Range declarations per centre coordinate (k * |features| outputs).
  std::vector<Range> tight, loose;
  for (std::size_t c = 0; c < kmeans.k; ++c) {
    for (std::size_t d : kmeans.feature_dims) {
      tight.push_back(empirical[d]);
      loose.push_back(Range{empirical[d].lo * 2.0, empirical[d].hi * 2.0});
    }
  }
  // Helper: a centre coordinate for feature d lies in feature d's range.
  std::size_t k = kmeans.k;
  std::vector<std::size_t> dims = kmeans.feature_dims;
  RangeTranslator translator =
      [k, dims](const std::vector<Range>& input) -> Result<std::vector<Range>> {
    std::vector<Range> out;
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t d : dims) out.push_back(input[d]);
    }
    return out;
  };

  std::printf("baseline (non-private) ICV: %.3f\n\n", baseline_icv);
  std::printf("%-14s%-10s%-12s%-12s\n", "mode", "epsilon", "icv",
              "vs_baseline");

  struct Mode {
    const char* name;
    OutputRangeSpec range;
  };
  Mode modes[] = {
      {"GUPT-tight", OutputRangeSpec::Tight(tight)},
      {"GUPT-loose", OutputRangeSpec::Loose(loose)},
      {"GUPT-helper", OutputRangeSpec::Helper(translator)},
  };
  for (const Mode& mode : modes) {
    QuerySpec spec;
    spec.program = analytics::KMeansQuery(kmeans);
    spec.epsilon = 2.0;
    spec.accounting = BudgetAccounting::kPerDimension;  // paper's Fig. 4 mode
    spec.range = mode.range;
    auto report = runtime.Execute("compounds", spec);
    if (!report.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", mode.name,
                   report.status().ToString().c_str());
      return 1;
    }
    auto centers = analytics::UnflattenCenters(report->output, kmeans.k,
                                               kmeans.feature_dims.size())
                       .value();
    double icv = analytics::IntraClusterVariance(compounds, centers,
                                                 kmeans.feature_dims)
                     .value();
    std::printf("%-14s%-10.1f%-12.3f%-12.2fx\n", mode.name, 2.0, icv,
                icv / baseline_icv);
  }
  std::printf("\nprivate centres never expose any single compound: each is\n"
              "an average of ~%zu per-block clusterings plus Laplace noise.\n",
              DefaultNumBlocks(compounds.num_rows()));
  return 0;
}
