// Writing a custom AnalysisProgram: a robust trend estimator.
//
// Demonstrates the full program contract for computations that do not fit
// in a lambda: a class with internal state (reset per chamber!), use of
// the chamber scratch space, and canonical output ordering. The program
// estimates a per-decade age trend by fitting a Theil-Sen-style slope on
// (index, value) pairs inside each block — a statistic robust to
// outliers, released privately through SAF.
//
// Build & run:  ./build/examples/custom_program

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "core/gupt.h"
#include "exec/chamber.h"

namespace {

using namespace gupt;

// A Theil-Sen slope estimator over (position, value) pairs: the median of
// pairwise slopes. Robust, approximately normal, and entirely privacy
// oblivious — a perfectly ordinary piece of statistics code.
class TheilSenTrend final : public AnalysisProgram {
 public:
  Result<Row> Run(const Dataset& block) override {
    return RunWithServices(block, nullptr);
  }

  Result<Row> RunWithServices(const Dataset& block,
                              ChamberServices* services) override {
    if (block.num_dims() < 2) {
      return Status::InvalidArgument("need (time, value) columns");
    }
    // Instance state is fine: every chamber constructs a fresh instance,
    // so nothing carries over between blocks.
    slopes_.clear();
    const double* times = block.col(0);
    const double* values = block.col(1);
    const std::size_t n = block.num_rows();
    // Cap the pair count for large blocks (Theil-Sen is O(n^2)).
    std::size_t step = n > 200 ? n / 200 : 1;
    for (std::size_t i = 0; i < n; i += step) {
      for (std::size_t j = i + step; j < n; j += step) {
        double dt = times[j] - times[i];
        if (dt == 0.0) continue;
        slopes_.push_back((values[j] - values[i]) / dt);
      }
    }
    if (slopes_.empty()) {
      return Status::NumericalError("no usable pairs in block");
    }
    std::nth_element(slopes_.begin(),
                     slopes_.begin() + static_cast<std::ptrdiff_t>(
                                           slopes_.size() / 2),
                     slopes_.end());
    double slope = slopes_[slopes_.size() / 2];
    // Scratch space is private to this run and wiped afterwards; use it
    // like the temp dir the real sandbox mounts for you.
    if (services != nullptr) {
      (void)services->WriteScratch("pairs", std::to_string(slopes_.size()));
    }
    return Row{slope};
  }

  std::size_t output_dims() const override { return 1; }
  std::string name() const override { return "theil_sen_trend"; }

 private:
  std::vector<double> slopes_;  // scratch; reset every Run
};

}  // namespace

int main() {
  using namespace gupt;

  // Synthetic panel: value drifts upward by 0.8/year with heavy outliers.
  Rng rng(2012);
  std::vector<Row> rows;
  for (int year = 0; year < 40; ++year) {
    for (int i = 0; i < 500; ++i) {
      double value = 30.0 + 0.8 * year + rng.Gaussian(0.0, 3.0);
      if (rng.Bernoulli(0.02)) value += 200.0;  // corrupted records
      rows.push_back({static_cast<double>(year), value});
    }
  }
  Dataset panel = Dataset::Create(std::move(rows), {"year", "value"}).value();

  DatasetManager manager;
  DatasetOptions owner;
  owner.total_epsilon = 10.0;
  if (!manager.Register("panel", std::move(panel), owner).ok()) return 1;
  GuptRuntime runtime(&manager, GuptOptions{});

  QuerySpec query;
  query.program = [] { return std::make_unique<TheilSenTrend>(); };
  query.epsilon = 1.0;
  // The analyst knows a credible public bound on the yearly drift.
  query.range = OutputRangeSpec::Tight({Range{-5.0, 5.0}});

  auto report = runtime.Execute("panel", query);
  if (!report.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("private trend estimate : %+.4f per year (truth: +0.8)\n",
              report->output[0]);
  std::printf("epsilon spent          : %.2f\n", report->epsilon_spent);
  std::printf("blocks                 : %zu x %zu rows\n", report->num_blocks,
              report->block_size);
  return 0;
}
