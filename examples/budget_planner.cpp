// Budget planning with the aging-of-sensitivity model (paper §3.3, §5).
//
// Three things analysts normally get wrong, automated:
//   1. Accuracy goals instead of epsilons — "within 10% of the truth, 90%
//      of the time" is converted into the smallest epsilon that meets it,
//      using the aged (no-longer-private) slice as a training signal.
//   2. Optimal block size — the planner balances estimation error against
//      noise per query (a mean wants tiny blocks; a median does not).
//   3. Budget distribution across queries — a mean and a variance query
//      share one budget in proportion to their sensitivities (Example 4),
//      so both come back with the same noise level.
//
// Build & run:  ./build/examples/budget_planner

#include <cstdio>

#include "analytics/queries.h"
#include "core/gupt.h"
#include "data/synthetic.h"

int main() {
  using namespace gupt;

  synthetic::CensusAgeOptions gen;
  Dataset ages = synthetic::CensusAges(gen).value();

  DatasetManager manager;
  DatasetOptions owner;
  owner.total_epsilon = 20.0;
  owner.aged_fraction = 0.10;  // the oldest 10% has aged out of privacy
  owner.input_ranges = std::vector<Range>{{0.0, 150.0}};
  if (!manager.Register("census", std::move(ages), owner).ok()) return 1;
  GuptRuntime runtime(&manager, GuptOptions{});

  // --- 1 + 2: accuracy goal, planner-chosen block size -------------------
  QuerySpec goal_query;
  goal_query.program = analytics::MeanQuery(0);
  goal_query.accuracy_goal = AccuracyGoal{/*rho=*/0.90, /*delta=*/0.10};
  goal_query.optimize_block_size = true;
  goal_query.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  auto goal_report = runtime.Execute("census", goal_query);
  if (!goal_report.ok()) {
    std::fprintf(stderr, "goal query failed: %s\n",
                 goal_report.status().ToString().c_str());
    return 1;
  }
  std::printf("accuracy-goal query (90%% accuracy, 90%% of the time):\n");
  std::printf("  private mean  : %.3f\n", goal_report->output[0]);
  std::printf("  solved epsilon: %.4f  (no epsilon was specified!)\n",
              goal_report->epsilon_spent);
  std::printf("  planner beta  : %zu rows/block (%zu blocks)\n\n",
              goal_report->block_size, goal_report->num_blocks);

  // --- 3: one budget shared across a mean and a variance -----------------
  QuerySpec mean_query;
  mean_query.program = analytics::MeanQuery(0);
  mean_query.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  mean_query.block_size = 200;

  QuerySpec variance_query;
  variance_query.program = analytics::VarianceQuery(0);
  // Variance of ages in [0, 150] lies in [0, 150^2/4].
  variance_query.range = OutputRangeSpec::Tight({Range{0.0, 5625.0}});
  variance_query.block_size = 200;

  auto reports = runtime.ExecuteWithSharedBudget(
      "census", {mean_query, variance_query}, /*total_epsilon=*/2.0);
  if (!reports.ok()) {
    std::fprintf(stderr, "shared budget failed: %s\n",
                 reports.status().ToString().c_str());
    return 1;
  }
  std::printf("shared budget of 2.0 across {mean, variance}:\n");
  std::printf("  mean     = %9.3f   eps = %.4f\n", (*reports)[0].output[0],
              (*reports)[0].epsilon_spent);
  std::printf("  variance = %9.3f   eps = %.4f\n", (*reports)[1].output[0],
              (*reports)[1].epsilon_spent);
  std::printf("  (the variance query gets ~%.0fx the budget — its output\n"
              "   range is that much wider, Example 4 in the paper)\n",
              (*reports)[1].epsilon_spent / (*reports)[0].epsilon_spent);
  std::printf("\nledger after all queries:\n");
  for (const auto& charge :
       manager.Get("census").value()->accountant().charges()) {
    std::printf("  %-40s %.4f\n", charge.label.c_str(), charge.epsilon);
  }
  return 0;
}
