// Quickstart: the minimal GUPT workflow, end to end.
//
//   1. The data owner writes a table to CSV (here: synthetic ages),
//      registers it with the dataset manager under a total privacy budget,
//      and declares public input ranges.
//   2. The analyst submits an ordinary, privacy-oblivious program (the
//      column mean) with a tight output range and a per-query budget.
//   3. GUPT partitions the data, fans the program out across isolated
//      execution chambers, and releases a differentially private answer.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "analytics/queries.h"
#include "common/csv.h"
#include "core/gupt.h"
#include "data/synthetic.h"

int main() {
  using namespace gupt;

  // --- Data owner ---------------------------------------------------------
  // Export a table to CSV and load it back (the usual ingestion path).
  synthetic::CensusAgeOptions gen;
  gen.num_rows = 10000;
  Dataset ages = synthetic::CensusAges(gen).value();
  const std::string path = "/tmp/gupt_quickstart_ages.csv";
  csv::Table table;
  table.column_names = {"age"};
  table.rows = ages.MaterializeRows();
  if (!csv::WriteFile(path, table).ok()) return 1;

  Result<Dataset> loaded = Dataset::FromCsvFile(path, /*has_header=*/true);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }

  DatasetManager manager;
  DatasetOptions owner_options;
  owner_options.total_epsilon = 5.0;  // lifetime budget for this dataset
  owner_options.input_ranges =
      std::vector<Range>{{0.0, 150.0}};  // public knowledge, not data-derived
  if (!manager.Register("census-ages", std::move(loaded).value(),
                        owner_options)
           .ok()) {
    return 1;
  }

  // --- Analyst ------------------------------------------------------------
  GuptOptions runtime_options;
  runtime_options.num_workers = 4;  // the "cluster"
  GuptRuntime runtime(&manager, runtime_options);

  QuerySpec query;
  query.program = analytics::MeanQuery(0);  // an unmodified program
  query.epsilon = 1.0;                      // this query's share of the budget
  query.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});

  Result<QueryReport> report = runtime.Execute("census-ages", query);
  if (!report.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  double truth = stats::Mean(ages.Column(0).value());
  std::printf("private mean age : %.3f\n", report->output[0]);
  std::printf("true mean age    : %.3f (never shown to the analyst)\n", truth);
  std::printf("epsilon spent    : %.2f\n", report->epsilon_spent);
  std::printf("blocks           : %zu x %zu rows\n", report->num_blocks,
              report->block_size);
  std::printf("budget remaining : %.2f\n",
              manager.Get("census-ages").value()->accountant()
                  .remaining_epsilon());
  return 0;
}
