// Hosted GUPT service: the full Figure-2 deployment in one process.
//
// A service provider stands up GuptService with a vetted program registry
// and a durable ledger; a data owner registers a dataset with a lifetime
// budget; several analysts then submit textual query requests. The demo
// prints the answers, the audit log, and what happens when the budget runs
// dry — including a simulated provider restart that must not forget the
// spending.
//
// Build & run:  ./build/examples/hosted_service

#include <cstdio>

#include "data/synthetic.h"
#include "service/gupt_service.h"

int main() {
  using namespace gupt;

  const std::string ledger = "/tmp/gupt_hosted_service.ledger";
  std::remove(ledger.c_str());

  synthetic::CensusAgeOptions gen;
  Dataset census = synthetic::CensusAges(gen).value();

  auto make_service = [&]() {
    ServiceOptions options;
    options.ledger_path = ledger;
    auto service = std::make_unique<GuptService>(
        options, ProgramRegistry::WithStandardPrograms());
    DatasetOptions owner;
    owner.total_epsilon = 3.0;
    owner.input_ranges = std::vector<Range>{{0.0, 150.0}};
    if (!service->RegisterDataset("census", census, owner).ok()) {
      std::exit(1);
    }
    if (!service->RestoreLedger().ok()) std::exit(1);
    return service;
  };

  auto submit = [](GuptService& service, const std::string& analyst,
                   const std::string& program,
                   std::map<std::string, std::string> params, double epsilon,
                   Range range) {
    QueryRequest request;
    request.analyst = analyst;
    request.dataset = "census";
    request.program.name = program;
    request.program.params = std::move(params);
    request.epsilon = epsilon;
    request.range_mode = RangeMode::kTight;
    request.output_ranges = {range};
    auto report = service.SubmitQuery(request);
    if (report.ok()) {
      std::printf("  %-8s %-18s eps=%.2f -> %10.4f   (%.2f left)\n",
                  analyst.c_str(), program.c_str(), epsilon,
                  report->output[0],
                  service.RemainingBudget("census").value_or(0.0));
    } else {
      std::printf("  %-8s %-18s eps=%.2f -> REFUSED: %s\n", analyst.c_str(),
                  program.c_str(), epsilon,
                  report.status().ToString().c_str());
    }
  };

  std::printf("--- first service process ---\n");
  {
    auto service = make_service();
    submit(*service, "alice", "mean", {{"dim", "0"}}, 1.0, Range{0.0, 150.0});
    submit(*service, "bob", "median", {{"dim", "0"}}, 1.0, Range{0.0, 150.0});
  }

  std::printf("--- provider restart (ledger restored from disk) ---\n");
  {
    auto service = make_service();
    // 2.0 of 3.0 is already spent; this 1.5 query must be refused...
    submit(*service, "carol", "iqr", {{"dim", "0"}}, 1.5, Range{0.0, 150.0});
    // ...while a 1.0 query still fits.
    submit(*service, "carol", "winsorized_mean", {{"dim", "0"}}, 1.0,
           Range{0.0, 150.0});
    // Budget is now exactly zero: everything else bounces.
    submit(*service, "mallory", "mean", {{"dim", "0"}}, 0.1,
           Range{0.0, 150.0});

    std::printf("\naudit log of the second process:\n");
    for (const AuditRecord& record : service->audit_log()) {
      std::printf("  #%zu %-8s %-18s charged=%.2f %s\n", record.id,
                  record.analyst.c_str(), record.program.c_str(),
                  record.epsilon_charged,
                  record.accepted ? "accepted" : record.status.c_str());
    }
  }
  std::remove(ledger.c_str());
  return 0;
}
