// Empirical differential-privacy check of the FULL runtime.
//
// The strongest evidence a DP implementation can offer short of a formal
// proof: run the complete pipeline (partition -> chambers -> clamp ->
// aggregate -> noise) many times on two neighbouring datasets and verify
// that the output histograms differ by at most e^epsilon per bin. Also
// checks robustness properties: concurrency safety and behaviour under a
// flaky program.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "analytics/queries.h"
#include "core/gupt.h"
#include "common/rng.h"

namespace gupt {
namespace {

TEST(PrivacyPropertyTest, EndToEndHistogramRatioBounded) {
  // Neighbouring datasets: one record moved from 0 to 100 (the full
  // declared range, the worst case).
  const std::size_t n = 400;
  std::vector<double> base(n, 50.0);
  std::vector<double> neighbour = base;
  neighbour[0] = 100.0;

  const double epsilon = 1.0;
  const int runs = 60000;
  const int bins = 12;
  const double lo = 30.0, hi = 70.0;

  auto histogram_for = [&](const std::vector<double>& values,
                           std::uint64_t seed) {
    DatasetManager manager;
    DatasetOptions opts;
    opts.total_epsilon = 1e9;
    EXPECT_TRUE(
        manager.Register("d", Dataset::FromColumn(values).value(), opts).ok());
    GuptOptions options;
    options.seed = seed;
    GuptRuntime runtime(&manager, options);
    std::vector<int> hist(bins, 0);
    for (int r = 0; r < runs; ++r) {
      QuerySpec spec;
      spec.program = analytics::MeanQuery(0);
      spec.epsilon = epsilon;
      spec.range = OutputRangeSpec::Tight({Range{0.0, 100.0}});
      spec.block_size = 40;  // 10 blocks
      auto report = runtime.Execute("d", spec);
      EXPECT_TRUE(report.ok());
      double out = report->output[0];
      int bin = static_cast<int>((out - lo) / (hi - lo) * bins);
      hist[std::min(std::max(bin, 0), bins - 1)] += 1;
    }
    return hist;
  };

  std::vector<int> hist_a = histogram_for(base, 111);
  std::vector<int> hist_b = histogram_for(neighbour, 222);
  for (int b = 0; b < bins; ++b) {
    if (hist_a[b] < 800 || hist_b[b] < 800) continue;  // skip noisy tails
    double ratio = static_cast<double>(hist_a[b]) / hist_b[b];
    EXPECT_LT(ratio, std::exp(epsilon) * 1.25) << "bin " << b;
    EXPECT_GT(ratio, std::exp(-epsilon) / 1.25) << "bin " << b;
  }
}

TEST(PrivacyPropertyTest, ConcurrentQueriesAreSafeAndAccounted) {
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.Gaussian(40.0, 10.0));
  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 100.0;
  ASSERT_TRUE(
      manager.Register("d", Dataset::FromColumn(values).value(), opts).ok());
  GuptOptions options;
  options.num_workers = 2;
  GuptRuntime runtime(&manager, options);

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 20;
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&runtime, &successes] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        QuerySpec spec;
        spec.program = analytics::MeanQuery(0);
        spec.epsilon = 0.5;
        spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
        if (runtime.Execute("d", spec).ok()) successes.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  // 160 attempted at 0.5 each against a budget of 100: exactly 200 would
  // fit, so all 160 succeed — and the ledger must agree exactly.
  EXPECT_EQ(successes.load(), kThreads * kQueriesPerThread);
  EXPECT_NEAR(manager.Get("d").value()->accountant().spent_epsilon(),
              0.5 * kThreads * kQueriesPerThread, 1e-9);
}

TEST(PrivacyPropertyTest, ConcurrentQueriesNeverOverdrawTightBudget) {
  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 3.0;  // only 6 of the 40 attempts can fit
  ASSERT_TRUE(manager
                  .Register("d", Dataset::FromColumn(
                                     std::vector<double>(500, 1.0))
                                     .value(),
                            opts)
                  .ok());
  GuptRuntime runtime(&manager, GuptOptions{});
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&runtime, &successes] {
      for (int q = 0; q < 10; ++q) {
        QuerySpec spec;
        spec.program = analytics::MeanQuery(0);
        spec.epsilon = 0.5;
        spec.range = OutputRangeSpec::Tight({Range{0.0, 10.0}});
        if (runtime.Execute("d", spec).ok()) successes.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(successes.load(), 6);
  EXPECT_LE(manager.Get("d").value()->accountant().spent_epsilon(),
            3.0 + 1e-9);
}

TEST(PrivacyPropertyTest, FlakyProgramStillYieldsBoundedRelease) {
  // A program that fails on ~half its blocks: the release mixes real block
  // outputs with fallbacks but must stay inside the declared range
  // envelope (plus noise) and charge exactly once.
  Rng rng(6);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) values.push_back(rng.UniformDouble(0.0, 1.0));
  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 10.0;
  ASSERT_TRUE(
      manager.Register("d", Dataset::FromColumn(values).value(), opts).ok());
  GuptRuntime runtime(&manager, GuptOptions{});

  QuerySpec spec;
  spec.program = MakeProgramFactory(
      "flaky", 1, [](const Dataset& block) -> Result<Row> {
        GUPT_ASSIGN_OR_RETURN(auto col, block.Column(0));
        if (col[0] < 0.5) return Status::NumericalError("coin flip");
        return Row{stats::Mean(col)};
      });
  spec.epsilon = 5.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 1.0}});
  auto report = runtime.Execute("d", spec);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->fallback_blocks, 0u);
  EXPECT_LT(report->fallback_blocks, report->num_blocks);
  EXPECT_GT(report->output[0], 0.3);
  EXPECT_LT(report->output[0], 0.7);
  EXPECT_DOUBLE_EQ(manager.Get("d").value()->accountant().spent_epsilon(),
                   5.0);
}

}  // namespace
}  // namespace gupt
