// End-to-end integration tests: real analytics programs executed privately
// through the full GUPT runtime on synthetic replicas of the paper's
// datasets, checked against their non-private baselines.

#include <gtest/gtest.h>

#include <cmath>

#include "analytics/kmeans.h"
#include "analytics/logistic_regression.h"
#include "analytics/queries.h"
#include "baselines/nonprivate.h"
#include "core/gupt.h"
#include "data/synthetic.h"

namespace gupt {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  DatasetManager manager_;
};

TEST_F(EndToEndTest, PrivateKMeansApproachesNonPrivateIcv) {
  synthetic::LifeSciencesOptions gen;
  gen.num_rows = 8000;
  Dataset data = synthetic::LifeSciences(gen).value();

  // Cluster on the two leading principal components (where the generator
  // puts the family structure): p = k * 2 output dimensions.
  std::vector<std::size_t> feature_dims = {0, 1};

  analytics::KMeansOptions kmeans;
  kmeans.k = gen.num_clusters;
  kmeans.feature_dims = feature_dims;
  kmeans.max_iterations = 20;

  // Non-private baseline ICV.
  auto baseline = analytics::RunKMeans(data, kmeans).value();
  double baseline_icv =
      analytics::IntraClusterVariance(data, baseline.centers, feature_dims)
          .value();

  // Tight ranges: empirical min/max per feature, as the paper's GUPT-tight.
  std::vector<Range> tight;
  auto empirical = data.EmpiricalRanges();
  for (std::size_t c = 0; c < kmeans.k; ++c) {
    for (std::size_t d : feature_dims) {
      tight.push_back(Range{empirical[d].lo, empirical[d].hi});
    }
  }

  DatasetOptions opts;
  opts.total_epsilon = 100.0;
  ASSERT_TRUE(manager_.Register("ls", std::move(data), opts).ok());
  GuptRuntime runtime(&manager_, GuptOptions{});

  QuerySpec spec;
  spec.program = analytics::KMeansQuery(kmeans);
  spec.epsilon = 16.0;
  spec.range = OutputRangeSpec::Tight(tight);
  auto report = runtime.Execute("ls", spec);
  ASSERT_TRUE(report.ok());

  auto private_centers =
      analytics::UnflattenCenters(report->output, kmeans.k,
                                  feature_dims.size())
          .value();
  const Dataset& registered = manager_.Get("ls").value()->data();
  double private_icv = analytics::IntraClusterVariance(
                           registered, private_centers, feature_dims)
                           .value();
  // Paper Fig. 4: GUPT-tight at moderate eps is close to the baseline.
  // Allow a 2x band (the paper's normalized gap is ~10-30%).
  EXPECT_LT(private_icv, baseline_icv * 2.0);
}

TEST_F(EndToEndTest, PrivateLogisticRegressionLandsInPaperBand) {
  synthetic::LifeSciencesOptions gen;
  gen.num_rows = 26733;
  Dataset data = synthetic::LifeSciences(gen).value();

  analytics::LogisticRegressionOptions lr;
  lr.feature_dims.resize(gen.num_features);
  for (std::size_t d = 0; d < gen.num_features; ++d) lr.feature_dims[d] = d;
  lr.label_dim = gen.num_features;
  lr.max_iterations = 60;

  auto baseline_model =
      analytics::TrainLogisticRegression(data, lr).value();
  double baseline_accuracy =
      analytics::ClassificationAccuracy(data, baseline_model, lr).value();
  EXPECT_GT(baseline_accuracy, 0.90);  // paper: 94%

  // GUPT-tight: the analyst knows regularised LR weights on standardised
  // features live well inside [-1.5, 1.5].
  std::vector<Range> weight_ranges(gen.num_features + 1, Range{-1.5, 1.5});
  DatasetOptions opts;
  opts.total_epsilon = 100.0;
  ASSERT_TRUE(manager_.Register("ls", data, opts).ok());
  GuptRuntime runtime(&manager_, GuptOptions{});

  QuerySpec spec;
  spec.program = analytics::LogisticRegressionQuery(lr);
  spec.epsilon = 8.0;
  spec.range = OutputRangeSpec::Tight(weight_ranges);
  auto report = runtime.Execute("ls", spec);
  ASSERT_TRUE(report.ok());

  analytics::LogisticModel private_model;
  private_model.weights = report->output;
  double private_accuracy =
      analytics::ClassificationAccuracy(data, private_model, lr).value();
  // Paper Fig. 3: GUPT lands at 75-80% vs the 94% baseline. Accept a broad
  // band: meaningfully better than chance, below the baseline.
  EXPECT_GT(private_accuracy, 0.70);
  EXPECT_LE(private_accuracy, baseline_accuracy + 0.02);
}

TEST_F(EndToEndTest, PrivateMeanConvergesWithDatasetSize) {
  // Theorem 2 flavour: the private output approaches the non-private one
  // as n grows, at fixed epsilon.
  auto mean_error_at = [&](std::size_t n, const std::string& name) {
    synthetic::CensusAgeOptions gen;
    gen.num_rows = n;
    Dataset data = synthetic::CensusAges(gen).value();
    double truth = stats::Mean(data.Column(0).value());
    DatasetOptions opts;
    opts.total_epsilon = 1000.0;
    EXPECT_TRUE(manager_.Register(name, std::move(data), opts).ok());
    GuptRuntime runtime(&manager_, GuptOptions{});
    double err = 0.0;
    const int trials = 30;
    for (int t = 0; t < trials; ++t) {
      QuerySpec spec;
      spec.program = analytics::MeanQuery(0);
      spec.epsilon = 0.5;
      spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
      auto report = runtime.Execute(name, spec);
      EXPECT_TRUE(report.ok());
      err += std::fabs(report->output[0] - truth);
    }
    return err / trials;
  };
  double err_small = mean_error_at(500, "small");
  double err_large = mean_error_at(32561, "large");
  EXPECT_LT(err_large, err_small / 2.0);
}

TEST_F(EndToEndTest, LooseVersusTightMatchesFig4Ordering) {
  // At small epsilon, GUPT-tight should beat GUPT-loose (Fig. 4): the
  // loose mode spends half its budget learning the output range.
  synthetic::CensusAgeOptions gen;
  gen.num_rows = 10000;
  Dataset data = synthetic::CensusAges(gen).value();
  double truth = stats::Mean(data.Column(0).value());
  DatasetOptions opts;
  opts.total_epsilon = 10000.0;
  ASSERT_TRUE(manager_.Register("ages", std::move(data), opts).ok());
  GuptRuntime runtime(&manager_, GuptOptions{});

  auto mean_abs_error = [&](OutputRangeSpec range, std::uint64_t) {
    double err = 0.0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
      QuerySpec spec;
      spec.program = analytics::MeanQuery(0);
      spec.epsilon = 0.4;
      spec.range = range;
      auto report = runtime.Execute("ages", spec);
      EXPECT_TRUE(report.ok());
      err += std::fabs(report->output[0] - truth);
    }
    return err / trials;
  };
  double tight_err =
      mean_abs_error(OutputRangeSpec::Tight({Range{17.0, 90.0}}), 1);
  double loose_err =
      mean_abs_error(OutputRangeSpec::Loose({Range{0.0, 180.0}}), 2);
  EXPECT_LT(tight_err, loose_err);
}

TEST_F(EndToEndTest, HistogramQueryThroughGupt) {
  synthetic::CensusAgeOptions gen;
  gen.num_rows = 20000;
  Dataset data = synthetic::CensusAges(gen).value();
  DatasetOptions opts;
  opts.total_epsilon = 100.0;
  ASSERT_TRUE(manager_.Register("ages", std::move(data), opts).ok());
  GuptRuntime runtime(&manager_, GuptOptions{});

  const std::size_t bins = 5;
  QuerySpec spec;
  spec.program = analytics::HistogramQuery(0, bins, 0.0, 100.0);
  spec.epsilon = 10.0;
  spec.range = OutputRangeSpec::Tight(
      std::vector<Range>(bins, Range{0.0, 1.0}));
  auto report = runtime.Execute("ages", spec);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->output.size(), bins);
  double total = 0.0;
  for (double f : report->output) total += f;
  EXPECT_NEAR(total, 1.0, 0.1);  // fractions roughly sum to one
  // Ages cluster in [20, 60]: the middle bins dominate the first bin.
  EXPECT_GT(report->output[1] + report->output[2], report->output[0]);
}

}  // namespace
}  // namespace gupt
