// End-to-end runs of the extended analytics programs (linear regression,
// PCA, robust means) through the full GUPT runtime.

#include <gtest/gtest.h>

#include <cmath>

#include "analytics/linear_regression.h"
#include "analytics/pca.h"
#include "analytics/queries.h"
#include "common/rng.h"
#include "core/canonical.h"
#include "core/gupt.h"

namespace gupt {
namespace {

class NewProgramsTest : public ::testing::Test {
 protected:
  DatasetManager manager_;
};

TEST_F(NewProgramsTest, PrivateLinearRegressionRecoversCoefficients) {
  // y = 3 x0 - 2 x1 + 5 + N(0, 0.5).
  Rng rng(1);
  std::vector<Row> rows;
  for (int i = 0; i < 20000; ++i) {
    double x0 = rng.UniformDouble(-2.0, 2.0);
    double x1 = rng.UniformDouble(-2.0, 2.0);
    rows.push_back({x0, x1, 3.0 * x0 - 2.0 * x1 + 5.0 + rng.Gaussian(0, 0.5)});
  }
  DatasetOptions opts;
  opts.total_epsilon = 100.0;
  ASSERT_TRUE(
      manager_.Register("lin", Dataset::Create(std::move(rows)).value(), opts)
          .ok());
  GuptRuntime runtime(&manager_, GuptOptions{});

  analytics::LinearRegressionOptions lin;
  lin.feature_dims = {0, 1};
  lin.target_dim = 2;
  QuerySpec spec;
  spec.program = analytics::LinearRegressionQuery(lin);
  spec.epsilon = 6.0;
  spec.range = OutputRangeSpec::Tight(
      {Range{-10.0, 10.0}, Range{-10.0, 10.0}, Range{-10.0, 10.0}});
  auto report = runtime.Execute("lin", spec);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->output[0], 3.0, 0.8);
  EXPECT_NEAR(report->output[1], -2.0, 0.8);
  EXPECT_NEAR(report->output[2], 5.0, 0.8);
}

TEST_F(NewProgramsTest, PrivatePcaFindsDominantDirection) {
  Rng rng(2);
  std::vector<Row> rows;
  const Row direction = {0.6, 0.8};
  for (int i = 0; i < 20000; ++i) {
    double along = rng.Gaussian(0.0, 3.0);
    rows.push_back({along * direction[0] + rng.Gaussian(0.0, 0.2),
                    along * direction[1] + rng.Gaussian(0.0, 0.2)});
  }
  DatasetOptions opts;
  opts.total_epsilon = 100.0;
  ASSERT_TRUE(
      manager_.Register("pca", Dataset::Create(std::move(rows)).value(), opts)
          .ok());
  GuptRuntime runtime(&manager_, GuptOptions{});

  analytics::PcaOptions pca;
  pca.feature_dims = {0, 1};
  QuerySpec spec;
  spec.program = analytics::TopComponentQuery(pca);
  spec.epsilon = 4.0;
  spec.range =
      OutputRangeSpec::Tight({Range{-1.0, 1.0}, Range{-1.0, 1.0}});
  auto report = runtime.Execute("pca", spec);
  ASSERT_TRUE(report.ok());
  // The noisy averaged component is no longer unit norm; normalise and
  // compare the direction.
  Row component = report->output;
  double norm = vec::Norm(component);
  ASSERT_GT(norm, 0.1);
  vec::ScaleInPlace(&component, 1.0 / norm);
  EXPECT_GT(std::fabs(vec::Dot(component, direction)), 0.98);
}

TEST_F(NewProgramsTest, PrivateWinsorizedMeanOnHeavyTails) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    // Mostly N(50, 5) with occasional huge spikes.
    values.push_back(rng.Bernoulli(0.01) ? 10000.0 : rng.Gaussian(50.0, 5.0));
  }
  DatasetOptions opts;
  opts.total_epsilon = 100.0;
  ASSERT_TRUE(
      manager_.Register("heavy", Dataset::FromColumn(values).value(), opts)
          .ok());
  GuptRuntime runtime(&manager_, GuptOptions{});

  QuerySpec spec;
  spec.program = analytics::WinsorizedMeanQuery(0, 0.05);
  spec.epsilon = 2.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  auto report = runtime.Execute("heavy", spec);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->output[0], 50.0, 5.0);
}

TEST_F(NewProgramsTest, CanonicalizedKMeansViaWrapper) {
  // Drive the §8 wrapper end to end: an intentionally unordered two-centre
  // program becomes aggregatable once wrapped.
  Rng rng(4);
  std::vector<Row> rows;
  for (int i = 0; i < 4000; ++i) {
    double c = rng.Bernoulli(0.5) ? 10.0 : 20.0;
    rows.push_back({c + rng.Gaussian(0.0, 0.5)});
  }
  DatasetOptions opts;
  opts.total_epsilon = 100.0;
  ASSERT_TRUE(
      manager_.Register("two", Dataset::Create(std::move(rows)).value(), opts)
          .ok());
  GuptRuntime runtime(&manager_, GuptOptions{});

  // Emits the two cluster means in a data-dependent (unstable) order.
  auto unordered = MakeProgramFactory(
      "two_means_unordered", 2, [](const Dataset& block) -> Result<Row> {
        std::vector<double> low, high;
        const double* col = block.col(0);
        for (std::size_t r = 0; r < block.num_rows(); ++r) {
          (col[r] < 15.0 ? low : high).push_back(col[r]);
        }
        if (low.empty() || high.empty()) {
          return Status::NumericalError("degenerate block");
        }
        // Emission order flips with the block's first record.
        if (block.row(0)[0] < 15.0) {
          return Row{stats::Mean(high), stats::Mean(low)};
        }
        return Row{stats::Mean(low), stats::Mean(high)};
      });

  QuerySpec spec;
  spec.program = CanonicalizedProgram(unordered, /*group_size=*/1);
  spec.epsilon = 4.0;
  spec.range =
      OutputRangeSpec::Tight({Range{0.0, 30.0}, Range{0.0, 30.0}});
  auto report = runtime.Execute("two", spec);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->output[0], 10.0, 1.0);
  EXPECT_NEAR(report->output[1], 20.0, 1.0);

  // Without canonicalisation, the flip-flopping order averages both slots
  // towards the global midpoint — the failure §8 warns about.
  QuerySpec raw = spec;
  raw.program = unordered;
  auto mixed = runtime.Execute("two", raw);
  ASSERT_TRUE(mixed.ok());
  // The two slots collapse towards each other instead of separating the
  // clusters by ~10.
  EXPECT_LT(std::fabs(mixed->output[0] - mixed->output[1]), 6.0);
  EXPECT_NEAR(report->output[1] - report->output[0], 10.0, 2.0);
}

}  // namespace
}  // namespace gupt
