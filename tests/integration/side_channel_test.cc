// Side-channel integration tests (paper §6.2): run the three attack
// classes from Haeberlen et al. against the full runtime and verify each
// is neutralised.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <chrono>
#include <thread>

#include "analytics/queries.h"
#include "core/gupt.h"

namespace gupt {
namespace {

Dataset ValueColumn(std::size_t n, double value) {
  std::vector<Row> rows(n, Row{value});
  return Dataset::Create(std::move(rows)).value();
}

class SideChannelTest : public ::testing::Test {
 protected:
  void Register(const std::string& name, Dataset data, double epsilon) {
    DatasetOptions opts;
    opts.total_epsilon = epsilon;
    ASSERT_TRUE(manager_.Register(name, std::move(data), opts).ok());
  }
  DatasetManager manager_;
};

// --- Privacy budget attack -------------------------------------------------
//
// In PINQ the *program* issues budgeted queries, so a malicious program can
// burn the remaining budget when it sees a target record. In GUPT the
// program has no handle to the accountant: the runtime charges exactly the
// declared epsilon no matter what the program does.
TEST_F(SideChannelTest, BudgetAttackImpossibleByConstruction) {
  Register("d", ValueColumn(1000, 7.0), 10.0);
  GuptRuntime runtime(&manager_, GuptOptions{});

  // This "attack" program would love to spend budget conditionally — but
  // the only thing it can do is compute. (Nothing in scope can reach the
  // ledger; this test pins the behavioural consequence: spend == declared.)
  QuerySpec spec;
  spec.program = MakeProgramFactory(
      "budget_attacker", 1, [](const Dataset& block) -> Result<Row> {
        bool saw_target = false;
        const double* col = block.col(0);
        for (std::size_t r = 0; r < block.num_rows(); ++r) {
          if (col[r] == 7.0) saw_target = true;
        }
        return Row{saw_target ? 1.0 : 0.0};
      });
  spec.epsilon = 1.5;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 1.0}});
  ASSERT_TRUE(runtime.Execute("d", spec).ok());
  EXPECT_DOUBLE_EQ(manager_.Get("d").value()->accountant().spent_epsilon(),
                   1.5);
}

// --- State attack ------------------------------------------------------------
//
// The attack program tries to funnel information between blocks through
// shared mutable state. With fresh per-chamber instances the only shared
// state it can reach is a global, which the MAC profile would deny in the
// real system; here we verify that per-instance state carries nothing.
TEST_F(SideChannelTest, StateAttackSeesNoCrossBlockState) {
  class StateAttacker final : public AnalysisProgram {
   public:
    Result<Row> Run(const Dataset& block) override {
      // If instance state survived across blocks, `seen_` would grow as
      // more blocks run and later outputs would exceed 1.
      seen_ += static_cast<double>(block.num_rows() > 0);
      return Row{seen_};
    }
    std::size_t output_dims() const override { return 1; }
    std::string name() const override { return "state_attacker"; }

   private:
    double seen_ = 0.0;
  };

  Register("d", ValueColumn(1000, 1.0), 10.0);
  GuptRuntime runtime(&manager_, GuptOptions{});
  QuerySpec spec;
  spec.program = [] { return std::make_unique<StateAttacker>(); };
  spec.epsilon = 5.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 10.0}});
  auto report = runtime.Execute("d", spec);
  ASSERT_TRUE(report.ok());
  // Every block saw exactly its own fresh instance: the average of the
  // per-block outputs is exactly 1 (plus Laplace noise of scale
  // 10 / (16 * 5) = 0.125 at the default l ~ 1000^0.4 blocks).
  EXPECT_NEAR(report->output[0], 1.0, 1.0);
}

// --- Timing attack ----------------------------------------------------------
//
// The attack program stalls when it sees a target record. With a cycle
// budget, the stalled blocks are killed and replaced by the in-range
// constant; with padding, even the total wall-clock is data-independent.
TEST_F(SideChannelTest, TimingAttackNeutralisedByCycleBudget) {
  auto timing_attacker = MakeProgramFactory(
      "timing_attacker", 1, [](const Dataset& block) -> Result<Row> {
        const double* col = block.col(0);
        for (std::size_t r = 0; r < block.num_rows(); ++r) {
          if (col[r] == 13.0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(200));
          }
        }
        return Row{1.0};
      });

  GuptOptions options;
  options.chamber_policy.deadline = std::chrono::microseconds(30000);
  // Dataset WITH the target value: every block stalls and gets killed.
  Register("with", ValueColumn(200, 13.0), 10.0);
  GuptRuntime runtime(&manager_, options);
  QuerySpec spec;
  spec.program = timing_attacker;
  spec.epsilon = 5.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 1.0}});
  spec.block_size = 50;  // 4 blocks: keeps the killed-thread count small
  auto report = runtime.Execute("with", spec);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->deadline_exceeded_blocks, report->num_blocks);
  // All killed blocks released the constant 0.5 (range midpoint): the
  // output reveals the kill, but the kill threshold is data-independent
  // and the release is still epsilon-DP.
  EXPECT_NEAR(report->output[0], 0.5, 0.2);

  // Dataset WITHOUT the target: all blocks complete normally.
  Register("without", ValueColumn(200, 1.0), 10.0);
  auto clean = runtime.Execute("without", spec);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->deadline_exceeded_blocks, 0u);
  EXPECT_NEAR(clean->output[0], 1.0, 0.2);
}

TEST_F(SideChannelTest, PaddingEqualisesQueryDuration) {
  auto conditional_sleeper = MakeProgramFactory(
      "sleeper", 1, [](const Dataset& block) -> Result<Row> {
        if (block.row(0)[0] == 13.0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(15));
        }
        return Row{0.0};
      });
  GuptOptions options;
  options.chamber_policy.deadline = std::chrono::microseconds(25000);
  options.chamber_policy.pad_to_deadline = true;

  Register("hot", ValueColumn(40, 13.0), 10.0);
  Register("cold", ValueColumn(40, 1.0), 10.0);
  GuptRuntime runtime(&manager_, options);

  QuerySpec spec;
  spec.program = conditional_sleeper;
  spec.epsilon = 5.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 1.0}});
  spec.block_size = 10;  // 4 blocks each

  auto hot = runtime.Execute("hot", spec);
  auto cold = runtime.Execute("cold", spec);
  ASSERT_TRUE(hot.ok());
  ASSERT_TRUE(cold.ok());
  // Sequential execution of 4 padded blocks: both take ~4 * 25ms. The
  // data-dependent 15ms sleeps vanish inside the padding.
  double hot_ms = std::chrono::duration<double, std::milli>(hot->elapsed).count();
  double cold_ms =
      std::chrono::duration<double, std::milli>(cold->elapsed).count();
  EXPECT_GT(hot_ms, 95.0);
  EXPECT_GT(cold_ms, 95.0);
  EXPECT_LT(std::fabs(hot_ms - cold_ms) / std::max(hot_ms, cold_ms), 0.25);
}

// --- Process isolation end to end -------------------------------------------
//
// The strongest backend: every block in its own forked process. The whole
// private pipeline works unchanged, and even global-variable attacks
// cannot carry state between blocks.
TEST_F(SideChannelTest, ProcessIsolationEndToEnd) {
  static int global_state = 0;  // the channel a malicious program tries
  Register("d", ValueColumn(400, 10.0), 10.0);
  GuptOptions options;
  options.chamber_policy.process_isolation = true;
  options.num_workers = 0;  // forking requires the sequential manager
  GuptRuntime runtime(&manager_, options);

  QuerySpec spec;
  spec.program = MakeProgramFactory(
      "global_attacker", 1, [](const Dataset& block) -> Result<Row> {
        ++global_state;  // visible only inside this block's child process
        double sum = 0.0;
        const double* col = block.col(0);
        for (std::size_t r = 0; r < block.num_rows(); ++r) sum += col[r];
        return Row{sum / static_cast<double>(block.num_rows()) +
                   static_cast<double>(global_state - 1) * 100.0};
      });
  spec.epsilon = 5.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 20.0}});
  spec.block_size = 100;  // 4 blocks
  auto report = runtime.Execute("d", spec);
  ASSERT_TRUE(report.ok());
  // If global_state leaked across blocks the later outputs would be
  // 110, 210, ... and clamp to 20; with true isolation every block
  // computes the clean mean of 10.
  EXPECT_NEAR(report->output[0], 10.0, 2.0);
  EXPECT_EQ(global_state, 0);  // parent untouched
}

TEST_F(SideChannelTest, ProcessIsolationRejectsThreadPool) {
  Register("d", ValueColumn(100, 1.0), 10.0);
  GuptOptions options;
  options.chamber_policy.process_isolation = true;
  options.num_workers = 4;  // unsafe combination: must be refused
  GuptRuntime runtime(&manager_, options);
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 1.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 10.0}});
  EXPECT_FALSE(runtime.Execute("d", spec).ok());
}

// --- Output-channel integrity ----------------------------------------------
//
// A program that tries to exfiltrate raw records through its output can
// only move the released value within the clamped range, and the release
// still carries Laplace noise — the analyst never sees a raw record.
TEST_F(SideChannelTest, OutputsAreClampedAndNoised) {
  Register("d", ValueColumn(1000, 123456.0), 10.0);
  GuptRuntime runtime(&manager_, GuptOptions{});
  QuerySpec spec;
  spec.program = MakeProgramFactory(
      "exfiltrator", 1, [](const Dataset& block) -> Result<Row> {
        return Row{block.row(0)[0]};  // tries to output a raw record
      });
  spec.epsilon = 1.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 1.0}});
  auto report = runtime.Execute("d", spec);
  ASSERT_TRUE(report.ok());
  // The raw record (123456) never escapes: the clamped average is 1, plus
  // bounded noise.
  EXPECT_LT(report->output[0], 2.0);
}

}  // namespace
}  // namespace gupt
