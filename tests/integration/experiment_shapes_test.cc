// Regression guards for the reproduced evaluation shapes (EXPERIMENTS.md).
//
// Reduced-size versions of the figure benches, asserting the qualitative
// claims the paper makes — so a change that silently breaks a reproduced
// result fails CI rather than only showing up in a bench run someone has
// to eyeball.

#include <gtest/gtest.h>

#include <cmath>

#include "analytics/queries.h"
#include "core/gupt.h"
#include "data/synthetic.h"

namespace gupt {
namespace {

class ExperimentShapesTest : public ::testing::Test {
 protected:
  // Normalized RMSE of a query at block size beta, as in Fig. 9.
  double NormalizedRmse(GuptRuntime* runtime, const std::string& name,
                        const ProgramFactory& program, double truth,
                        std::size_t beta, double epsilon, int trials) {
    double sq = 0.0;
    for (int t = 0; t < trials; ++t) {
      QuerySpec spec;
      spec.program = program;
      spec.epsilon = epsilon;
      spec.range = OutputRangeSpec::Tight({Range{0.0, 60.0}});
      spec.block_size = beta;
      auto report = runtime->Execute(name, spec);
      EXPECT_TRUE(report.ok());
      double err = report->output[0] - truth;
      sq += err * err;
    }
    return std::sqrt(sq / trials) / truth;
  }
};

TEST_F(ExperimentShapesTest, Fig9MeanPrefersTinyBlocksMedianIsUShaped) {
  synthetic::InternetAdsOptions gen;
  Dataset ads = synthetic::InternetAdAspectRatios(gen).value();
  auto column = ads.Column(0).value();
  double true_mean = stats::Mean(column);
  double true_median = stats::Quantile(column, 0.5).value();

  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 1e9;
  ASSERT_TRUE(manager.Register("ads", std::move(ads), opts).ok());
  GuptRuntime runtime(&manager, GuptOptions{});

  const int kTrials = 40;
  // Mean (Example 3): beta = 1 beats large blocks decisively.
  double mean_at_1 = NormalizedRmse(&runtime, "ads", analytics::MeanQuery(0),
                                    true_mean, 1, 2.0, kTrials);
  double mean_at_70 = NormalizedRmse(&runtime, "ads", analytics::MeanQuery(0),
                                     true_mean, 70, 2.0, kTrials);
  EXPECT_LT(mean_at_1 * 5.0, mean_at_70);

  // Median at eps=2 (Fig. 9): U-shape — beta~10 beats both extremes.
  double median_at_1 = NormalizedRmse(
      &runtime, "ads", analytics::MedianQuery(0), true_median, 1, 2.0,
      kTrials);
  double median_at_10 = NormalizedRmse(
      &runtime, "ads", analytics::MedianQuery(0), true_median, 10, 2.0,
      kTrials);
  double median_at_70 = NormalizedRmse(
      &runtime, "ads", analytics::MedianQuery(0), true_median, 70, 2.0,
      kTrials);
  EXPECT_LT(median_at_10, median_at_1);
  EXPECT_LT(median_at_10, median_at_70);
}

TEST_F(ExperimentShapesTest, Fig4TightBeatsLooseAtSmallEpsilon) {
  synthetic::CensusAgeOptions gen;
  gen.num_rows = 10000;
  Dataset ages = synthetic::CensusAges(gen).value();
  double truth = stats::Mean(ages.Column(0).value());
  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 1e9;
  ASSERT_TRUE(manager.Register("ages", std::move(ages), opts).ok());
  GuptRuntime runtime(&manager, GuptOptions{});

  auto mean_abs_error = [&](OutputRangeSpec range) {
    double err = 0.0;
    const int kTrials = 30;
    for (int t = 0; t < kTrials; ++t) {
      QuerySpec spec;
      spec.program = analytics::MeanQuery(0);
      spec.epsilon = 0.4;
      spec.range = range;
      auto report = runtime.Execute("ages", spec);
      EXPECT_TRUE(report.ok());
      err += std::fabs(report->output[0] - truth);
    }
    return err / kTrials;
  };
  double tight = mean_abs_error(OutputRangeSpec::Tight({Range{17.0, 90.0}}));
  double loose = mean_abs_error(OutputRangeSpec::Loose({Range{0.0, 180.0}}));
  EXPECT_LT(tight, loose);
}

TEST_F(ExperimentShapesTest, Fig7VariableEpsilonMeetsGoalCheaperThanEps1) {
  synthetic::CensusAgeOptions gen;
  gen.num_rows = 20000;
  Dataset ages = synthetic::CensusAges(gen).value();
  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 1e9;
  opts.aged_fraction = 0.10;
  ASSERT_TRUE(manager.Register("ages", std::move(ages), opts).ok());
  double truth =
      stats::Mean(manager.Get("ages").value()->data().Column(0).value());
  GuptRuntime runtime(&manager, GuptOptions{});

  int meeting = 0;
  double epsilon_used = 0.0;
  const int kQueries = 50;
  for (int q = 0; q < kQueries; ++q) {
    QuerySpec spec;
    spec.program = analytics::MeanQuery(0);
    spec.accuracy_goal = AccuracyGoal{0.90, 0.10};
    spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
    spec.block_size = 100;
    auto report = runtime.Execute("ages", spec);
    ASSERT_TRUE(report.ok());
    epsilon_used = report->epsilon_spent;
    if (std::fabs(report->output[0] - truth) <= 0.1 * truth) ++meeting;
  }
  // The goal ("90% accuracy for 90% of queries") is met...
  EXPECT_GE(meeting, kQueries * 9 / 10);
  // ...at a per-query budget well below the naive eps=1 (Fig. 8's point).
  EXPECT_LT(epsilon_used, 1.0);
}

}  // namespace
}  // namespace gupt
