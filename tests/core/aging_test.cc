#include "core/aging.h"

#include <gtest/gtest.h>

#include "analytics/queries.h"
#include "common/rng.h"

namespace gupt {
namespace {

Dataset UniformColumn(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(rng.UniformDouble(0.0, 10.0));
  }
  return Dataset::FromColumn(values).value();
}

TEST(AgedRunStatsTest, WholeOutputMatchesDirectRun) {
  Dataset aged = UniformColumn(500, 1);
  Rng rng(2);
  auto stats = ComputeAgedRunStats(aged, analytics::MeanQuery(0), 50, &rng);
  ASSERT_TRUE(stats.ok());
  double direct = gupt::stats::Mean(aged.Column(0).value());
  EXPECT_DOUBLE_EQ(stats->whole_output[0], direct);
}

TEST(AgedRunStatsTest, BlockGeometry) {
  Dataset aged = UniformColumn(500, 3);
  Rng rng(4);
  auto stats = ComputeAgedRunStats(aged, analytics::MeanQuery(0), 50, &rng);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_blocks(), 10u);
  ASSERT_EQ(stats->block_mean.size(), 1u);
  ASSERT_EQ(stats->block_variance.size(), 1u);
}

TEST(AgedRunStatsTest, BlockMeanApproximatesWholeForMeanQuery) {
  Dataset aged = UniformColumn(1000, 5);
  Rng rng(6);
  auto stats = ComputeAgedRunStats(aged, analytics::MeanQuery(0), 100, &rng);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->block_mean[0], stats->whole_output[0], 0.2);
  EXPECT_GT(stats->block_variance[0], 0.0);
}

TEST(AgedRunStatsTest, LargerBlocksMeanLowerBlockVariance) {
  Dataset aged = UniformColumn(2000, 7);
  Rng rng(8);
  auto small = ComputeAgedRunStats(aged, analytics::MeanQuery(0), 10, &rng);
  auto large = ComputeAgedRunStats(aged, analytics::MeanQuery(0), 500, &rng);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(small->block_variance[0], large->block_variance[0]);
}

TEST(AgedRunStatsTest, SkipsFailingBlocksButKeepsGoing) {
  // A program that fails on blocks whose mean is below 5: some blocks
  // survive, and the stats come from the survivors.
  auto picky = MakeProgramFactory(
      "picky", 1, [](const Dataset& block) -> Result<Row> {
        GUPT_ASSIGN_OR_RETURN(auto col, block.Column(0));
        double mean = stats::Mean(col);
        if (mean < 5.0) return Status::NumericalError("low block");
        return Row{mean};
      });
  Dataset aged = UniformColumn(1000, 9);
  Rng rng(10);
  auto result = ComputeAgedRunStats(aged, picky, 5, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->num_blocks(), 200u);
  EXPECT_GT(result->num_blocks(), 0u);
  for (const Row& o : result->block_outputs) EXPECT_GE(o[0], 5.0);
}

TEST(AgedRunStatsTest, AllBlocksFailingIsAnError) {
  auto always_fails =
      MakeProgramFactory("fails", 1, [](const Dataset& block) -> Result<Row> {
        if (block.num_rows() < 100000) {
          return Status::NumericalError("nope");
        }
        return Row{0.0};
      });
  Dataset aged = UniformColumn(100, 11);
  Rng rng(12);
  // Whole-slice run also fails here, so the error surfaces immediately.
  EXPECT_FALSE(ComputeAgedRunStats(aged, always_fails, 10, &rng).ok());
}

TEST(AgedRunStatsTest, RejectsBadArguments) {
  Dataset aged = UniformColumn(100, 13);
  Rng rng(14);
  EXPECT_FALSE(
      ComputeAgedRunStats(aged, ProgramFactory{}, 10, &rng).ok());
  EXPECT_FALSE(
      ComputeAgedRunStats(aged, analytics::MeanQuery(0), 0, &rng).ok());
  EXPECT_FALSE(
      ComputeAgedRunStats(aged, analytics::MeanQuery(0), 101, &rng).ok());
}

TEST(EstimateQueryMagnitudeTest, AbsoluteValueOfOutput) {
  std::vector<Row> rows = {{-4.0}, {-6.0}};
  Dataset aged = Dataset::Create(std::move(rows)).value();
  auto magnitude = EstimateQueryMagnitude(aged, analytics::MeanQuery(0));
  ASSERT_TRUE(magnitude.ok());
  EXPECT_DOUBLE_EQ((*magnitude)[0], 5.0);
}

}  // namespace
}  // namespace gupt
