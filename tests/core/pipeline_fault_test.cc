// Fault injection through the staged query pipeline (Plan -> Admit ->
// Partition -> ExecuteBlocks -> Aggregate -> Release).
//
// Two families of guarantees are pinned here:
//
//  1. Charge semantics. AdmitStage debits the full budget up front so a
//     failing or malicious computation cannot roll it back (§6.2). A
//     stage failing BEFORE admission must charge nothing; a stage
//     failing AFTER admission must keep the up-front charge. The
//     per-stage failpoints fire at each stage's entry, modelling the
//     stage failing before any of its effects.
//
//  2. Mechanism validity under faults. With a failpoint crashing every
//     4th chamber program, each query substitutes the data-independent
//     fallback for exactly those blocks, the clamped average is a known
//     constant, and the released residuals still follow
//     Lap(width / (l * epsilon)) — verified with the statutil KS test
//     under the pre-registered seed convention (see tests/statutil).

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/queries.h"
#include "common/rng.h"
#include "core/gupt.h"
#include "statutil.h"
#include "testing/failpoints/failpoints.h"

namespace gupt {
namespace {

using failpoints::Action;
using failpoints::CompiledIn;
using failpoints::Config;
using failpoints::ScopedFailpoint;

// Pre-registered for the KS assertions below: sampling is deterministic
// given the runtime seed, and kAlpha bounds the a-priori chance this seed
// is unlucky (statutil.h).
constexpr std::uint64_t kMechanismSeed = 0x6775f417a0ULL;
constexpr double kAlpha = 1e-6;

Config FireAlways(Action action = Action::kError) {
  Config config;
  config.every_nth = 1;
  config.action = action;
  return config;
}

/// Registers 64 rows of the constant 3.0 as "const" under `budget`.
void RegisterConstant(DatasetManager& manager, double budget) {
  DatasetOptions options;
  options.total_epsilon = budget;
  std::vector<double> values(64, 3.0);
  ASSERT_TRUE(
      manager
          .Register("const", Dataset::FromColumn(values).value(), options)
          .ok());
}

/// Mean over the constant dataset: tight range [0, 4] (midpoint fallback
/// 2.0), block_size 8 => l = 8 blocks, epsilon 2.0 => per-dim Laplace
/// scale width/(l*eps) = 4/16 = 0.25.
QuerySpec ConstantMeanSpec() {
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 2.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 4.0}});
  spec.block_size = 8;
  return spec;
}

class PipelineFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CompiledIn()) {
      GTEST_SKIP() << "built with GUPT_FAILPOINTS_ENABLED=OFF";
    }
    failpoints::DisarmAll();
  }
  void TearDown() override { failpoints::DisarmAll(); }

  /// Runs one constant-mean query with `failpoint` armed to always error,
  /// and returns the budget spent afterwards. The query must fail with
  /// the injected status.
  double SpentAfterInjectedFailure(const std::string& failpoint) {
    ScopedFailpoint fp(failpoint, FireAlways());
    DatasetManager manager;
    RegisterConstant(manager, 10.0);
    GuptRuntime runtime(&manager, GuptOptions{});
    auto report = runtime.Execute("const", ConstantMeanSpec());
    EXPECT_FALSE(report.ok()) << failpoint << " did not fail the query";
    if (!report.ok()) {
      EXPECT_TRUE(failpoints::IsInjected(report.status()))
          << failpoint << ": " << report.status();
    }
    EXPECT_EQ(fp.fires(), 1u) << failpoint;
    return manager.Get("const").value()->accountant().spent_epsilon();
  }
};

TEST_F(PipelineFaultTest, PreAdmissionFailuresChargeNothing) {
  // Plan and Admit fire before the accountant debit: a query that dies
  // there must leave the ledger untouched.
  EXPECT_EQ(SpentAfterInjectedFailure("core.pipeline.plan"), 0.0);
  EXPECT_EQ(SpentAfterInjectedFailure("core.pipeline.admit"), 0.0);
}

TEST_F(PipelineFaultTest, PostAdmissionFailuresKeepTheUpFrontCharge) {
  // Once admitted, the debit is deliberately irrevocable (§6.2): even an
  // infrastructure failure after the charge must not refund it, else a
  // malicious program could mint budget by forcing failures.
  EXPECT_EQ(SpentAfterInjectedFailure("core.pipeline.partition"), 2.0);
  EXPECT_EQ(SpentAfterInjectedFailure("core.pipeline.execute_blocks"), 2.0);
  EXPECT_EQ(SpentAfterInjectedFailure("core.pipeline.aggregate"), 2.0);
  EXPECT_EQ(SpentAfterInjectedFailure("core.pipeline.release"), 2.0);
}

TEST_F(PipelineFaultTest, ManagerFaultFailsTheQueryButKeepsTheCharge) {
  // A fault below the pipeline (in the block fan-out) surfaces through
  // ExecuteBlocksStage with the same keep-the-charge semantics.
  ScopedFailpoint fp("exec.computation_manager.block", FireAlways());
  DatasetManager manager;
  RegisterConstant(manager, 10.0);
  GuptRuntime runtime(&manager, GuptOptions{});
  auto report = runtime.Execute("const", ConstantMeanSpec());
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(failpoints::IsInjected(report.status()));
  EXPECT_EQ(manager.Get("const").value()->accountant().spent_epsilon(), 2.0);
}

TEST_F(PipelineFaultTest, DeadlineOverrunsYieldExactFallbackAccounting) {
  // Every 2nd chamber program stalls past a 20ms deadline: exactly 4 of
  // the 8 blocks must be reported as deadline-exceeded fallbacks, and
  // the release must stay inside the clamp range. epsilon = 1000 makes
  // the Laplace scale 5e-4, so the output pins the clamped average
  // (6*3 + 2*2)/8 ... here (4*3 + 4*2)/8 = 2.5 to within noise.
  Config config = FireAlways(Action::kNoop);
  config.every_nth = 2;
  config.delay = std::chrono::milliseconds(100);
  ScopedFailpoint fp("exec.chamber.program", config);

  DatasetManager manager;
  RegisterConstant(manager, 2000.0);
  GuptOptions options;
  options.chamber_policy.deadline = std::chrono::microseconds(20000);
  GuptRuntime runtime(&manager, options);
  QuerySpec spec = ConstantMeanSpec();
  spec.epsilon = 1000.0;
  auto report = runtime.Execute("const", spec);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->num_blocks, 8u);
  EXPECT_EQ(report->fallback_blocks, 4u);
  EXPECT_EQ(report->deadline_exceeded_blocks, 4u);
  EXPECT_EQ(fp.evaluations(), 8u);
  EXPECT_EQ(fp.fires(), 4u);
  ASSERT_EQ(report->output.size(), 1u);
  EXPECT_GE(report->output[0], 0.0);
  EXPECT_LE(report->output[0], 4.0);
  EXPECT_NEAR(report->output[0], 2.5, 0.05);
  EXPECT_EQ(manager.Get("const").value()->accountant().spent_epsilon(),
            1000.0);
}

TEST_F(PipelineFaultTest, NoiseStaysCalibratedUnderInjectedCrashes) {
  // The §6.2 argument made quantitative: chamber crashes must not change
  // the release distribution except through the data-independent
  // fallback. Every 4th of the 8 chamber programs crashes, so each
  // query's clamped average is exactly (6*3.0 + 2*2.0)/8 = 2.75 and the
  // residual output - 2.75 is a pure Laplace draw of scale
  // width/(l*eps) = 4/(8*2) = 0.25. A KS test over kQueries independent
  // queries accepts that distribution and rejects a 2x miscalibration.
  Config config = FireAlways(Action::kCrash);
  config.every_nth = 4;
  ScopedFailpoint fp("exec.chamber.program", config);

  const std::size_t kQueries = 1000;
  DatasetManager manager;
  RegisterConstant(manager, 2.0 * static_cast<double>(kQueries) + 1.0);
  GuptOptions options;
  options.seed = kMechanismSeed;
  GuptRuntime runtime(&manager, options);

  std::vector<double> residuals;
  residuals.reserve(kQueries);
  for (std::size_t q = 0; q < kQueries; ++q) {
    auto report = runtime.Execute("const", ConstantMeanSpec());
    ASSERT_TRUE(report.ok()) << report.status();
    ASSERT_EQ(report->num_blocks, 8u);
    // 8 evaluations per query and 8 | every_nth*2: exactly two fallbacks
    // in every single query, not merely on average.
    ASSERT_EQ(report->fallback_blocks, 2u) << "query " << q;
    ASSERT_EQ(report->output.size(), 1u);
    residuals.push_back(report->output[0] - 2.75);
  }
  EXPECT_EQ(fp.evaluations(), 8u * kQueries);
  EXPECT_EQ(fp.fires(), 2u * kQueries);

  const double scale = 0.25;
  statutil::GofResult fit = statutil::KsTest(
      residuals,
      [scale](double x) { return statutil::LaplaceCdf(x, 0.0, scale); },
      kAlpha);
  EXPECT_FALSE(fit.reject) << "noise mis-calibrated under faults: "
                           << fit.Describe();

  // Power check: the same residuals are NOT consistent with a doubled
  // scale, i.e. the acceptance above is not vacuous.
  statutil::GofResult doubled = statutil::KsTest(
      residuals,
      [scale](double x) { return statutil::LaplaceCdf(x, 0.0, 2.0 * scale); },
      kAlpha);
  EXPECT_TRUE(doubled.reject) << doubled.Describe();

  // The ledger is exact: kQueries charges of exactly 2.0 each.
  auto snapshot = manager.Get("const").value()->accountant().Snapshot();
  EXPECT_EQ(snapshot.spent_epsilon, 2.0 * static_cast<double>(kQueries));
  ASSERT_EQ(snapshot.charges.size(), kQueries);
  for (const auto& charge : snapshot.charges) {
    ASSERT_EQ(charge.epsilon, 2.0);
  }
}

}  // namespace
}  // namespace gupt
