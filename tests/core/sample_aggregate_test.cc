#include "core/sample_aggregate.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gupt {
namespace {

AggregateOptions Simple(double epsilon, Range range, std::size_t gamma = 1) {
  AggregateOptions opts;
  opts.epsilon_per_dim = epsilon;
  opts.output_ranges = {range};
  opts.gamma = gamma;
  return opts;
}

TEST(AggregationNoiseScaleTest, Formula) {
  // gamma * width / (l * eps) = 2 * 10 / (5 * 4) = 1.
  EXPECT_DOUBLE_EQ(AggregationNoiseScale(10.0, 5, 2, 4.0).value(), 1.0);
}

TEST(AggregationNoiseScaleTest, RejectsBadArguments) {
  EXPECT_FALSE(AggregationNoiseScale(-1.0, 5, 1, 1.0).ok());
  EXPECT_FALSE(AggregationNoiseScale(1.0, 0, 1, 1.0).ok());
  EXPECT_FALSE(AggregationNoiseScale(1.0, 5, 0, 1.0).ok());
  EXPECT_FALSE(AggregationNoiseScale(1.0, 5, 1, 0.0).ok());
}

TEST(AggregateTest, AveragesClampedOutputs) {
  Rng rng(1);
  // Outputs {-10, 0.5, 10} clamp into [0,1] -> {0, 0.5, 1}, mean 0.5.
  std::vector<Row> outputs = {{-10.0}, {0.5}, {10.0}};
  // Huge epsilon => negligible noise.
  auto result =
      AggregateBlockOutputs(outputs, Simple(1e9, Range{0.0, 1.0}), &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->output[0], 0.5, 1e-6);
}

TEST(AggregateTest, NoiseScaleReported) {
  Rng rng(2);
  std::vector<Row> outputs(10, Row{0.5});
  auto result =
      AggregateBlockOutputs(outputs, Simple(2.0, Range{0.0, 1.0}), &rng);
  ASSERT_TRUE(result.ok());
  // scale = 1 * 1 / (10 * 2) = 0.05.
  EXPECT_DOUBLE_EQ(result->noise_scale[0], 0.05);
}

TEST(AggregateTest, NoiseIsCenteredOnClampedAverage) {
  Rng rng(3);
  std::vector<Row> outputs(20, Row{0.3});
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    sum += AggregateBlockOutputs(outputs, Simple(1.0, Range{0.0, 1.0}), &rng)
               .value()
               .output[0];
  }
  EXPECT_NEAR(sum / trials, 0.3, 0.005);
}

TEST(AggregateTest, ZeroWidthRangeReleasesClampedValueExactly) {
  Rng rng(4);
  std::vector<Row> outputs = {{0.2}, {0.9}};
  auto result =
      AggregateBlockOutputs(outputs, Simple(1.0, Range{0.5, 0.5}), &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->output[0], 0.5);
  EXPECT_DOUBLE_EQ(result->noise_scale[0], 0.0);
}

TEST(AggregateTest, MultiDimensionalUsesPerDimensionRanges) {
  Rng rng(5);
  std::vector<Row> outputs = {{0.5, 100.0}, {0.5, 200.0}};
  AggregateOptions opts;
  opts.epsilon_per_dim = 1e9;
  opts.output_ranges = {Range{0.0, 1.0}, Range{0.0, 300.0}};
  auto result = AggregateBlockOutputs(outputs, opts, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->output[0], 0.5, 1e-6);
  EXPECT_NEAR(result->output[1], 150.0, 1e-3);
}

TEST(AggregateTest, RejectsBadInputs) {
  Rng rng(6);
  EXPECT_FALSE(
      AggregateBlockOutputs({}, Simple(1.0, Range{0.0, 1.0}), &rng).ok());
  EXPECT_FALSE(AggregateBlockOutputs({{1.0, 2.0}},
                                     Simple(1.0, Range{0.0, 1.0}), &rng)
                   .ok());  // arity mismatch
  EXPECT_FALSE(
      AggregateBlockOutputs({{1.0}, {1.0, 2.0}}, Simple(1.0, Range{0.0, 1.0}),
                            &rng)
          .ok());  // mixed dims
  EXPECT_FALSE(AggregateBlockOutputs({{1.0}}, Simple(1.0, Range{2.0, 1.0}),
                                     &rng)
                   .ok());  // inverted range
  EXPECT_FALSE(AggregateBlockOutputs({{1.0}}, Simple(0.0, Range{0.0, 1.0}),
                                     &rng)
                   .ok());  // bad epsilon
}

// Claim 1 (paper §4.2): with block size fixed, the Laplace noise scale is
// independent of the resampling factor gamma, because l grows with gamma.
TEST(AggregateTest, Claim1NoiseScaleIndependentOfGamma) {
  Rng rng(7);
  const double epsilon = 2.0;
  const Range range{0.0, 1.0};
  // Block size beta over n records: gamma copies => l = gamma * (n/beta).
  const std::size_t base_blocks = 8;
  double scale_gamma_1 = 0.0, scale_gamma_4 = 0.0;
  {
    std::vector<Row> outputs(base_blocks, Row{0.5});
    scale_gamma_1 = AggregateBlockOutputs(outputs, Simple(epsilon, range, 1),
                                          &rng)
                        .value()
                        .noise_scale[0];
  }
  {
    std::vector<Row> outputs(base_blocks * 4, Row{0.5});
    scale_gamma_4 = AggregateBlockOutputs(outputs, Simple(epsilon, range, 4),
                                          &rng)
                        .value()
                        .noise_scale[0];
  }
  EXPECT_DOUBLE_EQ(scale_gamma_1, scale_gamma_4);
}

// Resampling reduces the partition-induced variance of the *average* while
// Claim 1 keeps the noise fixed: more blocks of the same size => the block
// average concentrates.
TEST(AggregateTest, ResamplingReducesAggregateVariance) {
  Rng data_rng(8);
  // Population of block outputs: simulate block means with stddev 1.
  auto sample_average_variance = [&](std::size_t num_blocks) {
    const int trials = 3000;
    double sq = 0.0;
    for (int t = 0; t < trials; ++t) {
      double avg = 0.0;
      for (std::size_t b = 0; b < num_blocks; ++b) {
        avg += data_rng.Gaussian();
      }
      avg /= static_cast<double>(num_blocks);
      sq += avg * avg;
    }
    return sq / trials;
  };
  EXPECT_GT(sample_average_variance(8), 2.5 * sample_average_variance(32));
}

// Noise magnitude sweep: E|Laplace| should equal the analytic scale across
// block counts.
class NoiseScaleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NoiseScaleSweep, EmpiricalNoiseMatchesAnalyticScale) {
  const std::size_t num_blocks = GetParam();
  Rng rng(9);
  std::vector<Row> outputs(num_blocks, Row{0.0});
  AggregateOptions opts = Simple(1.0, Range{-1.0, 1.0});
  const double expected_scale =
      AggregationNoiseScale(2.0, num_blocks, 1, 1.0).value();
  double abs_sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    abs_sum +=
        std::fabs(AggregateBlockOutputs(outputs, opts, &rng).value().output[0]);
  }
  EXPECT_NEAR(abs_sum / trials / expected_scale, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(BlockCounts, NoiseScaleSweep,
                         ::testing::Values(1, 4, 16, 64));

}  // namespace
}  // namespace gupt
