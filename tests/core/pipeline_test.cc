// Structural tests for the staged QueryPipeline: stage ordering, the
// resolved-plan fast path used by shared-budget batches, and the
// invariant that a refused query charges nothing.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/queries.h"
#include "common/rng.h"
#include "common/vec.h"
#include "core/gupt.h"

namespace gupt {
namespace {

Dataset SmallAges(std::size_t n) {
  Rng rng(42);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(38.0, 12.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

void RegisterAges(DatasetManager& manager, double budget) {
  DatasetOptions options;
  options.total_epsilon = budget;
  ASSERT_TRUE(manager.Register("ds", SmallAges(5000), options).ok());
}

QuerySpec MeanSpec(double epsilon) {
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = epsilon;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  return spec;
}

TEST(QueryPipelineTest, StageSequenceIsFixed) {
  DatasetManager manager;
  RegisterAges(manager, 10.0);
  GuptRuntime runtime(&manager, GuptOptions{});
  std::vector<std::string> names;
  for (const Stage* stage : runtime.pipeline().stages()) {
    names.push_back(stage->name());
  }
  EXPECT_EQ(names,
            (std::vector<std::string>{"PlanStage", "AdmitStage",
                                      "PartitionStage", "ExecuteBlocksStage",
                                      "AggregateStage", "ReleaseStage"}));
}

TEST(QueryPipelineTest, BudgetRefusalChargesNothing) {
  DatasetManager manager;
  RegisterAges(manager, 1.0);
  GuptRuntime runtime(&manager, GuptOptions{});
  auto report = runtime.Execute("ds", MeanSpec(2.0));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kBudgetExhausted);
  EXPECT_EQ(manager.Get("ds").value()->accountant().remaining_epsilon(), 1.0);
}

TEST(QueryPipelineTest, PlanFailureChargesNothing) {
  DatasetManager manager;
  RegisterAges(manager, 1.0);
  GuptRuntime runtime(&manager, GuptOptions{});
  QuerySpec spec = MeanSpec(0.5);
  // Two declared ranges for a one-dimensional program: rejected in
  // PlanStage, before any budget is touched.
  spec.range =
      OutputRangeSpec::Tight({Range{0.0, 150.0}, Range{0.0, 150.0}});
  auto report = runtime.Execute("ds", spec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.Get("ds").value()->accountant().remaining_epsilon(), 1.0);
}

TEST(QueryPipelineTest, ResolvedPlanBypassesPlanStage) {
  DatasetManager manager;
  RegisterAges(manager, 10.0);
  GuptRuntime runtime(&manager, GuptOptions{});
  auto ds = manager.Get("ds");
  ASSERT_TRUE(ds.ok());

  // Resolve a plan once, then rerun the pipeline with a hand-edited
  // epsilon. If PlanStage honoured plan_resolved, the charge reflects the
  // edit; if it re-planned, it would recompute 1.0 from the spec.
  QuerySpec spec = MeanSpec(1.0);
  Rng rng(123);
  QueryContext plan_ctx(**ds, spec, &rng, nullptr);
  auto plan = runtime.pipeline().Plan(plan_ctx);
  ASSERT_TRUE(plan.ok()) << plan.status();

  obs::QueryTrace trace;
  QueryContext ctx(**ds, spec, &rng, &trace);
  ctx.plan = *plan;
  ctx.plan.epsilon_total = 0.25;
  ctx.plan.epsilon_saf_per_dim = 0.25;
  ctx.plan_resolved = true;
  auto report = runtime.pipeline().Run(ctx);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->epsilon_spent, 0.25);
  EXPECT_EQ((*ds)->accountant().remaining_epsilon(), 9.75);
}

}  // namespace
}  // namespace gupt
