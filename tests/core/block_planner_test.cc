#include "core/block_planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analytics/queries.h"
#include "common/rng.h"

namespace gupt {
namespace {

Dataset UniformColumn(std::size_t n, double lo, double hi,
                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(rng.UniformDouble(lo, hi));
  }
  return Dataset::FromColumn(values).value();
}

BlockPlannerOptions MeanPlannerOptions(double epsilon) {
  BlockPlannerOptions opts;
  opts.epsilon_per_dim = epsilon;
  opts.range_widths = {1.0};
  return opts;
}

TEST(BlockPlannerTest, MeanQueryPrefersTinyBlocks) {
  // For the mean, SAF's block average is unbiased at any block size, so the
  // estimation error term is flat and the noise term dominates: the planner
  // should push towards many blocks (Example 3: optimal size ~1).
  Dataset aged = UniformColumn(2000, 0.0, 1.0, 1);
  Rng rng(2);
  auto choice = PlanBlockSize(aged, /*private_n=*/20000,
                              analytics::MeanQuery(0),
                              MeanPlannerOptions(1.0), &rng);
  ASSERT_TRUE(choice.ok());
  EXPECT_LE(choice->block_size, 4u);
  EXPECT_GT(choice->alpha, 0.8);
}

TEST(BlockPlannerTest, MedianQueryPrefersLargerBlocksAtLowEpsilon) {
  // The median on tiny blocks is biased on skewed data, so the estimation
  // term pushes the planner to bigger blocks than the mean would use.
  Rng data_rng(3);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) {
    // Skewed: exp(N(0,1)), clamped into [0, 10].
    values.push_back(std::min(10.0, std::exp(data_rng.Gaussian())));
  }
  Dataset aged = Dataset::FromColumn(values).value();
  BlockPlannerOptions opts;
  opts.epsilon_per_dim = 0.5;  // noisy regime
  opts.range_widths = {10.0};
  Rng rng(4);
  auto mean_choice = PlanBlockSize(aged, 20000, analytics::MeanQuery(0),
                                   MeanPlannerOptions(0.5), &rng);
  auto median_choice =
      PlanBlockSize(aged, 20000, analytics::MedianQuery(0), opts, &rng);
  ASSERT_TRUE(mean_choice.ok());
  ASSERT_TRUE(median_choice.ok());
  EXPECT_GE(median_choice->block_size, mean_choice->block_size);
}

TEST(BlockPlannerTest, ReportsConsistentGeometry) {
  Dataset aged = UniformColumn(1000, 0.0, 1.0, 5);
  Rng rng(6);
  auto choice = PlanBlockSize(aged, 10000, analytics::MeanQuery(0),
                              MeanPlannerOptions(2.0), &rng);
  ASSERT_TRUE(choice.ok());
  EXPECT_GE(choice->block_size, 1u);
  EXPECT_LE(choice->block_size, 10000u);
  EXPECT_EQ(choice->num_blocks, 10000u / choice->block_size);
  EXPECT_GE(choice->alpha, 0.0);
  EXPECT_LE(choice->alpha, 1.0);
  EXPECT_GT(choice->predicted_error, 0.0);
}

TEST(BlockPlannerTest, AlphaFeasibilityRespectsAgedSize) {
  // Aged slice of 50 rows, private n = 10000: blocks larger than 50 are
  // infeasible, i.e. alpha >= 1 - log(50)/log(10000) ~= 0.575.
  Dataset aged = UniformColumn(50, 0.0, 1.0, 7);
  Rng rng(8);
  auto choice = PlanBlockSize(aged, 10000, analytics::MeanQuery(0),
                              MeanPlannerOptions(1.0), &rng);
  ASSERT_TRUE(choice.ok());
  EXPECT_LE(choice->block_size, 50u);
}

TEST(BlockPlannerTest, RejectsBadArguments) {
  Dataset aged = UniformColumn(100, 0.0, 1.0, 9);
  Rng rng(10);
  auto program = analytics::MeanQuery(0);
  BlockPlannerOptions opts = MeanPlannerOptions(1.0);

  EXPECT_FALSE(PlanBlockSize(aged, 1, program, opts, &rng).ok());

  BlockPlannerOptions bad_eps = opts;
  bad_eps.epsilon_per_dim = 0.0;
  EXPECT_FALSE(PlanBlockSize(aged, 1000, program, bad_eps, &rng).ok());

  BlockPlannerOptions no_widths = opts;
  no_widths.range_widths.clear();
  EXPECT_FALSE(PlanBlockSize(aged, 1000, program, no_widths, &rng).ok());

  BlockPlannerOptions one_point = opts;
  one_point.grid_points = 1;
  EXPECT_FALSE(PlanBlockSize(aged, 1000, program, one_point, &rng).ok());
}

TEST(BlockPlannerTest, HigherEpsilonAllowsLargerBlocks) {
  // With more budget the noise term shrinks, so the planner can afford
  // fewer, larger blocks (for a query whose estimation error falls with
  // block size). With the median on skewed data this shows up directly.
  Rng data_rng(11);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(std::min(10.0, std::exp(data_rng.Gaussian())));
  }
  Dataset aged = Dataset::FromColumn(values).value();
  BlockPlannerOptions low = MeanPlannerOptions(0.2);
  low.range_widths = {10.0};
  BlockPlannerOptions high = MeanPlannerOptions(20.0);
  high.range_widths = {10.0};
  Rng rng(12);
  auto low_choice =
      PlanBlockSize(aged, 20000, analytics::MedianQuery(0), low, &rng);
  auto high_choice =
      PlanBlockSize(aged, 20000, analytics::MedianQuery(0), high, &rng);
  ASSERT_TRUE(low_choice.ok());
  ASSERT_TRUE(high_choice.ok());
  // At tiny epsilon the noise term dominates and the planner maximises the
  // number of blocks; at large epsilon estimation error dominates and the
  // planner grows the blocks.
  EXPECT_GE(high_choice->block_size, low_choice->block_size);
}

}  // namespace
}  // namespace gupt
