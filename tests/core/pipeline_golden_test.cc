// Golden outputs for the staged query pipeline.
//
// The pipeline refactor (monolithic GuptRuntime -> QueryPipeline stages)
// must be invisible in the released values: for a fixed seed, every mode
// of the runtime must produce bit-identical outputs to the pre-refactor
// implementation. These constants were captured from that implementation;
// EXPECT_EQ on doubles asserts exact bit equality, so any change to the
// RNG consumption order, stage ordering, or arithmetic shows up here.
//
// Each scenario builds its own manager + runtime so it consumes a fresh
// fork of the default-seeded root RNG, making the values independent of
// test execution order.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/queries.h"
#include "common/rng.h"
#include "common/vec.h"
#include "core/gupt.h"
#include "dp/amplification.h"
#include "exec/chamber_pool.h"

namespace gupt {
namespace {

Dataset AgesLike(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(38.0, 12.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

/// Registers "ds": 20000 clamped ages under `budget`.
void RegisterAges(DatasetManager& manager, double budget,
                  bool with_input_ranges = false, double aged_fraction = 0.0) {
  DatasetOptions options;
  options.total_epsilon = budget;
  options.aged_fraction = aged_fraction;
  if (with_input_ranges) {
    options.input_ranges = std::vector<Range>{{0.0, 150.0}};
  }
  ASSERT_TRUE(manager.Register("ds", AgesLike(20000, 42), options).ok());
}

TEST(PipelineGoldenTest, TightMode) {
  DatasetManager manager;
  RegisterAges(manager, 10.0, /*with_input_ranges=*/true);
  GuptRuntime runtime(&manager, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 2.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  auto report = runtime.Execute("ds", spec);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->epsilon_spent, 2.0);
  EXPECT_EQ(report->epsilon_saf_per_dim, 2.0);
  EXPECT_EQ(report->block_size, 377u);
  EXPECT_EQ(report->num_blocks, 54u);
  ASSERT_EQ(report->output.size(), 1u);
  EXPECT_EQ(report->output[0], 37.782203079929658);
  ASSERT_EQ(report->effective_ranges.size(), 1u);
  EXPECT_EQ(report->effective_ranges[0].lo, 0.0);
  EXPECT_EQ(report->effective_ranges[0].hi, 150.0);
}

TEST(PipelineGoldenTest, LooseMode) {
  DatasetManager manager;
  RegisterAges(manager, 10.0);
  GuptRuntime runtime(&manager, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 2.0;
  spec.range = OutputRangeSpec::Loose({Range{0.0, 300.0}});
  auto report = runtime.Execute("ds", spec);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->epsilon_spent, 2.0);
  EXPECT_EQ(report->epsilon_saf_per_dim, 1.0);
  EXPECT_EQ(report->block_size, 377u);
  EXPECT_EQ(report->num_blocks, 54u);
  ASSERT_EQ(report->output.size(), 1u);
  EXPECT_EQ(report->output[0], 38.362616495839895);
  ASSERT_EQ(report->effective_ranges.size(), 1u);
  EXPECT_EQ(report->effective_ranges[0].lo, 33.815809347560133);
  EXPECT_EQ(report->effective_ranges[0].hi, 130.36127804428008);
}

TEST(PipelineGoldenTest, HelperMode) {
  DatasetManager manager;
  RegisterAges(manager, 10.0, /*with_input_ranges=*/true);
  GuptRuntime runtime(&manager, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 2.0;
  spec.range = OutputRangeSpec::Helper(
      [](const std::vector<Range>& in) -> Result<std::vector<Range>> {
        return std::vector<Range>{in[0]};
      });
  auto report = runtime.Execute("ds", spec);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->epsilon_spent, 2.0);
  EXPECT_EQ(report->epsilon_saf_per_dim, 1.0);
  EXPECT_EQ(report->block_size, 377u);
  EXPECT_EQ(report->num_blocks, 54u);
  ASSERT_EQ(report->output.size(), 1u);
  EXPECT_EQ(report->output[0], 38.099662468328873);
  ASSERT_EQ(report->effective_ranges.size(), 1u);
  EXPECT_EQ(report->effective_ranges[0].lo, 29.839808348713699);
  EXPECT_EQ(report->effective_ranges[0].hi, 46.135843840460346);
}

TEST(PipelineGoldenTest, ColumnarRefactorPreservesLedgerCharges) {
  // The goldens above pin the released values; this pins the *ledger* to
  // the same precision. The columnar partitioner and zero-copy block views
  // must not move a single bit of the accountant state.
  DatasetManager manager;
  RegisterAges(manager, 10.0, /*with_input_ranges=*/true);
  GuptRuntime runtime(&manager, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 2.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  ASSERT_TRUE(runtime.Execute("ds", spec).ok());

  auto snapshots = manager.BudgetSnapshots();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].dataset, "ds");
  EXPECT_EQ(snapshots[0].budget.total_epsilon, 10.0);
  EXPECT_EQ(snapshots[0].budget.spent_epsilon, 2.0);
  EXPECT_EQ(snapshots[0].budget.remaining_epsilon(), 8.0);
  ASSERT_EQ(snapshots[0].budget.charges.size(), 1u);
  EXPECT_EQ(snapshots[0].budget.charges[0].epsilon, 2.0);
}

TEST(PipelineGoldenTest, PooledChambersAreBitIdenticalToInThread) {
  // Shipping blocks to pre-warmed pool workers over the pipe protocol must
  // be invisible in the release: same seed, same query, same golden value
  // as TightMode above — byte-for-byte, because the worker computes on the
  // identical column bytes and only the trusted parent draws noise.
  ChamberPool pool(ChamberPolicy{}, 2);
  pool.SetProgramResolver(
      [](const std::string& token) -> Result<ProgramFactory> {
        if (token != "mean0") {
          return Status::InvalidArgument("unknown token: " + token);
        }
        return analytics::MeanQuery(0);
      });
  ASSERT_TRUE(pool.Start().ok());

  DatasetManager manager;
  RegisterAges(manager, 10.0, /*with_input_ranges=*/true);
  GuptOptions options;
  options.chamber_pool = &pool;
  GuptRuntime runtime(&manager, options);
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.pool_program = "mean0";
  spec.epsilon = 2.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  auto report = runtime.Execute("ds", spec);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->block_size, 377u);
  EXPECT_EQ(report->num_blocks, 54u);
  ASSERT_EQ(report->output.size(), 1u);
  EXPECT_EQ(report->output[0], 37.782203079929658);  // == TightMode golden
  EXPECT_EQ(report->fallback_blocks, 0u);

  // Every block really went through the pool.
  ChamberPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.leases, 54u);
  EXPECT_EQ(stats.respawns, 0u);
}

TEST(PipelineGoldenTest, GammaResamplingWithExplicitBlockSize) {
  DatasetManager manager;
  RegisterAges(manager, 10.0);
  GuptRuntime runtime(&manager, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 1.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  spec.block_size = 200;
  spec.gamma = 4;
  auto report = runtime.Execute("ds", spec);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->epsilon_spent, 1.0);
  EXPECT_EQ(report->epsilon_saf_per_dim, 1.0);
  EXPECT_EQ(report->block_size, 200u);
  EXPECT_EQ(report->num_blocks, 400u);
  ASSERT_EQ(report->output.size(), 1u);
  EXPECT_EQ(report->output[0], 37.545740047147525);
}

TEST(PipelineGoldenTest, AmplificationOffIsTheHistoricalPathBitForBit) {
  // Amplification lands as strictly opt-in: a spec that says kOff (the
  // default) must release the exact TightMode golden AND charge the exact
  // historical ledger — same RNG consumption, same arithmetic, same bits.
  DatasetManager manager;
  RegisterAges(manager, 10.0, /*with_input_ranges=*/true);
  GuptRuntime runtime(&manager, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 2.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  spec.amplification = dp::AmplificationMode::kOff;
  auto report = runtime.Execute("ds", spec);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->epsilon_spent, 2.0);
  EXPECT_EQ(report->output[0], 37.782203079929658);  // == TightMode golden
  auto snapshots = manager.BudgetSnapshots();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].budget.spent_epsilon, 2.0);
}

TEST(PipelineGoldenTest, AmplificationOnSubsamplesAndDiscountsTheLedger) {
  // Raw-epsilon amplification CHANGES THE MECHANISM: the query runs on a
  // Bernoulli(0.25) subsample (so the released value differs from the
  // full-data TightMode golden — it is pinned to its own golden below),
  // the block geometry is laid out against the expected subsample size
  // rate * n = 5000, noise stays calibrated at the declared epsilon, and
  // the ledger debit drops to ln(1 + 0.25 * (e^2 - 1)).
  DatasetManager manager;
  RegisterAges(manager, 10.0, /*with_input_ranges=*/true);
  GuptRuntime runtime(&manager, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 2.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  spec.amplification = dp::AmplificationMode::kRawEpsilon;
  spec.amplification_rate = 0.25;
  auto report = runtime.Execute("ds", spec);
  ASSERT_TRUE(report.ok()) << report.status();
  // Default geometry of the expected subsample: beta = 5000 / 5000^0.4 =
  // 166, l = ceil(5000 / 166) = 31, fixed at plan time (data-independent).
  EXPECT_EQ(report->block_size, 166u);
  EXPECT_EQ(report->num_blocks, 31u);
  ASSERT_EQ(report->output.size(), 1u);
  EXPECT_EQ(report->output[0], 36.559663982947015);  // amplified golden
  EXPECT_EQ(report->sampling_rate, 0.25);
  EXPECT_EQ(report->epsilon_raw, 2.0);
  EXPECT_EQ(report->epsilon_spent, 0.95445859279324052);
  EXPECT_EQ(report->epsilon_spent, dp::AmplifiedEpsilon(2.0, 0.25).value());
  auto snapshots = manager.BudgetSnapshots();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].budget.spent_epsilon, 0.95445859279324052);
}

TEST(PipelineGoldenTest, AmplificationAtFullRateChargesExactlyEpsilon) {
  // rate == 1.0 skips the subsample draw (no extra RNG consumption), so
  // the amplified charge degenerates to the declared epsilon EXACTLY (the
  // identity is a bit-exact early return, not a computed log), and the
  // release matches the off-mode run of the identical query bit-for-bit.
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 2.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});

  DatasetManager off_manager;
  RegisterAges(off_manager, 10.0, /*with_input_ranges=*/true);
  GuptRuntime off_runtime(&off_manager, GuptOptions{});
  spec.amplification = dp::AmplificationMode::kOff;
  auto off = off_runtime.Execute("ds", spec);
  ASSERT_TRUE(off.ok()) << off.status();

  DatasetManager on_manager;
  RegisterAges(on_manager, 10.0, /*with_input_ranges=*/true);
  GuptRuntime on_runtime(&on_manager, GuptOptions{});
  spec.amplification = dp::AmplificationMode::kRawEpsilon;
  spec.amplification_rate = 1.0;
  auto on = on_runtime.Execute("ds", spec);
  ASSERT_TRUE(on.ok()) << on.status();

  EXPECT_EQ(on->sampling_rate, 1.0);
  EXPECT_EQ(on->epsilon_spent, 2.0);
  EXPECT_EQ(on->epsilon_spent, off->epsilon_spent);
  ASSERT_EQ(on->output.size(), off->output.size());
  EXPECT_EQ(on->output[0], off->output[0]);
}

TEST(PipelineGoldenTest, MultiDimensionalOutput) {
  std::vector<Row> rows;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    rows.push_back(
        {rng.UniformDouble(0.0, 1.0), rng.UniformDouble(0.0, 10.0)});
  }
  DatasetManager manager;
  DatasetOptions options;
  options.total_epsilon = 10.0;
  ASSERT_TRUE(
      manager.Register("d2", Dataset::Create(std::move(rows)).value(), options)
          .ok());
  GuptRuntime runtime(&manager, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::MeanAllDimsQuery(2);
  spec.epsilon = 4.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 1.0}, Range{0.0, 10.0}});
  auto report = runtime.Execute("d2", spec);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->epsilon_spent, 4.0);
  EXPECT_EQ(report->epsilon_saf_per_dim, 2.0);
  EXPECT_EQ(report->block_size, 166u);
  EXPECT_EQ(report->num_blocks, 31u);
  ASSERT_EQ(report->output.size(), 2u);
  EXPECT_EQ(report->output[0], 0.4989101472481573);
  EXPECT_EQ(report->output[1], 4.9387923701881196);
}

TEST(PipelineGoldenTest, PerDimensionAccounting) {
  DatasetManager manager;
  RegisterAges(manager, 10.0);
  GuptRuntime runtime(&manager, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 1.0;
  spec.accounting = BudgetAccounting::kPerDimension;
  spec.range = OutputRangeSpec::Loose({Range{0.0, 300.0}});
  auto report = runtime.Execute("ds", spec);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->epsilon_spent, 1.0);
  EXPECT_EQ(report->epsilon_saf_per_dim, 0.5);
  ASSERT_EQ(report->output.size(), 1u);
  EXPECT_EQ(report->output[0], 38.678957383447191);
}

TEST(PipelineGoldenTest, SharedBudgetBatch) {
  DatasetManager manager;
  RegisterAges(manager, 4.0);
  GuptRuntime runtime(&manager, GuptOptions{});
  QuerySpec mean;
  mean.program = analytics::MeanQuery(0);
  mean.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  mean.block_size = 200;
  QuerySpec variance;
  variance.program = analytics::VarianceQuery(0);
  variance.range = OutputRangeSpec::Tight({Range{0.0, 22500.0}});
  variance.block_size = 200;
  auto reports = runtime.ExecuteWithSharedBudget("ds", {mean, variance}, 2.0);
  ASSERT_TRUE(reports.ok()) << reports.status();
  ASSERT_EQ(reports->size(), 2u);
  EXPECT_EQ((*reports)[0].epsilon_spent, 0.013245033112582781);
  EXPECT_EQ((*reports)[0].epsilon_saf_per_dim, 0.013245033112582781);
  EXPECT_EQ((*reports)[0].num_blocks, 100u);
  EXPECT_EQ((*reports)[0].output[0], 16.513719298841735);
  EXPECT_EQ((*reports)[1].epsilon_spent, 1.9867549668874172);
  EXPECT_EQ((*reports)[1].epsilon_saf_per_dim, 1.9867549668874172);
  EXPECT_EQ((*reports)[1].num_blocks, 100u);
  EXPECT_EQ((*reports)[1].output[0], -140.44464756351971);
  // The allocator splits exactly the requested batch budget.
  EXPECT_EQ((*reports)[0].epsilon_spent + (*reports)[1].epsilon_spent, 2.0);
}

TEST(PipelineGoldenTest, AccuracyGoalOnAgedSlice) {
  DatasetManager manager;
  RegisterAges(manager, 100.0, /*with_input_ranges=*/false,
               /*aged_fraction=*/0.1);
  GuptRuntime runtime(&manager, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.accuracy_goal = AccuracyGoal{0.9, 0.1};
  spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  spec.block_size = 400;
  auto report = runtime.Execute("ds", spec);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->epsilon_spent, 3.9130039391299194);
  EXPECT_EQ(report->block_size, 400u);
  EXPECT_EQ(report->num_blocks, 45u);
  EXPECT_EQ(report->output[0], 36.954527585476654);
}

TEST(PipelineGoldenTest, OptimizedBlockSizeFromAgedPlanner) {
  DatasetManager manager;
  RegisterAges(manager, 100.0, /*with_input_ranges=*/false,
               /*aged_fraction=*/0.1);
  GuptRuntime runtime(&manager, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 1.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  spec.optimize_block_size = true;
  auto report = runtime.Execute("ds", spec);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->epsilon_spent, 1.0);
  EXPECT_EQ(report->block_size, 1u);
  EXPECT_EQ(report->num_blocks, 18000u);
  EXPECT_EQ(report->output[0], 38.035159136672107);
}

}  // namespace
}  // namespace gupt
