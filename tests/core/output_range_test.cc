#include "core/output_range.h"

#include <gtest/gtest.h>

namespace gupt {
namespace {

TEST(OutputRangeSpecTest, FactoriesSetMode) {
  auto tight = OutputRangeSpec::Tight({Range{0, 1}});
  EXPECT_EQ(tight.mode, RangeMode::kTight);
  ASSERT_EQ(tight.declared_ranges.size(), 1u);

  auto loose = OutputRangeSpec::Loose({Range{0, 2}});
  EXPECT_EQ(loose.mode, RangeMode::kLoose);

  auto helper = OutputRangeSpec::Helper(
      [](const std::vector<Range>& in) -> Result<std::vector<Range>> {
        return in;
      });
  EXPECT_EQ(helper.mode, RangeMode::kHelper);
  EXPECT_TRUE(static_cast<bool>(helper.translator));
}

TEST(RangeModeTest, Names) {
  EXPECT_STREQ(RangeModeToString(RangeMode::kTight), "GUPT-tight");
  EXPECT_STREQ(RangeModeToString(RangeMode::kLoose), "GUPT-loose");
  EXPECT_STREQ(RangeModeToString(RangeMode::kHelper), "GUPT-helper");
}

TEST(EstimateFromBlockOutputsTest, ShrinksLooseRangeTowardQuartiles) {
  // 200 block outputs spread uniformly over [40, 60] inside a loose [0,100]
  // range: the estimated range should hug [45, 55] (the inter-quartile).
  std::vector<Row> outputs;
  for (int i = 0; i < 200; ++i) {
    outputs.push_back({40.0 + 20.0 * i / 199.0});
  }
  Rng rng(1);
  auto ranges = EstimateRangesFromBlockOutputs(outputs, {Range{0.0, 100.0}},
                                               /*epsilon_per_dim=*/4.0,
                                               /*gamma=*/1, &rng);
  ASSERT_TRUE(ranges.ok());
  EXPECT_GT((*ranges)[0].lo, 40.0);
  EXPECT_LT((*ranges)[0].hi, 60.0);
  EXPECT_LT((*ranges)[0].lo, (*ranges)[0].hi);
}

TEST(EstimateFromBlockOutputsTest, PerDimensionIndependence) {
  std::vector<Row> outputs;
  for (int i = 0; i < 100; ++i) {
    outputs.push_back({0.5, 1000.0 + i});
  }
  Rng rng(2);
  auto ranges = EstimateRangesFromBlockOutputs(
      outputs, {Range{0.0, 1.0}, Range{0.0, 2000.0}}, 4.0, 1, &rng);
  ASSERT_TRUE(ranges.ok());
  EXPECT_LT((*ranges)[0].hi, 1.1);
  EXPECT_GT((*ranges)[1].lo, 500.0);
}

TEST(EstimateFromBlockOutputsTest, RejectsBadInputs) {
  Rng rng(3);
  EXPECT_FALSE(
      EstimateRangesFromBlockOutputs({}, {Range{0, 1}}, 1.0, 1, &rng).ok());
  EXPECT_FALSE(EstimateRangesFromBlockOutputs({{1.0}}, {}, 1.0, 1, &rng).ok());
  EXPECT_FALSE(
      EstimateRangesFromBlockOutputs({{1.0}}, {Range{0, 1}}, 1.0, 0, &rng)
          .ok());
  EXPECT_FALSE(EstimateRangesFromBlockOutputs({{1.0}, {1.0, 2.0}},
                                              {Range{0, 1}}, 1.0, 1, &rng)
                   .ok());
}

TEST(EstimateViaTranslatorTest, TranslatesPrivateInputQuartiles) {
  // Inputs uniform over [0, 100]; translator doubles the input range.
  std::vector<Row> rows;
  for (int i = 0; i < 500; ++i) rows.push_back({100.0 * i / 499.0});
  Dataset data = Dataset::Create(std::move(rows)).value();
  Rng rng(4);
  auto translator =
      [](const std::vector<Range>& in) -> Result<std::vector<Range>> {
    return std::vector<Range>{Range{2.0 * in[0].lo, 2.0 * in[0].hi}};
  };
  auto ranges = EstimateRangesViaTranslator(data, {Range{0.0, 100.0}},
                                            translator, 4.0, 1, &rng);
  ASSERT_TRUE(ranges.ok());
  // Input quartiles ~ [25, 75] -> doubled ~ [50, 150].
  EXPECT_NEAR((*ranges)[0].lo, 50.0, 15.0);
  EXPECT_NEAR((*ranges)[0].hi, 150.0, 15.0);
}

TEST(EstimateViaTranslatorTest, RejectsMissingTranslator) {
  Dataset data = Dataset::FromColumn({1, 2, 3}).value();
  Rng rng(5);
  EXPECT_FALSE(EstimateRangesViaTranslator(data, {Range{0, 10}},
                                           RangeTranslator{}, 1.0, 1, &rng)
                   .ok());
}

TEST(EstimateViaTranslatorTest, RejectsArityMismatches) {
  Dataset data = Dataset::FromColumn({1, 2, 3}).value();
  Rng rng(6);
  auto identity =
      [](const std::vector<Range>& in) -> Result<std::vector<Range>> {
    return in;
  };
  // Loose input arity (2) != data dims (1).
  EXPECT_FALSE(EstimateRangesViaTranslator(data,
                                           {Range{0, 10}, Range{0, 10}},
                                           identity, 1.0, 1, &rng)
                   .ok());
  // Translator output arity (1) != declared output dims (2).
  EXPECT_FALSE(EstimateRangesViaTranslator(data, {Range{0, 10}}, identity, 1.0,
                                           2, &rng)
                   .ok());
}

TEST(EstimateViaTranslatorTest, RejectsInvertedTranslatedRange) {
  Dataset data = Dataset::FromColumn({1, 2, 3}).value();
  Rng rng(7);
  auto inverter =
      [](const std::vector<Range>&) -> Result<std::vector<Range>> {
    return std::vector<Range>{Range{5.0, 1.0}};
  };
  EXPECT_FALSE(
      EstimateRangesViaTranslator(data, {Range{0, 10}}, inverter, 1.0, 1, &rng)
          .ok());
}

TEST(EstimateViaTranslatorTest, TranslatorErrorPropagates) {
  Dataset data = Dataset::FromColumn({1, 2, 3}).value();
  Rng rng(8);
  auto failing =
      [](const std::vector<Range>&) -> Result<std::vector<Range>> {
    return Status::InvalidArgument("cannot translate");
  };
  EXPECT_FALSE(
      EstimateRangesViaTranslator(data, {Range{0, 10}}, failing, 1.0, 1, &rng)
          .ok());
}

}  // namespace
}  // namespace gupt
