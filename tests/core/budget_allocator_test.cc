#include "core/budget_allocator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace gupt {
namespace {

TEST(SafZetaTest, Formula) {
  // sqrt(2) * gamma * width / l.
  EXPECT_DOUBLE_EQ(SafZeta(10.0, 5, 1), std::sqrt(2.0) * 2.0);
  EXPECT_DOUBLE_EQ(SafZeta(10.0, 5, 3), std::sqrt(2.0) * 6.0);
}

TEST(AllocateBudgetTest, ProportionalToZeta) {
  std::vector<QueryNoiseProfile> profiles = {{"a", 1.0}, {"b", 3.0}};
  auto eps = AllocateBudget(profiles, 4.0);
  ASSERT_TRUE(eps.ok());
  EXPECT_DOUBLE_EQ((*eps)[0], 1.0);
  EXPECT_DOUBLE_EQ((*eps)[1], 3.0);
}

TEST(AllocateBudgetTest, SumsToTotal) {
  std::vector<QueryNoiseProfile> profiles = {
      {"a", 0.7}, {"b", 2.3}, {"c", 11.0}, {"d", 0.01}};
  auto eps = AllocateBudget(profiles, 2.5);
  ASSERT_TRUE(eps.ok());
  double sum = std::accumulate(eps->begin(), eps->end(), 0.0);
  EXPECT_NEAR(sum, 2.5, 1e-12);
}

TEST(AllocateBudgetTest, EqualZetasSplitEvenly) {
  std::vector<QueryNoiseProfile> profiles = {{"a", 2.0}, {"b", 2.0}, {"c", 2.0}};
  auto eps = AllocateBudget(profiles, 3.0);
  ASSERT_TRUE(eps.ok());
  for (double e : *eps) EXPECT_DOUBLE_EQ(e, 1.0);
}

TEST(AllocateBudgetTest, EveryQueryGetsTheSameNoiseStdDev) {
  std::vector<QueryNoiseProfile> profiles = {{"a", 0.5}, {"b", 5.0}, {"c", 50.0}};
  const double total = 2.0;
  auto eps = AllocateBudget(profiles, total);
  ASSERT_TRUE(eps.ok());
  double expected = AllocatedNoiseStdDev(profiles, total).value();
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    EXPECT_NEAR(profiles[i].zeta / (*eps)[i], expected, 1e-12);
  }
}

// Paper Example 4: for a dataset in [0, max], the variance query is ~max
// times more sensitive than the average query, so it should get ~max times
// the budget — a 1 : max split, not 1 : 1.
TEST(AllocateBudgetTest, Example4AverageVersusVariance) {
  const double max = 100.0;
  const std::size_t num_blocks = 50;
  std::vector<QueryNoiseProfile> profiles = {
      {"average", SafZeta(max, num_blocks, 1)},
      {"variance", SafZeta(max * max, num_blocks, 1)},
  };
  auto eps = AllocateBudget(profiles, 1.0);
  ASSERT_TRUE(eps.ok());
  EXPECT_NEAR((*eps)[1] / (*eps)[0], max, 1e-9);
}

TEST(AllocateBudgetTest, SingleQueryGetsEverything) {
  auto eps = AllocateBudget({{"only", 0.42}}, 1.5);
  ASSERT_TRUE(eps.ok());
  EXPECT_DOUBLE_EQ((*eps)[0], 1.5);
}

TEST(AllocateBudgetTest, RejectsBadArguments) {
  EXPECT_FALSE(AllocateBudget({}, 1.0).ok());
  EXPECT_FALSE(AllocateBudget({{"a", 1.0}}, 0.0).ok());
  EXPECT_FALSE(AllocateBudget({{"a", 1.0}}, -2.0).ok());
  EXPECT_FALSE(AllocateBudget({{"a", 0.0}}, 1.0).ok());
  EXPECT_FALSE(AllocateBudget({{"a", -1.0}}, 1.0).ok());
}

TEST(AllocatedNoiseStdDevTest, MatchesSumOverTotal) {
  std::vector<QueryNoiseProfile> profiles = {{"a", 1.0}, {"b", 2.0}};
  EXPECT_DOUBLE_EQ(AllocatedNoiseStdDev(profiles, 1.5).value(), 2.0);
}

}  // namespace
}  // namespace gupt
