// Property test for Claim 1 (paper §4.2): resampling is free.
//
// With gamma groups of disjoint blocks (l = gamma * n / beta blocks in
// total), Claim 1 makes two statements:
//
//  (a) the Laplace scale gamma * |max-min| / (l * epsilon) collapses to
//      beta * |max-min| / (n * epsilon) — identical to gamma = 1; and
//  (b) the estimation error of the block average does not get worse. In
//      this implementation the gamma groups are INDEPENDENT disjoint
//      partitions, so the resampled block average is the mean of gamma
//      i.i.d. copies of the gamma = 1 estimator and its variance over
//      partition draws is Var_1 / gamma.
//
// (a) is exact arithmetic, asserted via AggregationNoiseScale. (b) is
// checked empirically over a pre-registered seeded (n, beta, gamma) grid
// with a per-block MEDIAN as the aggregated statistic — a nonlinear f,
// so the block average genuinely varies across partition draws (for a
// linear f like the mean, every disjoint partition gives exactly the
// sample mean and the variance is zero on both sides).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sample_aggregate.h"
#include "data/partitioner.h"

namespace gupt {
namespace {

// Pre-registered: the dataset and every partition draw derive from this
// seed, so the variance comparison below is deterministic. The 0.85
// headroom factor in the assertion holds with large margin for the
// expected ratio 1/gamma <= 1/2 given ~200-trial variance estimates.
constexpr std::uint64_t kClaim1Seed = 0xc1a1140001ULL;
constexpr std::size_t kTrials = 200;

/// Skewed (exponential-like) data so the per-block median has real
/// partition-to-partition variance.
std::vector<double> SkewedData(std::size_t n, Rng* rng) {
  std::vector<double> values(n);
  for (double& v : values) {
    v = -std::log(1.0 - rng->UniformDouble());
  }
  return values;
}

double MedianOfBlock(const std::vector<double>& data,
                     const std::vector<std::size_t>& block) {
  std::vector<double> values;
  values.reserve(block.size());
  for (std::size_t row : block) values.push_back(data[row]);
  std::sort(values.begin(), values.end());
  const std::size_t m = values.size();
  return m % 2 == 1 ? values[m / 2]
                    : 0.5 * (values[m / 2 - 1] + values[m / 2]);
}

/// The block-average estimator of one partition draw: mean over blocks of
/// the per-block median.
double BlockAverage(const std::vector<double>& data, const BlockPlan& plan) {
  double sum = 0.0;
  for (const auto& block : plan.blocks) {
    sum += MedianOfBlock(data, block);
  }
  return sum / static_cast<double>(plan.num_blocks());
}

/// Empirical variance of the estimator over kTrials independent
/// partition draws (distinct RNG streams under the registered seed).
double EstimatorVariance(const std::vector<double>& data, std::size_t beta,
                         std::size_t gamma, std::uint64_t stream_base) {
  std::vector<double> estimates;
  estimates.reserve(kTrials);
  for (std::size_t t = 0; t < kTrials; ++t) {
    Rng rng(kClaim1Seed, stream_base + t);
    auto plan = PartitionResampled(data.size(), beta, gamma, &rng);
    EXPECT_TRUE(plan.ok()) << plan.status();
    estimates.push_back(BlockAverage(data, *plan));
  }
  double mean = 0.0;
  for (double e : estimates) mean += e;
  mean /= static_cast<double>(estimates.size());
  double var = 0.0;
  for (double e : estimates) var += (e - mean) * (e - mean);
  return var / static_cast<double>(estimates.size() - 1);
}

TEST(Claim1PropertyTest, NoiseScaleIsExactlyGammaInvariant) {
  // Part (a): gamma * w / (l * eps) with l = gamma * n / beta equals the
  // gamma = 1 scale bit-for-bit — same multiplication, reordered only by
  // an exact power-of-two-free cancellation... asserted exactly because
  // both sides are computed by the same production routine.
  for (std::size_t n : {512u, 1024u, 4096u}) {
    for (std::size_t beta : {16u, 32u}) {
      for (std::size_t gamma : {2u, 4u, 8u}) {
        for (double epsilon : {0.1, 1.0, 2.5}) {
          const std::size_t l1 = n / beta;
          auto base = AggregationNoiseScale(10.0, l1, 1, epsilon);
          auto resampled =
              AggregationNoiseScale(10.0, gamma * l1, gamma, epsilon);
          ASSERT_TRUE(base.ok());
          ASSERT_TRUE(resampled.ok());
          EXPECT_DOUBLE_EQ(*base, *resampled)
              << "n=" << n << " beta=" << beta << " gamma=" << gamma
              << " eps=" << epsilon;
        }
      }
    }
  }
}

TEST(Claim1PropertyTest, ResampledEstimatorVarianceIsNoWorse) {
  // Part (b), across the seeded grid. Each grid point gets its own
  // stream range so adding grid points never perturbs existing draws.
  struct GridPoint {
    std::size_t n;
    std::size_t beta;
  };
  const GridPoint grid[] = {{512, 16}, {512, 32}, {1024, 32}};
  std::uint64_t stream = 0;
  for (const GridPoint& g : grid) {
    Rng data_rng(kClaim1Seed, 0xda7a0000 + g.n + g.beta);
    const std::vector<double> data = SkewedData(g.n, &data_rng);
    const double var1 = EstimatorVariance(data, g.beta, 1, stream);
    stream += kTrials;
    ASSERT_GT(var1, 0.0);
    for (std::size_t gamma : {2u, 4u}) {
      const double varg = EstimatorVariance(data, g.beta, gamma, stream);
      stream += kTrials;
      // Claim 1's "no worse", with headroom: independence of the gamma
      // groups predicts varg ~= var1 / gamma, far below var1.
      EXPECT_LT(varg, 0.85 * var1)
          << "n=" << g.n << " beta=" << g.beta << " gamma=" << gamma
          << " var1=" << var1 << " varg=" << varg;
      // And the 1/gamma scaling itself, with generous two-sided slack
      // for 200-trial variance estimates.
      const double predicted = var1 / static_cast<double>(gamma);
      EXPECT_LT(varg, 1.6 * predicted);
      EXPECT_GT(varg, 0.4 * predicted);
    }
  }
}

}  // namespace
}  // namespace gupt
