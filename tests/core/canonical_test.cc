#include "core/canonical.h"

#include <gtest/gtest.h>

namespace gupt {
namespace {

TEST(CanonicalizeTest, SortsGroupsByFirstElement) {
  Row flat = {5.0, 50.0, 1.0, 10.0, 3.0, 30.0};
  ASSERT_TRUE(CanonicalizeGroupsByFirstElement(&flat, 2).ok());
  EXPECT_EQ(flat, (Row{1.0, 10.0, 3.0, 30.0, 5.0, 50.0}));
}

TEST(CanonicalizeTest, TiesBrokenBySubsequentElements) {
  Row flat = {1.0, 9.0, 1.0, 2.0};
  ASSERT_TRUE(CanonicalizeGroupsByFirstElement(&flat, 2).ok());
  EXPECT_EQ(flat, (Row{1.0, 2.0, 1.0, 9.0}));
}

TEST(CanonicalizeTest, GroupSizeOneSortsScalars) {
  Row flat = {3.0, 1.0, 2.0};
  ASSERT_TRUE(CanonicalizeGroupsByFirstElement(&flat, 1).ok());
  EXPECT_EQ(flat, (Row{1.0, 2.0, 3.0}));
}

TEST(CanonicalizeTest, WholeRowAsOneGroupIsNoop) {
  Row flat = {3.0, 1.0, 2.0};
  ASSERT_TRUE(CanonicalizeGroupsByFirstElement(&flat, 3).ok());
  EXPECT_EQ(flat, (Row{3.0, 1.0, 2.0}));
}

TEST(CanonicalizeTest, RejectsBadArguments) {
  Row flat = {1.0, 2.0, 3.0};
  EXPECT_FALSE(CanonicalizeGroupsByFirstElement(nullptr, 2).ok());
  EXPECT_FALSE(CanonicalizeGroupsByFirstElement(&flat, 0).ok());
  EXPECT_FALSE(CanonicalizeGroupsByFirstElement(&flat, 2).ok());  // 3 % 2
}

TEST(CanonicalizeTest, IdempotentOnSortedInput) {
  Row flat = {1.0, 10.0, 2.0, 20.0};
  ASSERT_TRUE(CanonicalizeGroupsByFirstElement(&flat, 2).ok());
  Row again = flat;
  ASSERT_TRUE(CanonicalizeGroupsByFirstElement(&again, 2).ok());
  EXPECT_EQ(again, flat);
}

TEST(CanonicalizedProgramTest, SortsInnerOutput) {
  // An "unordered" program that emits groups in data order.
  auto inner = MakeProgramFactory(
      "unordered", 4, [](const Dataset& block) -> Result<Row> {
        return Row{block.row(0)[0], 100.0, block.row(1)[0], 200.0};
      });
  ProgramFactory canonical = CanonicalizedProgram(inner, 2);
  Dataset data = Dataset::Create({{9.0}, {1.0}}).value();
  auto program = canonical();
  EXPECT_EQ(program->output_dims(), 4u);
  EXPECT_NE(program->name().find("+canonical"), std::string::npos);
  Row out = program->Run(data).value();
  EXPECT_EQ(out, (Row{1.0, 200.0, 9.0, 100.0}));
}

TEST(CanonicalizedProgramTest, InnerErrorsPropagate) {
  auto failing = MakeProgramFactory(
      "fails", 2, [](const Dataset&) -> Result<Row> {
        return Status::NumericalError("nope");
      });
  ProgramFactory canonical = CanonicalizedProgram(failing, 2);
  Dataset data = Dataset::FromColumn({1.0}).value();
  EXPECT_FALSE(canonical()->Run(data).ok());
}

TEST(CanonicalizedProgramTest, MismatchedGroupSizeErrors) {
  auto inner = MakeProgramFactory(
      "odd", 3, [](const Dataset&) -> Result<Row> {
        return Row{1.0, 2.0, 3.0};
      });
  ProgramFactory canonical = CanonicalizedProgram(inner, 2);
  Dataset data = Dataset::FromColumn({1.0}).value();
  EXPECT_FALSE(canonical()->Run(data).ok());
}

}  // namespace
}  // namespace gupt
