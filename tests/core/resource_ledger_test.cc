// Exactness tests for the per-query resource ledger the pipeline driver
// fills on every QueryReport: the per-stage thread-CPU spans must sum to
// no more than the query's total CPU (the driver snapshots its clock
// before the first stage and after the last, so stage spans nest inside
// the query span by construction), and under process isolation the
// summed child rusage from wait4() must be populated.

#include "core/gupt.h"

#include <gtest/gtest.h>

#include "analytics/queries.h"
#include "common/rng.h"
#include "obs/trace.h"

namespace gupt {
namespace {

constexpr char kName[] = "ds";

Dataset AgesLike(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(38.0, 12.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

QuerySpec MeanSpec(double epsilon) {
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = epsilon;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  return spec;
}

Result<QueryReport> RunOne(GuptOptions options) {
  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 10.0;
  opts.input_ranges = std::vector<Range>{{0.0, 150.0}};
  auto registered = manager.Register(kName, AgesLike(20000, 42), opts);
  if (!registered.ok()) return registered;
  GuptRuntime runtime(&manager, options);
  return runtime.Execute(kName, MeanSpec(1.0));
}

TEST(ResourceLedgerTest, StageCpuSpansSumToAtMostTheQueryTotal) {
  // num_workers = 0: the coordinator thread runs every block itself, so
  // all pipeline CPU is on the one thread both clocks measure.
  GuptOptions options;
  options.num_workers = 0;
  auto report = RunOne(options);
  ASSERT_TRUE(report.ok()) << report.status();

  const std::int64_t total_ns = report->resources.cpu_ns;
  const std::int64_t stage_sum_ns = report->trace.TotalStageCpuNanos();
  EXPECT_GT(total_ns, 0);
  EXPECT_GT(stage_sum_ns, 0);
  // Every stage span must carry a measured CPU time.
  for (const obs::SpanRecord& span : report->trace.spans()) {
    EXPECT_GE(span.cpu_ns, 0) << span.name;
  }
  // The stage walk is bracketed by the query clock: the sum of the inner
  // spans can fall below the total (inter-stage driver work) but never
  // exceed it by more than clock granularity. CLOCK_THREAD_CPUTIME_ID is
  // nanosecond-reported but tick-quantized; allow one tick per boundary.
  const std::int64_t slack_ns =
      static_cast<std::int64_t>(report->trace.spans().size() + 1) * 1000000;
  EXPECT_LE(stage_sum_ns, total_ns + slack_ns)
      << "stages " << stage_sum_ns << "ns vs query " << total_ns << "ns";
}

TEST(ResourceLedgerTest, WallAndCpuAgreeOnASingleThreadedQuery) {
  GuptOptions options;
  options.num_workers = 0;
  auto report = RunOne(options);
  ASSERT_TRUE(report.ok()) << report.status();
  // One thread, no blocking stages: CPU cannot exceed wall (plus
  // granularity slack — the wall clock and the CPU clock tick apart).
  EXPECT_LE(report->resources.cpu_ns, report->elapsed.count() + 2000000);
  // In-thread chambers: no children, so no child rusage.
  EXPECT_EQ(report->resources.child_user_cpu_ns, 0);
  EXPECT_EQ(report->resources.child_sys_cpu_ns, 0);
  EXPECT_EQ(report->resources.child_max_rss_kb, 0);
}

TEST(ResourceLedgerTest, ProcessIsolationPopulatesChildRusage) {
  GuptOptions options;
  // Process isolation requires the sequential computation manager
  // (forking from a multi-threaded pool is unsafe).
  options.num_workers = 0;
  options.chamber_policy.process_isolation = true;
  auto report = RunOne(options);
  ASSERT_TRUE(report.ok()) << report.status();
  // Every block ran in a forked child, so wait4() must have observed a
  // resident set for at least one of them. Child CPU can legitimately
  // quantize to zero for tiny blocks, so only non-negativity is asserted.
  EXPECT_GT(report->resources.child_max_rss_kb, 0);
  EXPECT_GE(report->resources.child_user_cpu_ns, 0);
  EXPECT_GE(report->resources.child_sys_cpu_ns, 0);
  EXPECT_GE(report->resources.TotalCpuSeconds(),
            static_cast<double>(report->resources.cpu_ns) / 1e9);
}

TEST(ResourceLedgerTest, LedgerSummaryIsRenderable) {
  GuptOptions options;
  options.num_workers = 0;
  auto report = RunOne(options);
  ASSERT_TRUE(report.ok()) << report.status();
  const std::string summary = report->resources.Summary();
  EXPECT_NE(summary.find("cpu="), std::string::npos) << summary;
  EXPECT_NE(summary.find("maxrss="), std::string::npos) << summary;
}

}  // namespace
}  // namespace gupt
