#include "core/gupt.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analytics/queries.h"
#include "common/rng.h"

namespace gupt {
namespace {

constexpr char kName[] = "ds";

Dataset AgesLike(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(38.0, 12.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

class GuptRuntimeTest : public ::testing::Test {
 protected:
  void RegisterAges(double total_epsilon, double aged_fraction = 0.0) {
    DatasetOptions opts;
    opts.total_epsilon = total_epsilon;
    opts.aged_fraction = aged_fraction;
    opts.input_ranges = std::vector<Range>{{0.0, 150.0}};
    ASSERT_TRUE(manager_.Register(kName, AgesLike(20000, 42), opts).ok());
    true_mean_ = stats::Mean(
        manager_.Get(kName).value()->data().Column(0).value());
  }

  QuerySpec MeanSpec(double epsilon, OutputRangeSpec range) {
    QuerySpec spec;
    spec.program = analytics::MeanQuery(0);
    spec.epsilon = epsilon;
    spec.range = std::move(range);
    return spec;
  }

  DatasetManager manager_;
  GuptOptions options_;
  double true_mean_ = 0.0;
};

TEST_F(GuptRuntimeTest, TightModeMeanIsAccurate) {
  RegisterAges(10.0);
  GuptRuntime runtime(&manager_, options_);
  auto report = runtime.Execute(
      kName, MeanSpec(2.0, OutputRangeSpec::Tight({Range{0.0, 150.0}})));
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->output[0], true_mean_, 3.0);
  EXPECT_DOUBLE_EQ(report->epsilon_spent, 2.0);
  // Tight mode: the whole budget goes to SAF (p = 1).
  EXPECT_DOUBLE_EQ(report->epsilon_saf_per_dim, 2.0);
}

TEST_F(GuptRuntimeTest, DefaultBlockGeometryFollowsPaper) {
  RegisterAges(10.0);
  GuptRuntime runtime(&manager_, options_);
  auto report = runtime.Execute(
      kName, MeanSpec(1.0, OutputRangeSpec::Tight({Range{0.0, 150.0}})));
  ASSERT_TRUE(report.ok());
  // n = 20000: l = n^0.4 ~ 53 blocks of size ~ n^0.6 ~ 377.
  EXPECT_NEAR(static_cast<double>(report->num_blocks), 53.0, 2.0);
  EXPECT_NEAR(static_cast<double>(report->block_size), 377.0, 10.0);
}

TEST_F(GuptRuntimeTest, LooseModeSplitsBudgetPerTheorem1) {
  RegisterAges(10.0);
  GuptRuntime runtime(&manager_, options_);
  auto report = runtime.Execute(
      kName, MeanSpec(2.0, OutputRangeSpec::Loose({Range{0.0, 300.0}})));
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->epsilon_spent, 2.0);
  // Loose: eps_saf = eps / (2p) = 1.
  EXPECT_DOUBLE_EQ(report->epsilon_saf_per_dim, 1.0);
  // The effective range must have been shrunk inside the loose range.
  ASSERT_EQ(report->effective_ranges.size(), 1u);
  EXPECT_GE(report->effective_ranges[0].lo, 0.0);
  EXPECT_LE(report->effective_ranges[0].hi, 300.0);
  EXPECT_LT(report->effective_ranges[0].width(), 300.0);
  // And the answer should still be close (quartile clamping biases the
  // block means only slightly for a symmetric distribution).
  EXPECT_NEAR(report->output[0], true_mean_, 5.0);
}

TEST_F(GuptRuntimeTest, HelperModeUsesTranslatorAndOwnerRanges) {
  RegisterAges(10.0);
  GuptRuntime runtime(&manager_, options_);
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 2.0;
  spec.range = OutputRangeSpec::Helper(
      [](const std::vector<Range>& input) -> Result<std::vector<Range>> {
        // The mean of values in [lo, hi] lies in [lo, hi].
        return std::vector<Range>{input[0]};
      });  // loose input ranges come from the owner's registration
  auto report = runtime.Execute(kName, spec);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->epsilon_spent, 2.0);
  EXPECT_DOUBLE_EQ(report->epsilon_saf_per_dim, 1.0);  // eps/(2p)
  // The effective range is the translated private inter-quartile range,
  // which is much tighter than [0, 150].
  EXPECT_LT(report->effective_ranges[0].width(), 150.0);
  EXPECT_NEAR(report->output[0], true_mean_, 8.0);
}

TEST_F(GuptRuntimeTest, BudgetIsChargedAndExhausted) {
  RegisterAges(1.0);
  GuptRuntime runtime(&manager_, options_);
  auto spec = MeanSpec(0.6, OutputRangeSpec::Tight({Range{0.0, 150.0}}));
  ASSERT_TRUE(runtime.Execute(kName, spec).ok());
  auto ds = manager_.Get(kName).value();
  EXPECT_DOUBLE_EQ(ds->accountant().spent_epsilon(), 0.6);
  // The second identical query does not fit in the remaining 0.4.
  auto second = runtime.Execute(kName, spec);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kBudgetExhausted);
  // The failed attempt did not debit anything.
  EXPECT_DOUBLE_EQ(ds->accountant().spent_epsilon(), 0.6);
}

TEST_F(GuptRuntimeTest, MultiDimSplitsBudgetAcrossOutputs) {
  // Two-dimensional data, per-dimension mean: p = 2.
  std::vector<Row> rows;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    rows.push_back({rng.UniformDouble(0.0, 1.0), rng.UniformDouble(0.0, 10.0)});
  }
  DatasetOptions opts;
  opts.total_epsilon = 10.0;
  ASSERT_TRUE(
      manager_.Register("d2", Dataset::Create(std::move(rows)).value(), opts)
          .ok());
  GuptRuntime runtime(&manager_, options_);
  QuerySpec spec;
  spec.program = analytics::MeanAllDimsQuery(2);
  spec.epsilon = 4.0;
  spec.range =
      OutputRangeSpec::Tight({Range{0.0, 1.0}, Range{0.0, 10.0}});
  auto report = runtime.Execute("d2", spec);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->epsilon_spent, 4.0);
  EXPECT_DOUBLE_EQ(report->epsilon_saf_per_dim, 2.0);  // eps / p
  EXPECT_NEAR(report->output[0], 0.5, 0.1);
  EXPECT_NEAR(report->output[1], 5.0, 1.0);
}

TEST_F(GuptRuntimeTest, ResamplingImprovesStabilityAtFixedBudget) {
  RegisterAges(1000.0);
  GuptRuntime runtime(&manager_, options_);
  auto run_with_gamma = [&](std::size_t gamma, int trials) {
    std::vector<double> outputs;
    for (int i = 0; i < trials; ++i) {
      QuerySpec spec = MeanSpec(1.0, OutputRangeSpec::Tight({Range{0.0, 150.0}}));
      spec.block_size = 200;
      spec.gamma = gamma;
      auto report = runtime.Execute(kName, spec);
      EXPECT_TRUE(report.ok());
      outputs.push_back(report->output[0]);
    }
    return stats::Variance(outputs);
  };
  double var_plain = run_with_gamma(1, 60);
  double var_resampled = run_with_gamma(4, 60);
  // gamma=4 quadruples the block count at the same block size, so both the
  // partition variance and the noise variance shrink; total output variance
  // must drop distinctly.
  EXPECT_LT(var_resampled, var_plain);
}

TEST_F(GuptRuntimeTest, ExplicitBlockSizeHonoured) {
  RegisterAges(10.0);
  GuptRuntime runtime(&manager_, options_);
  QuerySpec spec = MeanSpec(1.0, OutputRangeSpec::Tight({Range{0.0, 150.0}}));
  spec.block_size = 100;
  auto report = runtime.Execute(kName, spec);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->block_size, 100u);
  EXPECT_EQ(report->num_blocks, 200u);
}

TEST_F(GuptRuntimeTest, AccuracyGoalDrivesBudget) {
  RegisterAges(100.0, /*aged_fraction=*/0.1);
  GuptRuntime runtime(&manager_, options_);
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.accuracy_goal = AccuracyGoal{0.9, 0.1};
  spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  spec.block_size = 400;
  auto report = runtime.Execute(kName, spec);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->epsilon_spent, 0.0);
  // A laxer goal must spend less.
  QuerySpec lax = spec;
  lax.accuracy_goal = AccuracyGoal{0.5, 0.2};
  auto lax_report = runtime.Execute(kName, lax);
  ASSERT_TRUE(lax_report.ok());
  EXPECT_LT(lax_report->epsilon_spent, report->epsilon_spent);
}

TEST_F(GuptRuntimeTest, AccuracyGoalRequiresAgedSlice) {
  RegisterAges(10.0, /*aged_fraction=*/0.0);
  GuptRuntime runtime(&manager_, options_);
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.accuracy_goal = AccuracyGoal{0.9, 0.1};
  spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  EXPECT_FALSE(runtime.Execute(kName, spec).ok());
}

TEST_F(GuptRuntimeTest, OptimizedBlockSizeUsesAgedSlice) {
  RegisterAges(100.0, /*aged_fraction=*/0.1);
  GuptRuntime runtime(&manager_, options_);
  QuerySpec spec = MeanSpec(1.0, OutputRangeSpec::Tight({Range{0.0, 150.0}}));
  spec.optimize_block_size = true;
  auto report = runtime.Execute(kName, spec);
  ASSERT_TRUE(report.ok());
  // For the mean, the planner should pick far smaller blocks than the
  // default n^0.6 ~ 377 (Example 3: optimal near 1).
  EXPECT_LT(report->block_size, 50u);
}

TEST_F(GuptRuntimeTest, SharedBudgetAllocationEqualisesNoise) {
  RegisterAges(4.0);
  GuptRuntime runtime(&manager_, options_);
  // Mean in [0, 150] vs mean of squares in [0, 22500]: zeta ratio 150.
  QuerySpec mean_spec;
  mean_spec.program = analytics::MeanQuery(0);
  mean_spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  mean_spec.block_size = 200;
  QuerySpec var_spec;
  var_spec.program = analytics::VarianceQuery(0);
  var_spec.range = OutputRangeSpec::Tight({Range{0.0, 22500.0}});
  var_spec.block_size = 200;

  auto reports =
      runtime.ExecuteWithSharedBudget(kName, {mean_spec, var_spec}, 2.0);
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 2u);
  double total = (*reports)[0].epsilon_spent + (*reports)[1].epsilon_spent;
  EXPECT_NEAR(total, 2.0, 1e-9);
  // Example 4: the wide-range query gets ~150x the budget.
  EXPECT_NEAR((*reports)[1].epsilon_spent / (*reports)[0].epsilon_spent, 150.0,
              1.0);
  auto ds = manager_.Get(kName).value();
  EXPECT_NEAR(ds->accountant().spent_epsilon(), 2.0, 1e-9);
}

TEST_F(GuptRuntimeTest, SharedBudgetRejectsPresetEpsilons) {
  RegisterAges(4.0);
  GuptRuntime runtime(&manager_, options_);
  QuerySpec spec = MeanSpec(1.0, OutputRangeSpec::Tight({Range{0.0, 150.0}}));
  EXPECT_FALSE(runtime.ExecuteWithSharedBudget(kName, {spec}, 2.0).ok());
}

TEST_F(GuptRuntimeTest, ValidationErrors) {
  RegisterAges(10.0);
  GuptRuntime runtime(&manager_, options_);

  // Unknown dataset.
  auto spec = MeanSpec(1.0, OutputRangeSpec::Tight({Range{0.0, 150.0}}));
  EXPECT_EQ(runtime.Execute("missing", spec).status().code(),
            StatusCode::kNotFound);

  // Neither epsilon nor goal.
  QuerySpec none;
  none.program = analytics::MeanQuery(0);
  none.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  EXPECT_FALSE(runtime.Execute(kName, none).ok());

  // Both epsilon and goal.
  QuerySpec both = spec;
  both.accuracy_goal = AccuracyGoal{0.9, 0.1};
  EXPECT_FALSE(runtime.Execute(kName, both).ok());

  // No program.
  QuerySpec no_program;
  no_program.epsilon = 1.0;
  no_program.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  EXPECT_FALSE(runtime.Execute(kName, no_program).ok());

  // Wrong declared-range arity.
  QuerySpec bad_arity = MeanSpec(
      1.0, OutputRangeSpec::Tight({Range{0.0, 150.0}, Range{0.0, 1.0}}));
  EXPECT_FALSE(runtime.Execute(kName, bad_arity).ok());

  // gamma = 0.
  QuerySpec zero_gamma = spec;
  zero_gamma.gamma = 0;
  EXPECT_FALSE(runtime.Execute(kName, zero_gamma).ok());

  // Oversized explicit block.
  QuerySpec big_block = spec;
  big_block.block_size = 1000000;
  EXPECT_FALSE(runtime.Execute(kName, big_block).ok());
}

TEST_F(GuptRuntimeTest, ParallelWorkersMatchAccuracy) {
  RegisterAges(10.0);
  GuptOptions parallel_options;
  parallel_options.num_workers = 4;
  GuptRuntime runtime(&manager_, parallel_options);
  auto report = runtime.Execute(
      kName, MeanSpec(2.0, OutputRangeSpec::Tight({Range{0.0, 150.0}})));
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->output[0], true_mean_, 3.0);
}

TEST_F(GuptRuntimeTest, FailingProgramStillReleasesPrivately) {
  RegisterAges(10.0);
  GuptRuntime runtime(&manager_, options_);
  // Fails on every block: all outputs fall back to the range midpoint (75),
  // the answer is useless but the budget is still charged and the release
  // happens — a misbehaving program cannot burn budget without producing a
  // DP output.
  QuerySpec spec;
  spec.program = MakeProgramFactory(
      "always_fails", 1,
      [](const Dataset&) -> Result<Row> {
        return Status::NumericalError("sabotage");
      });
  spec.epsilon = 5.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  auto report = runtime.Execute(kName, spec);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->fallback_blocks, report->num_blocks);
  EXPECT_NEAR(report->output[0], 75.0, 5.0);
  EXPECT_DOUBLE_EQ(
      manager_.Get(kName).value()->accountant().spent_epsilon(), 5.0);
}

}  // namespace
}  // namespace gupt
