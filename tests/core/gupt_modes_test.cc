// Additional GuptRuntime coverage: range-mode corners, wider percentile
// pairs, query-level loose inputs, mixed shared-budget batches, and
// resampling composed with range estimation.

#include <gtest/gtest.h>

#include <cmath>

#include "analytics/queries.h"
#include "common/rng.h"
#include "core/gupt.h"

namespace gupt {
namespace {

Dataset Ages(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(38.0, 12.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

class GuptModesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetOptions opts;
    opts.total_epsilon = 1e6;
    ASSERT_TRUE(manager_.Register("ages", Ages(20000, 9), opts).ok());
    true_mean_ =
        stats::Mean(manager_.Get("ages").value()->data().Column(0).value());
  }
  DatasetManager manager_;
  double true_mean_ = 0.0;
};

TEST_F(GuptModesTest, HelperModeWithQueryLevelLooseInputs) {
  // No owner-registered input ranges needed: the query supplies them.
  GuptRuntime runtime(&manager_, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 2.0;
  spec.range = OutputRangeSpec::Helper(
      [](const std::vector<Range>& in) -> Result<std::vector<Range>> {
        return std::vector<Range>{in[0]};
      },
      /*loose_input_ranges=*/{Range{0.0, 200.0}});
  auto report = runtime.Execute("ages", spec);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->output[0], true_mean_, 10.0);
}

TEST_F(GuptModesTest, HelperModeWithoutAnyInputRangesFails) {
  GuptRuntime runtime(&manager_, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 2.0;
  spec.range = OutputRangeSpec::Helper(
      [](const std::vector<Range>& in) -> Result<std::vector<Range>> {
        return std::vector<Range>{in[0]};
      });  // no loose inputs anywhere
  EXPECT_FALSE(runtime.Execute("ages", spec).ok());
}

TEST_F(GuptModesTest, WiderPercentilePairWidensEffectiveRange) {
  GuptRuntime runtime(&manager_, GuptOptions{});
  auto width_with_pair = [&](double lo_pct, double hi_pct) {
    double total = 0.0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
      QuerySpec spec;
      spec.program = analytics::MeanQuery(0);
      spec.epsilon = 4.0;
      spec.range = OutputRangeSpec::Loose({Range{0.0, 300.0}});
      spec.range.lower_percentile = lo_pct;
      spec.range.upper_percentile = hi_pct;
      auto report = runtime.Execute("ages", spec);
      EXPECT_TRUE(report.ok());
      total += report->effective_ranges[0].width();
    }
    return total / trials;
  };
  // Block means concentrate, but the 10/90 pair still covers more of their
  // spread than the inter-quartile pair.
  EXPECT_GT(width_with_pair(0.10, 0.90), width_with_pair(0.25, 0.75));
}

TEST_F(GuptModesTest, LooseModeComposesWithResampling) {
  GuptRuntime runtime(&manager_, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 4.0;
  spec.range = OutputRangeSpec::Loose({Range{0.0, 300.0}});
  spec.block_size = 400;
  spec.gamma = 3;
  auto report = runtime.Execute("ages", spec);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->gamma, 3u);
  EXPECT_EQ(report->num_blocks, 3u * 50u);
  EXPECT_NEAR(report->output[0], true_mean_, 8.0);
}

TEST_F(GuptModesTest, SharedBudgetWithThreeMixedQueries) {
  GuptRuntime runtime(&manager_, GuptOptions{});
  QuerySpec mean_q;
  mean_q.program = analytics::MeanQuery(0);
  mean_q.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  mean_q.block_size = 200;

  QuerySpec median_q;
  median_q.program = analytics::MedianQuery(0);
  median_q.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  median_q.block_size = 200;

  QuerySpec loose_q;
  loose_q.program = analytics::MeanQuery(0);
  loose_q.range = OutputRangeSpec::Loose({Range{0.0, 300.0}});
  loose_q.block_size = 200;

  auto reports = runtime.ExecuteWithSharedBudget(
      "ages", {mean_q, median_q, loose_q}, 3.0);
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 3u);
  double total = 0.0;
  for (const auto& r : *reports) total += r.epsilon_spent;
  EXPECT_NEAR(total, 3.0, 1e-9);
  // Same block geometry + same tight width => equal epsilons for the two
  // tight queries; the loose one gets double (mode multiplier 2 at equal
  // zeta) so its SAF share matches.
  EXPECT_NEAR((*reports)[0].epsilon_spent, (*reports)[1].epsilon_spent,
              1e-9);
  EXPECT_GT((*reports)[2].epsilon_spent, (*reports)[0].epsilon_spent);
}

TEST_F(GuptModesTest, SharedBudgetEqualisesEmpiricalNoise) {
  // The design goal of §5.2, verified empirically: across repeated runs,
  // queries with very different output scales come back with roughly the
  // same noise std-dev when sharing one budget.
  GuptRuntime runtime(&manager_, GuptOptions{});
  QuerySpec mean_q;
  mean_q.program = analytics::MeanQuery(0);
  mean_q.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  mean_q.block_size = 200;
  QuerySpec var_q;
  var_q.program = analytics::VarianceQuery(0);
  var_q.range = OutputRangeSpec::Tight({Range{0.0, 5625.0}});
  var_q.block_size = 200;

  std::vector<double> mean_outputs, var_outputs;
  for (int t = 0; t < 40; ++t) {
    auto reports =
        runtime.ExecuteWithSharedBudget("ages", {mean_q, var_q}, 1.0);
    ASSERT_TRUE(reports.ok());
    mean_outputs.push_back((*reports)[0].output[0]);
    var_outputs.push_back((*reports)[1].output[0]);
  }
  double mean_std = stats::StdDev(mean_outputs);
  double var_std = stats::StdDev(var_outputs);
  // Output ranges differ by 37.5x; equalised allocation should bring the
  // noise std-devs within a small factor of each other (block-output
  // variation adds a little on top of the Laplace noise).
  EXPECT_LT(std::max(mean_std, var_std) / std::min(mean_std, var_std), 3.0);
}

TEST_F(GuptModesTest, PerDimensionAccountingChargesDeclaredEpsilon) {
  // Multi-output query under paper-mode accounting: noise per dim at the
  // full declared epsilon, ledger charged the declared epsilon.
  GuptRuntime runtime(&manager_, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::HistogramQuery(0, 4, 0.0, 100.0);
  spec.epsilon = 2.0;
  spec.accounting = BudgetAccounting::kPerDimension;
  spec.range = OutputRangeSpec::Tight(std::vector<Range>(4, Range{0.0, 1.0}));
  auto report = runtime.Execute("ages", spec);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->epsilon_spent, 2.0);
  EXPECT_DOUBLE_EQ(report->epsilon_saf_per_dim, 2.0);  // not divided by 4
}

TEST_F(GuptModesTest, WideOutputSplitsBudgetAcrossTwentyDims) {
  // Theorem 1 at scale: a 20-dimensional output gets eps/20 per dimension,
  // and the per-dimension noise scale reflects it exactly.
  Rng rng(31);
  std::vector<Row> rows;
  for (int i = 0; i < 4000; ++i) {
    Row row(20);
    for (double& x : row) x = rng.UniformDouble(0.0, 1.0);
    rows.push_back(std::move(row));
  }
  DatasetOptions opts;
  opts.total_epsilon = 100.0;
  ASSERT_TRUE(
      manager_.Register("wide", Dataset::Create(std::move(rows)).value(), opts)
          .ok());
  GuptRuntime runtime(&manager_, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::MeanAllDimsQuery(20);
  spec.epsilon = 10.0;
  spec.range = OutputRangeSpec::Tight(std::vector<Range>(20, Range{0.0, 1.0}));
  spec.block_size = 100;  // 40 blocks
  auto report = runtime.Execute("wide", spec);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->epsilon_saf_per_dim, 0.5);  // 10 / 20
  ASSERT_EQ(report->output.size(), 20u);
  // Noise scale per dim = 1 / (40 * 0.5) = 0.05; outputs hug 0.5.
  for (double v : report->output) {
    EXPECT_NEAR(v, 0.5, 0.5);
  }
}

TEST_F(GuptModesTest, ReportCarriesTimingAndGeometry) {
  GuptRuntime runtime(&manager_, GuptOptions{});
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = 1.0;
  spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
  spec.block_size = 500;
  auto report = runtime.Execute("ages", spec);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->block_size, 500u);
  EXPECT_EQ(report->num_blocks, 40u);
  EXPECT_GT(report->elapsed.count(), 0);
  EXPECT_EQ(report->fallback_blocks, 0u);
  ASSERT_EQ(report->effective_ranges.size(), 1u);
  EXPECT_DOUBLE_EQ(report->effective_ranges[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(report->effective_ranges[0].hi, 150.0);
}

}  // namespace
}  // namespace gupt
