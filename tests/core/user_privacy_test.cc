// User-level privacy (paper §8.1): when a user owns several records, the
// runtime scales sensitivities by the per-user record count.

#include <gtest/gtest.h>

#include <cmath>

#include "analytics/queries.h"
#include "core/gupt.h"
#include "common/rng.h"

namespace gupt {
namespace {

Dataset Ages(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(38.0, 12.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

class UserPrivacyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetOptions opts;
    opts.total_epsilon = 1e6;
    ASSERT_TRUE(manager_.Register("d", Ages(10000, 1), opts).ok());
  }

  QuerySpec MeanSpec(std::size_t records_per_user) {
    QuerySpec spec;
    spec.program = analytics::MeanQuery(0);
    spec.epsilon = 1.0;
    spec.range = OutputRangeSpec::Tight({Range{0.0, 150.0}});
    spec.block_size = 100;
    spec.records_per_user = records_per_user;
    return spec;
  }

  DatasetManager manager_;
};

TEST_F(UserPrivacyTest, RecordsPerUserScalesNoise) {
  GuptRuntime runtime(&manager_, GuptOptions{});
  auto spread_at = [&](std::size_t records_per_user) {
    std::vector<double> outputs;
    for (int t = 0; t < 60; ++t) {
      auto report = runtime.Execute("d", MeanSpec(records_per_user));
      EXPECT_TRUE(report.ok());
      outputs.push_back(report->output[0]);
    }
    return stats::StdDev(outputs);
  };
  double record_level = spread_at(1);
  double user_level = spread_at(10);
  // Group privacy for 10-record users: 10x sensitivity => ~10x noise.
  EXPECT_GT(user_level, record_level * 5.0);
  EXPECT_LT(user_level, record_level * 20.0);
}

TEST_F(UserPrivacyTest, ChargesAreUnchanged) {
  // The epsilon is the same; only the noise calibration changes.
  GuptRuntime runtime(&manager_, GuptOptions{});
  auto report = runtime.Execute("d", MeanSpec(5));
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->epsilon_spent, 1.0);
}

TEST_F(UserPrivacyTest, ZeroRecordsPerUserRejected) {
  GuptRuntime runtime(&manager_, GuptOptions{});
  QuerySpec spec = MeanSpec(0);
  EXPECT_FALSE(runtime.Execute("d", spec).ok());
}

TEST_F(UserPrivacyTest, ComposesWithResampling) {
  GuptRuntime runtime(&manager_, GuptOptions{});
  QuerySpec spec = MeanSpec(3);
  spec.gamma = 2;
  auto report = runtime.Execute("d", spec);
  ASSERT_TRUE(report.ok());
  // gamma * records_per_user = 6 blocks touched per user; the release must
  // still be inside a plausible band (noise scale 150*6/(200*1) = 4.5).
  EXPECT_NEAR(report->output[0], 38.0, 40.0);
}

TEST_F(UserPrivacyTest, LooseModeAlsoScales) {
  GuptRuntime runtime(&manager_, GuptOptions{});
  QuerySpec spec = MeanSpec(4);
  spec.range = OutputRangeSpec::Loose({Range{0.0, 300.0}});
  auto report = runtime.Execute("d", spec);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->effective_ranges.size(), 1u);
}

}  // namespace
}  // namespace gupt
