// Property sweep over the sample-and-aggregate noise calibration: for any
// (block count, gamma, epsilon, range width), the empirical noise spread
// must match the analytic scale, and the released value must stay centered
// on the clamped average.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/sample_aggregate.h"
#include "statutil.h"

namespace gupt {
namespace {

// Pre-registered base seed (see tests/statutil/statutil.h): each sweep
// shape samples a distinct deterministic stream of it, tolerances are
// level-kAlpha standard-error bounds, and kAlpha bounds the a-priori
// chance that any one shape's stream is unlucky.
constexpr std::uint64_t kSafSweepSeed = 0x5af5feeb01ULL;
constexpr double kAlpha = 1e-6;

double ZTwoSided() { return statutil::NormalQuantile(1.0 - kAlpha / 2.0); }

struct SafShape {
  std::size_t num_blocks;
  std::size_t gamma;
  double epsilon;
  double width;
};

class SafNoiseSweep : public ::testing::TestWithParam<SafShape> {};

TEST_P(SafNoiseSweep, EmpiricalNoiseMatchesAnalyticScale) {
  const SafShape& shape = GetParam();
  Rng rng(kSafSweepSeed, shape.num_blocks * 31 + shape.gamma);
  std::vector<Row> outputs(shape.num_blocks, Row{shape.width / 2.0});
  AggregateOptions opts;
  opts.epsilon_per_dim = shape.epsilon;
  opts.output_ranges = {Range{0.0, shape.width}};
  opts.gamma = shape.gamma;

  const double analytic_scale =
      AggregationNoiseScale(shape.width, shape.num_blocks, shape.gamma,
                            shape.epsilon)
          .value();
  const double center = shape.width / 2.0;
  double abs_sum = 0.0, sum = 0.0;
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    double out =
        AggregateBlockOutputs(outputs, opts, &rng).value().output[0];
    abs_sum += std::fabs(out - center);
    sum += out;
  }
  // E|Laplace(b)| = b with sd(|Laplace(b)|) = b, so the normalised
  // absolute spread has sd 1/sqrt(trials); the sample mean of the release
  // has sd b*sqrt(2/trials). Both tolerances are level-kAlpha bounds
  // (the previous hand-tuned 0.05 and 23-sigma bounds respectively).
  EXPECT_NEAR(abs_sum / trials / analytic_scale, 1.0,
              ZTwoSided() / std::sqrt(1.0 * trials));
  EXPECT_NEAR(sum / trials, center,
              ZTwoSided() * analytic_scale * std::sqrt(2.0 / trials));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SafNoiseSweep,
    ::testing::Values(SafShape{1, 1, 1.0, 1.0}, SafShape{8, 1, 0.5, 10.0},
                      SafShape{64, 1, 2.0, 100.0}, SafShape{16, 4, 1.0, 1.0},
                      SafShape{128, 8, 0.1, 50.0},
                      SafShape{32, 2, 10.0, 1000.0}));

// Fuzz the ledger parser with malformed inputs: none may crash, none may
// leave partial spending that the caller did not ask for... (garbage after
// valid lines still applies the valid prefix — the caller treats any error
// as fatal and discards the manager, which the tests model by checking
// only for non-crash + error status).
class LedgerFuzzSweep : public ::testing::TestWithParam<const char*> {};

}  // namespace
}  // namespace gupt

#include "data/budget_store.h"

namespace gupt {
namespace {

TEST_P(LedgerFuzzSweep, GarbageNeverCrashesAndErrors) {
  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 5.0;
  ASSERT_TRUE(
      manager
          .Register("alpha", Dataset::FromColumn({1.0, 2.0}).value(), opts)
          .ok());
  EXPECT_FALSE(RestoreBudgets(&manager, GetParam()).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Garbage, LedgerFuzzSweep,
    ::testing::Values(
        "", "x", "gupt-ledger v2\n", "gupt-ledger v1\ndataset\n",
        "gupt-ledger v1\ndataset alpha total notanumber\n",
        "gupt-ledger v1\ndataset alpha total 5\ncharge\n",
        "gupt-ledger v1\ndataset alpha total 5\ncharge abc label\n",
        "gupt-ledger v1\ndataset missing total 5\n",
        "gupt-ledger v1\ndataset alpha total 4.9\n",
        "gupt-ledger v1\ndataset alpha total 5\ncharge 99 too much\n",
        "gupt-ledger v1\ncharge 1 orphan before dataset\n"));

}  // namespace
}  // namespace gupt
