#include "core/budget_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analytics/queries.h"
#include "common/rng.h"

namespace gupt {
namespace {

Dataset AgesLike(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(38.0, 12.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

BudgetEstimatorOptions Goal(double rho, double delta, std::size_t beta,
                            double width) {
  BudgetEstimatorOptions opts;
  opts.goal = AccuracyGoal{rho, delta};
  opts.block_size = beta;
  opts.range_width = width;
  return opts;
}

TEST(BudgetEstimatorTest, ProducesPositiveEpsilon) {
  Dataset aged = AgesLike(3000, 1);
  Rng rng(2);
  auto estimate = EstimateBudgetForAccuracy(
      aged, 30000, analytics::MeanQuery(0), Goal(0.9, 0.1, 500, 150.0), &rng);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GT(estimate->epsilon, 0.0);
  EXPECT_GT(estimate->target_sigma, 0.0);
  EXPECT_GE(estimate->estimation_variance, 0.0);
}

TEST(BudgetEstimatorTest, TighterAccuracyNeedsMoreBudget) {
  Dataset aged = AgesLike(3000, 3);
  Rng rng(4);
  auto loose = EstimateBudgetForAccuracy(aged, 30000, analytics::MeanQuery(0),
                                         Goal(0.80, 0.1, 500, 150.0), &rng);
  auto tight = EstimateBudgetForAccuracy(aged, 30000, analytics::MeanQuery(0),
                                         Goal(0.99, 0.1, 500, 150.0), &rng);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  EXPECT_GT(tight->epsilon, loose->epsilon);
}

TEST(BudgetEstimatorTest, HigherConfidenceNeedsMoreBudget) {
  Dataset aged = AgesLike(3000, 5);
  Rng rng(6);
  auto low_conf = EstimateBudgetForAccuracy(
      aged, 30000, analytics::MeanQuery(0), Goal(0.9, 0.3, 500, 150.0), &rng);
  auto high_conf = EstimateBudgetForAccuracy(
      aged, 30000, analytics::MeanQuery(0), Goal(0.9, 0.01, 500, 150.0), &rng);
  ASSERT_TRUE(low_conf.ok());
  ASSERT_TRUE(high_conf.ok());
  EXPECT_GT(high_conf->epsilon, low_conf->epsilon);
}

TEST(BudgetEstimatorTest, SolvedEpsilonActuallyMeetsTheGoal) {
  // End-to-end check of the conversion: run the private mean with the
  // solved epsilon many times and verify the accuracy goal holds.
  Dataset aged = AgesLike(3000, 7);
  const std::size_t n = 30000;
  const std::size_t beta = 500;
  AccuracyGoal goal{0.9, 0.1};
  Rng rng(8);
  auto estimate = EstimateBudgetForAccuracy(
      aged, n, analytics::MeanQuery(0), Goal(goal.rho, goal.delta, beta, 150.0),
      &rng);
  ASSERT_TRUE(estimate.ok());

  // Simulate the SAF release at the solved epsilon: truth + estimation
  // noise + Laplace noise, with the aged mean as the truth proxy.
  Dataset fresh = AgesLike(n, 9);
  double truth = stats::Mean(fresh.Column(0).value());
  const double num_blocks = static_cast<double>(n) / beta;
  const double scale = 150.0 / (num_blocks * estimate->epsilon);
  int within = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    double released = truth + rng.Laplace(scale);
    if (std::fabs(released - truth) <= (1.0 - goal.rho) * truth) ++within;
  }
  // Goal: within 10% of truth with probability >= 90%. Chebyshev is
  // conservative, so the solved epsilon should comfortably meet it.
  EXPECT_GT(within, trials * 0.9);
}

TEST(BudgetEstimatorTest, UnattainableGoalIsReported) {
  // A near-exact goal with delta tiny makes sigma smaller than the
  // estimation variance alone: no epsilon can fix estimation error.
  Rng data_rng(10);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(data_rng.UniformDouble(0.0, 1.0));
  }
  Dataset aged = Dataset::FromColumn(values).value();
  Rng rng(11);
  auto estimate =
      EstimateBudgetForAccuracy(aged, 5000, analytics::MeanQuery(0),
                                Goal(0.99999, 0.0001, 50, 1.0), &rng);
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kNumericalError);
}

TEST(BudgetEstimatorTest, RejectsBadArguments) {
  Dataset aged = AgesLike(100, 12);
  Rng rng(13);
  auto program = analytics::MeanQuery(0);
  EXPECT_FALSE(EstimateBudgetForAccuracy(aged, 1000, program,
                                         Goal(0.0, 0.1, 10, 1.0), &rng)
                   .ok());
  EXPECT_FALSE(EstimateBudgetForAccuracy(aged, 1000, program,
                                         Goal(1.0, 0.1, 10, 1.0), &rng)
                   .ok());
  EXPECT_FALSE(EstimateBudgetForAccuracy(aged, 1000, program,
                                         Goal(0.9, 0.0, 10, 1.0), &rng)
                   .ok());
  EXPECT_FALSE(EstimateBudgetForAccuracy(aged, 1000, program,
                                         Goal(0.9, 0.1, 0, 1.0), &rng)
                   .ok());
  EXPECT_FALSE(EstimateBudgetForAccuracy(aged, 1000, program,
                                         Goal(0.9, 0.1, 2000, 1.0), &rng)
                   .ok());  // beta > n
  EXPECT_FALSE(EstimateBudgetForAccuracy(aged, 1000, program,
                                         Goal(0.9, 0.1, 10, 0.0), &rng)
                   .ok());  // zero width
}

TEST(BudgetEstimatorTest, RejectsMultiOutputPrograms) {
  Dataset aged = Dataset::Create({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}}).value();
  Rng rng(14);
  auto estimate = EstimateBudgetForAccuracy(
      aged, 1000, analytics::MeanAllDimsQuery(2), Goal(0.9, 0.1, 2, 1.0), &rng);
  EXPECT_FALSE(estimate.ok());
}

}  // namespace
}  // namespace gupt
