#include "data/dataset.h"

#include <gtest/gtest.h>

namespace gupt {
namespace {

Dataset MakeSmall() {
  return Dataset::Create({{1, 10}, {2, 20}, {3, 30}}, {"a", "b"}).value();
}

TEST(DatasetTest, CreateBasics) {
  Dataset ds = MakeSmall();
  EXPECT_EQ(ds.num_rows(), 3u);
  EXPECT_EQ(ds.num_dims(), 2u);
  EXPECT_EQ(ds.row(1), (Row{2, 20}));
  EXPECT_EQ(ds.column_names()[1], "b");
}

TEST(DatasetTest, CreateRejectsEmpty) {
  EXPECT_FALSE(Dataset::Create({}).ok());
}

TEST(DatasetTest, CreateRejectsZeroDims) {
  EXPECT_FALSE(Dataset::Create({{}}).ok());
}

TEST(DatasetTest, CreateRejectsMixedDims) {
  EXPECT_FALSE(Dataset::Create({{1, 2}, {3}}).ok());
}

TEST(DatasetTest, CreateRejectsBadColumnNames) {
  EXPECT_FALSE(Dataset::Create({{1, 2}}, {"only_one"}).ok());
}

TEST(DatasetTest, FromColumn) {
  Dataset ds = Dataset::FromColumn({5, 6, 7}, "x").value();
  EXPECT_EQ(ds.num_rows(), 3u);
  EXPECT_EQ(ds.num_dims(), 1u);
  EXPECT_EQ(ds.column_names()[0], "x");
}

TEST(DatasetTest, ColumnExtraction) {
  Dataset ds = MakeSmall();
  EXPECT_EQ(ds.Column(0).value(), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(ds.Column(1).value(), (std::vector<double>{10, 20, 30}));
  EXPECT_FALSE(ds.Column(2).ok());
}

TEST(DatasetTest, SubsetSelectsInOrder) {
  Dataset ds = MakeSmall();
  Dataset sub = ds.Subset({2, 0}).value();
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.row(0), (Row{3, 30}));
  EXPECT_EQ(sub.row(1), (Row{1, 10}));
  EXPECT_EQ(sub.column_names(), ds.column_names());
}

TEST(DatasetTest, SubsetAllowsRepeats) {
  Dataset ds = MakeSmall();
  Dataset sub = ds.Subset({1, 1}).value();
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.row(0), sub.row(1));
}

TEST(DatasetTest, SubsetRejectsOutOfRange) {
  EXPECT_FALSE(MakeSmall().Subset({3}).ok());
  EXPECT_FALSE(MakeSmall().Subset({}).ok());
}

TEST(DatasetTest, SplitAt) {
  Dataset ds = MakeSmall();
  auto parts = ds.SplitAt(1).value();
  EXPECT_EQ(parts.first.num_rows(), 1u);
  EXPECT_EQ(parts.second.num_rows(), 2u);
  EXPECT_EQ(parts.first.row(0), (Row{1, 10}));
  EXPECT_EQ(parts.second.row(0), (Row{2, 20}));
}

TEST(DatasetTest, SplitAtRejectsDegenerate) {
  EXPECT_FALSE(MakeSmall().SplitAt(0).ok());
  EXPECT_FALSE(MakeSmall().SplitAt(3).ok());
}

TEST(DatasetTest, EmpiricalRanges) {
  Dataset ds = MakeSmall();
  auto ranges = ds.EmpiricalRanges();
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_DOUBLE_EQ(ranges[0].lo, 1.0);
  EXPECT_DOUBLE_EQ(ranges[0].hi, 3.0);
  EXPECT_DOUBLE_EQ(ranges[1].lo, 10.0);
  EXPECT_DOUBLE_EQ(ranges[1].hi, 30.0);
}

TEST(RangeTest, ContainsAndWidth) {
  Range r{-1.0, 3.0};
  EXPECT_TRUE(r.Contains(-1.0));
  EXPECT_TRUE(r.Contains(3.0));
  EXPECT_FALSE(r.Contains(3.5));
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
}

}  // namespace
}  // namespace gupt
