#include "data/dataset_manager.h"

#include <gtest/gtest.h>

namespace gupt {
namespace {

Dataset MakeCounting(std::size_t n) {
  std::vector<Row> rows;
  for (std::size_t i = 0; i < n; ++i) {
    rows.push_back({static_cast<double>(i)});
  }
  return Dataset::Create(std::move(rows)).value();
}

TEST(DatasetManagerTest, RegisterAndGet) {
  DatasetManager mgr;
  DatasetOptions opts;
  opts.total_epsilon = 3.0;
  ASSERT_TRUE(mgr.Register("census", MakeCounting(10), opts).ok());
  auto ds = mgr.Get("census");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ((*ds)->name(), "census");
  EXPECT_EQ((*ds)->data().num_rows(), 10u);
  EXPECT_DOUBLE_EQ((*ds)->accountant().total_epsilon(), 3.0);
  EXPECT_EQ((*ds)->aged(), nullptr);
  EXPECT_EQ((*ds)->input_ranges(), nullptr);
}

TEST(DatasetManagerTest, GetUnknownIsNotFound) {
  DatasetManager mgr;
  EXPECT_EQ(mgr.Get("missing").status().code(), StatusCode::kNotFound);
}

TEST(DatasetManagerTest, DuplicateNameRejected) {
  DatasetManager mgr;
  DatasetOptions opts;
  ASSERT_TRUE(mgr.Register("d", MakeCounting(5), opts).ok());
  EXPECT_EQ(mgr.Register("d", MakeCounting(5), opts).code(),
            StatusCode::kAlreadyExists);
}

TEST(DatasetManagerTest, EmptyNameRejected) {
  DatasetManager mgr;
  EXPECT_FALSE(mgr.Register("", MakeCounting(5), DatasetOptions{}).ok());
}

TEST(DatasetManagerTest, NonPositiveBudgetRejected) {
  DatasetManager mgr;
  DatasetOptions opts;
  opts.total_epsilon = 0.0;
  EXPECT_FALSE(mgr.Register("d", MakeCounting(5), opts).ok());
}

TEST(DatasetManagerTest, AgedFractionPeelsOldestRows) {
  DatasetManager mgr;
  DatasetOptions opts;
  opts.aged_fraction = 0.2;
  ASSERT_TRUE(mgr.Register("d", MakeCounting(10), opts).ok());
  auto ds = mgr.Get("d").value();
  ASSERT_NE(ds->aged(), nullptr);
  EXPECT_EQ(ds->aged()->num_rows(), 2u);
  EXPECT_EQ(ds->data().num_rows(), 8u);
  // Oldest (front) rows go to the aged slice.
  EXPECT_EQ(ds->aged()->row(0), (Row{0.0}));
  EXPECT_EQ(ds->data().row(0), (Row{2.0}));
}

TEST(DatasetManagerTest, AgedFractionBoundsChecked) {
  DatasetManager mgr;
  DatasetOptions opts;
  opts.aged_fraction = -0.1;
  EXPECT_FALSE(mgr.Register("a", MakeCounting(10), opts).ok());
  opts.aged_fraction = 1.0;
  EXPECT_FALSE(mgr.Register("b", MakeCounting(10), opts).ok());
  // A fraction that rounds up to the full dataset must also fail.
  opts.aged_fraction = 0.95;
  EXPECT_FALSE(mgr.Register("c", MakeCounting(2), opts).ok());
}

TEST(DatasetManagerTest, InputRangesValidated) {
  DatasetManager mgr;
  DatasetOptions opts;
  opts.input_ranges = std::vector<Range>{{0.0, 1.0}, {0.0, 1.0}};
  EXPECT_FALSE(mgr.Register("d", MakeCounting(5), opts).ok());  // arity 1 != 2

  opts.input_ranges = std::vector<Range>{{5.0, 1.0}};  // lo > hi
  EXPECT_FALSE(mgr.Register("d", MakeCounting(5), opts).ok());

  opts.input_ranges = std::vector<Range>{{0.0, 10.0}};
  ASSERT_TRUE(mgr.Register("d", MakeCounting(5), opts).ok());
  auto ds = mgr.Get("d").value();
  ASSERT_NE(ds->input_ranges(), nullptr);
  EXPECT_DOUBLE_EQ((*ds->input_ranges())[0].hi, 10.0);
}

TEST(DatasetManagerTest, UnregisterRemoves) {
  DatasetManager mgr;
  ASSERT_TRUE(mgr.Register("d", MakeCounting(5), DatasetOptions{}).ok());
  ASSERT_TRUE(mgr.Unregister("d").ok());
  EXPECT_FALSE(mgr.Get("d").ok());
  EXPECT_EQ(mgr.Unregister("d").code(), StatusCode::kNotFound);
}

TEST(DatasetManagerTest, ListNamesSorted) {
  DatasetManager mgr;
  ASSERT_TRUE(mgr.Register("zeta", MakeCounting(3), DatasetOptions{}).ok());
  ASSERT_TRUE(mgr.Register("alpha", MakeCounting(3), DatasetOptions{}).ok());
  EXPECT_EQ(mgr.ListNames(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(DatasetManagerTest, AccountantIsSharedAcrossGets) {
  DatasetManager mgr;
  DatasetOptions opts;
  opts.total_epsilon = 1.0;
  ASSERT_TRUE(mgr.Register("d", MakeCounting(5), opts).ok());
  ASSERT_TRUE(mgr.Get("d").value()->accountant().Charge(0.6, "q1").ok());
  // A fresh Get sees the spent budget: there is one ledger per dataset.
  EXPECT_DOUBLE_EQ(mgr.Get("d").value()->accountant().spent_epsilon(), 0.6);
  EXPECT_FALSE(mgr.Get("d").value()->accountant().Charge(0.6, "q2").ok());
}

}  // namespace
}  // namespace gupt
