#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/vec.h"

namespace gupt {
namespace synthetic {
namespace {

LifeSciencesOptions SmallLifeSciences() {
  LifeSciencesOptions opts;
  opts.num_rows = 2000;
  return opts;
}

TEST(LifeSciencesTest, ShapeMatchesPaperDataset) {
  LifeSciencesOptions opts;  // defaults reproduce ds1.10's shape
  opts.num_rows = 500;       // keep the test fast
  Dataset ds = LifeSciences(opts).value();
  EXPECT_EQ(ds.num_rows(), 500u);
  EXPECT_EQ(ds.num_dims(), 11u);  // 10 PCs + label
  EXPECT_EQ(ds.column_names().back(), "reactive");
}

TEST(LifeSciencesTest, DefaultRowCountMatchesDs110) {
  EXPECT_EQ(LifeSciencesOptions{}.num_rows, 26733u);
}

TEST(LifeSciencesTest, LabelsAreBinaryAndRoughlyBalanced) {
  Dataset ds = LifeSciences(SmallLifeSciences()).value();
  std::size_t ones = 0;
  const double* labels = ds.col(ds.num_dims() - 1);
  for (std::size_t r = 0; r < ds.num_rows(); ++r) {
    double label = labels[r];
    ASSERT_TRUE(label == 0.0 || label == 1.0);
    if (label == 1.0) ++ones;
  }
  double frac = static_cast<double>(ones) / static_cast<double>(ds.num_rows());
  EXPECT_GT(frac, 0.25);
  EXPECT_LT(frac, 0.75);
}

TEST(LifeSciencesTest, DeterministicForSameSeed) {
  Dataset a = LifeSciences(SmallLifeSciences()).value();
  Dataset b = LifeSciences(SmallLifeSciences()).value();
  EXPECT_EQ(a.MaterializeRows(), b.MaterializeRows());
}

TEST(LifeSciencesTest, DifferentSeedsDiffer) {
  LifeSciencesOptions opts = SmallLifeSciences();
  Dataset a = LifeSciences(opts).value();
  opts.seed += 1;
  Dataset b = LifeSciences(opts).value();
  EXPECT_NE(a.MaterializeRows(), b.MaterializeRows());
}

TEST(LifeSciencesTest, TrueCentersMatchDataClusters) {
  LifeSciencesOptions opts = SmallLifeSciences();
  opts.num_rows = 5000;
  Dataset ds = LifeSciences(opts).value();
  std::vector<Row> centers = LifeSciencesTrueCenters(opts);
  ASSERT_EQ(centers.size(), opts.num_clusters);
  // Every row's features should lie near (within a few stddevs of) at
  // least one true centre.
  std::size_t near = 0;
  Row row;
  for (std::size_t r = 0; r < ds.num_rows(); ++r) {
    ds.CopyRowInto(r, &row);
    Row features(row.begin(), row.begin() + 10);
    for (const Row& c : centers) {
      if (vec::SquaredDistance(features, c) < 10.0 * 10.0) {
        ++near;
        break;
      }
    }
  }
  EXPECT_GT(near, ds.num_rows() * 95 / 100);
}

TEST(LifeSciencesTest, ClustersAreSeparated) {
  LifeSciencesOptions opts;
  std::vector<Row> centers = LifeSciencesTrueCenters(opts);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    for (std::size_t j = i + 1; j < centers.size(); ++j) {
      EXPECT_GT(std::sqrt(vec::SquaredDistance(centers[i], centers[j])), 2.0);
    }
  }
}

TEST(LifeSciencesTest, RejectsInvalidOptions) {
  LifeSciencesOptions opts;
  opts.num_rows = 0;
  EXPECT_FALSE(LifeSciences(opts).ok());
  opts = LifeSciencesOptions{};
  opts.label_noise = 0.6;
  EXPECT_FALSE(LifeSciences(opts).ok());
}

TEST(CensusAgesTest, ShapeAndBounds) {
  CensusAgeOptions opts;
  opts.num_rows = 5000;
  Dataset ds = CensusAges(opts).value();
  EXPECT_EQ(ds.num_rows(), 5000u);
  EXPECT_EQ(ds.num_dims(), 1u);
  const double* ages = ds.col(0);
  for (std::size_t r = 0; r < ds.num_rows(); ++r) {
    EXPECT_GE(ages[r], opts.min_age);
    EXPECT_LE(ages[r], opts.max_age);
  }
}

TEST(CensusAgesTest, DefaultRowCountMatchesAdultDataset) {
  EXPECT_EQ(CensusAgeOptions{}.num_rows, 32561u);
}

TEST(CensusAgesTest, MeanNearPaperTruth) {
  CensusAgeOptions opts;
  opts.num_rows = 20000;
  Dataset ds = CensusAges(opts).value();
  double mean = stats::Mean(ds.Column(0).value());
  // Paper: true average age 38.5816; our mixture should land nearby.
  EXPECT_GT(mean, 34.0);
  EXPECT_LT(mean, 43.0);
}

TEST(CensusAgesTest, Deterministic) {
  CensusAgeOptions opts;
  opts.num_rows = 1000;
  EXPECT_EQ(CensusAges(opts).value().MaterializeRows(),
            CensusAges(opts).value().MaterializeRows());
}

TEST(CensusAgesTest, RejectsInvalidOptions) {
  CensusAgeOptions opts;
  opts.num_rows = 0;
  EXPECT_FALSE(CensusAges(opts).ok());
  opts = CensusAgeOptions{};
  opts.min_age = 90.0;
  opts.max_age = 17.0;
  EXPECT_FALSE(CensusAges(opts).ok());
}

TEST(InternetAdsTest, ShapeAndPositivity) {
  InternetAdsOptions opts;
  opts.num_rows = 3000;
  Dataset ds = InternetAdAspectRatios(opts).value();
  EXPECT_EQ(ds.num_rows(), 3000u);
  EXPECT_EQ(ds.num_dims(), 1u);
  const double* ratios = ds.col(0);
  for (std::size_t r = 0; r < ds.num_rows(); ++r) {
    EXPECT_GT(ratios[r], 0.0);
    EXPECT_LE(ratios[r], opts.max_ratio);
  }
}

TEST(InternetAdsTest, DistributionIsRightSkewed) {
  InternetAdsOptions opts;
  opts.num_rows = 10000;
  Dataset ds = InternetAdAspectRatios(opts).value();
  auto column = ds.Column(0).value();
  double mean = stats::Mean(column);
  double median = stats::Quantile(column, 0.5).value();
  // Log-normal: mean strictly above median — this gap is what Fig. 9's
  // mean-vs-median block-size experiment relies on.
  EXPECT_GT(mean, median * 1.1);
}

TEST(InternetAdsTest, Deterministic) {
  InternetAdsOptions opts;
  opts.num_rows = 500;
  EXPECT_EQ(InternetAdAspectRatios(opts).value().MaterializeRows(),
            InternetAdAspectRatios(opts).value().MaterializeRows());
}

TEST(InternetAdsTest, RejectsInvalidOptions) {
  InternetAdsOptions opts;
  opts.num_rows = 0;
  EXPECT_FALSE(InternetAdAspectRatios(opts).ok());
  opts = InternetAdsOptions{};
  opts.log_stddev = 0.0;
  EXPECT_FALSE(InternetAdAspectRatios(opts).ok());
}

}  // namespace
}  // namespace synthetic
}  // namespace gupt
