#include "data/partitioner.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

namespace gupt {
namespace {

// Two-column dataset whose values encode their row index, so gather order
// is directly checkable: row i = {i, 1000 + i}.
Dataset IndexedDataset(std::size_t n) {
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<double>(i);
    b[i] = 1000.0 + static_cast<double>(i);
  }
  return Dataset::FromColumns({a, b}).value();
}

TEST(PartitionDisjointTest, CoversEveryIndexExactlyOnce) {
  Rng rng(1);
  auto plan = PartitionDisjoint(100, 7, &rng).value();
  EXPECT_EQ(plan.num_blocks(), 7u);
  EXPECT_EQ(plan.gamma, 1u);
  std::map<std::size_t, int> counts;
  for (const auto& block : plan.blocks) {
    for (std::size_t i : block) ++counts[i];
  }
  EXPECT_EQ(counts.size(), 100u);
  for (const auto& [idx, count] : counts) {
    EXPECT_EQ(count, 1) << "index " << idx;
    EXPECT_LT(idx, 100u);
  }
}

TEST(PartitionDisjointTest, BlockSizesDifferByAtMostOne) {
  Rng rng(2);
  auto plan = PartitionDisjoint(100, 7, &rng).value();
  std::size_t min_size = 100, max_size = 0;
  for (const auto& block : plan.blocks) {
    min_size = std::min(min_size, block.size());
    max_size = std::max(max_size, block.size());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(PartitionDisjointTest, SingleBlockHoldsEverything) {
  Rng rng(3);
  auto plan = PartitionDisjoint(10, 1, &rng).value();
  EXPECT_EQ(plan.blocks[0].size(), 10u);
}

TEST(PartitionDisjointTest, NBlocksOfOne) {
  Rng rng(4);
  auto plan = PartitionDisjoint(10, 10, &rng).value();
  for (const auto& block : plan.blocks) EXPECT_EQ(block.size(), 1u);
}

TEST(PartitionDisjointTest, RejectsBadArguments) {
  Rng rng(5);
  EXPECT_FALSE(PartitionDisjoint(0, 1, &rng).ok());
  EXPECT_FALSE(PartitionDisjoint(10, 0, &rng).ok());
  EXPECT_FALSE(PartitionDisjoint(10, 11, &rng).ok());
}

TEST(PartitionDisjointTest, IsRandomized) {
  Rng rng(6);
  auto a = PartitionDisjoint(50, 5, &rng).value();
  auto b = PartitionDisjoint(50, 5, &rng).value();
  EXPECT_NE(a.blocks, b.blocks);
}

TEST(PartitionResampledTest, EveryRecordAppearsExactlyGammaTimes) {
  Rng rng(7);
  const std::size_t n = 60, beta = 10, gamma = 4;
  auto plan = PartitionResampled(n, beta, gamma, &rng).value();
  EXPECT_EQ(plan.gamma, gamma);
  EXPECT_EQ(plan.num_blocks(), gamma * (n / beta));
  std::map<std::size_t, std::size_t> counts;
  for (const auto& block : plan.blocks) {
    for (std::size_t i : block) ++counts[i];
  }
  EXPECT_EQ(counts.size(), n);
  for (const auto& [idx, count] : counts) {
    EXPECT_EQ(count, gamma) << "index " << idx;
  }
}

TEST(PartitionResampledTest, NoDuplicateWithinAnyBlock) {
  Rng rng(8);
  auto plan = PartitionResampled(50, 7, 5, &rng).value();
  for (const auto& block : plan.blocks) {
    std::set<std::size_t> unique(block.begin(), block.end());
    EXPECT_EQ(unique.size(), block.size());
  }
}

TEST(PartitionResampledTest, BlockSizeRespected) {
  Rng rng(9);
  const std::size_t n = 53, beta = 10;  // does not divide evenly
  auto plan = PartitionResampled(n, beta, 3, &rng).value();
  // Each group has ceil(53/10) = 6 blocks: five of size 10, one of size 3.
  EXPECT_EQ(plan.num_blocks(), 3u * 6u);
  for (const auto& block : plan.blocks) {
    EXPECT_LE(block.size(), beta);
    EXPECT_GE(block.size(), 1u);
  }
}

TEST(PartitionResampledTest, GammaOneMatchesDisjointSemantics) {
  Rng rng(10);
  auto plan = PartitionResampled(40, 8, 1, &rng).value();
  EXPECT_EQ(plan.num_blocks(), 5u);
  std::map<std::size_t, int> counts;
  for (const auto& block : plan.blocks) {
    for (std::size_t i : block) ++counts[i];
  }
  for (const auto& [idx, count] : counts) EXPECT_EQ(count, 1) << idx;
}

TEST(PartitionResampledTest, RejectsBadArguments) {
  Rng rng(11);
  EXPECT_FALSE(PartitionResampled(0, 1, 1, &rng).ok());
  EXPECT_FALSE(PartitionResampled(10, 0, 1, &rng).ok());
  EXPECT_FALSE(PartitionResampled(10, 11, 1, &rng).ok());
  EXPECT_FALSE(PartitionResampled(10, 2, 0, &rng).ok());
}

TEST(DefaultNumBlocksTest, FollowsNToThePointFour) {
  // 26733^0.4 ~= 58.7 -> 59 blocks.
  EXPECT_EQ(DefaultNumBlocks(26733), 59u);
  // 10000^0.4 ~= 39.8 -> 40.
  EXPECT_EQ(DefaultNumBlocks(10000), 40u);
}

TEST(DefaultNumBlocksTest, EdgeCases) {
  EXPECT_EQ(DefaultNumBlocks(0), 1u);
  EXPECT_EQ(DefaultNumBlocks(1), 1u);
  EXPECT_GE(DefaultNumBlocks(2), 1u);
  EXPECT_LE(DefaultNumBlocks(2), 2u);
}

TEST(MaterializeBlocksTest, BlocksMatchSubsetGatherOrder) {
  Dataset data = IndexedDataset(40);
  Rng rng(21);
  BlockPlan plan = PartitionResampled(40, 7, 2, &rng).value();
  BlockSet set = MaterializeBlocks(data, plan).value();
  ASSERT_EQ(set.num_blocks(), plan.num_blocks());
  EXPECT_EQ(set.gamma, plan.gamma);
  for (std::size_t b = 0; b < plan.num_blocks(); ++b) {
    Dataset expected = data.Subset(plan.blocks[b]).value();
    DatasetView view = set.view(b);
    ASSERT_EQ(view.num_rows(), expected.num_rows());
    ASSERT_EQ(view.num_dims(), expected.num_dims());
    for (std::size_t d = 0; d < view.num_dims(); ++d) {
      for (std::size_t r = 0; r < view.num_rows(); ++r) {
        EXPECT_EQ(view.at(r, d), expected.at(r, d))
            << "block " << b << " row " << r << " dim " << d;
      }
    }
  }
}

TEST(MaterializeBlocksTest, ViewsAliasOneSharedStore) {
  Dataset data = IndexedDataset(30);
  Rng rng(22);
  BlockPlan plan = PartitionDisjoint(30, 5, &rng).value();
  BlockSet set = MaterializeBlocks(data, plan).value();
  // Every block's column pointer lies inside the one gathered store, at
  // its slice offset — no per-block copies.
  for (std::size_t b = 0; b < set.num_blocks(); ++b) {
    EXPECT_EQ(set.view(b).col(0),
              set.store->columns[0].data() + set.slices[b].offset);
    EXPECT_EQ(set.block(b).col(0),
              set.store->columns[0].data() + set.slices[b].offset);
  }
}

TEST(MaterializeBlocksTest, RejectsBadPlans) {
  Dataset data = IndexedDataset(10);
  EXPECT_FALSE(MaterializeBlocks(data, BlockPlan{}).ok());
  BlockPlan empty_block;
  empty_block.blocks = {{1, 2}, {}};
  EXPECT_FALSE(MaterializeBlocks(data, empty_block).ok());
  BlockPlan out_of_range;
  out_of_range.blocks = {{1, 2, 10}};
  EXPECT_FALSE(MaterializeBlocks(data, out_of_range).ok());
}

TEST(PartitionViewTest, DisjointViewMatchesPlanPathExactly) {
  Dataset data = IndexedDataset(53);
  // Same seed on both sides: the fused path must draw the identical RNG
  // stream and gather rows in the identical order.
  Rng plan_rng(33), view_rng(33);
  BlockPlan plan = PartitionDisjoint(53, 7, &plan_rng).value();
  BlockSet from_plan = MaterializeBlocks(data, plan).value();
  BlockSet fused = PartitionDisjointView(data, 7, &view_rng).value();
  ASSERT_EQ(fused.num_blocks(), from_plan.num_blocks());
  EXPECT_EQ(fused.gamma, from_plan.gamma);
  EXPECT_EQ(plan_rng.UniformUint64(1u << 30), view_rng.UniformUint64(1u << 30))
      << "the fused path consumed a different number of RNG draws";
  for (std::size_t b = 0; b < fused.num_blocks(); ++b) {
    ASSERT_EQ(fused.slices[b].length, from_plan.slices[b].length);
    for (std::size_t d = 0; d < data.num_dims(); ++d) {
      for (std::size_t r = 0; r < fused.slices[b].length; ++r) {
        ASSERT_EQ(fused.view(b).at(r, d), from_plan.view(b).at(r, d));
      }
    }
  }
}

TEST(PartitionViewTest, ResampledViewMatchesPlanPathExactly) {
  Dataset data = IndexedDataset(53);
  Rng plan_rng(34), view_rng(34);
  Arena scratch;
  BlockPlan plan = PartitionResampled(53, 10, 3, &plan_rng).value();
  BlockSet from_plan = MaterializeBlocks(data, plan).value();
  BlockSet fused = PartitionResampledView(data, 10, 3, &view_rng,
                                          &scratch).value();
  ASSERT_EQ(fused.num_blocks(), from_plan.num_blocks());
  EXPECT_EQ(fused.gamma, 3u);
  EXPECT_EQ(plan_rng.UniformUint64(1u << 30), view_rng.UniformUint64(1u << 30))
      << "the fused path consumed a different number of RNG draws";
  for (std::size_t b = 0; b < fused.num_blocks(); ++b) {
    ASSERT_EQ(fused.slices[b].length, from_plan.slices[b].length);
    for (std::size_t d = 0; d < data.num_dims(); ++d) {
      for (std::size_t r = 0; r < fused.slices[b].length; ++r) {
        ASSERT_EQ(fused.view(b).at(r, d), from_plan.view(b).at(r, d));
      }
    }
  }
}

TEST(PartitionViewTest, ArenaScratchIsReusableAcrossQueries) {
  Dataset data = IndexedDataset(100);
  Arena scratch;
  Rng rng(35);
  BlockSet first = PartitionDisjointView(data, 9, &rng, &scratch).value();
  // The BlockSet's store owns its rows — resetting the scratch arena (as
  // PartitionStage does at the start of the next query) must not disturb
  // the previous result.
  std::vector<double> before(first.store->columns[0]);
  scratch.Reset();
  BlockSet second =
      PartitionResampledView(data, 10, 2, &rng, &scratch).value();
  EXPECT_EQ(first.store->columns[0], before);
  EXPECT_EQ(second.num_blocks(), 2u * 10u);
}

TEST(PartitionViewTest, RejectsBadArguments) {
  Dataset data = IndexedDataset(10);
  Rng rng(36);
  EXPECT_FALSE(PartitionDisjointView(data, 0, &rng).ok());
  EXPECT_FALSE(PartitionDisjointView(data, 11, &rng).ok());
  EXPECT_FALSE(PartitionResampledView(data, 0, 1, &rng).ok());
  EXPECT_FALSE(PartitionResampledView(data, 11, 1, &rng).ok());
  EXPECT_FALSE(PartitionResampledView(data, 2, 0, &rng).ok());
}

// Property sweep: the resampled plan invariants hold across shapes.
struct ResampleParam {
  std::size_t n, beta, gamma;
};

class ResampleSweep : public ::testing::TestWithParam<ResampleParam> {};

TEST_P(ResampleSweep, MultiplicityAndBlockInvariants) {
  const auto& p = GetParam();
  Rng rng(99);
  auto plan = PartitionResampled(p.n, p.beta, p.gamma, &rng).value();
  std::map<std::size_t, std::size_t> counts;
  for (const auto& block : plan.blocks) {
    std::set<std::size_t> unique(block.begin(), block.end());
    ASSERT_EQ(unique.size(), block.size());  // no within-block duplicates
    for (std::size_t i : block) ++counts[i];
  }
  ASSERT_EQ(counts.size(), p.n);
  for (const auto& [idx, count] : counts) {
    EXPECT_EQ(count, p.gamma) << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ResampleSweep,
    ::testing::Values(ResampleParam{10, 1, 1}, ResampleParam{10, 10, 3},
                      ResampleParam{100, 9, 2}, ResampleParam{1000, 33, 7},
                      ResampleParam{17, 5, 4}));

}  // namespace
}  // namespace gupt
