#include "data/partitioner.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace gupt {
namespace {

TEST(PartitionDisjointTest, CoversEveryIndexExactlyOnce) {
  Rng rng(1);
  auto plan = PartitionDisjoint(100, 7, &rng).value();
  EXPECT_EQ(plan.num_blocks(), 7u);
  EXPECT_EQ(plan.gamma, 1u);
  std::map<std::size_t, int> counts;
  for (const auto& block : plan.blocks) {
    for (std::size_t i : block) ++counts[i];
  }
  EXPECT_EQ(counts.size(), 100u);
  for (const auto& [idx, count] : counts) {
    EXPECT_EQ(count, 1) << "index " << idx;
    EXPECT_LT(idx, 100u);
  }
}

TEST(PartitionDisjointTest, BlockSizesDifferByAtMostOne) {
  Rng rng(2);
  auto plan = PartitionDisjoint(100, 7, &rng).value();
  std::size_t min_size = 100, max_size = 0;
  for (const auto& block : plan.blocks) {
    min_size = std::min(min_size, block.size());
    max_size = std::max(max_size, block.size());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(PartitionDisjointTest, SingleBlockHoldsEverything) {
  Rng rng(3);
  auto plan = PartitionDisjoint(10, 1, &rng).value();
  EXPECT_EQ(plan.blocks[0].size(), 10u);
}

TEST(PartitionDisjointTest, NBlocksOfOne) {
  Rng rng(4);
  auto plan = PartitionDisjoint(10, 10, &rng).value();
  for (const auto& block : plan.blocks) EXPECT_EQ(block.size(), 1u);
}

TEST(PartitionDisjointTest, RejectsBadArguments) {
  Rng rng(5);
  EXPECT_FALSE(PartitionDisjoint(0, 1, &rng).ok());
  EXPECT_FALSE(PartitionDisjoint(10, 0, &rng).ok());
  EXPECT_FALSE(PartitionDisjoint(10, 11, &rng).ok());
}

TEST(PartitionDisjointTest, IsRandomized) {
  Rng rng(6);
  auto a = PartitionDisjoint(50, 5, &rng).value();
  auto b = PartitionDisjoint(50, 5, &rng).value();
  EXPECT_NE(a.blocks, b.blocks);
}

TEST(PartitionResampledTest, EveryRecordAppearsExactlyGammaTimes) {
  Rng rng(7);
  const std::size_t n = 60, beta = 10, gamma = 4;
  auto plan = PartitionResampled(n, beta, gamma, &rng).value();
  EXPECT_EQ(plan.gamma, gamma);
  EXPECT_EQ(plan.num_blocks(), gamma * (n / beta));
  std::map<std::size_t, std::size_t> counts;
  for (const auto& block : plan.blocks) {
    for (std::size_t i : block) ++counts[i];
  }
  EXPECT_EQ(counts.size(), n);
  for (const auto& [idx, count] : counts) {
    EXPECT_EQ(count, gamma) << "index " << idx;
  }
}

TEST(PartitionResampledTest, NoDuplicateWithinAnyBlock) {
  Rng rng(8);
  auto plan = PartitionResampled(50, 7, 5, &rng).value();
  for (const auto& block : plan.blocks) {
    std::set<std::size_t> unique(block.begin(), block.end());
    EXPECT_EQ(unique.size(), block.size());
  }
}

TEST(PartitionResampledTest, BlockSizeRespected) {
  Rng rng(9);
  const std::size_t n = 53, beta = 10;  // does not divide evenly
  auto plan = PartitionResampled(n, beta, 3, &rng).value();
  // Each group has ceil(53/10) = 6 blocks: five of size 10, one of size 3.
  EXPECT_EQ(plan.num_blocks(), 3u * 6u);
  for (const auto& block : plan.blocks) {
    EXPECT_LE(block.size(), beta);
    EXPECT_GE(block.size(), 1u);
  }
}

TEST(PartitionResampledTest, GammaOneMatchesDisjointSemantics) {
  Rng rng(10);
  auto plan = PartitionResampled(40, 8, 1, &rng).value();
  EXPECT_EQ(plan.num_blocks(), 5u);
  std::map<std::size_t, int> counts;
  for (const auto& block : plan.blocks) {
    for (std::size_t i : block) ++counts[i];
  }
  for (const auto& [idx, count] : counts) EXPECT_EQ(count, 1) << idx;
}

TEST(PartitionResampledTest, RejectsBadArguments) {
  Rng rng(11);
  EXPECT_FALSE(PartitionResampled(0, 1, 1, &rng).ok());
  EXPECT_FALSE(PartitionResampled(10, 0, 1, &rng).ok());
  EXPECT_FALSE(PartitionResampled(10, 11, 1, &rng).ok());
  EXPECT_FALSE(PartitionResampled(10, 2, 0, &rng).ok());
}

TEST(DefaultNumBlocksTest, FollowsNToThePointFour) {
  // 26733^0.4 ~= 58.7 -> 59 blocks.
  EXPECT_EQ(DefaultNumBlocks(26733), 59u);
  // 10000^0.4 ~= 39.8 -> 40.
  EXPECT_EQ(DefaultNumBlocks(10000), 40u);
}

TEST(DefaultNumBlocksTest, EdgeCases) {
  EXPECT_EQ(DefaultNumBlocks(0), 1u);
  EXPECT_EQ(DefaultNumBlocks(1), 1u);
  EXPECT_GE(DefaultNumBlocks(2), 1u);
  EXPECT_LE(DefaultNumBlocks(2), 2u);
}

// Property sweep: the resampled plan invariants hold across shapes.
struct ResampleParam {
  std::size_t n, beta, gamma;
};

class ResampleSweep : public ::testing::TestWithParam<ResampleParam> {};

TEST_P(ResampleSweep, MultiplicityAndBlockInvariants) {
  const auto& p = GetParam();
  Rng rng(99);
  auto plan = PartitionResampled(p.n, p.beta, p.gamma, &rng).value();
  std::map<std::size_t, std::size_t> counts;
  for (const auto& block : plan.blocks) {
    std::set<std::size_t> unique(block.begin(), block.end());
    ASSERT_EQ(unique.size(), block.size());  // no within-block duplicates
    for (std::size_t i : block) ++counts[i];
  }
  ASSERT_EQ(counts.size(), p.n);
  for (const auto& [idx, count] : counts) {
    EXPECT_EQ(count, p.gamma) << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ResampleSweep,
    ::testing::Values(ResampleParam{10, 1, 1}, ResampleParam{10, 10, 3},
                      ResampleParam{100, 9, 2}, ResampleParam{1000, 33, 7},
                      ResampleParam{17, 5, 4}));

}  // namespace
}  // namespace gupt
