#include "data/budget_store.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "testing/failpoints/failpoints.h"

namespace gupt {
namespace {

Dataset Tiny() { return Dataset::FromColumn({1.0, 2.0, 3.0}).value(); }

void FillManagerWithCharges(DatasetManager* out) {
  DatasetManager& manager = *out;
  DatasetOptions opts;
  opts.total_epsilon = 5.0;
  EXPECT_TRUE(manager.Register("alpha", Tiny(), opts).ok());
  opts.total_epsilon = 2.0;
  EXPECT_TRUE(manager.Register("beta", Tiny(), opts).ok());
  EXPECT_TRUE(
      manager.Get("alpha").value()->accountant().Charge(1.5, "q one").ok());
  EXPECT_TRUE(
      manager.Get("alpha").value()->accountant().Charge(0.5, "q two").ok());
  EXPECT_TRUE(
      manager.Get("beta").value()->accountant().Charge(0.25, "other").ok());
}

void FillFreshManager(DatasetManager* out) {
  DatasetManager& manager = *out;
  DatasetOptions opts;
  opts.total_epsilon = 5.0;
  EXPECT_TRUE(manager.Register("alpha", Tiny(), opts).ok());
  opts.total_epsilon = 2.0;
  EXPECT_TRUE(manager.Register("beta", Tiny(), opts).ok());
}

TEST(BudgetStoreTest, RoundTripRestoresSpending) {
  DatasetManager original;
  FillManagerWithCharges(&original);
  std::string text = SerializeBudgets(original);

  DatasetManager restored;
  FillFreshManager(&restored);
  ASSERT_TRUE(RestoreBudgets(&restored, text).ok());

  auto alpha = restored.Get("alpha").value();
  EXPECT_DOUBLE_EQ(alpha->accountant().spent_epsilon(), 2.0);
  EXPECT_EQ(alpha->accountant().num_charges(), 2u);
  auto charges = alpha->accountant().charges();
  EXPECT_EQ(charges[0].label, "q one");  // labels with spaces survive
  EXPECT_DOUBLE_EQ(charges[1].epsilon, 0.5);

  auto beta = restored.Get("beta").value();
  EXPECT_DOUBLE_EQ(beta->accountant().spent_epsilon(), 0.25);
}

TEST(BudgetStoreTest, RestoredLedgerKeepsEnforcing) {
  DatasetManager original;
  FillManagerWithCharges(&original);
  DatasetManager restored;
  FillFreshManager(&restored);
  ASSERT_TRUE(RestoreBudgets(&restored, SerializeBudgets(original)).ok());
  auto& accountant = restored.Get("alpha").value()->accountant();
  // 2.0 of 5.0 spent: 3.5 must be refused, 3.0 admitted.
  EXPECT_FALSE(accountant.Charge(3.5, "too much").ok());
  EXPECT_TRUE(accountant.Charge(3.0, "exact fit").ok());
}

TEST(BudgetStoreTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/gupt_ledger_test.txt";
  DatasetManager original;
  FillManagerWithCharges(&original);
  ASSERT_TRUE(SaveBudgets(original, path).ok());

  DatasetManager restored;
  FillFreshManager(&restored);
  ASSERT_TRUE(LoadBudgets(&restored, path).ok());
  EXPECT_DOUBLE_EQ(
      restored.Get("alpha").value()->accountant().spent_epsilon(), 2.0);
  std::remove(path.c_str());
}

TEST(BudgetStoreTest, LoadMissingFileIsNotFound) {
  DatasetManager manager;
  FillFreshManager(&manager);
  EXPECT_EQ(LoadBudgets(&manager, "/nonexistent/ledger").code(),
            StatusCode::kNotFound);
}

TEST(BudgetStoreTest, FailsClosedOnUnknownDataset) {
  DatasetManager original;
  FillManagerWithCharges(&original);
  std::string text = SerializeBudgets(original);
  DatasetManager missing_beta;
  DatasetOptions opts;
  opts.total_epsilon = 5.0;
  ASSERT_TRUE(missing_beta.Register("alpha", Tiny(), opts).ok());
  EXPECT_EQ(RestoreBudgets(&missing_beta, text).code(),
            StatusCode::kNotFound);
}

TEST(BudgetStoreTest, FailsClosedOnTotalMismatch) {
  DatasetManager original;
  FillManagerWithCharges(&original);
  std::string text = SerializeBudgets(original);
  DatasetManager wrong_total;
  DatasetOptions opts;
  opts.total_epsilon = 99.0;  // alpha was registered with 5.0
  ASSERT_TRUE(wrong_total.Register("alpha", Tiny(), opts).ok());
  opts.total_epsilon = 2.0;
  ASSERT_TRUE(wrong_total.Register("beta", Tiny(), opts).ok());
  EXPECT_EQ(RestoreBudgets(&wrong_total, text).code(),
            StatusCode::kInvalidArgument);
}

TEST(BudgetStoreTest, FailsClosedOnAlreadyChargedLedger) {
  DatasetManager original;
  FillManagerWithCharges(&original);
  std::string text = SerializeBudgets(original);
  DatasetManager dirty;
  FillFreshManager(&dirty);
  ASSERT_TRUE(
      dirty.Get("alpha").value()->accountant().Charge(0.1, "pre").ok());
  EXPECT_FALSE(RestoreBudgets(&dirty, text).ok());
}

TEST(BudgetStoreTest, RejectsGarbage) {
  DatasetManager manager;
  FillFreshManager(&manager);
  EXPECT_EQ(RestoreBudgets(&manager, "not a ledger").code(),
            StatusCode::kParseError);
  EXPECT_FALSE(
      RestoreBudgets(&manager, "gupt-ledger v1\ncharge 0.5 orphan\n").ok());
  EXPECT_FALSE(
      RestoreBudgets(&manager, "gupt-ledger v1\nbogus line here\n").ok());
  EXPECT_FALSE(
      RestoreBudgets(&manager, "gupt-ledger v1\ndataset alpha banana 5\n")
          .ok());
}

TEST(BudgetStoreTest, CommentsAndBlankLinesIgnored) {
  DatasetManager manager;
  FillFreshManager(&manager);
  std::string text =
      "gupt-ledger v1\n"
      "# a comment\n"
      "\n"
      "dataset alpha total 5\n"
      "charge 1 first\n";
  ASSERT_TRUE(RestoreBudgets(&manager, text).ok());
  EXPECT_DOUBLE_EQ(
      manager.Get("alpha").value()->accountant().spent_epsilon(), 1.0);
}

TEST(BudgetStoreTest, InjectedSaveFaultNeverUnchargesTheAccountant) {
  if (!failpoints::CompiledIn()) {
    GTEST_SKIP() << "built with GUPT_FAILPOINTS_ENABLED=OFF";
  }
  failpoints::DisarmAll();
  // A failed persist is an operator problem, not a privacy refund: the
  // in-memory accountant keeps every charge, and the on-disk file is
  // either the previous consistent snapshot or absent — never a torn
  // write that under-reports spending.
  std::string path = ::testing::TempDir() + "/gupt_ledger_fault_test.txt";
  std::remove(path.c_str());
  DatasetManager manager;
  FillManagerWithCharges(&manager);
  {
    failpoints::ScopedFailpoint fp("data.budget_store.save",
                                   failpoints::Config{});
    Status saved = SaveBudgets(manager, path);
    ASSERT_FALSE(saved.ok());
    EXPECT_TRUE(failpoints::IsInjected(saved));
    EXPECT_EQ(fp.fires(), 1u);
  }
  EXPECT_DOUBLE_EQ(
      manager.Get("alpha").value()->accountant().spent_epsilon(), 2.0);
  // The injected failure fired before the write: no file was created.
  FILE* file = std::fopen(path.c_str(), "r");
  EXPECT_EQ(file, nullptr);
  if (file != nullptr) std::fclose(file);

  // Disarmed, the same save lands and replays cleanly.
  ASSERT_TRUE(SaveBudgets(manager, path).ok());
  DatasetManager restored;
  FillFreshManager(&restored);
  ASSERT_TRUE(LoadBudgets(&restored, path).ok());
  EXPECT_DOUBLE_EQ(
      restored.Get("alpha").value()->accountant().spent_epsilon(), 2.0);
  std::remove(path.c_str());
}

TEST(BudgetStoreTest, InjectedLoadFaultLeavesTheManagerUntouched) {
  if (!failpoints::CompiledIn()) {
    GTEST_SKIP() << "built with GUPT_FAILPOINTS_ENABLED=OFF";
  }
  failpoints::DisarmAll();
  std::string path = ::testing::TempDir() + "/gupt_ledger_fault_test2.txt";
  DatasetManager original;
  FillManagerWithCharges(&original);
  ASSERT_TRUE(SaveBudgets(original, path).ok());

  DatasetManager restored;
  FillFreshManager(&restored);
  {
    failpoints::ScopedFailpoint fp("data.budget_store.load",
                                   failpoints::Config{});
    Status loaded = LoadBudgets(&restored, path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_TRUE(failpoints::IsInjected(loaded));
  }
  // Fail closed: no partial replay reached the ledgers.
  EXPECT_DOUBLE_EQ(
      restored.Get("alpha").value()->accountant().spent_epsilon(), 0.0);
  EXPECT_DOUBLE_EQ(
      restored.Get("beta").value()->accountant().spent_epsilon(), 0.0);

  // Disarmed, the restore succeeds against the same (still fresh) manager.
  ASSERT_TRUE(LoadBudgets(&restored, path).ok());
  EXPECT_DOUBLE_EQ(
      restored.Get("alpha").value()->accountant().spent_epsilon(), 2.0);
  std::remove(path.c_str());
}

TEST(BudgetStoreTest, EmptyManagerSerializesHeaderOnly) {
  DatasetManager manager;
  EXPECT_EQ(SerializeBudgets(manager), "gupt-ledger v1\n");
  // And restoring a header-only ledger into anything is a no-op success.
  DatasetManager other;
  FillFreshManager(&other);
  EXPECT_TRUE(RestoreBudgets(&other, "gupt-ledger v1\n").ok());
}

}  // namespace
}  // namespace gupt
