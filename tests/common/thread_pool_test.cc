#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace gupt {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroItems) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  pool.ParallelFor(4, [&](std::size_t) {
    int now = concurrent.fetch_add(1) + 1;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    concurrent.fetch_sub(1);
  });
  EXPECT_GT(peak.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SequentialWavesOfWork) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

}  // namespace
}  // namespace gupt
