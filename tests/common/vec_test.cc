#include "common/vec.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gupt {
namespace {

TEST(VecTest, Dot) {
  EXPECT_DOUBLE_EQ(vec::Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(vec::Dot({}, {}), 0.0);
}

TEST(VecTest, SquaredDistance) {
  EXPECT_DOUBLE_EQ(vec::SquaredDistance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(vec::SquaredDistance({1, 1}, {1, 1}), 0.0);
}

TEST(VecTest, Norm) {
  EXPECT_DOUBLE_EQ(vec::Norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(vec::Norm({0, 0, 0}), 0.0);
}

TEST(VecTest, AddSubScale) {
  Row a = {1, 2}, b = {10, 20};
  EXPECT_EQ(vec::Add(a, b), (Row{11, 22}));
  EXPECT_EQ(vec::Sub(b, a), (Row{9, 18}));
  EXPECT_EQ(vec::Scale(a, 3.0), (Row{3, 6}));
}

TEST(VecTest, InPlaceOps) {
  Row a = {1, 2};
  vec::AddInPlace(&a, {4, 5});
  EXPECT_EQ(a, (Row{5, 7}));
  vec::ScaleInPlace(&a, 2.0);
  EXPECT_EQ(a, (Row{10, 14}));
}

TEST(VecTest, ClampScalar) {
  EXPECT_DOUBLE_EQ(vec::ClampScalar(5.0, 0.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(vec::ClampScalar(-1.0, 0.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(vec::ClampScalar(2.0, 0.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(vec::ClampScalar(2.0, 2.0, 2.0), 2.0);
}

TEST(VecTest, ClampVector) {
  Row v = {-5, 0.5, 10};
  Row lo = {0, 0, 0}, hi = {1, 1, 1};
  EXPECT_EQ(vec::Clamp(v, lo, hi), (Row{0, 0.5, 1}));
}

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(stats::Mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(stats::Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stats::Mean({-1, 1}), 0.0);
}

TEST(StatsTest, VarianceBasics) {
  EXPECT_DOUBLE_EQ(stats::Variance({5, 5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(stats::Variance({1}), 0.0);
  EXPECT_DOUBLE_EQ(stats::Variance({}), 0.0);
  // Population variance of {2, 4} is 1.
  EXPECT_DOUBLE_EQ(stats::Variance({2, 4}), 1.0);
}

TEST(StatsTest, StdDev) {
  EXPECT_DOUBLE_EQ(stats::StdDev({2, 4}), 1.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(stats::Quantile(xs, 0.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(stats::Quantile(xs, 1.0).value(), 4.0);
  EXPECT_DOUBLE_EQ(stats::Quantile(xs, 0.5).value(), 2.5);
  EXPECT_DOUBLE_EQ(stats::Quantile({7}, 0.5).value(), 7.0);
}

TEST(StatsTest, QuantileSortsInput) {
  EXPECT_DOUBLE_EQ(stats::Quantile({9, 1, 5}, 0.5).value(), 5.0);
}

TEST(StatsTest, QuantileErrors) {
  EXPECT_FALSE(stats::Quantile({}, 0.5).ok());
  EXPECT_FALSE(stats::Quantile({1.0}, -0.1).ok());
  EXPECT_FALSE(stats::Quantile({1.0}, 1.1).ok());
}

TEST(StatsTest, Rmse) {
  EXPECT_DOUBLE_EQ(stats::Rmse({1, 2}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(stats::Rmse({0, 0}, {3, 4}), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(stats::Rmse({}, {}), 0.0);
}

TEST(StatsTest, MeanRows) {
  std::vector<Row> rows = {{1, 10}, {3, 30}};
  Row mean = stats::MeanRows(rows).value();
  EXPECT_EQ(mean, (Row{2, 20}));
}

TEST(StatsTest, MeanRowsErrors) {
  EXPECT_FALSE(stats::MeanRows({}).ok());
  EXPECT_FALSE(stats::MeanRows({{1, 2}, {1}}).ok());
}

}  // namespace
}  // namespace gupt
