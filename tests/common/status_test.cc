#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace gupt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::BudgetExhausted("x").code(), StatusCode::kBudgetExhausted);
  EXPECT_EQ(Status::PolicyViolation("x").code(), StatusCode::kPolicyViolation);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::ParseError("a"));
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::ParseError("line 3");
  EXPECT_EQ(os.str(), "ParseError: line 3");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kBudgetExhausted),
               "BudgetExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kPolicyViolation),
               "PolicyViolation");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok(7);
  Result<int> err(Status::Internal("boom"));
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

namespace macros {

Status FailWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  GUPT_RETURN_IF_ERROR(FailWhenNegative(x));
  return Status::OK();
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  GUPT_ASSIGN_OR_RETURN(int h, Half(x));
  GUPT_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

}  // namespace macros

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(macros::Chain(1).ok());
  EXPECT_EQ(macros::Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = macros::Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_FALSE(macros::Quarter(6).ok());  // 6/2=3 is odd at the second step
  EXPECT_FALSE(macros::Quarter(5).ok());
}

}  // namespace
}  // namespace gupt
