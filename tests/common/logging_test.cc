#include "common/logging.h"

#include <gtest/gtest.h>

#include <vector>

namespace gupt {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::Get().set_min_level(LogLevel::kDebug);
    Logger::Get().set_sink([this](LogLevel level, const std::string& msg) {
      captured_.emplace_back(level, msg);
    });
  }
  void TearDown() override {
    Logger::Get().set_sink(nullptr);
    Logger::Get().set_min_level(LogLevel::kWarning);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, CapturesMessageAndLevel) {
  GUPT_LOG(kInfo) << "hello " << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "hello 42");
}

TEST_F(LoggingTest, FiltersBelowMinLevel) {
  Logger::Get().set_min_level(LogLevel::kError);
  GUPT_LOG(kDebug) << "dropped";
  GUPT_LOG(kWarning) << "dropped too";
  GUPT_LOG(kError) << "kept";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "kept");
}

TEST_F(LoggingTest, MinLevelAccessor) {
  Logger::Get().set_min_level(LogLevel::kInfo);
  EXPECT_EQ(Logger::Get().min_level(), LogLevel::kInfo);
}

TEST_F(LoggingTest, MultipleMessagesInOrder) {
  GUPT_LOG(kInfo) << "first";
  GUPT_LOG(kWarning) << "second";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].second, "first");
  EXPECT_EQ(captured_[1].second, "second");
}

}  // namespace
}  // namespace gupt
