#include "common/logging.h"

#include <gtest/gtest.h>

#include <vector>

namespace gupt {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::Get().set_min_level(LogLevel::kDebug);
    Logger::Get().set_sink([this](LogLevel level, const std::string& msg) {
      captured_.emplace_back(level, msg);
    });
  }
  void TearDown() override {
    Logger::Get().set_sink(nullptr);
    Logger::Get().set_min_level(LogLevel::kWarning);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, CapturesMessageAndLevel) {
  GUPT_LOG(kInfo) << "hello " << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "hello 42");
}

TEST_F(LoggingTest, FiltersBelowMinLevel) {
  Logger::Get().set_min_level(LogLevel::kError);
  GUPT_LOG(kDebug) << "dropped";
  GUPT_LOG(kWarning) << "dropped too";
  GUPT_LOG(kError) << "kept";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "kept");
}

TEST_F(LoggingTest, MinLevelAccessor) {
  Logger::Get().set_min_level(LogLevel::kInfo);
  EXPECT_EQ(Logger::Get().min_level(), LogLevel::kInfo);
}

TEST_F(LoggingTest, MultipleMessagesInOrder) {
  GUPT_LOG(kInfo) << "first";
  GUPT_LOG(kWarning) << "second";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].second, "first");
  EXPECT_EQ(captured_[1].second, "second");
}

TEST(ParseLogLevelTest, AcceptsKnownNamesCaseInsensitively) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("Warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("ERROR"), LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("verbose").has_value());
  EXPECT_FALSE(ParseLogLevel("").has_value());
  EXPECT_FALSE(ParseLogLevel("warn ").has_value());
}

TEST(FormatLogLineTest, PrefixesTimestampLevelAndThreadId) {
  std::string line = internal::FormatLogLine(LogLevel::kWarning, "disk full");
  // "[YYYY-MM-DDTHH:MM:SS.mmmZ WARN tid=<id>] disk full"
  ASSERT_GE(line.size(), 36u);
  EXPECT_EQ(line.front(), '[');
  EXPECT_EQ(line.substr(line.size() - 11), "] disk full");
  EXPECT_NE(line.find("Z WARN tid="), std::string::npos);
  // ISO-8601 shape: digits and separators in the expected positions.
  EXPECT_EQ(line[5], '-');
  EXPECT_EQ(line[8], '-');
  EXPECT_EQ(line[11], 'T');
  EXPECT_EQ(line[14], ':');
  EXPECT_EQ(line[17], ':');
  EXPECT_EQ(line[20], '.');
  EXPECT_EQ(line[24], 'Z');
}

TEST(FormatLogLineTest, LevelTagsDiffer) {
  EXPECT_NE(internal::FormatLogLine(LogLevel::kDebug, "m").find(" DEBUG "),
            std::string::npos);
  EXPECT_NE(internal::FormatLogLine(LogLevel::kInfo, "m").find(" INFO "),
            std::string::npos);
  EXPECT_NE(internal::FormatLogLine(LogLevel::kError, "m").find(" ERROR "),
            std::string::npos);
}

}  // namespace
}  // namespace gupt
