#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace gupt {
namespace {

TEST(ArenaTest, AllocationsAreDisjointAndWritable) {
  Arena arena;
  double* a = arena.AllocateArray<double>(100);
  double* b = arena.AllocateArray<double>(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (int i = 0; i < 100; ++i) {
    a[i] = 1.0 + i;
    b[i] = -1.0 - i;
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a[i], 1.0 + i);
    EXPECT_EQ(b[i], -1.0 - i);
  }
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena;
  // Interleave odd-sized byte allocations with aligned ones.
  for (int i = 0; i < 50; ++i) {
    void* raw = arena.Allocate(3, 1);
    ASSERT_NE(raw, nullptr);
    auto* d = arena.AllocateArray<double>(1);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
    auto* u = static_cast<std::uint64_t*>(
        arena.Allocate(sizeof(std::uint64_t), alignof(std::uint64_t)));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(u) % alignof(std::uint64_t),
              0u);
  }
}

TEST(ArenaTest, ZeroByteAllocationIsValid) {
  Arena arena;
  EXPECT_NE(arena.Allocate(0), nullptr);
}

TEST(ArenaTest, GrowsBeyondInitialChunk) {
  Arena arena(/*initial_chunk_bytes=*/128);
  // Far more than one 128-byte chunk can hold.
  std::vector<std::uint32_t*> blocks;
  for (int i = 0; i < 64; ++i) {
    std::uint32_t* p = arena.AllocateArray<std::uint32_t>(64);  // 256 bytes
    ASSERT_NE(p, nullptr);
    for (int j = 0; j < 64; ++j) p[j] = static_cast<std::uint32_t>(i);
    blocks.push_back(p);
  }
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 64; ++j) {
      EXPECT_EQ(blocks[i][j], static_cast<std::uint32_t>(i));
    }
  }
  EXPECT_GE(arena.bytes_allocated(), 64u * 256u);
}

TEST(ArenaTest, ResetRecyclesWithoutNewReservation) {
  Arena arena(/*initial_chunk_bytes=*/256);
  for (int i = 0; i < 16; ++i) arena.AllocateArray<double>(100);
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);

  // Steady state: the same allocation pattern after Reset must be served
  // entirely from the retained chunks.
  for (int round = 0; round < 10; ++round) {
    arena.Reset();
    EXPECT_EQ(arena.bytes_allocated(), 0u);
    for (int i = 0; i < 16; ++i) arena.AllocateArray<double>(100);
    EXPECT_EQ(arena.bytes_reserved(), reserved);
  }
}

TEST(ArenaTest, ReleaseDropsReservation) {
  Arena arena;
  arena.AllocateArray<double>(1000);
  EXPECT_GT(arena.bytes_reserved(), 0u);
  arena.Release();
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // Still usable after Release.
  double* p = arena.AllocateArray<double>(10);
  ASSERT_NE(p, nullptr);
  p[9] = 42.0;
  EXPECT_EQ(p[9], 42.0);
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedChunk) {
  Arena arena(/*initial_chunk_bytes=*/64);
  // Larger than kMaxChunkBytes-doubling would ever reach in one step.
  const std::size_t big = (16u << 20) / sizeof(double);  // 16 MB
  double* p = arena.AllocateArray<double>(big);
  ASSERT_NE(p, nullptr);
  p[0] = 1.0;
  p[big - 1] = 2.0;
  EXPECT_EQ(p[0], 1.0);
  EXPECT_EQ(p[big - 1], 2.0);
}

}  // namespace
}  // namespace gupt
