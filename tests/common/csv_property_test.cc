// Property sweep: random numeric tables round-trip through Format/Parse
// bit-exactly across shapes and magnitudes.

#include <gtest/gtest.h>

#include <cmath>

#include "common/csv.h"
#include "common/rng.h"

namespace gupt {
namespace {

struct TableShape {
  std::size_t rows, cols;
  double magnitude;
  bool header;
};

class CsvRoundTripSweep : public ::testing::TestWithParam<TableShape> {};

TEST_P(CsvRoundTripSweep, FormatParseIsIdentity) {
  const TableShape& shape = GetParam();
  Rng rng(shape.rows * 131 + shape.cols);
  csv::Table table;
  if (shape.header) {
    for (std::size_t c = 0; c < shape.cols; ++c) {
      table.column_names.push_back("col" + std::to_string(c));
    }
  }
  for (std::size_t r = 0; r < shape.rows; ++r) {
    Row row(shape.cols);
    for (double& v : row) {
      // Mix of magnitudes, signs, and exact small integers.
      switch (rng.UniformUint64(4)) {
        case 0:
          v = rng.Gaussian(0.0, shape.magnitude);
          break;
        case 1:
          v = static_cast<double>(rng.UniformUint64(1000));
          break;
        case 2:
          v = -rng.UniformDoublePositive() * shape.magnitude;
          break;
        default:
          v = rng.UniformDouble() * 1e-9;
      }
    }
    table.rows.push_back(std::move(row));
  }

  auto parsed = csv::Parse(csv::Format(table), shape.header);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->column_names, table.column_names);
  ASSERT_EQ(parsed->rows.size(), table.rows.size());
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    for (std::size_t c = 0; c < shape.cols; ++c) {
      // 17 significant digits round-trip doubles exactly.
      EXPECT_EQ(parsed->rows[r][c], table.rows[r][c])
          << "row " << r << " col " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CsvRoundTripSweep,
    ::testing::Values(TableShape{1, 1, 1.0, false},
                      TableShape{10, 3, 1e6, true},
                      TableShape{100, 1, 1e-6, false},
                      TableShape{50, 8, 1e12, true},
                      TableShape{200, 2, 1.0, true}));

// RNG stream independence sweep: distinct (seed, stream) pairs should not
// produce colliding outputs.
struct StreamPair {
  std::uint64_t seed_a, stream_a, seed_b, stream_b;
};

class RngStreamSweep : public ::testing::TestWithParam<StreamPair> {};

TEST_P(RngStreamSweep, StreamsDoNotCollide) {
  const StreamPair& p = GetParam();
  Rng a(p.seed_a, p.stream_a), b(p.seed_b, p.stream_b);
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, RngStreamSweep,
    ::testing::Values(StreamPair{0, 0, 0, 1}, StreamPair{0, 0, 1, 0},
                      StreamPair{42, 7, 42, 8}, StreamPair{1, 2, 2, 1},
                      StreamPair{0xFFFFFFFFFFFFFFFFULL, 0, 0, 0}));

}  // namespace
}  // namespace gupt
