#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace gupt {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, DifferentStreamsDiverge) {
  Rng a(7, 0), b(7, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoublePositiveNeverZero) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.UniformDoublePositive(), 0.0);
  }
}

TEST(RngTest, UniformDoubleRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(RngTest, UniformUint64RespectsBound) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformUint64(13), 13u);
  }
}

TEST(RngTest, UniformUint64CoversAllResidues) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformUint64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, LaplaceIsCenteredWithCorrectSpread) {
  Rng rng(31);
  const double scale = 2.5;
  const int n = 200000;
  double sum = 0.0, abs_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Laplace(scale);
    sum += x;
    abs_sum += std::fabs(x);
  }
  // Laplace(b): mean 0, E|X| = b.
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(abs_sum / n, scale, 0.05);
}

TEST(RngTest, LaplaceVarianceIsTwoBSquared) {
  Rng rng(37);
  const double scale = 1.5;
  const int n = 200000;
  double sq_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Laplace(scale);
    sq_sum += x * x;
  }
  EXPECT_NEAR(sq_sum / n, 2.0 * scale * scale, 0.15);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(41);
  const int n = 200000;
  double sum = 0.0, sq_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Gaussian();
    sum += x;
    sq_sum += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq_sum / n, 1.0, 0.02);
}

TEST(RngTest, GaussianShiftScale) {
  Rng rng(43);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 3.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(47);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(53);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(59);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalSingleElement) {
  Rng rng(61);
  EXPECT_EQ(rng.Categorical({5.0}), 0u);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(67);
  for (std::size_t n : {1u, 2u, 17u, 100u}) {
    std::vector<std::size_t> perm = rng.Permutation(n);
    ASSERT_EQ(perm.size(), n);
    std::set<std::size_t> unique(perm.begin(), perm.end());
    EXPECT_EQ(unique.size(), n);
    EXPECT_EQ(*unique.begin(), 0u);
    EXPECT_EQ(*unique.rbegin(), n - 1);
  }
}

TEST(RngTest, PermutationOfZeroIsEmpty) {
  Rng rng(67);
  EXPECT_TRUE(rng.Permutation(0).empty());
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(71);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(101);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForksAreMutuallyIndependent) {
  Rng parent(103);
  Rng a = parent.Fork();
  Rng b = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// Property sweep: Laplace E|X| tracks the scale parameter across magnitudes.
class LaplaceScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(LaplaceScaleSweep, MeanAbsoluteDeviationMatchesScale) {
  const double scale = GetParam();
  Rng rng(997);
  const int n = 100000;
  double abs_sum = 0.0;
  for (int i = 0; i < n; ++i) abs_sum += std::fabs(rng.Laplace(scale));
  EXPECT_NEAR(abs_sum / n / scale, 1.0, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Scales, LaplaceScaleSweep,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0, 1000.0));

}  // namespace
}  // namespace gupt
