#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace gupt {
namespace {

TEST(CsvTest, ParsesRowsWithoutHeader) {
  auto table = csv::Parse("1,2\n3,4\n", /*has_header=*/false);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->column_names.empty());
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[0], (Row{1, 2}));
  EXPECT_EQ(table->rows[1], (Row{3, 4}));
}

TEST(CsvTest, ParsesHeader) {
  auto table = csv::Parse("age,income\n30,1000\n", /*has_header=*/true);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->column_names.size(), 2u);
  EXPECT_EQ(table->column_names[0], "age");
  EXPECT_EQ(table->column_names[1], "income");
  ASSERT_EQ(table->rows.size(), 1u);
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  auto table = csv::Parse("# comment\n\n1,2\n   \n3,4\n", false);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 2u);
}

TEST(CsvTest, HandlesWhitespaceAroundFields) {
  auto table = csv::Parse(" 1 , 2 \r\n", false);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0], (Row{1, 2}));
}

TEST(CsvTest, ParsesScientificNotationAndNegatives) {
  auto table = csv::Parse("-1.5,2e3,0.25\n", false);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0], (Row{-1.5, 2000.0, 0.25}));
}

TEST(CsvTest, RejectsMalformedNumber) {
  auto table = csv::Parse("1,abc\n", false);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, RejectsRaggedRows) {
  auto table = csv::Parse("1,2\n3\n", false);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, RejectsRowNotMatchingHeader) {
  auto table = csv::Parse("a,b\n1\n", true);
  EXPECT_FALSE(table.ok());
}

TEST(CsvTest, RejectsEmptyTrailingField) {
  auto table = csv::Parse("1,2,\n", false);
  EXPECT_FALSE(table.ok());
}

TEST(CsvTest, EmptyInputYieldsEmptyTable) {
  auto table = csv::Parse("", false);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->rows.empty());
}

TEST(CsvTest, RoundTripsThroughFormat) {
  csv::Table table;
  table.column_names = {"x", "y"};
  table.rows = {{1.25, -3.0}, {0.0, 42.0}};
  auto parsed = csv::Parse(csv::Format(table), /*has_header=*/true);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->column_names, table.column_names);
  EXPECT_EQ(parsed->rows, table.rows);
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/gupt_csv_test.csv";
  csv::Table table;
  table.rows = {{1, 2}, {3, 4}};
  ASSERT_TRUE(csv::WriteFile(path, table).ok());
  auto read = csv::ReadFile(path, /*has_header=*/false);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->rows, table.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileIsNotFound) {
  auto read = csv::ReadFile("/nonexistent/gupt.csv", false);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace gupt
