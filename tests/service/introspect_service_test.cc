// Tests for the live introspection server embedded in GuptService: scraping
// /metrics over a real socket, /budgetz agreeing exactly with the
// accountant under concurrent submission, /healthz flipping with admission
// backpressure, and /tracez rendering a gamma>1 fan-out across worker
// lanes.

#include "service/gupt_service.h"

#include <future>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/introspect/http_client.h"
#include "../obs/minijson.h"

namespace gupt {
namespace {

using ::gupt::obs::introspect::HttpGet;
using ::gupt::obs::introspect::HttpGetResult;
using ::gupt::testjson::JsonValue;
using ::gupt::testjson::ParseJson;

Dataset Ages(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(40.0, 10.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

QueryRequest MeanRequest(double epsilon) {
  QueryRequest request;
  request.analyst = "alice";
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = epsilon;
  request.range_mode = RangeMode::kTight;
  request.output_ranges = {Range{0.0, 150.0}};
  return request;
}

std::unique_ptr<GuptService> MakeServingService(ServiceOptions options,
                                                double budget = 5.0) {
  options.introspect_port = 0;  // ephemeral
  auto service = std::make_unique<GuptService>(
      std::move(options), ProgramRegistry::WithStandardPrograms());
  EXPECT_GT(service->introspect_port(), 0);
  DatasetOptions ds;
  ds.total_epsilon = budget;
  EXPECT_TRUE(service->RegisterDataset("ages", Ages(5000, 1), ds).ok());
  return service;
}

/// C++ mirror of tools/check_metrics_names.py --payload: the sample name
/// must be gupt_<...>_<unit> (>= 4 words, known unit), allowing the
/// _bucket/_sum/_count suffixes Prometheus histograms append.
bool ValidPayloadSampleName(std::string name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s(suffix);
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      const std::string base = name.substr(0, name.size() - s.size());
      if (ValidPayloadSampleName(base)) return true;
    }
  }
  static const std::set<std::string> kUnits = {
      "seconds", "bytes", "total", "count", "ratio", "epsilon", "scale",
      "depth"};
  std::vector<std::string> words;
  std::string word;
  for (char c : name) {
    if (c == '_') {
      if (word.empty()) return false;  // double underscore
      words.push_back(word);
      word.clear();
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      word += c;
    } else {
      return false;
    }
  }
  if (word.empty()) return false;
  words.push_back(word);
  return words.size() >= 4 && words.front() == "gupt" &&
         kUnits.count(words.back()) > 0;
}

TEST(IntrospectServiceTest, MetricsScrapeIsValidAndEveryNamePassesTheLint) {
  auto service = MakeServingService(ServiceOptions{});
  ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.5)).ok());

  HttpGetResult scrape =
      HttpGet("127.0.0.1", service->introspect_port(), "/metrics");
  ASSERT_TRUE(scrape.ok) << scrape.error;
  ASSERT_EQ(scrape.status, 200);
  EXPECT_NE(scrape.content_type.find("text/plain"), std::string::npos);

  // Key series from every layer must be present in the scrape.
  for (const char* needle :
       {"gupt_runtime_queries_total", "gupt_dp_epsilon_charged_total",
        "gupt_service_requests_total", "gupt_introspect_requests_total",
        "gupt_exec_block_duration_seconds"}) {
    EXPECT_NE(scrape.body.find(needle), std::string::npos)
        << "missing " << needle;
  }

  // Every sample line's name must follow the naming convention.
  std::istringstream lines(scrape.body);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::size_t end = line.find_first_of("{ ");
    const std::string name = line.substr(0, end);
    ++samples;
    EXPECT_TRUE(ValidPayloadSampleName(name)) << "bad sample name: " << name;
  }
  EXPECT_GT(samples, 0u);
}

TEST(IntrospectServiceTest, BudgetzMatchesAccountantExactlyAfterAsyncBatch) {
  ServiceOptions options;
  options.admission_workers = 4;
  auto service = MakeServingService(options, /*budget=*/10.0);

  // 8 threads x 4 submissions x epsilon 0.25: all fit in the budget.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  std::vector<std::thread> analysts;
  std::vector<std::vector<std::future<Result<QueryReport>>>> futures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    analysts.emplace_back([&service, &futures, t] {
      for (int i = 0; i < kPerThread; ++i) {
        futures[t].push_back(service->SubmitQueryAsync(MeanRequest(0.25)));
      }
    });
  }
  for (std::thread& analyst : analysts) analyst.join();
  for (auto& per_thread : futures) {
    for (auto& future : per_thread) {
      ASSERT_TRUE(future.get().ok());
    }
  }

  HttpGetResult scrape = HttpGet("127.0.0.1", service->introspect_port(),
                                 "/budgetz?format=json");
  ASSERT_TRUE(scrape.ok) << scrape.error;
  ASSERT_EQ(scrape.status, 200);
  EXPECT_NE(scrape.content_type.find("application/json"), std::string::npos);

  JsonValue root;
  ASSERT_TRUE(ParseJson(scrape.body, &root)) << scrape.body;
  const JsonValue* datasets = root.Find("datasets");
  ASSERT_NE(datasets, nullptr);
  ASSERT_EQ(datasets->array.size(), 1u);
  const JsonValue& entry = datasets->array[0];
  EXPECT_EQ(entry.Find("dataset")->string, "ages");

  // Exact equality, not approximate: /budgetz publishes the same doubles
  // the accountant holds (17-digit round-trip formatting), and 32 x 0.25
  // is exact in binary floating point.
  const double spent = 0.25 * kThreads * kPerThread;
  EXPECT_EQ(entry.Find("total_epsilon")->number, 10.0);
  EXPECT_EQ(entry.Find("spent_epsilon")->number, spent);
  EXPECT_EQ(entry.Find("remaining_epsilon")->number,
            service->RemainingBudget("ages").value());
  EXPECT_EQ(entry.Find("remaining_epsilon")->number, 10.0 - spent);
  const JsonValue* charges = entry.Find("charges");
  ASSERT_NE(charges, nullptr);
  ASSERT_EQ(charges->array.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  double charge_sum = 0.0;
  for (const JsonValue& charge : charges->array) {
    charge_sum += charge.Find("epsilon")->number;
  }
  EXPECT_EQ(charge_sum, spent);

  // The plain-text table renders the same ledger.
  HttpGetResult table =
      HttpGet("127.0.0.1", service->introspect_port(), "/budgetz");
  ASSERT_TRUE(table.ok) << table.error;
  EXPECT_NE(table.body.find("dataset ages"), std::string::npos);
  EXPECT_NE(table.body.find("epsilon remaining"), std::string::npos);
}

TEST(IntrospectServiceTest, HealthzFlipsUnhealthyWhileAdmissionQueueIsFull) {
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  auto entered = std::make_shared<std::promise<void>>();
  std::future<void> worker_parked = entered->get_future();

  ProgramRegistry registry = ProgramRegistry::WithStandardPrograms();
  ASSERT_TRUE(
      registry
          .RegisterBuilder(
              "blocker",
              [opened, entered](const ProgramSpec&) -> Result<ProgramFactory> {
                return MakeProgramFactory(
                    "blocker", 1, [opened, entered](const Dataset&) {
                      entered->set_value();
                      opened.wait();
                      return Result<Row>(Row{0.0});
                    });
              })
          .ok());

  ServiceOptions options;
  options.admission_workers = 1;
  options.admission_queue_capacity = 1;
  options.introspect_port = 0;
  GuptService service(options, std::move(registry));
  ASSERT_GT(service.introspect_port(), 0);
  DatasetOptions ds;
  ds.total_epsilon = 5.0;
  ASSERT_TRUE(service.RegisterDataset("ages", Ages(500, 1), ds).ok());

  HttpGetResult healthy =
      HttpGet("127.0.0.1", service.introspect_port(), "/healthz");
  ASSERT_TRUE(healthy.ok) << healthy.error;
  EXPECT_EQ(healthy.status, 200);
  EXPECT_EQ(healthy.body, "ok\n");

  // Fill the only admission slot with a query parked inside the program.
  QueryRequest blocked = MeanRequest(0.5);
  blocked.program.name = "blocker";
  blocked.block_size = 500;  // one block: the program runs exactly once
  auto occupying = service.SubmitQueryAsync(blocked);
  worker_parked.wait();

  HttpGetResult saturated =
      HttpGet("127.0.0.1", service.introspect_port(), "/healthz");
  ASSERT_TRUE(saturated.ok) << saturated.error;
  EXPECT_EQ(saturated.status, 503);
  EXPECT_NE(saturated.body.find("admission queue full"), std::string::npos);

  gate.set_value();
  ASSERT_TRUE(occupying.get().ok());

  HttpGetResult recovered =
      HttpGet("127.0.0.1", service.introspect_port(), "/healthz");
  ASSERT_TRUE(recovered.ok) << recovered.error;
  EXPECT_EQ(recovered.status, 200);
}

TEST(IntrospectServiceTest, TracezRendersFanOutAcrossDistinctWorkerLanes) {
  ServiceOptions options;
  options.runtime.num_workers = 4;
  auto service = MakeServingService(options);

  // Whether a single query's blocks actually land on >= 2 pool workers is a
  // scheduler outcome: on a loaded single-core host one worker can drain the
  // whole queue before the others wake. Submit until the fan-out happens
  // (overwhelmingly the first attempt), bounded so a rendering bug still
  // fails fast; lanes accumulate across attempts, which is what /tracez
  // renders anyway.
  std::set<double> block_lanes;
  bool saw_query_span = false;
  bool saw_execute_stage = false;
  for (int attempt = 0; attempt < 10 && block_lanes.size() < 2; ++attempt) {
    QueryRequest request = MeanRequest(0.5);
    request.gamma = 2;  // resampled partition: plenty of blocks to fan out
    ASSERT_TRUE(service->SubmitQuery(request).ok());

    HttpGetResult scrape =
        HttpGet("127.0.0.1", service->introspect_port(), "/tracez");
    ASSERT_TRUE(scrape.ok) << scrape.error;
    ASSERT_EQ(scrape.status, 200);
    EXPECT_NE(scrape.content_type.find("application/json"),
              std::string::npos);

    JsonValue root;
    ASSERT_TRUE(ParseJson(scrape.body, &root)) << scrape.body;
    const JsonValue* events = root.Find("traceEvents");
    ASSERT_NE(events, nullptr);

    block_lanes.clear();
    for (const JsonValue& event : events->array) {
      const JsonValue* cat = event.Find("cat");
      if (cat == nullptr) continue;
      if (cat->string == "block") {
        EXPECT_EQ(event.Find("ph")->string, "X");
        block_lanes.insert(event.Find("tid")->number);
      } else if (cat->string == "query") {
        saw_query_span = true;
        EXPECT_EQ(event.Find("args")->Find("dataset")->string, "ages");
        EXPECT_GT(event.Find("args")->Find("query_id")->number, 0.0);
      } else if (cat->string == "stage" &&
                 event.Find("name")->string == "execute_blocks") {
        saw_execute_stage = true;
      }
    }
  }
  EXPECT_TRUE(saw_query_span);
  EXPECT_TRUE(saw_execute_stage);
  // The gamma=2 fan-out across a 4-worker pool must land on at least two
  // distinct worker lanes — the cross-thread rendering the endpoint exists
  // to provide.
  EXPECT_GE(block_lanes.size(), 2u);
}

TEST(IntrospectServiceTest, IntrospectionOffByDefaultAndRestartRejected) {
  ServiceOptions options;  // introspect_port stays -1
  GuptService service(options, ProgramRegistry::WithStandardPrograms());
  EXPECT_EQ(service.introspect_port(), -1);

  Result<int> started = service.StartIntrospection(0);
  ASSERT_TRUE(started.ok()) << started.status();
  EXPECT_GT(*started, 0);
  EXPECT_EQ(service.introspect_port(), *started);

  // Second start while serving is an error, not a silent rebind.
  EXPECT_FALSE(service.StartIntrospection(0).ok());

  service.StopIntrospection();
  EXPECT_EQ(service.introspect_port(), -1);
}

}  // namespace
}  // namespace gupt
