// Concurrency stress for the hosted service: many analysts submitting in
// parallel, with the audit log, ledger and cache staying consistent.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/rng.h"
#include "service/gupt_service.h"

namespace gupt {
namespace {

Dataset Ages(std::size_t n) {
  Rng rng(77);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(40.0, 10.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

QueryRequest Request(const std::string& analyst, double epsilon) {
  QueryRequest request;
  request.analyst = analyst;
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = epsilon;
  request.output_ranges = {Range{0.0, 150.0}};
  return request;
}

TEST(ServiceStressTest, ParallelAnalystsAccountedExactly) {
  ServiceOptions options;
  GuptService service(options, ProgramRegistry::WithStandardPrograms());
  DatasetOptions ds;
  ds.total_epsilon = 10.0;  // exactly 100 queries of 0.1 fit
  ASSERT_TRUE(service.RegisterDataset("ages", Ages(3000), ds).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20;  // 160 attempts, only 100 can land
  std::atomic<int> accepted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &accepted, t] {
      for (int q = 0; q < kPerThread; ++q) {
        if (service.SubmitQuery(Request("analyst" + std::to_string(t), 0.1))
                .ok()) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(accepted.load(), 100);
  EXPECT_NEAR(service.RemainingBudget("ages").value(), 0.0, 1e-6);

  // Audit log: every attempt recorded once, ids unique and dense.
  auto log = service.audit_log();
  ASSERT_EQ(log.size(), static_cast<std::size_t>(kThreads * kPerThread));
  int logged_accepted = 0;
  std::set<std::size_t> ids;
  for (const AuditRecord& record : log) {
    ids.insert(record.id);
    if (record.accepted) ++logged_accepted;
  }
  EXPECT_EQ(logged_accepted, 100);
  EXPECT_EQ(ids.size(), log.size());
  EXPECT_EQ(*ids.begin(), 1u);
  EXPECT_EQ(*ids.rbegin(), log.size());
}

TEST(ServiceStressTest, CacheUnderConcurrencyChargesAtMostOnce) {
  ServiceOptions options;
  options.enable_query_cache = true;
  GuptService service(options, ProgramRegistry::WithStandardPrograms());
  DatasetOptions ds;
  ds.total_epsilon = 10.0;
  ASSERT_TRUE(service.RegisterDataset("ages", Ages(3000), ds).ok());

  // Many threads race the SAME query. At least one executes and charges;
  // racers that miss the cache may also execute, but once the cache is
  // warm everything is free. The invariant: spent <= a few charges, and
  // afterwards repeated queries cost nothing.
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&service] {
      for (int q = 0; q < 5; ++q) {
        (void)service.SubmitQuery(Request("racer", 0.5));
      }
    });
  }
  for (auto& th : threads) th.join();
  double spent_after_race = 10.0 - service.RemainingBudget("ages").value();
  EXPECT_GE(spent_after_race, 0.5);
  EXPECT_LE(spent_after_race, 0.5 * 8);  // at most one miss per thread

  auto report = service.SubmitQuery(Request("racer", 0.5));
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(10.0 - service.RemainingBudget("ages").value(),
                   spent_after_race);  // fully warm: no further charge
}

}  // namespace
}  // namespace gupt
