#include "service/program_registry.h"

#include <gtest/gtest.h>

namespace gupt {
namespace {

Dataset TwoColumns() {
  return Dataset::Create({{1, 10}, {2, 20}, {3, 30}, {4, 40}}).value();
}

ProgramSpec Spec(const std::string& name,
                 std::map<std::string, std::string> params = {}) {
  ProgramSpec spec;
  spec.name = name;
  spec.params = std::move(params);
  return spec;
}

TEST(SpecParamTest, GetSizeParsesAndValidates) {
  ProgramSpec s = Spec("x", {{"dim", "3"}, {"bad", "3.5"}, {"neg", "-1"}});
  EXPECT_EQ(spec::GetSize(s, "dim").value(), 3u);
  EXPECT_FALSE(spec::GetSize(s, "bad").ok());
  EXPECT_FALSE(spec::GetSize(s, "neg").ok());
  EXPECT_FALSE(spec::GetSize(s, "missing").ok());
  EXPECT_EQ(spec::GetSizeOr(s, "missing", 7).value(), 7u);
}

TEST(SpecParamTest, GetDoubleParses) {
  ProgramSpec s = Spec("x", {{"q", "0.25"}, {"junk", "abc"}});
  EXPECT_DOUBLE_EQ(spec::GetDouble(s, "q").value(), 0.25);
  EXPECT_FALSE(spec::GetDouble(s, "junk").ok());
  EXPECT_DOUBLE_EQ(spec::GetDoubleOr(s, "missing", 1.5).value(), 1.5);
}

TEST(SpecParamTest, GetSizeListParsesCommaSeparated) {
  ProgramSpec s = Spec("x", {{"dims", "0,2,5"}, {"bad", "0,x"}});
  EXPECT_EQ(spec::GetSizeList(s, "dims").value(),
            (std::vector<std::size_t>{0, 2, 5}));
  EXPECT_FALSE(spec::GetSizeList(s, "bad").ok());
  EXPECT_FALSE(spec::GetSizeList(s, "missing").ok());
}

TEST(ProgramRegistryTest, BuildAndRunStandardPrograms) {
  ProgramRegistry registry = ProgramRegistry::WithStandardPrograms();
  Dataset data = TwoColumns();

  auto mean = registry.Build(Spec("mean", {{"dim", "1"}}));
  ASSERT_TRUE(mean.ok());
  EXPECT_EQ((*mean)()->Run(data).value(), (Row{25.0}));

  auto median = registry.Build(Spec("median"));  // dim defaults to 0
  ASSERT_TRUE(median.ok());
  EXPECT_EQ((*median)()->Run(data).value(), (Row{2.5}));

  auto quantile = registry.Build(Spec("quantile", {{"q", "1.0"}}));
  ASSERT_TRUE(quantile.ok());
  EXPECT_EQ((*quantile)()->Run(data).value(), (Row{4.0}));

  auto hist = registry.Build(
      Spec("histogram", {{"bins", "2"}, {"lo", "0"}, {"hi", "5"}}));
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ((*hist)()->output_dims(), 2u);

  auto cov = registry.Build(
      Spec("covariance", {{"dim_a", "0"}, {"dim_b", "1"}}));
  ASSERT_TRUE(cov.ok());
  EXPECT_EQ((*cov)()->Run(data).value(), (Row{12.5}));
}

TEST(ProgramRegistryTest, MlProgramsHaveRightArity) {
  ProgramRegistry registry = ProgramRegistry::WithStandardPrograms();
  auto kmeans = registry.Build(Spec("kmeans", {{"k", "2"}, {"dims", "0,1"}}));
  ASSERT_TRUE(kmeans.ok());
  EXPECT_EQ((*kmeans)()->output_dims(), 4u);

  auto logreg = registry.Build(
      Spec("logistic_regression", {{"dims", "0"}, {"label", "1"}}));
  ASSERT_TRUE(logreg.ok());
  EXPECT_EQ((*logreg)()->output_dims(), 2u);

  auto linreg = registry.Build(
      Spec("linear_regression", {{"dims", "0"}, {"target", "1"}}));
  ASSERT_TRUE(linreg.ok());
  EXPECT_EQ((*linreg)()->output_dims(), 2u);

  auto pca = registry.Build(Spec("pca", {{"dims", "0,1"}}));
  ASSERT_TRUE(pca.ok());
  EXPECT_EQ((*pca)()->output_dims(), 2u);
}

TEST(ProgramRegistryTest, MissingRequiredParameterIsError) {
  ProgramRegistry registry = ProgramRegistry::WithStandardPrograms();
  EXPECT_FALSE(registry.Build(Spec("quantile")).ok());          // missing q
  EXPECT_FALSE(registry.Build(Spec("kmeans", {{"k", "2"}})).ok());  // dims
  EXPECT_FALSE(registry.Build(Spec("histogram")).ok());
}

TEST(ProgramRegistryTest, UnknownProgramIsNotFound) {
  ProgramRegistry registry = ProgramRegistry::WithStandardPrograms();
  EXPECT_EQ(registry.Build(Spec("word2vec")).status().code(),
            StatusCode::kNotFound);
}

TEST(ProgramRegistryTest, CustomBuilderRegistersAndCollides) {
  ProgramRegistry registry;
  auto builder = [](const ProgramSpec&) -> Result<ProgramFactory> {
    return MakeProgramFactory("custom", 1, [](const Dataset&) -> Result<Row> {
      return Row{42.0};
    });
  };
  ASSERT_TRUE(registry.RegisterBuilder("custom", builder).ok());
  EXPECT_EQ(registry.RegisterBuilder("custom", builder).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(registry.RegisterBuilder("", builder).ok());
  auto built = registry.Build(Spec("custom"));
  ASSERT_TRUE(built.ok());
  EXPECT_EQ((*built)()->Run(TwoColumns()).value(), (Row{42.0}));
}

TEST(ProgramRegistryTest, ListProgramsSorted) {
  ProgramRegistry registry = ProgramRegistry::WithStandardPrograms();
  auto names = registry.ListPrograms();
  EXPECT_GE(names.size(), 13u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

}  // namespace
}  // namespace gupt
