// Tests for the asynchronous admission front door of GuptService:
// async/sync equivalence, exact budget accounting under concurrent
// submission, bounded-queue refusal, and the LRU/ring bounds on the
// query cache and audit log.

#include "service/gupt_service.h"

#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gupt {
namespace {

Dataset Ages(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(40.0, 10.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

QueryRequest MeanRequest(double epsilon) {
  QueryRequest request;
  request.analyst = "alice";
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = epsilon;
  request.range_mode = RangeMode::kTight;
  request.output_ranges = {Range{0.0, 150.0}};
  return request;
}

std::unique_ptr<GuptService> MakeService(ServiceOptions options,
                                         double budget = 5.0) {
  auto service = std::make_unique<GuptService>(
      std::move(options), ProgramRegistry::WithStandardPrograms());
  DatasetOptions ds;
  ds.total_epsilon = budget;
  EXPECT_TRUE(service->RegisterDataset("ages", Ages(5000, 1), ds).ok());
  return service;
}

TEST(AsyncServiceTest, AsyncMatchesSyncForIdenticalRequests) {
  // Two services with the same fixed seed receive the same request, one
  // through each front door. The pipeline draws from the same forked RNG
  // stream either way, so the released values must be bit-identical.
  ServiceOptions options;
  options.runtime.seed = 12345;
  auto sync_service = MakeService(options);
  auto async_service = MakeService(options);

  auto sync_report = sync_service->SubmitQuery(MeanRequest(1.0));
  auto async_report = async_service->SubmitQueryAsync(MeanRequest(1.0)).get();
  ASSERT_TRUE(sync_report.ok()) << sync_report.status();
  ASSERT_TRUE(async_report.ok()) << async_report.status();
  EXPECT_EQ(sync_report->output, async_report->output);
  EXPECT_EQ(sync_report->epsilon_spent, async_report->epsilon_spent);
  EXPECT_EQ(sync_report->num_blocks, async_report->num_blocks);
  EXPECT_EQ(sync_report->block_size, async_report->block_size);
  EXPECT_EQ(sync_service->RemainingBudget("ages").value(),
            async_service->RemainingBudget("ages").value());
}

TEST(AsyncServiceTest, ConcurrentAsyncChargesExactlyTheSumOfAccepted) {
  // 8 analysts x 5 requests x epsilon 0.25 against a budget of exactly 10:
  // every request fits, so every one must be accepted, the ledger must
  // land on exactly zero (no double-charge, no lost charge), and the audit
  // log must hold one record per request with dense ids.
  ServiceOptions options;
  options.admission_workers = 4;
  auto service = MakeService(options, /*budget=*/10.0);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 5;
  std::vector<std::thread> analysts;
  std::vector<std::vector<std::future<Result<QueryReport>>>> futures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    analysts.emplace_back([&service, &futures, t] {
      for (int i = 0; i < kPerThread; ++i) {
        futures[t].push_back(service->SubmitQueryAsync(MeanRequest(0.25)));
      }
    });
  }
  for (std::thread& analyst : analysts) analyst.join();

  int accepted = 0;
  for (auto& per_thread : futures) {
    for (auto& future : per_thread) {
      Result<QueryReport> report = future.get();
      ASSERT_TRUE(report.ok()) << report.status();
      EXPECT_EQ(report->epsilon_spent, 0.25);
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, kThreads * kPerThread);
  // 40 x 0.25 is exact in binary floating point: the remaining budget must
  // be exactly zero, not merely close.
  EXPECT_EQ(service->RemainingBudget("ages").value(), 0.0);

  auto log = service->audit_log();
  ASSERT_EQ(log.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].id, i + 1);  // dense, monotone ids: no lost records
    EXPECT_TRUE(log[i].accepted);
    EXPECT_EQ(log[i].epsilon_charged, 0.25);
  }
}

TEST(AsyncServiceTest, FullQueueRefusesInsteadOfBlocking) {
  // A single admission worker and a queue bound of 1: while one gated
  // query occupies the only slot, a second submission must be refused
  // immediately with kUnavailable — not enqueued, not blocked, and
  // nothing charged.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  // Signals that the worker is parked inside the program — by then the
  // query's budget is charged (AdmitStage precedes ExecuteBlocksStage).
  auto entered = std::make_shared<std::promise<void>>();
  std::future<void> worker_parked = entered->get_future();

  ProgramRegistry registry = ProgramRegistry::WithStandardPrograms();
  ASSERT_TRUE(
      registry
          .RegisterBuilder(
              "blocker",
              [opened, entered](const ProgramSpec&) -> Result<ProgramFactory> {
                return MakeProgramFactory(
                    "blocker", 1, [opened, entered](const Dataset&) {
                      entered->set_value();
                      opened.wait();
                      return Result<Row>(Row{0.0});
                    });
              })
          .ok());

  ServiceOptions options;
  options.admission_workers = 1;
  options.admission_queue_capacity = 1;
  GuptService service(options, std::move(registry));
  DatasetOptions ds;
  ds.total_epsilon = 5.0;
  ASSERT_TRUE(service.RegisterDataset("ages", Ages(500, 1), ds).ok());

  QueryRequest blocked = MeanRequest(0.5);
  blocked.program.name = "blocker";
  // One block of exactly the whole dataset: the program (and its
  // `entered` signal) runs exactly once.
  blocked.block_size = 500;
  auto occupying = service.SubmitQueryAsync(blocked);
  worker_parked.wait();

  // The worker is parked inside the blocker program and the slot is taken;
  // this submission must come back refused without waiting for the gate.
  auto refused = service.SubmitQueryAsync(MeanRequest(0.5)).get();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.RemainingBudget("ages").value(), 5.0 - 0.5);

  gate.set_value();
  auto first = occupying.get();
  ASSERT_TRUE(first.ok()) << first.status();

  // After the backlog drains the queue admits again.
  EXPECT_TRUE(service.SubmitQuery(MeanRequest(0.5)).ok());

  auto log = service.audit_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_FALSE(log[0].accepted);  // the refusal is audited first: it
                                  // completes while the blocker still runs
  EXPECT_NE(log[0].status.find("Unavailable"), std::string::npos);
  EXPECT_EQ(log[0].epsilon_charged, 0.0);
}

TEST(AsyncServiceTest, QueryCacheEvictsLeastRecentlyUsed) {
  ServiceOptions options;
  options.enable_query_cache = true;
  options.query_cache_capacity = 2;
  auto service = MakeService(options, /*budget=*/10.0);

  auto a = service->SubmitQuery(MeanRequest(0.5));
  auto b = service->SubmitQuery(MeanRequest(0.6));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Touch `a` so `b` becomes least recently used, then insert a third
  // entry to force one eviction.
  ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.5)).ok());
  ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.7)).ok());
  double remaining = service->RemainingBudget("ages").value();

  // `a` survived (cache hit: no charge), `b` was evicted (re-executes and
  // charges again).
  auto a2 = service->SubmitQuery(MeanRequest(0.5));
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->output, a->output);
  EXPECT_EQ(service->RemainingBudget("ages").value(), remaining);
  auto b2 = service->SubmitQuery(MeanRequest(0.6));
  ASSERT_TRUE(b2.ok());
  EXPECT_NE(b2->output, b->output);
  EXPECT_EQ(service->RemainingBudget("ages").value(), remaining - 0.6);
}

TEST(AsyncServiceTest, AuditLogRotatesButKeepsMonotoneIds) {
  ServiceOptions options;
  options.audit_log_capacity = 3;
  auto service = MakeService(options, /*budget=*/10.0);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.1)).ok());
  }
  auto log = service->audit_log();
  ASSERT_EQ(log.size(), 3u);  // only the newest three are retained
  EXPECT_EQ(log[0].id, 3u);   // ids keep counting: rotation is visible
  EXPECT_EQ(log[1].id, 4u);
  EXPECT_EQ(log[2].id, 5u);
}

}  // namespace
}  // namespace gupt
