// Fault injection against the hosted service: process chambers crashing
// underneath an 8-thread asynchronous batch, injected admission and
// process-query refusals, and a failpoint dropping introspection
// connections. Throughout, the invariants of §6.2 must hold: every
// future resolves, crashed blocks degrade to the data-independent
// fallback with EXACT counts (the failpoint allocates every-Nth verdicts
// under one lock, so interleaving cannot change the totals), and the
// /budgetz ledger equals the hand-computed spend.

#include "service/gupt_service.h"

#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/introspect/http_client.h"
#include "testing/failpoints/failpoints.h"
#include "../obs/minijson.h"

namespace gupt {
namespace {

using ::gupt::obs::introspect::HttpGet;
using ::gupt::obs::introspect::HttpGetResult;
using ::gupt::testjson::JsonValue;
using ::gupt::testjson::ParseJson;
using failpoints::Action;
using failpoints::CompiledIn;
using failpoints::Config;
using failpoints::ScopedFailpoint;

Dataset Ages(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(40.0, 10.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

QueryRequest MeanRequest(double epsilon) {
  QueryRequest request;
  request.analyst = "alice";
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = epsilon;
  request.range_mode = RangeMode::kTight;
  request.output_ranges = {Range{0.0, 150.0}};
  request.block_size = 64;  // 512 rows => exactly 8 blocks per query
  return request;
}

std::unique_ptr<GuptService> MakeService(ServiceOptions options,
                                         double budget) {
  auto service = std::make_unique<GuptService>(
      std::move(options), ProgramRegistry::WithStandardPrograms());
  DatasetOptions ds;
  ds.total_epsilon = budget;
  EXPECT_TRUE(service->RegisterDataset("ages", Ages(512, 1), ds).ok());
  return service;
}

class FaultServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CompiledIn()) {
      GTEST_SKIP() << "built with GUPT_FAILPOINTS_ENABLED=OFF";
    }
    failpoints::DisarmAll();
  }
  void TearDown() override { failpoints::DisarmAll(); }
};

TEST_F(FaultServiceTest, ChildCrashesUnderAsyncBatchKeepExactAccounting) {
  // Every 4th forked chamber child crashes (the parent sees EOF, exactly
  // like a real SIGSEGV) while 8 analyst threads submit a 32-query batch
  // processed by 4 admission workers. Every future must resolve OK, the
  // aggregate fallback count must equal the injected count EXACTLY even
  // under free interleaving, and /budgetz must equal the pre-computed
  // ledger.
  Config config;
  config.every_nth = 4;
  config.action = Action::kCrash;
  ScopedFailpoint fp("exec.process_chamber.child", config);

  ServiceOptions options;
  options.admission_workers = 4;
  options.introspect_port = 0;  // ephemeral
  options.runtime.chamber_policy.process_isolation = true;
  auto service = MakeService(options, /*budget=*/10.0);
  ASSERT_GT(service->introspect_port(), 0);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  constexpr std::size_t kBlocksPerQuery = 8;
  std::vector<std::thread> analysts;
  std::vector<std::vector<std::future<Result<QueryReport>>>> futures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    analysts.emplace_back([&service, &futures, t] {
      for (int i = 0; i < kPerThread; ++i) {
        futures[t].push_back(service->SubmitQueryAsync(MeanRequest(0.25)));
      }
    });
  }
  for (std::thread& analyst : analysts) analyst.join();

  std::size_t fallback_total = 0;
  int resolved = 0;
  for (auto& per_thread : futures) {
    for (auto& future : per_thread) {
      Result<QueryReport> report = future.get();
      ASSERT_TRUE(report.ok()) << report.status();
      EXPECT_EQ(report->num_blocks, kBlocksPerQuery);
      EXPECT_EQ(report->epsilon_spent, 0.25);
      // Crashed children are substituted, never silently dropped: the
      // release is always over all 8 blocks.
      ASSERT_EQ(report->output.size(), 1u);
      EXPECT_LE(report->fallback_blocks, kBlocksPerQuery);
      fallback_total += report->fallback_blocks;
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, kThreads * kPerThread);

  // 32 queries x 8 blocks = 256 evaluations; every-4th fires exactly 64
  // times no matter how the admission workers interleaved them, and every
  // fire is visible as exactly one fallback block in some report.
  const std::size_t evaluations =
      static_cast<std::size_t>(kThreads * kPerThread) * kBlocksPerQuery;
  EXPECT_EQ(fp.evaluations(), evaluations);
  EXPECT_EQ(fp.fires(), evaluations / 4);
  EXPECT_EQ(fallback_total, evaluations / 4);

  // /budgetz equals the hand-computed ledger: 32 charges of exactly 0.25.
  HttpGetResult scrape = HttpGet("127.0.0.1", service->introspect_port(),
                                 "/budgetz?format=json");
  ASSERT_TRUE(scrape.ok) << scrape.error;
  JsonValue root;
  ASSERT_TRUE(ParseJson(scrape.body, &root)) << scrape.body;
  const JsonValue* datasets = root.Find("datasets");
  ASSERT_NE(datasets, nullptr);
  ASSERT_EQ(datasets->array.size(), 1u);
  const JsonValue& entry = datasets->array[0];
  EXPECT_EQ(entry.Find("dataset")->string, "ages");
  EXPECT_EQ(entry.Find("total_epsilon")->number, 10.0);
  EXPECT_EQ(entry.Find("spent_epsilon")->number, 8.0);
  EXPECT_EQ(entry.Find("remaining_epsilon")->number, 2.0);
  ASSERT_EQ(entry.Find("charges")->array.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  for (const JsonValue& charge : entry.Find("charges")->array) {
    EXPECT_EQ(charge.Find("epsilon")->number, 0.25);
  }

  // The failpoint hit counters export through the shared registry.
  HttpGetResult metrics =
      HttpGet("127.0.0.1", service->introspect_port(), "/metrics");
  ASSERT_TRUE(metrics.ok) << metrics.error;
  EXPECT_NE(metrics.body.find("gupt_failpoint_fires_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("exec.process_chamber.child"),
            std::string::npos);
}

TEST_F(FaultServiceTest, ChildDelaysCountAsDeadlineFallbacksExactly) {
  // Every 2nd child stalls past the 30ms process deadline: with one
  // admission worker the queries run in submission order, so EACH query
  // sees exactly 4 of its 8 children killed by the deadline.
  Config config;
  config.every_nth = 2;
  config.action = Action::kNoop;
  config.delay = std::chrono::milliseconds(120);
  ScopedFailpoint fp("exec.process_chamber.child", config);

  ServiceOptions options;
  options.admission_workers = 1;
  options.runtime.chamber_policy.process_isolation = true;
  options.runtime.chamber_policy.deadline = std::chrono::microseconds(30000);
  auto service = MakeService(options, /*budget=*/10.0);

  constexpr int kQueries = 2;
  for (int q = 0; q < kQueries; ++q) {
    auto report = service->SubmitQuery(MeanRequest(0.25));
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->num_blocks, 8u);
    EXPECT_EQ(report->fallback_blocks, 4u) << "query " << q;
    EXPECT_EQ(report->deadline_exceeded_blocks, 4u) << "query " << q;
  }
  EXPECT_EQ(fp.evaluations(), 8u * kQueries);
  EXPECT_EQ(fp.fires(), 4u * kQueries);
  EXPECT_EQ(service->RemainingBudget("ages").value(), 10.0 - 0.25 * kQueries);
}

TEST_F(FaultServiceTest, InjectedAdmissionRefusalChargesNothing) {
  // The service.admission.submit failpoint models a full queue: the
  // future must resolve with kUnavailable, nothing may be charged, and
  // the refusal must be audited like a genuine backpressure refusal.
  ScopedFailpoint fp("service.admission.submit", Config{});

  ServiceOptions options;
  auto service = MakeService(options, /*budget=*/5.0);
  auto refused = service->SubmitQueryAsync(MeanRequest(0.5)).get();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(failpoints::IsInjected(refused.status()));
  EXPECT_EQ(service->RemainingBudget("ages").value(), 5.0);

  auto log = service->audit_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_FALSE(log[0].accepted);
  EXPECT_EQ(log[0].epsilon_charged, 0.0);

  // Disarmed, the same request sails through.
  failpoints::DisarmAll();
  EXPECT_TRUE(service->SubmitQuery(MeanRequest(0.5)).ok());
}

TEST_F(FaultServiceTest, InjectedProcessQueryFailureIsAuditedAndUncharged) {
  // service.process_query fires inside the admission worker, before the
  // pipeline (and hence before any charge): the analyst gets the injected
  // error and the refusal lands in the audit log with the full request
  // identity.
  ScopedFailpoint fp("service.process_query", Config{});

  ServiceOptions options;
  auto service = MakeService(options, /*budget=*/5.0);
  auto report = service->SubmitQueryAsync(MeanRequest(0.5)).get();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(failpoints::IsInjected(report.status()));
  EXPECT_EQ(service->RemainingBudget("ages").value(), 5.0);

  auto log = service->audit_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_FALSE(log[0].accepted);
  EXPECT_EQ(log[0].analyst, "alice");
  EXPECT_EQ(log[0].dataset, "ages");
  EXPECT_EQ(log[0].epsilon_charged, 0.0);
}

TEST_F(FaultServiceTest, IntrospectAcceptFaultDropsConnectionsWhileArmed) {
  ServiceOptions options;
  options.introspect_port = 0;
  auto service = MakeService(options, /*budget=*/5.0);
  ASSERT_GT(service->introspect_port(), 0);

  // Healthy first: the socket serves.
  HttpGetResult before =
      HttpGet("127.0.0.1", service->introspect_port(), "/healthz");
  ASSERT_TRUE(before.ok) << before.error;

  {
    // Armed: the accept hook closes every connection before a byte is
    // read, modelling an overloaded or wedged introspection listener.
    ScopedFailpoint fp("service.introspect.accept", Config{});
    HttpGetResult dropped =
        HttpGet("127.0.0.1", service->introspect_port(), "/healthz");
    EXPECT_FALSE(dropped.ok);
    EXPECT_GE(fp.fires(), 1u);
  }

  // The guard restored the site: serving resumes with no restart.
  HttpGetResult after =
      HttpGet("127.0.0.1", service->introspect_port(), "/healthz");
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.status, 200);
}

}  // namespace
}  // namespace gupt
