// Fault injection against the time-series collector and alert engine.
// The collector is a pure observer of the privacy ledger, and these
// tests pin that down under failure: a crashing or delayed
// service.series.collect failpoint must never wedge shutdown, never
// skew a series' timestamp ordering, and never change a single bit of
// charged epsilon (17-significant-digit /budgetz equality against a
// collector-off run). The respawn-storm detector (satellite of the
// /healthz degradation fix) is driven here too, by really crashing
// pooled workers.

#include "service/gupt_service.h"

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/introspect/http_client.h"
#include "testing/failpoints/failpoints.h"
#include "../obs/minijson.h"

namespace gupt {
namespace {

using ::gupt::obs::introspect::HttpGet;
using ::gupt::obs::introspect::HttpGetResult;
using ::gupt::testjson::JsonValue;
using ::gupt::testjson::ParseJson;
using failpoints::Action;
using failpoints::CompiledIn;
using failpoints::Config;
using failpoints::ScopedFailpoint;

Dataset Ages(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(40.0, 10.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

QueryRequest MeanRequest(double epsilon) {
  QueryRequest request;
  request.analyst = "alice";
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = epsilon;
  request.range_mode = RangeMode::kTight;
  request.output_ranges = {Range{0.0, 150.0}};
  request.block_size = 64;  // 512 rows => exactly 8 blocks per query
  return request;
}

std::unique_ptr<GuptService> MakeService(ServiceOptions options,
                                         double budget) {
  options.introspect_port = 0;  // ephemeral
  auto service = std::make_unique<GuptService>(
      std::move(options), ProgramRegistry::WithStandardPrograms());
  EXPECT_GT(service->introspect_port(), 0);
  DatasetOptions ds;
  ds.total_epsilon = budget;
  EXPECT_TRUE(service->RegisterDataset("ages", Ages(512, 1), ds).ok());
  return service;
}

/// The raw (17-significant-digit) text of one numeric field in a JSON
/// body — extracted as a string so equality is textual, not post-parse.
std::string RawJsonNumber(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  std::size_t at = body.find(needle);
  if (at == std::string::npos) return "<missing " + key + ">";
  at += needle.size();
  std::size_t end = body.find_first_of(",}", at);
  return body.substr(at, end - at);
}

class SeriesFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CompiledIn()) {
      GTEST_SKIP() << "built with GUPT_FAILPOINTS_ENABLED=OFF";
    }
    failpoints::DisarmAll();
  }
  void TearDown() override { failpoints::DisarmAll(); }
};

/// Runs the reference workload and returns the /budgetz JSON body.
/// `series_on` arms a manually-ticked collector around every query;
/// `series_capacity = 0` is the collector-off control.
std::string RunWorkload(bool series_on) {
  ServiceOptions options;
  options.collector_period_ms = 0;
  options.series_capacity = series_on ? 1024 : 0;
  auto service = MakeService(std::move(options), /*budget=*/4.0);
  if (series_on) {
    EXPECT_NE(service->series_collector(), nullptr);
    service->series_collector()->TickNow();
  }
  for (int q = 0; q < 6; ++q) {
    auto report = service->SubmitQuery(MeanRequest(0.375));
    EXPECT_TRUE(report.ok()) << report.status();
    if (series_on) service->series_collector()->TickNow();
  }
  HttpGetResult scrape = HttpGet("127.0.0.1", service->introspect_port(),
                                 "/budgetz?format=json");
  EXPECT_TRUE(scrape.ok) << scrape.error;
  EXPECT_EQ(scrape.status, 200);
  return scrape.body;
}

TEST_F(SeriesFaultTest, CrashingCollectorNeverTouchesTheLedger) {
  // Every collect gate fires kCrash: the site cannot crash safely, so
  // the sampling half of every tick is skipped — and nothing else.
  std::string faulty;
  {
    Config config;
    config.action = Action::kCrash;
    ScopedFailpoint fp("service.series.collect", config);
    faulty = RunWorkload(/*series_on=*/true);
    EXPECT_EQ(fp.evaluations(), 7u);  // baseline tick + one per query
    EXPECT_EQ(fp.fires(), 7u);
  }
  const std::string clean_off = RunWorkload(/*series_on=*/false);
  const std::string clean_on = RunWorkload(/*series_on=*/true);

  // 17-significant-digit equality of every ledger total, collector
  // crashing vs collector off vs collector healthy.
  for (const char* key : {"total_epsilon", "spent_epsilon",
                          "remaining_epsilon", "num_charges"}) {
    const std::string expected = RawJsonNumber(clean_off, key);
    EXPECT_EQ(RawJsonNumber(faulty, key), expected) << key;
    EXPECT_EQ(RawJsonNumber(clean_on, key), expected) << key;
  }
  EXPECT_EQ(RawJsonNumber(clean_off, "spent_epsilon"), "2.25");
}

TEST_F(SeriesFaultTest, CrashingCollectSkipsSamplingButServiceKeepsServing) {
  Config config;
  config.action = Action::kCrash;
  config.every_nth = 2;  // every other tick loses its samples
  ScopedFailpoint fp("service.series.collect", config);

  ServiceOptions options;
  options.collector_period_ms = 0;
  options.series_capacity = 1024;
  auto service = MakeService(std::move(options), 4.0);
  obs::series::SeriesCollector* collector = service->series_collector();

  for (int q = 0; q < 4; ++q) {
    ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.25)).ok());
    collector->TickNow();
  }
  EXPECT_EQ(collector->Ticks(), 4u);
  EXPECT_EQ(fp.fires(), 2u);

  // The surviving ticks still produced well-ordered history...
  const obs::series::SeriesStore* store = service->series_store();
  std::vector<obs::series::SeriesPoint> spent =
      store->Points("gupt_budget_spent_epsilon{dataset=ages}:value");
  ASSERT_EQ(spent.size(), 2u);  // ticks 1 and 3 sampled; 2 and 4 skipped
  EXPECT_LT(spent[0].t_ns, spent[1].t_ns);
  EXPECT_EQ(store->DroppedPoints(), 0u);

  // ...the skip was accounted...
  HttpGetResult metrics =
      HttpGet("127.0.0.1", service->introspect_port(), "/metrics");
  EXPECT_NE(metrics.body.find(
                "gupt_series_collections_total{outcome=\"skipped\"}"),
            std::string::npos)
      << metrics.body.substr(0, 400);

  // ...and the endpoints keep answering.
  EXPECT_EQ(
      HttpGet("127.0.0.1", service->introspect_port(), "/timeseriesz").status,
      200);
  EXPECT_EQ(HttpGet("127.0.0.1", service->introspect_port(), "/alertz").status,
            200);
}

TEST_F(SeriesFaultTest, DelayedCollectorNeverSkewsTimestampOrdering) {
  // A background collector at a 2 ms cadence with 10 ms stalls injected
  // into every other tick: ticks pile up against tick_mu_, but every
  // series must stay strictly monotone and lossless.
  Config config;
  config.action = Action::kNoop;
  config.every_nth = 2;
  config.delay = std::chrono::microseconds(10000);
  ScopedFailpoint fp("service.series.collect", config);

  ServiceOptions options;
  options.collector_period_ms = 2;
  options.series_capacity = 1024;
  auto service = MakeService(std::move(options), 8.0);
  obs::series::SeriesCollector* collector = service->series_collector();
  ASSERT_NE(collector, nullptr);
  EXPECT_TRUE(collector->running());

  ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.5)).ok());
  for (int i = 0; i < 400 && collector->Ticks() < 8; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(collector->Ticks(), 8u);

  const obs::series::SeriesStore* store = service->series_store();
  for (const std::string& name : store->Names()) {
    std::vector<obs::series::SeriesPoint> points = store->Points(name);
    for (std::size_t i = 1; i < points.size(); ++i) {
      ASSERT_LT(points[i - 1].t_ns, points[i].t_ns)
          << name << " point " << i << " out of order";
    }
  }
  EXPECT_EQ(store->DroppedPoints(), 0u);

  // Shutdown with the delay still armed: Stop() waits out the tick in
  // progress and joins — if this wedged, the test would time out.
  service.reset();
}

TEST_F(SeriesFaultTest, CrashingEvaluateSkipsAlertsButNotSampling) {
  Config config;
  config.action = Action::kCrash;
  ScopedFailpoint fp("service.series.evaluate", config);

  ServiceOptions options;
  options.collector_period_ms = 0;
  options.series_capacity = 1024;
  auto service = MakeService(std::move(options), 4.0);
  ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.5)).ok());
  service->series_collector()->TickNow();
  service->series_collector()->TickNow();

  // Samples landed; no alert evaluation ran.
  EXPECT_GT(service->series_store()->AppendedPoints(), 0u);
  EXPECT_EQ(service->alert_engine()->Evaluations(), 0u);
  EXPECT_EQ(fp.fires(), 2u);

  HttpGetResult metrics =
      HttpGet("127.0.0.1", service->introspect_port(), "/metrics");
  EXPECT_NE(metrics.body.find("gupt_alert_evaluations_skipped_total 2"),
            std::string::npos);

  // /alertz still answers with the (never-evaluated) rule set.
  HttpGetResult alertz =
      HttpGet("127.0.0.1", service->introspect_port(), "/alertz?format=json");
  ASSERT_EQ(alertz.status, 200);
  JsonValue root;
  ASSERT_TRUE(ParseJson(alertz.body, &root)) << alertz.body;
  EXPECT_FALSE(root.Find("rules")->array.empty());
}

TEST_F(SeriesFaultTest, RespawnStormDegradesHealthzAndFiresTheAlert) {
  // Every pooled lease crashes its worker: respawns track leases (minus
  // the initial spawn), every block falls back to fork, and the
  // detector + built-in alert must both notice — while /healthz stays
  // 200, because the service still answers queries.
  Config config;
  config.action = Action::kCrash;
  ScopedFailpoint fp("exec.pool.lease", config);

  ServiceOptions options;
  options.chamber_pool_workers = 2;
  options.collector_period_ms = 0;
  options.series_capacity = 1024;
  auto service = MakeService(std::move(options), 8.0);
  obs::series::SeriesCollector* collector = service->series_collector();
  ASSERT_NE(collector, nullptr);

  collector->TickNow();  // prime the counter rates
  for (int q = 0; q < 4; ++q) {
    auto report = service->SubmitQuery(MeanRequest(0.5));
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->fallback_blocks, 8u);  // every block crashed
  }
  collector->TickNow();  // rates materialise on the second tick

  std::string reason;
  ASSERT_TRUE(service->Degraded(&reason));
  EXPECT_NE(reason.find("respawn storm"), std::string::npos) << reason;

  HttpGetResult health = HttpGet("127.0.0.1", service->introspect_port(),
                                 "/healthz?verbose=1");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("degraded: chamber pool respawn storm"),
            std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("respawn_storm=yes"), std::string::npos)
      << health.body;

  HttpGetResult alertz =
      HttpGet("127.0.0.1", service->introspect_port(), "/alertz?format=json");
  JsonValue root;
  ASSERT_TRUE(ParseJson(alertz.body, &root)) << alertz.body;
  const JsonValue* instances = root.Find("instances");
  ASSERT_NE(instances, nullptr);
  bool storm_firing = false;
  for (const JsonValue& entry : instances->array) {
    if (entry.Find("rule")->string == "chamber_pool_respawn_storm" &&
        entry.Find("state")->string == "firing") {
      storm_firing = true;
    }
  }
  EXPECT_TRUE(storm_firing) << alertz.body;

  // Disarm, lease fresh workers, and the condition clears: the detector
  // reads a sliding window, so recovery needs respawn-free leases.
  failpoints::DisarmAll();
  for (int q = 0; q < 4; ++q) {
    auto report = service->SubmitQuery(MeanRequest(0.5));
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->fallback_blocks, 0u);
  }
}

}  // namespace
}  // namespace gupt
