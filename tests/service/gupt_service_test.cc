#include "service/gupt_service.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"

namespace gupt {
namespace {

Dataset Ages(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(40.0, 10.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

QueryRequest MeanRequest(double epsilon) {
  QueryRequest request;
  request.analyst = "alice";
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = epsilon;
  request.range_mode = RangeMode::kTight;
  request.output_ranges = {Range{0.0, 150.0}};
  return request;
}

class GuptServiceTest : public ::testing::Test {
 protected:
  std::unique_ptr<GuptService> MakeServicePtr(double budget = 5.0,
                                              const std::string& ledger = "") {
    ServiceOptions options;
    options.ledger_path = ledger;
    auto service = std::make_unique<GuptService>(
        options, ProgramRegistry::WithStandardPrograms());
    DatasetOptions ds;
    ds.total_epsilon = budget;
    EXPECT_TRUE(service->RegisterDataset("ages", Ages(5000, 1), ds).ok());
    return service;
  }
};

TEST_F(GuptServiceTest, SubmitQueryReturnsPrivateAnswer) {
  auto service_ptr = MakeServicePtr();
  GuptService& service = *service_ptr;
  auto report = service.SubmitQuery(MeanRequest(1.0));
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->output[0], 40.0, 10.0);
  EXPECT_DOUBLE_EQ(report->epsilon_spent, 1.0);
  EXPECT_DOUBLE_EQ(service.RemainingBudget("ages").value(), 4.0);
}

TEST_F(GuptServiceTest, ListingsExposeRegistrations) {
  auto service_ptr = MakeServicePtr();
  GuptService& service = *service_ptr;
  EXPECT_EQ(service.ListDatasets(), (std::vector<std::string>{"ages"}));
  EXPECT_GE(service.ListPrograms().size(), 13u);
}

TEST_F(GuptServiceTest, AuditLogRecordsAcceptedAndRefused) {
  auto service_ptr = MakeServicePtr(/*budget=*/1.5);
  GuptService& service = *service_ptr;
  ASSERT_TRUE(service.SubmitQuery(MeanRequest(1.0)).ok());
  // Second query exceeds the remaining 0.5.
  auto refused = service.SubmitQuery(MeanRequest(1.0));
  EXPECT_FALSE(refused.ok());
  // Unknown program.
  QueryRequest bad = MeanRequest(0.1);
  bad.program.name = "word2vec";
  EXPECT_FALSE(service.SubmitQuery(bad).ok());

  auto log = service.audit_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].id, 1u);
  EXPECT_EQ(log[0].analyst, "alice");
  EXPECT_TRUE(log[0].accepted);
  EXPECT_DOUBLE_EQ(log[0].epsilon_charged, 1.0);
  EXPECT_FALSE(log[1].accepted);
  EXPECT_NE(log[1].status.find("BudgetExhausted"), std::string::npos);
  EXPECT_FALSE(log[2].accepted);
  EXPECT_NE(log[2].status.find("NotFound"), std::string::npos);
}

TEST_F(GuptServiceTest, AnonymousAnalystLabelled) {
  auto service_ptr = MakeServicePtr();
  GuptService& service = *service_ptr;
  QueryRequest request = MeanRequest(0.5);
  request.analyst.clear();
  ASSERT_TRUE(service.SubmitQuery(request).ok());
  EXPECT_EQ(service.audit_log()[0].analyst, "<anonymous>");
}

TEST_F(GuptServiceTest, HelperModeRejectedAtServiceBoundary) {
  auto service_ptr = MakeServicePtr();
  GuptService& service = *service_ptr;
  QueryRequest request = MeanRequest(0.5);
  request.range_mode = RangeMode::kHelper;
  EXPECT_FALSE(service.SubmitQuery(request).ok());
}

TEST_F(GuptServiceTest, LooseModeWorks) {
  auto service_ptr = MakeServicePtr();
  GuptService& service = *service_ptr;
  QueryRequest request = MeanRequest(2.0);
  request.range_mode = RangeMode::kLoose;
  request.output_ranges = {Range{0.0, 300.0}};
  auto report = service.SubmitQuery(request);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->effective_ranges[0].width(), 300.0);
}

TEST_F(GuptServiceTest, ParameterizedProgramRequest) {
  auto service_ptr = MakeServicePtr();
  GuptService& service = *service_ptr;
  QueryRequest request = MeanRequest(1.0);
  request.program.name = "winsorized_mean";
  request.program.params = {{"dim", "0"}, {"trim", "0.1"}};
  EXPECT_TRUE(service.SubmitQuery(request).ok());
}

TEST_F(GuptServiceTest, LedgerSurvivesRestart) {
  std::string ledger = ::testing::TempDir() + "/gupt_service_ledger.txt";
  std::remove(ledger.c_str());
  {
    auto service_ptr = MakeServicePtr(5.0, ledger);
  GuptService& service = *service_ptr;
    ASSERT_TRUE(service.SubmitQuery(MeanRequest(3.0)).ok());
  }
  {
    // "Restart": fresh service, same dataset registration, restore ledger.
    auto service_ptr = MakeServicePtr(5.0, ledger);
  GuptService& service = *service_ptr;
    ASSERT_TRUE(service.RestoreLedger().ok());
    EXPECT_DOUBLE_EQ(service.RemainingBudget("ages").value(), 2.0);
    // A 3.0 query no longer fits.
    EXPECT_FALSE(service.SubmitQuery(MeanRequest(3.0)).ok());
    EXPECT_TRUE(service.SubmitQuery(MeanRequest(2.0)).ok());
  }
  std::remove(ledger.c_str());
}

TEST_F(GuptServiceTest, QueryCacheServesRepeatsForFree) {
  ServiceOptions options;
  options.enable_query_cache = true;
  GuptService service(options, ProgramRegistry::WithStandardPrograms());
  DatasetOptions ds;
  ds.total_epsilon = 2.0;
  ASSERT_TRUE(service.RegisterDataset("ages", Ages(5000, 1), ds).ok());

  QueryRequest request = MeanRequest(1.5);
  auto first = service.SubmitQuery(request);
  ASSERT_TRUE(first.ok());
  EXPECT_DOUBLE_EQ(service.RemainingBudget("ages").value(), 0.5);

  // The identical query replays the cached release: same answer, no
  // charge — it would not even fit in the remaining 0.5 otherwise.
  auto second = service.SubmitQuery(request);
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(second->output[0], first->output[0]);
  EXPECT_DOUBLE_EQ(service.RemainingBudget("ages").value(), 0.5);

  auto log = service.audit_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_FALSE(log[0].from_cache);
  EXPECT_TRUE(log[1].from_cache);
  EXPECT_DOUBLE_EQ(log[1].epsilon_charged, 0.0);

  // A *different* query (other epsilon) is not a cache hit.
  auto different = service.SubmitQuery(MeanRequest(0.4));
  ASSERT_TRUE(different.ok());
  EXPECT_NEAR(service.RemainingBudget("ages").value(), 0.1, 1e-9);
}

TEST_F(GuptServiceTest, CacheDisabledByDefault) {
  auto service_ptr = MakeServicePtr(5.0);
  GuptService& service = *service_ptr;
  QueryRequest request = MeanRequest(1.0);
  auto first = service.SubmitQuery(request);
  auto second = service.SubmitQuery(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Without the cache both runs charge (and draw fresh noise).
  EXPECT_DOUBLE_EQ(service.RemainingBudget("ages").value(), 3.0);
  EXPECT_NE(first->output[0], second->output[0]);
}

TEST_F(GuptServiceTest, RestoreWithoutLedgerPathIsError) {
  auto service_ptr = MakeServicePtr();
  GuptService& service = *service_ptr;
  EXPECT_FALSE(service.RestoreLedger().ok());
  EXPECT_FALSE(service.PersistLedger().ok());
}

TEST_F(GuptServiceTest, FirstBootWithMissingLedgerFileIsFine) {
  std::string ledger = ::testing::TempDir() + "/gupt_never_written.txt";
  std::remove(ledger.c_str());
  auto service_ptr = MakeServicePtr(5.0, ledger);
  GuptService& service = *service_ptr;
  EXPECT_TRUE(service.RestoreLedger().ok());
  std::remove(ledger.c_str());
}

}  // namespace
}  // namespace gupt
