// Integration tests for the profiling & resource-accounting surface of
// GuptService over a real socket: /profilez returns parseable folded
// stacks that attribute CPU-burning samples to the execute_blocks stage,
// /slowz agrees with the audit log and /tracez on the same query id, and
// the parameter validation / busy paths answer with the right statuses.

#include "service/gupt_service.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/introspect/http_client.h"
#include "obs/prof/profiler.h"
#include "../obs/minijson.h"

namespace gupt {
namespace {

using ::gupt::obs::introspect::HttpGet;
using ::gupt::obs::introspect::HttpGetResult;
using ::gupt::testjson::JsonValue;
using ::gupt::testjson::ParseJson;

Dataset Ages(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(40.0, 10.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

QueryRequest MeanRequest(double epsilon) {
  QueryRequest request;
  request.analyst = "alice";
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = epsilon;
  request.range_mode = RangeMode::kTight;
  request.output_ranges = {Range{0.0, 150.0}};
  return request;
}

/// A registry with a vetted "spin" program that burns ~2 ms of CPU per
/// block: the CPU anchor the profiler must attribute to execute_blocks.
ProgramRegistry RegistryWithSpin() {
  ProgramRegistry registry = ProgramRegistry::WithStandardPrograms();
  EXPECT_TRUE(
      registry
          .RegisterBuilder(
              "spin",
              [](const ProgramSpec&) -> Result<ProgramFactory> {
                return MakeProgramFactory("spin", 1, [](const Dataset& block) {
                  volatile double sink = 0;
                  for (int i = 0; i < 400000; ++i) {
                    sink = sink + static_cast<double>(i % 97) * 1e-9;
                  }
                  return Result<Row>(
                      Row{static_cast<double>(block.num_rows()) + sink});
                });
              })
          .ok());
  return registry;
}

std::unique_ptr<GuptService> MakeServingService(ServiceOptions options,
                                                ProgramRegistry registry,
                                                double budget = 50.0) {
  options.introspect_port = 0;  // ephemeral
  auto service =
      std::make_unique<GuptService>(std::move(options), std::move(registry));
  EXPECT_GT(service->introspect_port(), 0);
  DatasetOptions ds;
  ds.total_epsilon = budget;
  EXPECT_TRUE(service->RegisterDataset("ages", Ages(4000, 1), ds).ok());
  return service;
}

TEST(ProfServiceTest, ProfilezReturnsFoldedStacksAttributedToExecuteBlocks) {
  ASSERT_FALSE(obs::prof::Profiler::Get().IsRunning());
  ServiceOptions options;
  options.runtime.num_workers = 2;
  options.admission_workers = 2;
  auto service = MakeServingService(options, RegistryWithSpin());

  // Keep the block-execution workers burning CPU inside the spin program
  // for the whole capture window.
  std::atomic<bool> stop{false};
  std::thread burner([&] {
    while (!stop.load()) {
      QueryRequest request = MeanRequest(0.01);
      request.program.name = "spin";
      request.block_size = 500;  // 8 blocks x ~2ms CPU per query
      auto report = service->SubmitQuery(request);
      if (!report.ok()) break;  // budget exhausted: the capture is over
    }
  });

  HttpGetResult capture =
      HttpGet("127.0.0.1", service->introspect_port(),
              "/profilez?seconds=1&hz=250", /*timeout_ms=*/20000);
  stop.store(true);
  burner.join();

  ASSERT_TRUE(capture.ok) << capture.error;
  ASSERT_EQ(capture.status, 200) << capture.body;
  EXPECT_NE(capture.content_type.find("text/plain"), std::string::npos);
  // The body must parse as folded stacks (the same validator gupt_cli
  // profile applies before writing the file).
  EXPECT_GT(obs::prof::FoldedSampleCount(capture.body), 0) << capture.body;
  // The CPU anchor: samples taken inside the spin program fold under the
  // execute_blocks stage root set by the worker threads.
  EXPECT_NE(capture.body.find("stage:execute_blocks"), std::string::npos)
      << capture.body;
  // The capture stopped and disarmed the profiler.
  EXPECT_FALSE(obs::prof::Profiler::Get().IsRunning());
}

TEST(ProfServiceTest, ProfilezValidatesParamsAndClampsTheWindow) {
  ServiceOptions options;
  options.profilez_max_seconds = 0.2;  // clamp long requests
  auto service =
      MakeServingService(options, ProgramRegistry::WithStandardPrograms());
  const int port = service->introspect_port();

  EXPECT_EQ(HttpGet("127.0.0.1", port, "/profilez?seconds=abc").status, 400);
  EXPECT_EQ(HttpGet("127.0.0.1", port, "/profilez?seconds=-1").status, 400);
  EXPECT_EQ(HttpGet("127.0.0.1", port, "/profilez?seconds=0").status, 400);
  EXPECT_EQ(HttpGet("127.0.0.1", port, "/profilez?hz=0").status, 400);
  EXPECT_EQ(HttpGet("127.0.0.1", port, "/profilez?hz=5000").status, 400);
  EXPECT_EQ(HttpGet("127.0.0.1", port, "/profilez?hz=xyz").status, 400);

  // ?seconds=60 is clamped to 0.2s: the request answers promptly.
  const auto begin = std::chrono::steady_clock::now();
  HttpGetResult clamped =
      HttpGet("127.0.0.1", port, "/profilez?seconds=60", /*timeout_ms=*/10000);
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  ASSERT_TRUE(clamped.ok) << clamped.error;
  EXPECT_EQ(clamped.status, 200);
  EXPECT_LT(took, 5.0);
  EXPECT_GE(obs::prof::FoldedSampleCount(clamped.body), 0) << clamped.body;
}

TEST(ProfServiceTest, ProfilezAnswers503WhileAnotherCaptureIsRunning) {
  auto service = MakeServingService(ServiceOptions{},
                                    ProgramRegistry::WithStandardPrograms());
  // Occupy the process-wide profiler directly: the endpoint must refuse
  // rather than queue or restart the capture.
  ASSERT_TRUE(obs::prof::Profiler::Get().Start(obs::prof::ProfilerOptions{}));
  HttpGetResult busy = HttpGet("127.0.0.1", service->introspect_port(),
                               "/profilez?seconds=0.1");
  EXPECT_EQ(busy.status, 503);
  EXPECT_NE(busy.body.find("busy"), std::string::npos);
  (void)obs::prof::Profiler::Get().Stop();

  HttpGetResult retry = HttpGet("127.0.0.1", service->introspect_port(),
                                "/profilez?seconds=0.1", /*timeout_ms=*/10000);
  EXPECT_EQ(retry.status, 200);
}

TEST(ProfServiceTest, SlowzAgreesWithAuditAndTracezOnTheSameQueryId) {
  ServiceOptions options;
  options.runtime.num_workers = 2;
  auto service =
      MakeServingService(options, ProgramRegistry::WithStandardPrograms());
  auto report = service->SubmitQuery(MeanRequest(0.5));
  ASSERT_TRUE(report.ok()) << report.status();
  const std::uint64_t qid = report->trace.query_id();
  ASSERT_GT(qid, 0u);

  // --- /slowz?format=json --------------------------------------------------
  HttpGetResult scrape = HttpGet("127.0.0.1", service->introspect_port(),
                                 "/slowz?format=json");
  ASSERT_TRUE(scrape.ok) << scrape.error;
  ASSERT_EQ(scrape.status, 200);
  EXPECT_NE(scrape.content_type.find("application/json"), std::string::npos);
  JsonValue root;
  ASSERT_TRUE(ParseJson(scrape.body, &root)) << scrape.body;
  const JsonValue* queries = root.Find("queries");
  ASSERT_NE(queries, nullptr);
  const JsonValue* entry = nullptr;
  for (const JsonValue& candidate : queries->array) {
    if (candidate.Find("query_id")->number == static_cast<double>(qid)) {
      entry = &candidate;
    }
  }
  ASSERT_NE(entry, nullptr) << scrape.body;

  // The entry is a copy of the report's own ledger: exact agreement (the
  // JSON doubles round-trip through 17-digit formatting).
  EXPECT_EQ(entry->Find("analyst")->string, "alice");
  EXPECT_EQ(entry->Find("program")->string, "mean");
  EXPECT_EQ(entry->Find("status")->string, "ok");
  EXPECT_DOUBLE_EQ(entry->Find("wall_seconds")->number,
                   std::chrono::duration<double>(report->elapsed).count());
  EXPECT_DOUBLE_EQ(entry->Find("cpu_seconds")->number,
                   static_cast<double>(report->resources.cpu_ns) / 1e9);

  // --- the audit record for the same query ---------------------------------
  std::vector<AuditRecord> audit = service->audit_log();
  ASSERT_FALSE(audit.empty());
  const AuditRecord& record = audit.back();
  ASSERT_TRUE(record.accepted);
  EXPECT_DOUBLE_EQ(record.cpu_seconds, entry->Find("cpu_seconds")->number);
  EXPECT_DOUBLE_EQ(record.child_cpu_seconds,
                   entry->Find("child_cpu_seconds")->number);
  EXPECT_FALSE(record.resource_summary.empty());

  // --- stage breakdown vs the trace ----------------------------------------
  const JsonValue* stages = entry->Find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_EQ(stages->array.size(), report->trace.spans().size());
  double stage_cpu_sum = 0;
  for (std::size_t i = 0; i < stages->array.size(); ++i) {
    const JsonValue& stage = stages->array[i];
    const obs::SpanRecord& span = report->trace.spans()[i];
    EXPECT_EQ(stage.Find("name")->string, span.name);
    EXPECT_DOUBLE_EQ(stage.Find("wall_seconds")->number,
                     std::chrono::duration<double>(span.duration).count());
    stage_cpu_sum += stage.Find("cpu_seconds")->number;
  }
  // Per-stage CPU sums to the query CPU within clock granularity (the
  // driver brackets the stage walk; see resource_ledger_test.cc).
  EXPECT_LE(stage_cpu_sum,
            entry->Find("cpu_seconds")->number +
                1e-3 * static_cast<double>(stages->array.size() + 1));

  // --- /tracez carries the same qid with matching wall spans ---------------
  HttpGetResult tracez =
      HttpGet("127.0.0.1", service->introspect_port(), "/tracez");
  ASSERT_TRUE(tracez.ok) << tracez.error;
  JsonValue trace_root;
  ASSERT_TRUE(ParseJson(tracez.body, &trace_root)) << tracez.body;
  const JsonValue* events = trace_root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_query = false;
  std::set<std::string> trace_stage_names;
  for (const JsonValue& event : events->array) {
    const JsonValue* cat = event.Find("cat");
    if (cat == nullptr) continue;
    if (cat->string == "query" &&
        event.Find("args")->Find("query_id")->number ==
            static_cast<double>(qid)) {
      saw_query = true;
      // dur is microseconds. The trace span and the slow-log wall clock
      // stop at adjacent-but-distinct instants in the query epilogue, so
      // a preemption between them (parallel ctest) can drift them apart;
      // bound the drift generously rather than assert exact agreement.
      EXPECT_NEAR(event.Find("dur")->number,
                  entry->Find("wall_seconds")->number * 1e6, 50'000.0);
    } else if (cat->string == "stage") {
      trace_stage_names.insert(event.Find("name")->string);
    }
  }
  EXPECT_TRUE(saw_query);
  for (const JsonValue& stage : stages->array) {
    EXPECT_TRUE(trace_stage_names.count(stage.Find("name")->string) > 0)
        << "stage " << stage.Find("name")->string << " missing from /tracez";
  }

  // --- the text rendering names the same query -----------------------------
  HttpGetResult text = HttpGet("127.0.0.1", service->introspect_port(),
                               "/slowz");
  ASSERT_TRUE(text.ok) << text.error;
  ASSERT_EQ(text.status, 200);
  EXPECT_NE(text.body.find("qid=" + std::to_string(qid)), std::string::npos)
      << text.body;
  EXPECT_NE(text.body.find("ledger"), std::string::npos);
}

TEST(ProfServiceTest, SlowzRetainsTheWorstQueriesNotTheLatest) {
  ServiceOptions options;
  options.slow_query_log_capacity = 2;
  auto service = MakeServingService(options, RegistryWithSpin());

  // One deliberately heavy query among cheap ones.
  QueryRequest heavy = MeanRequest(0.05);
  heavy.program.name = "spin";
  heavy.block_size = 500;
  auto heavy_report = service->SubmitQuery(heavy);
  ASSERT_TRUE(heavy_report.ok()) << heavy_report.status();
  const std::uint64_t heavy_qid = heavy_report->trace.query_id();

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.05)).ok());
  }

  const obs::prof::SlowQueryLog* log = service->slow_query_log();
  ASSERT_NE(log, nullptr);
  std::vector<obs::prof::SlowQueryEntry> snapshot = log->Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(log->total_considered(), 5u);
  // The heavy query burns ~16ms of spinning: it must still be retained
  // (and first) after four cheap queries tried to displace it.
  EXPECT_EQ(snapshot[0].query_id, heavy_qid);
}

TEST(ProfServiceTest, SlowzDisabledAnswers404) {
  ServiceOptions options;
  options.slow_query_log_capacity = 0;
  auto service =
      MakeServingService(options, ProgramRegistry::WithStandardPrograms());
  EXPECT_EQ(service->slow_query_log(), nullptr);
  ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.5)).ok());
  HttpGetResult scrape =
      HttpGet("127.0.0.1", service->introspect_port(), "/slowz");
  EXPECT_EQ(scrape.status, 404);
}

TEST(ProfServiceTest, ProfMetricFamiliesAppearInTheScrape) {
  auto service = MakeServingService(ServiceOptions{},
                                    ProgramRegistry::WithStandardPrograms());
  ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.5)).ok());
  HttpGetResult capture =
      HttpGet("127.0.0.1", service->introspect_port(),
              "/profilez?seconds=0.1", /*timeout_ms=*/10000);
  ASSERT_EQ(capture.status, 200) << capture.body;

  HttpGetResult metrics =
      HttpGet("127.0.0.1", service->introspect_port(), "/metrics");
  ASSERT_TRUE(metrics.ok) << metrics.error;
  for (const char* needle :
       {"gupt_prof_stage_cpu_seconds", "gupt_prof_query_cpu_seconds",
        "gupt_prof_profile_requests_total", "gupt_prof_samples_recorded_total",
        "gupt_rusage_minor_faults_total", "gupt_rusage_ctx_switches_total",
        "gupt_rusage_process_max_rss_bytes"}) {
    EXPECT_NE(metrics.body.find(needle), std::string::npos)
        << "missing " << needle;
  }
}

}  // namespace
}  // namespace gupt
