// Fault injection against the profiling surface: a fired
// service.introspect.profilez failpoint must degrade to a clean 503 with
// no stuck handler and no armed profiler left behind, and a fired
// exec.rusage failpoint must zero the child ledger without touching the
// query's answer — accounting is diagnostics, never part of the result.

#include "service/gupt_service.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/introspect/http_client.h"
#include "obs/prof/profiler.h"
#include "testing/failpoints/failpoints.h"

namespace gupt {
namespace {

using ::gupt::obs::introspect::HttpGet;
using ::gupt::obs::introspect::HttpGetResult;
using failpoints::Action;
using failpoints::CompiledIn;
using failpoints::Config;
using failpoints::ScopedFailpoint;

Dataset Ages(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(40.0, 10.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

QueryRequest MeanRequest(double epsilon) {
  QueryRequest request;
  request.analyst = "alice";
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = epsilon;
  request.range_mode = RangeMode::kTight;
  request.output_ranges = {Range{0.0, 150.0}};
  request.block_size = 64;
  return request;
}

std::unique_ptr<GuptService> MakeService(ServiceOptions options,
                                         double budget = 10.0) {
  options.introspect_port = 0;
  auto service = std::make_unique<GuptService>(
      std::move(options), ProgramRegistry::WithStandardPrograms());
  EXPECT_GT(service->introspect_port(), 0);
  DatasetOptions ds;
  ds.total_epsilon = budget;
  EXPECT_TRUE(service->RegisterDataset("ages", Ages(512, 1), ds).ok());
  return service;
}

class ProfFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CompiledIn()) {
      GTEST_SKIP() << "built with GUPT_FAILPOINTS_ENABLED=OFF";
    }
    failpoints::DisarmAll();
  }
  void TearDown() override { failpoints::DisarmAll(); }
};

TEST_F(ProfFaultTest, ProfilezFaultDegradesTo503WithoutArmingTheProfiler) {
  auto service = MakeService(ServiceOptions{});
  const int port = service->introspect_port();
  {
    ScopedFailpoint fp("service.introspect.profilez", Config{});

    HttpGetResult refused = HttpGet("127.0.0.1", port, "/profilez?seconds=1");
    ASSERT_TRUE(refused.ok) << refused.error;
    EXPECT_EQ(refused.status, 503);
    EXPECT_NE(refused.body.find("service.introspect.profilez"),
              std::string::npos)
        << refused.body;
    EXPECT_EQ(fp.fires(), 1u);
    // The handler answered before arming anything: no timer left running,
    // no capture in progress.
    EXPECT_FALSE(obs::prof::Profiler::Get().IsRunning());

    // Queries are unaffected while the failpoint is armed: the fault is
    // confined to the endpoint.
    ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.25)).ok());
  }

  // Disarmed: the very next capture succeeds end to end, proving the
  // refused request left no stuck state behind.
  HttpGetResult capture = HttpGet("127.0.0.1", port, "/profilez?seconds=0.1",
                                  /*timeout_ms=*/10000);
  ASSERT_TRUE(capture.ok) << capture.error;
  EXPECT_EQ(capture.status, 200) << capture.body;
  EXPECT_GE(obs::prof::FoldedSampleCount(capture.body), 0) << capture.body;
  EXPECT_FALSE(obs::prof::Profiler::Get().IsRunning());
  ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.25)).ok());
}

TEST_F(ProfFaultTest, RusageFaultZeroesChildLedgerWithoutTouchingTheAnswer) {
  ServiceOptions options;
  // Process isolation requires the sequential computation manager.
  options.runtime.num_workers = 0;
  options.runtime.seed = 7;
  options.runtime.chamber_policy.process_isolation = true;

  // Control run: same seed, no fault — the answer the faulted run must
  // reproduce exactly (rusage capture is off the result path).
  Row control_output;
  {
    auto service = MakeService(options);
    auto report = service->SubmitQuery(MeanRequest(0.5));
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_GT(report->resources.child_max_rss_kb, 0);
    control_output = report->output;
  }

  Config config;
  config.action = Action::kError;
  ScopedFailpoint fp("exec.rusage", config);
  auto service = MakeService(options);
  auto report = service->SubmitQuery(MeanRequest(0.5));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(fp.fires(), 0u);
  // Graceful degradation: the child columns read zero instead of garbage.
  EXPECT_EQ(report->resources.child_user_cpu_ns, 0);
  EXPECT_EQ(report->resources.child_sys_cpu_ns, 0);
  EXPECT_EQ(report->resources.child_max_rss_kb, 0);
  // The DP release is bit-identical to the control run.
  ASSERT_EQ(report->output.size(), control_output.size());
  for (std::size_t i = 0; i < control_output.size(); ++i) {
    EXPECT_DOUBLE_EQ(report->output[i], control_output[i]);
  }
  // The coordinator's own ledger is still measured.
  EXPECT_GT(report->resources.cpu_ns, 0);
}

}  // namespace
}  // namespace gupt
