// The SVT accounting proof under fault injection. The property at stake
// is the subsystem's whole reason to exist: a session charges its
// constant epsilon ONCE at open, then answers unboundedly many
// below-threshold queries for free — and that ledger invariant must
// survive injected faults at every new site (service.svt.open / .charge /
// .query / .close). Ledger equality is asserted through /budgetz JSON at
// 17-digit precision, the same style as the PR-3/PR-4 ledger tests.

#include "service/gupt_service.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/introspect/http_client.h"
#include "testing/failpoints/failpoints.h"
#include "../obs/minijson.h"

namespace gupt {
namespace {

using ::gupt::obs::introspect::HttpGet;
using ::gupt::obs::introspect::HttpGetResult;
using ::gupt::testjson::JsonValue;
using ::gupt::testjson::ParseJson;
using failpoints::Action;
using failpoints::CompiledIn;
using failpoints::Config;
using failpoints::ScopedFailpoint;

Dataset Ages(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(40.0, 10.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

std::unique_ptr<GuptService> MakeService(ServiceOptions options,
                                         double budget) {
  auto service = std::make_unique<GuptService>(
      std::move(options), ProgramRegistry::WithStandardPrograms());
  DatasetOptions ds;
  ds.total_epsilon = budget;
  EXPECT_TRUE(service->RegisterDataset("ages", Ages(512, 1), ds).ok());
  return service;
}

/// A session whose below-threshold verdicts are certain: with
/// epsilon = 0.5 the noise scales are Lap(4) and Lap(8), and every
/// candidate below counts zero rows against a threshold of 1000 — a
/// -1000 margin, P[ABOVE] < e^-100 per query.
SvtSessionRequest Monitor() {
  SvtSessionRequest request;
  request.analyst = "alice";
  request.dataset = "ages";
  request.threshold = 1000.0;
  request.epsilon = 0.5;
  request.max_positives = 1;
  return request;
}

/// Counts rows in [1000, 2000]; ages are clamped to [0, 150], so zero.
SvtCandidateQuery EmptyInterval() {
  SvtCandidateQuery candidate;
  candidate.dim = 0;
  candidate.lo = 1000.0;
  candidate.hi = 2000.0;
  return candidate;
}

QueryRequest MeanRequest(double epsilon) {
  QueryRequest request;
  request.analyst = "alice";
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = epsilon;
  request.range_mode = RangeMode::kTight;
  request.output_ranges = {Range{0.0, 150.0}};
  return request;
}

/// Scrapes /budgetz and returns the single dataset's ledger entry.
JsonValue ScrapeBudget(const GuptService& service) {
  HttpGetResult scrape =
      HttpGet("127.0.0.1", service.introspect_port(), "/budgetz?format=json");
  EXPECT_TRUE(scrape.ok) << scrape.error;
  JsonValue root;
  EXPECT_TRUE(ParseJson(scrape.body, &root)) << scrape.body;
  const JsonValue* datasets = root.Find("datasets");
  EXPECT_NE(datasets, nullptr);
  EXPECT_EQ(datasets->array.size(), 1u);
  return datasets->array[0];
}

class SvtFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CompiledIn()) {
      GTEST_SKIP() << "built with GUPT_FAILPOINTS_ENABLED=OFF";
    }
    failpoints::DisarmAll();
  }
  void TearDown() override { failpoints::DisarmAll(); }
};

TEST_F(SvtFaultTest, TenThousandBelowQueriesLeaveExactlyOneSessionCharge) {
  // The acceptance-criteria proof: a one-shot query establishes a 0.25
  // baseline spend, the session open adds exactly epsilon_session = 0.5,
  // and 10,000 below-threshold answers add exactly NOTHING — /budgetz
  // reads 0.75 to all 17 digits with exactly two ledger entries.
  ServiceOptions options;
  options.introspect_port = 0;
  auto service = MakeService(options, /*budget=*/2.0);
  ASSERT_GT(service->introspect_port(), 0);

  ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.25)).ok());
  auto opened = service->OpenSvtSession(Monitor());
  ASSERT_TRUE(opened.ok()) << opened.status();

  for (int i = 0; i < 10000; ++i) {
    auto answer = service->SvtQuery(opened->session_id, EmptyInterval());
    ASSERT_TRUE(answer.ok()) << "query " << i << ": " << answer.status();
    ASSERT_EQ(answer->verdict, dp::SvtVerdict::kBelow) << "query " << i;
  }

  JsonValue entry = ScrapeBudget(*service);
  EXPECT_EQ(entry.Find("total_epsilon")->number, 2.0);
  EXPECT_EQ(entry.Find("spent_epsilon")->number, 0.75);
  EXPECT_EQ(entry.Find("remaining_epsilon")->number, 1.25);
  ASSERT_EQ(entry.Find("charges")->array.size(), 2u);
  EXPECT_EQ(entry.Find("charges")->array[0].Find("epsilon")->number, 0.25);
  EXPECT_EQ(entry.Find("charges")->array[1].Find("epsilon")->number, 0.5);
  EXPECT_EQ(entry.Find("charges")->array[1].Find("label")->string,
            "svt:" + opened->session_id + ":alice");

  // The session is alive, positives untouched, 10k answers on the books.
  auto live = service->SvtSessions();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].queries_answered, 10000u);
  EXPECT_EQ(live[0].below_answered, 10000u);
  EXPECT_EQ(live[0].remaining_positives, 1u);
}

TEST_F(SvtFaultTest, EveryFourthQueryCrashKeepsTheLedgerInvariant) {
  // service.svt.query fires on evaluations 4, 8, 12, ... (allocated
  // atomically, so the fire count is exact regardless of interleaving).
  // kCrash degrades to kError at this non-chamber site: the analyst sees
  // an injected error, the engine state does not advance, and — the
  // invariant — the ledger never moves from the single open charge.
  Config config;
  config.every_nth = 4;
  config.action = Action::kCrash;
  ScopedFailpoint fp("service.svt.query", config);

  ServiceOptions options;
  options.introspect_port = 0;
  auto service = MakeService(options, /*budget=*/2.0);
  ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.25)).ok());
  auto opened = service->OpenSvtSession(Monitor());
  ASSERT_TRUE(opened.ok()) << opened.status();

  int injected = 0, answered = 0;
  for (int i = 0; i < 10000; ++i) {
    auto answer = service->SvtQuery(opened->session_id, EmptyInterval());
    if (answer.ok()) {
      ++answered;
    } else {
      ASSERT_TRUE(failpoints::IsInjected(answer.status()))
          << answer.status();
      ++injected;
    }
  }
  EXPECT_EQ(injected, 2500);  // exactly every 4th of 10,000
  EXPECT_EQ(answered, 7500);
  EXPECT_EQ(fp.evaluations(), 10000u);
  EXPECT_EQ(fp.fires(), 2500u);

  // Refused queries never reached the engine.
  auto live = service->SvtSessions();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].queries_answered, 7500u);

  // The 17-digit ledger proof holds under the crash storm: still exactly
  // baseline + epsilon_session, still exactly two entries.
  JsonValue entry = ScrapeBudget(*service);
  EXPECT_EQ(entry.Find("spent_epsilon")->number, 0.75);
  ASSERT_EQ(entry.Find("charges")->array.size(), 2u);
}

TEST_F(SvtFaultTest, ChargeFaultRefusesTheOpenWithNothingCharged) {
  // service.svt.charge sits immediately BEFORE the accountant debit, so a
  // fire must leave the ledger untouched and create no session.
  ServiceOptions options;
  auto service = MakeService(options, /*budget=*/2.0);
  {
    ScopedFailpoint fp("service.svt.charge", Config{});
    auto refused = service->OpenSvtSession(Monitor());
    ASSERT_FALSE(refused.ok());
    EXPECT_TRUE(failpoints::IsInjected(refused.status()));
    EXPECT_EQ(fp.fires(), 1u);
  }
  EXPECT_EQ(service->RemainingBudget("ages").value(), 2.0);
  EXPECT_TRUE(service->SvtSessions().empty());

  // Disarmed, the same open sails through and charges exactly once.
  auto opened = service->OpenSvtSession(Monitor());
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(service->RemainingBudget("ages").value(), 1.5);
}

TEST_F(SvtFaultTest, OpenFaultIsAuditedAndUncharged) {
  ScopedFailpoint fp("service.svt.open", Config{});
  ServiceOptions options;
  auto service = MakeService(options, /*budget=*/2.0);
  auto refused = service->OpenSvtSession(Monitor());
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(failpoints::IsInjected(refused.status()));
  EXPECT_EQ(service->RemainingBudget("ages").value(), 2.0);

  auto log = service->audit_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].program, "svt:open");
  EXPECT_FALSE(log[0].accepted);
  EXPECT_EQ(log[0].epsilon_charged, 0.0);
  EXPECT_EQ(log[0].analyst, "alice");
}

TEST_F(SvtFaultTest, CloseFaultLeavesTheSessionLiveAndRetryable) {
  ServiceOptions options;
  auto service = MakeService(options, /*budget=*/2.0);
  auto opened = service->OpenSvtSession(Monitor());
  ASSERT_TRUE(opened.ok());
  {
    ScopedFailpoint fp("service.svt.close", Config{});
    Status failed = service->CloseSvtSession(opened->session_id);
    ASSERT_FALSE(failed.ok());
    EXPECT_TRUE(failpoints::IsInjected(failed));
    // The close failed BEFORE touching the registry: still live,
    // still answering.
    ASSERT_EQ(service->SvtSessions().size(), 1u);
    ASSERT_TRUE(
        service->SvtQuery(opened->session_id, EmptyInterval()).ok());
  }
  // Retry after the fault clears: the close lands, the charge stays.
  EXPECT_TRUE(service->CloseSvtSession(opened->session_id).ok());
  EXPECT_TRUE(service->SvtSessions().empty());
  EXPECT_EQ(service->RemainingBudget("ages").value(), 1.5);
}

}  // namespace
}  // namespace gupt
