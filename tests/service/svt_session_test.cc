// Functional tests for the interactive SVT subsystem: session lifecycle
// (open/charge-once/auto-close), the batch top-k form, capacity and idle
// eviction, the /svtz introspection page, and the gupt_svt_* metrics.
// Noise is made negligible (epsilon = 1000) wherever a test asserts
// verdicts, so margins of +-100 rows behave deterministically.

#include "service/gupt_service.h"

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/introspect/http_client.h"
#include "obs/metrics.h"
#include "../obs/minijson.h"

namespace gupt {
namespace {

using ::gupt::obs::introspect::HttpGet;
using ::gupt::obs::introspect::HttpGetResult;
using ::gupt::testjson::JsonValue;
using ::gupt::testjson::ParseJson;

/// One column holding 0, 1, ..., n-1: interval counts are exact by
/// construction (count of [lo, hi] = hi - lo + 1 for integer bounds).
Dataset Ramp(std::size_t n) {
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) values.push_back(double(i));
  return Dataset::FromColumn(values).value();
}

std::unique_ptr<GuptService> MakeService(ServiceOptions options,
                                         double budget = 2000.0) {
  auto service = std::make_unique<GuptService>(
      std::move(options), ProgramRegistry::WithStandardPrograms());
  DatasetOptions ds;
  ds.total_epsilon = budget;
  EXPECT_TRUE(service->RegisterDataset("ramp", Ramp(1000), ds).ok());
  return service;
}

/// A session request whose noise is negligible next to +-100-row margins.
SvtSessionRequest BigEpsilonRequest(double threshold,
                                    std::size_t max_positives) {
  SvtSessionRequest request;
  request.analyst = "alice";
  request.dataset = "ramp";
  request.threshold = threshold;
  request.epsilon = 1000.0;
  request.max_positives = max_positives;
  return request;
}

/// Candidate counting the rows in [0, count-1], i.e. exact count `count`.
SvtCandidateQuery CountOf(std::size_t count, std::string label = "") {
  SvtCandidateQuery candidate;
  candidate.dim = 0;
  candidate.lo = -0.5;
  candidate.hi = double(count) - 0.5;
  candidate.label = std::move(label);
  return candidate;
}

double SpentEpsilon(const GuptService& service) {
  auto snapshots = service.BudgetSnapshots();
  EXPECT_EQ(snapshots.size(), 1u);
  return snapshots[0].budget.spent_epsilon;
}

TEST(SvtSessionTest, OpenValidatesRefusalsChargeNothing) {
  auto service = MakeService(ServiceOptions{});

  SvtSessionRequest bad = BigEpsilonRequest(500.0, 1);
  bad.analyst = "";
  EXPECT_EQ(service->OpenSvtSession(bad).status().code(),
            StatusCode::kInvalidArgument);

  bad = BigEpsilonRequest(500.0, 1);
  bad.epsilon = 0.0;
  EXPECT_EQ(service->OpenSvtSession(bad).status().code(),
            StatusCode::kInvalidArgument);

  bad = BigEpsilonRequest(500.0, 1);
  bad.max_positives = 0;
  EXPECT_EQ(service->OpenSvtSession(bad).status().code(),
            StatusCode::kInvalidArgument);

  bad = BigEpsilonRequest(500.0, 1);
  bad.dataset = "missing";
  EXPECT_EQ(service->OpenSvtSession(bad).status().code(),
            StatusCode::kNotFound);

  EXPECT_EQ(SpentEpsilon(*service), 0.0);
  EXPECT_TRUE(service->SvtSessions().empty());
}

TEST(SvtSessionTest, OpenChargesSessionEpsilonExactlyOnce) {
  auto service = MakeService(ServiceOptions{});
  auto opened = service->OpenSvtSession(BigEpsilonRequest(500.0, 3));
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(opened->session_id, "svt-1");
  EXPECT_EQ(opened->analyst, "alice");
  EXPECT_EQ(opened->dataset, "ramp");
  EXPECT_EQ(opened->epsilon, 1000.0);
  EXPECT_EQ(opened->max_positives, 3u);
  EXPECT_EQ(opened->remaining_positives, 3u);

  // Exactly one ledger entry for exactly the session epsilon.
  auto snapshot = service->BudgetSnapshots()[0].budget;
  EXPECT_EQ(snapshot.spent_epsilon, 1000.0);
  ASSERT_EQ(snapshot.charges.size(), 1u);
  EXPECT_EQ(snapshot.charges[0].epsilon, 1000.0);
  EXPECT_EQ(snapshot.charges[0].label, "svt:svt-1:alice");

  // The open is audited as a session lifecycle event.
  auto log = service->audit_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_TRUE(log[0].accepted);
  EXPECT_EQ(log[0].program, "svt:open");
  EXPECT_EQ(log[0].epsilon_charged, 1000.0);
}

TEST(SvtSessionTest, OpenBeyondDatasetBudgetIsRefusedUncharged) {
  auto service = MakeService(ServiceOptions{}, /*budget=*/1.0);
  SvtSessionRequest request = BigEpsilonRequest(500.0, 1);
  request.epsilon = 2.0;
  auto refused = service->OpenSvtSession(request);
  EXPECT_EQ(refused.status().code(), StatusCode::kBudgetExhausted);
  EXPECT_EQ(SpentEpsilon(*service), 0.0);
  EXPECT_TRUE(service->SvtSessions().empty());
}

TEST(SvtSessionTest, BelowAnswersAreFreeAndSessionAutoClosesWhenSpent) {
  auto service = MakeService(ServiceOptions{});
  const std::string id =
      service->OpenSvtSession(BigEpsilonRequest(500.0, 2))->session_id;

  // 200 below-threshold answers: count 400 vs threshold 500.
  for (int i = 0; i < 200; ++i) {
    auto answer = service->SvtQuery(id, CountOf(400));
    ASSERT_TRUE(answer.ok()) << answer.status();
    EXPECT_EQ(answer->verdict, dp::SvtVerdict::kBelow);
  }
  EXPECT_EQ(SpentEpsilon(*service), 1000.0);  // still only the open charge

  auto first = service->SvtQuery(id, CountOf(900));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->verdict, dp::SvtVerdict::kAbove);
  EXPECT_GT(first->gap, 0.0);
  EXPECT_EQ(first->positives_spent, 1u);
  EXPECT_FALSE(first->exhausted);

  auto second = service->SvtQuery(id, CountOf(900));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->exhausted);

  // Spending the last positive auto-closed the session.
  EXPECT_TRUE(service->SvtSessions().empty());
  EXPECT_EQ(service->SvtQuery(id, CountOf(400)).status().code(),
            StatusCode::kNotFound);
  // The irrevocable charge did not move.
  EXPECT_EQ(SpentEpsilon(*service), 1000.0);

  // The session's trace landed in the /tracez ring.
  bool found = false;
  for (const auto& trace : service->trace_ring().Snapshot()) {
    if (trace.program != "svt:session") continue;
    found = true;
    EXPECT_EQ(trace.dataset, "ramp");
    EXPECT_EQ(trace.analyst, "alice");
    EXPECT_TRUE(trace.trace.HasStage("svt_open"));
    EXPECT_TRUE(trace.trace.HasStage("svt_positive"));
    EXPECT_TRUE(trace.trace.HasStage("svt_session"));
    EXPECT_EQ(trace.trace.GaugeValue("svt_queries_answered").value(), 202.0);
    EXPECT_EQ(trace.trace.GaugeValue("svt_positives_spent").value(), 2.0);
  }
  EXPECT_TRUE(found);
}

TEST(SvtSessionTest, BatchRanksPositivesByFreeGap) {
  auto service = MakeService(ServiceOptions{});
  const std::string id =
      service->OpenSvtSession(BigEpsilonRequest(500.0, 3))->session_id;

  std::vector<SvtCandidateQuery> candidates = {
      CountOf(900, "big"), CountOf(100, "small"), CountOf(800, "medium"),
      CountOf(50, "tiny"), CountOf(700, "least")};
  auto batch = service->SvtQueryBatch(id, candidates);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->items.size(), 5u);
  EXPECT_FALSE(batch->exhausted_midway);
  EXPECT_EQ(batch->remaining_positives, 0u);

  // With epsilon = 1000 the free gaps preserve the true margin order:
  // 400 ("big") > 300 ("medium") > 200 ("least").
  double gap_big = 0, gap_medium = 0, gap_least = 0;
  for (const SvtBatchItem& item : batch->items) {
    const bool expect_above =
        item.label == "big" || item.label == "medium" || item.label == "least";
    EXPECT_EQ(item.verdict == dp::SvtVerdict::kAbove, expect_above)
        << item.label;
    if (item.label == "big") gap_big = item.gap;
    if (item.label == "medium") gap_medium = item.gap;
    if (item.label == "least") gap_least = item.gap;
  }
  EXPECT_GT(gap_big, gap_medium);
  EXPECT_GT(gap_medium, gap_least);
}

TEST(SvtSessionTest, BatchStopsMidListWhenPositivesRunOut) {
  auto service = MakeService(ServiceOptions{});
  const std::string id =
      service->OpenSvtSession(BigEpsilonRequest(500.0, 1))->session_id;
  std::vector<SvtCandidateQuery> candidates = {
      CountOf(100, "below"), CountOf(900, "spends-the-one"),
      CountOf(800, "never-answered")};
  auto batch = service->SvtQueryBatch(id, candidates);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->items.size(), 2u);  // the tail is not answered
  EXPECT_TRUE(batch->exhausted_midway);
  EXPECT_EQ(batch->items[1].label, "spends-the-one");
  // Exhaustion mid-batch auto-closes, same as the streaming form.
  EXPECT_TRUE(service->SvtSessions().empty());
}

TEST(SvtSessionTest, CapacityRefusalChargesNothing) {
  ServiceOptions options;
  options.svt_session_capacity = 1;
  auto service = MakeService(options);

  auto first = service->OpenSvtSession(BigEpsilonRequest(500.0, 1));
  ASSERT_TRUE(first.ok());
  auto refused = service->OpenSvtSession(BigEpsilonRequest(500.0, 1));
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(SpentEpsilon(*service), 1000.0);  // only the first open

  ASSERT_TRUE(service->CloseSvtSession(first->session_id).ok());
  EXPECT_TRUE(service->OpenSvtSession(BigEpsilonRequest(500.0, 1)).ok());
}

TEST(SvtSessionTest, IdleSessionsAreSweptOnTheNextTouch) {
  ServiceOptions options;
  options.svt_idle_timeout_ms = 5;
  auto service = MakeService(options);

  const std::string idle_id =
      service->OpenSvtSession(BigEpsilonRequest(500.0, 1))->session_id;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // The next open sweeps the idle session out.
  auto fresh = service->OpenSvtSession(BigEpsilonRequest(500.0, 1));
  ASSERT_TRUE(fresh.ok());
  auto live = service->SvtSessions();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].session_id, fresh->session_id);
  EXPECT_EQ(service->SvtQuery(idle_id, CountOf(1)).status().code(),
            StatusCode::kNotFound);

  // Eviction pushed the idle session's trace; its charge stays spent.
  bool traced = false;
  for (const auto& trace : service->trace_ring().Snapshot()) {
    traced = traced || trace.program == "svt:session";
  }
  EXPECT_TRUE(traced);
  EXPECT_EQ(SpentEpsilon(*service), 2000.0);
}

TEST(SvtSessionTest, InvalidCandidatesAreRefusedWithoutAdvancingState) {
  auto service = MakeService(ServiceOptions{});
  const std::string id =
      service->OpenSvtSession(BigEpsilonRequest(500.0, 1))->session_id;

  SvtCandidateQuery bad_dim;
  bad_dim.dim = 7;
  EXPECT_EQ(service->SvtQuery(id, bad_dim).status().code(),
            StatusCode::kInvalidArgument);

  SvtCandidateQuery inverted = CountOf(10);
  inverted.lo = 5.0;
  inverted.hi = 1.0;
  EXPECT_EQ(service->SvtQuery(id, inverted).status().code(),
            StatusCode::kInvalidArgument);

  auto live = service->SvtSessions();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].queries_answered, 0u);
}

TEST(SvtSessionTest, SvtzAndMetricsExposeLiveSessions) {
  ServiceOptions options;
  options.introspect_port = 0;  // ephemeral
  auto service = MakeService(options);
  ASSERT_GT(service->introspect_port(), 0);

  const std::string id =
      service->OpenSvtSession(BigEpsilonRequest(500.0, 2))->session_id;
  ASSERT_TRUE(service->SvtQuery(id, CountOf(100)).ok());
  ASSERT_TRUE(service->SvtQuery(id, CountOf(900)).ok());

  HttpGetResult page = HttpGet("127.0.0.1", service->introspect_port(),
                               "/svtz?format=json");
  ASSERT_TRUE(page.ok) << page.error;
  JsonValue root;
  ASSERT_TRUE(ParseJson(page.body, &root)) << page.body;
  const JsonValue* sessions = root.Find("sessions");
  ASSERT_NE(sessions, nullptr);
  ASSERT_EQ(sessions->array.size(), 1u);
  const JsonValue& entry = sessions->array[0];
  EXPECT_EQ(entry.Find("session_id")->string, id);
  EXPECT_EQ(entry.Find("analyst")->string, "alice");
  EXPECT_EQ(entry.Find("dataset")->string, "ramp");
  EXPECT_EQ(entry.Find("threshold")->number, 500.0);
  EXPECT_EQ(entry.Find("epsilon")->number, 1000.0);
  EXPECT_EQ(entry.Find("max_positives")->number, 2.0);
  EXPECT_EQ(entry.Find("positives_spent")->number, 1.0);
  EXPECT_EQ(entry.Find("remaining_positives")->number, 1.0);
  EXPECT_EQ(entry.Find("queries_answered")->number, 2.0);
  EXPECT_EQ(entry.Find("below_answered")->number, 1.0);

  HttpGetResult text =
      HttpGet("127.0.0.1", service->introspect_port(), "/svtz");
  ASSERT_TRUE(text.ok) << text.error;
  EXPECT_NE(text.body.find("svt sessions: 1 live"), std::string::npos);
  EXPECT_NE(text.body.find(id), std::string::npos);

  HttpGetResult metrics =
      HttpGet("127.0.0.1", service->introspect_port(), "/metrics");
  ASSERT_TRUE(metrics.ok) << metrics.error;
  for (const char* name :
       {"gupt_svt_sessions_opened_total", "gupt_svt_sessions_active_count",
        "gupt_svt_queries_answered_total", "gupt_svt_positives_spent_total",
        "gupt_svt_epsilon_charged_total"}) {
    EXPECT_NE(metrics.body.find(name), std::string::npos) << name;
  }
  // All gupt_svt_* names satisfy the registry's naming lint.
  EXPECT_TRUE(obs::MetricsRegistry::Get().invalid_names().empty());
}

TEST(SvtSessionTest, CloseIsAuditedAndIdempotent) {
  auto service = MakeService(ServiceOptions{});
  const std::string id =
      service->OpenSvtSession(BigEpsilonRequest(500.0, 1))->session_id;
  EXPECT_TRUE(service->CloseSvtSession(id).ok());
  EXPECT_EQ(service->CloseSvtSession(id).code(), StatusCode::kNotFound);

  auto log = service->audit_log();
  ASSERT_EQ(log.size(), 3u);  // open + two close attempts
  EXPECT_EQ(log[1].program, "svt:close");
  EXPECT_TRUE(log[1].accepted);
  EXPECT_FALSE(log[2].accepted);
}

TEST(SvtSessionTest, SessionsAreDeterministicForAFixedServiceSeed) {
  // Two services with the same master seed replay identical SVT noise:
  // the verdict/gap stream of session svt-1 matches bit for bit.
  auto run = [](std::uint64_t seed) {
    ServiceOptions options;
    options.runtime.seed = seed;
    auto service = MakeService(options);
    SvtSessionRequest request;
    request.analyst = "alice";
    request.dataset = "ramp";
    request.threshold = 500.0;
    request.epsilon = 2.0;  // real noise, so determinism is non-trivial
    request.max_positives = 5;
    const std::string id = service->OpenSvtSession(request)->session_id;
    std::vector<double> gaps;
    for (int i = 0; i < 50; ++i) {
      auto answer = service->SvtQuery(id, CountOf(100 + 160 * (i % 6)));
      if (!answer.ok()) break;
      gaps.push_back(answer->verdict == dp::SvtVerdict::kAbove ? answer->gap
                                                               : -1.0);
    }
    return gaps;
  };
  EXPECT_EQ(run(0xfeed), run(0xfeed));
  EXPECT_NE(run(0xfeed), run(0xbeef));
}

}  // namespace
}  // namespace gupt
