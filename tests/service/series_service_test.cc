// Integration tests for the time-series / burn-rate / alerting surface
// of GuptService over a real socket. The centrepiece is the acceptance
// drive: real queries exhaust a dataset's budget while a manually-ticked
// collector watches, and the test proves (a) budget_exhaustion_imminent
// walks pending -> firing strictly before the ledger hits its cap,
// (b) the forecasted queries-to-exhaustion at mid-drive is within 20%
// of the actual count, and (c) integrating the /timeseriesz burn-rate
// series over its own timestamps reproduces the /budgetz epsilon delta
// to 1e-9.

#include "service/gupt_service.h"

#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/introspect/http_client.h"
#include "../obs/minijson.h"

namespace gupt {
namespace {

using ::gupt::obs::introspect::HttpGet;
using ::gupt::obs::introspect::HttpGetResult;
using ::gupt::testjson::JsonValue;
using ::gupt::testjson::ParseJson;

Dataset Ages(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(40.0, 10.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

QueryRequest MeanRequest(double epsilon) {
  QueryRequest request;
  request.analyst = "alice";
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = epsilon;
  request.range_mode = RangeMode::kTight;
  request.output_ranges = {Range{0.0, 150.0}};
  return request;
}

/// A service with the collector in manual-tick mode: deterministic
/// series, no background thread, every tick driven by the test.
std::unique_ptr<GuptService> MakeManualTickService(double budget,
                                                   ServiceOptions options = {}) {
  options.introspect_port = 0;  // ephemeral
  options.collector_period_ms = 0;
  options.series_capacity = 4096;
  options.series_window_ms = 1000 * 1000;  // cover the whole drive
  auto service = std::make_unique<GuptService>(
      options, ProgramRegistry::WithStandardPrograms());
  EXPECT_GT(service->introspect_port(), 0);
  DatasetOptions ds;
  ds.total_epsilon = budget;
  EXPECT_TRUE(service->RegisterDataset("ages", Ages(2000, 1), ds).ok());
  return service;
}

/// The instance entry for rule[instance] in an /alertz?format=json body.
const JsonValue* FindInstance(const JsonValue& root, const std::string& rule,
                              const std::string& instance) {
  const JsonValue* instances = root.Find("instances");
  if (instances == nullptr) return nullptr;
  for (const JsonValue& entry : instances->array) {
    if (entry.Find("rule")->string == rule &&
        entry.Find("instance")->string == instance) {
      return &entry;
    }
  }
  return nullptr;
}

double ScrapeSpentEpsilon(int port) {
  HttpGetResult scrape = HttpGet("127.0.0.1", port, "/budgetz?format=json");
  EXPECT_TRUE(scrape.ok) << scrape.error;
  JsonValue root;
  EXPECT_TRUE(ParseJson(scrape.body, &root)) << scrape.body;
  const JsonValue* datasets = root.Find("datasets");
  if (datasets == nullptr || datasets->array.empty()) return -1.0;
  return datasets->array[0].Find("spent_epsilon")->number;
}

TEST(SeriesServiceTest, EndpointsAnswer404WhenSeriesDisabled) {
  ServiceOptions options;
  options.introspect_port = 0;
  options.series_capacity = 0;
  GuptService service(options, ProgramRegistry::WithStandardPrograms());
  ASSERT_GT(service.introspect_port(), 0);
  EXPECT_EQ(service.series_store(), nullptr);
  EXPECT_EQ(service.series_collector(), nullptr);
  EXPECT_EQ(service.alert_engine(), nullptr);
  EXPECT_EQ(
      HttpGet("127.0.0.1", service.introspect_port(), "/timeseriesz").status,
      404);
  EXPECT_EQ(HttpGet("127.0.0.1", service.introspect_port(), "/alertz").status,
            404);
  // /healthz still answers, without the collector diagnostics.
  HttpGetResult health = HttpGet("127.0.0.1", service.introspect_port(),
                                 "/healthz?verbose=1");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("alerts: disabled"), std::string::npos)
      << health.body;
}

TEST(SeriesServiceTest, TimeserieszRendersCollectedHistory) {
  auto service = MakeManualTickService(50.0);
  const int port = service->introspect_port();

  ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.5)).ok());
  service->series_collector()->TickNow();
  ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.5)).ok());
  service->series_collector()->TickNow();

  HttpGetResult text = HttpGet("127.0.0.1", port, "/timeseriesz");
  ASSERT_TRUE(text.ok) << text.error;
  ASSERT_EQ(text.status, 200);
  EXPECT_NE(text.body.find("series tracked"), std::string::npos);
  EXPECT_NE(text.body.find("gupt_budget_spent_epsilon{dataset=ages}:value"),
            std::string::npos)
      << text.body;

  HttpGetResult json = HttpGet(
      "127.0.0.1", port,
      "/timeseriesz?format=json&name=gupt_budget_spent_epsilon");
  ASSERT_EQ(json.status, 200);
  EXPECT_NE(json.content_type.find("application/json"), std::string::npos);
  JsonValue root;
  ASSERT_TRUE(ParseJson(json.body, &root)) << json.body;
  EXPECT_DOUBLE_EQ(root.Find("matched")->number, 1.0);
  EXPECT_DOUBLE_EQ(root.Find("period_ms")->number, 0.0);
  const JsonValue* series = root.Find("series");
  ASSERT_EQ(series->array.size(), 1u);
  const JsonValue* samples = series->array[0].Find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_EQ(samples->array.size(), 2u);
  // The sampled ledger matches the accountant bit-for-bit (17-digit
  // doubles both ways).
  EXPECT_DOUBLE_EQ(samples->array[1].Find("value")->number,
                   ScrapeSpentEpsilon(port));
}

TEST(SeriesServiceTest, SeriesAndAlertMetricFamiliesAppearInTheScrape) {
  auto service = MakeManualTickService(50.0);
  ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.5)).ok());
  service->series_collector()->TickNow();
  service->series_collector()->TickNow();

  HttpGetResult metrics =
      HttpGet("127.0.0.1", service->introspect_port(), "/metrics");
  ASSERT_TRUE(metrics.ok) << metrics.error;
  for (const char* needle :
       {"gupt_series_tracked_count", "gupt_series_points_total",
        "gupt_series_collections_total", "gupt_series_collect_duration_seconds",
        "gupt_alert_rules_count", "gupt_alert_evaluations_total",
        "gupt_budget_burn_rate_epsilon", "gupt_budget_spent_epsilon"}) {
    EXPECT_NE(metrics.body.find(needle), std::string::npos)
        << "missing " << needle;
  }
}

TEST(SeriesServiceTest, HealthzVerboseReportsCollectorAndAlertState) {
  auto service = MakeManualTickService(50.0);
  service->series_collector()->TickNow();
  HttpGetResult health = HttpGet("127.0.0.1", service->introspect_port(),
                                 "/healthz?verbose=1");
  ASSERT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("ok\n"), std::string::npos) << health.body;
  EXPECT_NE(health.body.find("admission: depth="), std::string::npos);
  EXPECT_NE(health.body.find("alerts: firing=0"), std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("collector: ticks=1 period_ms=0"),
            std::string::npos)
      << health.body;

  // Terse /healthz is unchanged: just the status line.
  HttpGetResult terse =
      HttpGet("127.0.0.1", service->introspect_port(), "/healthz");
  EXPECT_EQ(terse.body, "ok\n");
}

// The acceptance drive (see file comment).
TEST(SeriesServiceTest, ExhaustionDriveForecastsAndAlertsBeforeTheCap) {
  const double kBudget = 2.0;
  const double kPerQuery = 0.05;
  auto service = MakeManualTickService(kBudget);
  const int port = service->introspect_port();
  obs::series::SeriesCollector* collector = service->series_collector();
  ASSERT_NE(collector, nullptr);

  // Baseline tick before any query: anchors the burn integral at
  // spent == 0 and primes the counter rates.
  collector->TickNow();

  int completed = 0;
  int firing_at_query = -1;
  double remaining_when_firing = -1.0;
  bool pending_recorded = false;
  double forecast_at_10 = -1.0;

  while (true) {
    auto report = service->SubmitQuery(MeanRequest(kPerQuery));
    if (!report.ok()) {
      EXPECT_EQ(report.status().code(), StatusCode::kBudgetExhausted)
          << report.status();
      break;
    }
    ++completed;
    collector->TickNow();
    ASSERT_LT(completed, 200) << "budget never exhausted";

    if (firing_at_query < 0) {
      HttpGetResult alertz =
          HttpGet("127.0.0.1", port, "/alertz?format=json");
      ASSERT_TRUE(alertz.ok) << alertz.error;
      JsonValue root;
      ASSERT_TRUE(ParseJson(alertz.body, &root)) << alertz.body;
      const JsonValue* instance =
          FindInstance(root, "budget_exhaustion_imminent", "ages");
      if (instance != nullptr &&
          instance->Find("state")->string == "firing") {
        firing_at_query = completed;
        // (a) the transition passed through pending (both transitions
        // recorded even when they happen in one evaluation)...
        pending_recorded =
            instance->Find("pending_since_unix_ms")->number > 0 &&
            instance->Find("transitions")->number >= 2;
        // ...and the ledger still has budget left when the alert fires.
        remaining_when_firing = kBudget - ScrapeSpentEpsilon(port);
      }
    }
    if (completed == 10) {
      std::vector<obs::series::BudgetForecast> forecasts =
          collector->LatestForecasts();
      ASSERT_EQ(forecasts.size(), 1u);
      EXPECT_TRUE(forecasts[0].burning);
      forecast_at_10 = forecasts[0].queries_to_exhaustion;
    }
  }
  // Final tick after the last accepted charge so the series reaches the
  // final ledger state.
  collector->TickNow();

  // A 2.0 budget at 0.05/query admits 40 queries (the accountant's
  // 1e-9 slack makes the division exact).
  EXPECT_EQ(completed, 40);

  // (a) The alert fired strictly before exhaustion.
  ASSERT_GT(firing_at_query, 0) << "budget_exhaustion_imminent never fired";
  EXPECT_LT(firing_at_query, completed);
  EXPECT_TRUE(pending_recorded);
  EXPECT_GT(remaining_when_firing, 0.0);

  // (b) Mid-drive forecast: 30 queries actually remained after the 10th;
  // the forecast must land within +/-20%.
  const double actual_remaining = completed - 10;
  ASSERT_GT(forecast_at_10, 0.0);
  EXPECT_TRUE(std::isfinite(forecast_at_10));
  EXPECT_NEAR(forecast_at_10, actual_remaining, 0.2 * actual_remaining)
      << "forecast " << forecast_at_10 << " vs actual " << actual_remaining;

  // (c) The burn-rate series integrates to the /budgetz delta to 1e-9.
  HttpGetResult series = HttpGet(
      "127.0.0.1", port,
      "/timeseriesz?format=json&name=gupt_budget_burn_rate_epsilon");
  ASSERT_EQ(series.status, 200);
  JsonValue root;
  ASSERT_TRUE(ParseJson(series.body, &root)) << series.body;
  ASSERT_EQ(root.Find("series")->array.size(), 1u);
  const JsonValue* samples = root.Find("series")->array[0].Find("samples");
  ASSERT_NE(samples, nullptr);
  // One burn point per tick: baseline + one per query + final.
  ASSERT_EQ(samples->array.size(), static_cast<std::size_t>(completed + 2));
  double integral = 0.0;
  for (std::size_t i = 1; i < samples->array.size(); ++i) {
    const double dt =
        (samples->array[i].Find("t_ns")->number -
         samples->array[i - 1].Find("t_ns")->number) *
        1e-9;
    integral += samples->array[i].Find("value")->number * dt;
  }
  const double spent = ScrapeSpentEpsilon(port);
  EXPECT_NEAR(integral, spent, 1e-9)
      << "integral " << integral << " vs ledger " << spent;
  EXPECT_NEAR(spent, kBudget, 1e-9);

  // The exhausted dataset forecasts a zero horizon...
  std::vector<obs::series::BudgetForecast> final_forecasts =
      collector->LatestForecasts();
  ASSERT_EQ(final_forecasts.size(), 1u);
  EXPECT_DOUBLE_EQ(final_forecasts[0].seconds_to_exhaustion, 0.0);
  EXPECT_DOUBLE_EQ(final_forecasts[0].queries_to_exhaustion, 0.0);

  // ...the critical alert keeps firing, and /healthz reports degraded
  // while staying 200 (load balancers keep routing; pagers fire).
  HttpGetResult health = HttpGet("127.0.0.1", port, "/healthz?verbose=1");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("degraded: "), std::string::npos) << health.body;
  EXPECT_NE(
      health.body.find("critical alert firing: budget_exhaustion_imminent"),
      std::string::npos)
      << health.body;

  // The alert transition carries a query id that joins to the audit log.
  HttpGetResult alertz = HttpGet("127.0.0.1", port, "/alertz?format=json");
  JsonValue alert_root;
  ASSERT_TRUE(ParseJson(alertz.body, &alert_root)) << alertz.body;
  const JsonValue* instance =
      FindInstance(alert_root, "budget_exhaustion_imminent", "ages");
  ASSERT_NE(instance, nullptr);
  EXPECT_EQ(instance->Find("state")->string, "firing");
  EXPECT_GT(instance->Find("last_transition_qid")->number, 0.0);

  // And the text rendering agrees on the firing state.
  HttpGetResult text = HttpGet("127.0.0.1", port, "/alertz");
  EXPECT_NE(text.body.find("budget_exhaustion_imminent[ages]"),
            std::string::npos)
      << text.body;
  EXPECT_NE(text.body.find("state=firing"), std::string::npos);
}

TEST(SeriesServiceTest, VarzHistogramsCarryInterpolatedQuantiles) {
  auto service = MakeManualTickService(50.0);
  ASSERT_TRUE(service->SubmitQuery(MeanRequest(0.5)).ok());
  HttpGetResult varz =
      HttpGet("127.0.0.1", service->introspect_port(), "/varz");
  ASSERT_TRUE(varz.ok) << varz.error;
  JsonValue root;
  ASSERT_TRUE(ParseJson(varz.body, &root)) << varz.body;
  const JsonValue* metrics = root.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  bool checked = false;
  for (const JsonValue& family : metrics->array) {
    if (family.Find("type")->string != "histogram") continue;
    for (const JsonValue& entry : family.Find("series")->array) {
      if (entry.Find("count")->number == 0) continue;
      const JsonValue* p50 = entry.Find("p50");
      const JsonValue* p95 = entry.Find("p95");
      const JsonValue* p99 = entry.Find("p99");
      ASSERT_NE(p50, nullptr) << family.Find("name")->string;
      ASSERT_NE(p95, nullptr);
      ASSERT_NE(p99, nullptr);
      EXPECT_LE(p50->number, p95->number);
      EXPECT_LE(p95->number, p99->number);
      checked = true;
    }
  }
  EXPECT_TRUE(checked) << "no populated histogram in /varz";
}

TEST(SeriesServiceTest, BackgroundCollectorTicksOnItsOwn) {
  ServiceOptions options;
  options.introspect_port = 0;
  options.collector_period_ms = 20;
  options.series_capacity = 256;
  auto service = std::make_unique<GuptService>(
      options, ProgramRegistry::WithStandardPrograms());
  obs::series::SeriesCollector* collector = service->series_collector();
  ASSERT_NE(collector, nullptr);
  EXPECT_TRUE(collector->running());
  // A few periods elapse: ticks accumulate without any manual drive.
  for (int i = 0; i < 200 && collector->Ticks() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(collector->Ticks(), 2u);
  // Destruction stops the thread cleanly (no wedge, no crash).
  service.reset();
}

}  // namespace
}  // namespace gupt
