// Fault matrix for amplification-by-sampling charging (ctest labels
// `faults` + `amplify`; see docs/amplification.md and docs/testing.md).
//
// The headline run pushes 1000 amplified queries through the async
// admission queue while three failpoints fire concurrently: every 4th
// forked chamber child crashes (exec.process_chamber.child), every 10th
// amplified admission is killed immediately before the ledger debit
// (core.amplify.charge), and every 9th ledger persist fails
// (data.budget_store.save). Every future must resolve, the verdict
// counts are EXACT (failpoint verdicts are allocated under one lock, so
// worker interleaving cannot change them), and /budgetz must equal the
// hand-computed amplified ledger to the last bit — a charge-site fire
// leaves the ledger untouched, a crash costs only fallback substitution,
// and a persist failure keeps the irrevocable in-memory charge.
//
// The companion tests pin the pre-admission contract one site at a time:
// core.amplify.{calibrate,charge} fires charge nothing and are evaluated
// only when amplification is on, and budget_store save/load faults never
// corrupt what a restarted service restores.

#include "service/gupt_service.h"

#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dp/amplification.h"
#include "obs/introspect/http_client.h"
#include "testing/failpoints/failpoints.h"
#include "../obs/minijson.h"

namespace gupt {
namespace {

using ::gupt::obs::introspect::HttpGet;
using ::gupt::obs::introspect::HttpGetResult;
using ::gupt::testjson::JsonValue;
using ::gupt::testjson::ParseJson;
using failpoints::Action;
using failpoints::CompiledIn;
using failpoints::Config;
using failpoints::ScopedFailpoint;

constexpr std::size_t kRows = 512;
constexpr double kRate = 0.25;  // Bernoulli subsample: n_mech = 128 rows
constexpr std::size_t kBlockSize = 32;  // 4 blocks over the subsample
constexpr double kEpsilon = 0.5;

Dataset Ages(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(40.0, 10.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

QueryRequest AmplifiedMeanRequest() {
  QueryRequest request;
  request.analyst = "alice";
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = kEpsilon;
  request.range_mode = RangeMode::kTight;
  request.output_ranges = {Range{0.0, 150.0}};
  request.block_size = kBlockSize;
  request.amplification = dp::AmplificationMode::kRawEpsilon;
  request.amplification_rate = kRate;
  return request;
}

std::unique_ptr<GuptService> MakeService(ServiceOptions options,
                                         double budget) {
  auto service = std::make_unique<GuptService>(
      std::move(options), ProgramRegistry::WithStandardPrograms());
  DatasetOptions ds;
  ds.total_epsilon = budget;
  EXPECT_TRUE(service->RegisterDataset("ages", Ages(kRows, 1), ds).ok());
  return service;
}

double AmplifiedCharge() {
  return dp::AmplifiedEpsilon(kEpsilon, kRate).value();
}

class AmplificationFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CompiledIn()) {
      GTEST_SKIP() << "built with GUPT_FAILPOINTS_ENABLED=OFF";
    }
    failpoints::DisarmAll();
  }
  void TearDown() override { failpoints::DisarmAll(); }
};

TEST_F(AmplificationFaultTest,
       ThousandQueriesUnderCrashChargeAndPersistFaults) {
  Config crash;
  crash.every_nth = 4;
  crash.action = Action::kCrash;
  ScopedFailpoint fp_crash("exec.process_chamber.child", crash);

  Config charge;
  charge.every_nth = 10;
  ScopedFailpoint fp_charge("core.amplify.charge", charge);

  Config save;
  save.every_nth = 9;
  ScopedFailpoint fp_save("data.budget_store.save", save);

  const std::string ledger_path =
      ::testing::TempDir() + "amplification_fault_ledger.txt";
  std::remove(ledger_path.c_str());

  ServiceOptions options;
  options.admission_workers = 4;
  options.admission_queue_capacity = 1100;  // the whole batch fits
  options.introspect_port = 0;              // ephemeral
  options.ledger_path = ledger_path;
  options.runtime.chamber_policy.process_isolation = true;
  auto service = MakeService(options, /*budget=*/200.0);
  ASSERT_GT(service->introspect_port(), 0);

  constexpr int kQueries = 1000;
  constexpr int kChargeRefused = kQueries / 10;      // every-10th admission
  constexpr int kCharged = kQueries - kChargeRefused;
  constexpr int kPersistFailed = kCharged / 9;       // every-9th save
  // The planned block count is fixed from the expected subsample size
  // rate * n, so it is the same for every query whatever subsample each
  // one draws.
  constexpr std::size_t kBlocksPerQuery =
      static_cast<std::size_t>(kRows * kRate) / kBlockSize;

  std::vector<std::future<Result<QueryReport>>> futures;
  futures.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    futures.push_back(service->SubmitQueryAsync(AmplifiedMeanRequest()));
  }

  const double per_query = AmplifiedCharge();
  int ok = 0;
  int charge_refused = 0;
  int persist_failed = 0;
  std::size_t fallback_total = 0;
  for (auto& future : futures) {
    Result<QueryReport> report = future.get();  // every future resolves
    if (report.ok()) {
      ++ok;
      EXPECT_EQ(report->epsilon_spent, per_query);
      EXPECT_EQ(report->epsilon_raw, kEpsilon);
      EXPECT_EQ(report->sampling_rate, kRate);
      EXPECT_EQ(report->num_blocks, kBlocksPerQuery);
      fallback_total += report->fallback_blocks;
    } else if (report.status().message().find("core.amplify.charge") !=
               std::string::npos) {
      ++charge_refused;
    } else if (report.status().message().find("ledger persist failed") !=
               std::string::npos) {
      ++persist_failed;
    } else {
      ADD_FAILURE() << "unexpected outcome: " << report.status();
    }
  }
  // Exact verdict arithmetic: 1000 amplified admissions evaluate the
  // charge site; every 10th fires and is refused uncharged. The 900
  // admitted queries run 4 chamber children each (3600 evaluations, 900
  // crashes -> 900 fallback blocks) and persist the ledger once each (900
  // evaluations, 100 failures that keep the charge).
  EXPECT_EQ(charge_refused, kChargeRefused);
  EXPECT_EQ(persist_failed, kPersistFailed);
  EXPECT_EQ(ok, kCharged - kPersistFailed);
  EXPECT_EQ(fp_charge.evaluations(), static_cast<std::size_t>(kQueries));
  EXPECT_EQ(fp_charge.fires(), static_cast<std::size_t>(kChargeRefused));
  EXPECT_EQ(fp_crash.evaluations(),
            static_cast<std::size_t>(kCharged) * kBlocksPerQuery);
  EXPECT_EQ(fp_crash.fires(),
            static_cast<std::size_t>(kCharged) * kBlocksPerQuery / 4);
  EXPECT_EQ(fp_save.evaluations(), static_cast<std::size_t>(kCharged));
  EXPECT_EQ(fp_save.fires(), static_cast<std::size_t>(kPersistFailed));
  // Crashed children degrade to fallback substitution only in OK reports;
  // persist-failed queries also executed (their fallbacks are unobserved
  // here), so the OK tally is bounded by the total injected crash count.
  EXPECT_LE(fallback_total,
            static_cast<std::size_t>(kCharged) * kBlocksPerQuery / 4);

  // /budgetz equals the hand-computed amplified ledger to 17 digits: 900
  // charges of exactly epsilon' = ln(1 + 0.25 * (e^0.5 - 1)). All charges
  // are the same double, so the sum is independent of worker interleaving.
  double expected_spent = 0.0;
  double expected_raw = 0.0;
  for (int i = 0; i < kCharged; ++i) {
    expected_spent += per_query;
    expected_raw += kEpsilon;
  }
  HttpGetResult scrape = HttpGet("127.0.0.1", service->introspect_port(),
                                 "/budgetz?format=json");
  ASSERT_TRUE(scrape.ok) << scrape.error;
  JsonValue root;
  ASSERT_TRUE(ParseJson(scrape.body, &root)) << scrape.body;
  const JsonValue* datasets = root.Find("datasets");
  ASSERT_NE(datasets, nullptr);
  ASSERT_EQ(datasets->array.size(), 1u);
  const JsonValue& entry = datasets->array[0];
  EXPECT_EQ(entry.Find("dataset")->string, "ages");
  EXPECT_EQ(entry.Find("total_epsilon")->number, 200.0);
  EXPECT_EQ(entry.Find("spent_epsilon")->number, expected_spent);
  EXPECT_EQ(entry.Find("remaining_epsilon")->number, 200.0 - expected_spent);
  ASSERT_EQ(entry.Find("charges")->array.size(),
            static_cast<std::size_t>(kCharged));
  for (const JsonValue& charged : entry.Find("charges")->array) {
    EXPECT_EQ(charged.Find("epsilon")->number, per_query);
  }
  const JsonValue* amplification = entry.Find("amplification");
  ASSERT_NE(amplification, nullptr);
  EXPECT_EQ(amplification->Find("queries")->number,
            static_cast<double>(kCharged));
  EXPECT_EQ(amplification->Find("epsilon_raw")->number, expected_raw);
  EXPECT_EQ(amplification->Find("epsilon_charged")->number, expected_spent);
  EXPECT_EQ(amplification->Find("epsilon_saved")->number,
            expected_raw - expected_spent);

  std::remove(ledger_path.c_str());
}

TEST_F(AmplificationFaultTest, ChargeFaultLeavesLedgerUntouched) {
  // Fire on EVERY amplified admission: no query may charge anything, and
  // the failure surfaces as the injected error on a resolved future.
  Config config;
  config.every_nth = 1;
  ScopedFailpoint fp("core.amplify.charge", config);

  ServiceOptions options;
  auto service = MakeService(options, /*budget=*/10.0);

  for (int i = 0; i < 5; ++i) {
    auto report = service->SubmitQuery(AmplifiedMeanRequest());
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.status().message().find("core.amplify.charge"),
              std::string::npos);
  }
  EXPECT_EQ(fp.fires(), 5u);
  EXPECT_EQ(service->RemainingBudget("ages").value(), 10.0);
  EXPECT_EQ(service->AmplificationTotals("ages").queries, 0u);
  // Every refusal is audited, uncharged.
  for (const AuditRecord& record : service->audit_log()) {
    EXPECT_FALSE(record.accepted);
    EXPECT_EQ(record.epsilon_charged, 0.0);
  }
}

TEST_F(AmplificationFaultTest, CalibrateFaultIsPreAdmission) {
  Config config;
  config.every_nth = 1;
  ScopedFailpoint fp("core.amplify.calibrate", config);

  ServiceOptions options;
  auto service = MakeService(options, /*budget=*/10.0);

  auto report = service->SubmitQuery(AmplifiedMeanRequest());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("core.amplify.calibrate"),
            std::string::npos);
  EXPECT_EQ(fp.fires(), 1u);
  EXPECT_EQ(service->RemainingBudget("ages").value(), 10.0);
}

TEST_F(AmplificationFaultTest, AmplifySitesAreNotEvaluatedWhenOff) {
  // The amplify failpoints sit on the amplified path only: the historical
  // charging path must not even evaluate them (off-mode stays bit-for-bit
  // identical, failpoint hit counters included).
  Config config;
  config.every_nth = 1;
  ScopedFailpoint fp_charge("core.amplify.charge", config);
  ScopedFailpoint fp_calibrate("core.amplify.calibrate", config);

  ServiceOptions options;
  auto service = MakeService(options, /*budget=*/10.0);

  QueryRequest request = AmplifiedMeanRequest();
  request.amplification = dp::AmplificationMode::kOff;
  auto report = service->SubmitQuery(request);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->epsilon_spent, kEpsilon);  // raw charge, no discount
  EXPECT_EQ(fp_charge.evaluations(), 0u);
  EXPECT_EQ(fp_calibrate.evaluations(), 0u);
}

TEST_F(AmplificationFaultTest, PersistAndRestoreFaultsKeepAmplifiedLedger) {
  const std::string ledger_path =
      ::testing::TempDir() + "amplification_restore_ledger.txt";
  std::remove(ledger_path.c_str());
  const double per_query = AmplifiedCharge();

  ServiceOptions options;
  options.ledger_path = ledger_path;
  {
    auto service = MakeService(options, /*budget=*/10.0);
    // First accepted query persists; then a save fault hits the second:
    // the caller sees the persist error, but the in-memory charge stays
    // (it was irrevocable the moment AdmitStage debited it).
    auto first = service->SubmitQuery(AmplifiedMeanRequest());
    ASSERT_TRUE(first.ok()) << first.status();
    {
      Config config;
      config.every_nth = 1;
      ScopedFailpoint fp("data.budget_store.save", config);
      auto second = service->SubmitQuery(AmplifiedMeanRequest());
      ASSERT_FALSE(second.ok());
      EXPECT_NE(second.status().message().find("ledger persist failed"),
                std::string::npos);
      EXPECT_EQ(fp.fires(), 1u);
    }
    // The accountant accumulates spend and subtracts once, so mirror
    // that association exactly.
    EXPECT_EQ(service->RemainingBudget("ages").value(),
              10.0 - (per_query + per_query));
    // With the fault disarmed the full two-charge ledger lands on disk.
    ASSERT_TRUE(service->PersistLedger().ok());
  }

  // A restarted service restores the amplified charges exactly; an
  // injected load fault is surfaced, not silently swallowed.
  auto restarted = MakeService(options, /*budget=*/10.0);
  {
    Config config;
    config.every_nth = 1;
    ScopedFailpoint fp("data.budget_store.load", config);
    Status restored = restarted->RestoreLedger();
    ASSERT_FALSE(restored.ok());
    EXPECT_EQ(fp.fires(), 1u);
  }
  ASSERT_TRUE(restarted->RestoreLedger().ok());
  EXPECT_EQ(restarted->RemainingBudget("ages").value(),
            10.0 - (per_query + per_query));
  std::remove(ledger_path.c_str());
}

}  // namespace
}  // namespace gupt
