#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "minijson.h"

namespace gupt {
namespace obs {
namespace {

using ::gupt::testjson::JsonValue;
using ::gupt::testjson::ParseJson;

TEST(QueryTraceTest, SpansRecordInExecutionOrder) {
  QueryTrace trace;
  trace.AddSpan({"block_plan", std::chrono::microseconds(10), -1, true, ""});
  trace.AddSpan({"partition", std::chrono::microseconds(20), -1, true, "l=4"});
  trace.AddSpan({"noise", std::chrono::microseconds(5), -1, false, ""});
  EXPECT_EQ(trace.StageNames(),
            (std::vector<std::string>{"block_plan", "partition", "noise"}));
  EXPECT_TRUE(trace.HasStage("partition"));
  EXPECT_FALSE(trace.HasStage("execute_blocks"));
  EXPECT_EQ(trace.TotalDuration(), std::chrono::microseconds(35));
  EXPECT_FALSE(trace.spans()[2].ok);
  EXPECT_EQ(trace.spans()[1].note, "l=4");
}

TEST(QueryTraceTest, GaugesKeepInsertionOrderAndUpdateInPlace) {
  QueryTrace trace;
  trace.SetGauge("epsilon_charged", 0.5);
  trace.SetGauge("block_count", 64.0);
  trace.SetGauge("epsilon_charged", 1.0);  // update, not append
  ASSERT_EQ(trace.gauges().size(), 2u);
  EXPECT_EQ(trace.gauges()[0].first, "epsilon_charged");
  EXPECT_DOUBLE_EQ(trace.gauges()[0].second, 1.0);
  EXPECT_DOUBLE_EQ(trace.GaugeValue("block_count").value(), 64.0);
  EXPECT_FALSE(trace.GaugeValue("missing").has_value());
}

TEST(ScopedTimerTest, RecordsSpanOnDestruction) {
  QueryTrace trace;
  {
    ScopedTimer timer(&trace, "partition");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    timer.set_note("l=8 beta=100");
  }
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].name, "partition");
  EXPECT_TRUE(trace.spans()[0].ok);
  EXPECT_EQ(trace.spans()[0].note, "l=8 beta=100");
  EXPECT_GE(trace.spans()[0].duration, std::chrono::milliseconds(2));
}

TEST(ScopedTimerTest, StopIsIdempotentAndFailureIsRecorded) {
  QueryTrace trace;
  {
    ScopedTimer timer(&trace, "budget_charge");
    timer.set_ok(false);
    timer.Stop();
    timer.Stop();  // no second span
  }                // destructor: still no second span
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_FALSE(trace.spans()[0].ok);
}

TEST(ScopedTimerTest, NullTraceIsSkipped) {
  ScopedTimer timer(nullptr, "noise");
  timer.set_note("ignored");
  timer.Stop();  // must not crash
}

TEST(QueryTraceTest, SummaryReadsInPipelineOrder) {
  QueryTrace trace;
  trace.AddSpan({"block_plan", std::chrono::microseconds(12), -1, true, ""});
  trace.AddSpan({"noise", std::chrono::nanoseconds(1500), -1, true, ""});
  trace.SetGauge("epsilon_charged", 0.5);
  trace.SetGauge("block_count", 64.0);
  std::string summary = trace.Summary();
  // Stage timings first, then a separator, then the gauges.
  std::size_t plan = summary.find("block_plan=");
  std::size_t noise = summary.find("noise=");
  std::size_t sep = summary.find(" | ");
  std::size_t epsilon = summary.find("epsilon_charged=0.5");
  std::size_t blocks = summary.find("block_count=64");
  ASSERT_NE(plan, std::string::npos);
  ASSERT_NE(noise, std::string::npos);
  ASSERT_NE(sep, std::string::npos);
  ASSERT_NE(epsilon, std::string::npos);
  ASSERT_NE(blocks, std::string::npos);
  EXPECT_LT(plan, noise);
  EXPECT_LT(noise, sep);
  EXPECT_LT(sep, epsilon);
  EXPECT_LT(epsilon, blocks);
  EXPECT_EQ(summary.find('\n'), std::string::npos);
}

TEST(QueryTraceTest, ToJsonRoundTripsThroughParser) {
  QueryTrace trace;
  trace.AddSpan(
      {"partition", std::chrono::microseconds(20), -1, true, "l=4 beta=25"});
  trace.AddSpan({"noise", std::chrono::microseconds(3), -1, false, ""});
  trace.SetGauge("epsilon_charged", 0.25);

  JsonValue root;
  ASSERT_TRUE(ParseJson(trace.ToJson(), &root));
  const JsonValue* spans = root.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->array.size(), 2u);
  EXPECT_EQ(spans->array[0].Find("name")->string, "partition");
  EXPECT_EQ(spans->array[0].Find("note")->string, "l=4 beta=25");
  EXPECT_TRUE(spans->array[0].Find("ok")->boolean);
  EXPECT_FALSE(spans->array[1].Find("ok")->boolean);
  const JsonValue* gauges = root.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("epsilon_charged")->number, 0.25);
}

TEST(QueryTraceTest, EmptyTraceIsWellFormed) {
  QueryTrace trace;
  EXPECT_EQ(trace.TotalDuration(), std::chrono::nanoseconds(0));
  JsonValue root;
  ASSERT_TRUE(ParseJson(trace.ToJson(), &root));
  EXPECT_TRUE(root.Find("spans")->array.empty());
}

}  // namespace
}  // namespace obs
}  // namespace gupt
