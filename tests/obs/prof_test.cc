// Unit tests for the sampling profiler, the folded-stack renderer, the
// rusage capture helpers, and the slow-query log — everything in
// src/obs/prof/ that can be exercised deterministically: the timer path
// is covered end-to-end by tests/service/prof_service_test.cc; here the
// sampler is driven through TickForTesting so counts are exact.

#include "obs/prof/profiler.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/prof/rusage.h"
#include "obs/prof/slow_query_log.h"

namespace gupt {
namespace obs {
namespace prof {
namespace {

// --- stage tags -----------------------------------------------------------

TEST(ScopedStageTagTest, NestsAndRestoresInnermostTag) {
  EXPECT_EQ(CurrentStageTag(), nullptr);
  {
    ScopedStageTag outer("aggregate");
    EXPECT_STREQ(CurrentStageTag(), "aggregate");
    {
      ScopedStageTag inner("execute_blocks");
      EXPECT_STREQ(CurrentStageTag(), "execute_blocks");
    }
    EXPECT_STREQ(CurrentStageTag(), "aggregate");
  }
  EXPECT_EQ(CurrentStageTag(), nullptr);
}

// --- deterministic sampling ----------------------------------------------

// Keep this out-of-line and volatile-heavy so the tick is taken with a
// real, distinct frame on the stack.
[[gnu::noinline]] bool TickInsideWorkload() {
  volatile double sink = 0;
  for (int i = 0; i < 1000; ++i) sink = sink + i;
  (void)sink;
  return Profiler::Get().TickForTesting();
}

TEST(ProfilerTest, DeterministicTicksProduceExactlyThatManySamples) {
  ProfilerOptions options;
  options.hz = 1;  // the timer is irrelevant; ticks are manual
  ASSERT_TRUE(Profiler::Get().Start(options));
  ASSERT_TRUE(Profiler::Get().IsRunning());

  constexpr int kTicks = 5;
  {
    ScopedStageTag tag("execute_blocks");
    for (int i = 0; i < kTicks; ++i) {
      ASSERT_TRUE(TickInsideWorkload());
    }
  }
  Profile profile = Profiler::Get().Stop();
  EXPECT_FALSE(Profiler::Get().IsRunning());

  ASSERT_EQ(profile.samples.size(), static_cast<std::size_t>(kTicks));
  EXPECT_EQ(profile.dropped, 0u);
  for (const Sample& sample : profile.samples) {
    ASSERT_NE(sample.stage_tag, nullptr);
    EXPECT_STREQ(sample.stage_tag, "execute_blocks");
    EXPECT_FALSE(sample.frames.empty());
  }

  const std::string folded = FoldedStacks(profile);
  EXPECT_EQ(FoldedSampleCount(folded), kTicks);
  EXPECT_EQ(folded.compare(0, 6, "stage:"), 0) << folded;
  EXPECT_NE(folded.find("stage:execute_blocks;"), std::string::npos) << folded;
  // The sampling machinery itself must be trimmed from every stack.
  EXPECT_EQ(folded.find("TickForTesting"), std::string::npos) << folded;
}

TEST(ProfilerTest, UntaggedSamplesFoldUnderTheUntaggedRoot) {
  ASSERT_TRUE(Profiler::Get().Start(ProfilerOptions{}));
  ASSERT_EQ(CurrentStageTag(), nullptr);
  ASSERT_TRUE(Profiler::Get().TickForTesting());
  Profile profile = Profiler::Get().Stop();
  const std::string folded = FoldedStacks(profile);
  EXPECT_EQ(FoldedSampleCount(folded), 1);
  EXPECT_EQ(folded.compare(0, 15, "stage:untagged;"), 0) << folded;
}

TEST(ProfilerTest, BufferFullDropsAndCountsInsteadOfGrowing) {
  ProfilerOptions options;
  options.max_samples = 2;
  ASSERT_TRUE(Profiler::Get().Start(options));
  EXPECT_TRUE(Profiler::Get().TickForTesting());
  EXPECT_TRUE(Profiler::Get().TickForTesting());
  EXPECT_FALSE(Profiler::Get().TickForTesting());  // buffer full
  EXPECT_FALSE(Profiler::Get().TickForTesting());
  Profile profile = Profiler::Get().Stop();
  EXPECT_EQ(profile.samples.size(), 2u);
  EXPECT_EQ(profile.dropped, 2u);
}

TEST(ProfilerTest, StartRejectsBadOptionsAndDoubleStart) {
  ProfilerOptions bad_hz;
  bad_hz.hz = 0;
  EXPECT_FALSE(Profiler::Get().Start(bad_hz));
  bad_hz.hz = 1001;
  EXPECT_FALSE(Profiler::Get().Start(bad_hz));
  ProfilerOptions no_buffer;
  no_buffer.max_samples = 0;
  EXPECT_FALSE(Profiler::Get().Start(no_buffer));

  ASSERT_TRUE(Profiler::Get().Start(ProfilerOptions{}));
  EXPECT_FALSE(Profiler::Get().Start(ProfilerOptions{}));  // already running
  (void)Profiler::Get().Stop();
}

TEST(ProfilerTest, TickAndStopAreSafeWhenNotRunning) {
  EXPECT_FALSE(Profiler::Get().IsRunning());
  EXPECT_FALSE(Profiler::Get().TickForTesting());
  Profile profile = Profiler::Get().Stop();
  EXPECT_TRUE(profile.samples.empty());
}

// --- folded-stack validator ----------------------------------------------

TEST(FoldedSampleCountTest, SumsValidPayloadsAndRejectsMalformedOnes) {
  EXPECT_EQ(FoldedSampleCount(""), 0);
  EXPECT_EQ(FoldedSampleCount("stage:plan;a;b 3\nstage:release;c 2\n"), 5);
  // Missing trailing newline.
  EXPECT_EQ(FoldedSampleCount("stage:plan;a 3"), -1);
  // Root frame must be the stage tag.
  EXPECT_EQ(FoldedSampleCount("plan;a 3\n"), -1);
  // Count must be a positive integer.
  EXPECT_EQ(FoldedSampleCount("stage:plan;a 0\n"), -1);
  EXPECT_EQ(FoldedSampleCount("stage:plan;a -2\n"), -1);
  EXPECT_EQ(FoldedSampleCount("stage:plan;a x\n"), -1);
  EXPECT_EQ(FoldedSampleCount("stage:plan;a\n"), -1);  // no count at all
  EXPECT_EQ(FoldedSampleCount("an html error page\n"), -1);
}

// --- rusage helpers -------------------------------------------------------

TEST(RusageTest, ThreadCpuIsMonotoneAndAdvancesUnderLoad) {
  const std::int64_t before = ThreadCpuNanos();
  ASSERT_GE(before, 0);
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) {
    sink = sink + static_cast<double>(i) * 1e-9;
  }
  (void)sink;
  const std::int64_t after = ThreadCpuNanos();
  EXPECT_GT(after, before);
  EXPECT_GE(ProcessCpuNanos(), after);  // process >= this one thread
}

TEST(RusageTest, DeltaSubtractsCountersAndKeepsPeakRss) {
  RusageSnapshot begin;
  begin.user_ns = 100;
  begin.minor_faults = 7;
  begin.max_rss_kb = 5000;
  RusageSnapshot end;
  end.user_ns = 350;
  end.minor_faults = 10;
  end.max_rss_kb = 6000;
  RusageSnapshot delta = Delta(begin, end);
  EXPECT_EQ(delta.user_ns, 250);
  EXPECT_EQ(delta.minor_faults, 3);
  // max_rss is a high-water mark, not a rate: the delta keeps the peak.
  EXPECT_EQ(delta.max_rss_kb, 6000);
}

TEST(RusageTest, LedgerSummarizesAndTotalsChildCpu) {
  ResourceLedger ledger;
  ledger.cpu_ns = 1500000;            // 1.5 ms
  ledger.child_user_cpu_ns = 2000000; // 2 ms
  ledger.child_sys_cpu_ns = 500000;   // 0.5 ms
  EXPECT_DOUBLE_EQ(ledger.TotalCpuSeconds(), 0.004);
  const std::string summary = ledger.Summary();
  EXPECT_NE(summary.find("cpu="), std::string::npos) << summary;
  EXPECT_NE(summary.find("child_cpu="), std::string::npos) << summary;
}

// --- slow-query log -------------------------------------------------------

SlowQueryEntry Entry(std::uint64_t id, double wall_seconds) {
  SlowQueryEntry entry;
  entry.query_id = id;
  entry.wall_seconds = wall_seconds;
  return entry;
}

TEST(SlowQueryLogTest, KeepsTheWorstKByWallTime) {
  SlowQueryLog log(/*capacity=*/2, /*threshold_seconds=*/0.0);
  EXPECT_TRUE(log.Record(Entry(1, 0.010)));
  EXPECT_TRUE(log.Record(Entry(2, 0.030)));
  // Faster than everything retained: rejected.
  EXPECT_FALSE(log.Record(Entry(3, 0.005)));
  // Slower than the fastest retained: evicts it.
  EXPECT_TRUE(log.Record(Entry(4, 0.020)));

  std::vector<SlowQueryEntry> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].query_id, 2u);  // worst first
  EXPECT_EQ(snapshot[1].query_id, 4u);
  EXPECT_EQ(log.total_considered(), 4u);
  EXPECT_EQ(log.total_retained(), 3u);
}

TEST(SlowQueryLogTest, ThresholdFiltersTheNoiseFloor) {
  SlowQueryLog log(/*capacity=*/4, /*threshold_seconds=*/0.1);
  EXPECT_FALSE(log.Record(Entry(1, 0.05)));
  EXPECT_TRUE(log.Record(Entry(2, 0.10)));  // at-threshold retained
  EXPECT_TRUE(log.Record(Entry(3, 0.50)));
  EXPECT_EQ(log.Snapshot().size(), 2u);
  EXPECT_EQ(log.total_considered(), 3u);
  EXPECT_EQ(log.total_retained(), 2u);
}

TEST(SlowQueryLogTest, ZeroCapacityIsClampedToOne) {
  SlowQueryLog log(/*capacity=*/0, /*threshold_seconds=*/0.0);
  EXPECT_EQ(log.capacity(), 1u);
  EXPECT_TRUE(log.Record(Entry(1, 0.010)));
  EXPECT_TRUE(log.Record(Entry(2, 0.020)));
  std::vector<SlowQueryEntry> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].query_id, 2u);
}

}  // namespace
}  // namespace prof
}  // namespace obs
}  // namespace gupt
