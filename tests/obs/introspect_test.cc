// Unit tests for the introspection building blocks: the embedded HTTP
// server (over real loopback sockets), the completed-trace ring, and the
// Chrome trace_event exporter.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "minijson.h"
#include "obs/introspect/http_client.h"
#include "obs/introspect/http_server.h"
#include "obs/introspect/trace_event.h"
#include "obs/introspect/trace_ring.h"
#include "obs/trace.h"

namespace gupt {
namespace obs {
namespace introspect {
namespace {

using ::gupt::testjson::JsonValue;
using ::gupt::testjson::ParseJson;

HttpServerOptions EphemeralOptions() {
  HttpServerOptions options;
  options.port = 0;  // kernel-assigned; no collisions across parallel tests
  return options;
}

TEST(HttpServerTest, ServesRegisteredHandlerOverARealSocket) {
  HttpServer server(EphemeralOptions());
  server.Handle("/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong\n";
    return response;
  });
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(server.serving());

  HttpGetResult result = HttpGet("127.0.0.1", server.port(), "/ping");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "pong\n");
  server.Stop();
  EXPECT_FALSE(server.serving());
}

TEST(HttpServerTest, UnknownPathIs404AndIndexListsRegisteredPaths) {
  HttpServer server(EphemeralOptions());
  server.Handle("/metrics", [](const HttpRequest&) { return HttpResponse{}; });
  server.Handle("/budgetz", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start());

  HttpGetResult missing = HttpGet("127.0.0.1", server.port(), "/nope");
  ASSERT_TRUE(missing.ok) << missing.error;
  EXPECT_EQ(missing.status, 404);

  HttpGetResult index = HttpGet("127.0.0.1", server.port(), "/");
  ASSERT_TRUE(index.ok) << index.error;
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);
  EXPECT_NE(index.body.find("/budgetz"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, QueryParametersReachTheHandler) {
  HttpServer server(EphemeralOptions());
  server.Handle("/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.Param("format", "none") + "|" +
                    request.Param("missing", "fallback");
    return response;
  });
  ASSERT_TRUE(server.Start());
  HttpGetResult result =
      HttpGet("127.0.0.1", server.port(), "/echo?format=json&x=1");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.body, "json|fallback");
  server.Stop();
}

TEST(HttpServerTest, ConcurrentScrapesAllSucceed) {
  HttpServer server(EphemeralOptions());
  std::atomic<int> served{0};
  server.Handle("/busy", [&served](const HttpRequest&) {
    served.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response;
    response.body = "done";
    return response;
  });
  ASSERT_TRUE(server.Start());

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::atomic<int> successes{0};
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&server, &successes]() {
      HttpGetResult result = HttpGet("127.0.0.1", server.port(), "/busy");
      if (result.ok && result.status == 200 && result.body == "done") {
        successes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(successes.load(), kClients);
  EXPECT_EQ(served.load(), kClients);
  server.Stop();
}

TEST(HttpServerTest, StopIsIdempotentAndDestructorStops) {
  auto server = std::make_unique<HttpServer>(EphemeralOptions());
  server->Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server->Start());
  server->Stop();
  server->Stop();          // second stop: no-op
  server.reset();          // destructor after Stop: no crash

  HttpServer unstarted(EphemeralOptions());
  unstarted.Stop();        // stop before start: no-op
}

TEST(TraceRingTest, BoundedRotationKeepsNewestAndCountsTotal) {
  TraceRing ring(3);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    CompletedTrace completed;
    completed.query_id = id;
    ring.Push(std::move(completed));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(ring.total_pushed(), 5u);
  std::vector<CompletedTrace> kept = ring.Snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept.front().query_id, 3u);  // oldest retained
  EXPECT_EQ(kept.back().query_id, 5u);   // newest
}

TEST(TraceRingTest, ZeroCapacityDisablesRetention) {
  TraceRing ring(0);
  ring.Push(CompletedTrace{});
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
}

CompletedTrace MakeFanOutTrace(std::uint64_t query_id) {
  CompletedTrace completed;
  completed.query_id = query_id;
  completed.dataset = "ages";
  completed.program = "mean";
  completed.analyst = "alice";
  completed.coordinator_tid = 9;
  completed.trace.set_query_id(query_id);
  completed.trace.AddSpan(
      {"partition", std::chrono::microseconds(50), 1000, true, "l=4"});
  completed.trace.AddSpan(
      {"execute_blocks", std::chrono::microseconds(400), 2000, true, ""});
  // Four blocks fanned over two distinct pool workers.
  completed.trace.AddBlockSpan({0, 1, 2100, 90000, true});
  completed.trace.AddBlockSpan({1, 2, 2200, 80000, true});
  completed.trace.AddBlockSpan({2, 1, 95000, 70000, true});
  completed.trace.AddBlockSpan({3, 2, 85000, 60000, false});
  completed.trace.SetGauge("epsilon_charged", 0.5);
  return completed;
}

TEST(TraceEventTest, ExportsValidChromeTraceJson) {
  std::string json = ExportChromeTrace({MakeFanOutTrace(42)});
  JsonValue root;
  ASSERT_TRUE(ParseJson(json, &root)) << json;
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::kArray);
  EXPECT_NE(root.Find("displayTimeUnit"), nullptr);

  std::set<double> block_tids;
  int stage_spans = 0, block_spans = 0, query_spans = 0, metadata = 0;
  for (const JsonValue& event : events->array) {
    const JsonValue* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") {
      ++metadata;
      continue;
    }
    EXPECT_EQ(ph->string, "X");
    ASSERT_NE(event.Find("ts"), nullptr);
    ASSERT_NE(event.Find("dur"), nullptr);
    EXPECT_GT(event.Find("dur")->number, 0.0);
    const std::string cat = event.Find("cat")->string;
    if (cat == "stage") {
      ++stage_spans;
      EXPECT_DOUBLE_EQ(event.Find("tid")->number, 9.0);  // coordinator lane
    } else if (cat == "block") {
      ++block_spans;
      block_tids.insert(event.Find("tid")->number);
    } else if (cat == "query") {
      ++query_spans;
      const JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_DOUBLE_EQ(args->Find("query_id")->number, 42.0);
      EXPECT_EQ(args->Find("dataset")->string, "ages");
      EXPECT_EQ(args->Find("program")->string, "mean");
      ASSERT_NE(args->Find("epsilon_charged"), nullptr);
      EXPECT_DOUBLE_EQ(args->Find("epsilon_charged")->number, 0.5);
    }
  }
  EXPECT_EQ(query_spans, 1);
  EXPECT_EQ(stage_spans, 2);
  EXPECT_EQ(block_spans, 4);
  EXPECT_EQ(block_tids, (std::set<double>{1.0, 2.0}));
  EXPECT_GT(metadata, 0);  // thread_name lane labels
}

TEST(TraceEventTest, MultipleTracesShareOneTimeline) {
  std::string json = ExportChromeTrace({MakeFanOutTrace(1), MakeFanOutTrace(2)});
  JsonValue root;
  ASSERT_TRUE(ParseJson(json, &root)) << json;
  int query_spans = 0;
  for (const JsonValue& event : root.Find("traceEvents")->array) {
    if (event.Find("cat") != nullptr && event.Find("cat")->string == "query") {
      ++query_spans;
    }
  }
  EXPECT_EQ(query_spans, 2);
}

TEST(TraceEventTest, EmptyRingProducesAValidEmptyDocument) {
  std::string json = ExportChromeTrace({});
  JsonValue root;
  ASSERT_TRUE(ParseJson(json, &root)) << json;
  EXPECT_TRUE(root.Find("traceEvents")->array.empty());
}

TEST(TraceEventTest, SpansWithoutStartOffsetsAreStackedNotDropped) {
  CompletedTrace completed;
  completed.query_id = 7;
  completed.program = "sum";
  // start_ns = -1: a producer that only measured durations.
  completed.trace.AddSpan(
      {"block_plan", std::chrono::microseconds(10), -1, true, ""});
  completed.trace.AddSpan(
      {"noise", std::chrono::microseconds(5), -1, true, ""});
  std::string json = ExportChromeTrace({completed});
  JsonValue root;
  ASSERT_TRUE(ParseJson(json, &root)) << json;
  int stage_spans = 0;
  for (const JsonValue& event : root.Find("traceEvents")->array) {
    if (event.Find("cat") != nullptr && event.Find("cat")->string == "stage") {
      ++stage_spans;
    }
  }
  EXPECT_EQ(stage_spans, 2);
}

}  // namespace
}  // namespace introspect
}  // namespace obs
}  // namespace gupt
