#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "minijson.h"

namespace gupt {
namespace obs {
namespace {

using ::gupt::testjson::JsonValue;
using ::gupt::testjson::ParseJson;

// --- instruments -----------------------------------------------------------

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  Counter* counter =
      registry.GetCounter("gupt_test_events_seen_total", "Test counter.");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  // Every increment lands: the CAS loop never drops an update.
  EXPECT_DOUBLE_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(CounterTest, FractionalDeltasAndMonotonicity) {
  MetricsRegistry registry;
  Counter* counter =
      registry.GetCounter("gupt_test_budget_spend_epsilon", "Budget spent.");
  counter->Increment(0.5);
  counter->Increment(0.25);
  EXPECT_DOUBLE_EQ(counter->Value(), 0.75);
  counter->Increment(-1.0);  // ignored: counters are monotone
  EXPECT_DOUBLE_EQ(counter->Value(), 0.75);
}

TEST(GaugeTest, SetAndConcurrentAdd) {
  MetricsRegistry registry;
  Gauge* gauge =
      registry.GetGauge("gupt_test_queue_depth_count", "Queue depth.");
  gauge->Set(5.0);
  EXPECT_DOUBLE_EQ(gauge->Value(), 5.0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([gauge] {
      for (int i = 0; i < kPerThread; ++i) {
        gauge->Add(1.0);
        gauge->Add(-1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(gauge->Value(), 5.0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperEdges) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("gupt_test_latency_wait_seconds",
                                       "Test latency.", {0.25, 1.0, 4.0});
  h->Observe(0.1);    // <= 0.25
  h->Observe(0.25);   // exactly on an edge: belongs to that bucket ("le")
  h->Observe(0.5);    // <= 1.0
  h->Observe(4.0);    // exactly the last finite edge
  h->Observe(100.0);  // +Inf bucket
  EXPECT_EQ(h->BucketCounts(),
            (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h->Count(), 5u);
  EXPECT_DOUBLE_EQ(h->Sum(), 0.1 + 0.25 + 0.5 + 4.0 + 100.0);
  EXPECT_DOUBLE_EQ(h->Mean(), h->Sum() / 5.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram(
      "gupt_test_quantile_run_seconds", "Quantiles.",
      {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  for (int v = 1; v <= 10; ++v) h->Observe(v);
  // One observation per bucket: the q-quantile is the q*10-th edge.
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.9), 9.0);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 10.0);
  // Interpolation inside a bucket: half a bucket's mass -> half its width.
  MetricsRegistry registry2;
  Histogram* one = registry2.GetHistogram("gupt_test_single_run_seconds",
                                          "One bucket.", {10.0});
  one->Observe(3.0);
  one->Observe(7.0);
  EXPECT_DOUBLE_EQ(one->Quantile(0.5), 5.0);  // (0.5*2-0)/2 of [0,10]
  // Values beyond every finite edge report the largest finite edge.
  MetricsRegistry registry3;
  Histogram* inf = registry3.GetHistogram("gupt_test_overflow_run_seconds",
                                          "Overflow.", {1.0});
  inf->Observe(50.0);
  EXPECT_DOUBLE_EQ(inf->Quantile(0.5), 1.0);
  // Empty histogram.
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 5.0);
  MetricsRegistry registry4;
  Histogram* empty = registry4.GetHistogram("gupt_test_empty_run_seconds",
                                            "Empty.", {1.0});
  EXPECT_DOUBLE_EQ(empty->Quantile(0.5), 0.0);
}

TEST(HistogramTest, ConcurrentObservesCountExactly) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("gupt_test_parallel_run_seconds",
                                       "Parallel.", {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) h->Observe(t % 2 == 0 ? 0.25 : 1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(h->Count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  auto counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], static_cast<std::uint64_t>(kThreads / 2 * kPerThread));
  EXPECT_EQ(counts[1], static_cast<std::uint64_t>(kThreads / 2 * kPerThread));
}

TEST(HistogramTest, DurationBucketsAreStrictlyIncreasing) {
  std::vector<double> bounds = Histogram::DurationBuckets();
  ASSERT_GE(bounds.size(), 10u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_DOUBLE_EQ(bounds.back(), 100.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// --- registry semantics ----------------------------------------------------

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("gupt_test_requests_seen_total", "Help.",
                                   {{"outcome", "ok"}, {"zone", "a"}});
  // Label order must not matter.
  Counter* b = registry.GetCounter("gupt_test_requests_seen_total", "Help.",
                                   {{"zone", "a"}, {"outcome", "ok"}});
  EXPECT_EQ(a, b);
  Counter* c = registry.GetCounter("gupt_test_requests_seen_total", "Help.",
                                   {{"outcome", "error"}, {"zone", "a"}});
  EXPECT_NE(a, c);
}

TEST(MetricsRegistryTest, TypeConflictYieldsDetachedInstrument) {
  MetricsRegistry registry;
  Counter* counter =
      registry.GetCounter("gupt_test_conflict_seen_total", "As counter.");
  counter->Increment(7.0);
  // Same family name as a different kind: usable handle, never exported.
  Gauge* gauge =
      registry.GetGauge("gupt_test_conflict_seen_total", "As gauge.");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(99.0);
  std::string prom = registry.ExportPrometheus();
  EXPECT_NE(prom.find("gupt_test_conflict_seen_total 7"), std::string::npos);
  EXPECT_EQ(prom.find("99"), std::string::npos);
}

TEST(MetricsRegistryTest, InvalidNamesAreRecordedButStillExported) {
  MetricsRegistry registry;
  registry.GetCounter("bad_name", "Too short, wrong prefix.")->Increment();
  registry.GetCounter("gupt_test_events_seen_total", "Fine.")->Increment();
  std::vector<std::string> invalid = registry.invalid_names();
  ASSERT_EQ(invalid.size(), 1u);
  EXPECT_EQ(invalid[0], "bad_name");
  EXPECT_NE(registry.ExportPrometheus().find("bad_name 1"), std::string::npos);
}

TEST(MetricsRegistryTest, NameValidation) {
  EXPECT_TRUE(
      MetricsRegistry::IsValidMetricName("gupt_dp_epsilon_charged_total"));
  EXPECT_TRUE(MetricsRegistry::IsValidMetricName(
      "gupt_runtime_stage_duration_seconds"));
  EXPECT_TRUE(
      MetricsRegistry::IsValidMetricName("gupt_threadpool_queue_depth_count"));
  // Wrong prefix.
  EXPECT_FALSE(
      MetricsRegistry::IsValidMetricName("gopt_dp_epsilon_charged_total"));
  // Too few words.
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("gupt_epsilon_total"));
  // Last word not a unit.
  EXPECT_FALSE(
      MetricsRegistry::IsValidMetricName("gupt_dp_epsilon_charged_values"));
  // Upper case, doubled/leading/trailing underscores, bad characters.
  EXPECT_FALSE(
      MetricsRegistry::IsValidMetricName("gupt_DP_epsilon_charged_total"));
  EXPECT_FALSE(
      MetricsRegistry::IsValidMetricName("gupt__dp_epsilon_charged_total"));
  EXPECT_FALSE(
      MetricsRegistry::IsValidMetricName("_gupt_dp_epsilon_charged_total"));
  EXPECT_FALSE(
      MetricsRegistry::IsValidMetricName("gupt_dp_epsilon_charged_total_"));
  EXPECT_FALSE(
      MetricsRegistry::IsValidMetricName("gupt_dp_epsilon-charged_total"));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName(""));
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsHandles) {
  MetricsRegistry registry;
  Counter* counter =
      registry.GetCounter("gupt_test_events_seen_total", "Help.");
  Gauge* gauge = registry.GetGauge("gupt_test_queue_depth_count", "Help.");
  Histogram* h = registry.GetHistogram("gupt_test_latency_wait_seconds",
                                       "Help.", {1.0});
  counter->Increment(3.0);
  gauge->Set(4.0);
  h->Observe(0.5);
  registry.Reset();
  EXPECT_DOUBLE_EQ(counter->Value(), 0.0);
  EXPECT_DOUBLE_EQ(gauge->Value(), 0.0);
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_DOUBLE_EQ(h->Sum(), 0.0);
  // Handles stay live after Reset.
  counter->Increment();
  EXPECT_DOUBLE_EQ(counter->Value(), 1.0);
}

TEST(MetricsRegistryTest, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Get(), &MetricsRegistry::Get());
}

// --- exporters -------------------------------------------------------------

TEST(MetricsRegistryTest, PrometheusExportMatchesGolden) {
  MetricsRegistry registry;
  registry.GetCounter("gupt_test_events_seen_total", "Events seen.")
      ->Increment(3.0);
  registry
      .GetGauge("gupt_test_queue_depth_count", "Queue depth.",
                {{"pool", "main"}})
      ->Set(4.0);
  Histogram* h = registry.GetHistogram("gupt_test_latency_wait_seconds",
                                       "Wait latency.", {0.25, 1.0});
  h->Observe(0.25);  // exactly binary-representable: the sum is exact
  h->Observe(0.5);
  h->Observe(2.0);
  // Families in name order, histograms expanded into cumulative buckets.
  const std::string kGolden =
      "# HELP gupt_test_events_seen_total Events seen.\n"
      "# TYPE gupt_test_events_seen_total counter\n"
      "gupt_test_events_seen_total 3\n"
      "# HELP gupt_test_latency_wait_seconds Wait latency.\n"
      "# TYPE gupt_test_latency_wait_seconds histogram\n"
      "gupt_test_latency_wait_seconds_bucket{le=\"0.25\"} 1\n"
      "gupt_test_latency_wait_seconds_bucket{le=\"1\"} 2\n"
      "gupt_test_latency_wait_seconds_bucket{le=\"+Inf\"} 3\n"
      "gupt_test_latency_wait_seconds_sum 2.75\n"
      "gupt_test_latency_wait_seconds_count 3\n"
      "# HELP gupt_test_queue_depth_count Queue depth.\n"
      "# TYPE gupt_test_queue_depth_count gauge\n"
      "gupt_test_queue_depth_count{pool=\"main\"} 4\n";
  EXPECT_EQ(registry.ExportPrometheus(), kGolden);
}

TEST(MetricsRegistryTest, PrometheusEscapesLabelValuesAndHelp) {
  MetricsRegistry registry;
  registry
      .GetCounter("gupt_test_escape_seen_total", "Help with \"quotes\".",
                  {{"path", "a\\b\"c\nd"}})
      ->Increment();
  std::string prom = registry.ExportPrometheus();
  EXPECT_NE(prom.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExportRoundTripsThroughParser) {
  MetricsRegistry registry;
  registry.GetCounter("gupt_test_events_seen_total", "Events.")
      ->Increment(2.5);
  registry
      .GetGauge("gupt_test_queue_depth_count", "Depth.", {{"pool", "main"}})
      ->Set(-1.5);
  Histogram* h = registry.GetHistogram("gupt_test_latency_wait_seconds",
                                       "Latency.", {0.25, 1.0});
  h->Observe(0.5);
  h->Observe(9.0);

  JsonValue root;
  ASSERT_TRUE(ParseJson(registry.ExportJson(), &root));
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  const JsonValue* metrics = root.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->type, JsonValue::Type::kArray);
  ASSERT_EQ(metrics->array.size(), 3u);

  auto find_family = [&](const std::string& name) -> const JsonValue* {
    for (const JsonValue& family : metrics->array) {
      const JsonValue* n = family.Find("name");
      if (n != nullptr && n->string == name) return &family;
    }
    return nullptr;
  };

  const JsonValue* counter = find_family("gupt_test_events_seen_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->Find("type")->string, "counter");
  EXPECT_EQ(counter->Find("help")->string, "Events.");
  ASSERT_EQ(counter->Find("series")->array.size(), 1u);
  EXPECT_DOUBLE_EQ(
      counter->Find("series")->array[0].Find("value")->number, 2.5);

  const JsonValue* gauge = find_family("gupt_test_queue_depth_count");
  ASSERT_NE(gauge, nullptr);
  const JsonValue& gauge_series = gauge->Find("series")->array[0];
  EXPECT_DOUBLE_EQ(gauge_series.Find("value")->number, -1.5);
  EXPECT_EQ(gauge_series.Find("labels")->Find("pool")->string, "main");

  const JsonValue* histogram = find_family("gupt_test_latency_wait_seconds");
  ASSERT_NE(histogram, nullptr);
  const JsonValue& hist_series = histogram->Find("series")->array[0];
  EXPECT_DOUBLE_EQ(hist_series.Find("count")->number, 2.0);
  EXPECT_DOUBLE_EQ(hist_series.Find("sum")->number, 9.5);
  const JsonValue* buckets = hist_series.Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->array.size(), 3u);  // two finite edges + Inf
  EXPECT_DOUBLE_EQ(buckets->array[0].Find("le")->number, 0.25);
  EXPECT_DOUBLE_EQ(buckets->array[0].Find("count")->number, 0.0);
  EXPECT_DOUBLE_EQ(buckets->array[1].Find("count")->number, 1.0);
  EXPECT_EQ(buckets->array[2].Find("le")->type, JsonValue::Type::kNull);
  EXPECT_DOUBLE_EQ(buckets->array[2].Find("count")->number, 1.0);
}

TEST(MetricsRegistryTest, EmptyRegistryExportsAreWellFormed) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.ExportPrometheus(), "");
  JsonValue root;
  ASSERT_TRUE(ParseJson(registry.ExportJson(), &root));
  EXPECT_TRUE(root.Find("metrics")->array.empty());
}

}  // namespace
}  // namespace obs
}  // namespace gupt
