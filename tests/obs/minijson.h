// Minimal recursive-descent JSON parser used by the observability tests to
// prove the exporters emit well-formed JSON (the "round-trips through a
// parser" acceptance check). Test-only: strict enough for correctness
// checks, not a production parser.

#ifndef GUPT_TESTS_OBS_MINIJSON_H_
#define GUPT_TESTS_OBS_MINIJSON_H_

#include <cctype>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace gupt {
namespace testjson {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    return ParseValue(out) && (SkipSpace(), pos_ == text_.size());
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word, JsonValue* out, JsonValue value) {
    std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      *out = std::move(value);
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string);
    }
    if (c == 't') {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return ConsumeWord("true", out, std::move(v));
    }
    if (c == 'f') {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      return ConsumeWord("false", out, std::move(v));
    }
    if (c == 'n') return ConsumeWord("null", out, JsonValue{});
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->type = JsonValue::Type::kObject;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      SkipSpace();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->type = JsonValue::Type::kArray;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            // Tests only use ASCII; decode the low byte.
            unsigned long code =
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            *out += static_cast<char>(code & 0x7f);
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    out->type = JsonValue::Type::kNumber;
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline bool ParseJson(const std::string& text, JsonValue* out) {
  return JsonParser(text).Parse(out);
}

}  // namespace testjson
}  // namespace gupt

#endif  // GUPT_TESTS_OBS_MINIJSON_H_
