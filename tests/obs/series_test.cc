// Unit tests for the time-series subsystem: ring-buffer ordering and
// rotation, the store's windowed summaries, the collector's sampling of
// a local registry under manual ticks, the forecaster's burn-rate
// exactness contract (the telescoping integral), the alert state
// machine with for-duration hysteresis, and the /timeseriesz + /alertz
// renderers. Everything here is deterministic: no background thread, no
// sleeps — ticks are driven by hand with synthetic timestamps.

#include "obs/series/alerts.h"
#include "obs/series/collector.h"
#include "obs/series/forecaster.h"
#include "obs/series/render.h"
#include "obs/series/time_series.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "minijson.h"
#include "obs/metrics.h"

namespace gupt {
namespace obs {
namespace series {
namespace {

using ::gupt::testjson::JsonValue;
using ::gupt::testjson::ParseJson;

SeriesPoint Point(std::int64_t t_ns, double value) {
  SeriesPoint point;
  point.t_ns = t_ns;
  point.unix_ms = t_ns / 1000000;
  point.value = value;
  return point;
}

// --- TimeSeries ------------------------------------------------------------

TEST(TimeSeriesTest, AppendsInOrderAndRotatesAtCapacity) {
  TimeSeries series(3);
  EXPECT_TRUE(series.empty());
  for (int i = 1; i <= 5; ++i) {
    EXPECT_TRUE(series.Append(Point(i * 100, i * 1.0)));
  }
  EXPECT_EQ(series.size(), 3u);
  std::vector<SeriesPoint> all =
      series.Window(std::numeric_limits<std::int64_t>::min());
  ASSERT_EQ(all.size(), 3u);
  // Oldest first; points 1 and 2 rotated out.
  EXPECT_EQ(all[0].t_ns, 300);
  EXPECT_EQ(all[1].t_ns, 400);
  EXPECT_EQ(all[2].t_ns, 500);
  EXPECT_EQ(series.Latest().t_ns, 500);
  EXPECT_DOUBLE_EQ(series.Latest().value, 5.0);
}

TEST(TimeSeriesTest, DropsNonMonotonePointsWithoutReordering) {
  TimeSeries series(8);
  EXPECT_TRUE(series.Append(Point(100, 1.0)));
  EXPECT_FALSE(series.Append(Point(100, 2.0)));  // equal timestamp
  EXPECT_FALSE(series.Append(Point(50, 3.0)));   // going backwards
  EXPECT_TRUE(series.Append(Point(101, 4.0)));
  std::vector<SeriesPoint> all =
      series.Window(std::numeric_limits<std::int64_t>::min());
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].t_ns, 100);
  EXPECT_EQ(all[1].t_ns, 101);
}

TEST(TimeSeriesTest, WindowFiltersByMinTimestamp) {
  TimeSeries series(10);
  for (int i = 1; i <= 6; ++i) ASSERT_TRUE(series.Append(Point(i * 10, i)));
  std::vector<SeriesPoint> window = series.Window(35);
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window[0].t_ns, 40);
  EXPECT_EQ(window[2].t_ns, 60);
  EXPECT_TRUE(series.Window(1000).empty());
}

// --- SeriesStore -----------------------------------------------------------

TEST(SeriesStoreTest, TracksNamedSeriesAndCounts) {
  SeriesStore store(4);
  EXPECT_TRUE(store.Append("b_series", Point(10, 1.0)));
  EXPECT_TRUE(store.Append("a_series", Point(10, 2.0)));
  EXPECT_TRUE(store.Append("b_series", Point(20, 3.0)));
  EXPECT_FALSE(store.Append("b_series", Point(20, 4.0)));  // dropped

  EXPECT_EQ(store.NumSeries(), 2u);
  EXPECT_EQ(store.AppendedPoints(), 3u);
  EXPECT_EQ(store.DroppedPoints(), 1u);
  EXPECT_TRUE(store.Has("a_series"));
  EXPECT_FALSE(store.Has("missing"));

  std::vector<std::string> names = store.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a_series");  // sorted
  EXPECT_EQ(names[1], "b_series");

  bool ok = false;
  SeriesPoint latest = store.Latest("b_series", &ok);
  EXPECT_TRUE(ok);
  EXPECT_DOUBLE_EQ(latest.value, 3.0);
  store.Latest("missing", &ok);
  EXPECT_FALSE(ok);
  EXPECT_EQ(store.LatestTimestampNs(), 20);
}

TEST(SeriesStoreTest, SummariesFilterByNameAndWindow) {
  SeriesStore store(16);
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(store.Append("gupt_x_total:rate", Point(i * 100, i * 1.0)));
    ASSERT_TRUE(store.Append("gupt_y_count:value", Point(i * 100, 10.0 - i)));
  }
  std::vector<SeriesSummary> all = store.Summaries("");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name, "gupt_x_total:rate");
  EXPECT_EQ(all[0].points, 4u);
  EXPECT_DOUBLE_EQ(all[0].min, 1.0);
  EXPECT_DOUBLE_EQ(all[0].max, 4.0);
  EXPECT_DOUBLE_EQ(all[0].mean, 2.5);
  EXPECT_EQ(all[0].first.t_ns, 100);
  EXPECT_EQ(all[0].last.t_ns, 400);

  std::vector<SeriesSummary> filtered = store.Summaries("y_count");
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].name, "gupt_y_count:value");

  // A window past every point still lists the series, with zero points.
  std::vector<SeriesSummary> late = store.Summaries("y_count", 1000);
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(late[0].points, 0u);
}

// --- SeriesName ------------------------------------------------------------

TEST(SeriesNameTest, FormatsLabelsCanonically) {
  EXPECT_EQ(SeriesName("gupt_service_admission_queue_depth", {}, "value"),
            "gupt_service_admission_queue_depth:value");
  EXPECT_EQ(SeriesName("gupt_runtime_queries_total", {{"outcome", "ok"}},
                       "rate"),
            "gupt_runtime_queries_total{outcome=ok}:rate");
  EXPECT_EQ(SeriesName("gupt_x_seconds",
                       {{"stage", "partition"}, {"mode", "tight"}}, "p99"),
            "gupt_x_seconds{mode=tight,stage=partition}:p99");
}

// --- BudgetForecaster ------------------------------------------------------

std::vector<BudgetStat> OneDataset(double total, double spent,
                                   std::uint64_t charges) {
  BudgetStat stat;
  stat.dataset = "ages";
  stat.total_epsilon = total;
  stat.spent_epsilon = spent;
  stat.num_charges = charges;
  return {stat};
}

TEST(BudgetForecasterTest, ComputesRatesAndExhaustionEstimates) {
  SeriesStore store(64);
  BudgetForecaster forecaster(/*window_ns=*/60LL * 1000000000LL);

  // The spent/charges series the window math reads must exist in the
  // store first, exactly as the collector writes them each tick.
  auto tick = [&](std::int64_t t_ns, double spent, std::uint64_t charges) {
    std::int64_t unix_ms = t_ns / 1000000;
    store.Append(SeriesName("gupt_budget_spent_epsilon",
                            {{"dataset", "ages"}}, "value"),
                 Point(t_ns, spent));
    store.Append(SeriesName("gupt_budget_charges_count",
                            {{"dataset", "ages"}}, "value"),
                 Point(t_ns, static_cast<double>(charges)));
    return forecaster.Tick(OneDataset(10.0, spent, charges), &store, t_ns,
                           unix_ms);
  };

  std::vector<BudgetForecast> first = tick(1000000000LL, 1.0, 10);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_DOUBLE_EQ(first[0].instant_rate_eps_per_s, 0.0);  // unprimed
  EXPECT_FALSE(first[0].burning);

  // +1s, +0.5 eps over 5 charges.
  std::vector<BudgetForecast> second = tick(2000000000LL, 1.5, 15);
  ASSERT_EQ(second.size(), 1u);
  const BudgetForecast& f = second[0];
  EXPECT_DOUBLE_EQ(f.instant_rate_eps_per_s, 0.5);
  EXPECT_TRUE(f.burning);
  EXPECT_DOUBLE_EQ(f.remaining_epsilon, 8.5);
  // Window rate over the 1s span is also 0.5 eps/s.
  EXPECT_DOUBLE_EQ(f.window_rate_eps_per_s, 0.5);
  EXPECT_DOUBLE_EQ(f.eps_per_query, 0.1);
  EXPECT_DOUBLE_EQ(f.seconds_to_exhaustion, 8.5 / 0.5);
  EXPECT_DOUBLE_EQ(f.queries_to_exhaustion, 85.0);

  // Burn series: one point per tick, first is 0.
  std::vector<SeriesPoint> burn = store.Points(SeriesName(
      "gupt_budget_burn_rate_epsilon", {{"dataset", "ages"}}, "value"));
  ASSERT_EQ(burn.size(), 2u);
  EXPECT_DOUBLE_EQ(burn[0].value, 0.0);
  EXPECT_DOUBLE_EQ(burn[1].value, 0.5);
}

TEST(BudgetForecasterTest, IdleDatasetReportsInfiniteHorizon) {
  SeriesStore store(64);
  BudgetForecaster forecaster(60LL * 1000000000LL);
  for (int i = 1; i <= 3; ++i) {
    std::int64_t t_ns = i * 1000000000LL;
    store.Append("gupt_budget_spent_epsilon{dataset=ages}:value",
                 Point(t_ns, 2.0));
    store.Append("gupt_budget_charges_count{dataset=ages}:value",
                 Point(t_ns, 7.0));
    std::vector<BudgetForecast> forecasts =
        forecaster.Tick(OneDataset(10.0, 2.0, 7), &store, t_ns, t_ns / 1000000);
    ASSERT_EQ(forecasts.size(), 1u);
    EXPECT_FALSE(forecasts[0].burning);
    EXPECT_TRUE(std::isinf(forecasts[0].seconds_to_exhaustion));
    EXPECT_TRUE(std::isinf(forecasts[0].queries_to_exhaustion));
  }
}

TEST(BudgetForecasterTest, ExhaustedDatasetForecastsZeroHorizon) {
  SeriesStore store(64);
  BudgetForecaster forecaster(60LL * 1000000000LL);
  store.Append("gupt_budget_spent_epsilon{dataset=ages}:value",
               Point(1000000000LL, 10.0));
  store.Append("gupt_budget_charges_count{dataset=ages}:value",
               Point(1000000000LL, 100.0));
  std::vector<BudgetForecast> forecasts =
      forecaster.Tick(OneDataset(10.0, 10.0, 100), &store, 1000000000LL, 1000);
  ASSERT_EQ(forecasts.size(), 1u);
  EXPECT_DOUBLE_EQ(forecasts[0].remaining_epsilon, 0.0);
  EXPECT_DOUBLE_EQ(forecasts[0].seconds_to_exhaustion, 0.0);
  EXPECT_DOUBLE_EQ(forecasts[0].queries_to_exhaustion, 0.0);
}

// The exactness contract: integrating the burn-rate series over its own
// timestamps telescopes back to the spent delta, far inside 1e-9.
TEST(BudgetForecasterTest, BurnRateIntegralTelescopesToSpentDelta) {
  SeriesStore store(256);
  BudgetForecaster forecaster(3600LL * 1000000000LL);

  // Irregular timestamps and awkward epsilon increments on purpose.
  double spent = 0.0;
  std::int64_t t_ns = 500000000LL;
  std::uint64_t charges = 0;
  double first_spent = 0.0, last_spent = 0.0;
  for (int i = 0; i < 100; ++i) {
    if (i > 0) {
      t_ns += 100000000LL + (i * 37) % 900000000LL;  // 0.1s .. 1s, irregular
      spent += 0.001 * ((i % 7) + 1) / 3.0;          // non-representable
      charges += (i % 3);
    }
    store.Append("gupt_budget_spent_epsilon{dataset=ages}:value",
                 Point(t_ns, spent));
    store.Append("gupt_budget_charges_count{dataset=ages}:value",
                 Point(t_ns, static_cast<double>(charges)));
    forecaster.Tick(OneDataset(100.0, spent, charges), &store, t_ns,
                    t_ns / 1000000);
    if (i == 0) first_spent = spent;
    last_spent = spent;
  }

  std::vector<SeriesPoint> burn = store.Points(
      "gupt_budget_burn_rate_epsilon{dataset=ages}:value");
  ASSERT_EQ(burn.size(), 100u);
  double integral = 0.0;
  for (std::size_t i = 1; i < burn.size(); ++i) {
    double dt = static_cast<double>(burn[i].t_ns - burn[i - 1].t_ns) * 1e-9;
    integral += burn[i].value * dt;
  }
  EXPECT_NEAR(integral, last_spent - first_spent, 1e-12);
}

// --- AlertRuleEngine -------------------------------------------------------

AlertRule ThresholdRule(const std::string& series, double threshold,
                        AlertAgg agg = AlertAgg::kLatest,
                        std::int64_t for_ms = 0) {
  AlertRule rule;
  rule.name = "test_rule";
  rule.description = "test threshold rule";
  rule.series = series;
  rule.threshold = threshold;
  rule.agg = agg;
  rule.for_ms = for_ms;
  rule.window_ms = 60000;
  return rule;
}

TEST(AlertRuleEngineTest, ThresholdRuleWalksPendingFiringResolved) {
  SeriesStore store(32);
  AlertRuleEngine engine(nullptr);
  engine.AddRule(ThresholdRule("gupt_q_depth_count:value", 5.0,
                               AlertAgg::kLatest, /*for_ms=*/2000));

  auto eval = [&](std::int64_t t_ns, double value) {
    store.Append("gupt_q_depth_count:value", Point(t_ns, value));
    engine.Evaluate(store, {}, t_ns, t_ns / 1000000, /*qid=*/t_ns);
    std::vector<AlertInstanceStatus> snapshot = engine.Snapshot();
    EXPECT_EQ(snapshot.size(), 1u);
    return snapshot.empty() ? AlertInstanceStatus{} : snapshot[0];
  };

  // Below threshold: inactive.
  AlertInstanceStatus s = eval(1000000000LL, 2.0);
  EXPECT_EQ(s.state, AlertState::kInactive);
  EXPECT_TRUE(s.has_data);

  // Above threshold: pending (for_ms hysteresis holds the fire).
  s = eval(2000000000LL, 9.0);
  EXPECT_EQ(s.state, AlertState::kPending);
  EXPECT_GT(s.pending_since_unix_ms, 0);
  EXPECT_EQ(s.firing_since_unix_ms, 0);

  // Still above 1s later: pending (needs 2s).
  s = eval(3000000000LL, 9.0);
  EXPECT_EQ(s.state, AlertState::kPending);

  // Condition has now held 2s: firing.
  s = eval(4000000000LL, 9.0);
  EXPECT_EQ(s.state, AlertState::kFiring);
  EXPECT_GT(s.firing_since_unix_ms, 0);
  EXPECT_EQ(s.fire_count, 1u);
  EXPECT_EQ(s.last_transition_qid, 4000000000u);

  std::vector<std::string> firing = engine.FiringNames();
  ASSERT_EQ(firing.size(), 1u);
  EXPECT_EQ(firing[0], "test_rule");

  // One good evaluation resolves, and resolved is sticky.
  s = eval(5000000000LL, 1.0);
  EXPECT_EQ(s.state, AlertState::kResolved);
  EXPECT_GT(s.resolved_unix_ms, 0);
  s = eval(6000000000LL, 1.0);
  EXPECT_EQ(s.state, AlertState::kResolved);
  EXPECT_TRUE(engine.FiringNames().empty());

  // The condition returning re-enters pending, not straight to firing.
  s = eval(7000000000LL, 9.0);
  EXPECT_EQ(s.state, AlertState::kPending);
}

TEST(AlertRuleEngineTest, ZeroForDurationFiresInOneEvaluation) {
  SeriesStore store(32);
  AlertRuleEngine engine(nullptr);
  engine.AddRule(ThresholdRule("gupt_x_count:value", 1.0));
  store.Append("gupt_x_count:value", Point(1000000000LL, 3.0));
  engine.Evaluate(store, {}, 1000000000LL, 1000, 42);
  std::vector<AlertInstanceStatus> snapshot = engine.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].state, AlertState::kFiring);
  // Both transitions (to pending, then firing) were recorded.
  EXPECT_EQ(snapshot[0].transitions, 2u);
  EXPECT_GT(snapshot[0].pending_since_unix_ms, 0);
}

TEST(AlertRuleEngineTest, PendingClearsWithoutEverFiring) {
  SeriesStore store(32);
  AlertRuleEngine engine(nullptr);
  engine.AddRule(ThresholdRule("gupt_x_count:value", 5.0, AlertAgg::kLatest,
                               /*for_ms=*/10000));
  store.Append("gupt_x_count:value", Point(1000000000LL, 9.0));
  engine.Evaluate(store, {}, 1000000000LL, 1000, 1);
  ASSERT_EQ(engine.Snapshot()[0].state, AlertState::kPending);
  store.Append("gupt_x_count:value", Point(2000000000LL, 1.0));
  engine.Evaluate(store, {}, 2000000000LL, 2000, 2);
  // Never fired, so back to inactive (not resolved).
  EXPECT_EQ(engine.Snapshot()[0].state, AlertState::kInactive);
  EXPECT_EQ(engine.Snapshot()[0].fire_count, 0u);
}

TEST(AlertRuleEngineTest, AggregationsAndFireBelow) {
  SeriesStore store(32);
  for (int i = 1; i <= 4; ++i) {
    store.Append("gupt_x_count:value", Point(i * 1000000000LL, i * 1.0));
  }
  const std::int64_t now = 4000000000LL;

  auto value_of = [&](AlertAgg agg) {
    AlertRuleEngine engine(nullptr);
    engine.AddRule(ThresholdRule("gupt_x_count:value", 1e9, agg));
    engine.Evaluate(store, {}, now, 4000, 1);
    return engine.Snapshot()[0].value;
  };
  EXPECT_DOUBLE_EQ(value_of(AlertAgg::kLatest), 4.0);
  EXPECT_DOUBLE_EQ(value_of(AlertAgg::kMean), 2.5);
  EXPECT_DOUBLE_EQ(value_of(AlertAgg::kMax), 4.0);
  EXPECT_DOUBLE_EQ(value_of(AlertAgg::kMin), 1.0);
  EXPECT_DOUBLE_EQ(value_of(AlertAgg::kDelta), 3.0);

  AlertRuleEngine below(nullptr);
  AlertRule rule = ThresholdRule("gupt_x_count:value", 10.0);
  rule.fire_below = true;  // fire when value <= threshold
  below.AddRule(rule);
  below.Evaluate(store, {}, now, 4000, 1);
  EXPECT_EQ(below.Snapshot()[0].state, AlertState::kFiring);
}

TEST(AlertRuleEngineTest, RatioRuleDividesAggregatesAndHandlesZero) {
  SeriesStore store(32);
  for (int i = 1; i <= 3; ++i) {
    store.Append("gupt_a_total:rate", Point(i * 1000000000LL, 4.0));
    store.Append("gupt_b_total:rate", Point(i * 1000000000LL, 8.0));
  }
  AlertRuleEngine engine(nullptr);
  AlertRule rule = ThresholdRule("gupt_a_total:rate", 0.4, AlertAgg::kMean);
  rule.name = "ratio_rule";
  rule.denominator = "gupt_b_total:rate";
  engine.AddRule(rule);
  engine.Evaluate(store, {}, 3000000000LL, 3000, 1);
  AlertInstanceStatus s = engine.Snapshot()[0];
  EXPECT_DOUBLE_EQ(s.value, 0.5);
  EXPECT_EQ(s.state, AlertState::kFiring);

  // Zero denominator with a positive numerator -> +inf (still fires).
  SeriesStore zero(32);
  zero.Append("gupt_a_total:rate", Point(1000000000LL, 4.0));
  zero.Append("gupt_b_total:rate", Point(1000000000LL, 0.0));
  AlertRuleEngine engine2(nullptr);
  engine2.AddRule(rule);
  engine2.Evaluate(zero, {}, 1000000000LL, 1000, 1);
  EXPECT_TRUE(std::isinf(engine2.Snapshot()[0].value));
  EXPECT_EQ(engine2.Snapshot()[0].state, AlertState::kFiring);
}

TEST(AlertRuleEngineTest, MissingSeriesReportsNoDataAndStaysInactive) {
  SeriesStore store(32);
  AlertRuleEngine engine(nullptr);
  engine.AddRule(ThresholdRule("gupt_never_written_count:value", 1.0));
  engine.Evaluate(store, {}, 1000000000LL, 1000, 1);
  AlertInstanceStatus s = engine.Snapshot()[0];
  EXPECT_FALSE(s.has_data);
  EXPECT_EQ(s.state, AlertState::kInactive);
}

TEST(AlertRuleEngineTest, BurnRateRuleTracksPerDatasetInstances) {
  SeriesStore store(32);
  AlertRuleEngine engine(nullptr);
  AlertRule rule;
  rule.name = "budget_exhaustion_imminent";
  rule.severity = AlertSeverity::kCritical;
  rule.burn_rate = true;
  rule.threshold = 600.0;  // horizon seconds
  engine.AddRule(rule);

  BudgetForecast burning;
  burning.dataset = "hot";
  burning.burning = true;
  burning.seconds_to_exhaustion = 120.0;
  BudgetForecast calm;
  calm.dataset = "cold";
  calm.burning = true;
  calm.seconds_to_exhaustion = 4e6;
  engine.Evaluate(store, {burning, calm}, 1000000000LL, 1000, 7);

  std::vector<AlertInstanceStatus> snapshot = engine.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  // Sorted by instance key: cold before hot.
  EXPECT_EQ(snapshot[0].instance, "cold");
  EXPECT_EQ(snapshot[0].state, AlertState::kInactive);
  EXPECT_EQ(snapshot[1].instance, "hot");
  EXPECT_EQ(snapshot[1].state, AlertState::kFiring);
  std::vector<std::string> firing =
      engine.FiringNames(AlertSeverity::kCritical);
  ASSERT_EQ(firing.size(), 1u);
  EXPECT_EQ(firing[0], "budget_exhaustion_imminent[hot]");
}

TEST(AlertRuleEngineTest, PublishesInstrumentationToTheRegistry) {
  MetricsRegistry registry;
  SeriesStore store(32);
  AlertRuleEngine engine(&registry);
  engine.AddRule(ThresholdRule("gupt_x_count:value", 1.0));
  store.Append("gupt_x_count:value", Point(1000000000LL, 5.0));
  engine.Evaluate(store, {}, 1000000000LL, 1000, 1);

  std::string prom = registry.ExportPrometheus();
  EXPECT_NE(prom.find("gupt_alert_rules_count 1"), std::string::npos) << prom;
  EXPECT_NE(prom.find("gupt_alert_evaluations_total"), std::string::npos);
  EXPECT_NE(prom.find("gupt_alert_transitions_total{to=\"firing\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("gupt_alert_firing_count{severity=\"warning\"} 1"),
            std::string::npos)
      << prom;
}

TEST(BuiltinAlertRulesTest, SkipsRulesWithoutConfiguredCapacity) {
  BuiltinRuleOptions options;
  options.admission_queue_capacity = 0;
  options.svt_session_capacity = 0;
  options.chamber_pool_enabled = false;
  std::vector<AlertRule> rules = BuiltinAlertRules(options);
  ASSERT_EQ(rules.size(), 1u);  // only the budget rule survives
  EXPECT_EQ(rules[0].name, "budget_exhaustion_imminent");
  EXPECT_TRUE(rules[0].burn_rate);
  EXPECT_EQ(rules[0].severity, AlertSeverity::kCritical);

  options.admission_queue_capacity = 10;
  options.svt_session_capacity = 4;
  options.chamber_pool_enabled = true;
  rules = BuiltinAlertRules(options);
  ASSERT_EQ(rules.size(), 4u);
  std::vector<std::string> names;
  for (const AlertRule& rule : rules) names.push_back(rule.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "admission_queue_saturation"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "chamber_pool_respawn_storm"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(),
                      "svt_session_capacity_pressure"),
            names.end());
}

// --- SeriesCollector (manual ticks, local registry) ------------------------

TEST(SeriesCollectorTest, SamplesCountersGaugesAndHistograms) {
  MetricsRegistry registry;
  Counter* requests = registry.GetCounter("gupt_t_requests_total", "help");
  Gauge* depth = registry.GetGauge("gupt_t_queue_depth_count", "help");
  Histogram* latency = registry.GetHistogram(
      "gupt_t_latency_seconds", "help", Histogram::DurationBuckets());

  SeriesStore store(64);
  SeriesCollectorOptions options;
  options.period_ms = 0;  // manual ticks only
  options.registry = &registry;
  SeriesCollector collector(options, &store, nullptr);

  requests->Increment(10);
  depth->Set(3.0);
  latency->Observe(0.002);
  collector.TickNow();

  // First tick: gauges and histogram quantiles appear; counters only
  // prime their rate baseline.
  EXPECT_TRUE(store.Has("gupt_t_queue_depth_count:value"));
  EXPECT_TRUE(store.Has("gupt_t_latency_seconds:p50"));
  EXPECT_TRUE(store.Has("gupt_t_latency_seconds:p95"));
  EXPECT_TRUE(store.Has("gupt_t_latency_seconds:p99"));
  EXPECT_FALSE(store.Has("gupt_t_requests_total:rate"));

  requests->Increment(20);
  depth->Set(5.0);
  collector.TickNow();
  EXPECT_EQ(collector.Ticks(), 2u);

  ASSERT_TRUE(store.Has("gupt_t_requests_total:rate"));
  std::vector<SeriesPoint> rate = store.Points("gupt_t_requests_total:rate");
  ASSERT_EQ(rate.size(), 1u);
  // 20 increments over the inter-tick interval: rate = 20 / dt.
  std::vector<SeriesPoint> depths =
      store.Points("gupt_t_queue_depth_count:value");
  ASSERT_EQ(depths.size(), 2u);
  double dt =
      static_cast<double>(depths[1].t_ns - depths[0].t_ns) * 1e-9;
  ASSERT_GT(dt, 0.0);
  EXPECT_NEAR(rate[0].value, 20.0 / dt, 1e-6 * (20.0 / dt));
  EXPECT_DOUBLE_EQ(depths[1].value, 5.0);

  // Collector self-instrumentation landed in the same registry.
  std::string prom = registry.ExportPrometheus();
  EXPECT_NE(prom.find("gupt_series_tracked_count"), std::string::npos);
  EXPECT_NE(prom.find("gupt_series_collections_total{outcome=\"ok\"} 2"),
            std::string::npos)
      << prom;
}

TEST(SeriesCollectorTest, CounterResetReprimesInsteadOfNegativeRate) {
  MetricsRegistry registry;
  Counter* requests = registry.GetCounter("gupt_t_requests_total", "help");
  SeriesStore store(64);
  SeriesCollectorOptions options;
  options.period_ms = 0;
  options.registry = &registry;
  SeriesCollector collector(options, &store, nullptr);

  requests->Increment(100);
  collector.TickNow();
  registry.Reset();  // counter goes backwards
  requests->Increment(1);
  collector.TickNow();
  // The reset tick re-primes rather than emitting a negative rate.
  EXPECT_FALSE(store.Has("gupt_t_requests_total:rate"));
  requests->Increment(5);
  collector.TickNow();
  std::vector<SeriesPoint> rate = store.Points("gupt_t_requests_total:rate");
  ASSERT_EQ(rate.size(), 1u);
  EXPECT_GT(rate[0].value, 0.0);
}

TEST(SeriesCollectorTest, OnCollectGateSkipsSamplingButNotEvaluation) {
  MetricsRegistry registry;
  Gauge* depth = registry.GetGauge("gupt_t_queue_depth_count", "help");
  depth->Set(1.0);

  SeriesStore store(64);
  AlertRuleEngine engine(&registry);
  bool allow_collect = true;
  SeriesCollectorOptions options;
  options.period_ms = 0;
  options.registry = &registry;
  options.on_collect = [&] { return allow_collect; };
  SeriesCollector collector(options, &store, &engine);

  collector.TickNow();
  std::uint64_t points_after_first = store.AppendedPoints();
  EXPECT_GT(points_after_first, 0u);
  EXPECT_EQ(engine.Evaluations(), 1u);

  allow_collect = false;
  collector.TickNow();
  // No new samples, but the alert engine still evaluated.
  EXPECT_EQ(store.AppendedPoints(), points_after_first);
  EXPECT_EQ(engine.Evaluations(), 2u);
  std::string prom = registry.ExportPrometheus();
  EXPECT_NE(
      prom.find("gupt_series_collections_total{outcome=\"skipped\"} 1"),
      std::string::npos)
      << prom;
}

TEST(SeriesCollectorTest, BudgetSourceProducesBudgetAndBurnSeries) {
  MetricsRegistry registry;
  SeriesStore store(64);
  double spent = 1.0;
  SeriesCollectorOptions options;
  options.period_ms = 0;
  options.registry = &registry;
  options.budget_source = [&] { return OneDataset(10.0, spent, 3); };
  SeriesCollector collector(options, &store, nullptr);

  collector.TickNow();
  spent = 2.0;
  collector.TickNow();

  for (const char* name :
       {"gupt_budget_total_epsilon{dataset=ages}:value",
        "gupt_budget_spent_epsilon{dataset=ages}:value",
        "gupt_budget_remaining_epsilon{dataset=ages}:value",
        "gupt_budget_charges_count{dataset=ages}:value",
        "gupt_budget_burn_rate_epsilon{dataset=ages}:value"}) {
    EXPECT_TRUE(store.Has(name)) << name;
  }
  // Burn series has exactly one point per tick (not double-written by
  // the registry sweep even though the burn gauges live in the registry).
  EXPECT_EQ(
      store.Points("gupt_budget_burn_rate_epsilon{dataset=ages}:value").size(),
      2u);
  std::vector<BudgetForecast> forecasts = collector.LatestForecasts();
  ASSERT_EQ(forecasts.size(), 1u);
  EXPECT_TRUE(forecasts[0].burning);
  EXPECT_GT(forecasts[0].instant_rate_eps_per_s, 0.0);
}

TEST(SeriesCollectorTest, StartStopIsIdempotentAndJoins) {
  MetricsRegistry registry;
  SeriesStore store(64);
  SeriesCollectorOptions options;
  options.period_ms = 5;
  options.registry = &registry;
  SeriesCollector collector(options, &store, nullptr);
  EXPECT_FALSE(collector.running());
  collector.Start();
  collector.Start();  // no-op
  EXPECT_TRUE(collector.running());
  collector.Stop();
  EXPECT_FALSE(collector.running());
  collector.Stop();  // idempotent
  std::uint64_t ticks = collector.Ticks();
  // The thread is gone: the tick count no longer moves.
  EXPECT_EQ(collector.Ticks(), ticks);
}

// --- Renderers -------------------------------------------------------------

TEST(RenderTest, TimeserieszJsonRoundTripsThroughTheParser) {
  SeriesStore store(16);
  for (int i = 1; i <= 3; ++i) {
    store.Append("gupt_x_count:value", Point(i * 1000000000LL, i * 1.5));
  }
  RenderInfo info;
  info.period_ms = 1000;
  info.capacity = 16;
  info.ticks = 3;

  std::string body = TimeserieszJson(store, "", 0.0, info);
  JsonValue root;
  ASSERT_TRUE(ParseJson(body, &root)) << body;
  EXPECT_DOUBLE_EQ(root.Find("tracked")->number, 1.0);
  EXPECT_DOUBLE_EQ(root.Find("period_ms")->number, 1000.0);
  const JsonValue* series = root.Find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->array.size(), 1u);
  EXPECT_EQ(series->array[0].Find("name")->string, "gupt_x_count:value");
  EXPECT_DOUBLE_EQ(series->array[0].Find("points")->number, 3.0);
  EXPECT_DOUBLE_EQ(series->array[0].Find("latest")->number, 4.5);
  // No filter: summaries only, no raw samples.
  EXPECT_EQ(series->array[0].Find("samples"), nullptr);

  // A non-empty filter includes the raw samples with 17-digit doubles.
  // (Fresh JsonValue per parse: the test parser appends into `object`.)
  std::string filtered = TimeserieszJson(store, "gupt_x", 0.0, info);
  JsonValue filtered_root;
  ASSERT_TRUE(ParseJson(filtered, &filtered_root)) << filtered;
  const JsonValue* samples =
      filtered_root.Find("series")->array[0].Find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_EQ(samples->array.size(), 3u);
  EXPECT_DOUBLE_EQ(samples->array[2].Find("value")->number, 4.5);

  // Windowing anchors at the newest point: a 1.5-second window keeps
  // points newer than t=3s - 1.5s.
  std::string windowed = TimeserieszJson(store, "gupt_x", 1.5, info);
  JsonValue windowed_root;
  ASSERT_TRUE(ParseJson(windowed, &windowed_root)) << windowed;
  EXPECT_EQ(
      windowed_root.Find("series")->array[0].Find("samples")->array.size(),
      2u);

  std::string text = TimeserieszText(store, "", 0.0, info);
  EXPECT_NE(text.find("gupt_x_count:value"), std::string::npos);
  EXPECT_NE(text.find("tracked"), std::string::npos);
}

TEST(RenderTest, AlertzBodiesCarryRuleAndInstanceState) {
  SeriesStore store(16);
  AlertRuleEngine engine(nullptr);
  AlertRule rule = ThresholdRule("gupt_x_count:value", 1.0);
  rule.name = "demo_rule";
  rule.description = "demo \"quoted\" description";
  engine.AddRule(rule);
  store.Append("gupt_x_count:value", Point(1000000000LL, 5.0));
  engine.Evaluate(store, {}, 1000000000LL, 1000, 9);

  std::string body = AlertzJson(engine);
  JsonValue root;
  ASSERT_TRUE(ParseJson(body, &root)) << body;
  const JsonValue* rules = root.Find("rules");
  ASSERT_NE(rules, nullptr);
  ASSERT_EQ(rules->array.size(), 1u);
  EXPECT_EQ(rules->array[0].Find("name")->string, "demo_rule");
  const JsonValue* instances = root.Find("instances");
  ASSERT_NE(instances, nullptr);
  ASSERT_EQ(instances->array.size(), 1u);
  EXPECT_EQ(instances->array[0].Find("state")->string, "firing");
  EXPECT_DOUBLE_EQ(instances->array[0].Find("value")->number, 5.0);
  EXPECT_DOUBLE_EQ(instances->array[0].Find("last_transition_qid")->number,
                   9.0);

  std::string text = AlertzText(engine);
  EXPECT_NE(text.find("demo_rule"), std::string::npos);
  EXPECT_NE(text.find("firing"), std::string::npos);
}

}  // namespace
}  // namespace series
}  // namespace obs
}  // namespace gupt
