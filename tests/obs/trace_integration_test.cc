// End-to-end observability: a GuptService query must produce a QueryTrace
// whose stage set matches the pipeline it actually ran, whose DP gauges
// agree with the audit record, and whose data reaches both exporters.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "minijson.h"
#include "service/gupt_service.h"

namespace gupt {
namespace {

using ::gupt::testjson::JsonValue;
using ::gupt::testjson::ParseJson;

Dataset Ages(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(40.0, 10.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

std::unique_ptr<GuptService> MakeService(double budget = 10.0) {
  ServiceOptions options;
  auto service = std::make_unique<GuptService>(
      options, ProgramRegistry::WithStandardPrograms());
  DatasetOptions ds;
  ds.total_epsilon = budget;
  EXPECT_TRUE(service->RegisterDataset("ages", Ages(4000, 7), ds).ok());
  return service;
}

QueryRequest MeanRequest(double epsilon) {
  QueryRequest request;
  request.analyst = "alice";
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = epsilon;
  request.range_mode = RangeMode::kTight;
  request.output_ranges = {Range{0.0, 150.0}};
  return request;
}

TEST(TraceIntegrationTest, TightModeTraceMatchesPipeline) {
  auto service = MakeService();
  auto report = service->SubmitQuery(MeanRequest(1.0));
  ASSERT_TRUE(report.ok());

  // The tight-mode pipeline, in order. No range_estimate stage: the
  // analyst declared the output range.
  EXPECT_EQ(report->trace.StageNames(),
            (std::vector<std::string>{"block_plan", "budget_derive",
                                      "budget_charge", "partition",
                                      "execute_blocks", "clamp_average",
                                      "noise"}));
  for (const auto& span : report->trace.spans()) {
    EXPECT_TRUE(span.ok) << span.name;
    EXPECT_GE(span.duration.count(), 0) << span.name;
  }

  // DP gauges agree with the report and the audit record.
  auto log = service->audit_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_TRUE(log[0].accepted);
  EXPECT_DOUBLE_EQ(report->trace.GaugeValue("epsilon_charged").value(),
                   log[0].epsilon_charged);
  EXPECT_DOUBLE_EQ(report->trace.GaugeValue("epsilon_charged").value(),
                   report->epsilon_spent);
  EXPECT_DOUBLE_EQ(report->trace.GaugeValue("block_count").value(),
                   static_cast<double>(report->num_blocks));
  EXPECT_DOUBLE_EQ(report->trace.GaugeValue("block_size").value(),
                   static_cast<double>(report->block_size));
  EXPECT_DOUBLE_EQ(report->trace.GaugeValue("gamma").value(),
                   static_cast<double>(report->gamma));
  EXPECT_DOUBLE_EQ(report->trace.GaugeValue("fallback_blocks").value(),
                   static_cast<double>(report->fallback_blocks));
  EXPECT_GT(report->trace.GaugeValue("noise_scale").value(), 0.0);

  // The audit record carries the one-line summary of the same trace.
  EXPECT_EQ(log[0].trace_summary, report->trace.Summary());
  EXPECT_NE(log[0].trace_summary.find("execute_blocks="), std::string::npos);
  EXPECT_NE(log[0].trace_summary.find("epsilon_charged=1"),
            std::string::npos);
}

TEST(TraceIntegrationTest, LooseModeAddsRangeEstimateStage) {
  auto service = MakeService();
  QueryRequest request = MeanRequest(2.0);
  request.range_mode = RangeMode::kLoose;
  request.output_ranges = {Range{0.0, 300.0}};
  auto report = service->SubmitQuery(request);
  ASSERT_TRUE(report.ok());
  std::vector<std::string> stages = report->trace.StageNames();
  // Loose mode estimates the output range from the block outputs, after
  // the chamber fan-out and before clamping.
  auto find = [&stages](const std::string& name) {
    for (std::size_t i = 0; i < stages.size(); ++i) {
      if (stages[i] == name) return static_cast<long>(i);
    }
    return -1L;
  };
  ASSERT_NE(find("range_estimate"), -1L);
  EXPECT_LT(find("execute_blocks"), find("range_estimate"));
  EXPECT_LT(find("range_estimate"), find("clamp_average"));
}

TEST(TraceIntegrationTest, RefusedQueryLeavesNoTraceSummary) {
  auto service = MakeService(/*budget=*/0.5);
  EXPECT_FALSE(service->SubmitQuery(MeanRequest(1.0)).ok());
  auto log = service->audit_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_FALSE(log[0].accepted);
  EXPECT_TRUE(log[0].trace_summary.empty());
}

TEST(TraceIntegrationTest, GlobalMetricsReflectTheQuery) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  obs::Counter* epsilon_total = registry.GetCounter(
      "gupt_dp_epsilon_charged_total",
      "Total privacy budget charged across all datasets.");
  const double epsilon_before = epsilon_total->Value();

  auto service = MakeService();
  ASSERT_TRUE(service->SubmitQuery(MeanRequest(1.5)).ok());

  // The epsilon counter advanced by exactly the charge.
  EXPECT_DOUBLE_EQ(epsilon_total->Value(), epsilon_before + 1.5);

  // Every name registered by the runtime follows the convention.
  EXPECT_TRUE(registry.invalid_names().empty());

  // The Prometheus dump from the service carries the acceptance metrics.
  std::string prom = GuptService::DumpMetrics(MetricsFormat::kPrometheus);
  EXPECT_NE(prom.find("gupt_dp_epsilon_charged_total"), std::string::npos);
  EXPECT_NE(prom.find("gupt_runtime_stage_duration_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(prom.find("gupt_exec_block_duration_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(prom.find("gupt_service_requests_total"), std::string::npos);
  EXPECT_NE(prom.find("stage=\"execute_blocks\""), std::string::npos);

  // The JSON dump parses.
  JsonValue root;
  ASSERT_TRUE(
      ParseJson(GuptService::DumpMetrics(MetricsFormat::kJson), &root));
  const JsonValue* metrics = root.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  bool found_stage_histogram = false;
  for (const JsonValue& family : metrics->array) {
    const JsonValue* name = family.Find("name");
    if (name != nullptr &&
        name->string == "gupt_runtime_stage_duration_seconds") {
      found_stage_histogram = true;
      EXPECT_EQ(family.Find("type")->string, "histogram");
      EXPECT_FALSE(family.Find("series")->array.empty());
    }
  }
  EXPECT_TRUE(found_stage_histogram);
}

}  // namespace
}  // namespace gupt
