#include <gtest/gtest.h>

#include "analytics/kmeans.h"
#include "baselines/airavat.h"
#include "common/rng.h"

namespace gupt {
namespace baselines {
namespace {

Dataset TwoClusters(std::size_t per_cluster, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  for (std::size_t i = 0; i < per_cluster; ++i) {
    rows.push_back({rng.Gaussian(2.0, 0.3), rng.Gaussian(2.0, 0.3)});
    rows.push_back({rng.Gaussian(8.0, 0.3), rng.Gaussian(8.0, 0.3)});
  }
  return Dataset::Create(std::move(rows)).value();
}

AiravatKMeansOptions Defaults() {
  AiravatKMeansOptions opts;
  opts.k = 2;
  opts.iterations = 10;
  opts.total_epsilon = 100.0;
  opts.feature_dims = {0, 1};
  opts.feature_ranges = {Range{0.0, 10.0}, Range{0.0, 10.0}};
  return opts;
}

TEST(AiravatKMeansTest, RecoversClustersWithGenerousBudget) {
  Dataset data = TwoClusters(800, 1);
  dp::PrivacyAccountant acc(1e6);
  Rng rng(2);
  auto opts = Defaults();
  opts.total_epsilon = 1000.0;
  auto centers = AiravatKMeans(data, opts, &acc, &rng);
  ASSERT_TRUE(centers.ok());
  ASSERT_EQ(centers->size(), 2u);
  EXPECT_NEAR((*centers)[0][0], 2.0, 0.5);
  EXPECT_NEAR((*centers)[1][0], 8.0, 0.5);
}

TEST(AiravatKMeansTest, ChargesOneJobPerIteration) {
  Dataset data = TwoClusters(100, 3);
  dp::PrivacyAccountant acc(100.0);
  Rng rng(4);
  auto opts = Defaults();
  opts.iterations = 7;
  opts.total_epsilon = 7.0;
  ASSERT_TRUE(AiravatKMeans(data, opts, &acc, &rng).ok());
  EXPECT_NEAR(acc.spent_epsilon(), 7.0, 1e-9);
  EXPECT_EQ(acc.num_charges(), 7u);
}

TEST(AiravatKMeansTest, IterationSplittingDegradesAccuracy) {
  // Airavat pays the same per-iteration budget tax as PINQ (§7.3), and on
  // top of it the single declared value range inflates the sensitivity by
  // the emission count.
  Dataset data = TwoClusters(600, 5);
  auto icv_at = [&](std::size_t iterations, std::uint64_t seed) {
    dp::PrivacyAccountant acc(1e7);
    Rng rng(seed);
    auto opts = Defaults();
    opts.iterations = iterations;
    opts.total_epsilon = 20.0;
    double sum = 0.0;
    const int trials = 8;
    for (int t = 0; t < trials; ++t) {
      auto centers = AiravatKMeans(data, opts, &acc, &rng).value();
      sum += analytics::IntraClusterVariance(data, centers, {0, 1}).value();
    }
    return sum / trials;
  };
  EXPECT_LT(icv_at(8, 6), icv_at(160, 7));
}

TEST(AiravatKMeansTest, BudgetExhaustionAbortsMidRun) {
  Dataset data = TwoClusters(50, 8);
  dp::PrivacyAccountant acc(1.0);
  Rng rng(9);
  auto opts = Defaults();
  opts.iterations = 10;
  opts.total_epsilon = 2.0;  // cannot fit in the 1.0 ledger
  auto centers = AiravatKMeans(data, opts, &acc, &rng);
  ASSERT_FALSE(centers.ok());
  EXPECT_EQ(centers.status().code(), StatusCode::kBudgetExhausted);
}

TEST(AiravatKMeansTest, RejectsBadOptions) {
  Dataset data = TwoClusters(20, 10);
  dp::PrivacyAccountant acc(10.0);
  Rng rng(11);
  auto opts = Defaults();

  auto bad = opts;
  bad.k = 0;
  EXPECT_FALSE(AiravatKMeans(data, bad, &acc, &rng).ok());
  bad = opts;
  bad.iterations = 0;
  EXPECT_FALSE(AiravatKMeans(data, bad, &acc, &rng).ok());
  bad = opts;
  bad.feature_ranges.pop_back();
  EXPECT_FALSE(AiravatKMeans(data, bad, &acc, &rng).ok());
  bad = opts;
  bad.total_epsilon = 0.0;
  EXPECT_FALSE(AiravatKMeans(data, bad, &acc, &rng).ok());
}

}  // namespace
}  // namespace baselines
}  // namespace gupt
