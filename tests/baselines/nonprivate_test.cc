#include "baselines/nonprivate.h"

#include <gtest/gtest.h>

#include "analytics/queries.h"

namespace gupt {
namespace baselines {
namespace {

TEST(NonPrivateTest, RunsProgramOnWholeDataset) {
  Dataset data = Dataset::FromColumn({2.0, 4.0, 6.0}).value();
  auto out = RunNonPrivate(analytics::MeanQuery(0), data);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, (Row{4.0}));
}

TEST(NonPrivateTest, PropagatesProgramErrors) {
  Dataset data = Dataset::FromColumn({1.0}).value();
  EXPECT_FALSE(RunNonPrivate(analytics::MeanQuery(5), data).ok());
}

TEST(NonPrivateTest, RejectsNullFactory) {
  Dataset data = Dataset::FromColumn({1.0}).value();
  EXPECT_FALSE(RunNonPrivate(ProgramFactory{}, data).ok());
}

}  // namespace
}  // namespace baselines
}  // namespace gupt
