#include <gtest/gtest.h>

#include "analytics/logistic_regression.h"
#include "baselines/pinq.h"
#include "common/rng.h"

namespace gupt {
namespace baselines {
namespace {

Dataset Separable(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  for (std::size_t i = 0; i < n; ++i) {
    double x0 = rng.Gaussian();
    double x1 = rng.Gaussian();
    rows.push_back({x0, x1, (x0 + x1 > 0.0) ? 1.0 : 0.0});
  }
  return Dataset::Create(std::move(rows)).value();
}

PinqLogisticRegressionOptions Defaults() {
  PinqLogisticRegressionOptions opts;
  opts.feature_dims = {0, 1};
  opts.label_dim = 2;
  opts.iterations = 25;
  opts.total_epsilon = 10.0;
  opts.feature_bound = 3.0;
  return opts;
}

double AccuracyOf(const Row& weights, const Dataset& data) {
  analytics::LogisticModel model;
  model.weights = weights;
  analytics::LogisticRegressionOptions lr;
  lr.feature_dims = {0, 1};
  lr.label_dim = 2;
  return analytics::ClassificationAccuracy(data, model, lr).value();
}

TEST(PinqLogRegTest, LearnsWithGenerousBudget) {
  Dataset data = Separable(5000, 1);
  dp::PrivacyAccountant acc(1000.0);
  Rng rng(2);
  auto opts = Defaults();
  opts.total_epsilon = 500.0;
  auto weights = PinqLogisticRegression(data, opts, &acc, &rng);
  ASSERT_TRUE(weights.ok());
  EXPECT_GT(AccuracyOf(*weights, data), 0.95);
}

TEST(PinqLogRegTest, ChargesExactlyTotal) {
  Dataset data = Separable(500, 3);
  dp::PrivacyAccountant acc(100.0);
  Rng rng(4);
  auto opts = Defaults();
  opts.total_epsilon = 5.0;
  ASSERT_TRUE(PinqLogisticRegression(data, opts, &acc, &rng).ok());
  EXPECT_NEAR(acc.spent_epsilon(), 5.0, 1e-9);
  // (d + 1) charges per iteration.
  EXPECT_EQ(acc.num_charges(), opts.iterations * 3);
}

TEST(PinqLogRegTest, BudgetExhaustionPropagates) {
  Dataset data = Separable(100, 5);
  dp::PrivacyAccountant acc(1.0);
  Rng rng(6);
  auto opts = Defaults();
  opts.total_epsilon = 5.0;  // more than the ledger holds
  auto weights = PinqLogisticRegression(data, opts, &acc, &rng);
  ASSERT_FALSE(weights.ok());
  EXPECT_EQ(weights.status().code(), StatusCode::kBudgetExhausted);
}

TEST(PinqLogRegTest, OverDeclaredIterationsHurt) {
  // The Fig. 5 failure mode on a different algorithm: the same total
  // budget split over 10x the iterations drowns each gradient in noise.
  Dataset data = Separable(4000, 7);
  auto accuracy_at = [&](std::size_t iterations, std::uint64_t seed) {
    dp::PrivacyAccountant acc(1e6);
    Rng rng(seed);
    auto opts = Defaults();
    opts.iterations = iterations;
    opts.total_epsilon = 2.0;
    double sum = 0.0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      sum += AccuracyOf(
          PinqLogisticRegression(data, opts, &acc, &rng).value(), data);
    }
    return sum / trials;
  };
  EXPECT_GT(accuracy_at(10, 8), accuracy_at(300, 9) + 0.03);
}

TEST(PinqLogRegTest, RejectsBadOptions) {
  Dataset data = Separable(50, 10);
  dp::PrivacyAccountant acc(10.0);
  Rng rng(11);
  auto opts = Defaults();

  auto bad = opts;
  bad.feature_dims = {};
  EXPECT_FALSE(PinqLogisticRegression(data, bad, &acc, &rng).ok());
  bad = opts;
  bad.feature_dims = {0, 9};
  EXPECT_FALSE(PinqLogisticRegression(data, bad, &acc, &rng).ok());
  bad = opts;
  bad.label_dim = 9;
  EXPECT_FALSE(PinqLogisticRegression(data, bad, &acc, &rng).ok());
  bad = opts;
  bad.iterations = 0;
  EXPECT_FALSE(PinqLogisticRegression(data, bad, &acc, &rng).ok());
  bad = opts;
  bad.total_epsilon = 0.0;
  EXPECT_FALSE(PinqLogisticRegression(data, bad, &acc, &rng).ok());
  bad = opts;
  bad.feature_bound = 0.0;
  EXPECT_FALSE(PinqLogisticRegression(data, bad, &acc, &rng).ok());
  EXPECT_DOUBLE_EQ(acc.spent_epsilon(), 0.0);
}

}  // namespace
}  // namespace baselines
}  // namespace gupt
