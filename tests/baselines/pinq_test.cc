#include "baselines/pinq.h"

#include <gtest/gtest.h>

#include "analytics/kmeans.h"
#include "common/rng.h"

namespace gupt {
namespace baselines {
namespace {

Dataset TwoClusters(std::size_t per_cluster, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  for (std::size_t i = 0; i < per_cluster; ++i) {
    rows.push_back({rng.Gaussian(2.0, 0.3), rng.Gaussian(2.0, 0.3)});
    rows.push_back({rng.Gaussian(8.0, 0.3), rng.Gaussian(8.0, 0.3)});
  }
  return Dataset::Create(std::move(rows)).value();
}

TEST(PinqQueryableTest, NoisyCountChargesAndIsCentered) {
  Dataset data = Dataset::FromColumn(std::vector<double>(500, 1.0)).value();
  dp::PrivacyAccountant acc(100.0);
  Rng rng(1);
  PinqQueryable q(&data, &acc, &rng);
  double sum = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    sum += q.NoisyCount(0.5).value();
  }
  EXPECT_NEAR(sum / trials, 500.0, 1.0);
  EXPECT_NEAR(acc.spent_epsilon(), 100.0, 1e-9);
}

TEST(PinqQueryableTest, BudgetExhaustionStopsQueries) {
  Dataset data = Dataset::FromColumn({1.0, 2.0}).value();
  dp::PrivacyAccountant acc(1.0);
  Rng rng(2);
  PinqQueryable q(&data, &acc, &rng);
  ASSERT_TRUE(q.NoisyCount(0.8).ok());
  auto second = q.NoisyCount(0.8);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kBudgetExhausted);
}

TEST(PinqQueryableTest, NoisyAverageClampsToRange) {
  Dataset data = Dataset::FromColumn({-100.0, 100.0}).value();
  dp::PrivacyAccountant acc(1000.0);
  Rng rng(3);
  PinqQueryable q(&data, &acc, &rng);
  double sum = 0.0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    sum += q.NoisyAverage(0, Range{0.0, 1.0}, 1.0).value();
  }
  // Clamped values are {0, 1}: average 0.5.
  EXPECT_NEAR(sum / trials, 0.5, 0.1);
}

TEST(PinqQueryableTest, NoisySumIsCentered) {
  Dataset data = Dataset::FromColumn({1.0, 2.0, 3.0}).value();
  dp::PrivacyAccountant acc(1000.0);
  Rng rng(4);
  PinqQueryable q(&data, &acc, &rng);
  double sum = 0.0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    sum += q.NoisySum(0, Range{0.0, 5.0}, 2.0).value();
  }
  EXPECT_NEAR(sum / trials, 6.0, 0.5);
}

TEST(PinqQueryableTest, ColumnOutOfRangeErrors) {
  Dataset data = Dataset::FromColumn({1.0}).value();
  dp::PrivacyAccountant acc(10.0);
  Rng rng(5);
  PinqQueryable q(&data, &acc, &rng);
  EXPECT_FALSE(q.NoisyAverage(3, Range{0.0, 1.0}, 1.0).ok());
  EXPECT_FALSE(q.NoisySum(3, Range{0.0, 1.0}, 1.0).ok());
}

TEST(PinqQueryableTest, PartitionSplitsDisjointly) {
  Dataset data = Dataset::FromColumn({1.0, 2.0, 3.0, 4.0, 5.0}).value();
  dp::PrivacyAccountant acc(10.0);
  Rng rng(6);
  PinqQueryable q(&data, &acc, &rng);
  auto parts = q.Partition(
      [](const Row& row) { return row[0] > 2.5 ? 1u : 0u; }, 2);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ((*parts)[0].size(), 2u);
  EXPECT_EQ((*parts)[1].size(), 3u);
}

TEST(PinqQueryableTest, PartitionKeyOutOfRangeErrors) {
  Dataset data = Dataset::FromColumn({1.0}).value();
  dp::PrivacyAccountant acc(10.0);
  Rng rng(7);
  PinqQueryable q(&data, &acc, &rng);
  EXPECT_FALSE(q.Partition([](const Row&) { return 5u; }, 2).ok());
}

TEST(PinqQueryableTest, ParallelCompositionChargesOnce) {
  Dataset data = Dataset::FromColumn({1.0, 2.0, 3.0, 4.0}).value();
  dp::PrivacyAccountant acc(10.0);
  Rng rng(8);
  PinqQueryable q(&data, &acc, &rng);
  auto parts =
      q.Partition([](const Row& row) { return row[0] > 2.5 ? 1u : 0u; }, 2);
  ASSERT_TRUE(parts.ok());
  auto counts = PinqQueryable::RunOnParts(
      &*parts, 0.5, "count",
      [](PinqQueryable* part, double eps) { return part->NoisyCount(eps); });
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ(counts->size(), 2u);
  // One charge of 0.5 for both parts — not 1.0.
  EXPECT_NEAR(acc.spent_epsilon(), 0.5, 1e-9);
  EXPECT_EQ(acc.num_charges(), 1u);
}

TEST(PinqQueryableTest, ExponentialChoicePicksHighScorer) {
  // Records vote for bucket 0 below 5.0 and bucket 1 above; most records
  // are above, so the mechanism should pick bucket 1 nearly always.
  Dataset data = Dataset::FromColumn(
                     {1.0, 6.0, 7.0, 8.0, 9.0, 6.5, 7.5, 8.5}).value();
  dp::PrivacyAccountant acc(1000.0);
  Rng rng(20);
  PinqQueryable q(&data, &acc, &rng);
  auto scorer = [](const Row& row) {
    return row[0] < 5.0 ? std::vector<double>{1.0, 0.0}
                        : std::vector<double>{0.0, 1.0};
  };
  int bucket1 = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    auto choice = q.ExponentialChoice(scorer, 2, 1.0, 2.0);
    ASSERT_TRUE(choice.ok());
    if (choice.value() == 1) ++bucket1;
  }
  EXPECT_GT(bucket1, trials * 9 / 10);
  EXPECT_NEAR(acc.spent_epsilon(), 2.0 * trials, 1e-6);
}

TEST(PinqQueryableTest, ExponentialChoiceValidatesArguments) {
  Dataset data = Dataset::FromColumn({1.0}).value();
  dp::PrivacyAccountant acc(10.0);
  Rng rng(21);
  PinqQueryable q(&data, &acc, &rng);
  EXPECT_FALSE(q.ExponentialChoice(nullptr, 2, 1.0, 1.0).ok());
  auto scorer = [](const Row&) { return std::vector<double>{1.0}; };
  EXPECT_FALSE(q.ExponentialChoice(scorer, 0, 1.0, 1.0).ok());
  EXPECT_FALSE(q.ExponentialChoice(scorer, 2, 1.0, 1.0).ok());  // arity
}

TEST(PinqKMeansTest, RecoversClustersWithGenerousBudget) {
  Dataset data = TwoClusters(500, 9);
  dp::PrivacyAccountant acc(1000.0);
  Rng rng(10);
  PinqKMeansOptions opts;
  opts.k = 2;
  opts.iterations = 10;
  opts.total_epsilon = 500.0;  // effectively non-private
  opts.feature_dims = {0, 1};
  opts.feature_ranges = {Range{0.0, 10.0}, Range{0.0, 10.0}};
  auto centers = PinqKMeans(data, opts, &acc, &rng);
  ASSERT_TRUE(centers.ok());
  ASSERT_EQ(centers->size(), 2u);
  EXPECT_NEAR((*centers)[0][0], 2.0, 0.5);
  EXPECT_NEAR((*centers)[1][0], 8.0, 0.5);
  EXPECT_NEAR(acc.spent_epsilon(), 500.0, 1e-6);
}

TEST(PinqKMeansTest, ChargesExactlyTotalEpsilon) {
  Dataset data = TwoClusters(100, 11);
  dp::PrivacyAccountant acc(10.0);
  Rng rng(12);
  PinqKMeansOptions opts;
  opts.k = 2;
  opts.iterations = 7;
  opts.total_epsilon = 2.0;
  opts.feature_dims = {0, 1};
  opts.feature_ranges = {Range{0.0, 10.0}, Range{0.0, 10.0}};
  ASSERT_TRUE(PinqKMeans(data, opts, &acc, &rng).ok());
  EXPECT_NEAR(acc.spent_epsilon(), 2.0, 1e-9);
  // Per iteration: 1 count charge + 2 per-dim sum charges = 21 charges.
  EXPECT_EQ(acc.num_charges(), 21u);
}

TEST(PinqKMeansTest, OverDeclaredIterationsHurtAccuracy) {
  // Fig. 5's phenomenon: same budget, more declared iterations => more
  // noise per iteration => worse clusters.
  Dataset data = TwoClusters(400, 13);
  auto icv_for_iterations = [&](std::size_t iterations, std::uint64_t seed) {
    dp::PrivacyAccountant acc(1e6);
    Rng rng(seed);
    PinqKMeansOptions opts;
    opts.k = 2;
    opts.iterations = iterations;
    opts.total_epsilon = 2.0;
    opts.feature_dims = {0, 1};
    opts.feature_ranges = {Range{0.0, 10.0}, Range{0.0, 10.0}};
    double icv_sum = 0.0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
      auto centers = PinqKMeans(data, opts, &acc, &rng).value();
      icv_sum +=
          analytics::IntraClusterVariance(data, centers, {0, 1}).value();
    }
    return icv_sum / trials;
  };
  EXPECT_LT(icv_for_iterations(10, 14), icv_for_iterations(200, 15));
}

TEST(PinqKMeansTest, RejectsBadOptions) {
  Dataset data = TwoClusters(10, 16);
  dp::PrivacyAccountant acc(10.0);
  Rng rng(17);
  PinqKMeansOptions opts;
  opts.k = 2;
  opts.iterations = 5;
  opts.total_epsilon = 1.0;
  opts.feature_dims = {0, 1};
  opts.feature_ranges = {Range{0.0, 10.0}, Range{0.0, 10.0}};

  PinqKMeansOptions bad = opts;
  bad.k = 0;
  EXPECT_FALSE(PinqKMeans(data, bad, &acc, &rng).ok());
  bad = opts;
  bad.iterations = 0;
  EXPECT_FALSE(PinqKMeans(data, bad, &acc, &rng).ok());
  bad = opts;
  bad.feature_ranges.pop_back();
  EXPECT_FALSE(PinqKMeans(data, bad, &acc, &rng).ok());
  bad = opts;
  bad.total_epsilon = 0.0;
  EXPECT_FALSE(PinqKMeans(data, bad, &acc, &rng).ok());
  bad = opts;
  bad.count_fraction = 1.0;
  EXPECT_FALSE(PinqKMeans(data, bad, &acc, &rng).ok());
}

}  // namespace
}  // namespace baselines
}  // namespace gupt
