#include "baselines/airavat.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gupt {
namespace baselines {
namespace {

AiravatJob CountByThreshold(double threshold) {
  AiravatJob job;
  job.mapper = [threshold](const Row& row) {
    std::vector<std::pair<std::size_t, double>> out;
    out.emplace_back(row[0] > threshold ? 1u : 0u, 1.0);
    return out;
  };
  job.reducer = AiravatReducer::kSum;
  job.num_keys = 2;
  job.value_range = Range{0.0, 1.0};
  job.max_emissions_per_record = 1;
  job.epsilon = 5.0;
  return job;
}

TEST(AiravatTest, SumReducerCentered) {
  Dataset data = Dataset::FromColumn({1.0, 2.0, 3.0, 4.0}).value();
  dp::PrivacyAccountant acc(10000.0);
  Rng rng(1);
  AiravatJob job = CountByThreshold(2.5);
  double below = 0.0, above = 0.0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    auto result = RunAiravatJob(data, job, &acc, &rng).value();
    below += result.values[0];
    above += result.values[1];
  }
  EXPECT_NEAR(below / trials, 2.0, 0.2);
  EXPECT_NEAR(above / trials, 2.0, 0.2);
}

TEST(AiravatTest, ChargesBudgetUpFront) {
  Dataset data = Dataset::FromColumn({1.0}).value();
  dp::PrivacyAccountant acc(6.0);
  Rng rng(2);
  ASSERT_TRUE(RunAiravatJob(data, CountByThreshold(0.0), &acc, &rng).ok());
  EXPECT_DOUBLE_EQ(acc.spent_epsilon(), 5.0);
  // Second job exceeds the remaining 1.0.
  auto second = RunAiravatJob(data, CountByThreshold(0.0), &acc, &rng);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kBudgetExhausted);
}

TEST(AiravatTest, LyingMapperIsClampedNotTrusted) {
  // Mapper emits a huge value; enforcement clamps it to the declared range
  // so the released sum stays near the clamped truth.
  AiravatJob job;
  job.mapper = [](const Row&) {
    return std::vector<std::pair<std::size_t, double>>{{0u, 1e9}};
  };
  job.num_keys = 1;
  job.value_range = Range{0.0, 1.0};
  job.epsilon = 10.0;
  Dataset data = Dataset::FromColumn({1.0, 1.0, 1.0}).value();
  dp::PrivacyAccountant acc(1e6);
  Rng rng(3);
  double sum = 0.0;
  const int trials = 200;
  std::size_t enforcement = 0;
  for (int i = 0; i < trials; ++i) {
    auto result = RunAiravatJob(data, job, &acc, &rng).value();
    sum += result.values[0];
    enforcement = result.enforcement_actions;
  }
  EXPECT_NEAR(sum / trials, 3.0, 0.2);  // clamped to 1.0 per record
  EXPECT_EQ(enforcement, 3u);
}

TEST(AiravatTest, ExcessEmissionsAreDropped) {
  AiravatJob job;
  job.mapper = [](const Row&) {
    return std::vector<std::pair<std::size_t, double>>{
        {0u, 1.0}, {0u, 1.0}, {0u, 1.0}};
  };
  job.num_keys = 1;
  job.value_range = Range{0.0, 1.0};
  job.max_emissions_per_record = 1;
  job.epsilon = 20.0;
  Dataset data = Dataset::FromColumn({1.0, 1.0}).value();
  dp::PrivacyAccountant acc(1e6);
  Rng rng(4);
  double sum = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    auto result = RunAiravatJob(data, job, &acc, &rng).value();
    sum += result.values[0];
    EXPECT_EQ(result.enforcement_actions, 4u);  // 2 dropped per record
  }
  EXPECT_NEAR(sum / trials, 2.0, 0.2);
}

TEST(AiravatTest, EmissionToUndeclaredKeyIsDropped) {
  AiravatJob job;
  job.mapper = [](const Row&) {
    return std::vector<std::pair<std::size_t, double>>{{7u, 1.0}};
  };
  job.num_keys = 2;
  job.value_range = Range{0.0, 1.0};
  job.epsilon = 20.0;
  Dataset data = Dataset::FromColumn({1.0}).value();
  dp::PrivacyAccountant acc(1000.0);
  Rng rng(5);
  auto result = RunAiravatJob(data, job, &acc, &rng).value();
  EXPECT_EQ(result.enforcement_actions, 1u);
}

TEST(AiravatTest, CountReducer) {
  AiravatJob job = CountByThreshold(2.5);
  job.reducer = AiravatReducer::kCount;
  job.epsilon = 20.0;
  Dataset data = Dataset::FromColumn({1.0, 2.0, 3.0, 4.0, 5.0}).value();
  dp::PrivacyAccountant acc(100000.0);
  Rng rng(6);
  double count_above = 0.0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    count_above += RunAiravatJob(data, job, &acc, &rng).value().values[1];
  }
  EXPECT_NEAR(count_above / trials, 3.0, 0.2);
}

TEST(AiravatTest, MeanReducer) {
  AiravatJob job;
  job.mapper = [](const Row& row) {
    return std::vector<std::pair<std::size_t, double>>{{0u, row[0]}};
  };
  job.reducer = AiravatReducer::kMean;
  job.num_keys = 1;
  job.value_range = Range{0.0, 10.0};
  job.epsilon = 20.0;
  Dataset data =
      Dataset::FromColumn(std::vector<double>(200, 4.0)).value();
  dp::PrivacyAccountant acc(100000.0);
  Rng rng(7);
  double sum = 0.0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    sum += RunAiravatJob(data, job, &acc, &rng).value().values[0];
  }
  EXPECT_NEAR(sum / trials, 4.0, 0.3);
}

TEST(AiravatTest, RejectsBadJobs) {
  Dataset data = Dataset::FromColumn({1.0}).value();
  dp::PrivacyAccountant acc(10.0);
  Rng rng(8);
  AiravatJob job = CountByThreshold(0.0);

  AiravatJob bad = job;
  bad.mapper = nullptr;
  EXPECT_FALSE(RunAiravatJob(data, bad, &acc, &rng).ok());
  bad = job;
  bad.num_keys = 0;
  EXPECT_FALSE(RunAiravatJob(data, bad, &acc, &rng).ok());
  bad = job;
  bad.value_range = Range{1.0, 0.0};
  EXPECT_FALSE(RunAiravatJob(data, bad, &acc, &rng).ok());
  bad = job;
  bad.max_emissions_per_record = 0;
  EXPECT_FALSE(RunAiravatJob(data, bad, &acc, &rng).ok());
  bad = job;
  bad.epsilon = 0.0;
  EXPECT_FALSE(RunAiravatJob(data, bad, &acc, &rng).ok());
  // None of the rejected jobs charged the ledger.
  EXPECT_DOUBLE_EQ(acc.spent_epsilon(), 0.0);
}

}  // namespace
}  // namespace baselines
}  // namespace gupt
