#include "dp/svt.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace gupt {
namespace dp {
namespace {

SvtConfig BigEpsilonConfig(double threshold, std::size_t c) {
  // epsilon = 1000 makes both noise scales tiny (<= 2c/500), so verdicts
  // on margins of +-100 are deterministic for all practical purposes.
  return SvtConfig::EvenSplit(1000.0, threshold, c);
}

TEST(SvtConfigTest, EvenSplitMatchesThePaperScales) {
  // The familiar presentation: rho ~ Lap(2 Delta / eps) and
  // nu ~ Lap(4 c Delta / eps) are exactly the even split eps1 = eps2 = eps/2.
  SvtConfig config = SvtConfig::EvenSplit(0.5, 10.0, 3, 2.0);
  EXPECT_DOUBLE_EQ(config.epsilon1, 0.25);
  EXPECT_DOUBLE_EQ(config.epsilon2, 0.25);
  EXPECT_DOUBLE_EQ(config.total_epsilon(), 0.5);
  EXPECT_DOUBLE_EQ(SvtThresholdScale(config).value(), 2.0 * 2.0 / 0.5);
  EXPECT_DOUBLE_EQ(SvtQueryScale(config).value(), 4.0 * 3.0 * 2.0 / 0.5);
}

TEST(SvtConfigTest, ScalesRejectInvalidConfigs) {
  SvtConfig config = SvtConfig::EvenSplit(1.0, 0.0, 1);
  EXPECT_TRUE(SvtThresholdScale(config).ok());

  SvtConfig bad = config;
  bad.threshold = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(SvtThresholdScale(bad).ok());

  bad = config;
  bad.sensitivity = 0.0;
  EXPECT_FALSE(SvtThresholdScale(bad).ok());

  bad = config;
  bad.epsilon1 = -1.0;
  EXPECT_FALSE(SvtThresholdScale(bad).ok());

  bad = config;
  bad.epsilon2 = 0.0;
  EXPECT_FALSE(SvtQueryScale(bad).ok());

  bad = config;
  bad.max_positives = 0;
  EXPECT_FALSE(SvtQueryScale(bad).ok());
  EXPECT_FALSE(SvtEngine::Create(bad, Rng(1)).ok());
}

TEST(SvtAboveProbabilityTest, ZeroMarginIsExactlyHalf) {
  // nu - rho is symmetric around zero whatever the two scales are, so a
  // query sitting exactly at the threshold is a coin flip.
  EXPECT_DOUBLE_EQ(
      SvtAboveProbability(0.0, SvtConfig::EvenSplit(1.0, 0.0, 1)).value(),
      0.5);
  EXPECT_DOUBLE_EQ(
      SvtAboveProbability(0.0, SvtConfig::EvenSplit(0.3, 5.0, 4)).value(),
      0.5);
}

TEST(SvtAboveProbabilityTest, IsAProperMonotoneTail) {
  SvtConfig config = SvtConfig::EvenSplit(1.0, 0.0, 2);
  double previous = 0.0;
  for (double margin = -40.0; margin <= 40.0; margin += 0.5) {
    double p = SvtAboveProbability(margin, config).value();
    EXPECT_GE(p, previous) << "margin " << margin;
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    // Symmetry of the difference distribution: p(m) + p(-m) = 1.
    EXPECT_NEAR(p + SvtAboveProbability(-margin, config).value(), 1.0,
                1e-12);
    previous = p;
  }
  // At margin 40 the tail is dominated by the query-noise scale a = 8:
  // roughly (a/(2(a+b))) e^{-40/a} ~= 4e-3.
  EXPECT_LT(SvtAboveProbability(-40.0, config).value(), 1e-2);
  EXPECT_GT(SvtAboveProbability(40.0, config).value(), 1.0 - 1e-2);
}

TEST(SvtAboveProbabilityTest, EqualScaleLimitIsContinuous) {
  // The a == b closed form must agree with the a != b form as the scales
  // approach each other (the implementation switches branches on relative
  // closeness; both sides of the switch must meet).
  SvtConfig near_equal;
  near_equal.threshold = 0.0;
  near_equal.sensitivity = 1.0;
  near_equal.epsilon1 = 1.0;            // b = 1
  near_equal.epsilon2 = 2.0 + 1e-6;    // a = 2c/eps2 ~= 1 (c = 1)
  near_equal.max_positives = 1;
  SvtConfig equal = near_equal;
  equal.epsilon2 = 2.0;  // a = exactly 1 = b
  for (double margin : {-3.0, -1.0, 0.0, 1.0, 3.0}) {
    EXPECT_NEAR(SvtAboveProbability(margin, near_equal).value(),
                SvtAboveProbability(margin, equal).value(), 1e-5)
        << "margin " << margin;
  }
}

TEST(SvtEngineTest, BelowAnswersAreUnlimitedAndFree) {
  auto engine = SvtEngine::Create(BigEpsilonConfig(100.0, 1), Rng(7));
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 1000; ++i) {
    auto answer = engine->Process(0.0);  // margin -100: certain below
    ASSERT_TRUE(answer.ok());
    EXPECT_EQ(answer->verdict, SvtVerdict::kBelow);
    EXPECT_EQ(answer->gap, 0.0);
  }
  EXPECT_EQ(engine->queries_answered(), 1000u);
  EXPECT_EQ(engine->below_answered(), 1000u);
  EXPECT_EQ(engine->positives_spent(), 0u);
  EXPECT_FALSE(engine->exhausted());
}

TEST(SvtEngineTest, HaltsAfterMaxPositivesWithNonNegativeGaps) {
  auto engine = SvtEngine::Create(BigEpsilonConfig(100.0, 2), Rng(8));
  ASSERT_TRUE(engine.ok());

  auto first = engine->Process(200.0);  // margin +100: certain above
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->verdict, SvtVerdict::kAbove);
  EXPECT_GT(first->gap, 0.0);
  EXPECT_EQ(engine->positives_spent(), 1u);
  EXPECT_EQ(engine->remaining_positives(), 1u);
  EXPECT_FALSE(engine->exhausted());

  // Negatives between positives stay free.
  ASSERT_TRUE(engine->Process(0.0).ok());

  auto second = engine->Process(200.0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->verdict, SvtVerdict::kAbove);
  EXPECT_TRUE(engine->exhausted());
  EXPECT_EQ(engine->remaining_positives(), 0u);

  auto refused = engine->Process(0.0);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kBudgetExhausted);
  // Refused calls are not answers: 3 answered (above, below, above).
  EXPECT_EQ(engine->queries_answered(), 3u);
}

TEST(SvtEngineTest, RejectsNonFiniteQueryValues) {
  auto engine = SvtEngine::Create(BigEpsilonConfig(0.0, 1), Rng(9));
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->Process(std::nan("")).ok());
  EXPECT_FALSE(
      engine->Process(std::numeric_limits<double>::infinity()).ok());
  EXPECT_EQ(engine->queries_answered(), 0u);
}

TEST(SvtEngineTest, IsDeterministicForAFixedSeed) {
  SvtConfig config = SvtConfig::EvenSplit(2.0, 5.0, 3);
  auto a = SvtEngine::Create(config, Rng(0xabcdef, 17));
  auto b = SvtEngine::Create(config, Rng(0xabcdef, 17));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 200 && !a->exhausted(); ++i) {
    double q = 5.0 + ((i % 7) - 3);  // sweep margins -3..+3
    auto answer_a = a->Process(q);
    auto answer_b = b->Process(q);
    ASSERT_TRUE(answer_a.ok());
    ASSERT_TRUE(answer_b.ok());
    EXPECT_EQ(answer_a->verdict, answer_b->verdict) << "query " << i;
    EXPECT_EQ(answer_a->gap, answer_b->gap) << "query " << i;
  }
}

}  // namespace
}  // namespace dp
}  // namespace gupt
