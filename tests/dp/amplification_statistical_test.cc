// Pre-registered statistical acceptance suite for amplification by
// sampling (dp/amplification.h, docs/amplification.md).
//
// Three layers of evidence, per the tests/statutil/ conventions
// (pre-registered named seeds, alpha = 1e-6, accept/power twins):
//
//  1. A closed-form unit grid: epsilon'(rate, epsilon) agrees with
//     ln(1 + rate * (e^eps - 1)) to 1e-12 relative error across eleven
//     decades of epsilon, including the rate -> 1 limit (bit-exact
//     identity) and the epsilon -> 0 limit (epsilon' -> rate * epsilon),
//     and the inverse map round-trips.
//  2. A KS acceptance test on the real pipeline: with amplification in
//     raw-epsilon mode, the release runs on a Bernoulli(rate) subsample
//     partitioned into a plan-time-fixed block count, and its noise is
//     distributed exactly as the raw-epsilon Laplace calibration
//     predicts — the ledger debit shrinks, the noise does not.
//  3. A power twin: a deliberately mis-calibrated variant that noises at
//     the *amplified* epsilon' (the bug this suite exists to catch —
//     charging less AND noising less would break the DP guarantee) is
//     rejected by the same KS test at alpha = 1e-6.
//
// Plus the soundness guard rails from the review of the original design:
// amplification without an explicit rate, with resampling (gamma > 1),
// in shared-budget batches, or with a charged-mode raw epsilon above the
// cap are all refused before any budget is charged.

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/queries.h"
#include "core/gupt.h"
#include "core/sample_aggregate.h"
#include "dp/amplification.h"
#include "statutil.h"

namespace gupt {
namespace {

// Pre-registered: seed and alpha were fixed before observing any outcome
// (tests/statutil/ convention). alpha = 1e-6 per assertion.
constexpr double kAlpha = 1e-6;
constexpr std::uint64_t kNoiseSeed = 0x9a3f17c2u;  // "amplify-noise-1"

// ---------------------------------------------------------------------------
// 1. Closed-form unit grid, 1e-12.
// ---------------------------------------------------------------------------

TEST(AmplificationGridTest, MatchesClosedFormTo1e12) {
  const double rates[] = {1e-6, 1e-4, 0.003, 0.01, 0.1,
                          0.25, 0.5,  0.9,   0.999};
  const double epsilons[] = {1e-9, 1e-6, 1e-3, 0.01, 0.1,
                             0.5,  1.0,  2.0,  5.0,  10.0};
  for (double rate : rates) {
    for (double eps : epsilons) {
      auto amplified = dp::AmplifiedEpsilon(eps, rate);
      ASSERT_TRUE(amplified.ok()) << amplified.status();
      // Long-double reference keeps ~18 significant digits, so the 1e-12
      // relative bound genuinely tests the double-precision formula.
      const long double exact =
          logl(1.0L + static_cast<long double>(rate) *
                          (expl(static_cast<long double>(eps)) - 1.0L));
      const double tolerance =
          1e-12 * std::max(1.0, static_cast<double>(exact));
      EXPECT_NEAR(amplified.value(), static_cast<double>(exact), tolerance)
          << "rate=" << rate << " eps=" << eps;
      // Amplification never increases the charge.
      EXPECT_LE(amplified.value(), eps);
      EXPECT_GT(amplified.value(), 0.0);
    }
  }
}

TEST(AmplificationGridTest, RateOneIsBitExactIdentity) {
  for (double eps : {1e-12, 1e-3, 0.1, 0.5, 1.0, 2.0, 7.5}) {
    auto amplified = dp::AmplifiedEpsilon(eps, 1.0);
    ASSERT_TRUE(amplified.ok());
    EXPECT_EQ(amplified.value(), eps);  // exact, not just close
    auto raw = dp::RawEpsilonForAmplified(eps, 1.0);
    ASSERT_TRUE(raw.ok());
    EXPECT_EQ(raw.value(), eps);
  }
}

TEST(AmplificationGridTest, SmallEpsilonLimitIsRateTimesEpsilon) {
  // d/deps ln(1 + rate*(e^eps - 1)) at eps = 0 is exactly rate, so for
  // eps -> 0 the charge must approach rate * eps with vanishing relative
  // error. log1p/expm1 keep this exact to first order even at eps = 1e-12.
  for (double rate : {1e-4, 0.003, 0.1, 0.5}) {
    for (double eps : {1e-12, 1e-9, 1e-6}) {
      auto amplified = dp::AmplifiedEpsilon(eps, rate);
      ASSERT_TRUE(amplified.ok());
      EXPECT_NEAR(amplified.value() / (rate * eps), 1.0, 1e-5)
          << "rate=" << rate << " eps=" << eps;
    }
  }
}

TEST(AmplificationGridTest, InverseRoundTripsTo1e12) {
  const double rates[] = {1e-4, 0.003, 0.01, 0.1, 0.5, 0.999, 1.0};
  const double epsilons[] = {1e-6, 0.01, 0.1, 0.5, 1.0, 2.0, 5.0};
  for (double rate : rates) {
    for (double eps : epsilons) {
      auto amplified = dp::AmplifiedEpsilon(eps, rate);
      ASSERT_TRUE(amplified.ok());
      auto back = dp::RawEpsilonForAmplified(amplified.value(), rate);
      ASSERT_TRUE(back.ok());
      EXPECT_NEAR(back.value(), eps, 1e-12 * std::max(1.0, eps))
          << "rate=" << rate << " eps=" << eps;
    }
  }
}

TEST(AmplificationGridTest, RejectsInvalidArguments) {
  EXPECT_FALSE(dp::AmplifiedEpsilon(0.0, 0.5).ok());
  EXPECT_FALSE(dp::AmplifiedEpsilon(-1.0, 0.5).ok());
  EXPECT_FALSE(dp::AmplifiedEpsilon(1.0, 0.0).ok());
  EXPECT_FALSE(dp::AmplifiedEpsilon(1.0, 1.5).ok());
  EXPECT_FALSE(dp::AmplifiedEpsilon(1.0, -0.1).ok());
  EXPECT_FALSE(dp::RawEpsilonForAmplified(0.0, 0.5).ok());
  EXPECT_FALSE(dp::RawEpsilonForAmplified(1.0, 0.0).ok());
}

TEST(AmplificationGridTest, ModeNamesRoundTrip) {
  for (dp::AmplificationMode mode :
       {dp::AmplificationMode::kOff, dp::AmplificationMode::kRawEpsilon,
        dp::AmplificationMode::kChargedEpsilon}) {
    auto parsed =
        dp::ParseAmplificationMode(dp::AmplificationModeToString(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), mode);
  }
  EXPECT_FALSE(dp::ParseAmplificationMode("boosted").ok());
}

// ---------------------------------------------------------------------------
// 2 + 3. KS acceptance on the real pipeline, and the mis-calibrated twin.
// ---------------------------------------------------------------------------

// Fixture: a constant-valued dataset makes the release's noise exactly
// observable. Every record is 40.0, so each block mean is 40.0 whatever
// subset of rows a block holds, and the clamped average is 40.0;
// released - 40.0 is then precisely the Laplace noise added by
// AggregateStage, with scale width / (l * eps_saf). The block count l is
// fixed at plan time from the expected subsample size rate * n, so the
// scale is a known constant even though the realised subsample varies.
constexpr double kValue = 40.0;
constexpr double kWidth = 100.0;        // declared range [0, 100]
constexpr std::size_t kRows = 500;
constexpr double kRate = 0.5;           // Bernoulli subsample rate
constexpr std::size_t kBlockSize = 50;  // n_mech = 250 -> l = 5 blocks
constexpr std::size_t kNumBlocks =
    static_cast<std::size_t>(kRows * kRate) / kBlockSize;
constexpr double kEpsilon = 0.5;        // raw per-query epsilon
constexpr int kSamples = 2000;

// The raw-epsilon Laplace scale the mechanism must keep using.
double RawScale() {
  return kWidth / (static_cast<double>(kNumBlocks) * kEpsilon);
}

QuerySpec ConstantMeanSpec(dp::AmplificationMode mode) {
  QuerySpec spec;
  spec.program = analytics::MeanQuery(0);
  spec.epsilon = kEpsilon;
  spec.block_size = kBlockSize;
  spec.range = OutputRangeSpec::Tight({Range{0.0, kWidth}});
  spec.amplification = mode;
  if (mode != dp::AmplificationMode::kOff) {
    spec.amplification_rate = kRate;
  }
  return spec;
}

std::vector<double> ReleasedNoise(dp::AmplificationMode mode) {
  DatasetManager manager;
  DatasetOptions options;
  // Amplified, each query charges ~0.28; 2000 queries need ~562. The
  // budget is sized so an off-mode run (0.5 each) would also fit.
  options.total_epsilon = 2000.0;
  std::vector<double> constant(kRows, kValue);
  EXPECT_TRUE(
      manager.Register("const", Dataset::FromColumn(constant).value(), options)
          .ok());
  GuptOptions runtime_options;
  runtime_options.seed = kNoiseSeed;
  GuptRuntime runtime(&manager, runtime_options);
  std::vector<double> noise;
  noise.reserve(kSamples);
  QuerySpec spec = ConstantMeanSpec(mode);
  for (int i = 0; i < kSamples; ++i) {
    auto report = runtime.Execute("const", spec);
    EXPECT_TRUE(report.ok()) << report.status();
    if (!report.ok()) break;
    noise.push_back(report->output[0] - kValue);
  }
  return noise;
}

TEST(AmplificationStatisticalTest, ReleasedNoiseMatchesRawCalibration) {
  std::vector<double> noise = ReleasedNoise(dp::AmplificationMode::kRawEpsilon);
  ASSERT_EQ(noise.size(), static_cast<std::size_t>(kSamples));
  const double scale = RawScale();
  statutil::GofResult fit = statutil::KsTest(
      noise, [scale](double x) { return statutil::LaplaceCdf(x, 0.0, scale); },
      kAlpha);
  EXPECT_FALSE(fit.reject) << fit.Describe();
}

TEST(AmplificationStatisticalTest, FullRateReleaseIsBitIdenticalToOff) {
  // rate == 1.0 skips the subsample draw entirely, so with the same seed
  // a full-rate amplified query must release exactly the off-mode values
  // (and AmplifiedEpsilon(eps, 1) == eps makes the charge identical too).
  DatasetManager manager;
  DatasetOptions options;
  options.total_epsilon = 100.0;
  std::vector<double> constant(kRows, kValue);
  ASSERT_TRUE(
      manager.Register("const", Dataset::FromColumn(constant).value(), options)
          .ok());
  QuerySpec off = ConstantMeanSpec(dp::AmplificationMode::kOff);
  QuerySpec on = ConstantMeanSpec(dp::AmplificationMode::kRawEpsilon);
  on.amplification_rate = 1.0;
  for (int i = 0; i < 16; ++i) {
    GuptOptions runtime_options;
    runtime_options.seed = kNoiseSeed + static_cast<std::uint64_t>(i);
    GuptRuntime off_runtime(&manager, runtime_options);
    GuptRuntime on_runtime(&manager, runtime_options);
    auto off_report = off_runtime.Execute("const", off);
    auto on_report = on_runtime.Execute("const", on);
    ASSERT_TRUE(off_report.ok()) << off_report.status();
    ASSERT_TRUE(on_report.ok()) << on_report.status();
    EXPECT_EQ(off_report->output[0], on_report->output[0]) << "seed " << i;
    EXPECT_EQ(off_report->epsilon_spent, on_report->epsilon_spent);
  }
}

TEST(AmplificationStatisticalTest, MisCalibratedVariantIsRejected) {
  // The broken implementation this suite guards against: noising at the
  // amplified epsilon' while also charging epsilon'. Its Laplace scale is
  // width / (l * eps') — far wider than the correct raw calibration — so
  // the KS test against the raw-scale CDF must reject at alpha = 1e-6.
  auto amplified = dp::AmplifiedEpsilon(kEpsilon, kRate);
  ASSERT_TRUE(amplified.ok());
  AggregateOptions agg;
  agg.epsilon_per_dim = amplified.value();  // the mis-calibration
  agg.output_ranges = {Range{0.0, kWidth}};
  agg.gamma = 1;
  Rng rng(kNoiseSeed);
  Row averages{kValue};
  std::vector<double> noise;
  noise.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    auto noised = AddAggregationNoise(averages, agg, kNumBlocks, &rng);
    ASSERT_TRUE(noised.ok()) << noised.status();
    noise.push_back(noised->output[0] - kValue);
  }
  const double scale = RawScale();
  statutil::GofResult fit = statutil::KsTest(
      noise, [scale](double x) { return statutil::LaplaceCdf(x, 0.0, scale); },
      kAlpha);
  EXPECT_TRUE(fit.reject)
      << "epsilon'-noised variant passed the raw-epsilon KS test: "
      << fit.Describe();
}

TEST(AmplificationStatisticalTest, AmplifiedChargeIsExactOnTheLedger) {
  // The charge side of the same runs: each amplified query debits exactly
  // ln(1 + rate * (e^eps - 1)), summed over queries with no drift.
  DatasetManager manager;
  DatasetOptions options;
  options.total_epsilon = 100.0;
  std::vector<double> constant(kRows, kValue);
  ASSERT_TRUE(
      manager.Register("const", Dataset::FromColumn(constant).value(), options)
          .ok());
  GuptOptions runtime_options;
  runtime_options.seed = kNoiseSeed;
  GuptRuntime runtime(&manager, runtime_options);
  QuerySpec spec = ConstantMeanSpec(dp::AmplificationMode::kRawEpsilon);
  const double per_query = dp::AmplifiedEpsilon(kEpsilon, kRate).value();
  double expected_spent = 0.0;
  for (int i = 0; i < 32; ++i) {
    auto report = runtime.Execute("const", spec);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->epsilon_spent, per_query);
    EXPECT_EQ(report->epsilon_raw, kEpsilon);
    EXPECT_EQ(report->sampling_rate, kRate);
    EXPECT_EQ(report->amplification, dp::AmplificationMode::kRawEpsilon);
    expected_spent += per_query;
  }
  auto ds = manager.Get("const");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ((*ds)->accountant().Totals().spent_epsilon, expected_spent);
}

TEST(AmplificationStatisticalTest, ChargedModeRunsAtTheInverseRawEpsilon) {
  // Target-charge mode: the ledger sees exactly the declared epsilon and
  // the noise runs at the (larger) inverse-mapped raw epsilon.
  DatasetManager manager;
  DatasetOptions options;
  options.total_epsilon = 100.0;
  std::vector<double> constant(kRows, kValue);
  ASSERT_TRUE(
      manager.Register("const", Dataset::FromColumn(constant).value(), options)
          .ok());
  GuptOptions runtime_options;
  runtime_options.seed = kNoiseSeed;
  GuptRuntime runtime(&manager, runtime_options);
  QuerySpec spec = ConstantMeanSpec(dp::AmplificationMode::kChargedEpsilon);
  auto report = runtime.Execute("const", spec);
  ASSERT_TRUE(report.ok()) << report.status();
  const double raw = dp::RawEpsilonForAmplified(kEpsilon, kRate).value();
  EXPECT_EQ(report->epsilon_spent, kEpsilon);
  EXPECT_EQ(report->epsilon_raw, raw);
  EXPECT_GT(report->epsilon_raw, kEpsilon);
  EXPECT_LE(report->epsilon_raw, dp::kDefaultRawEpsilonCap);
  auto ds = manager.Get("const");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ((*ds)->accountant().Totals().spent_epsilon, kEpsilon);
}

// ---------------------------------------------------------------------------
// Soundness guard rails: contexts in which amplification must be refused
// before any budget is charged.
// ---------------------------------------------------------------------------

class AmplificationRejectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetOptions options;
    options.total_epsilon = 100.0;
    std::vector<double> constant(kRows, kValue);
    ASSERT_TRUE(manager_
                    .Register("const", Dataset::FromColumn(constant).value(),
                              options)
                    .ok());
    GuptOptions runtime_options;
    runtime_options.seed = kNoiseSeed;
    runtime_ = std::make_unique<GuptRuntime>(&manager_, runtime_options);
  }

  /// Runs `spec`, expects InvalidArgument, and asserts the ledger was
  /// never touched.
  void ExpectRefusedUncharged(const QuerySpec& spec) {
    auto report = runtime_->Execute("const", spec);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument)
        << report.status();
    auto ds = manager_.Get("const");
    ASSERT_TRUE(ds.ok());
    EXPECT_EQ((*ds)->accountant().Totals().spent_epsilon, 0.0);
  }

  DatasetManager manager_;
  std::unique_ptr<GuptRuntime> runtime_;
};

TEST_F(AmplificationRejectionTest, RequiresAnExplicitRate) {
  QuerySpec spec = ConstantMeanSpec(dp::AmplificationMode::kRawEpsilon);
  spec.amplification_rate.reset();  // the rate is never inferred
  ExpectRefusedUncharged(spec);
}

TEST_F(AmplificationRejectionTest, RejectsOutOfRangeRates) {
  for (double bad : {0.0, -0.25, 1.5}) {
    QuerySpec spec = ConstantMeanSpec(dp::AmplificationMode::kRawEpsilon);
    spec.amplification_rate = bad;
    ExpectRefusedUncharged(spec);
  }
}

TEST_F(AmplificationRejectionTest, RejectsResampling) {
  // gamma > 1 would tie the block count to the realised subsample size,
  // breaking the fixed-geometry sensitivity argument.
  QuerySpec spec = ConstantMeanSpec(dp::AmplificationMode::kRawEpsilon);
  spec.gamma = 3;
  ExpectRefusedUncharged(spec);
}

TEST_F(AmplificationRejectionTest, CapsTheChargedModeRawEpsilon) {
  // rate 0.005 at a declared charge of 1 inverts to raw epsilon ~5.84,
  // above the default cap of 4 — the query must be refused rather than
  // silently released with far-less-noisy output.
  QuerySpec spec = ConstantMeanSpec(dp::AmplificationMode::kChargedEpsilon);
  spec.epsilon = 1.0;
  spec.block_size.reset();
  spec.amplification_rate = 0.005;
  const double raw = dp::RawEpsilonForAmplified(1.0, 0.005).value();
  ASSERT_GT(raw, dp::kDefaultRawEpsilonCap);
  ExpectRefusedUncharged(spec);
}

TEST_F(AmplificationRejectionTest, ChargedModeRequiresAnExplicitEpsilon) {
  QuerySpec spec = ConstantMeanSpec(dp::AmplificationMode::kChargedEpsilon);
  spec.epsilon.reset();
  AccuracyGoal goal;
  goal.rho = 0.9;
  goal.delta = 0.1;
  spec.accuracy_goal = goal;
  ExpectRefusedUncharged(spec);
}

TEST_F(AmplificationRejectionTest, SharedBudgetBatchesRejectAmplification) {
  QuerySpec spec = ConstantMeanSpec(dp::AmplificationMode::kRawEpsilon);
  spec.epsilon.reset();  // shared-budget queries leave epsilon unset
  auto reports = runtime_->ExecuteWithSharedBudget("const", {spec}, 1.0);
  ASSERT_FALSE(reports.ok());
  EXPECT_EQ(reports.status().code(), StatusCode::kInvalidArgument)
      << reports.status();
  auto ds = manager_.Get("const");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ((*ds)->accountant().Totals().spent_epsilon, 0.0);
}

}  // namespace
}  // namespace gupt
