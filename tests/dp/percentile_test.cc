#include "dp/percentile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace gupt {
namespace dp {
namespace {

std::vector<double> Linspace(double lo, double hi, std::size_t n) {
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = lo + (hi - lo) * static_cast<double>(i) /
                     static_cast<double>(n - 1);
  }
  return xs;
}

TEST(PercentileTest, RejectsBadArguments) {
  Rng rng(1);
  PercentileOptions opts;
  opts.lo = 0.0;
  opts.hi = 1.0;
  EXPECT_FALSE(PrivatePercentile({}, opts, &rng).ok());

  opts.percentile = 0.0;
  EXPECT_FALSE(PrivatePercentile({0.5}, opts, &rng).ok());
  opts.percentile = 1.0;
  EXPECT_FALSE(PrivatePercentile({0.5}, opts, &rng).ok());

  opts.percentile = 0.5;
  opts.epsilon = 0.0;
  EXPECT_FALSE(PrivatePercentile({0.5}, opts, &rng).ok());

  opts.epsilon = 1.0;
  opts.lo = 2.0;
  opts.hi = 1.0;
  EXPECT_FALSE(PrivatePercentile({0.5}, opts, &rng).ok());
}

TEST(PercentileTest, DegeneratePublicRange) {
  Rng rng(2);
  PercentileOptions opts;
  opts.lo = opts.hi = 3.0;
  EXPECT_DOUBLE_EQ(PrivatePercentile({1.0, 5.0}, opts, &rng).value(), 3.0);
}

TEST(PercentileTest, OutputAlwaysInsidePublicRange) {
  Rng rng(3);
  PercentileOptions opts;
  opts.lo = -10.0;
  opts.hi = 10.0;
  opts.epsilon = 0.01;  // very noisy
  std::vector<double> values = {-100.0, 0.0, 100.0};  // outside the range
  for (int i = 0; i < 2000; ++i) {
    double out = PrivatePercentile(values, opts, &rng).value();
    EXPECT_GE(out, -10.0);
    EXPECT_LE(out, 10.0);
  }
}

TEST(PercentileTest, MedianAccurateAtLargeEpsilon) {
  Rng rng(4);
  std::vector<double> values = Linspace(0.0, 100.0, 1001);
  PercentileOptions opts;
  opts.lo = 0.0;
  opts.hi = 100.0;
  opts.epsilon = 5.0;
  opts.percentile = 0.5;
  double sum = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    sum += PrivatePercentile(values, opts, &rng).value();
  }
  EXPECT_NEAR(sum / trials, 50.0, 2.0);
}

TEST(PercentileTest, QuartilesBracketTheMedian) {
  Rng rng(5);
  std::vector<double> values = Linspace(0.0, 100.0, 2001);
  auto iqr = PrivateInterquartileRange(values, 0.0, 100.0, 2.0, &rng);
  ASSERT_TRUE(iqr.ok());
  EXPECT_LE(iqr->first, iqr->second);
  EXPECT_NEAR(iqr->first, 25.0, 5.0);
  EXPECT_NEAR(iqr->second, 75.0, 5.0);
}

TEST(PercentileTest, MoreEpsilonMeansTighterEstimates) {
  std::vector<double> values = Linspace(0.0, 1.0, 501);
  PercentileOptions opts;
  opts.lo = 0.0;
  opts.hi = 1.0;
  opts.percentile = 0.5;
  auto spread_at = [&](double epsilon, std::uint64_t seed) {
    Rng rng(seed);
    PercentileOptions o = opts;
    o.epsilon = epsilon;
    double err = 0.0;
    const int trials = 300;
    for (int i = 0; i < trials; ++i) {
      err += std::fabs(PrivatePercentile(values, o, &rng).value() - 0.5);
    }
    return err / trials;
  };
  EXPECT_LT(spread_at(10.0, 6), spread_at(0.05, 7));
}

TEST(PercentileTest, SkewedDataMedianStaysInTheBulk) {
  // Bulk spread over [0, 10] with a thin tail at 100: the private median
  // must stay in the bulk, far below the mean.
  std::vector<double> values = Linspace(0.0, 10.0, 1000);
  for (int i = 0; i < 10; ++i) values.push_back(100.0);
  Rng rng(8);
  PercentileOptions opts;
  opts.lo = 0.0;
  opts.hi = 100.0;
  opts.epsilon = 2.0;
  double sum = 0.0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    sum += PrivatePercentile(values, opts, &rng).value();
  }
  EXPECT_LT(sum / trials, 10.0);
}

TEST(PercentileTest, PointMassDataFallsBackToWideInterval) {
  // Known artifact of the interval-based mechanism (documented in
  // percentile.h): when the data is a point mass, every data-adjacent
  // interval has zero width, so the release is uniform over the one wide
  // interval regardless of rank utility. The guarantee that survives is
  // that the output stays inside the public range.
  std::vector<double> values(1000, 0.0);
  values.push_back(100.0);
  Rng rng(12);
  PercentileOptions opts;
  opts.lo = 0.0;
  opts.hi = 100.0;
  opts.epsilon = 2.0;
  for (int i = 0; i < 200; ++i) {
    double out = PrivatePercentile(values, opts, &rng).value();
    EXPECT_GE(out, 0.0);
    EXPECT_LE(out, 100.0);
  }
}

// Empirical DP check: removing/changing one record shifts the output
// distribution by at most e^eps per histogram bin.
TEST(PercentileTest, EmpiricalPrivacyRatioBounded) {
  const double epsilon = 1.0;
  std::vector<double> values_a = Linspace(0.0, 1.0, 101);
  std::vector<double> values_b = values_a;
  values_b[50] = 1.0;  // move the true median's record to the far end

  PercentileOptions opts;
  opts.lo = 0.0;
  opts.hi = 1.0;
  opts.epsilon = epsilon;
  const int n = 200000, bins = 10;
  std::vector<int> hist_a(bins, 0), hist_b(bins, 0);
  Rng rng_a(9), rng_b(10);
  for (int i = 0; i < n; ++i) {
    auto bin_of = [&](double x) {
      int b = static_cast<int>(x * bins);
      return std::min(std::max(b, 0), bins - 1);
    };
    ++hist_a[bin_of(PrivatePercentile(values_a, opts, &rng_a).value())];
    ++hist_b[bin_of(PrivatePercentile(values_b, opts, &rng_b).value())];
  }
  for (int b = 0; b < bins; ++b) {
    if (hist_a[b] < 500 || hist_b[b] < 500) continue;
    double ratio = static_cast<double>(hist_a[b]) / hist_b[b];
    EXPECT_LT(ratio, std::exp(epsilon) * 1.2) << "bin " << b;
    EXPECT_GT(ratio, std::exp(-epsilon) / 1.2) << "bin " << b;
  }
}

// Sweep the target percentile: the mechanism should track the true order
// statistic across the whole range at a generous epsilon.
class PercentileSweep : public ::testing::TestWithParam<double> {};

TEST_P(PercentileSweep, TracksTrueOrderStatistic) {
  const double p = GetParam();
  std::vector<double> values = Linspace(0.0, 1.0, 2001);
  Rng rng(42);
  PercentileOptions opts;
  opts.lo = 0.0;
  opts.hi = 1.0;
  opts.epsilon = 5.0;
  opts.percentile = p;
  double sum = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    sum += PrivatePercentile(values, opts, &rng).value();
  }
  EXPECT_NEAR(sum / trials, p, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Percentiles, PercentileSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace dp
}  // namespace gupt
