#include "dp/percentile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "statutil.h"

namespace gupt {
namespace dp {
namespace {

// Pre-registered seeds for the statistical acceptance tests below (see
// tests/statutil/statutil.h): deterministic sampling, with kAlpha the
// a-priori probability that a checked-in seed is unlucky.
constexpr std::uint64_t kCdfSeed = 0x9e7ce4711e01ULL;
constexpr std::uint64_t kSkewedCdfSeed = 0x9e7ce4711e02ULL;
constexpr std::uint64_t kMeanSeed = 0x9e7ce4711e03ULL;
constexpr std::uint64_t kSweepSeed = 0x9e7ce4711e04ULL;
constexpr double kAlpha = 1e-6;

std::vector<double> Linspace(double lo, double hi, std::size_t n) {
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = lo + (hi - lo) * static_cast<double>(i) /
                     static_cast<double>(n - 1);
  }
  return xs;
}

/// The release distribution of PrivatePercentile, computed exactly: the
/// mechanism picks interval i of [sorted_i, sorted_{i+1}] with probability
/// proportional to width_i * exp(eps/2 * -(|i - p*n|)) and releases a
/// uniform draw inside it, so the CDF is piecewise linear with exactly
/// computable knots. Mirrors the arithmetic in dp/percentile.cc.
class ExactPercentileDistribution {
 public:
  ExactPercentileDistribution(std::vector<double> values,
                              const PercentileOptions& options) {
    const std::size_t n = values.size();
    boundaries_.resize(n + 2);
    boundaries_[0] = options.lo;
    for (std::size_t i = 0; i < n; ++i) {
      boundaries_[i + 1] =
          std::min(std::max(values[i], options.lo), options.hi);
    }
    boundaries_[n + 1] = options.hi;
    std::sort(boundaries_.begin() + 1, boundaries_.end() - 1);

    const double target_rank = options.percentile * static_cast<double>(n);
    std::vector<double> log_weights(n + 1);
    double max_log_weight = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i <= n; ++i) {
      const double width = boundaries_[i + 1] - boundaries_[i];
      const double utility =
          -std::fabs(static_cast<double>(i) - target_rank);
      log_weights[i] =
          width > 0.0 ? std::log(width) + 0.5 * options.epsilon * utility
                      : -std::numeric_limits<double>::infinity();
      max_log_weight = std::max(max_log_weight, log_weights[i]);
    }
    probabilities_.resize(n + 1);
    double total = 0.0;
    for (std::size_t i = 0; i <= n; ++i) {
      probabilities_[i] = std::exp(log_weights[i] - max_log_weight);
      total += probabilities_[i];
    }
    for (double& p : probabilities_) p /= total;
  }

  double Cdf(double x) const {
    double mass = 0.0;
    for (std::size_t i = 0; i < probabilities_.size(); ++i) {
      const double lo = boundaries_[i], hi = boundaries_[i + 1];
      if (x >= hi) {
        mass += probabilities_[i];
      } else if (x > lo) {
        mass += probabilities_[i] * (x - lo) / (hi - lo);
      }
    }
    return mass;
  }

  double Mean() const {
    double mean = 0.0;
    for (std::size_t i = 0; i < probabilities_.size(); ++i) {
      mean += probabilities_[i] * 0.5 * (boundaries_[i] + boundaries_[i + 1]);
    }
    return mean;
  }

  double Variance() const {
    double second = 0.0;
    for (std::size_t i = 0; i < probabilities_.size(); ++i) {
      const double lo = boundaries_[i], hi = boundaries_[i + 1];
      second += probabilities_[i] * (lo * lo + lo * hi + hi * hi) / 3.0;
    }
    const double mean = Mean();
    return second - mean * mean;
  }

 private:
  std::vector<double> boundaries_;
  std::vector<double> probabilities_;
};

TEST(PercentileTest, RejectsBadArguments) {
  Rng rng(1);
  PercentileOptions opts;
  opts.lo = 0.0;
  opts.hi = 1.0;
  EXPECT_FALSE(PrivatePercentile({}, opts, &rng).ok());

  opts.percentile = 0.0;
  EXPECT_FALSE(PrivatePercentile({0.5}, opts, &rng).ok());
  opts.percentile = 1.0;
  EXPECT_FALSE(PrivatePercentile({0.5}, opts, &rng).ok());

  opts.percentile = 0.5;
  opts.epsilon = 0.0;
  EXPECT_FALSE(PrivatePercentile({0.5}, opts, &rng).ok());

  opts.epsilon = 1.0;
  opts.lo = 2.0;
  opts.hi = 1.0;
  EXPECT_FALSE(PrivatePercentile({0.5}, opts, &rng).ok());
}

TEST(PercentileTest, DegeneratePublicRange) {
  Rng rng(2);
  PercentileOptions opts;
  opts.lo = opts.hi = 3.0;
  EXPECT_DOUBLE_EQ(PrivatePercentile({1.0, 5.0}, opts, &rng).value(), 3.0);
}

TEST(PercentileTest, OutputAlwaysInsidePublicRange) {
  Rng rng(3);
  PercentileOptions opts;
  opts.lo = -10.0;
  opts.hi = 10.0;
  opts.epsilon = 0.01;  // very noisy
  std::vector<double> values = {-100.0, 0.0, 100.0};  // outside the range
  for (int i = 0; i < 2000; ++i) {
    double out = PrivatePercentile(values, opts, &rng).value();
    EXPECT_GE(out, -10.0);
    EXPECT_LE(out, 10.0);
  }
}

TEST(PercentileTest, MedianAccurateAtLargeEpsilon) {
  Rng rng(kMeanSeed);
  std::vector<double> values = Linspace(0.0, 100.0, 1001);
  PercentileOptions opts;
  opts.lo = 0.0;
  opts.hi = 100.0;
  opts.epsilon = 5.0;
  opts.percentile = 0.5;
  // The release distribution is exactly computable, so assert against ITS
  // mean (which must in turn sit near the true median at this epsilon)
  // with a level-kAlpha standard-error tolerance, replacing the previous
  // hand-tuned +/- 2.0 bound.
  const ExactPercentileDistribution exact(values, opts);
  EXPECT_NEAR(exact.Mean(), 50.0, 0.5);
  double sum = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    sum += PrivatePercentile(values, opts, &rng).value();
  }
  const double tolerance = statutil::NormalQuantile(1.0 - kAlpha / 2.0) *
                           std::sqrt(exact.Variance() / trials);
  EXPECT_NEAR(sum / trials, exact.Mean(), tolerance);
}

TEST(PercentileTest, SamplesMatchTheExactMechanismCdf) {
  // Full distributional acceptance: the sampled releases follow the
  // mechanism's exactly computed piecewise-linear CDF. This is the
  // strongest implementation check available — a wrong utility, a wrong
  // eps/2 factor, or a biased interval draw all shift the CDF.
  Rng rng(kCdfSeed);
  std::vector<double> values = Linspace(0.0, 1.0, 101);
  PercentileOptions opts;
  opts.lo = 0.0;
  opts.hi = 1.0;
  opts.epsilon = 1.0;
  opts.percentile = 0.5;
  const ExactPercentileDistribution exact(values, opts);
  std::vector<double> samples(20000);
  for (double& s : samples) {
    s = PrivatePercentile(values, opts, &rng).value();
  }
  statutil::GofResult fit = statutil::KsTest(
      samples, [&exact](double x) { return exact.Cdf(x); }, kAlpha);
  EXPECT_FALSE(fit.reject) << fit.Describe();

  // Power: the same samples must NOT fit the CDF of a neighbouring
  // configuration (twice the epsilon), so the acceptance is not vacuous.
  PercentileOptions wrong = opts;
  wrong.epsilon = 2.0;
  const ExactPercentileDistribution misfit(values, wrong);
  statutil::GofResult rejected = statutil::KsTest(
      samples, [&misfit](double x) { return misfit.Cdf(x); }, kAlpha);
  EXPECT_TRUE(rejected.reject) << rejected.Describe();
}

TEST(PercentileTest, SkewedSamplesMatchTheExactMechanismCdf) {
  // Same acceptance on a skewed dataset with a far tail and an off-centre
  // percentile, where the interval widths vary by orders of magnitude.
  Rng rng(kSkewedCdfSeed);
  std::vector<double> values = Linspace(0.0, 10.0, 400);
  for (int i = 0; i < 10; ++i) values.push_back(100.0);
  PercentileOptions opts;
  opts.lo = 0.0;
  opts.hi = 100.0;
  opts.epsilon = 2.0;
  opts.percentile = 0.75;
  const ExactPercentileDistribution exact(values, opts);
  std::vector<double> samples(20000);
  for (double& s : samples) {
    s = PrivatePercentile(values, opts, &rng).value();
  }
  statutil::GofResult fit = statutil::KsTest(
      samples, [&exact](double x) { return exact.Cdf(x); }, kAlpha);
  EXPECT_FALSE(fit.reject) << fit.Describe();
}

TEST(PercentileTest, QuartilesBracketTheMedian) {
  Rng rng(5);
  std::vector<double> values = Linspace(0.0, 100.0, 2001);
  auto iqr = PrivateInterquartileRange(values, 0.0, 100.0, 2.0, &rng);
  ASSERT_TRUE(iqr.ok());
  EXPECT_LE(iqr->first, iqr->second);
  EXPECT_NEAR(iqr->first, 25.0, 5.0);
  EXPECT_NEAR(iqr->second, 75.0, 5.0);
}

TEST(PercentileTest, MoreEpsilonMeansTighterEstimates) {
  std::vector<double> values = Linspace(0.0, 1.0, 501);
  PercentileOptions opts;
  opts.lo = 0.0;
  opts.hi = 1.0;
  opts.percentile = 0.5;
  auto spread_at = [&](double epsilon, std::uint64_t seed) {
    Rng rng(seed);
    PercentileOptions o = opts;
    o.epsilon = epsilon;
    double err = 0.0;
    const int trials = 300;
    for (int i = 0; i < trials; ++i) {
      err += std::fabs(PrivatePercentile(values, o, &rng).value() - 0.5);
    }
    return err / trials;
  };
  EXPECT_LT(spread_at(10.0, 6), spread_at(0.05, 7));
}

TEST(PercentileTest, SkewedDataMedianStaysInTheBulk) {
  // Bulk spread over [0, 10] with a thin tail at 100: the private median
  // must stay in the bulk, far below the mean.
  std::vector<double> values = Linspace(0.0, 10.0, 1000);
  for (int i = 0; i < 10; ++i) values.push_back(100.0);
  Rng rng(8);
  PercentileOptions opts;
  opts.lo = 0.0;
  opts.hi = 100.0;
  opts.epsilon = 2.0;
  double sum = 0.0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    sum += PrivatePercentile(values, opts, &rng).value();
  }
  EXPECT_LT(sum / trials, 10.0);
}

TEST(PercentileTest, PointMassDataFallsBackToWideInterval) {
  // Known artifact of the interval-based mechanism (documented in
  // percentile.h): when the data is a point mass, every data-adjacent
  // interval has zero width, so the release is uniform over the one wide
  // interval regardless of rank utility. The guarantee that survives is
  // that the output stays inside the public range.
  std::vector<double> values(1000, 0.0);
  values.push_back(100.0);
  Rng rng(12);
  PercentileOptions opts;
  opts.lo = 0.0;
  opts.hi = 100.0;
  opts.epsilon = 2.0;
  for (int i = 0; i < 200; ++i) {
    double out = PrivatePercentile(values, opts, &rng).value();
    EXPECT_GE(out, 0.0);
    EXPECT_LE(out, 100.0);
  }
}

// Empirical DP check: removing/changing one record shifts the output
// distribution by at most e^eps per histogram bin.
TEST(PercentileTest, EmpiricalPrivacyRatioBounded) {
  const double epsilon = 1.0;
  std::vector<double> values_a = Linspace(0.0, 1.0, 101);
  std::vector<double> values_b = values_a;
  values_b[50] = 1.0;  // move the true median's record to the far end

  PercentileOptions opts;
  opts.lo = 0.0;
  opts.hi = 1.0;
  opts.epsilon = epsilon;
  const int n = 200000, bins = 10;
  std::vector<int> hist_a(bins, 0), hist_b(bins, 0);
  Rng rng_a(9), rng_b(10);
  for (int i = 0; i < n; ++i) {
    auto bin_of = [&](double x) {
      int b = static_cast<int>(x * bins);
      return std::min(std::max(b, 0), bins - 1);
    };
    ++hist_a[bin_of(PrivatePercentile(values_a, opts, &rng_a).value())];
    ++hist_b[bin_of(PrivatePercentile(values_b, opts, &rng_b).value())];
  }
  for (int b = 0; b < bins; ++b) {
    if (hist_a[b] < 500 || hist_b[b] < 500) continue;
    double ratio = static_cast<double>(hist_a[b]) / hist_b[b];
    EXPECT_LT(ratio, std::exp(epsilon) * 1.2) << "bin " << b;
    EXPECT_GT(ratio, std::exp(-epsilon) / 1.2) << "bin " << b;
  }
}

// Sweep the target percentile: the mechanism should track the true order
// statistic across the whole range at a generous epsilon.
class PercentileSweep : public ::testing::TestWithParam<double> {};

TEST_P(PercentileSweep, TracksTrueOrderStatistic) {
  const double p = GetParam();
  std::vector<double> values = Linspace(0.0, 1.0, 2001);
  Rng rng(kSweepSeed, static_cast<std::uint64_t>(p * 100.0));
  PercentileOptions opts;
  opts.lo = 0.0;
  opts.hi = 1.0;
  opts.epsilon = 5.0;
  opts.percentile = p;
  // The exact release mean must track the true order statistic, and the
  // sample mean must track the exact mean at a level-kAlpha tolerance.
  const ExactPercentileDistribution exact(values, opts);
  EXPECT_NEAR(exact.Mean(), p, 0.01);
  double sum = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    sum += PrivatePercentile(values, opts, &rng).value();
  }
  const double tolerance = statutil::NormalQuantile(1.0 - kAlpha / 2.0) *
                           std::sqrt(exact.Variance() / trials);
  EXPECT_NEAR(sum / trials, exact.Mean(), tolerance);
}

INSTANTIATE_TEST_SUITE_P(Percentiles, PercentileSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace dp
}  // namespace gupt
