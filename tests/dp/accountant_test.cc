#include "dp/accountant.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace gupt {
namespace dp {
namespace {

TEST(AccountantTest, StartsFull) {
  PrivacyAccountant acc(2.0);
  EXPECT_DOUBLE_EQ(acc.total_epsilon(), 2.0);
  EXPECT_DOUBLE_EQ(acc.spent_epsilon(), 0.0);
  EXPECT_DOUBLE_EQ(acc.remaining_epsilon(), 2.0);
  EXPECT_EQ(acc.num_charges(), 0u);
}

TEST(AccountantTest, ChargeDebits) {
  PrivacyAccountant acc(2.0);
  ASSERT_TRUE(acc.Charge(0.5, "q1").ok());
  EXPECT_DOUBLE_EQ(acc.spent_epsilon(), 0.5);
  EXPECT_DOUBLE_EQ(acc.remaining_epsilon(), 1.5);
  EXPECT_EQ(acc.num_charges(), 1u);
}

TEST(AccountantTest, SequentialCompositionAccumulates) {
  PrivacyAccountant acc(1.0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(acc.Charge(0.1, "q").ok()) << "charge " << i;
  }
  EXPECT_NEAR(acc.spent_epsilon(), 1.0, 1e-9);
  // Budget is now exhausted.
  EXPECT_EQ(acc.Charge(0.1, "over").code(), StatusCode::kBudgetExhausted);
}

TEST(AccountantTest, OverchargeRejectedAndNotDebited) {
  PrivacyAccountant acc(1.0);
  EXPECT_EQ(acc.Charge(1.5, "big").code(), StatusCode::kBudgetExhausted);
  EXPECT_DOUBLE_EQ(acc.spent_epsilon(), 0.0);
  EXPECT_EQ(acc.num_charges(), 0u);
}

TEST(AccountantTest, ExactTotalChargeAdmitted) {
  PrivacyAccountant acc(1.0);
  EXPECT_TRUE(acc.Charge(1.0, "all").ok());
  EXPECT_DOUBLE_EQ(acc.remaining_epsilon(), 0.0);
}

TEST(AccountantTest, RejectsNonPositiveCharges) {
  PrivacyAccountant acc(1.0);
  EXPECT_EQ(acc.Charge(0.0, "zero").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(acc.Charge(-0.5, "neg").code(), StatusCode::kInvalidArgument);
  EXPECT_DOUBLE_EQ(acc.spent_epsilon(), 0.0);
}

TEST(AccountantTest, LedgerRecordsLabelsInOrder) {
  PrivacyAccountant acc(5.0);
  ASSERT_TRUE(acc.Charge(1.0, "alpha").ok());
  ASSERT_TRUE(acc.Charge(2.0, "beta").ok());
  auto charges = acc.charges();
  ASSERT_EQ(charges.size(), 2u);
  EXPECT_EQ(charges[0].label, "alpha");
  EXPECT_DOUBLE_EQ(charges[0].epsilon, 1.0);
  EXPECT_EQ(charges[1].label, "beta");
  EXPECT_DOUBLE_EQ(charges[1].epsilon, 2.0);
}

TEST(AccountantTest, ConcurrentChargesNeverOverdraw) {
  PrivacyAccountant acc(10.0);
  constexpr int kThreads = 8;
  constexpr int kChargesPerThread = 1000;
  // 8 * 1000 * 0.01 = 80 attempted; only 1000 of them (10 / 0.01) can land.
  std::vector<std::thread> threads;
  std::atomic<int> successes{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&acc, &successes] {
      for (int i = 0; i < kChargesPerThread; ++i) {
        if (acc.Charge(0.01, "c").ok()) successes.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(acc.spent_epsilon(), 10.0 + 1e-6);
  EXPECT_NEAR(successes.load(), 1000, 1);
  EXPECT_EQ(static_cast<std::size_t>(successes.load()), acc.num_charges());
}

}  // namespace
}  // namespace dp
}  // namespace gupt
