#include "dp/noisy_ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gupt {
namespace dp {
namespace {

TEST(NoisyCountTest, CenteredOnTrueCount) {
  Rng rng(1);
  const int trials = 50000;
  double sum = 0.0;
  for (int i = 0; i < trials; ++i) {
    sum += NoisyCount(100, 1.0, &rng).value();
  }
  EXPECT_NEAR(sum / trials, 100.0, 0.1);
}

TEST(NoisyCountTest, RejectsBadEpsilon) {
  Rng rng(1);
  EXPECT_FALSE(NoisyCount(5, 0.0, &rng).ok());
}

TEST(NoisySumTest, ClampsBeforeSumming) {
  Rng rng(2);
  // Values outside [0,1] clamp; true clamped sum = 0 + 1 + 0.5 = 1.5.
  std::vector<double> values = {-100.0, 100.0, 0.5};
  const int trials = 50000;
  double sum = 0.0;
  for (int i = 0; i < trials; ++i) {
    sum += NoisySum(values, 0.0, 1.0, 5.0, &rng).value();
  }
  EXPECT_NEAR(sum / trials, 1.5, 0.02);
}

TEST(NoisySumTest, SensitivityUsesLargerBoundMagnitude) {
  // With range [-10, 2] the per-record contribution bound is 10, so at
  // eps=1 the noise E|X| should be ~10.
  Rng rng(3);
  const int trials = 50000;
  double abs_err = 0.0;
  std::vector<double> values = {0.0};
  for (int i = 0; i < trials; ++i) {
    abs_err += std::fabs(NoisySum(values, -10.0, 2.0, 1.0, &rng).value());
  }
  EXPECT_NEAR(abs_err / trials, 10.0, 0.3);
}

TEST(NoisySumTest, RejectsInvertedRange) {
  Rng rng(4);
  EXPECT_FALSE(NoisySum({1.0}, 5.0, 1.0, 1.0, &rng).ok());
}

TEST(NoisyAverageTest, CenteredAndShrinksWithN) {
  Rng rng(5);
  std::vector<double> small(10, 0.5), large(1000, 0.5);
  const int trials = 20000;
  double err_small = 0.0, err_large = 0.0;
  for (int i = 0; i < trials; ++i) {
    err_small +=
        std::fabs(NoisyAverage(small, 0.0, 1.0, 1.0, &rng).value() - 0.5);
    err_large +=
        std::fabs(NoisyAverage(large, 0.0, 1.0, 1.0, &rng).value() - 0.5);
  }
  // Sensitivity (hi-lo)/n: 100x more records => ~100x less noise.
  EXPECT_GT(err_small / trials, 50.0 * err_large / trials);
}

TEST(NoisyAverageTest, RejectsEmpty) {
  Rng rng(6);
  EXPECT_FALSE(NoisyAverage({}, 0.0, 1.0, 1.0, &rng).ok());
}

TEST(NoisyAverageRowsTest, PerCoordinate) {
  Rng rng(7);
  std::vector<Row> rows = {{0.0, 10.0}, {1.0, 20.0}};
  Row lo = {0.0, 0.0}, hi = {1.0, 30.0};
  const int trials = 20000;
  Row sum = {0.0, 0.0};
  for (int i = 0; i < trials; ++i) {
    Row avg = NoisyAverageRows(rows, lo, hi, 50.0, &rng).value();
    vec::AddInPlace(&sum, avg);
  }
  EXPECT_NEAR(sum[0] / trials, 0.5, 0.02);
  EXPECT_NEAR(sum[1] / trials, 15.0, 0.2);
}

TEST(NoisyAverageRowsTest, RejectsArityMismatch) {
  Rng rng(8);
  EXPECT_FALSE(
      NoisyAverageRows({{1.0, 2.0}}, {0.0}, {1.0}, 1.0, &rng).ok());
  EXPECT_FALSE(
      NoisyAverageRows({{1.0}, {1.0, 2.0}}, {0.0}, {1.0}, 1.0, &rng).ok());
}

TEST(ExponentialChoiceTest, PrefersHighScores) {
  Rng rng(9);
  std::vector<double> scores = {0.0, 0.0, 10.0};
  int hits = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (ExponentialChoice(scores, 1.0, 2.0, &rng).value() == 2) ++hits;
  }
  EXPECT_GT(hits, trials * 0.95);
}

TEST(ExponentialChoiceTest, LowEpsilonIsNearUniform) {
  Rng rng(10);
  std::vector<double> scores = {0.0, 1.0};
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    if (ExponentialChoice(scores, 1.0, 0.001, &rng).value() == 1) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.5, 0.02);
}

TEST(ExponentialChoiceTest, HandlesLargeScoresWithoutOverflow) {
  Rng rng(11);
  std::vector<double> scores = {1e8, 1e8 + 1.0};
  auto choice = ExponentialChoice(scores, 1.0, 1.0, &rng);
  ASSERT_TRUE(choice.ok());
  EXPECT_LT(choice.value(), 2u);
}

TEST(ExponentialChoiceTest, RejectsBadArguments) {
  Rng rng(12);
  EXPECT_FALSE(ExponentialChoice({}, 1.0, 1.0, &rng).ok());
  EXPECT_FALSE(ExponentialChoice({1.0}, 0.0, 1.0, &rng).ok());
  EXPECT_FALSE(ExponentialChoice({1.0}, 1.0, 0.0, &rng).ok());
}

}  // namespace
}  // namespace dp
}  // namespace gupt
