// Statistical acceptance tests for the SVT engine, under the statutil
// pre-registration conventions (tests/statutil/statutil.h): every
// assertion below is deterministic given its named seed, alpha = 1e-6
// bounds the a-priori chance the checked-in seed is unlucky, and each
// acceptance test has a POWER TWIN — the same harness pointed at a broken
// model — asserting the test would actually catch the regression it
// guards against.
//
// Three properties are pinned:
//
//  1. Verdict rates. P[ABOVE] for a query with true margin m over a fresh
//     (rho, nu) draw has the closed Laplace-difference form
//     SvtAboveProbability(m). A margin grid is checked per-margin with
//     Bonferroni-corrected binomial z-bounds plus one aggregate
//     chi-squared. Twin: the Lee & Clifton broken scale (per-query noise
//     not scaled by c) is rejected by the same harness.
//
//  2. The free-gap release. Conditioned on ABOVE, the released gap
//     g = (q + nu) - (tau + rho) has CDF
//     F(g) = 1 - P_above(m - g) / P_above(m)  for g >= 0,
//     a genuinely continuous observable that a one-sample KS test can
//     bite on (verdicts alone are Bernoulli). Twin: the gap law of the
//     threshold-noise-only variant is rejected.
//
//  3. Non-privacy of the classic broken variant (Stoddard et al.: no
//     per-query noise). The two-query distinguisher below exhibits an
//     outcome with probability EXACTLY zero on one input and bounded away
//     from zero on its neighbour — an unbounded likelihood ratio, i.e. not
//     epsilon-DP for any epsilon. The correct engine passes the same
//     distinguisher with a bounded log-ratio. A regression that drops the
//     per-query noise flips the structural zero and fails loudly.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "dp/svt.h"
#include "statutil.h"

namespace gupt {
namespace dp {
namespace {

constexpr std::uint64_t kVerdictSeed = 0x5774ace001ULL;
constexpr std::uint64_t kGapSeed = 0x5774ace002ULL;
constexpr std::uint64_t kBrokenSeedD = 0x5774ace003ULL;
constexpr std::uint64_t kBrokenSeedDPrime = 0x5774ace004ULL;
constexpr std::uint64_t kCorrectSeedD = 0x5774ace005ULL;
constexpr std::uint64_t kCorrectSeedDPrime = 0x5774ace006ULL;
constexpr double kAlpha = 1e-6;

double ZTwoSided(double alpha) {
  return statutil::NormalQuantile(1.0 - alpha / 2.0);
}

/// Counts ABOVE verdicts over `n` fresh engines (fresh rho AND nu per
/// trial — the closed form is a statement about the joint fresh draw).
std::size_t CountAboves(const SvtConfig& config, double query_value,
                        std::uint64_t seed, std::size_t n) {
  std::size_t aboves = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto engine = SvtEngine::Create(config, Rng(seed, /*stream=*/i));
    auto answer = engine->Process(query_value);
    if (answer->verdict == SvtVerdict::kAbove) ++aboves;
  }
  return aboves;
}

TEST(SvtStatisticalTest, VerdictRatesMatchClosedFormTail) {
  // c = 2 so the c-dependence of the query scale is actually exercised.
  const SvtConfig config = SvtConfig::EvenSplit(1.0, /*threshold=*/0.0,
                                                /*max_positives=*/2);
  const std::vector<double> margins = {-12.0, -6.0, -2.0, 0.0,
                                       2.0,   6.0,  12.0};
  const std::size_t n = 40000;
  const double z = ZTwoSided(kAlpha / margins.size());  // Bonferroni

  std::vector<double> observed, expected;
  for (std::size_t m = 0; m < margins.size(); ++m) {
    const double p = SvtAboveProbability(margins[m], config).value();
    const std::size_t aboves =
        CountAboves(config, margins[m], kVerdictSeed + m, n);
    // Binomial z-bound: |aboves - np| <= z sqrt(np(1-p)).
    const double tolerance = z * std::sqrt(n * p * (1.0 - p)) + 1.0;
    EXPECT_NEAR(static_cast<double>(aboves), n * p, tolerance)
        << "margin " << margins[m] << " p=" << p;
    observed.push_back(static_cast<double>(aboves));
    observed.push_back(static_cast<double>(n - aboves));
    expected.push_back(n * p);
    expected.push_back(n * (1.0 - p));
  }

  // Aggregate check. The true dof is margins.size() (each above/below pair
  // is constrained to sum to n); ChiSquaredTest's default bins-1 dof gives
  // a larger critical value, i.e. this acceptance direction is
  // conservative. The sharp per-margin bounds above carry the power.
  statutil::GofResult fit =
      statutil::ChiSquaredTest(observed, expected, kAlpha);
  EXPECT_FALSE(fit.reject) << fit.Describe();
}

TEST(SvtStatisticalTest, VerdictRateHarnessRejectsUnscaledNoiseTwin) {
  // Power twin of VerdictRatesMatchClosedFormTail: samples from a c = 4
  // engine scored against the Lee & Clifton broken model, whose per-query
  // noise ignores c. The same z-bounds must now FAIL at wide margins —
  // proving the harness has the power to catch a regression that drops
  // the factor of c (each positive would then leak c times its budget).
  const SvtConfig correct = SvtConfig::EvenSplit(1.0, 0.0, 4);
  SvtConfig broken_model = correct;
  broken_model.max_positives = 1;  // same scales a regression would use

  const std::vector<double> margins = {-12.0, -6.0, 6.0, 12.0};
  const std::size_t n = 40000;
  const double z = ZTwoSided(kAlpha / margins.size());

  std::size_t violations = 0;
  for (std::size_t m = 0; m < margins.size(); ++m) {
    const double p_broken =
        SvtAboveProbability(margins[m], broken_model).value();
    const std::size_t aboves =
        CountAboves(correct, margins[m], kVerdictSeed + 100 + m, n);
    const double tolerance =
        z * std::sqrt(n * p_broken * (1.0 - p_broken)) + 1.0;
    if (std::abs(static_cast<double>(aboves) - n * p_broken) > tolerance) {
      ++violations;
    }
  }
  // At these margins the two models differ by double-digit sigma; every
  // margin should flag, but the twin only requires detection.
  EXPECT_GT(violations, 0u);
}

/// CDF of the free-gap release conditioned on ABOVE, margin m:
///   F(g) = P[nu - rho <= g - m | nu - rho >= -m]
///        = 1 - P_above(m - g) / P_above(m),  g >= 0.
statutil::Cdf ConditionedGapCdf(const SvtConfig& config, double margin) {
  const double p_above = SvtAboveProbability(margin, config).value();
  return [config, margin, p_above](double g) {
    if (g <= 0.0) return 0.0;
    return 1.0 - SvtAboveProbability(margin - g, config).value() / p_above;
  };
}

std::vector<double> SampleGaps(const SvtConfig& config, double query_value,
                               std::uint64_t seed, std::size_t want) {
  std::vector<double> gaps;
  for (std::uint64_t stream = 0; gaps.size() < want; ++stream) {
    auto engine = SvtEngine::Create(config, Rng(seed, stream));
    auto answer = engine->Process(query_value);
    if (answer->verdict == SvtVerdict::kAbove) gaps.push_back(answer->gap);
  }
  return gaps;
}

TEST(SvtStatisticalTest, FreeGapDistributionMatchesConditionedTail) {
  const SvtConfig config = SvtConfig::EvenSplit(1.0, /*threshold=*/10.0,
                                                /*max_positives=*/1);
  const double margin = 2.0;  // query value 12 against threshold 10
  std::vector<double> gaps =
      SampleGaps(config, config.threshold + margin, kGapSeed, 20000);
  statutil::GofResult fit =
      statutil::KsTest(gaps, ConditionedGapCdf(config, margin), kAlpha);
  EXPECT_FALSE(fit.reject) << fit.Describe();
}

TEST(SvtStatisticalTest, FreeGapHarnessRejectsThresholdNoiseOnlyTwin) {
  // Power twin: the same samples against the gap law of the BROKEN
  // variant (threshold noise only, no nu). There gap = m - rho | rho <= m:
  //   F_broken(g) = P[rho >= m - g] / P[rho <= m],  g >= 0.
  const SvtConfig config = SvtConfig::EvenSplit(1.0, 10.0, 1);
  const double margin = 2.0;
  const double b = SvtThresholdScale(config).value();
  std::vector<double> gaps =
      SampleGaps(config, config.threshold + margin, kGapSeed, 20000);
  const double below_mass = statutil::LaplaceCdf(margin, 0.0, b);
  statutil::GofResult fit = statutil::KsTest(
      gaps,
      [margin, b, below_mass](double g) {
        if (g <= 0.0) return 0.0;
        return (1.0 - statutil::LaplaceCdf(margin - g, 0.0, b)) / below_mass;
      },
      kAlpha);
  EXPECT_TRUE(fit.reject) << fit.Describe();
}

// ---------------------------------------------------------------------------
// The distinguishing attack on the no-per-query-noise variant.
// ---------------------------------------------------------------------------

/// The broken SVT of Stoddard et al.: only the threshold is noised; each
/// query's TRUE value is compared against tau + rho. Kept test-local so
/// production code never grows a path to it.
struct BrokenSvtNoQueryNoise {
  double noisy_threshold;
  explicit BrokenSvtNoQueryNoise(double tau, double scale, Rng* rng)
      : noisy_threshold(tau + rng->Laplace(scale)) {}
  SvtVerdict Process(double q) const {
    return q >= noisy_threshold ? SvtVerdict::kAbove : SvtVerdict::kBelow;
  }
};

/// Runs the two-query stream `values` (halting after the first ABOVE,
/// c = 1) and reports whether the outcome was exactly (BELOW, ABOVE).
template <typename Engine>
bool BelowThenAbove(Engine&& step, const std::vector<double>& values) {
  bool first_below = false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    SvtVerdict v = step(values[i]);
    if (i == 0) {
      first_below = (v == SvtVerdict::kBelow);
      if (!first_below) return false;  // halted: c = 1
    } else {
      return first_below && v == SvtVerdict::kAbove;
    }
  }
  return false;
}

TEST(SvtStatisticalTest, BrokenVariantHasUnboundedLikelihoodRatio) {
  // Neighbouring inputs D, D' move two sensitivity-1 queries in opposite
  // directions: on D the stream is (tau, tau - 1), on D' it is
  // (tau - 1, tau). Without per-query noise the outcome (BELOW, ABOVE)
  // needs q2 >= tau + rho > q1, i.e. q2 > q1 — impossible on D (q2 < q1),
  // so P_D = 0 EXACTLY, while on D' it happens iff -1 < rho <= 0:
  // P_D' = (1 - e^{-1/b}) / 2. Any epsilon-DP mechanism must satisfy
  // P_D >= e^{-eps} P_D'; a structural zero against a constant is an
  // unbounded likelihood ratio — non-private for EVERY epsilon.
  const double tau = 50.0;
  const double b = 2.0;  // the scale a broken engine would claim eps for
  const std::size_t n = 20000;
  const std::vector<double> stream_d = {tau, tau - 1.0};
  const std::vector<double> stream_d_prime = {tau - 1.0, tau};

  std::size_t hits_d = 0, hits_d_prime = 0;
  Rng rng_d(kBrokenSeedD), rng_d_prime(kBrokenSeedDPrime);
  for (std::size_t i = 0; i < n; ++i) {
    BrokenSvtNoQueryNoise engine_d(tau, b, &rng_d);
    BrokenSvtNoQueryNoise engine_d_prime(tau, b, &rng_d_prime);
    hits_d += BelowThenAbove(
        [&](double q) { return engine_d.Process(q); }, stream_d);
    hits_d_prime += BelowThenAbove(
        [&](double q) { return engine_d_prime.Process(q); }, stream_d_prime);
  }

  EXPECT_EQ(hits_d, 0u);  // structurally impossible, not merely rare
  const double p = (1.0 - std::exp(-1.0 / b)) / 2.0;  // ~0.197
  const double tolerance = ZTwoSided(kAlpha) * std::sqrt(n * p * (1.0 - p));
  EXPECT_NEAR(static_cast<double>(hits_d_prime), n * p, tolerance);
  // The certificate: an event observed thousands of times on D' that
  // CANNOT occur on D.
  EXPECT_GT(hits_d_prime, 1000u);
}

TEST(SvtStatisticalTest, CorrectEnginePassesTheSameDistinguisher) {
  // The same attack against the real engine: the per-query noise gives the
  // event positive probability on BOTH inputs, and epsilon-DP bounds the
  // log-ratio of the two probabilities by eps. Assert both (so a
  // regression to the broken shape — hits_d collapsing to zero — fails
  // here too, from the opposite direction).
  const double tau = 50.0;
  const double epsilon = 1.0;
  const SvtConfig config = SvtConfig::EvenSplit(epsilon, tau, 1);
  const std::size_t n = 200000;
  const std::vector<double> stream_d = {tau, tau - 1.0};
  const std::vector<double> stream_d_prime = {tau - 1.0, tau};

  std::size_t hits_d = 0, hits_d_prime = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto engine_d = SvtEngine::Create(config, Rng(kCorrectSeedD, i));
    auto engine_d_prime =
        SvtEngine::Create(config, Rng(kCorrectSeedDPrime, i));
    hits_d += BelowThenAbove(
        [&](double q) { return engine_d->Process(q)->verdict; }, stream_d);
    hits_d_prime += BelowThenAbove(
        [&](double q) { return engine_d_prime->Process(q)->verdict; },
        stream_d_prime);
  }

  ASSERT_GT(hits_d, 0u);
  ASSERT_GT(hits_d_prime, 0u);
  // DP bound with sampling slack: |log ratio| <= eps + z * se(log ratio),
  // se ~= sqrt(1/hits_d + 1/hits_d').
  const double log_ratio = std::log(static_cast<double>(hits_d_prime) /
                                    static_cast<double>(hits_d));
  const double slack =
      ZTwoSided(kAlpha) *
      std::sqrt(1.0 / hits_d + 1.0 / hits_d_prime);
  EXPECT_LE(std::abs(log_ratio), epsilon + slack)
      << "hits_d=" << hits_d << " hits_d'=" << hits_d_prime;
}

}  // namespace
}  // namespace dp
}  // namespace gupt
