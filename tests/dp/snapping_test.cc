#include "dp/snapping.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>

#include "statutil.h"

namespace gupt {
namespace dp {
namespace {

// Pre-registered seeds with level-kAlpha tolerances (see
// tests/statutil/statutil.h): each moment check below is deterministic
// given its seed; kAlpha bounds the a-priori chance the seed is unlucky.
constexpr std::uint64_t kSnapCenterSeed = 0x57a9014c01ULL;
constexpr std::uint64_t kSnapSpreadSeed = 0x57a9014c02ULL;
constexpr double kAlpha = 1e-6;

double ZTwoSided() { return statutil::NormalQuantile(1.0 - kAlpha / 2.0); }

TEST(SnappingLambdaTest, SmallestPowerOfTwoAtOrAbove) {
  EXPECT_DOUBLE_EQ(SnappingLambda(1.0), 1.0);
  EXPECT_DOUBLE_EQ(SnappingLambda(1.1), 2.0);
  EXPECT_DOUBLE_EQ(SnappingLambda(0.5), 0.5);
  EXPECT_DOUBLE_EQ(SnappingLambda(0.3), 0.5);
  EXPECT_DOUBLE_EQ(SnappingLambda(3.0), 4.0);
  EXPECT_DOUBLE_EQ(SnappingLambda(1024.0), 1024.0);
  EXPECT_DOUBLE_EQ(SnappingLambda(0.0), 0.0);
}

TEST(SnapToGridTest, RoundsToMultiples) {
  EXPECT_DOUBLE_EQ(SnapToGrid(3.4, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(SnapToGrid(3.5, 1.0), 4.0);  // ties away from zero
  EXPECT_DOUBLE_EQ(SnapToGrid(-3.5, 1.0), -4.0);
  EXPECT_DOUBLE_EQ(SnapToGrid(7.3, 0.5), 7.5);
  EXPECT_DOUBLE_EQ(SnapToGrid(7.3, 0.0), 7.3);  // degenerate grid: identity
}

TEST(SnapToGridTest, IdempotentOnGridPoints) {
  for (double x : {-8.0, -0.5, 0.0, 1.5, 1024.0}) {
    EXPECT_DOUBLE_EQ(SnapToGrid(x, 0.5), x);
  }
}

TEST(SnappingMechanismTest, OutputsLieOnTheGridWithinBounds) {
  Rng rng(1);
  const double sensitivity = 1.0, epsilon = 0.5, bound = 100.0;
  const double lambda = SnappingLambda(sensitivity / epsilon);
  for (int i = 0; i < 2000; ++i) {
    double out =
        SnappingLaplaceMechanism(42.0, sensitivity, epsilon, bound, &rng)
            .value();
    EXPECT_LE(std::fabs(out), bound);
    // On-grid unless clamped to the (off-grid) bound.
    if (std::fabs(out) < bound) {
      EXPECT_DOUBLE_EQ(out, SnapToGrid(out, lambda));
    }
  }
}

TEST(SnappingMechanismTest, CenteredOnValue) {
  Rng rng(kSnapCenterSeed);
  const int trials = 50000;
  double sum = 0.0;
  for (int i = 0; i < trials; ++i) {
    sum += SnappingLaplaceMechanism(10.0, 1.0, 1.0, 1000.0, &rng).value();
  }
  // The value 10.0 sits ON the lambda = 1 grid, so round-to-nearest of the
  // symmetric Laplace noise is unbiased. Var(snap(Lap(1))) <= 2 + 1/12,
  // giving the sample mean an sd of sqrt(2 + 1/12)/sqrt(trials).
  const double tolerance =
      ZTwoSided() * std::sqrt((2.0 + 1.0 / 12.0) / trials);
  EXPECT_NEAR(sum / trials, 10.0, tolerance);
}

TEST(SnappingMechanismTest, SpreadTracksTheScale) {
  Rng rng(kSnapSpreadSeed);
  const double sensitivity = 2.0, epsilon = 0.5;  // scale 4, lambda 4
  const int trials = 50000;
  double abs_sum = 0.0;
  for (int i = 0; i < trials; ++i) {
    abs_sum += std::fabs(
        SnappingLaplaceMechanism(0.0, sensitivity, epsilon, 1e6, &rng)
            .value());
  }
  // |snap(Lap(b))| on the lambda = b grid takes the value b*k with
  // probability P(b*k - b/2 < |X| <= b*k + b/2) = c * e^{-k} for k >= 1,
  // where c = e^{1/2} - e^{-1/2}. With q = e^{-1} the geometric sums give
  //   E|snap|  = b   * c * q / (1-q)^2        ~ 3.84  (b = 4)
  //   E snap^2 = b^2 * c * q (1+q) / (1-q)^3
  // (the previous 4.0 +/- 0.5 bound centred on the wrong constant and
  // leaned on slack to pass). sd of the sample mean = sqrt(Var)/sqrt(n).
  const double b = 4.0;
  const double c = std::exp(0.5) - std::exp(-0.5);
  const double q = std::exp(-1.0);
  const double expected = b * c * q / ((1.0 - q) * (1.0 - q));
  const double second_moment =
      b * b * c * q * (1.0 + q) / std::pow(1.0 - q, 3.0);
  const double variance = second_moment - expected * expected;
  const double tolerance = ZTwoSided() * std::sqrt(variance / trials);
  EXPECT_NEAR(abs_sum / trials, expected, tolerance);
}

TEST(SnappingMechanismTest, ClampsInputBeyondBound) {
  Rng rng(4);
  // Value far outside the public bound: the release cannot reveal it.
  double out =
      SnappingLaplaceMechanism(1e9, 1.0, 10.0, 50.0, &rng).value();
  EXPECT_LE(out, 50.0);
  EXPECT_GT(out, 40.0);  // clamped value 50 minus small noise
}

TEST(SnappingMechanismTest, ZeroSensitivityReleasesClampedExactly) {
  Rng rng(5);
  EXPECT_DOUBLE_EQ(
      SnappingLaplaceMechanism(7.0, 0.0, 1.0, 100.0, &rng).value(), 7.0);
  EXPECT_DOUBLE_EQ(
      SnappingLaplaceMechanism(700.0, 0.0, 1.0, 100.0, &rng).value(), 100.0);
}

TEST(SnappingMechanismTest, RejectsBadArguments) {
  Rng rng(6);
  EXPECT_FALSE(SnappingLaplaceMechanism(0.0, 1.0, 0.0, 1.0, &rng).ok());
  EXPECT_FALSE(SnappingLaplaceMechanism(0.0, -1.0, 1.0, 1.0, &rng).ok());
  EXPECT_FALSE(SnappingLaplaceMechanism(0.0, 1.0, 1.0, 0.0, &rng).ok());
  EXPECT_FALSE(SnappingLaplaceMechanism(0.0, 1.0, 1.0, -5.0, &rng).ok());
}

TEST(SnappingMechanismTest, OutputSupportIsValueIndependent) {
  // The point of snapping: the achievable output set does not depend on
  // the secret value's low-order bits. Two nearby values must produce
  // outputs from the SAME grid.
  Rng rng_a(7), rng_b(8);
  const double lambda = SnappingLambda(1.0 / 0.5);
  std::set<double> support_a, support_b;
  for (int i = 0; i < 3000; ++i) {
    support_a.insert(
        SnappingLaplaceMechanism(10.0, 1.0, 0.5, 1e6, &rng_a).value());
    support_b.insert(SnappingLaplaceMechanism(10.0 + 1e-13, 1.0, 0.5, 1e6,
                                              &rng_b)
                         .value());
  }
  for (double v : support_a) EXPECT_DOUBLE_EQ(v, SnapToGrid(v, lambda));
  for (double v : support_b) EXPECT_DOUBLE_EQ(v, SnapToGrid(v, lambda));
}

}  // namespace
}  // namespace dp
}  // namespace gupt
