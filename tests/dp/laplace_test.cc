#include "dp/laplace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "statutil.h"

namespace gupt {
namespace dp {
namespace {

// Pre-registered seeds (see tests/statutil/statutil.h): each statistical
// assertion below is deterministic given its named seed, its tolerance is
// derived from the estimator's standard error at level kAlpha, and kAlpha
// bounds the a-priori probability that the checked-in seed is unlucky.
constexpr std::uint64_t kCenteringSeed = 0x1a91ace001ULL;
constexpr std::uint64_t kSpreadSeed = 0x1a91ace002ULL;
constexpr std::uint64_t kContrastSeed = 0x1a91ace003ULL;
constexpr std::uint64_t kKsSeed = 0x1a91ace004ULL;
constexpr std::uint64_t kRatioSeedA = 0x1a91ace005ULL;
constexpr std::uint64_t kRatioSeedB = 0x1a91ace006ULL;
constexpr double kAlpha = 1e-6;

/// z-quantile for a two-sided level-kAlpha bound on a normal estimator.
double ZTwoSided() { return statutil::NormalQuantile(1.0 - kAlpha / 2.0); }

TEST(LaplaceScaleTest, BasicRatio) {
  EXPECT_DOUBLE_EQ(LaplaceScale(2.0, 0.5).value(), 4.0);
  EXPECT_DOUBLE_EQ(LaplaceScale(0.0, 1.0).value(), 0.0);
}

TEST(LaplaceScaleTest, RejectsBadArguments) {
  EXPECT_FALSE(LaplaceScale(1.0, 0.0).ok());
  EXPECT_FALSE(LaplaceScale(1.0, -1.0).ok());
  EXPECT_FALSE(LaplaceScale(-1.0, 1.0).ok());
  EXPECT_FALSE(LaplaceScale(1.0, std::nan("")).ok());
  EXPECT_FALSE(
      LaplaceScale(std::numeric_limits<double>::infinity(), 1.0).ok());
}

TEST(LaplaceMechanismTest, ZeroSensitivityReleasesExactly) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(LaplaceMechanism(3.14, 0.0, 1.0, &rng).value(), 3.14);
}

TEST(LaplaceMechanismTest, NoiseIsCenteredOnValue) {
  Rng rng(kCenteringSeed);
  const int n = 100000;
  const double scale = 1.0 / 2.0;  // sensitivity / epsilon
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += LaplaceMechanism(10.0, 1.0, 2.0, &rng).value();
  }
  // The sample mean of n Laplace(b) draws has sd b*sqrt(2/n).
  const double tolerance = ZTwoSided() * scale * std::sqrt(2.0 / n);
  EXPECT_NEAR(sum / n, 10.0, tolerance);
}

TEST(LaplaceMechanismTest, NoiseMagnitudeMatchesScale) {
  Rng rng(kSpreadSeed);
  const double sensitivity = 3.0, epsilon = 0.5;
  const double expected_scale = sensitivity / epsilon;
  const int n = 100000;
  double abs_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    abs_sum +=
        std::fabs(LaplaceMechanism(0.0, sensitivity, epsilon, &rng).value());
  }
  // E|Laplace(b)| = b and sd(|Laplace(b)|) = b, so the sample mean of the
  // absolute noise has sd b/sqrt(n).
  const double tolerance = ZTwoSided() * expected_scale / std::sqrt(1.0 * n);
  EXPECT_NEAR(abs_sum / n, expected_scale, tolerance);
}

TEST(LaplaceMechanismTest, DistributionMatchesLaplaceCdf) {
  // The full distributional statement the two moment checks above only
  // sample: the released noise IS Laplace(sensitivity/epsilon).
  Rng rng(kKsSeed);
  const double sensitivity = 3.0, epsilon = 0.5;
  const double scale = sensitivity / epsilon;
  std::vector<double> samples(20000);
  for (double& s : samples) {
    s = LaplaceMechanism(0.0, sensitivity, epsilon, &rng).value();
  }
  statutil::GofResult fit = statutil::KsTest(
      samples,
      [scale](double x) { return statutil::LaplaceCdf(x, 0.0, scale); },
      kAlpha);
  EXPECT_FALSE(fit.reject) << fit.Describe();
}

TEST(LaplaceMechanismTest, HigherEpsilonMeansLessNoise) {
  Rng rng(kContrastSeed);
  const int n = 20000;
  double spread_low_eps = 0.0, spread_high_eps = 0.0;
  for (int i = 0; i < n; ++i) {
    spread_low_eps += std::fabs(LaplaceMechanism(0.0, 1.0, 0.1, &rng).value());
    spread_high_eps +=
        std::fabs(LaplaceMechanism(0.0, 1.0, 10.0, &rng).value());
  }
  // The true spread ratio is 100x; asserting >10x leaves enormous slack
  // relative to the ~1% relative sd of each side at this n.
  EXPECT_GT(spread_low_eps, spread_high_eps * 10);
}

TEST(LaplaceMechanismTest, VectorAppliesPerCoordinate) {
  Rng rng(5);
  Row values = {1.0, 2.0, 3.0};
  auto noisy = LaplaceMechanismVector(values, 1.0, 100.0, &rng);
  ASSERT_TRUE(noisy.ok());
  ASSERT_EQ(noisy->size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR((*noisy)[i], values[i], 1.0);  // eps=100 => tiny noise
    EXPECT_NE((*noisy)[i], values[i]);         // but not exactly equal
  }
}

TEST(LaplaceMechanismTest, VectorZeroSensitivityExact) {
  Rng rng(6);
  Row values = {4.0, 5.0};
  auto noisy = LaplaceMechanismVector(values, 0.0, 1.0, &rng);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(*noisy, values);
}

TEST(LaplaceMechanismTest, RejectsBadEpsilon) {
  Rng rng(7);
  EXPECT_FALSE(LaplaceMechanism(0.0, 1.0, 0.0, &rng).ok());
  EXPECT_FALSE(LaplaceMechanismVector({1.0}, 1.0, -2.0, &rng).ok());
}

// Empirical DP sanity check: for neighbouring values v and v' with
// |v - v'| <= sensitivity, the densities of the released outputs should
// differ by at most e^eps. We histogram both output distributions and
// check the ratio on well-populated bins.
TEST(LaplaceMechanismTest, EmpiricalPrivacyRatioBounded) {
  const double epsilon = 1.0, sensitivity = 1.0;
  const int n = 400000;
  const int bins = 20;
  const double lo = -4.0, hi = 5.0;
  std::vector<int> hist_a(bins, 0), hist_b(bins, 0);
  Rng rng_a(kRatioSeedA), rng_b(kRatioSeedB);
  for (int i = 0; i < n; ++i) {
    double a = LaplaceMechanism(0.0, sensitivity, epsilon, &rng_a).value();
    double b = LaplaceMechanism(1.0, sensitivity, epsilon, &rng_b).value();
    auto bin_of = [&](double x) {
      int bin = static_cast<int>((x - lo) / (hi - lo) * bins);
      return std::min(std::max(bin, 0), bins - 1);
    };
    ++hist_a[bin_of(a)];
    ++hist_b[bin_of(b)];
  }
  for (int b = 0; b < bins; ++b) {
    if (hist_a[b] < 1000 || hist_b[b] < 1000) continue;  // noisy tail bins
    double ratio = static_cast<double>(hist_a[b]) / hist_b[b];
    // The count ratio's log has sd ~ sqrt(1/count_a + 1/count_b); the
    // per-bin slack covers a level-kAlpha fluctuation on top of e^eps
    // (the previous fixed 15% slack was exactly one z-width at the
    // 1000-count threshold, i.e. a coin flip for an unlucky seed).
    const double slack = std::exp(
        ZTwoSided() * std::sqrt(1.0 / hist_a[b] + 1.0 / hist_b[b]));
    EXPECT_LT(ratio, std::exp(epsilon) * slack) << "bin " << b;
    EXPECT_GT(ratio, std::exp(-epsilon) / slack) << "bin " << b;
  }
}

}  // namespace
}  // namespace dp
}  // namespace gupt
