#include <gtest/gtest.h>

#include "dp/percentile.h"

namespace gupt {
namespace dp {
namespace {

std::vector<double> Linspace(double lo, double hi, std::size_t n) {
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = lo + (hi - lo) * static_cast<double>(i) /
                     static_cast<double>(n - 1);
  }
  return xs;
}

TEST(QuantilePairTest, WiderPairCoversMoreMass) {
  std::vector<double> values = Linspace(0.0, 100.0, 2001);
  Rng rng(1);
  auto narrow =
      PrivateQuantilePair(values, 0.0, 100.0, 0.25, 0.75, 3.0, &rng).value();
  auto wide =
      PrivateQuantilePair(values, 0.0, 100.0, 0.10, 0.90, 3.0, &rng).value();
  EXPECT_GT(wide.second - wide.first, narrow.second - narrow.first);
  EXPECT_NEAR(wide.first, 10.0, 5.0);
  EXPECT_NEAR(wide.second, 90.0, 5.0);
}

TEST(QuantilePairTest, OrderAlwaysNonDecreasing) {
  std::vector<double> values = Linspace(0.0, 1.0, 100);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    auto pair =
        PrivateQuantilePair(values, 0.0, 1.0, 0.45, 0.55, 0.05, &rng).value();
    EXPECT_LE(pair.first, pair.second);
  }
}

TEST(QuantilePairTest, RejectsInvertedPercentiles) {
  std::vector<double> values = {1.0, 2.0};
  Rng rng(3);
  EXPECT_FALSE(
      PrivateQuantilePair(values, 0.0, 10.0, 0.75, 0.25, 1.0, &rng).ok());
  EXPECT_FALSE(
      PrivateQuantilePair(values, 0.0, 10.0, 0.5, 0.5, 1.0, &rng).ok());
}

TEST(QuantilePairTest, InterquartileWrapperMatchesPair) {
  std::vector<double> values = Linspace(0.0, 100.0, 1001);
  Rng rng_a(4), rng_b(4);  // identical streams
  auto wrapper =
      PrivateInterquartileRange(values, 0.0, 100.0, 2.0, &rng_a).value();
  auto direct =
      PrivateQuantilePair(values, 0.0, 100.0, 0.25, 0.75, 2.0, &rng_b)
          .value();
  EXPECT_DOUBLE_EQ(wrapper.first, direct.first);
  EXPECT_DOUBLE_EQ(wrapper.second, direct.second);
}

}  // namespace
}  // namespace dp
}  // namespace gupt
