// Fault injection against the pre-warmed chamber pool: spawn failures at
// Start, lease-time parent-side refusals, worker crashes mid-lease, and
// injected reset failures. The invariant under test is the one the pool
// inherits from ProcessChamber (§6.2): worker misbehaviour of any kind
// degrades to the data-independent fallback — never an error, never a
// dropped block — and the privacy ledger is bit-identical to a fault-free
// run, because budget is charged at admission, before any chamber runs.

#include "exec/chamber_pool.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "service/gupt_service.h"
#include "testing/failpoints/failpoints.h"

namespace gupt {
namespace {

using failpoints::Action;
using failpoints::CompiledIn;
using failpoints::Config;
using failpoints::ScopedFailpoint;

Config FireAlways(Action action = Action::kError) {
  Config config;
  config.every_nth = 1;
  config.action = action;
  return config;
}

Dataset OneColumn(std::vector<double> values) {
  return Dataset::FromColumn(values).value();
}

ProgramResolver SumResolver() {
  return [](const std::string& token) -> Result<ProgramFactory> {
    if (token != "sum") {
      return Status::InvalidArgument("unknown token: " + token);
    }
    return MakeProgramFactory("sum", 1,
                              [](const Dataset& block) -> Result<Row> {
                                double sum = 0.0;
                                const double* col = block.col(0);
                                for (std::size_t r = 0; r < block.num_rows();
                                     ++r) {
                                  sum += col[r];
                                }
                                return Row{sum};
                              });
  };
}

class ChamberPoolFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CompiledIn()) {
      GTEST_SKIP() << "built with GUPT_FAILPOINTS_ENABLED=OFF";
    }
    failpoints::DisarmAll();
  }
  void TearDown() override { failpoints::DisarmAll(); }
};

TEST_F(ChamberPoolFaultTest, SpawnFaultAtStartFailsWhenNoWorkerSurvives) {
  ScopedFailpoint fp("exec.pool.spawn", FireAlways());
  ChamberPool pool(ChamberPolicy{}, 2);
  pool.SetProgramResolver(SumResolver());
  Status started = pool.Start();
  EXPECT_FALSE(started.ok());
  EXPECT_EQ(fp.fires(), 2u);
  EXPECT_EQ(pool.Stats().workers_alive, 0u);
}

TEST_F(ChamberPoolFaultTest, PartialSpawnFaultDegradesThenHealsAtLease) {
  // Every 2nd spawn fails: Start succeeds on the surviving worker, and the
  // dead slot is revived lazily at lease time once the failpoint is gone.
  Config config;
  config.every_nth = 2;
  ScopedFailpoint fp("exec.pool.spawn", config);
  ChamberPool pool(ChamberPolicy{}, 2);
  pool.SetProgramResolver(SumResolver());
  ASSERT_TRUE(pool.Start().ok());
  EXPECT_EQ(pool.Stats().workers_alive, 1u);

  failpoints::DisarmAll();
  Dataset data = OneColumn({1, 2});
  for (int i = 0; i < 3; ++i) {
    auto run = pool.Execute("sum", data.view(), Row{0.0});
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->output, (Row{3.0}));
  }
}

TEST_F(ChamberPoolFaultTest, LeaseErrorFaultFallsBackWithoutTouchingAWorker) {
  ChamberPool pool(ChamberPolicy{}, 1);
  pool.SetProgramResolver(SumResolver());
  ASSERT_TRUE(pool.Start().ok());
  Dataset data = OneColumn({1, 2, 3});

  ScopedFailpoint fp("exec.pool.lease", FireAlways(Action::kError));
  auto run = pool.Execute("sum", data.view(), Row{0.5});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{0.5}));
  EXPECT_TRUE(failpoints::IsInjected(run->program_status));
  EXPECT_EQ(fp.fires(), 1u);
  // The refusal happens parent-side, before any worker is leased.
  ChamberPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.leases, 0u);
  EXPECT_EQ(stats.respawns, 0u);

  failpoints::DisarmAll();
  auto healthy = pool.Execute("sum", data.view(), Row{0.5});
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy->output, (Row{6.0}));
}

TEST_F(ChamberPoolFaultTest, LeaseCrashFaultKillsWorkerAndRespawns) {
  // The crash action makes the leased worker _exit mid-request — the
  // parent sees EOF exactly as with a real SIGSEGV, substitutes the
  // fallback, and respawns the slot at the next lease.
  ChamberPool pool(ChamberPolicy{}, 1);
  pool.SetProgramResolver(SumResolver());
  ASSERT_TRUE(pool.Start().ok());
  Dataset data = OneColumn({1, 2, 3});

  {
    ScopedFailpoint fp("exec.pool.lease", FireAlways(Action::kCrash));
    auto run = pool.Execute("sum", data.view(), Row{7.0});
    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(run->used_fallback);
    EXPECT_EQ(run->output, (Row{7.0}));
    EXPECT_EQ(run->program_status.code(), StatusCode::kPolicyViolation);
    EXPECT_EQ(fp.fires(), 1u);
  }
  EXPECT_EQ(pool.Stats().workers_alive, 0u);

  auto next = pool.Execute("sum", data.view(), Row{0.0});
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->used_fallback);
  EXPECT_EQ(next->output, (Row{6.0}));
  ChamberPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.respawns, 1u);
  EXPECT_EQ(stats.workers_alive, 1u);
}

TEST_F(ChamberPoolFaultTest, ResetFaultKeepsTheAnswerButDiscardsTheWorker) {
  // An injected reset failure models a worker that answered correctly but
  // cannot be proven clean for reuse: the answer stands, the worker does
  // not.
  ChamberPool pool(ChamberPolicy{}, 1);
  pool.SetProgramResolver(SumResolver());
  ASSERT_TRUE(pool.Start().ok());
  Dataset data = OneColumn({4, 5});

  {
    ScopedFailpoint fp("exec.pool.reset", FireAlways());
    auto run = pool.Execute("sum", data.view(), Row{0.0});
    ASSERT_TRUE(run.ok());
    EXPECT_FALSE(run->used_fallback);
    EXPECT_EQ(run->output, (Row{9.0}));
    EXPECT_EQ(fp.fires(), 1u);
  }
  ChamberPoolStats after = pool.Stats();
  EXPECT_EQ(after.workers_alive, 0u);
  EXPECT_EQ(after.resets, 0u);  // the lease ended in discard, not reset

  auto next = pool.Execute("sum", data.view(), Row{0.0});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->output, (Row{9.0}));
  EXPECT_EQ(pool.Stats().respawns, 1u);
}

// ---------------------------------------------------------------------------
// Service-level: crashing pooled workers must leave /budgetz bit-identical
// to a fault-free run of the same query sequence (satellite b).
// ---------------------------------------------------------------------------

Dataset Ages(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(vec::ClampScalar(rng.Gaussian(40.0, 10.0), 0.0, 150.0));
  }
  return Dataset::FromColumn(values).value();
}

QueryRequest MeanRequest(double epsilon) {
  QueryRequest request;
  request.analyst = "alice";
  request.dataset = "ages";
  request.program.name = "mean";
  request.epsilon = epsilon;
  request.range_mode = RangeMode::kTight;
  request.output_ranges = {Range{0.0, 150.0}};
  request.block_size = 64;  // 512 rows => exactly 8 blocks per query
  return request;
}

std::vector<DatasetBudgetSnapshot> RunPooledQuerySequence(
    std::size_t* fallback_blocks_out) {
  ServiceOptions options;
  options.chamber_pool_workers = 2;
  GuptService service(std::move(options),
                      ProgramRegistry::WithStandardPrograms());
  DatasetOptions ds;
  ds.total_epsilon = 4.0;
  EXPECT_TRUE(service.RegisterDataset("ages", Ages(512, 1), ds).ok());

  std::size_t fallbacks = 0;
  for (int q = 0; q < 4; ++q) {
    auto report = service.SubmitQuery(MeanRequest(0.5));
    EXPECT_TRUE(report.ok()) << report.status();
    if (report.ok()) {
      EXPECT_EQ(report->num_blocks, 8u);
      fallbacks += report->fallback_blocks;
    }
  }
  *fallback_blocks_out = fallbacks;
  return service.BudgetSnapshots();
}

TEST_F(ChamberPoolFaultTest, CrashingPooledWorkersLeaveLedgerBitIdentical) {
  std::size_t faulty_fallbacks = 0;
  std::size_t clean_fallbacks = 0;
  std::vector<DatasetBudgetSnapshot> faulty;
  {
    Config config;
    config.every_nth = 3;
    config.action = Action::kCrash;
    ScopedFailpoint fp("exec.pool.lease", config);
    faulty = RunPooledQuerySequence(&faulty_fallbacks);
    // The faults really happened: every 3rd of the 32 pooled leases
    // crashed, and each crash surfaced as exactly one fallback block.
    EXPECT_EQ(fp.evaluations(), 32u);
    EXPECT_GE(fp.fires(), 32u / 3u);
    EXPECT_EQ(faulty_fallbacks, fp.fires());
  }
  auto clean = RunPooledQuerySequence(&clean_fallbacks);
  EXPECT_EQ(clean_fallbacks, 0u);

  // ...and the ledger cannot tell the difference: charges land at
  // admission, before any chamber runs, so the two runs' /budgetz state is
  // equal to the last bit.
  ASSERT_EQ(faulty.size(), 1u);
  ASSERT_EQ(clean.size(), 1u);
  EXPECT_EQ(faulty[0].dataset, clean[0].dataset);
  EXPECT_EQ(faulty[0].budget.total_epsilon, clean[0].budget.total_epsilon);
  EXPECT_EQ(faulty[0].budget.spent_epsilon, clean[0].budget.spent_epsilon);
  EXPECT_EQ(faulty[0].budget.remaining_epsilon(),
            clean[0].budget.remaining_epsilon());
  ASSERT_EQ(faulty[0].budget.charges.size(), clean[0].budget.charges.size());
  for (std::size_t i = 0; i < clean[0].budget.charges.size(); ++i) {
    EXPECT_EQ(faulty[0].budget.charges[i].epsilon,
              clean[0].budget.charges[i].epsilon);
  }
}

}  // namespace
}  // namespace gupt
