// Tests for the forwarding agent (the chamber's one allowed channel).

#include <gtest/gtest.h>

#include "exec/chamber.h"
#include "exec/computation_manager.h"

namespace gupt {
namespace {

Dataset OneColumn(std::vector<double> values) {
  return Dataset::FromColumn(values).value();
}

class ChattyProgram final : public AnalysisProgram {
 public:
  explicit ChattyProgram(std::size_t messages) : messages_(messages) {}

  Result<Row> Run(const Dataset& block) override {
    return RunWithServices(block, nullptr);
  }
  Result<Row> RunWithServices(const Dataset& block,
                              ChamberServices* services) override {
    if (services != nullptr) {
      for (std::size_t i = 0; i < messages_; ++i) {
        (void)services->SendToManager("progress " + std::to_string(i));
      }
    }
    return Row{static_cast<double>(block.num_rows())};
  }
  std::size_t output_dims() const override { return 1; }
  std::string name() const override { return "chatty"; }

 private:
  std::size_t messages_;
};

TEST(ForwardingAgentTest, MessagesReachTheTrustedSide) {
  ProgramFactory factory = [] { return std::make_unique<ChattyProgram>(3); };
  ExecutionChamber chamber{ChamberPolicy{}};
  auto run = chamber.Execute(factory, OneColumn({1, 2}), Row{0.0});
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->forwarded_messages.size(), 3u);
  EXPECT_EQ(run->forwarded_messages[0], "progress 0");
  EXPECT_EQ(run->policy_violations, 0u);
  EXPECT_FALSE(run->used_fallback);
}

TEST(ForwardingAgentTest, CapEnforcedAndCountedAsViolation) {
  ChamberPolicy policy;
  policy.max_forwarded_messages = 2;
  ProgramFactory factory = [] { return std::make_unique<ChattyProgram>(5); };
  ExecutionChamber chamber{policy};
  auto run = chamber.Execute(factory, OneColumn({1}), Row{0.0});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->forwarded_messages.size(), 2u);
  EXPECT_EQ(run->policy_violations, 3u);  // three dropped sends
  EXPECT_FALSE(run->used_fallback);       // the run itself still succeeds
}

TEST(ForwardingAgentTest, MessagesDoNotCrossRuns) {
  ProgramFactory factory = [] { return std::make_unique<ChattyProgram>(1); };
  ExecutionChamber chamber{ChamberPolicy{}};
  auto first = chamber.Execute(factory, OneColumn({1}), Row{0.0});
  auto second = chamber.Execute(factory, OneColumn({1}), Row{0.0});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->forwarded_messages.size(), 1u);
  EXPECT_EQ(second->forwarded_messages.size(), 1u);  // not accumulated
}

TEST(ForwardingAgentTest, VisibleThroughComputationManagerRuns) {
  ProgramFactory factory = [] { return std::make_unique<ChattyProgram>(1); };
  ComputationManager manager(nullptr, ChamberPolicy{});
  BlockPlan plan;
  plan.blocks = {{0}, {1}};
  auto report = manager.ExecuteOnBlocks(factory, OneColumn({1, 2}), plan,
                                        Row{0.0});
  ASSERT_TRUE(report.ok());
  for (const ChamberRun& run : report->runs) {
    EXPECT_EQ(run.forwarded_messages.size(), 1u);
  }
}

}  // namespace
}  // namespace gupt
