#include "exec/chamber.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "analytics/queries.h"

namespace gupt {
namespace {

using std::chrono::milliseconds;

Dataset OneColumn(std::vector<double> values) {
  return Dataset::FromColumn(values).value();
}

ProgramFactory Constant(double value) {
  return MakeProgramFactory("const", 1, [value](const Dataset&) -> Result<Row> {
    return Row{value};
  });
}

TEST(ChamberServicesTest, ScratchRoundTrip) {
  ChamberServices services(ChamberPolicy{});
  ASSERT_TRUE(services.WriteScratch("k", "v").ok());
  EXPECT_EQ(services.ReadScratch("k").value(), "v");
  EXPECT_EQ(services.ReadScratch("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(ChamberServicesTest, ScratchOverwriteReusesSpace) {
  ChamberPolicy policy;
  policy.scratch_limit_bytes = 16;
  ChamberServices services(policy);
  ASSERT_TRUE(services.WriteScratch("k", "0123456789").ok());  // 11 bytes
  // Overwriting the same key with an equal-size value must fit.
  ASSERT_TRUE(services.WriteScratch("k", "abcdefghij").ok());
  EXPECT_EQ(services.ReadScratch("k").value(), "abcdefghij");
}

TEST(ChamberServicesTest, ScratchLimitEnforced) {
  ChamberPolicy policy;
  policy.scratch_limit_bytes = 8;
  ChamberServices services(policy);
  EXPECT_EQ(services.WriteScratch("key", "0123456789").code(),
            StatusCode::kPolicyViolation);
  EXPECT_EQ(services.violation_count(), 1u);
}

TEST(ChamberServicesTest, NetworkAlwaysDenied) {
  ChamberServices services(ChamberPolicy{});
  EXPECT_EQ(services.OpenNetworkConnection("evil.example:443").code(),
            StatusCode::kPolicyViolation);
  EXPECT_EQ(services.violation_count(), 1u);
}

TEST(ChamberServicesTest, PeerIpcAlwaysDenied) {
  ChamberServices services(ChamberPolicy{});
  EXPECT_EQ(services.SendToPeerChamber("chamber-7", "hello").code(),
            StatusCode::kPolicyViolation);
  EXPECT_EQ(services.violation_count(), 1u);
}

TEST(ChamberTest, RunsProgramAndReturnsOutput) {
  ExecutionChamber chamber{ChamberPolicy{}};
  auto run = chamber.Execute(Constant(7.0), OneColumn({1, 2, 3}), Row{0.0});
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{7.0}));
  EXPECT_TRUE(run->program_status.ok());
}

TEST(ChamberTest, ProgramErrorSubstitutesFallback) {
  auto failing = MakeProgramFactory("fail", 1, [](const Dataset&) -> Result<Row> {
    return Status::NumericalError("diverged");
  });
  ExecutionChamber chamber{ChamberPolicy{}};
  auto run = chamber.Execute(failing, OneColumn({1}), Row{42.0});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{42.0}));
  EXPECT_EQ(run->program_status.code(), StatusCode::kNumericalError);
}

TEST(ChamberTest, WrongOutputDimensionSubstitutesFallback) {
  auto liar = MakeProgramFactory("liar", 2, [](const Dataset&) -> Result<Row> {
    return Row{1.0};  // declared 2 dims, returns 1
  });
  ExecutionChamber chamber{ChamberPolicy{}};
  auto run = chamber.Execute(liar, OneColumn({1}), Row{0.0, 0.0});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{0.0, 0.0}));
  EXPECT_EQ(run->program_status.code(), StatusCode::kPolicyViolation);
}

TEST(ChamberTest, FallbackDimensionMismatchIsCallerError) {
  ExecutionChamber chamber{ChamberPolicy{}};
  auto run = chamber.Execute(Constant(1.0), OneColumn({1}), Row{0.0, 0.0});
  EXPECT_FALSE(run.ok());
}

TEST(ChamberTest, NullFactoryIsCallerError) {
  ExecutionChamber chamber{ChamberPolicy{}};
  EXPECT_FALSE(chamber.Execute(ProgramFactory{}, OneColumn({1}), Row{0.0}).ok());
}

TEST(ChamberTest, DeadlineKillsSlowProgram) {
  auto slow = MakeProgramFactory("slow", 1, [](const Dataset&) -> Result<Row> {
    std::this_thread::sleep_for(milliseconds(500));
    return Row{1.0};
  });
  ChamberPolicy policy;
  policy.deadline = std::chrono::microseconds(20000);  // 20ms
  ExecutionChamber chamber{policy};
  auto run = chamber.Execute(slow, OneColumn({1}), Row{13.0});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->deadline_exceeded);
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{13.0}));
  EXPECT_EQ(run->program_status.code(), StatusCode::kDeadlineExceeded);
}

TEST(ChamberTest, FastProgramBeatsDeadline) {
  ChamberPolicy policy;
  policy.deadline = std::chrono::microseconds(500000);
  ExecutionChamber chamber{policy};
  auto run = chamber.Execute(Constant(5.0), OneColumn({1}), Row{0.0});
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->deadline_exceeded);
  EXPECT_EQ(run->output, (Row{5.0}));
}

TEST(ChamberTest, PaddingMakesRuntimeDataIndependent) {
  // Timing attack (paper §6.2): a program that runs long on a "target"
  // record and fast otherwise. With padding, observable durations match.
  auto timing_attack = [](double target) {
    return MakeProgramFactory("timing", 1,
                              [target](const Dataset& block) -> Result<Row> {
                                const double* col = block.col(0);
                                for (std::size_t r = 0; r < block.num_rows();
                                     ++r) {
                                  if (col[r] == target) {
                                    std::this_thread::sleep_for(
                                        milliseconds(30));
                                  }
                                }
                                return Row{0.0};
                              });
  };
  ChamberPolicy policy;
  policy.deadline = std::chrono::microseconds(60000);
  policy.pad_to_deadline = true;
  ExecutionChamber chamber{policy};

  // Take the minimum over a few repetitions: the minimum is robust to
  // scheduler hiccups on a loaded machine, while still exposing the 30ms
  // data-dependent sleep if the padding were broken.
  auto min_elapsed = [&](double record_value) {
    auto best = std::chrono::nanoseconds::max();
    for (int i = 0; i < 3; ++i) {
      auto run = chamber.Execute(timing_attack(7.0),
                                 OneColumn({record_value}), Row{0.0});
      EXPECT_TRUE(run.ok());
      best = std::min(best, run->elapsed);
    }
    return best;
  };
  auto with_target = min_elapsed(7.0);
  auto without_target = min_elapsed(1.0);
  // Both runs take (at least) the full deadline; the observable difference
  // collapses to scheduler noise rather than the 30ms data signal.
  auto deadline_ns = std::chrono::nanoseconds(policy.deadline);
  EXPECT_GE(with_target, deadline_ns);
  EXPECT_GE(without_target, deadline_ns);
  auto diff = std::chrono::abs(with_target - without_target);
  auto longest = std::max(with_target, without_target);
  EXPECT_LT(diff.count(), longest.count() * 0.4);
}

TEST(ChamberTest, StateAttackDefeatedByFreshInstances) {
  // State attack (paper §6.2): the program tries to accumulate a count of
  // "hits" across blocks through instance state. Fresh instances per
  // execution mean the second run observes nothing from the first.
  class StatefulSpy final : public AnalysisProgram {
   public:
    Result<Row> Run(const Dataset& block) override {
      const double* col = block.col(0);
      for (std::size_t r = 0; r < block.num_rows(); ++r) {
        if (col[r] == 7.0) ++hits_;
      }
      return Row{static_cast<double>(hits_)};
    }
    std::size_t output_dims() const override { return 1; }
    std::string name() const override { return "spy"; }

   private:
    int hits_ = 0;  // would leak across blocks if the instance survived
  };
  ProgramFactory factory = [] { return std::make_unique<StatefulSpy>(); };
  ExecutionChamber chamber{ChamberPolicy{}};
  auto first = chamber.Execute(factory, OneColumn({7.0, 7.0}), Row{0.0});
  auto second = chamber.Execute(factory, OneColumn({1.0}), Row{0.0});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->output, (Row{2.0}));
  // The second chamber's instance starts from zero: no cross-block leak.
  EXPECT_EQ(second->output, (Row{0.0}));
}

TEST(ChamberTest, PolicyViolationsAreCountedAndDenied) {
  class Exfiltrator final : public AnalysisProgram {
   public:
    Result<Row> Run(const Dataset&) override { return Row{0.0}; }
    Result<Row> RunWithServices(const Dataset& block,
                                ChamberServices* services) override {
      // Try to ship the block to the outside world; both channels must be
      // denied without aborting the run.
      (void)services->OpenNetworkConnection("exfil.example:80");
      (void)services->SendToPeerChamber("peer", "data");
      return Row{static_cast<double>(block.num_rows())};
    }
    std::size_t output_dims() const override { return 1; }
    std::string name() const override { return "exfil"; }
  };
  ProgramFactory factory = [] { return std::make_unique<Exfiltrator>(); };
  ExecutionChamber chamber{ChamberPolicy{}};
  auto run = chamber.Execute(factory, OneColumn({1, 2, 3}), Row{0.0});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->policy_violations, 2u);
  EXPECT_FALSE(run->used_fallback);  // the run itself completed
  EXPECT_EQ(run->output, (Row{3.0}));
}

TEST(ChamberTest, ScratchIsWipedBetweenRuns) {
  class ScratchProbe final : public AnalysisProgram {
   public:
    Result<Row> Run(const Dataset&) override { return Row{0.0}; }
    Result<Row> RunWithServices(const Dataset&,
                                ChamberServices* services) override {
      double found = services->ReadScratch("note").ok() ? 1.0 : 0.0;
      (void)services->WriteScratch("note", "I was here");
      return Row{found};
    }
    std::size_t output_dims() const override { return 1; }
    std::string name() const override { return "scratch_probe"; }
  };
  ProgramFactory factory = [] { return std::make_unique<ScratchProbe>(); };
  ExecutionChamber chamber{ChamberPolicy{}};
  auto first = chamber.Execute(factory, OneColumn({1}), Row{-1.0});
  auto second = chamber.Execute(factory, OneColumn({1}), Row{-1.0});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->output, (Row{0.0}));
  EXPECT_EQ(second->output, (Row{0.0}));  // wiped: the note is gone
}

TEST(ChamberTest, ThrowingProgramIsContainedNotFatal) {
  // An untrusted program that throws must not take the runtime down (on a
  // detached deadline worker an escaping exception would std::terminate);
  // it is converted into a fallback like any other misbehaviour.
  auto thrower = MakeProgramFactory("thrower", 1,
                                    [](const Dataset&) -> Result<Row> {
                                      throw std::runtime_error("sabotage");
                                    });
  ExecutionChamber inline_chamber{ChamberPolicy{}};
  auto run = inline_chamber.Execute(thrower, OneColumn({1.0}), Row{9.0});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{9.0}));
  EXPECT_EQ(run->program_status.code(), StatusCode::kPolicyViolation);
  EXPECT_NE(run->program_status.message().find("sabotage"),
            std::string::npos);

  ChamberPolicy deadline_policy;
  deadline_policy.deadline = std::chrono::microseconds(500000);
  ExecutionChamber deadline_chamber{deadline_policy};
  auto threaded = deadline_chamber.Execute(thrower, OneColumn({1.0}),
                                           Row{9.0});
  ASSERT_TRUE(threaded.ok());
  EXPECT_TRUE(threaded->used_fallback);
}

TEST(ChamberTest, NonStandardThrowIsAlsoContained) {
  auto thrower = MakeProgramFactory("weird", 1,
                                    [](const Dataset&) -> Result<Row> {
                                      throw 42;  // not a std::exception
                                    });
  ExecutionChamber chamber{ChamberPolicy{}};
  auto run = chamber.Execute(thrower, OneColumn({1.0}), Row{0.5});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{0.5}));
}

TEST(ChamberTest, ProgramGetsPrivateCopyOfBlock) {
  // A program cannot corrupt the dataset for later runs: it only ever sees
  // a copy. (The const interface already prevents direct writes; this
  // checks the lifetime/aliasing contract for abandoned runs too.)
  Dataset data = OneColumn({1, 2, 3});
  ExecutionChamber chamber{ChamberPolicy{}};
  auto probe = MakeProgramFactory("probe", 1,
                                  [](const Dataset& block) -> Result<Row> {
                                    return Row{block.row(0)[0]};
                                  });
  auto run = chamber.Execute(probe, data, Row{0.0});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(data.row(0), (Row{1.0}));
  EXPECT_EQ(run->output, (Row{1.0}));
}

}  // namespace
}  // namespace gupt
