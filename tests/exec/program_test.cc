#include "exec/program.h"

#include <gtest/gtest.h>

namespace gupt {
namespace {

TEST(ProgramFactoryTest, CarriesNameAndDims) {
  ProgramFactory factory = MakeProgramFactory(
      "my_query", 3, [](const Dataset&) -> Result<Row> {
        return Row{1.0, 2.0, 3.0};
      });
  auto program = factory();
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(program->name(), "my_query");
  EXPECT_EQ(program->output_dims(), 3u);
}

TEST(ProgramFactoryTest, ProducesFreshInstances) {
  ProgramFactory factory =
      MakeProgramFactory("q", 1, [](const Dataset&) -> Result<Row> {
        return Row{0.0};
      });
  auto a = factory();
  auto b = factory();
  EXPECT_NE(a.get(), b.get());
}

TEST(ProgramFactoryTest, RunForwardsBlock) {
  ProgramFactory factory = MakeProgramFactory(
      "rows", 1, [](const Dataset& block) -> Result<Row> {
        return Row{static_cast<double>(block.num_rows())};
      });
  Dataset data = Dataset::FromColumn({1, 2, 3, 4}).value();
  EXPECT_EQ(factory()->Run(data).value(), (Row{4.0}));
}

TEST(ProgramFactoryTest, DefaultRunWithServicesIgnoresServices) {
  ProgramFactory factory =
      MakeProgramFactory("q", 1, [](const Dataset&) -> Result<Row> {
        return Row{5.0};
      });
  Dataset data = Dataset::FromColumn({1}).value();
  EXPECT_EQ(factory()->RunWithServices(data, nullptr).value(), (Row{5.0}));
}

}  // namespace
}  // namespace gupt
