#include "exec/chamber_pool.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "exec/chamber.h"
#include "exec/program.h"

namespace gupt {
namespace {

using std::chrono::milliseconds;

Dataset OneColumn(std::vector<double> values) {
  return Dataset::FromColumn(values).value();
}

ProgramFactory SumFactory() {
  return MakeProgramFactory("sum", 1, [](const Dataset& block) -> Result<Row> {
    double sum = 0.0;
    const double* col = block.col(0);
    for (std::size_t r = 0; r < block.num_rows(); ++r) sum += col[r];
    return Row{sum};
  });
}

/// Resolver covering every behaviour the protocol must carry: a clean
/// program, a wrong-arity program, a failing program, and a stalling one.
ProgramResolver TestResolver() {
  return [](const std::string& token) -> Result<ProgramFactory> {
    if (token == "sum") return SumFactory();
    if (token == "pair") {
      return MakeProgramFactory("pair", 2, [](const Dataset&) -> Result<Row> {
        return Row{1.0, 2.0};
      });
    }
    if (token == "fails") {
      return MakeProgramFactory("fails", 1, [](const Dataset&) -> Result<Row> {
        return Status::NumericalError("synthetic program failure");
      });
    }
    if (token == "stall") {
      return MakeProgramFactory("stall", 1, [](const Dataset&) -> Result<Row> {
        std::this_thread::sleep_for(milliseconds(400));
        return Row{1.0};
      });
    }
    return Status::InvalidArgument("unknown token: " + token);
  };
}

TEST(ChamberPoolTest, RunsResolvedProgramOnPooledWorker) {
  ChamberPool pool(ChamberPolicy{}, 2);
  pool.SetProgramResolver(TestResolver());
  ASSERT_TRUE(pool.Start().ok());
  Dataset data = OneColumn({1, 2, 3});
  auto run = pool.Execute("sum", data.view(), Row{0.0});
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{6.0}));
  EXPECT_TRUE(run->program_status.ok());
  ChamberPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.spawned, 2u);
  EXPECT_EQ(stats.leases, 1u);
  EXPECT_EQ(stats.resets, 1u);
  EXPECT_EQ(stats.respawns, 0u);
  EXPECT_GT(stats.shipped_bytes, 3 * sizeof(double));
}

TEST(ChamberPoolTest, OutputMatchesInProcessChamberBitForBit) {
  // Same deterministic program, same block: the pooled answer must be the
  // in-process chamber's answer exactly (the golden pipeline test pins the
  // same property end to end).
  Dataset data = OneColumn({0.1, 0.2, 0.30000000000000004, 17.25});
  ExecutionChamber chamber{ChamberPolicy{}};
  auto direct = chamber.Execute(SumFactory(), data, Row{0.0});
  ASSERT_TRUE(direct.ok());

  ChamberPool pool(ChamberPolicy{}, 1);
  pool.SetProgramResolver(TestResolver());
  ASSERT_TRUE(pool.Start().ok());
  auto pooled = pool.Execute("sum", data.view(), Row{0.0});
  ASSERT_TRUE(pooled.ok());
  ASSERT_EQ(pooled->output.size(), direct->output.size());
  EXPECT_EQ(pooled->output[0], direct->output[0]);
}

TEST(ChamberPoolTest, OneWorkerIsReusedNotRespawned) {
  ChamberPool pool(ChamberPolicy{}, 1);
  pool.SetProgramResolver(TestResolver());
  ASSERT_TRUE(pool.Start().ok());
  Dataset data = OneColumn({2, 3});
  for (int i = 0; i < 5; ++i) {
    auto run = pool.Execute("sum", data.view(), Row{0.0});
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->output, (Row{5.0}));
  }
  ChamberPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.spawned, 1u);  // forked once, ever
  EXPECT_EQ(stats.leases, 5u);
  EXPECT_EQ(stats.resets, 5u);
  EXPECT_EQ(stats.respawns, 0u);
  EXPECT_EQ(stats.workers_alive, 1u);
}

TEST(ChamberPoolTest, ProgramErrorSubstitutesFallback) {
  ChamberPool pool(ChamberPolicy{}, 1);
  pool.SetProgramResolver(TestResolver());
  ASSERT_TRUE(pool.Start().ok());
  Dataset data = OneColumn({1});
  auto run = pool.Execute("fails", data.view(), Row{0.5});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{0.5}));
  EXPECT_EQ(run->program_status.code(), StatusCode::kNumericalError);
  // A clean error frame is a healthy worker: reset, not discarded.
  EXPECT_EQ(pool.Stats().resets, 1u);
}

TEST(ChamberPoolTest, WrongArityIsAPolicyViolationFallback) {
  ChamberPool pool(ChamberPolicy{}, 1);
  pool.SetProgramResolver(TestResolver());
  ASSERT_TRUE(pool.Start().ok());
  Dataset data = OneColumn({1});
  auto run = pool.Execute("pair", data.view(), Row{0.25});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{0.25}));
  EXPECT_EQ(run->program_status.code(), StatusCode::kPolicyViolation);
}

TEST(ChamberPoolTest, UnresolvableTokenFallsBackWithInternalStatus) {
  ChamberPool pool(ChamberPolicy{}, 1);
  pool.SetProgramResolver(TestResolver());
  ASSERT_TRUE(pool.Start().ok());
  Dataset data = OneColumn({1});
  auto run = pool.Execute("no_such_program", data.view(), Row{0.75});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{0.75}));
  EXPECT_EQ(run->program_status.code(), StatusCode::kInternal);
}

TEST(ChamberPoolTest, DeadlineKillsTheWorkerAndRespawnsLazily) {
  ChamberPolicy policy;
  policy.deadline = std::chrono::microseconds(30000);  // 30ms vs 400ms stall
  ChamberPool pool(policy, 1);
  pool.SetProgramResolver(TestResolver());
  ASSERT_TRUE(pool.Start().ok());
  Dataset data = OneColumn({1});
  auto run = pool.Execute("stall", data.view(), Row{9.0});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->deadline_exceeded);
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{9.0}));
  EXPECT_EQ(pool.Stats().workers_alive, 0u);  // overrunner was SIGKILLed

  // The next lease revives the slot and the pool keeps answering.
  auto next = pool.Execute("sum", data.view(), Row{0.0});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->output, (Row{1.0}));
  ChamberPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.respawns, 1u);
  EXPECT_EQ(stats.workers_alive, 1u);
}

TEST(ChamberPoolTest, PadToDeadlineStretchesElapsed) {
  ChamberPolicy policy;
  policy.deadline = std::chrono::microseconds(50000);  // 50ms
  policy.pad_to_deadline = true;
  ChamberPool pool(policy, 1);
  pool.SetProgramResolver(TestResolver());
  ASSERT_TRUE(pool.Start().ok());
  Dataset data = OneColumn({1, 2});
  auto run = pool.Execute("sum", data.view(), Row{0.0});
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->used_fallback);
  EXPECT_GE(run->elapsed, std::chrono::nanoseconds(policy.deadline));
}

TEST(ChamberPoolTest, ReportsWorkerRusage) {
  ChamberPool pool(ChamberPolicy{}, 1);
  pool.SetProgramResolver(TestResolver());
  ASSERT_TRUE(pool.Start().ok());
  std::vector<double> values(50000, 1.0);
  Dataset data = OneColumn(values);
  auto run = pool.Execute("sum", data.view(), Row{0.0});
  ASSERT_TRUE(run.ok());
  EXPECT_GE(run->child_user_cpu_ns + run->child_sys_cpu_ns, 0);
  EXPECT_GT(run->child_max_rss_kb, 0);
}

TEST(ChamberPoolTest, RejectsCallerBugs) {
  ChamberPool pool(ChamberPolicy{}, 1);
  pool.SetProgramResolver(TestResolver());
  Dataset data = OneColumn({1});
  // Not started yet.
  EXPECT_FALSE(pool.Execute("sum", data.view(), Row{0.0}).ok());
  ASSERT_TRUE(pool.Start().ok());
  // Empty fallback.
  EXPECT_FALSE(pool.Execute("sum", data.view(), Row{}).ok());
  // Double start.
  EXPECT_FALSE(pool.Start().ok());
}

TEST(ChamberPoolTest, ConcurrentLeasesShareTwoWorkers) {
  ChamberPool pool(ChamberPolicy{}, 2);
  pool.SetProgramResolver(TestResolver());
  ASSERT_TRUE(pool.Start().ok());
  Dataset data = OneColumn({1, 2, 3, 4});
  std::vector<std::thread> threads;
  std::vector<int> ok_flags(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 4; ++i) {
        auto run = pool.Execute("sum", data.view(), Row{0.0});
        if (!run.ok() || run->output != Row{10.0}) return;
      }
      ok_flags[t] = 1;
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(ok_flags[t], 1) << "thread " << t;
  ChamberPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.leases, 32u);
  EXPECT_EQ(stats.spawned, 2u);
  EXPECT_EQ(stats.respawns, 0u);
}

TEST(ChamberPoolTest, ShutdownIsIdempotentAndStopsLeasing) {
  ChamberPool pool(ChamberPolicy{}, 2);
  pool.SetProgramResolver(TestResolver());
  ASSERT_TRUE(pool.Start().ok());
  pool.Shutdown();
  pool.Shutdown();
  EXPECT_EQ(pool.Stats().workers_alive, 0u);
  Dataset data = OneColumn({1});
  EXPECT_FALSE(pool.Execute("sum", data.view(), Row{0.0}).ok());
}

}  // namespace
}  // namespace gupt
