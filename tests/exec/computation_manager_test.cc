#include "exec/computation_manager.h"

#include <gtest/gtest.h>

#include <atomic>

#include "common/vec.h"

namespace gupt {
namespace {

Dataset Counting(std::size_t n) {
  std::vector<Row> rows;
  for (std::size_t i = 0; i < n; ++i) rows.push_back({static_cast<double>(i)});
  return Dataset::Create(std::move(rows)).value();
}

ProgramFactory BlockMean() {
  return MakeProgramFactory("block_mean", 1,
                            [](const Dataset& block) -> Result<Row> {
                              GUPT_ASSIGN_OR_RETURN(auto col, block.Column(0));
                              return Row{stats::Mean(col)};
                            });
}

BlockPlan SequentialPlan(std::size_t n, std::size_t num_blocks) {
  BlockPlan plan;
  plan.blocks.resize(num_blocks);
  for (std::size_t i = 0; i < n; ++i) {
    plan.blocks[i % num_blocks].push_back(i);
  }
  return plan;
}

TEST(ComputationManagerTest, SequentialExecutesEveryBlock) {
  ComputationManager manager(nullptr, ChamberPolicy{});
  Dataset data = Counting(20);
  auto report = manager.ExecuteOnBlocks(BlockMean(), data,
                                        SequentialPlan(20, 4), Row{0.0});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->runs.size(), 4u);
  EXPECT_EQ(report->fallback_count, 0u);
  // Block means average to the global mean for a balanced round-robin deal.
  std::vector<Row> outputs = report->Outputs();
  double sum = 0.0;
  for (const Row& o : outputs) sum += o[0];
  EXPECT_NEAR(sum / 4.0, 9.5, 1e-9);
}

TEST(ComputationManagerTest, ParallelMatchesSequentialOutputs) {
  Dataset data = Counting(100);
  BlockPlan plan = SequentialPlan(100, 10);
  ComputationManager sequential(nullptr, ChamberPolicy{});
  ThreadPool pool(4);
  ComputationManager parallel(&pool, ChamberPolicy{});
  auto a = sequential.ExecuteOnBlocks(BlockMean(), data, plan, Row{0.0});
  auto b = parallel.ExecuteOnBlocks(BlockMean(), data, plan, Row{0.0});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same plan, deterministic program: identical per-block outputs in order.
  EXPECT_EQ(a->Outputs(), b->Outputs());
}

TEST(ComputationManagerTest, CountsFallbacks) {
  // Blocks whose first value is even fail; the rest succeed.
  auto flaky = MakeProgramFactory(
      "flaky", 1, [](const Dataset& block) -> Result<Row> {
        if (static_cast<int>(block.row(0)[0]) % 2 == 0) {
          return Status::NumericalError("even block");
        }
        return Row{1.0};
      });
  Dataset data = Counting(4);
  BlockPlan plan;
  plan.blocks = {{0}, {1}, {2}, {3}};
  ComputationManager manager(nullptr, ChamberPolicy{});
  auto report = manager.ExecuteOnBlocks(flaky, data, plan, Row{-1.0});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->fallback_count, 2u);
  EXPECT_EQ(report->Outputs()[0], (Row{-1.0}));
  EXPECT_EQ(report->Outputs()[1], (Row{1.0}));
}

TEST(ComputationManagerTest, EmptyPlanRejected) {
  ComputationManager manager(nullptr, ChamberPolicy{});
  EXPECT_FALSE(
      manager.ExecuteOnBlocks(BlockMean(), Counting(5), BlockPlan{}, Row{0.0})
          .ok());
}

TEST(ComputationManagerTest, BadBlockIndexRejectedBeforeExecution) {
  std::atomic<int> executions{0};
  auto counting_program = MakeProgramFactory(
      "counting", 1, [&executions](const Dataset&) -> Result<Row> {
        executions.fetch_add(1);
        return Row{0.0};
      });
  BlockPlan plan;
  plan.blocks = {{0}, {99}};  // 99 is out of range for 5 rows
  ComputationManager manager(nullptr, ChamberPolicy{});
  EXPECT_FALSE(
      manager.ExecuteOnBlocks(counting_program, Counting(5), plan, Row{0.0})
          .ok());
  EXPECT_EQ(executions.load(), 0);  // no untrusted code ran
}

TEST(ComputationManagerTest, ExecuteOnceRunsWholeDataset) {
  ComputationManager manager(nullptr, ChamberPolicy{});
  auto run = manager.ExecuteOnce(BlockMean(), Counting(11), Row{0.0});
  ASSERT_TRUE(run.ok());
  EXPECT_NEAR(run->output[0], 5.0, 1e-9);
}

TEST(ComputationManagerTest, AggregatesPolicyViolationCounts) {
  class Noisy final : public AnalysisProgram {
   public:
    Result<Row> Run(const Dataset&) override { return Row{0.0}; }
    Result<Row> RunWithServices(const Dataset&,
                                ChamberServices* services) override {
      (void)services->OpenNetworkConnection("x");
      return Row{0.0};
    }
    std::size_t output_dims() const override { return 1; }
    std::string name() const override { return "noisy"; }
  };
  ProgramFactory factory = [] { return std::make_unique<Noisy>(); };
  BlockPlan plan;
  plan.blocks = {{0}, {1}, {2}};
  ComputationManager manager(nullptr, ChamberPolicy{});
  auto report = manager.ExecuteOnBlocks(factory, Counting(3), plan, Row{0.0});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->policy_violation_count, 3u);
}

}  // namespace
}  // namespace gupt
