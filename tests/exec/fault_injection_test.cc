// Fault-injection coverage for the chamber stack: every failpoint in the
// exec layer is driven through its full blast radius — injected program
// faults degrade to the clamped fallback (the DP-preserving path of §4.1 /
// §6.2), injected latency consumes the real deadline, and infrastructure
// faults surface as errors rather than silent data loss.

#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/queries.h"
#include "common/rng.h"
#include "exec/chamber.h"
#include "exec/computation_manager.h"
#include "exec/process_chamber.h"
#include "testing/failpoints/failpoints.h"

namespace gupt {
namespace {

using failpoints::Action;
using failpoints::CompiledIn;
using failpoints::Config;
using failpoints::ScopedFailpoint;

Dataset OneColumn(std::vector<double> values) {
  return Dataset::FromColumn(values).value();
}

ProgramFactory Constant(double value) {
  return MakeProgramFactory("const", 1, [value](const Dataset&) -> Result<Row> {
    return Row{value};
  });
}

Config FireAlways(Action action = Action::kError) {
  Config config;
  config.every_nth = 1;
  config.action = action;
  return config;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CompiledIn()) {
      GTEST_SKIP() << "built with GUPT_FAILPOINTS_ENABLED=OFF";
    }
    failpoints::DisarmAll();
  }
  void TearDown() override { failpoints::DisarmAll(); }
};

TEST_F(FaultInjectionTest, ChamberEntryFaultFailsTheRun) {
  ScopedFailpoint fp("exec.chamber.entry", FireAlways());
  ExecutionChamber chamber{ChamberPolicy{}};
  auto run = chamber.Execute(Constant(1.0), OneColumn({1, 2}), Row{0.0});
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
  EXPECT_TRUE(failpoints::IsInjected(run.status()));
  EXPECT_EQ(fp.fires(), 1u);
}

TEST_F(FaultInjectionTest, ChamberProgramFaultFallsBackInsideRange) {
  // An injected program fault must take the §6.2 path: the output is the
  // data-independent fallback, never garbage.
  ScopedFailpoint fp("exec.chamber.program", FireAlways());
  ExecutionChamber chamber{ChamberPolicy{}};
  auto run = chamber.Execute(Constant(99.0), OneColumn({1, 2}), Row{0.5});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{0.5}));
  EXPECT_EQ(run->program_status.code(), StatusCode::kPolicyViolation);
  EXPECT_TRUE(failpoints::IsInjected(run->program_status));
}

TEST_F(FaultInjectionTest, ChamberCrashActionAlsoFallsBack) {
  // The in-thread chamber cannot crash safely; kCrash degrades to the
  // same fallback path.
  ScopedFailpoint fp("exec.chamber.program", FireAlways(Action::kCrash));
  ExecutionChamber chamber{ChamberPolicy{}};
  auto run = chamber.Execute(Constant(99.0), OneColumn({1}), Row{0.25});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{0.25}));
}

TEST_F(FaultInjectionTest, InjectedLatencyTripsTheDeadline) {
  // The delay fires on the chamber's worker thread, so it consumes the
  // real deadline budget exactly like a hung program.
  Config config = FireAlways(Action::kNoop);
  config.delay = std::chrono::milliseconds(200);
  ScopedFailpoint fp("exec.chamber.program", config);
  ChamberPolicy policy;
  policy.deadline = std::chrono::microseconds(20000);  // 20ms
  ExecutionChamber chamber{policy};
  auto run = chamber.Execute(Constant(1.0), OneColumn({1}), Row{7.0});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->deadline_exceeded);
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{7.0}));
  EXPECT_EQ(run->program_status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FaultInjectionTest, ChamberExitFaultFailsAfterTheProgramRan) {
  ScopedFailpoint fp("exec.chamber.exit", FireAlways());
  ExecutionChamber chamber{ChamberPolicy{}};
  auto run = chamber.Execute(Constant(1.0), OneColumn({1}), Row{0.0});
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(failpoints::IsInjected(run.status()));
}

TEST_F(FaultInjectionTest, ProcessChamberEntryFaultFailsTheRun) {
  ScopedFailpoint fp("exec.process_chamber.entry", FireAlways());
  ProcessChamber chamber{ChamberPolicy{}};
  auto run = chamber.Execute(Constant(1.0), OneColumn({1}), Row{0.0});
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(failpoints::IsInjected(run.status()));
}

TEST_F(FaultInjectionTest, ChildCrashIsObservedAsEofAndFallsBack) {
  // The child _exits before writing a frame byte: the parent sees EOF,
  // exactly like a real SIGSEGV, and substitutes the fallback.
  ScopedFailpoint fp("exec.process_chamber.child",
                     FireAlways(Action::kCrash));
  ProcessChamber chamber{ChamberPolicy{}};
  auto run = chamber.Execute(Constant(99.0), OneColumn({1, 2}), Row{0.5});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{0.5}));
  EXPECT_EQ(run->program_status.code(), StatusCode::kPolicyViolation);
  EXPECT_EQ(fp.fires(), 1u);
}

TEST_F(FaultInjectionTest, ChildErrorReportsAProgramErrorFrame) {
  ScopedFailpoint fp("exec.process_chamber.child", FireAlways());
  ProcessChamber chamber{ChamberPolicy{}};
  auto run = chamber.Execute(Constant(99.0), OneColumn({1}), Row{0.5});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{0.5}));
  EXPECT_EQ(run->program_status.code(), StatusCode::kNumericalError);
}

TEST_F(FaultInjectionTest, ChildDelayTripsTheProcessDeadline) {
  Config config = FireAlways(Action::kNoop);
  config.delay = std::chrono::milliseconds(300);
  ScopedFailpoint fp("exec.process_chamber.child", config);
  ChamberPolicy policy;
  policy.process_isolation = true;
  policy.deadline = std::chrono::microseconds(30000);  // 30ms
  ProcessChamber chamber{policy};
  auto run = chamber.Execute(Constant(1.0), OneColumn({1}), Row{3.0});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->deadline_exceeded);
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{3.0}));
}

TEST_F(FaultInjectionTest, ChildEveryNthIsDrawnInTheParent) {
  // Determinism across forks: the verdict is drawn pre-fork by the
  // parent, so every-2nd means runs 2 and 4 crash — exactly.
  Config config = FireAlways(Action::kCrash);
  config.every_nth = 2;
  ScopedFailpoint fp("exec.process_chamber.child", config);
  ProcessChamber chamber{ChamberPolicy{}};
  std::vector<bool> fell_back;
  for (int i = 0; i < 4; ++i) {
    auto run = chamber.Execute(Constant(8.0), OneColumn({1}), Row{0.0});
    ASSERT_TRUE(run.ok());
    fell_back.push_back(run->used_fallback);
  }
  EXPECT_EQ(fell_back, (std::vector<bool>{false, true, false, true}));
  EXPECT_EQ(fp.fires(), 2u);
  EXPECT_EQ(fp.evaluations(), 4u);
}

TEST_F(FaultInjectionTest, ManagerBlockFaultFailsTheWholeFanOut) {
  // An injected manager fault is infrastructure, not program misbehaviour:
  // it must error the fan-out rather than silently substitute data.
  Config config;
  config.every_nth = 3;
  ScopedFailpoint fp("exec.computation_manager.block", config);
  ComputationManager manager(nullptr, ChamberPolicy{});
  Rng rng(1);
  Dataset data = OneColumn({1, 2, 3, 4, 5, 6, 7, 8});
  BlockPlan plan = PartitionDisjoint(8, 4, &rng).value();
  auto report =
      manager.ExecuteOnBlocks(Constant(1.0), data, plan, Row{0.0});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
  EXPECT_TRUE(failpoints::IsInjected(report.status()));
  EXPECT_EQ(fp.evaluations(), 4u);
  EXPECT_EQ(fp.fires(), 1u);
}

TEST_F(FaultInjectionTest, EveryFourthBlockCrashYieldsExactFallbackCount) {
  // 8 blocks, every-4th program fault => exactly 2 fallbacks, and every
  // block output is either the true constant or the fallback — both
  // inside the clamp range. This is the per-fanout version of the
  // mechanism-level guarantee asserted end-to-end in
  // tests/core/pipeline_fault_test.cc.
  Config config;
  config.every_nth = 4;
  ScopedFailpoint fp("exec.chamber.program", config);
  ComputationManager manager(nullptr, ChamberPolicy{});
  Rng rng(2);
  std::vector<double> values(64, 3.0);
  Dataset data = OneColumn(values);
  BlockPlan plan = PartitionDisjoint(64, 8, &rng).value();
  const Row fallback{0.5};
  auto report = manager.ExecuteOnBlocks(Constant(3.0), data, plan, fallback);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->fallback_count, 2u);
  EXPECT_EQ(fp.fires(), 2u);
  EXPECT_EQ(fp.evaluations(), 8u);
  std::size_t fallbacks_seen = 0;
  for (const ChamberRun& run : report->runs) {
    ASSERT_EQ(run.output.size(), 1u);
    EXPECT_TRUE(run.output[0] == 3.0 || run.output[0] == 0.5)
        << "block output escaped the known-value set: " << run.output[0];
    if (run.used_fallback) ++fallbacks_seen;
  }
  EXPECT_EQ(fallbacks_seen, 2u);
}

}  // namespace
}  // namespace gupt
