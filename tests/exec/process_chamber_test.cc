// Tests for the fork-based process chamber: true OS-level isolation.

#include "exec/process_chamber.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>

namespace gupt {
namespace {

Dataset OneColumn(std::vector<double> values) {
  return Dataset::FromColumn(values).value();
}

TEST(ProcessChamberTest, RunsProgramAndReturnsOutput) {
  ProcessChamber chamber{ChamberPolicy{}};
  auto program = MakeProgramFactory(
      "sum", 1, [](const Dataset& block) -> Result<Row> {
        double sum = 0.0;
        const double* col = block.col(0);
        for (std::size_t r = 0; r < block.num_rows(); ++r) sum += col[r];
        return Row{sum};
      });
  auto run = chamber.Execute(program, OneColumn({1, 2, 3}), Row{0.0});
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{6.0}));
}

TEST(ProcessChamberTest, MultiDimensionalOutput) {
  ProcessChamber chamber{ChamberPolicy{}};
  auto program = MakeProgramFactory(
      "pair", 2, [](const Dataset& block) -> Result<Row> {
        return Row{block.row(0)[0], -block.row(0)[0]};
      });
  auto run = chamber.Execute(program, OneColumn({5.0}), Row{0.0, 0.0});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->output, (Row{5.0, -5.0}));
}

TEST(ProcessChamberTest, ProgramErrorFallsBack) {
  ProcessChamber chamber{ChamberPolicy{}};
  auto failing = MakeProgramFactory("fail", 1,
                                    [](const Dataset&) -> Result<Row> {
                                      return Status::NumericalError("bad");
                                    });
  auto run = chamber.Execute(failing, OneColumn({1}), Row{7.0});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{7.0}));
}

TEST(ProcessChamberTest, WrongArityFallsBack) {
  ProcessChamber chamber{ChamberPolicy{}};
  auto liar = MakeProgramFactory("liar", 2, [](const Dataset&) -> Result<Row> {
    return Row{1.0};
  });
  auto run = chamber.Execute(liar, OneColumn({1}), Row{0.0, 0.0});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->used_fallback);
}

TEST(ProcessChamberTest, CrashingChildIsContained) {
  // A segfault-equivalent: the child exits abruptly without a frame. The
  // parent must absorb it and fall back — no crash, no zombie.
  ProcessChamber chamber{ChamberPolicy{}};
  auto crasher = MakeProgramFactory("crash", 1,
                                    [](const Dataset&) -> Result<Row> {
                                      std::abort();
                                    });
  auto run = chamber.Execute(crasher, OneColumn({1}), Row{3.0});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->used_fallback);
  EXPECT_EQ(run->output, (Row{3.0}));
  EXPECT_EQ(run->program_status.code(), StatusCode::kPolicyViolation);
}

TEST(ProcessChamberTest, InfiniteLoopIsActuallyKilled) {
  // The in-process chamber can only abandon a runaway thread; the process
  // chamber SIGKILLs the child. A genuinely infinite loop terminates.
  ChamberPolicy policy;
  policy.deadline = std::chrono::microseconds(50000);
  ProcessChamber chamber{policy};
  auto spinner = MakeProgramFactory("spin", 1,
                                    [](const Dataset&) -> Result<Row> {
                                      volatile bool forever = true;
                                      while (forever) {
                                      }
                                      return Row{0.0};
                                    });
  auto start = std::chrono::steady_clock::now();
  auto run = chamber.Execute(spinner, OneColumn({1}), Row{0.25});
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->deadline_exceeded);
  EXPECT_EQ(run->output, (Row{0.25}));
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(ProcessChamberTest, GlobalStateAttackDefeated) {
  // The attack the in-process chamber CANNOT stop: a program accumulating
  // information across blocks via a global. With process isolation every
  // block sees a pristine global.
  static int global_counter = 0;
  auto global_attacker = MakeProgramFactory(
      "global_attacker", 1, [](const Dataset&) -> Result<Row> {
        ++global_counter;  // mutates the CHILD's copy only
        return Row{static_cast<double>(global_counter)};
      });
  ProcessChamber chamber{ChamberPolicy{}};
  for (int i = 0; i < 3; ++i) {
    auto run = chamber.Execute(global_attacker, OneColumn({1}), Row{0.0});
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->output, (Row{1.0})) << "iteration " << i;
  }
  EXPECT_EQ(global_counter, 0);  // the parent's global never moved
}

TEST(ProcessChamberTest, PaddingExtendsObservedDuration) {
  ChamberPolicy policy;
  policy.deadline = std::chrono::microseconds(40000);
  policy.pad_to_deadline = true;
  ProcessChamber chamber{policy};
  auto fast = MakeProgramFactory("fast", 1, [](const Dataset&) -> Result<Row> {
    return Row{1.0};
  });
  auto run = chamber.Execute(fast, OneColumn({1}), Row{0.0});
  ASSERT_TRUE(run.ok());
  EXPECT_GE(run->elapsed, std::chrono::nanoseconds(policy.deadline));
  EXPECT_FALSE(run->used_fallback);
}

TEST(ProcessChamberTest, ViolationCountsCrossTheBoundary) {
  class Exfiltrator final : public AnalysisProgram {
   public:
    Result<Row> Run(const Dataset&) override { return Row{0.0}; }
    Result<Row> RunWithServices(const Dataset&,
                                ChamberServices* services) override {
      (void)services->OpenNetworkConnection("evil");
      (void)services->SendToPeerChamber("peer", "psst");
      return Row{0.0};
    }
    std::size_t output_dims() const override { return 1; }
    std::string name() const override { return "exfil"; }
  };
  ProcessChamber chamber{ChamberPolicy{}};
  ProgramFactory factory = [] { return std::make_unique<Exfiltrator>(); };
  auto run = chamber.Execute(factory, OneColumn({1}), Row{0.0});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->policy_violations, 2u);
}

TEST(ProcessChamberTest, CallerErrorsReported) {
  ProcessChamber chamber{ChamberPolicy{}};
  EXPECT_FALSE(
      chamber.Execute(ProgramFactory{}, OneColumn({1}), Row{0.0}).ok());
  auto program = MakeProgramFactory("p", 1, [](const Dataset&) -> Result<Row> {
    return Row{0.0};
  });
  EXPECT_FALSE(
      chamber.Execute(program, OneColumn({1}), Row{0.0, 0.0}).ok());
}

}  // namespace
}  // namespace gupt
