#include "testing/failpoints/failpoints.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace gupt {
namespace failpoints {
namespace {

class FailpointsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CompiledIn()) {
      GTEST_SKIP() << "built with GUPT_FAILPOINTS_ENABLED=OFF";
    }
    DisarmAll();
  }
  void TearDown() override { DisarmAll(); }
};

TEST_F(FailpointsTest, UnarmedSiteIsSilent) {
  EXPECT_EQ(Eval("testing.never_armed.site"), FireAction::kNone);
  EXPECT_FALSE(IsArmed("testing.never_armed.site"));
  // Unarmed evaluations are not even counted: the fast path must not
  // touch the registry.
  EXPECT_EQ(GetStats("testing.never_armed.site").evaluations, 0u);
}

TEST_F(FailpointsTest, EveryNthFiresDeterministically) {
  Config config;
  config.every_nth = 3;
  config.action = Action::kError;
  ASSERT_TRUE(Arm("testing.unit.every3", config).ok());

  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) {
    fired.push_back(Eval("testing.unit.every3") != FireAction::kNone);
  }
  // Evaluations count from 1: fires at 3, 6, 9.
  std::vector<bool> expected = {false, false, true, false, false,
                                true,  false, false, true, false};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(GetStats("testing.unit.every3").fires, 3u);
  EXPECT_EQ(GetStats("testing.unit.every3").evaluations, 10u);
}

TEST_F(FailpointsTest, EveryNthExactTotalAcrossThreads) {
  Config config;
  config.every_nth = 4;
  ASSERT_TRUE(Arm("testing.unit.mt", config).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::atomic<std::uint64_t> fires{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fires] {
      for (int i = 0; i < kPerThread; ++i) {
        if (Eval("testing.unit.mt") != FireAction::kNone) {
          fires.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Evaluation indices are allocated atomically, so 800 evaluations with
  // every_nth=4 yield exactly 200 fires regardless of interleaving.
  EXPECT_EQ(fires.load(), 200u);
  EXPECT_EQ(GetStats("testing.unit.mt").evaluations, 800u);
  EXPECT_EQ(GetStats("testing.unit.mt").fires, 200u);
}

TEST_F(FailpointsTest, ProbabilityPatternIsSeedReproducible) {
  Config config;
  config.every_nth = 0;
  config.probability = 0.3;
  config.seed = 42;

  auto draw_pattern = [&config] {
    EXPECT_TRUE(Arm("testing.unit.prob", config).ok());  // resets the stream
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) {
      pattern.push_back(Eval("testing.unit.prob") != FireAction::kNone);
    }
    return pattern;
  };

  std::vector<bool> first = draw_pattern();
  std::vector<bool> second = draw_pattern();
  EXPECT_EQ(first, second);

  // A different seed gives a different pattern (64 i.i.d. Bernoulli(0.3)
  // draws collide with probability ~2^-56).
  config.seed = 43;
  EXPECT_NE(draw_pattern(), first);

  // And the same seed on a different name draws from an independent
  // stream (names are hashed into the stream selector).
  config.seed = 42;
  ASSERT_TRUE(Arm("testing.unit.prob_other", config).ok());
  std::vector<bool> other;
  for (int i = 0; i < 64; ++i) {
    other.push_back(Eval("testing.unit.prob_other") != FireAction::kNone);
  }
  EXPECT_NE(other, first);
}

TEST_F(FailpointsTest, MaxFiresStopsFiring) {
  Config config;
  config.every_nth = 1;
  config.max_fires = 2;
  ASSERT_TRUE(Arm("testing.unit.limited", config).ok());
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (Eval("testing.unit.limited") != FireAction::kNone) ++fires;
  }
  EXPECT_EQ(fires, 2);
}

TEST_F(FailpointsTest, DelayIsAppliedInEval) {
  Config config;
  config.action = Action::kNoop;
  config.delay = std::chrono::milliseconds(50);
  ASSERT_TRUE(Arm("testing.unit.delay", config).ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(Eval("testing.unit.delay"), FireAction::kNone);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(50));
  // EvalDetailed must NOT sleep: it hands the delay to the caller.
  const auto start2 = std::chrono::steady_clock::now();
  Outcome outcome = EvalDetailed("testing.unit.delay");
  const auto elapsed2 = std::chrono::steady_clock::now() - start2;
  EXPECT_TRUE(outcome.fired);
  EXPECT_EQ(outcome.delay, std::chrono::microseconds(50000));
  EXPECT_LT(elapsed2, std::chrono::milliseconds(40));
}

TEST_F(FailpointsTest, ScopedGuardArmsAndRestores) {
  {
    ScopedFailpoint guard("testing.unit.scoped", Config{});
    EXPECT_TRUE(IsArmed("testing.unit.scoped"));
    EXPECT_NE(Eval("testing.unit.scoped"), FireAction::kNone);
    EXPECT_EQ(guard.fires(), 1u);
    EXPECT_EQ(guard.evaluations(), 1u);
  }
  EXPECT_FALSE(IsArmed("testing.unit.scoped"));
  EXPECT_EQ(Eval("testing.unit.scoped"), FireAction::kNone);
}

TEST_F(FailpointsTest, ScopedGuardRestoresPreviousConfig) {
  Config outer;
  outer.every_nth = 2;
  ASSERT_TRUE(Arm("testing.unit.nested", outer).ok());
  {
    Config inner;
    inner.every_nth = 1;
    ScopedFailpoint guard("testing.unit.nested", inner);
    // Inner config: fires on every evaluation.
    EXPECT_NE(Eval("testing.unit.nested"), FireAction::kNone);
    EXPECT_NE(Eval("testing.unit.nested"), FireAction::kNone);
  }
  // Outer config restored: every-2nd, with the cumulative evaluation
  // counter at 2, so the next (3rd) does not fire and the 4th does.
  EXPECT_TRUE(IsArmed("testing.unit.nested"));
  EXPECT_EQ(Eval("testing.unit.nested"), FireAction::kNone);
  EXPECT_NE(Eval("testing.unit.nested"), FireAction::kNone);
}

TEST_F(FailpointsTest, ArmFromSpecParsesActionsAndOptions) {
  ASSERT_TRUE(ArmFromSpec("testing.unit.spec1=error,every=5").ok());
  EXPECT_TRUE(IsArmed("testing.unit.spec1"));

  ASSERT_TRUE(
      ArmFromSpec("testing.unit.spec2=crash,p=0.25,seed=7,limit=3").ok());
  EXPECT_TRUE(IsArmed("testing.unit.spec2"));

  ASSERT_TRUE(ArmFromSpec("testing.unit.spec3=delay,delay_us=1000").ok());
  Outcome outcome = EvalDetailed("testing.unit.spec3");
  EXPECT_TRUE(outcome.fired);
  EXPECT_EQ(outcome.action, FireAction::kNone);  // delay = noop + latency
  EXPECT_EQ(outcome.delay, std::chrono::microseconds(1000));

  ASSERT_TRUE(ArmFromSpec("testing.unit.spec4=noop").ok());
  EXPECT_EQ(Eval("testing.unit.spec4"), FireAction::kNone);
  EXPECT_EQ(GetStats("testing.unit.spec4").fires, 1u);
}

TEST_F(FailpointsTest, ArmFromSpecRejectsMalformedInput) {
  EXPECT_FALSE(ArmFromSpec("no_equals_sign").ok());
  EXPECT_FALSE(ArmFromSpec("=error").ok());
  EXPECT_FALSE(ArmFromSpec("testing.unit.bad=explode").ok());
  EXPECT_FALSE(ArmFromSpec("testing.unit.bad=error,every=0").ok());
  EXPECT_FALSE(ArmFromSpec("testing.unit.bad=error,p=1.5").ok());
  EXPECT_FALSE(ArmFromSpec("testing.unit.bad=error,every=abc").ok());
  EXPECT_FALSE(ArmFromSpec("testing.unit.bad=error,bogus=1").ok());
  EXPECT_FALSE(ArmFromSpec("testing.unit.bad=delay").ok());  // no delay_us
  EXPECT_FALSE(IsArmed("testing.unit.bad"));
}

TEST_F(FailpointsTest, ArmFromListArmsAllUntilFirstError) {
  Status status = ArmFromList(
      "testing.unit.list1=error;testing.unit.list2=noop,every=2;;"
      "testing.unit.list3=bogus_action;testing.unit.list4=error");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(IsArmed("testing.unit.list1"));
  EXPECT_TRUE(IsArmed("testing.unit.list2"));
  EXPECT_FALSE(IsArmed("testing.unit.list3"));
  // Parsing stops at the malformed spec.
  EXPECT_FALSE(IsArmed("testing.unit.list4"));

  EXPECT_TRUE(ArmFromList("").ok());
}

TEST_F(FailpointsTest, CountersExportThroughMetricsRegistry) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Get();
  obs::Counter* evals = metrics.GetCounter(
      "gupt_failpoint_evaluations_total", "",
      {{"name", "testing.unit.metrics"}});
  obs::Counter* fires = metrics.GetCounter(
      "gupt_failpoint_fires_total", "", {{"name", "testing.unit.metrics"}});
  obs::Gauge* armed = metrics.GetGauge("gupt_failpoint_armed_count", "");
  const double evals_before = evals->Value();
  const double fires_before = fires->Value();

  Config config;
  config.every_nth = 2;
  ASSERT_TRUE(Arm("testing.unit.metrics", config).ok());
  EXPECT_GE(armed->Value(), 1.0);
  for (int i = 0; i < 4; ++i) (void)Eval("testing.unit.metrics");
  EXPECT_DOUBLE_EQ(evals->Value() - evals_before, 4.0);
  EXPECT_DOUBLE_EQ(fires->Value() - fires_before, 2.0);

  DisarmAll();
  EXPECT_DOUBLE_EQ(armed->Value(), 0.0);
}

TEST_F(FailpointsTest, KnownNamesListsEverSeenNames) {
  ASSERT_TRUE(Arm("testing.unit.known_a", Config{}).ok());
  ASSERT_TRUE(Arm("testing.unit.known_b", Config{}).ok());
  Disarm("testing.unit.known_a");
  std::vector<std::string> names = KnownNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "testing.unit.known_a"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "testing.unit.known_b"),
            names.end());
}

TEST_F(FailpointsTest, InjectedStatusIsRecognizable) {
  Status injected = Status::Internal(InjectedMessage("testing.unit.tag"));
  EXPECT_TRUE(IsInjected(injected));
  EXPECT_FALSE(IsInjected(Status::OK()));
  EXPECT_FALSE(IsInjected(Status::Internal("ordinary failure")));
}

TEST_F(FailpointsTest, ArmValidatesConfig) {
  Config bad_p;
  bad_p.every_nth = 0;
  bad_p.probability = 2.0;
  EXPECT_FALSE(Arm("testing.unit.validate", bad_p).ok());
  EXPECT_FALSE(Arm("", Config{}).ok());
}

TEST(FailpointsCompiledOut, MacrosAreNoOps) {
  if (CompiledIn()) {
    GTEST_SKIP() << "covered by FailpointsTest when compiled in";
  }
  // With GUPT_FAILPOINTS_ENABLED=OFF nothing can arm a site.
  GUPT_FAILPOINT("testing.unit.disabled");
  EXPECT_EQ(EvalDetailed("testing.unit.disabled").action, FireAction::kNone);
}

}  // namespace
}  // namespace failpoints
}  // namespace gupt
