// Statistical assertion helpers for GUPT's test suites.
//
// DP mechanisms cannot be validated by exact equality: the released value
// is deliberately random. What CAN be asserted is distributional — the
// noise matches Lap(|max-min|/(l*epsilon)), the percentile mechanism's
// output follows its exactly computable CDF, a resampled partition's
// variance is no worse than the disjoint one. This library packages the
// two classical goodness-of-fit tests those assertions need:
//
//   * one-sample Kolmogorov-Smirnov against an arbitrary CDF, and the
//     two-sample variant, with the asymptotic critical values
//     c(alpha)/sqrt(n) (Smirnov 1948);
//   * Pearson chi-squared against expected bin counts, with the
//     Wilson-Hilferty quantile approximation for critical values.
//
// Tests are expected to PRE-REGISTER the pair (seed, alpha): sampling is
// deterministic via common/rng, so a test either always passes or always
// fails for a given seed — alpha is the a-priori probability that this
// seed was unlucky, documented at the assertion site. Convention in this
// repo: alpha <= 1e-6 for suites that run on every commit (roughly one
// spurious failure per million seed choices), with the chosen seed
// checked in after observing a pass.
//
// This is a TEST-SIDE library (tests/statutil/): production code must not
// link it, and the layering lint does not see it.

#ifndef GUPT_TESTS_STATUTIL_STATUTIL_H_
#define GUPT_TESTS_STATUTIL_STATUTIL_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace gupt {
namespace statutil {

/// Cumulative distribution function, must be monotone on the sample range.
using Cdf = std::function<double(double)>;

/// Outcome of a goodness-of-fit test. `reject` means the samples are
/// inconsistent with the hypothesised distribution at level alpha.
struct GofResult {
  double statistic = 0.0;
  double critical_value = 0.0;
  bool reject = false;
  /// Human-readable one-liner for EXPECT messages.
  std::string Describe() const;
};

/// sup_x |F_n(x) - F(x)| for the empirical CDF of `samples` (copied and
/// sorted internally) against `cdf`.
double KsStatistic(std::vector<double> samples, const Cdf& cdf);

/// Two-sample KS statistic sup_x |F_n(x) - G_m(x)|.
double KsStatisticTwoSample(std::vector<double> a, std::vector<double> b);

/// Smirnov asymptotic critical value for the one-sample statistic:
/// sqrt(-ln(alpha/2)/2) / sqrt(n). Requires alpha in (0, 1), n >= 1.
/// Accurate for n >= ~35; all suites here use n in the thousands.
double KsCriticalValue(std::size_t n, double alpha);

/// Two-sample critical value: sqrt(-ln(alpha/2)/2 * (n+m)/(n*m)).
double KsCriticalValueTwoSample(std::size_t n, std::size_t m, double alpha);

/// One-sample KS test at level alpha.
GofResult KsTest(std::vector<double> samples, const Cdf& cdf, double alpha);

/// Two-sample KS test at level alpha.
GofResult KsTestTwoSample(std::vector<double> a, std::vector<double> b,
                          double alpha);

/// Pearson statistic sum (O_i - E_i)^2 / E_i. Expected counts must be
/// positive; sizes must match.
double ChiSquaredStatistic(const std::vector<double>& observed,
                           const std::vector<double>& expected);

/// Upper-alpha quantile of chi-squared with `dof` degrees of freedom via
/// the Wilson-Hilferty cube approximation (relative error < 1% for
/// dof >= 3 and the alphas used in tests).
double ChiSquaredCriticalValue(std::size_t dof, double alpha);

/// Chi-squared goodness-of-fit test at level alpha. Degrees of freedom
/// default to bins-1; pass `fitted_params` > 0 when expected counts were
/// estimated from the same data.
GofResult ChiSquaredTest(const std::vector<double>& observed,
                         const std::vector<double>& expected, double alpha,
                         std::size_t fitted_params = 0);

/// Standard normal quantile (inverse CDF) via Acklam's rational
/// approximation; |relative error| < 1.2e-9 on (0, 1).
double NormalQuantile(double p);

/// CDFs of the distributions the suites assert against.
double LaplaceCdf(double x, double location, double scale);
double UniformCdf(double x, double lo, double hi);
double NormalCdf(double x, double mean, double stddev);

}  // namespace statutil
}  // namespace gupt

#endif  // GUPT_TESTS_STATUTIL_STATUTIL_H_
