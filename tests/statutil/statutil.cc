#include "statutil.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace gupt {
namespace statutil {
namespace {

/// sqrt(-ln(alpha/2)/2): the Smirnov asymptotic constant c(alpha).
double SmirnovConstant(double alpha) {
  assert(alpha > 0.0 && alpha < 1.0);
  return std::sqrt(-0.5 * std::log(alpha / 2.0));
}

}  // namespace

std::string GofResult::Describe() const {
  std::ostringstream out;
  out.precision(6);
  out << "statistic=" << statistic << " critical=" << critical_value
      << (reject ? " REJECT" : " ok");
  return out.str();
}

double KsStatistic(std::vector<double> samples, const Cdf& cdf) {
  assert(!samples.empty());
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double sup = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    // The empirical CDF jumps at each order statistic: compare F against
    // both the pre-jump (i/n) and post-jump ((i+1)/n) levels.
    sup = std::max(sup, std::fabs(f - static_cast<double>(i) / n));
    sup = std::max(sup, std::fabs(f - static_cast<double>(i + 1) / n));
  }
  return sup;
}

double KsStatisticTwoSample(std::vector<double> a, std::vector<double> b) {
  assert(!a.empty() && !b.empty());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double sup = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    sup = std::max(sup, std::fabs(static_cast<double>(i) / na -
                                  static_cast<double>(j) / nb));
  }
  return sup;
}

double KsCriticalValue(std::size_t n, double alpha) {
  assert(n > 0);
  return SmirnovConstant(alpha) / std::sqrt(static_cast<double>(n));
}

double KsCriticalValueTwoSample(std::size_t n, std::size_t m, double alpha) {
  assert(n > 0 && m > 0);
  const double nn = static_cast<double>(n);
  const double mm = static_cast<double>(m);
  return SmirnovConstant(alpha) * std::sqrt((nn + mm) / (nn * mm));
}

GofResult KsTest(std::vector<double> samples, const Cdf& cdf, double alpha) {
  GofResult result;
  result.critical_value = KsCriticalValue(samples.size(), alpha);
  result.statistic = KsStatistic(std::move(samples), cdf);
  result.reject = result.statistic > result.critical_value;
  return result;
}

GofResult KsTestTwoSample(std::vector<double> a, std::vector<double> b,
                          double alpha) {
  GofResult result;
  result.critical_value = KsCriticalValueTwoSample(a.size(), b.size(), alpha);
  result.statistic = KsStatisticTwoSample(std::move(a), std::move(b));
  result.reject = result.statistic > result.critical_value;
  return result;
}

double ChiSquaredStatistic(const std::vector<double>& observed,
                           const std::vector<double>& expected) {
  assert(observed.size() == expected.size() && !observed.empty());
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    assert(expected[i] > 0.0);
    const double d = observed[i] - expected[i];
    stat += d * d / expected[i];
  }
  return stat;
}

double ChiSquaredCriticalValue(std::size_t dof, double alpha) {
  assert(dof > 0);
  const double k = static_cast<double>(dof);
  const double z = NormalQuantile(1.0 - alpha);
  const double c = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * c * c * c;
}

GofResult ChiSquaredTest(const std::vector<double>& observed,
                         const std::vector<double>& expected, double alpha,
                         std::size_t fitted_params) {
  assert(observed.size() > fitted_params + 1);
  GofResult result;
  result.critical_value =
      ChiSquaredCriticalValue(observed.size() - 1 - fitted_params, alpha);
  result.statistic = ChiSquaredStatistic(observed, expected);
  result.reject = result.statistic > result.critical_value;
  return result;
}

double NormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam (2003): rational approximations on the central region and the
  // two tails; max relative error ~1.15e-9, far below any alpha used here.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double LaplaceCdf(double x, double location, double scale) {
  assert(scale > 0.0);
  const double z = (x - location) / scale;
  return z < 0.0 ? 0.5 * std::exp(z) : 1.0 - 0.5 * std::exp(-z);
}

double UniformCdf(double x, double lo, double hi) {
  assert(lo < hi);
  if (x <= lo) return 0.0;
  if (x >= hi) return 1.0;
  return (x - lo) / (hi - lo);
}

double NormalCdf(double x, double mean, double stddev) {
  assert(stddev > 0.0);
  return 0.5 * std::erfc(-(x - mean) / (stddev * std::sqrt(2.0)));
}

}  // namespace statutil
}  // namespace gupt
