#include "statutil.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gupt {
namespace statutil {
namespace {

// Seeds are pre-registered: each statistical check below is deterministic
// given its seed, and alpha bounds the a-priori chance the checked-in seed
// is unlucky (see statutil.h).
constexpr std::uint64_t kUniformSeed = 0x5747a11d01ULL;
constexpr std::uint64_t kLaplaceSeed = 0x5747a11d02ULL;
constexpr std::uint64_t kTwoSampleSeed = 0x5747a11d03ULL;
constexpr std::uint64_t kChiSquaredSeed = 0x5747a11d04ULL;
constexpr double kAlpha = 1e-6;

TEST(KsStatistic, ExactOnTinySample) {
  // Samples {0.5}: empirical CDF jumps 0 -> 1 at 0.5; against Uniform[0,1]
  // the sup distance is max(|0.5-0|, |0.5-1|) = 0.5.
  double d = KsStatistic({0.5}, [](double x) { return UniformCdf(x, 0, 1); });
  EXPECT_DOUBLE_EQ(d, 0.5);

  // Samples {0.25, 0.75} against Uniform[0,1]: sup = 0.25 at either point.
  d = KsStatistic({0.25, 0.75},
                  [](double x) { return UniformCdf(x, 0, 1); });
  EXPECT_DOUBLE_EQ(d, 0.25);
}

TEST(KsStatistic, PerfectFitIsSmall) {
  // The i-th of n equally spaced quantiles has empirical-vs-true gap
  // exactly 1/(2n) when placed at (i+0.5)/n.
  const std::size_t n = 1000;
  std::vector<double> samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples[i] = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
  }
  double d = KsStatistic(samples, [](double x) { return UniformCdf(x, 0, 1); });
  EXPECT_NEAR(d, 0.5 / static_cast<double>(n), 1e-12);
}

TEST(KsTest, AcceptsMatchingUniform) {
  Rng rng(kUniformSeed);
  std::vector<double> samples(20000);
  for (double& s : samples) s = rng.UniformDouble();
  GofResult r =
      KsTest(samples, [](double x) { return UniformCdf(x, 0, 1); }, kAlpha);
  EXPECT_FALSE(r.reject) << r.Describe();
}

TEST(KsTest, AcceptsMatchingLaplace) {
  Rng rng(kLaplaceSeed);
  const double scale = 2.5;
  std::vector<double> samples(20000);
  for (double& s : samples) s = rng.Laplace(scale);
  GofResult r = KsTest(
      samples, [scale](double x) { return LaplaceCdf(x, 0.0, scale); },
      kAlpha);
  EXPECT_FALSE(r.reject) << r.Describe();
}

TEST(KsTest, RejectsWrongScale) {
  // Power check: Lap(2.5) samples against a Lap(3.0) hypothesis must be
  // detected at n=20000 (the KS distance between the two CDFs is ~0.024,
  // far above the ~0.0019 critical value at alpha=1e-6... statistic
  // concentrates near the true distance for large n).
  Rng rng(kLaplaceSeed);
  std::vector<double> samples(20000);
  for (double& s : samples) s = rng.Laplace(2.5);
  GofResult r = KsTest(
      samples, [](double x) { return LaplaceCdf(x, 0.0, 3.0); }, kAlpha);
  EXPECT_TRUE(r.reject) << r.Describe();
}

TEST(KsTestTwoSample, AcceptsSameDistribution) {
  Rng rng(kTwoSampleSeed);
  std::vector<double> a(10000), b(10000);
  for (double& s : a) s = rng.Gaussian();
  for (double& s : b) s = rng.Gaussian();
  GofResult r = KsTestTwoSample(a, b, kAlpha);
  EXPECT_FALSE(r.reject) << r.Describe();
}

TEST(KsTestTwoSample, RejectsShiftedDistribution) {
  Rng rng(kTwoSampleSeed);
  std::vector<double> a(10000), b(10000);
  for (double& s : a) s = rng.Gaussian();
  for (double& s : b) s = rng.Gaussian() + 0.2;
  GofResult r = KsTestTwoSample(a, b, kAlpha);
  EXPECT_TRUE(r.reject) << r.Describe();
}

TEST(NormalQuantile, MatchesKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(1.0 - 1e-6), 4.753424309, 1e-5);
}

TEST(ChiSquaredCriticalValue, MatchesTables) {
  // chi^2 upper-0.05 quantiles: 10 dof -> 18.307, 30 dof -> 43.773.
  // Wilson-Hilferty is good to <1% here.
  EXPECT_NEAR(ChiSquaredCriticalValue(10, 0.05), 18.307, 0.15);
  EXPECT_NEAR(ChiSquaredCriticalValue(30, 0.05), 43.773, 0.2);
}

TEST(ChiSquaredTest, AcceptsFairDie) {
  Rng rng(kChiSquaredSeed);
  const std::size_t bins = 6, n = 60000;
  std::vector<double> observed(bins, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    observed[rng.UniformUint64(bins)] += 1.0;
  }
  std::vector<double> expected(bins, static_cast<double>(n) / bins);
  GofResult r = ChiSquaredTest(observed, expected, kAlpha);
  EXPECT_FALSE(r.reject) << r.Describe();
}

TEST(ChiSquaredTest, RejectsLoadedDie) {
  Rng rng(kChiSquaredSeed);
  const std::size_t bins = 6, n = 60000;
  std::vector<double> observed(bins, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    // Face 0 at probability ~0.22 instead of 1/6.
    std::size_t face = rng.Bernoulli(0.065) ? 0 : rng.UniformUint64(bins);
    observed[face] += 1.0;
  }
  std::vector<double> expected(bins, static_cast<double>(n) / bins);
  GofResult r = ChiSquaredTest(observed, expected, kAlpha);
  EXPECT_TRUE(r.reject) << r.Describe();
}

TEST(Cdfs, LaplaceSymmetryAndTails) {
  EXPECT_DOUBLE_EQ(LaplaceCdf(0.0, 0.0, 1.0), 0.5);
  EXPECT_NEAR(LaplaceCdf(3.0, 0.0, 1.0) + LaplaceCdf(-3.0, 0.0, 1.0), 1.0,
              1e-12);
  EXPECT_LT(LaplaceCdf(-40.0, 0.0, 1.0), 1e-15);
  EXPECT_GT(LaplaceCdf(40.0, 0.0, 1.0), 1.0 - 1e-15);
}

TEST(Cdfs, NormalMatchesErfc) {
  EXPECT_DOUBLE_EQ(NormalCdf(0.0, 0.0, 1.0), 0.5);
  EXPECT_NEAR(NormalCdf(1.959963985, 0.0, 1.0), 0.975, 1e-9);
}

}  // namespace
}  // namespace statutil
}  // namespace gupt
