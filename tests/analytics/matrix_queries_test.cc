// Tests for the covariance-matrix and decision-stump programs.

#include <gtest/gtest.h>

#include "analytics/queries.h"
#include "common/rng.h"

namespace gupt {
namespace analytics {
namespace {

TEST(CovarianceMatrixTest, KnownMatrix) {
  // Column1 = 2*column0: var0 = 1.25, cov = 2.5, var1 = 5.
  Dataset data = Dataset::Create({{1, 2}, {2, 4}, {3, 6}, {4, 8}}).value();
  auto program = CovarianceMatrixQuery({0, 1})();
  EXPECT_EQ(program->output_dims(), 4u);
  Row flat = program->Run(data).value();
  EXPECT_DOUBLE_EQ(flat[0], 1.25);
  EXPECT_DOUBLE_EQ(flat[1], 2.5);
  EXPECT_DOUBLE_EQ(flat[2], 2.5);  // symmetric
  EXPECT_DOUBLE_EQ(flat[3], 5.0);
}

TEST(CovarianceMatrixTest, DiagonalMatchesVariance) {
  Rng rng(1);
  std::vector<Row> rows;
  for (int i = 0; i < 3000; ++i) {
    rows.push_back({rng.Gaussian(0.0, 2.0), rng.Gaussian(0.0, 1.0)});
  }
  Dataset data = Dataset::Create(std::move(rows)).value();
  Row flat = CovarianceMatrixQuery({0, 1})()->Run(data).value();
  EXPECT_NEAR(flat[0], 4.0, 0.4);
  EXPECT_NEAR(flat[3], 1.0, 0.1);
  EXPECT_NEAR(flat[1], 0.0, 0.15);  // independent columns
}

TEST(CovarianceMatrixTest, SingleDimIsVariance) {
  Dataset data = Dataset::FromColumn({2.0, 4.0}).value();
  Row flat = CovarianceMatrixQuery({0})()->Run(data).value();
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_DOUBLE_EQ(flat[0], 1.0);
}

TEST(CovarianceMatrixTest, RejectsBadDims) {
  Dataset data = Dataset::FromColumn({1.0}).value();
  EXPECT_FALSE(CovarianceMatrixQuery({0, 5})()->Run(data).ok());
  EXPECT_FALSE(CovarianceMatrixQuery({})()->Run(data).ok());
}

Dataset StumpData(std::size_t n, std::uint64_t seed) {
  // Feature 0 is noise; feature 1 separates the classes at 5.0.
  Rng rng(seed);
  std::vector<Row> rows;
  for (std::size_t i = 0; i < n; ++i) {
    bool label = rng.Bernoulli(0.5);
    double informative = label ? rng.Gaussian(7.0, 0.8) : rng.Gaussian(3.0, 0.8);
    rows.push_back({rng.Gaussian(0.0, 1.0), informative, label ? 1.0 : 0.0});
  }
  return Dataset::Create(std::move(rows)).value();
}

TEST(DecisionStumpTest, FindsInformativeFeatureAndThreshold) {
  Dataset data = StumpData(1000, 2);
  Row stump = DecisionStumpQuery({0, 1}, 2)()->Run(data).value();
  ASSERT_EQ(stump.size(), 3u);
  EXPECT_DOUBLE_EQ(stump[0], 1.0);       // picked the informative feature
  EXPECT_NEAR(stump[1], 5.0, 1.0);       // threshold near the class boundary
  EXPECT_DOUBLE_EQ(stump[2], 1.0);       // high values => class 1
}

TEST(DecisionStumpTest, InvertedPolarityDetected) {
  // Class 1 sits BELOW the threshold: the stump must flip polarity.
  Rng rng(3);
  std::vector<Row> rows;
  for (int i = 0; i < 500; ++i) {
    bool label = rng.Bernoulli(0.5);
    rows.push_back({label ? rng.Gaussian(3.0, 0.5) : rng.Gaussian(7.0, 0.5),
                    label ? 1.0 : 0.0});
  }
  Dataset data = Dataset::Create(std::move(rows)).value();
  Row stump = DecisionStumpQuery({0}, 1)()->Run(data).value();
  EXPECT_DOUBLE_EQ(stump[2], -1.0);
}

TEST(DecisionStumpTest, RejectsBadDims) {
  Dataset data = StumpData(10, 4);
  EXPECT_FALSE(DecisionStumpQuery({}, 2)()->Run(data).ok());
  EXPECT_FALSE(DecisionStumpQuery({9}, 2)()->Run(data).ok());
  EXPECT_FALSE(DecisionStumpQuery({0}, 9)()->Run(data).ok());
}

TEST(DecisionStumpTest, BlockStumpsAgreeOnThreshold) {
  // SAF premise: independent blocks recover ~the same stump, so averaging
  // the threshold is meaningful.
  Dataset data = StumpData(4000, 5);
  auto factory = DecisionStumpQuery({0, 1}, 2);
  double threshold_sum = 0.0;
  const std::size_t blocks = 20, rows = 200;
  for (std::size_t b = 0; b < blocks; ++b) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < rows; ++i) idx.push_back(b * rows + i);
    Row stump = factory()->Run(data.Subset(idx).value()).value();
    EXPECT_DOUBLE_EQ(stump[0], 1.0) << "block " << b;
    threshold_sum += stump[1];
  }
  EXPECT_NEAR(threshold_sum / blocks, 5.0, 0.6);
}

}  // namespace
}  // namespace analytics
}  // namespace gupt
