#include "analytics/queries.h"

#include <gtest/gtest.h>

namespace gupt {
namespace analytics {
namespace {

Dataset TwoColumns() {
  return Dataset::Create({{1, 2}, {2, 4}, {3, 6}, {4, 8}}).value();
}

TEST(MeanQueryTest, ComputesColumnMean) {
  auto program = MeanQuery(0)();
  EXPECT_EQ(program->Run(TwoColumns()).value(), (Row{2.5}));
  EXPECT_EQ(MeanQuery(1)()->Run(TwoColumns()).value(), (Row{5.0}));
}

TEST(MeanQueryTest, OutOfRangeColumnErrors) {
  EXPECT_FALSE(MeanQuery(2)()->Run(TwoColumns()).ok());
}

TEST(MeanQueryTest, DeclaresScalarOutput) {
  EXPECT_EQ(MeanQuery(0)()->output_dims(), 1u);
}

TEST(VarianceQueryTest, PopulationVariance) {
  // Column 0 = {1,2,3,4}: mean 2.5, population variance 1.25.
  EXPECT_EQ(VarianceQuery(0)()->Run(TwoColumns()).value(), (Row{1.25}));
}

TEST(MedianQueryTest, Interpolated) {
  EXPECT_EQ(MedianQuery(0)()->Run(TwoColumns()).value(), (Row{2.5}));
}

TEST(QuantileQueryTest, TracksQuantiles) {
  EXPECT_EQ(QuantileQuery(0, 0.0)()->Run(TwoColumns()).value(), (Row{1.0}));
  EXPECT_EQ(QuantileQuery(0, 1.0)()->Run(TwoColumns()).value(), (Row{4.0}));
}

TEST(QuantileQueryTest, InvalidQErrors) {
  EXPECT_FALSE(QuantileQuery(0, 2.0)()->Run(TwoColumns()).ok());
}

TEST(MeanAllDimsQueryTest, PerDimensionMeans) {
  auto program = MeanAllDimsQuery(2)();
  EXPECT_EQ(program->output_dims(), 2u);
  EXPECT_EQ(program->Run(TwoColumns()).value(), (Row{2.5, 5.0}));
}

TEST(MeanAllDimsQueryTest, DimensionMismatchErrors) {
  EXPECT_FALSE(MeanAllDimsQuery(3)()->Run(TwoColumns()).ok());
}

TEST(CovarianceQueryTest, PerfectlyCorrelatedColumns) {
  // Column 1 = 2 * column 0: cov = 2 * var = 2.5.
  EXPECT_EQ(CovarianceQuery(0, 1)()->Run(TwoColumns()).value(), (Row{2.5}));
}

TEST(CovarianceQueryTest, SelfCovarianceIsVariance) {
  EXPECT_EQ(CovarianceQuery(0, 0)()->Run(TwoColumns()).value(), (Row{1.25}));
}

TEST(HistogramQueryTest, NormalisedCounts) {
  Dataset data = Dataset::FromColumn({0.1, 0.2, 0.6, 0.9}).value();
  auto program = HistogramQuery(0, 2, 0.0, 1.0)();
  EXPECT_EQ(program->output_dims(), 2u);
  Row hist = program->Run(data).value();
  EXPECT_DOUBLE_EQ(hist[0], 0.5);
  EXPECT_DOUBLE_EQ(hist[1], 0.5);
}

TEST(HistogramQueryTest, OutOfRangeValuesClampToBoundaryBins) {
  Dataset data = Dataset::FromColumn({-5.0, 5.0}).value();
  Row hist = HistogramQuery(0, 4, 0.0, 1.0)()->Run(data).value();
  EXPECT_DOUBLE_EQ(hist[0], 0.5);
  EXPECT_DOUBLE_EQ(hist[3], 0.5);
}

TEST(HistogramQueryTest, ExactBoundaryGoesToLastBin) {
  Dataset data = Dataset::FromColumn({1.0}).value();
  Row hist = HistogramQuery(0, 4, 0.0, 1.0)()->Run(data).value();
  EXPECT_DOUBLE_EQ(hist[3], 1.0);
}

TEST(HistogramQueryTest, InvalidParametersError) {
  Dataset data = Dataset::FromColumn({0.5}).value();
  EXPECT_FALSE(HistogramQuery(0, 0, 0.0, 1.0)()->Run(data).ok());
  EXPECT_FALSE(HistogramQuery(0, 2, 1.0, 0.0)()->Run(data).ok());
}

TEST(QueryNamesTest, AreDescriptive) {
  EXPECT_EQ(MeanQuery(3)()->name(), "mean[3]");
  EXPECT_EQ(VarianceQuery(0)()->name(), "variance[0]");
}

}  // namespace
}  // namespace analytics
}  // namespace gupt
