#include "analytics/pca.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace gupt {
namespace analytics {
namespace {

// Data stretched along `direction` (unit vector) with cross-variance 0.1.
Dataset Stretched(const Row& direction, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  const std::size_t d = direction.size();
  for (std::size_t i = 0; i < n; ++i) {
    double along = rng.Gaussian(0.0, 3.0);
    Row row(d);
    for (std::size_t j = 0; j < d; ++j) {
      row[j] = along * direction[j] + rng.Gaussian(0.0, 0.1);
    }
    rows.push_back(std::move(row));
  }
  return Dataset::Create(std::move(rows)).value();
}

PcaOptions Dims(std::initializer_list<std::size_t> dims) {
  PcaOptions opts;
  opts.feature_dims = dims;
  return opts;
}

TEST(PcaTest, FindsDominantDirection) {
  Row direction = {0.6, 0.8};
  Dataset data = Stretched(direction, 2000, 1);
  auto result = ComputeTopComponent(data, Dims({0, 1}));
  ASSERT_TRUE(result.ok());
  double alignment = std::fabs(vec::Dot(result->component, direction));
  EXPECT_GT(alignment, 0.999);
  // Eigenvalue ~ variance along the direction = 9.
  EXPECT_NEAR(result->eigenvalue, 9.0, 1.0);
}

TEST(PcaTest, ComponentIsUnitNorm) {
  Dataset data = Stretched({1.0, 0.0, 0.0}, 500, 2);
  auto result = ComputeTopComponent(data, Dims({0, 1, 2})).value();
  EXPECT_NEAR(vec::Norm(result.component), 1.0, 1e-9);
}

TEST(PcaTest, SignIsCanonical) {
  // Flip the data: the component must come out identical (eigenvectors are
  // sign-ambiguous; canonicalisation fixes the largest coordinate > 0).
  Row direction = {-0.6, 0.8};
  Dataset data = Stretched(direction, 2000, 3);
  auto result = ComputeTopComponent(data, Dims({0, 1})).value();
  std::size_t arg_max = std::fabs(result.component[0]) >
                                std::fabs(result.component[1])
                            ? 0
                            : 1;
  EXPECT_GT(result.component[arg_max], 0.0);
}

TEST(PcaTest, BlockComponentsAggregate) {
  // The SAF premise: per-block components, being sign-canonicalised, agree
  // and average close to the population component.
  Row direction = {0.8, 0.6};
  Dataset data = Stretched(direction, 3000, 4);
  Row sum(2, 0.0);
  const std::size_t blocks = 30, rows = 100;
  for (std::size_t b = 0; b < blocks; ++b) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < rows; ++i) idx.push_back(b * rows + i);
    auto r = ComputeTopComponent(data.Subset(idx).value(), Dims({0, 1}));
    ASSERT_TRUE(r.ok());
    vec::AddInPlace(&sum, r->component);
  }
  vec::ScaleInPlace(&sum, 1.0 / blocks);
  double alignment = std::fabs(vec::Dot(sum, direction));
  EXPECT_GT(alignment, 0.99);
}

TEST(PcaTest, DefaultDimsUseAllColumns) {
  Dataset data = Stretched({0.0, 1.0}, 500, 5);
  PcaOptions opts;  // empty feature_dims
  auto result = ComputeTopComponent(data, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->component.size(), 2u);
}

TEST(PcaTest, ConstantDataYieldsZeroEigenvalue) {
  Dataset data = Dataset::Create({{1.0, 2.0}, {1.0, 2.0}, {1.0, 2.0}}).value();
  auto result = ComputeTopComponent(data, Dims({0, 1}));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->eigenvalue, 0.0);
}

TEST(PcaTest, RejectsBadInputs) {
  Dataset one_row = Dataset::Create({{1.0, 2.0}}).value();
  EXPECT_FALSE(ComputeTopComponent(one_row, Dims({0, 1})).ok());
  Dataset data = Stretched({1.0, 0.0}, 10, 6);
  EXPECT_FALSE(ComputeTopComponent(data, Dims({0, 7})).ok());
}

TEST(TopComponentQueryTest, ProgramShape) {
  auto program = TopComponentQuery(Dims({0, 1}))();
  EXPECT_EQ(program->output_dims(), 2u);
  Dataset data = Stretched({0.6, 0.8}, 300, 7);
  Row out = program->Run(data).value();
  EXPECT_EQ(out.size(), 2u);
}

TEST(TopComponentQueryTest, RequiresExplicitDims) {
  PcaOptions opts;  // empty dims: factory cannot know the output arity
  auto program = TopComponentQuery(opts)();
  Dataset data = Stretched({1.0, 0.0}, 50, 8);
  EXPECT_FALSE(program->Run(data).ok());
}

}  // namespace
}  // namespace analytics
}  // namespace gupt
