#include "analytics/logistic_regression.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"

namespace gupt {
namespace analytics {
namespace {

// Linearly separable 2-d data: label = 1 iff x0 + x1 > 0.
Dataset Separable(std::size_t n, std::uint64_t seed, double flip = 0.0) {
  Rng rng(seed);
  std::vector<Row> rows;
  for (std::size_t i = 0; i < n; ++i) {
    double x0 = rng.Gaussian();
    double x1 = rng.Gaussian();
    bool label = x0 + x1 > 0.0;
    if (flip > 0.0 && rng.Bernoulli(flip)) label = !label;
    rows.push_back({x0, x1, label ? 1.0 : 0.0});
  }
  return Dataset::Create(std::move(rows)).value();
}

LogisticRegressionOptions TwoFeatureOptions() {
  LogisticRegressionOptions opts;
  opts.feature_dims = {0, 1};
  opts.label_dim = 2;
  return opts;
}

TEST(LogisticRegressionTest, LearnsSeparableData) {
  Dataset data = Separable(2000, 1);
  auto opts = TwoFeatureOptions();
  auto model = TrainLogisticRegression(data, opts);
  ASSERT_TRUE(model.ok());
  double accuracy = ClassificationAccuracy(data, *model, opts).value();
  EXPECT_GT(accuracy, 0.97);
}

TEST(LogisticRegressionTest, WeightsPointAlongTrueSeparator) {
  Dataset data = Separable(2000, 2);
  auto model = TrainLogisticRegression(data, TwoFeatureOptions()).value();
  ASSERT_EQ(model.weights.size(), 3u);  // 2 features + bias
  EXPECT_GT(model.weights[0], 0.0);
  EXPECT_GT(model.weights[1], 0.0);
  // Symmetric construction: weights roughly equal, bias near zero.
  EXPECT_NEAR(model.weights[0] / model.weights[1], 1.0, 0.3);
}

TEST(LogisticRegressionTest, NoisyLabelsCapAccuracy) {
  Dataset data = Separable(3000, 3, /*flip=*/0.10);
  auto opts = TwoFeatureOptions();
  auto model = TrainLogisticRegression(data, opts).value();
  double accuracy = ClassificationAccuracy(data, model, opts).value();
  EXPECT_GT(accuracy, 0.85);
  EXPECT_LT(accuracy, 0.95);  // cannot beat the 10% label noise
}

TEST(LogisticRegressionTest, PredictProbabilityIsCalibratedAtExtremes) {
  Dataset data = Separable(2000, 4);
  auto opts = TwoFeatureOptions();
  auto model = TrainLogisticRegression(data, opts).value();
  EXPECT_GT(model.PredictProbability({5.0, 5.0, 1.0}, opts.feature_dims), 0.95);
  EXPECT_LT(model.PredictProbability({-5.0, -5.0, 0.0}, opts.feature_dims),
            0.05);
}

TEST(LogisticRegressionTest, StrongRegularisationShrinksWeights) {
  Dataset data = Separable(1000, 5);
  auto weak = TwoFeatureOptions();
  weak.l2_lambda = 1e-6;
  auto strong = TwoFeatureOptions();
  strong.l2_lambda = 10.0;
  double weak_norm =
      vec::Norm(TrainLogisticRegression(data, weak).value().weights);
  double strong_norm =
      vec::Norm(TrainLogisticRegression(data, strong).value().weights);
  EXPECT_LT(strong_norm, weak_norm / 2.0);
}

TEST(LogisticRegressionTest, RejectsNonBinaryLabels) {
  Dataset data = Dataset::Create({{0.0, 0.0, 2.0}}).value();
  EXPECT_FALSE(TrainLogisticRegression(data, TwoFeatureOptions()).ok());
}

TEST(LogisticRegressionTest, RejectsBadDims) {
  Dataset data = Separable(10, 6);
  LogisticRegressionOptions opts;
  opts.feature_dims = {};
  opts.label_dim = 2;
  EXPECT_FALSE(TrainLogisticRegression(data, opts).ok());

  opts = TwoFeatureOptions();
  opts.feature_dims = {0, 9};
  EXPECT_FALSE(TrainLogisticRegression(data, opts).ok());

  opts = TwoFeatureOptions();
  opts.label_dim = 9;
  EXPECT_FALSE(TrainLogisticRegression(data, opts).ok());
}

TEST(LogisticRegressionTest, AccuracyRejectsModelArityMismatch) {
  Dataset data = Separable(10, 7);
  LogisticModel model;
  model.weights = {1.0};  // wrong arity
  EXPECT_FALSE(ClassificationAccuracy(data, model, TwoFeatureOptions()).ok());
}

TEST(LogisticRegressionQueryTest, ProgramOutputsWeightVector) {
  auto program = LogisticRegressionQuery(TwoFeatureOptions())();
  EXPECT_EQ(program->output_dims(), 3u);
  Dataset data = Separable(500, 8);
  Row weights = program->Run(data).value();
  EXPECT_EQ(weights.size(), 3u);
}

TEST(LogisticRegressionOnLifeSciencesTest, MatchesPaperBaselineBand) {
  // Paper §7.1.1: the non-private run scores ~94% on ds1.10.
  synthetic::LifeSciencesOptions gen;
  gen.num_rows = 6000;
  Dataset data = synthetic::LifeSciences(gen).value();
  LogisticRegressionOptions opts;
  opts.feature_dims.resize(gen.num_features);
  for (std::size_t d = 0; d < gen.num_features; ++d) opts.feature_dims[d] = d;
  opts.label_dim = gen.num_features;
  auto model = TrainLogisticRegression(data, opts).value();
  double accuracy = ClassificationAccuracy(data, model, opts).value();
  EXPECT_GT(accuracy, 0.90);
  EXPECT_LT(accuracy, 0.98);
}

}  // namespace
}  // namespace analytics
}  // namespace gupt
