#include "analytics/kmeans.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/synthetic.h"

namespace gupt {
namespace analytics {
namespace {

// Two tight clusters around (0,0) and (10,10).
Dataset TwoClusters(std::size_t per_cluster, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  for (std::size_t i = 0; i < per_cluster; ++i) {
    rows.push_back({rng.Gaussian(0.0, 0.3), rng.Gaussian(0.0, 0.3)});
    rows.push_back({rng.Gaussian(10.0, 0.3), rng.Gaussian(10.0, 0.3)});
  }
  return Dataset::Create(std::move(rows)).value();
}

KMeansOptions TwoClusterOptions() {
  KMeansOptions opts;
  opts.k = 2;
  opts.feature_dims = {0, 1};
  opts.max_iterations = 30;
  return opts;
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  Dataset data = TwoClusters(200, 1);
  auto result = RunKMeans(data, TwoClusterOptions());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->centers.size(), 2u);
  // Sorted by first coordinate: centre 0 near (0,0), centre 1 near (10,10).
  EXPECT_NEAR(result->centers[0][0], 0.0, 0.5);
  EXPECT_NEAR(result->centers[0][1], 0.0, 0.5);
  EXPECT_NEAR(result->centers[1][0], 10.0, 0.5);
  EXPECT_NEAR(result->centers[1][1], 10.0, 0.5);
}

TEST(KMeansTest, CentersAreSortedByFirstCoordinate) {
  Dataset data = TwoClusters(100, 2);
  KMeansOptions opts = TwoClusterOptions();
  opts.k = 4;
  auto result = RunKMeans(data, opts);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 1; i < result->centers.size(); ++i) {
    EXPECT_LE(result->centers[i - 1][0], result->centers[i][0]);
  }
}

TEST(KMeansTest, DeterministicForFixedSeed) {
  Dataset data = TwoClusters(100, 3);
  auto a = RunKMeans(data, TwoClusterOptions());
  auto b = RunKMeans(data, TwoClusterOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->centers, b->centers);
}

TEST(KMeansTest, FeatureSubsetIgnoresOtherColumns) {
  // Third column is a label-like constant that must not affect clustering.
  std::vector<Row> rows;
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    rows.push_back({rng.Gaussian(0.0, 0.1), rng.Gaussian(0.0, 0.1), 999.0});
    rows.push_back({rng.Gaussian(5.0, 0.1), rng.Gaussian(5.0, 0.1), -999.0});
  }
  Dataset data = Dataset::Create(std::move(rows)).value();
  KMeansOptions opts;
  opts.k = 2;
  opts.feature_dims = {0, 1};
  auto result = RunKMeans(data, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->centers[0].size(), 2u);
  EXPECT_NEAR(result->centers[1][0], 5.0, 0.3);
}

TEST(KMeansTest, FewerRowsThanKErrors) {
  Dataset data = Dataset::Create({{1.0}, {2.0}}).value();
  KMeansOptions opts;
  opts.k = 3;
  opts.feature_dims = {0};
  EXPECT_FALSE(RunKMeans(data, opts).ok());
}

TEST(KMeansTest, InvalidOptionsError) {
  Dataset data = TwoClusters(10, 5);
  KMeansOptions opts = TwoClusterOptions();
  opts.k = 0;
  EXPECT_FALSE(RunKMeans(data, opts).ok());
  opts = TwoClusterOptions();
  opts.feature_dims = {7};
  EXPECT_FALSE(RunKMeans(data, opts).ok());
}

TEST(KMeansTest, ToleranceStopsEarly) {
  Dataset data = TwoClusters(200, 6);
  KMeansOptions opts = TwoClusterOptions();
  opts.max_iterations = 100;
  opts.tolerance = 1e-3;
  auto result = RunKMeans(data, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->iterations_run, 100u);
}

TEST(KMeansTest, ZeroToleranceRunsAllIterations) {
  Dataset data = TwoClusters(50, 7);
  KMeansOptions opts = TwoClusterOptions();
  opts.max_iterations = 12;
  opts.tolerance = 0.0;
  auto result = RunKMeans(data, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->iterations_run, 12u);
}

TEST(KMeansQueryTest, FlattensSortedCenters) {
  Dataset data = TwoClusters(200, 8);
  auto program = KMeansQuery(TwoClusterOptions())();
  EXPECT_EQ(program->output_dims(), 4u);  // k=2 * dims=2
  Row flat = program->Run(data).value();
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_NEAR(flat[0], 0.0, 0.5);
  EXPECT_NEAR(flat[2], 10.0, 0.5);
}

TEST(KMeansQueryTest, RequiresExplicitFeatureDims) {
  KMeansOptions opts;
  opts.k = 2;  // feature_dims left empty
  auto program = KMeansQuery(opts)();
  Dataset data = TwoClusters(10, 9);
  EXPECT_FALSE(program->Run(data).ok());
}

TEST(UnflattenCentersTest, RoundTrip) {
  Row flat = {1, 2, 3, 4, 5, 6};
  auto centers = UnflattenCenters(flat, 2, 3);
  ASSERT_TRUE(centers.ok());
  EXPECT_EQ((*centers)[0], (Row{1, 2, 3}));
  EXPECT_EQ((*centers)[1], (Row{4, 5, 6}));
}

TEST(UnflattenCentersTest, ArityMismatchErrors) {
  EXPECT_FALSE(UnflattenCenters({1, 2, 3}, 2, 2).ok());
  EXPECT_FALSE(UnflattenCenters({1, 2}, 0, 2).ok());
}

TEST(IntraClusterVarianceTest, ZeroWhenCentersMatchData) {
  Dataset data = Dataset::Create({{0.0, 0.0}, {1.0, 1.0}}).value();
  auto icv = IntraClusterVariance(data, {{0.0, 0.0}, {1.0, 1.0}}, {0, 1});
  ASSERT_TRUE(icv.ok());
  EXPECT_DOUBLE_EQ(*icv, 0.0);
}

TEST(IntraClusterVarianceTest, PenalisesBadCenters) {
  Dataset data = TwoClusters(100, 10);
  auto good = RunKMeans(data, TwoClusterOptions()).value();
  auto icv_good = IntraClusterVariance(data, good.centers, {0, 1}).value();
  auto icv_bad =
      IntraClusterVariance(data, {{50.0, 50.0}, {60.0, 60.0}}, {0, 1}).value();
  EXPECT_LT(icv_good, icv_bad / 100.0);
}

TEST(IntraClusterVarianceTest, ErrorsOnBadArguments) {
  Dataset data = TwoClusters(10, 11);
  EXPECT_FALSE(IntraClusterVariance(data, {}, {0, 1}).ok());
  EXPECT_FALSE(IntraClusterVariance(data, {{1.0}}, {0, 1}).ok());
}

TEST(KMeansOnLifeSciencesTest, FindsTrueCenters) {
  synthetic::LifeSciencesOptions gen;
  gen.num_rows = 4000;
  Dataset data = synthetic::LifeSciences(gen).value();
  KMeansOptions opts;
  opts.k = gen.num_clusters;
  opts.feature_dims.resize(gen.num_features);
  for (std::size_t d = 0; d < gen.num_features; ++d) opts.feature_dims[d] = d;
  opts.max_iterations = 50;
  auto result = RunKMeans(data, opts);
  ASSERT_TRUE(result.ok());
  // Every true centre should have a recovered centre within ~1 stddev.
  for (const Row& truth : synthetic::LifeSciencesTrueCenters(gen)) {
    double best = 1e18;
    for (const Row& c : result->centers) {
      best = std::min(best, vec::SquaredDistance(truth, c));
    }
    EXPECT_LT(std::sqrt(best), 1.0);
  }
}

}  // namespace
}  // namespace analytics
}  // namespace gupt
