#include "analytics/pagerank.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/gupt.h"

namespace gupt {
namespace analytics {
namespace {

Dataset Edges(std::vector<std::pair<double, double>> pairs) {
  std::vector<Row> rows;
  for (auto [s, d] : pairs) rows.push_back({s, d});
  return Dataset::Create(std::move(rows)).value();
}

PageRankOptions Nodes(std::size_t n) {
  PageRankOptions opts;
  opts.num_nodes = n;
  return opts;
}

TEST(PageRankTest, ScoresSumToOne) {
  Dataset edges = Edges({{0, 1}, {1, 2}, {2, 0}});
  Row scores = ComputePageRank(edges, Nodes(3)).value();
  double total = 0.0;
  for (double s : scores) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PageRankTest, SymmetricCycleIsUniform) {
  Dataset edges = Edges({{0, 1}, {1, 2}, {2, 0}});
  Row scores = ComputePageRank(edges, Nodes(3)).value();
  for (double s : scores) EXPECT_NEAR(s, 1.0 / 3.0, 1e-9);
}

TEST(PageRankTest, StarCenterDominates) {
  // Everyone links to node 0.
  Dataset edges = Edges({{1, 0}, {2, 0}, {3, 0}, {4, 0}});
  Row scores = ComputePageRank(edges, Nodes(5)).value();
  for (std::size_t v = 1; v < 5; ++v) {
    EXPECT_GT(scores[0], 2.0 * scores[v]);
  }
}

TEST(PageRankTest, DanglingNodesDistributeMass) {
  // Node 1 has no out-edges: its mass must not vanish.
  Dataset edges = Edges({{0, 1}});
  Row scores = ComputePageRank(edges, Nodes(2)).value();
  double total = scores[0] + scores[1];
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(scores[1], scores[0]);  // 1 receives from 0 plus teleport
}

TEST(PageRankTest, ZeroDampingIsUniformTeleport) {
  Dataset edges = Edges({{0, 1}, {1, 0}});
  PageRankOptions opts = Nodes(4);
  opts.damping = 0.0;
  Row scores = ComputePageRank(edges, opts).value();
  for (double s : scores) EXPECT_NEAR(s, 0.25, 1e-12);
}

TEST(PageRankTest, RejectsBadInputs) {
  EXPECT_FALSE(ComputePageRank(Edges({{0, 1}}), Nodes(0)).ok());
  EXPECT_FALSE(ComputePageRank(Edges({{0, 9}}), Nodes(3)).ok());   // range
  EXPECT_FALSE(ComputePageRank(Edges({{0.5, 1}}), Nodes(3)).ok()); // not id
  PageRankOptions bad = Nodes(3);
  bad.damping = 1.0;
  EXPECT_FALSE(ComputePageRank(Edges({{0, 1}}), bad).ok());
  Dataset one_col = Dataset::FromColumn({0.0}).value();
  EXPECT_FALSE(ComputePageRank(one_col, Nodes(3)).ok());
}

TEST(PageRankTest, PrivatePageRankThroughGupt) {
  // The §7.1.2 story end to end: PageRank runs to convergence inside each
  // block and GUPT noises only the final score vector.
  Rng rng(8);
  std::vector<Row> rows;
  const std::size_t n_nodes = 8;
  // A hub-and-spoke graph: node 0 is heavily cited.
  for (int i = 0; i < 6000; ++i) {
    double src = 1.0 + static_cast<double>(rng.UniformUint64(n_nodes - 1));
    double dst = rng.Bernoulli(0.7)
                     ? 0.0
                     : 1.0 + static_cast<double>(rng.UniformUint64(n_nodes - 1));
    rows.push_back({src, dst});
  }
  DatasetManager manager;
  DatasetOptions opts;
  opts.total_epsilon = 100.0;
  ASSERT_TRUE(
      manager.Register("web", Dataset::Create(std::move(rows)).value(), opts)
          .ok());
  GuptRuntime runtime(&manager, GuptOptions{});

  QuerySpec spec;
  spec.program = PageRankQuery(Nodes(n_nodes));
  spec.epsilon = 8.0;
  spec.accounting = BudgetAccounting::kPerDimension;
  spec.range = OutputRangeSpec::Tight(
      std::vector<Range>(n_nodes, Range{0.0, 1.0}));
  auto report = runtime.Execute("web", spec);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->output.size(), n_nodes);
  // The hub's private score dominates every spoke's.
  for (std::size_t v = 1; v < n_nodes; ++v) {
    EXPECT_GT(report->output[0], report->output[v]);
  }
}

}  // namespace
}  // namespace analytics
}  // namespace gupt
