#include "analytics/linear_regression.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gupt {
namespace analytics {
namespace {

// y = 3*x0 - 2*x1 + 5 + noise.
Dataset LinearData(std::size_t n, double noise_stddev, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  for (std::size_t i = 0; i < n; ++i) {
    double x0 = rng.UniformDouble(-2.0, 2.0);
    double x1 = rng.UniformDouble(-2.0, 2.0);
    double y = 3.0 * x0 - 2.0 * x1 + 5.0 + rng.Gaussian(0.0, noise_stddev);
    rows.push_back({x0, x1, y});
  }
  return Dataset::Create(std::move(rows)).value();
}

LinearRegressionOptions TwoFeature() {
  LinearRegressionOptions opts;
  opts.feature_dims = {0, 1};
  opts.target_dim = 2;
  return opts;
}

TEST(SolveLinearSystemTest, SolvesKnownSystem) {
  // 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
  auto x = SolveLinearSystem({{2, 1}, {1, 3}}, {5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(SolveLinearSystemTest, PivotingHandlesZeroDiagonal) {
  // First pivot is zero; partial pivoting must swap rows.
  auto x = SolveLinearSystem({{0, 1}, {1, 0}}, {2, 3});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(SolveLinearSystemTest, SingularIsAnError) {
  auto x = SolveLinearSystem({{1, 1}, {2, 2}}, {1, 2});
  ASSERT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kNumericalError);
}

TEST(SolveLinearSystemTest, DimensionMismatchErrors) {
  EXPECT_FALSE(SolveLinearSystem({{1, 0}}, {1, 2}).ok());
  EXPECT_FALSE(SolveLinearSystem({{1, 0}, {0, 1, 2}}, {1, 2}).ok());
}

TEST(LinearRegressionTest, RecoversExactCoefficientsOnCleanData) {
  Dataset data = LinearData(500, 0.0, 1);
  auto model = FitLinearRegression(data, TwoFeature());
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->coefficients[0], 3.0, 1e-3);
  EXPECT_NEAR(model->coefficients[1], -2.0, 1e-3);
  EXPECT_NEAR(model->coefficients[2], 5.0, 1e-3);
}

TEST(LinearRegressionTest, NoisyDataStillClose) {
  Dataset data = LinearData(5000, 0.5, 2);
  auto model = FitLinearRegression(data, TwoFeature()).value();
  EXPECT_NEAR(model.coefficients[0], 3.0, 0.05);
  EXPECT_NEAR(model.coefficients[1], -2.0, 0.05);
  EXPECT_NEAR(model.coefficients[2], 5.0, 0.05);
}

TEST(LinearRegressionTest, PredictUsesCoefficients) {
  LinearModel model;
  model.coefficients = {3.0, -2.0, 5.0};
  EXPECT_DOUBLE_EQ(model.Predict({1.0, 1.0, 0.0}, {0, 1}), 6.0);
}

TEST(LinearRegressionTest, MseIsNoiseVarianceOnNoisyData) {
  Dataset data = LinearData(5000, 0.5, 3);
  auto opts = TwoFeature();
  auto model = FitLinearRegression(data, opts).value();
  double mse = MeanSquaredError(data, model, opts).value();
  EXPECT_NEAR(mse, 0.25, 0.03);  // noise variance
}

TEST(LinearRegressionTest, RidgeRescuesCollinearBlock) {
  // x1 == x0 exactly: the unregularised normal equations are singular.
  std::vector<Row> rows;
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    double x = rng.UniformDouble(-1.0, 1.0);
    rows.push_back({x, x, 2.0 * x});
  }
  Dataset data = Dataset::Create(std::move(rows)).value();
  auto opts = TwoFeature();
  opts.ridge_lambda = 1e-6;
  auto model = FitLinearRegression(data, opts);
  ASSERT_TRUE(model.ok());
  // The two collinear coefficients share the weight: their sum is 2.
  EXPECT_NEAR(model->coefficients[0] + model->coefficients[1], 2.0, 1e-3);
}

TEST(LinearRegressionTest, RejectsBadOptions) {
  Dataset data = LinearData(10, 0.0, 5);
  LinearRegressionOptions opts;
  opts.feature_dims = {};
  EXPECT_FALSE(FitLinearRegression(data, opts).ok());
  opts = TwoFeature();
  opts.feature_dims = {0, 9};
  EXPECT_FALSE(FitLinearRegression(data, opts).ok());
  opts = TwoFeature();
  opts.target_dim = 9;
  EXPECT_FALSE(FitLinearRegression(data, opts).ok());
  opts = TwoFeature();
  opts.ridge_lambda = -1.0;
  EXPECT_FALSE(FitLinearRegression(data, opts).ok());
}

TEST(LinearRegressionQueryTest, ProgramOutputsCoefficients) {
  auto program = LinearRegressionQuery(TwoFeature())();
  EXPECT_EQ(program->output_dims(), 3u);
  Row coef = program->Run(LinearData(200, 0.1, 6)).value();
  ASSERT_EQ(coef.size(), 3u);
  EXPECT_NEAR(coef[0], 3.0, 0.2);
}

TEST(LinearRegressionQueryTest, BlockCoefficientsAverageToTruth) {
  // The SAF premise for regression: per-block OLS estimates are unbiased,
  // so their average approaches the true coefficients.
  Dataset data = LinearData(4000, 0.5, 7);
  auto factory = LinearRegressionQuery(TwoFeature());
  Row sum(3, 0.0);
  const std::size_t blocks = 40, block_rows = 100;
  for (std::size_t b = 0; b < blocks; ++b) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < block_rows; ++i) {
      idx.push_back(b * block_rows + i);
    }
    Row coef = factory()->Run(data.Subset(idx).value()).value();
    vec::AddInPlace(&sum, coef);
  }
  vec::ScaleInPlace(&sum, 1.0 / blocks);
  EXPECT_NEAR(sum[0], 3.0, 0.05);
  EXPECT_NEAR(sum[1], -2.0, 0.05);
  EXPECT_NEAR(sum[2], 5.0, 0.05);
}

}  // namespace
}  // namespace analytics
}  // namespace gupt
