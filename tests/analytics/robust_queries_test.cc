// Tests for the robust location/scale estimators (winsorized mean, trimmed
// mean, IQR) — Smith (STOC'11)'s canonical approximately-normal statistics.

#include <gtest/gtest.h>

#include <cmath>

#include "analytics/queries.h"
#include "common/rng.h"

namespace gupt {
namespace analytics {
namespace {

Dataset WithOutliers(std::uint64_t seed) {
  // Bulk around 10 with two wild (one-sided) outliers.
  Rng rng(seed);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.Gaussian(10.0, 1.0));
  values.push_back(1e6);
  values.push_back(2e6);
  return Dataset::FromColumn(values).value();
}

TEST(WinsorizedMeanTest, ResistsOutliers) {
  Dataset data = WithOutliers(1);
  double plain = MeanQuery(0)()->Run(data).value()[0];
  double winsorized = WinsorizedMeanQuery(0, 0.05)()->Run(data).value()[0];
  EXPECT_GT(std::fabs(plain - 10.0), 100.0);   // wrecked by outliers
  EXPECT_NEAR(winsorized, 10.0, 0.5);          // robust
}

TEST(WinsorizedMeanTest, ZeroTrimEqualsPlainMean) {
  Dataset data = Dataset::FromColumn({1.0, 2.0, 3.0, 4.0}).value();
  double plain = MeanQuery(0)()->Run(data).value()[0];
  double winsorized = WinsorizedMeanQuery(0, 0.0)()->Run(data).value()[0];
  EXPECT_DOUBLE_EQ(winsorized, plain);
}

TEST(WinsorizedMeanTest, RejectsBadTrim) {
  Dataset data = Dataset::FromColumn({1.0, 2.0}).value();
  EXPECT_FALSE(WinsorizedMeanQuery(0, 0.5)()->Run(data).ok());
  EXPECT_FALSE(WinsorizedMeanQuery(0, -0.1)()->Run(data).ok());
}

TEST(TrimmedMeanTest, ResistsOutliers) {
  Dataset data = WithOutliers(2);
  double trimmed = TrimmedMeanQuery(0, 0.05)()->Run(data).value()[0];
  EXPECT_NEAR(trimmed, 10.0, 0.5);
}

TEST(TrimmedMeanTest, DropsSymmetrically) {
  // {0, 1, 2, 3, 100} at trim 0.2 drops one from each end: mean(1,2,3)=2.
  Dataset data = Dataset::FromColumn({0.0, 1.0, 2.0, 3.0, 100.0}).value();
  EXPECT_DOUBLE_EQ(TrimmedMeanQuery(0, 0.2)()->Run(data).value()[0], 2.0);
}

TEST(TrimmedMeanTest, NearMaximalTrimActsLikeMedian) {
  // trim 0.45 on 5 values drops two from each end: only the median is left.
  Dataset data = Dataset::FromColumn({100.0, 0.0, 7.0, 1.0, -50.0}).value();
  EXPECT_DOUBLE_EQ(TrimmedMeanQuery(0, 0.45)()->Run(data).value()[0], 1.0);
}

TEST(IqrTest, MatchesQuantileSpread) {
  // Uniform 0..100: q75 - q25 = 50.
  std::vector<double> values;
  for (int i = 0; i <= 100; ++i) values.push_back(static_cast<double>(i));
  Dataset data = Dataset::FromColumn(values).value();
  EXPECT_DOUBLE_EQ(IqrQuery(0)()->Run(data).value()[0], 50.0);
}

TEST(IqrTest, ZeroForConstantData) {
  Dataset data = Dataset::FromColumn({7.0, 7.0, 7.0}).value();
  EXPECT_DOUBLE_EQ(IqrQuery(0)()->Run(data).value()[0], 0.0);
}

TEST(RobustQueriesTest, OutOfRangeColumnErrors) {
  Dataset data = Dataset::FromColumn({1.0}).value();
  EXPECT_FALSE(WinsorizedMeanQuery(3, 0.1)()->Run(data).ok());
  EXPECT_FALSE(TrimmedMeanQuery(3, 0.1)()->Run(data).ok());
  EXPECT_FALSE(IqrQuery(3)()->Run(data).ok());
}

// Property sweep: the winsorized mean interpolates between median-like and
// mean-like behaviour as trim varies.
class WinsorizeSweep : public ::testing::TestWithParam<double> {};

TEST_P(WinsorizeSweep, StaysInsideDataRangeBulk) {
  Dataset data = WithOutliers(3);
  double w = WinsorizedMeanQuery(0, GetParam())()->Run(data).value()[0];
  EXPECT_GT(w, 5.0);
  EXPECT_LT(w, 15.0);
}

INSTANTIATE_TEST_SUITE_P(Trims, WinsorizeSweep,
                         ::testing::Values(0.01, 0.05, 0.1, 0.25, 0.45));

}  // namespace
}  // namespace analytics
}  // namespace gupt
