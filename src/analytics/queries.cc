#include "analytics/queries.h"

#include <algorithm>
#include <cmath>

namespace gupt {
namespace analytics {
namespace {

Result<std::vector<double>> ColumnOrError(const Dataset& block,
                                          std::size_t dim) {
  if (dim >= block.num_dims()) {
    return Status::InvalidArgument("query column " + std::to_string(dim) +
                                   " out of range for block with " +
                                   std::to_string(block.num_dims()) + " dims");
  }
  return block.Column(dim);
}

}  // namespace

ProgramFactory MeanQuery(std::size_t dim) {
  return MakeProgramFactory(
      "mean[" + std::to_string(dim) + "]", 1,
      [dim](const Dataset& block) -> Result<Row> {
        GUPT_ASSIGN_OR_RETURN(auto column, ColumnOrError(block, dim));
        return Row{stats::Mean(column)};
      });
}

ProgramFactory VarianceQuery(std::size_t dim) {
  return MakeProgramFactory(
      "variance[" + std::to_string(dim) + "]", 1,
      [dim](const Dataset& block) -> Result<Row> {
        GUPT_ASSIGN_OR_RETURN(auto column, ColumnOrError(block, dim));
        return Row{stats::Variance(column)};
      });
}

ProgramFactory MedianQuery(std::size_t dim) { return QuantileQuery(dim, 0.5); }

ProgramFactory QuantileQuery(std::size_t dim, double q) {
  return MakeProgramFactory(
      "quantile[" + std::to_string(dim) + "," + std::to_string(q) + "]", 1,
      [dim, q](const Dataset& block) -> Result<Row> {
        GUPT_ASSIGN_OR_RETURN(auto column, ColumnOrError(block, dim));
        GUPT_ASSIGN_OR_RETURN(double value, stats::Quantile(column, q));
        return Row{value};
      });
}

ProgramFactory MeanAllDimsQuery(std::size_t num_dims) {
  return MakeProgramFactory(
      "mean_all[" + std::to_string(num_dims) + "]", num_dims,
      [num_dims](const Dataset& block) -> Result<Row> {
        if (block.num_dims() != num_dims) {
          return Status::InvalidArgument("block dimension mismatch");
        }
        if (block.num_rows() == 0) {
          return Status::InvalidArgument("mean of an empty row set");
        }
        // Per-dimension sums over the contiguous column: the same addend
        // sequence per accumulator as the old row-major MeanRows, so the
        // result is bit-identical — just cache-friendly now.
        const std::size_t n = block.num_rows();
        Row mean(num_dims, 0.0);
        for (std::size_t d = 0; d < num_dims; ++d) {
          const double* column = block.col(d);
          double acc = 0.0;
          for (std::size_t r = 0; r < n; ++r) acc += column[r];
          mean[d] = acc * (1.0 / static_cast<double>(n));
        }
        return mean;
      });
}

ProgramFactory CovarianceQuery(std::size_t dim_a, std::size_t dim_b) {
  return MakeProgramFactory(
      "covariance[" + std::to_string(dim_a) + "," + std::to_string(dim_b) +
          "]",
      1, [dim_a, dim_b](const Dataset& block) -> Result<Row> {
        GUPT_ASSIGN_OR_RETURN(auto a, ColumnOrError(block, dim_a));
        GUPT_ASSIGN_OR_RETURN(auto b, ColumnOrError(block, dim_b));
        double mean_a = stats::Mean(a);
        double mean_b = stats::Mean(b);
        double acc = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i) {
          acc += (a[i] - mean_a) * (b[i] - mean_b);
        }
        return Row{a.empty() ? 0.0 : acc / static_cast<double>(a.size())};
      });
}

ProgramFactory HistogramQuery(std::size_t dim, std::size_t num_bins, double lo,
                              double hi) {
  return MakeProgramFactory(
      "histogram[" + std::to_string(dim) + "," + std::to_string(num_bins) +
          "]",
      num_bins, [dim, num_bins, lo, hi](const Dataset& block) -> Result<Row> {
        if (num_bins == 0 || !(lo < hi)) {
          return Status::InvalidArgument("invalid histogram parameters");
        }
        GUPT_ASSIGN_OR_RETURN(auto column, ColumnOrError(block, dim));
        Row bins(num_bins, 0.0);
        for (double v : column) {
          double t = (v - lo) / (hi - lo) * static_cast<double>(num_bins);
          auto idx = static_cast<std::ptrdiff_t>(std::floor(t));
          idx = std::clamp<std::ptrdiff_t>(
              idx, 0, static_cast<std::ptrdiff_t>(num_bins) - 1);
          bins[static_cast<std::size_t>(idx)] += 1.0;
        }
        if (!column.empty()) {
          vec::ScaleInPlace(&bins, 1.0 / static_cast<double>(column.size()));
        }
        return bins;
      });
}

ProgramFactory WinsorizedMeanQuery(std::size_t dim, double trim) {
  return MakeProgramFactory(
      "winsorized_mean[" + std::to_string(dim) + "," + std::to_string(trim) +
          "]",
      1, [dim, trim](const Dataset& block) -> Result<Row> {
        if (trim < 0.0 || trim >= 0.5) {
          return Status::InvalidArgument("trim must be in [0, 0.5)");
        }
        GUPT_ASSIGN_OR_RETURN(auto column, ColumnOrError(block, dim));
        GUPT_ASSIGN_OR_RETURN(double lo, stats::Quantile(column, trim));
        GUPT_ASSIGN_OR_RETURN(double hi, stats::Quantile(column, 1.0 - trim));
        double sum = 0.0;
        for (double v : column) sum += vec::ClampScalar(v, lo, hi);
        return Row{sum / static_cast<double>(column.size())};
      });
}

ProgramFactory TrimmedMeanQuery(std::size_t dim, double trim) {
  return MakeProgramFactory(
      "trimmed_mean[" + std::to_string(dim) + "," + std::to_string(trim) + "]",
      1, [dim, trim](const Dataset& block) -> Result<Row> {
        if (trim < 0.0 || trim >= 0.5) {
          return Status::InvalidArgument("trim must be in [0, 0.5)");
        }
        GUPT_ASSIGN_OR_RETURN(auto column, ColumnOrError(block, dim));
        std::sort(column.begin(), column.end());
        auto drop = static_cast<std::size_t>(
            trim * static_cast<double>(column.size()));
        if (column.size() <= 2 * drop) {
          return Status::InvalidArgument("block too small for trim level");
        }
        double sum = 0.0;
        for (std::size_t i = drop; i < column.size() - drop; ++i) {
          sum += column[i];
        }
        return Row{sum / static_cast<double>(column.size() - 2 * drop)};
      });
}

ProgramFactory CovarianceMatrixQuery(const std::vector<std::size_t>& dims) {
  return MakeProgramFactory(
      "covariance_matrix[d=" + std::to_string(dims.size()) + "]",
      dims.size() * dims.size(),
      [dims](const Dataset& block) -> Result<Row> {
        if (dims.empty()) {
          return Status::InvalidArgument("no dimensions selected");
        }
        for (std::size_t d : dims) {
          if (d >= block.num_dims()) {
            return Status::InvalidArgument("covariance dim out of range");
          }
        }
        const std::size_t k = dims.size();
        const std::size_t n = block.num_rows();
        // Column-major accumulation; every accumulator still sees the rows
        // in row order, so the sums match the old row loops bit for bit.
        Row mean(k, 0.0);
        for (std::size_t i = 0; i < k; ++i) {
          const double* ci = block.col(dims[i]);
          double acc = 0.0;
          for (std::size_t r = 0; r < n; ++r) acc += ci[r];
          mean[i] = acc;
        }
        vec::ScaleInPlace(&mean, 1.0 / static_cast<double>(n));
        Row flat(k * k, 0.0);
        for (std::size_t i = 0; i < k; ++i) {
          const double* ci = block.col(dims[i]);
          for (std::size_t j = 0; j < k; ++j) {
            const double* cj = block.col(dims[j]);
            double acc = 0.0;
            for (std::size_t r = 0; r < n; ++r) {
              acc += (ci[r] - mean[i]) * (cj[r] - mean[j]);
            }
            flat[i * k + j] = acc;
          }
        }
        vec::ScaleInPlace(&flat, 1.0 / static_cast<double>(n));
        return flat;
      });
}

ProgramFactory DecisionStumpQuery(const std::vector<std::size_t>& feature_dims,
                                  std::size_t label_dim) {
  return MakeProgramFactory(
      "decision_stump[d=" + std::to_string(feature_dims.size()) + "]", 3,
      [feature_dims, label_dim](const Dataset& block) -> Result<Row> {
        if (feature_dims.empty()) {
          return Status::InvalidArgument("no feature dimensions");
        }
        for (std::size_t d : feature_dims) {
          if (d >= block.num_dims()) {
            return Status::InvalidArgument("feature dim out of range");
          }
        }
        if (label_dim >= block.num_dims()) {
          return Status::InvalidArgument("label dim out of range");
        }
        double best_accuracy = -1.0;
        Row best = {0.0, 0.0, 1.0};  // (feature, threshold, polarity)
        for (std::size_t f = 0; f < feature_dims.size(); ++f) {
          GUPT_ASSIGN_OR_RETURN(auto column, block.Column(feature_dims[f]));
          GUPT_ASSIGN_OR_RETURN(auto labels, block.Column(label_dim));
          // Candidate thresholds: the sorted unique values' midpoints,
          // thinned to at most 64 candidates for large blocks.
          std::vector<double> sorted = column;
          std::sort(sorted.begin(), sorted.end());
          std::size_t stride = std::max<std::size_t>(1, sorted.size() / 64);
          for (std::size_t i = 0; i + 1 < sorted.size(); i += stride) {
            double threshold = 0.5 * (sorted[i] + sorted[i + 1]);
            std::size_t hits = 0;
            for (std::size_t r = 0; r < column.size(); ++r) {
              bool predicted = column[r] > threshold;
              bool actual = labels[r] > 0.5;
              if (predicted == actual) ++hits;
            }
            double accuracy =
                static_cast<double>(hits) / static_cast<double>(column.size());
            double polarity = 1.0;
            if (accuracy < 0.5) {  // inverted stump is better
              accuracy = 1.0 - accuracy;
              polarity = -1.0;
            }
            if (accuracy > best_accuracy) {
              best_accuracy = accuracy;
              best = {static_cast<double>(f), threshold, polarity};
            }
          }
        }
        return best;
      });
}

ProgramFactory IqrQuery(std::size_t dim) {
  return MakeProgramFactory(
      "iqr[" + std::to_string(dim) + "]", 1,
      [dim](const Dataset& block) -> Result<Row> {
        GUPT_ASSIGN_OR_RETURN(auto column, ColumnOrError(block, dim));
        GUPT_ASSIGN_OR_RETURN(double q25, stats::Quantile(column, 0.25));
        GUPT_ASSIGN_OR_RETURN(double q75, stats::Quantile(column, 0.75));
        return Row{q75 - q25};
      });
}

}  // namespace analytics
}  // namespace gupt
