#include "analytics/linear_regression.h"

#include <algorithm>
#include <cmath>

namespace gupt {
namespace analytics {

double LinearModel::Predict(const Row& row,
                            const std::vector<std::size_t>& feature_dims) const {
  double y = coefficients.back();  // intercept
  for (std::size_t i = 0; i < feature_dims.size(); ++i) {
    y += coefficients[i] * row[feature_dims[i]];
  }
  return y;
}

Result<Row> SolveLinearSystem(std::vector<Row> a, Row b) {
  const std::size_t n = b.size();
  if (a.size() != n) {
    return Status::InvalidArgument("system dimensions mismatch");
  }
  for (const Row& row : a) {
    if (row.size() != n) {
      return Status::InvalidArgument("system matrix is not square");
    }
  }
  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return Status::NumericalError("singular system");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      double factor = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  Row x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t c = i + 1; c < n; ++c) sum -= a[i][c] * x[c];
    x[i] = sum / a[i][i];
  }
  return x;
}

Result<LinearModel> FitLinearRegression(
    const Dataset& data, const LinearRegressionOptions& options) {
  if (options.feature_dims.empty()) {
    return Status::InvalidArgument("no feature dimensions");
  }
  for (std::size_t d : options.feature_dims) {
    if (d >= data.num_dims()) {
      return Status::InvalidArgument("feature dim out of range");
    }
  }
  if (options.target_dim >= data.num_dims()) {
    return Status::InvalidArgument("target dim out of range");
  }
  if (options.ridge_lambda < 0.0) {
    return Status::InvalidArgument("ridge_lambda must be >= 0");
  }

  // Design matrix with a trailing constant column; accumulate X^T X and
  // X^T y directly (d+1 x d+1, cheap for the small d used here).
  const std::size_t d = options.feature_dims.size() + 1;
  std::vector<const double*> cols(d - 1);
  for (std::size_t i = 0; i + 1 < d; ++i) {
    cols[i] = data.col(options.feature_dims[i]);
  }
  const double* target = data.col(options.target_dim);
  std::vector<Row> xtx(d, Row(d, 0.0));
  Row xty(d, 0.0);
  Row x(d);
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    for (std::size_t i = 0; i + 1 < d; ++i) x[i] = cols[i][r];
    x[d - 1] = 1.0;
    double y = target[r];
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j < d; ++j) xtx[i][j] += x[i] * x[j];
      xty[i] += x[i] * y;
    }
  }
  for (std::size_t i = 0; i + 1 < d; ++i) {
    xtx[i][i] += options.ridge_lambda;  // intercept left undamped
  }
  GUPT_ASSIGN_OR_RETURN(Row coefficients,
                        SolveLinearSystem(std::move(xtx), std::move(xty)));
  LinearModel model;
  model.coefficients = std::move(coefficients);
  return model;
}

Result<double> MeanSquaredError(const Dataset& data, const LinearModel& model,
                                const LinearRegressionOptions& options) {
  if (model.coefficients.size() != options.feature_dims.size() + 1) {
    return Status::InvalidArgument("model arity mismatch");
  }
  for (std::size_t dim : options.feature_dims) {
    if (dim >= data.num_dims()) {
      return Status::InvalidArgument("feature dim out of range");
    }
  }
  if (options.target_dim >= data.num_dims()) {
    return Status::InvalidArgument("target dim out of range");
  }
  std::vector<const double*> cols(options.feature_dims.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    cols[i] = data.col(options.feature_dims[i]);
  }
  const double* target = data.col(options.target_dim);
  double sum = 0.0;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    // Same accumulation order as LinearModel::Predict on a row.
    double predicted = model.coefficients.back();
    for (std::size_t i = 0; i < cols.size(); ++i) {
      predicted += model.coefficients[i] * cols[i][r];
    }
    double err = predicted - target[r];
    sum += err * err;
  }
  return sum / static_cast<double>(data.num_rows());
}

ProgramFactory LinearRegressionQuery(const LinearRegressionOptions& options) {
  return MakeProgramFactory(
      "linear_regression[d=" + std::to_string(options.feature_dims.size()) +
          "]",
      options.feature_dims.size() + 1,
      [options](const Dataset& block) -> Result<Row> {
        GUPT_ASSIGN_OR_RETURN(LinearModel model,
                              FitLinearRegression(block, options));
        return model.coefficients;
      });
}

}  // namespace analytics
}  // namespace gupt
