#include "analytics/pca.h"

#include <cmath>

namespace gupt {
namespace analytics {
namespace {

Result<std::vector<Row>> CovarianceMatrix(
    const Dataset& data, const std::vector<std::size_t>& dims) {
  for (std::size_t d : dims) {
    if (d >= data.num_dims()) {
      return Status::InvalidArgument("feature dim out of range");
    }
  }
  const std::size_t k = dims.size();
  const std::size_t n = data.num_rows();
  // Column-major sums: each accumulator sees the rows in the same order
  // as the old row-major loops, so the matrix is bit-identical.
  Row mean(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    const double* ci = data.col(dims[i]);
    double acc = 0.0;
    for (std::size_t r = 0; r < n; ++r) acc += ci[r];
    mean[i] = acc;
  }
  vec::ScaleInPlace(&mean, 1.0 / static_cast<double>(n));

  std::vector<Row> cov(k, Row(k, 0.0));
  for (std::size_t i = 0; i < k; ++i) {
    const double* ci = data.col(dims[i]);
    for (std::size_t j = 0; j < k; ++j) {
      const double* cj = data.col(dims[j]);
      double acc = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        acc += (ci[r] - mean[i]) * (cj[r] - mean[j]);
      }
      cov[i][j] = acc;
    }
  }
  for (Row& row : cov) {
    vec::ScaleInPlace(&row, 1.0 / static_cast<double>(n));
  }
  return cov;
}

void CanonicalizeSign(Row* v) {
  std::size_t arg_max = 0;
  for (std::size_t i = 1; i < v->size(); ++i) {
    if (std::fabs((*v)[i]) > std::fabs((*v)[arg_max])) arg_max = i;
  }
  if ((*v)[arg_max] < 0.0) vec::ScaleInPlace(v, -1.0);
}

}  // namespace

Result<PcaResult> ComputeTopComponent(const Dataset& data,
                                      const PcaOptions& options) {
  std::vector<std::size_t> dims = options.feature_dims;
  if (dims.empty()) {
    dims.resize(data.num_dims());
    for (std::size_t d = 0; d < dims.size(); ++d) dims[d] = d;
  }
  if (data.num_rows() < 2) {
    return Status::InvalidArgument("PCA needs at least two rows");
  }
  GUPT_ASSIGN_OR_RETURN(std::vector<Row> cov, CovarianceMatrix(data, dims));

  const std::size_t k = dims.size();
  // Deterministic start: a mildly uneven vector avoids being orthogonal to
  // the top eigenvector for symmetric inputs.
  Row v(k);
  for (std::size_t i = 0; i < k; ++i) {
    v[i] = 1.0 + 0.01 * static_cast<double>(i);
  }
  double norm = vec::Norm(v);
  vec::ScaleInPlace(&v, 1.0 / norm);

  double eigenvalue = 0.0;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    Row next(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) next[i] += cov[i][j] * v[j];
    }
    double next_norm = vec::Norm(next);
    if (next_norm < 1e-15) {
      // Zero covariance: all rows identical; any unit vector is valid.
      eigenvalue = 0.0;
      break;
    }
    vec::ScaleInPlace(&next, 1.0 / next_norm);
    double delta = std::min(vec::SquaredDistance(next, v),
                            vec::SquaredDistance(vec::Scale(next, -1.0), v));
    eigenvalue = next_norm;
    v = std::move(next);
    if (delta < options.tolerance) break;
  }
  CanonicalizeSign(&v);

  PcaResult result;
  result.component = std::move(v);
  result.eigenvalue = eigenvalue;
  return result;
}

ProgramFactory TopComponentQuery(const PcaOptions& options) {
  return MakeProgramFactory(
      "pca_top[d=" + std::to_string(options.feature_dims.size()) + "]",
      options.feature_dims.size(),
      [options](const Dataset& block) -> Result<Row> {
        if (options.feature_dims.empty()) {
          return Status::InvalidArgument(
              "TopComponentQuery requires explicit feature_dims");
        }
        GUPT_ASSIGN_OR_RETURN(PcaResult result,
                              ComputeTopComponent(block, options));
        return result.component;
      });
}

}  // namespace analytics
}  // namespace gupt
