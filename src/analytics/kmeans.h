// k-means clustering (Lloyd's algorithm with k-means++ seeding).
//
// Stands in for the scipy k-means package the paper runs as a black box
// (§7.1.1). The program flattens the k centres into one output row, sorted
// by first coordinate — the canonical ordering §8 prescribes so that
// per-block outputs can be averaged meaningfully.

#ifndef GUPT_ANALYTICS_KMEANS_H_
#define GUPT_ANALYTICS_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/vec.h"
#include "data/dataset.h"
#include "exec/program.h"

namespace gupt {
namespace analytics {

struct KMeansOptions {
  std::size_t k = 4;
  std::size_t max_iterations = 20;
  /// Convergence threshold on total centre movement; 0 disables early stop
  /// (useful when a data-independent iteration count is wanted).
  double tolerance = 1e-6;
  /// Feature columns to cluster on; empty means all columns.
  std::vector<std::size_t> feature_dims;
  std::uint64_t seed = 7;
};

/// Result of one clustering run.
struct KMeansResult {
  /// k centres, sorted by first coordinate.
  std::vector<Row> centers;
  std::size_t iterations_run = 0;
};

/// Runs Lloyd's algorithm on the block. Errors when the block has fewer
/// rows than k or the options are invalid.
Result<KMeansResult> RunKMeans(const Dataset& data,
                               const KMeansOptions& options);

/// Program factory: output arity is k * |features| (flattened sorted
/// centres).
ProgramFactory KMeansQuery(const KMeansOptions& options);

/// Intra-cluster variance (paper Fig. 4): (1/n) * sum over points of the
/// squared distance to the nearest of `centers`, using the same feature
/// columns as the clustering. Used to score private centres against data.
Result<double> IntraClusterVariance(const Dataset& data,
                                    const std::vector<Row>& centers,
                                    const std::vector<std::size_t>& feature_dims);

/// Unflattens a SAF output row back into k centres of dimension `dims`.
Result<std::vector<Row>> UnflattenCenters(const Row& flat, std::size_t k,
                                          std::size_t dims);

}  // namespace analytics
}  // namespace gupt

#endif  // GUPT_ANALYTICS_KMEANS_H_
