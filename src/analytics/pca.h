// First principal component by power iteration.
//
// A maximum-likelihood-flavoured estimator (§3.2's other family of
// approximately normal statistics). The program releases the top
// eigenvector of the block's covariance matrix, sign-canonicalised so the
// per-block outputs are SAF-aggregatable (an eigenvector and its negation
// are the same subspace — without canonicalisation, averaging would
// cancel them).

#ifndef GUPT_ANALYTICS_PCA_H_
#define GUPT_ANALYTICS_PCA_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/vec.h"
#include "data/dataset.h"
#include "exec/program.h"

namespace gupt {
namespace analytics {

struct PcaOptions {
  /// Feature columns to analyse; empty means all columns.
  std::vector<std::size_t> feature_dims;
  std::size_t max_iterations = 200;
  double tolerance = 1e-9;
};

struct PcaResult {
  /// Unit-norm top eigenvector, sign fixed so its largest-magnitude
  /// coordinate is positive.
  Row component;
  /// Its eigenvalue (variance explained).
  double eigenvalue = 0.0;
};

/// Computes the leading principal component of the block's covariance.
/// Errors on fewer than two rows or bad dims.
Result<PcaResult> ComputeTopComponent(const Dataset& data,
                                      const PcaOptions& options);

/// Program factory: output arity |feature_dims| (the unit eigenvector).
/// feature_dims must be explicit (the factory must know its arity).
ProgramFactory TopComponentQuery(const PcaOptions& options);

}  // namespace analytics
}  // namespace gupt

#endif  // GUPT_ANALYTICS_PCA_H_
