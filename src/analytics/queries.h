// Simple statistical analysis programs.
//
// These are the "unmodified analyst programs" GUPT runs as black boxes:
// they know nothing about privacy, they just compute a statistic on
// whatever subset of the data they are handed. Each helper returns a
// ProgramFactory so every execution chamber gets a fresh instance.

#ifndef GUPT_ANALYTICS_QUERIES_H_
#define GUPT_ANALYTICS_QUERIES_H_

#include <cstddef>

#include "exec/program.h"

namespace gupt {
namespace analytics {

/// Scalar mean of column `dim`.
ProgramFactory MeanQuery(std::size_t dim);

/// Scalar population variance of column `dim`.
ProgramFactory VarianceQuery(std::size_t dim);

/// Scalar median of column `dim`.
ProgramFactory MedianQuery(std::size_t dim);

/// Scalar q-quantile (q in (0,1)) of column `dim`.
ProgramFactory QuantileQuery(std::size_t dim, double q);

/// Per-dimension mean over all `num_dims` columns (output arity num_dims).
ProgramFactory MeanAllDimsQuery(std::size_t num_dims);

/// Covariance between columns `dim_a` and `dim_b`.
ProgramFactory CovarianceQuery(std::size_t dim_a, std::size_t dim_b);

/// Normalised histogram of column `dim` over `num_bins` equal bins spanning
/// [lo, hi]; out-of-range values clamp to the boundary bins. Output arity
/// is num_bins and each entry is a fraction in [0, 1].
ProgramFactory HistogramQuery(std::size_t dim, std::size_t num_bins, double lo,
                              double hi);

/// Winsorized mean of column `dim`: values below the `trim`-quantile or
/// above the (1-trim)-quantile are clamped to those quantiles before
/// averaging. Smith (STOC'11) uses this robust location estimator as the
/// running example of an approximately normal statistic. trim in [0, 0.5).
ProgramFactory WinsorizedMeanQuery(std::size_t dim, double trim);

/// Trimmed mean of column `dim`: the lowest and highest `trim` fraction of
/// values are *dropped* (not clamped) before averaging. trim in [0, 0.5).
ProgramFactory TrimmedMeanQuery(std::size_t dim, double trim);

/// Inter-quartile range (q75 - q25) of column `dim` — a robust scale
/// estimator pairing with the winsorized mean.
ProgramFactory IqrQuery(std::size_t dim);

/// Full covariance matrix over `dims`, flattened row-major including the
/// diagonal (output arity |dims|^2). Per-block covariance matrices average
/// meaningfully because the entry order is fixed by `dims`.
ProgramFactory CovarianceMatrixQuery(const std::vector<std::size_t>& dims);

/// Decision stump: the single-feature threshold classifier maximising
/// training accuracy over `feature_dims` against the 0/1 labels in
/// `label_dim`. Output is (feature_index, threshold, polarity) — arity 3.
/// Note: feature_index is a *discrete* output; averaging it across blocks
/// is only meaningful when blocks agree on the dominant feature, which is
/// exactly the regime where SAF's utility guarantee applies.
ProgramFactory DecisionStumpQuery(const std::vector<std::size_t>& feature_dims,
                                  std::size_t label_dim);

}  // namespace analytics
}  // namespace gupt

#endif  // GUPT_ANALYTICS_QUERIES_H_
