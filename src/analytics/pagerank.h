// PageRank over an edge-list dataset.
//
// The paper's §7.1.2 names PageRank as the canonical iterative algorithm
// whose convergence-dependent iteration count defeats PINQ's per-iteration
// budgeting — GUPT just runs it to convergence inside each block and pays
// once. Rows are (source, destination) node-id pairs over a fixed public
// node universe; the program releases the N-dimensional score vector
// (summing to 1), which SAF averages across blocks.

#ifndef GUPT_ANALYTICS_PAGERANK_H_
#define GUPT_ANALYTICS_PAGERANK_H_

#include <cstddef>

#include "common/status.h"
#include "common/vec.h"
#include "data/dataset.h"
#include "exec/program.h"

namespace gupt {
namespace analytics {

struct PageRankOptions {
  /// Fixed, public node universe: node ids are in [0, num_nodes).
  std::size_t num_nodes = 0;
  double damping = 0.85;
  std::size_t max_iterations = 100;
  /// Stop when the L1 change of the score vector falls below this;
  /// 0 runs all iterations.
  double tolerance = 1e-10;
};

/// Runs damped PageRank on the block's edges (column 0 = source id,
/// column 1 = destination id; ids outside the universe are an error).
/// Dangling nodes distribute their mass uniformly. Returns the score
/// vector (length num_nodes, sums to 1).
Result<Row> ComputePageRank(const Dataset& edges,
                            const PageRankOptions& options);

/// Program factory: output arity num_nodes.
ProgramFactory PageRankQuery(const PageRankOptions& options);

}  // namespace analytics
}  // namespace gupt

#endif  // GUPT_ANALYTICS_PAGERANK_H_
