#include "analytics/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"

namespace gupt {
namespace analytics {
namespace {

std::vector<std::size_t> ResolveFeatureDims(const Dataset& data,
                                            const KMeansOptions& options) {
  if (!options.feature_dims.empty()) return options.feature_dims;
  std::vector<std::size_t> dims(data.num_dims());
  for (std::size_t d = 0; d < dims.size(); ++d) dims[d] = d;
  return dims;
}

Result<std::vector<Row>> ExtractFeatures(
    const Dataset& data, const std::vector<std::size_t>& dims) {
  for (std::size_t d : dims) {
    if (d >= data.num_dims()) {
      return Status::InvalidArgument("feature dim out of range");
    }
  }
  std::vector<const double*> cols(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i) cols[i] = data.col(dims[i]);
  std::vector<Row> points(data.num_rows(), Row(dims.size()));
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    for (std::size_t i = 0; i < dims.size(); ++i) points[r][i] = cols[i][r];
  }
  return points;
}

std::size_t NearestCenter(const Row& point, const std::vector<Row>& centers) {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centers.size(); ++c) {
    double d = vec::SquaredDistance(point, centers[c]);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return best;
}

// k-means++ seeding: first centre uniform, then proportional to squared
// distance from the nearest chosen centre.
std::vector<Row> SeedCenters(const std::vector<Row>& points, std::size_t k,
                             Rng* rng) {
  std::vector<Row> centers;
  centers.reserve(k);
  centers.push_back(points[rng->UniformUint64(points.size())]);
  std::vector<double> dist_sq(points.size());
  while (centers.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      dist_sq[i] = vec::SquaredDistance(points[i],
                                        centers[NearestCenter(points[i],
                                                              centers)]);
      total += dist_sq[i];
    }
    if (total == 0.0) {
      // All points coincide with existing centres; duplicate one.
      centers.push_back(centers.back());
      continue;
    }
    centers.push_back(points[rng->Categorical(dist_sq)]);
  }
  return centers;
}

}  // namespace

Result<KMeansResult> RunKMeans(const Dataset& data,
                               const KMeansOptions& options) {
  if (options.k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  std::vector<std::size_t> dims = ResolveFeatureDims(data, options);
  if (dims.empty()) {
    return Status::InvalidArgument("no feature dimensions");
  }
  GUPT_ASSIGN_OR_RETURN(std::vector<Row> points, ExtractFeatures(data, dims));
  if (points.size() < options.k) {
    return Status::InvalidArgument(
        "block has fewer rows than k; cannot cluster");
  }

  Rng rng(options.seed);
  std::vector<Row> centers = SeedCenters(points, options.k, &rng);

  KMeansResult result;
  std::vector<std::size_t> assignment(points.size(), 0);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations_run;
    for (std::size_t i = 0; i < points.size(); ++i) {
      assignment[i] = NearestCenter(points[i], centers);
    }
    std::vector<Row> sums(options.k, Row(dims.size(), 0.0));
    std::vector<std::size_t> counts(options.k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      vec::AddInPlace(&sums[assignment[i]], points[i]);
      ++counts[assignment[i]];
    }
    double movement = 0.0;
    for (std::size_t c = 0; c < options.k; ++c) {
      if (counts[c] == 0) continue;  // keep the empty cluster's old centre
      Row next = vec::Scale(sums[c], 1.0 / static_cast<double>(counts[c]));
      movement += std::sqrt(vec::SquaredDistance(next, centers[c]));
      centers[c] = std::move(next);
    }
    if (options.tolerance > 0.0 && movement < options.tolerance) break;
  }

  std::sort(centers.begin(), centers.end(),
            [](const Row& a, const Row& b) { return a[0] < b[0]; });
  result.centers = std::move(centers);
  return result;
}

ProgramFactory KMeansQuery(const KMeansOptions& options) {
  std::size_t feature_count = options.feature_dims.size();
  // With empty feature_dims the arity depends on the data; the factory
  // cannot know it, so require explicit dims for GUPT execution.
  std::size_t output_dims = options.k * feature_count;
  return MakeProgramFactory(
      "kmeans[k=" + std::to_string(options.k) + "]", output_dims,
      [options](const Dataset& block) -> Result<Row> {
        if (options.feature_dims.empty()) {
          return Status::InvalidArgument(
              "KMeansQuery requires explicit feature_dims");
        }
        GUPT_ASSIGN_OR_RETURN(KMeansResult result, RunKMeans(block, options));
        Row flat;
        flat.reserve(options.k * options.feature_dims.size());
        for (const Row& c : result.centers) {
          flat.insert(flat.end(), c.begin(), c.end());
        }
        return flat;
      });
}

Result<double> IntraClusterVariance(
    const Dataset& data, const std::vector<Row>& centers,
    const std::vector<std::size_t>& feature_dims) {
  if (centers.empty()) {
    return Status::InvalidArgument("no centers");
  }
  std::vector<std::size_t> dims = feature_dims;
  if (dims.empty()) {
    dims.resize(data.num_dims());
    for (std::size_t d = 0; d < dims.size(); ++d) dims[d] = d;
  }
  GUPT_ASSIGN_OR_RETURN(std::vector<Row> points, ExtractFeatures(data, dims));
  for (const Row& c : centers) {
    if (c.size() != dims.size()) {
      return Status::InvalidArgument("center dimension mismatch");
    }
  }
  double total = 0.0;
  for (const Row& p : points) {
    total += vec::SquaredDistance(p, centers[NearestCenter(p, centers)]);
  }
  return total / static_cast<double>(points.size());
}

Result<std::vector<Row>> UnflattenCenters(const Row& flat, std::size_t k,
                                          std::size_t dims) {
  if (k == 0 || dims == 0 || flat.size() != k * dims) {
    return Status::InvalidArgument("flat center arity mismatch");
  }
  std::vector<Row> centers(k, Row(dims));
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t d = 0; d < dims; ++d) {
      centers[c][d] = flat[c * dims + d];
    }
  }
  return centers;
}

}  // namespace analytics
}  // namespace gupt
