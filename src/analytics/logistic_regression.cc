#include "analytics/logistic_regression.h"

#include <algorithm>
#include <cmath>

namespace gupt {
namespace analytics {
namespace {

double Sigmoid(double z) {
  // Numerically stable in both tails.
  if (z >= 0.0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

Status ValidateDims(const Dataset& data,
                    const LogisticRegressionOptions& options) {
  if (options.feature_dims.empty()) {
    return Status::InvalidArgument("no feature dimensions");
  }
  for (std::size_t d : options.feature_dims) {
    if (d >= data.num_dims()) {
      return Status::InvalidArgument("feature dim out of range");
    }
  }
  if (options.label_dim >= data.num_dims()) {
    return Status::InvalidArgument("label dim out of range");
  }
  return Status::OK();
}

double Margin(const Row& row, const Row& weights,
              const std::vector<std::size_t>& feature_dims) {
  double z = weights.back();  // bias
  for (std::size_t i = 0; i < feature_dims.size(); ++i) {
    z += weights[i] * row[feature_dims[i]];
  }
  return z;
}

// Regularised negative log-likelihood (averaged over rows).
double Loss(const Dataset& data, const Row& weights,
            const LogisticRegressionOptions& options) {
  double loss = 0.0;
  for (const Row& row : data.rows()) {
    double z = Margin(row, weights, options.feature_dims);
    double y = row[options.label_dim];
    // log(1 + exp(-m)) with m = z for y=1 and m = -z for y=0, stably.
    double m = (y > 0.5) ? z : -z;
    loss += (m > 0.0) ? std::log1p(std::exp(-m)) : -m + std::log1p(std::exp(m));
  }
  loss /= static_cast<double>(data.num_rows());
  double reg = 0.0;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    reg += weights[i] * weights[i];
  }
  return loss + 0.5 * options.l2_lambda * reg;
}

}  // namespace

double LogisticModel::PredictProbability(
    const Row& row, const std::vector<std::size_t>& feature_dims) const {
  return Sigmoid(Margin(row, weights, feature_dims));
}

Result<LogisticModel> TrainLogisticRegression(
    const Dataset& data, const LogisticRegressionOptions& options) {
  GUPT_RETURN_IF_ERROR(ValidateDims(data, options));
  for (const Row& row : data.rows()) {
    double y = row[options.label_dim];
    if (y != 0.0 && y != 1.0) {
      return Status::InvalidArgument("labels must be 0 or 1");
    }
  }

  const std::size_t dims = options.feature_dims.size();
  Row weights(dims + 1, 0.0);
  const double n = static_cast<double>(data.num_rows());

  double step = 1.0;
  double current_loss = Loss(data, weights, options);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Gradient of the averaged loss + L2 term (bias unregularised).
    Row grad(dims + 1, 0.0);
    for (const Row& row : data.rows()) {
      double p = Sigmoid(Margin(row, weights, options.feature_dims));
      double err = p - row[options.label_dim];
      for (std::size_t i = 0; i < dims; ++i) {
        grad[i] += err * row[options.feature_dims[i]];
      }
      grad[dims] += err;
    }
    vec::ScaleInPlace(&grad, 1.0 / n);
    for (std::size_t i = 0; i < dims; ++i) {
      grad[i] += options.l2_lambda * weights[i];
    }
    if (vec::Norm(grad) < options.gradient_tolerance) break;

    // Backtracking line search on the loss.
    bool improved = false;
    for (int attempt = 0; attempt < 30; ++attempt) {
      Row candidate = weights;
      for (std::size_t i = 0; i < candidate.size(); ++i) {
        candidate[i] -= step * grad[i];
      }
      double candidate_loss = Loss(data, candidate, options);
      if (candidate_loss < current_loss) {
        weights = std::move(candidate);
        current_loss = candidate_loss;
        step *= 1.2;  // be a little braver next time
        improved = true;
        break;
      }
      step *= 0.5;
    }
    if (!improved) break;  // step shrank to nothing: converged
  }

  LogisticModel model;
  model.weights = std::move(weights);
  return model;
}

Result<double> ClassificationAccuracy(
    const Dataset& data, const LogisticModel& model,
    const LogisticRegressionOptions& options) {
  GUPT_RETURN_IF_ERROR(ValidateDims(data, options));
  if (model.weights.size() != options.feature_dims.size() + 1) {
    return Status::InvalidArgument("model arity mismatch");
  }
  std::size_t correct = 0;
  for (const Row& row : data.rows()) {
    double p = model.PredictProbability(row, options.feature_dims);
    bool predicted = p > 0.5;
    bool actual = row[options.label_dim] > 0.5;
    if (predicted == actual) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.num_rows());
}

ProgramFactory LogisticRegressionQuery(
    const LogisticRegressionOptions& options) {
  return MakeProgramFactory(
      "logistic_regression[d=" + std::to_string(options.feature_dims.size()) +
          "]",
      options.feature_dims.size() + 1,
      [options](const Dataset& block) -> Result<Row> {
        GUPT_ASSIGN_OR_RETURN(LogisticModel model,
                              TrainLogisticRegression(block, options));
        return model.weights;
      });
}

}  // namespace analytics
}  // namespace gupt
