#include "analytics/logistic_regression.h"

#include <algorithm>
#include <cmath>

namespace gupt {
namespace analytics {
namespace {

double Sigmoid(double z) {
  // Numerically stable in both tails.
  if (z >= 0.0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

Status ValidateDims(const Dataset& data,
                    const LogisticRegressionOptions& options) {
  if (options.feature_dims.empty()) {
    return Status::InvalidArgument("no feature dimensions");
  }
  for (std::size_t d : options.feature_dims) {
    if (d >= data.num_dims()) {
      return Status::InvalidArgument("feature dim out of range");
    }
  }
  if (options.label_dim >= data.num_dims()) {
    return Status::InvalidArgument("label dim out of range");
  }
  return Status::OK();
}

double Margin(const Row& row, const Row& weights,
              const std::vector<std::size_t>& feature_dims) {
  double z = weights.back();  // bias
  for (std::size_t i = 0; i < feature_dims.size(); ++i) {
    z += weights[i] * row[feature_dims[i]];
  }
  return z;
}

// All margins z_r = bias + sum_i w_i * x_{r,i}, accumulated per row in
// feature order over contiguous columns — the same FP sequence per margin
// as the old per-row Margin, so every downstream decision is bit-identical.
std::vector<double> Margins(const Dataset& data, const Row& weights,
                            const std::vector<std::size_t>& feature_dims) {
  const std::size_t n = data.num_rows();
  std::vector<double> z(n, weights.back());
  for (std::size_t i = 0; i < feature_dims.size(); ++i) {
    const double* column = data.col(feature_dims[i]);
    const double w = weights[i];
    for (std::size_t r = 0; r < n; ++r) z[r] += w * column[r];
  }
  return z;
}

// Regularised negative log-likelihood (averaged over rows).
double Loss(const Dataset& data, const Row& weights,
            const LogisticRegressionOptions& options) {
  const double* labels = data.col(options.label_dim);
  std::vector<double> z = Margins(data, weights, options.feature_dims);
  double loss = 0.0;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    double y = labels[r];
    // log(1 + exp(-m)) with m = z for y=1 and m = -z for y=0, stably.
    double m = (y > 0.5) ? z[r] : -z[r];
    loss += (m > 0.0) ? std::log1p(std::exp(-m)) : -m + std::log1p(std::exp(m));
  }
  loss /= static_cast<double>(data.num_rows());
  double reg = 0.0;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    reg += weights[i] * weights[i];
  }
  return loss + 0.5 * options.l2_lambda * reg;
}

}  // namespace

double LogisticModel::PredictProbability(
    const Row& row, const std::vector<std::size_t>& feature_dims) const {
  return Sigmoid(Margin(row, weights, feature_dims));
}

Result<LogisticModel> TrainLogisticRegression(
    const Dataset& data, const LogisticRegressionOptions& options) {
  GUPT_RETURN_IF_ERROR(ValidateDims(data, options));
  {
    const double* labels = data.col(options.label_dim);
    for (std::size_t r = 0; r < data.num_rows(); ++r) {
      if (labels[r] != 0.0 && labels[r] != 1.0) {
        return Status::InvalidArgument("labels must be 0 or 1");
      }
    }
  }

  const std::size_t dims = options.feature_dims.size();
  Row weights(dims + 1, 0.0);
  const double n = static_cast<double>(data.num_rows());

  double step = 1.0;
  double current_loss = Loss(data, weights, options);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Gradient of the averaged loss + L2 term (bias unregularised). Each
    // grad component accumulates over rows in row order (as the old
    // row-major loop did), one contiguous column sweep per feature.
    Row grad(dims + 1, 0.0);
    {
      const double* labels = data.col(options.label_dim);
      std::vector<double> z = Margins(data, weights, options.feature_dims);
      std::vector<double> err(data.num_rows());
      for (std::size_t r = 0; r < data.num_rows(); ++r) {
        err[r] = Sigmoid(z[r]) - labels[r];
      }
      for (std::size_t i = 0; i < dims; ++i) {
        const double* column = data.col(options.feature_dims[i]);
        double acc = 0.0;
        for (std::size_t r = 0; r < data.num_rows(); ++r) {
          acc += err[r] * column[r];
        }
        grad[i] = acc;
      }
      double acc = 0.0;
      for (std::size_t r = 0; r < data.num_rows(); ++r) acc += err[r];
      grad[dims] = acc;
    }
    vec::ScaleInPlace(&grad, 1.0 / n);
    for (std::size_t i = 0; i < dims; ++i) {
      grad[i] += options.l2_lambda * weights[i];
    }
    if (vec::Norm(grad) < options.gradient_tolerance) break;

    // Backtracking line search on the loss.
    bool improved = false;
    for (int attempt = 0; attempt < 30; ++attempt) {
      Row candidate = weights;
      for (std::size_t i = 0; i < candidate.size(); ++i) {
        candidate[i] -= step * grad[i];
      }
      double candidate_loss = Loss(data, candidate, options);
      if (candidate_loss < current_loss) {
        weights = std::move(candidate);
        current_loss = candidate_loss;
        step *= 1.2;  // be a little braver next time
        improved = true;
        break;
      }
      step *= 0.5;
    }
    if (!improved) break;  // step shrank to nothing: converged
  }

  LogisticModel model;
  model.weights = std::move(weights);
  return model;
}

Result<double> ClassificationAccuracy(
    const Dataset& data, const LogisticModel& model,
    const LogisticRegressionOptions& options) {
  GUPT_RETURN_IF_ERROR(ValidateDims(data, options));
  if (model.weights.size() != options.feature_dims.size() + 1) {
    return Status::InvalidArgument("model arity mismatch");
  }
  std::size_t correct = 0;
  const double* labels = data.col(options.label_dim);
  std::vector<double> z = Margins(data, model.weights, options.feature_dims);
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    bool predicted = Sigmoid(z[r]) > 0.5;
    bool actual = labels[r] > 0.5;
    if (predicted == actual) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.num_rows());
}

ProgramFactory LogisticRegressionQuery(
    const LogisticRegressionOptions& options) {
  return MakeProgramFactory(
      "logistic_regression[d=" + std::to_string(options.feature_dims.size()) +
          "]",
      options.feature_dims.size() + 1,
      [options](const Dataset& block) -> Result<Row> {
        GUPT_ASSIGN_OR_RETURN(LogisticModel model,
                              TrainLogisticRegression(block, options));
        return model.weights;
      });
}

}  // namespace analytics
}  // namespace gupt
