#include "analytics/pagerank.h"

#include <cmath>
#include <vector>

namespace gupt {
namespace analytics {

Result<Row> ComputePageRank(const Dataset& edges,
                            const PageRankOptions& options) {
  const std::size_t n = options.num_nodes;
  if (n == 0) {
    return Status::InvalidArgument("num_nodes must be >= 1");
  }
  if (!(options.damping >= 0.0 && options.damping < 1.0)) {
    return Status::InvalidArgument("damping must be in [0, 1)");
  }
  if (edges.num_dims() < 2) {
    return Status::InvalidArgument("edge rows need (source, destination)");
  }

  // Adjacency as out-edge lists; ids must be integral and in range.
  std::vector<std::vector<std::size_t>> out_edges(n);
  const double* src_col = edges.col(0);
  const double* dst_col = edges.col(1);
  for (std::size_t r = 0; r < edges.num_rows(); ++r) {
    double src_d = src_col[r], dst_d = dst_col[r];
    if (src_d < 0 || dst_d < 0 ||
        src_d != std::floor(src_d) || dst_d != std::floor(dst_d) ||
        src_d >= static_cast<double>(n) || dst_d >= static_cast<double>(n)) {
      return Status::InvalidArgument("edge endpoint outside node universe");
    }
    out_edges[static_cast<std::size_t>(src_d)].push_back(
        static_cast<std::size_t>(dst_d));
  }

  Row scores(n, 1.0 / static_cast<double>(n));
  Row next(n, 0.0);
  const double teleport = (1.0 - options.damping) / static_cast<double>(n);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double dangling_mass = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      if (out_edges[v].empty()) {
        dangling_mass += scores[v];
        continue;
      }
      double share = scores[v] / static_cast<double>(out_edges[v].size());
      for (std::size_t dst : out_edges[v]) next[dst] += share;
    }
    double dangling_share =
        options.damping * dangling_mass / static_cast<double>(n);
    double delta = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      next[v] = teleport + options.damping * next[v] + dangling_share;
      delta += std::fabs(next[v] - scores[v]);
    }
    scores.swap(next);
    if (options.tolerance > 0.0 && delta < options.tolerance) break;
  }
  return scores;
}

ProgramFactory PageRankQuery(const PageRankOptions& options) {
  return MakeProgramFactory(
      "pagerank[n=" + std::to_string(options.num_nodes) + "]",
      options.num_nodes, [options](const Dataset& block) -> Result<Row> {
        return ComputePageRank(block, options);
      });
}

}  // namespace analytics
}  // namespace gupt
