// L2-regularised logistic regression.
//
// Stands in for the MSR Orthant-Wise L-BFGS package the paper classifies
// carcinogens with (§7.1.1). Training is batch gradient descent with
// backtracking line search; the GUPT program outputs the learned weight
// vector (bias last), which SAF averages across blocks — the private model
// is the noisy mean of per-block models.

#ifndef GUPT_ANALYTICS_LOGISTIC_REGRESSION_H_
#define GUPT_ANALYTICS_LOGISTIC_REGRESSION_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/vec.h"
#include "data/dataset.h"
#include "exec/program.h"

namespace gupt {
namespace analytics {

struct LogisticRegressionOptions {
  /// Feature columns; the label column is separate.
  std::vector<std::size_t> feature_dims;
  /// Column holding 0/1 labels.
  std::size_t label_dim = 0;
  /// L2 regularisation strength.
  double l2_lambda = 1e-3;
  std::size_t max_iterations = 200;
  /// Stop when the gradient norm falls below this.
  double gradient_tolerance = 1e-5;
};

/// A trained model: weights for each feature plus a trailing bias term.
struct LogisticModel {
  Row weights;  // size = |feature_dims| + 1 (bias last)

  /// P(label = 1 | row).
  double PredictProbability(const Row& row,
                            const std::vector<std::size_t>& feature_dims) const;
};

/// Trains on the block. Errors when the block is empty, a dim is out of
/// range, or labels are not 0/1.
Result<LogisticModel> TrainLogisticRegression(
    const Dataset& data, const LogisticRegressionOptions& options);

/// Fraction of rows whose thresholded prediction matches the label.
Result<double> ClassificationAccuracy(const Dataset& data,
                                      const LogisticModel& model,
                                      const LogisticRegressionOptions& options);

/// Program factory: output arity |feature_dims| + 1 (the weight vector).
ProgramFactory LogisticRegressionQuery(const LogisticRegressionOptions& options);

}  // namespace analytics
}  // namespace gupt

#endif  // GUPT_ANALYTICS_LOGISTIC_REGRESSION_H_
