// Ordinary least squares linear regression.
//
// Regression estimators are the paper's canonical example of an
// approximately normal statistic (§3.2 cites "estimators for regression
// problems"), so per-block OLS coefficients average well under SAF.
// Solved by normal equations with ridge damping for rank-deficient blocks.

#ifndef GUPT_ANALYTICS_LINEAR_REGRESSION_H_
#define GUPT_ANALYTICS_LINEAR_REGRESSION_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/vec.h"
#include "data/dataset.h"
#include "exec/program.h"

namespace gupt {
namespace analytics {

struct LinearRegressionOptions {
  std::vector<std::size_t> feature_dims;
  std::size_t target_dim = 0;
  /// Ridge term added to the normal equations' diagonal; keeps tiny or
  /// collinear blocks solvable (and is standard practice anyway).
  double ridge_lambda = 1e-6;
};

/// Fitted coefficients: one per feature plus a trailing intercept.
struct LinearModel {
  Row coefficients;

  double Predict(const Row& row,
                 const std::vector<std::size_t>& feature_dims) const;
};

/// Fits OLS on the block. Errors on empty data or bad dims.
Result<LinearModel> FitLinearRegression(const Dataset& data,
                                        const LinearRegressionOptions& options);

/// Mean squared prediction error of `model` on `data`.
Result<double> MeanSquaredError(const Dataset& data, const LinearModel& model,
                                const LinearRegressionOptions& options);

/// Program factory: output arity |feature_dims| + 1.
ProgramFactory LinearRegressionQuery(const LinearRegressionOptions& options);

/// Solves the symmetric positive-definite system A x = b by Gaussian
/// elimination with partial pivoting. Exposed for reuse and testing.
/// `a` is row-major n x n. Errors when the system is singular.
Result<Row> SolveLinearSystem(std::vector<Row> a, Row b);

}  // namespace analytics
}  // namespace gupt

#endif  // GUPT_ANALYTICS_LINEAR_REGRESSION_H_
