// Pre-warmed pool of process chambers.
//
// ProcessChamber pays a fork() per block: the paper's AppArmor-confined
// computation instances map naturally onto one subprocess per block, but
// at service rates the fork/page-table/exit cost dominates small blocks.
// ChamberPool forks N worker processes ONCE, at service start, from a
// single-threaded point, and thereafter *leases* a worker per block over a
// pipe protocol:
//
//   parent --> worker   run frame: program token + columnar block slices
//   worker --> parent   result frame: status, violations, rusage delta,
//                       output vector
//
// Worker lifecycle (see docs/architecture.md "Chamber lifecycle"):
//
//   spawn -> idle -> leased -> (success) reset -> idle        reuse
//                          \-> (crash/EOF/timeout) discard -> respawn
//
// A worker that completes a lease cleanly is reset and reused; a worker
// that dies mid-lease (real crash or the exec.pool.lease crash failpoint)
// yields EOF on the response pipe — exactly the signal a crashed
// ProcessChamber child produces — so the parent substitutes the fallback
// output, keeps the DP accounting identical, and respawns the slot.
//
// Program shipping: pre-forked workers cannot receive std::function
// factories, so programs cross the pipe as an opaque *token* resolved
// inside the worker by a ProgramResolver captured at fork time (install it
// before Start()). Factories without a token keep the per-block
// ProcessChamber fork path.
//
// Isolation properties match ProcessChamber with one deliberate relaxation:
// a worker's address space survives across leases of *different* queries.
// Program instances are still constructed fresh per lease and scratch
// state lives in per-lease ChamberServices, so the §6.2 state-attack
// defence (no information flow between per-block executions through
// program state) holds; a malicious program that corrupts the worker
// process itself crashes the lease and the worker is discarded, never
// reused.

#ifndef GUPT_EXEC_CHAMBER_POOL_H_
#define GUPT_EXEC_CHAMBER_POOL_H_

#include <sys/types.h>

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/vec.h"
#include "data/dataset.h"
#include "exec/chamber.h"
#include "exec/program.h"
#include "obs/metrics.h"

namespace gupt {

/// Maps an opaque program token to a factory, inside the worker. Captured
/// by workers at fork: install before Start(); later changes are invisible
/// to already-running workers.
using ProgramResolver =
    std::function<Result<ProgramFactory>(const std::string& token)>;

/// Point-in-time pool statistics (for /profilez-style introspection and
/// the bench harness; the same values are exported as
/// gupt_chamber_pool_* metrics).
struct ChamberPoolStats {
  std::size_t workers_alive = 0;
  std::uint64_t spawned = 0;
  std::uint64_t leases = 0;
  std::uint64_t resets = 0;
  std::uint64_t respawns = 0;
  std::uint64_t shipped_bytes = 0;
};

class ChamberPool {
 public:
  /// `num_workers` must be >= 1. The policy's deadline/pad_to_deadline are
  /// enforced parent-side per lease; scratch/message limits apply inside
  /// the worker's per-lease ChamberServices.
  ChamberPool(ChamberPolicy policy, std::size_t num_workers);
  ~ChamberPool();

  ChamberPool(const ChamberPool&) = delete;
  ChamberPool& operator=(const ChamberPool&) = delete;

  /// Installs the token resolver workers capture at fork. Must be called
  /// before Start().
  void SetProgramResolver(ProgramResolver resolver);

  /// Forks the workers. MUST be called from a single-threaded point (the
  /// same fork/threads caveat as ProcessChamber); spawn failures of
  /// individual slots are tolerated — the slot is retried at the next
  /// lease — but having zero live workers after Start is an error.
  Status Start();

  /// Leases a worker, ships `block`'s columns, and awaits the result.
  /// Mirrors ProcessChamber::Execute semantics: program misbehaviour,
  /// crashes, and deadline overruns all become `fallback` substitutions
  /// (never an error status), so the aggregate's sensitivity analysis is
  /// untouched. Errors only on caller bugs or a pool with no leasable
  /// worker. Thread-safe; blocks while all workers are leased.
  Result<ChamberRun> Execute(const std::string& program_token,
                             const DatasetView& block, const Row& fallback);

  /// Stops all workers (idempotent; also run by the destructor).
  void Shutdown();

  ChamberPoolStats Stats() const;
  const ChamberPolicy& policy() const { return policy_; }
  std::size_t num_workers() const { return slots_.size(); }

 private:
  struct Worker {
    pid_t pid = -1;
    int to_child = -1;    // parent writes request frames here
    int from_child = -1;  // parent reads response frames here
    bool alive = false;
  };

  // All three run with mu_ held.
  Status SpawnSlotLocked(std::size_t slot);
  void DiscardSlotLocked(std::size_t slot, bool kill);
  int LeaseSlotLocked(std::unique_lock<std::mutex>* lock);

  [[noreturn]] void WorkerMain(int request_fd, int response_fd) const;

  ChamberPolicy policy_;
  ProgramResolver resolver_;

  mutable std::mutex mu_;
  std::condition_variable worker_free_;
  std::vector<Worker> slots_;
  std::vector<std::size_t> free_slots_;
  std::size_t leased_count_ = 0;
  bool started_ = false;
  bool shutdown_ = false;

  ChamberPoolStats stats_;

  obs::Gauge* workers_gauge_;
  obs::Counter* spawned_counter_;
  obs::Counter* leases_counter_;
  obs::Counter* resets_counter_;
  obs::Counter* respawns_counter_;
  obs::Counter* shipped_bytes_counter_;
  obs::Histogram* lease_wait_histogram_;
};

}  // namespace gupt

#endif  // GUPT_EXEC_CHAMBER_POOL_H_
