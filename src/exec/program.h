// The untrusted analysis-program interface.
//
// GUPT treats the analyst's computation as a black box (paper §1): the only
// contract is "run on any subset of the dataset, produce a fixed-dimension
// real vector". Programs are handed to the runtime as a *factory* rather
// than an instance — every execution chamber constructs a fresh instance,
// which is the state-attack defence of §6.2: no information can flow
// between per-block executions through program state.

#ifndef GUPT_EXEC_PROGRAM_H_
#define GUPT_EXEC_PROGRAM_H_

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/vec.h"
#include "data/dataset.h"

namespace gupt {

class ChamberServices;

/// An analyst-supplied computation. Implementations must be able to run on
/// any subset of the registered dataset (paper §3.1) and must declare their
/// output dimension up front (paper §8.1 — otherwise the dimension itself
/// could leak data).
class AnalysisProgram {
 public:
  virtual ~AnalysisProgram() = default;

  /// Runs the computation on one data block. Returning an error is allowed
  /// (the chamber substitutes the fallback output); throwing is not.
  virtual Result<Row> Run(const Dataset& block) = 0;

  /// Like Run but with access to chamber-mediated services (scratch space,
  /// attempted network I/O — which the policy will deny). The default
  /// ignores the services handle; only programs that want scratch space, or
  /// test programs that probe the sandbox, override this.
  virtual Result<Row> RunWithServices(const Dataset& block,
                                      ChamberServices* services);

  /// Number of output dimensions, fixed for the program's lifetime.
  virtual std::size_t output_dims() const = 0;

  /// Human-readable name used in budget-ledger labels and logs.
  virtual std::string name() const = 0;
};

/// Constructs a fresh program instance per execution chamber.
using ProgramFactory = std::function<std::unique_ptr<AnalysisProgram>()>;

/// Helper for the common case: wrap a stateless callable plus metadata into
/// a factory. The callable must be pure (no shared mutable state) — that is
/// exactly what the chamber model assumes of well-behaved programs.
ProgramFactory MakeProgramFactory(
    std::string name, std::size_t output_dims,
    std::function<Result<Row>(const Dataset&)> fn);

/// The analyst's optional range translator for GUPT-helper mode (paper
/// §4.1): maps (tight, privately estimated) per-dimension input ranges to
/// an output range per output dimension.
using RangeTranslator =
    std::function<Result<std::vector<Range>>(const std::vector<Range>&)>;

}  // namespace gupt

#endif  // GUPT_EXEC_PROGRAM_H_
