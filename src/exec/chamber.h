// Isolated execution chambers.
//
// The production GUPT system runs each per-block computation inside an
// AppArmor-confined process whose only channel is a trusted forwarding
// agent, with a per-block cycle budget for timing-attack padding (paper
// §6). This reproduction models the chamber in-process (see DESIGN.md §2):
//
//   * State attacks  — every execution constructs a fresh program instance
//     from the factory, and receives a private copy of its block; nothing
//     is shared between executions.
//   * MAC policy     — programs reach the outside world only through
//     ChamberServices, which denies network/IPC and wipes the scratch
//     space after every run, mirroring the AppArmor profile that pins the
//     working directory to a temporary scratch area.
//   * Timing attacks — each run gets a deadline. A run that overshoots is
//     abandoned and a constant fallback value (inside the expected output
//     range) is reported instead, so the released aggregate stays
//     differentially private; optional padding makes well-behaved runs
//     take the full deadline, erasing the duration side channel.
//   * Budget attacks — chambers have no handle to the privacy accountant
//     at all; only the trusted runtime charges budget.

#ifndef GUPT_EXEC_CHAMBER_H_
#define GUPT_EXEC_CHAMBER_H_

#include <chrono>
#include <cstddef>
#include <map>
#include <vector>
#include <string>

#include "common/status.h"
#include "common/vec.h"
#include "data/dataset.h"
#include "exec/program.h"

namespace gupt {

/// Mandatory-access-control policy for one chamber, the in-process analogue
/// of the paper's AppArmor profile.
struct ChamberPolicy {
  /// Per-block execution deadline (the paper's "predefined bound on the
  /// number of cycles"). Zero disables the deadline.
  std::chrono::microseconds deadline{0};
  /// When true, runs that finish early are padded to the deadline so that
  /// execution time is data-independent (paper §6.2). Requires a deadline.
  bool pad_to_deadline = false;
  /// Upper bound on per-run scratch-space bytes.
  std::size_t scratch_limit_bytes = 1 << 20;
  /// Upper bound on messages a run may send to the forwarding agent.
  std::size_t max_forwarded_messages = 16;
  /// Run each block in a forked subprocess (exec/process_chamber.h): true
  /// OS-level isolation with real kills, at ~fork cost per block. Only
  /// safe from a single-threaded computation manager (num_workers = 0);
  /// see the process-chamber header for the fork/threads caveat.
  bool process_isolation = false;
};

/// The only services an untrusted program can touch. Network and IPC are
/// unconditionally denied; scratch space is private to the run and wiped
/// afterwards.
class ChamberServices {
 public:
  explicit ChamberServices(ChamberPolicy policy) : policy_(policy) {}

  /// Stores a value in the run's scratch space (the AppArmor temp dir).
  Status WriteScratch(const std::string& key, const std::string& value);

  /// Reads back a scratch value written earlier in the same run.
  Result<std::string> ReadScratch(const std::string& key) const;

  /// Always denied: the MAC profile disables all network activity.
  Status OpenNetworkConnection(const std::string& endpoint);

  /// Always denied: computation instances may not talk to each other.
  Status SendToPeerChamber(const std::string& peer,
                           const std::string& message);

  /// The one allowed channel (paper §6: "the computation can only
  /// communicate with a trusted forwarding agent which sends the messages
  /// to the computation manager"). Messages reach the *trusted* side only
  /// — they are surfaced in ChamberRun for operator logs and never to the
  /// analyst, so they cannot carry private data out. Capped per run;
  /// excess messages are dropped and counted as violations.
  Status SendToManager(const std::string& message);

  /// Messages accepted by the forwarding agent this run.
  const std::vector<std::string>& forwarded_messages() const {
    return forwarded_;
  }

  /// Number of policy denials this run has incurred (observable by the
  /// trusted runtime, not by the analyst).
  std::size_t violation_count() const { return violation_count_; }

 private:
  ChamberPolicy policy_;
  std::map<std::string, std::string> scratch_;
  std::size_t scratch_bytes_ = 0;
  std::size_t violation_count_ = 0;
  std::vector<std::string> forwarded_;
};

/// Outcome of one chamber execution, reported to the trusted runtime only.
struct ChamberRun {
  /// The program's output — or the fallback if the run failed, overran its
  /// deadline, or returned the wrong dimension.
  Row output;
  /// True when the output is the fallback rather than the program's.
  bool used_fallback = false;
  /// True when the run was abandoned for exceeding the deadline.
  bool deadline_exceeded = false;
  /// MAC denials incurred (for auditing; the run itself continues, the
  /// forbidden operation simply fails, as with a real AppArmor profile).
  std::size_t policy_violations = 0;
  /// Error returned by the program, if any.
  Status program_status;
  /// Messages the program sent through the forwarding agent — visible to
  /// the trusted operator only, never part of the released output.
  std::vector<std::string> forwarded_messages;
  /// Wall-clock duration observed by the *runtime* (includes padding).
  std::chrono::nanoseconds elapsed{0};
  /// Exact rusage of the forked child, captured by wait4(2) when the run
  /// used process isolation; all zero for in-thread chambers.
  std::int64_t child_user_cpu_ns = 0;
  std::int64_t child_sys_cpu_ns = 0;
  std::int64_t child_max_rss_kb = 0;
};

/// Runs untrusted programs under a ChamberPolicy.
class ExecutionChamber {
 public:
  explicit ExecutionChamber(ChamberPolicy policy) : policy_(policy) {}

  /// Executes a fresh instance from `factory` on `block`. `fallback` must
  /// have the program's declared output dimension; it is released in place
  /// of the program output whenever the run cannot be trusted. Never
  /// returns an error status for *program* misbehaviour — misbehaviour is
  /// converted into the fallback, keeping the aggregate's sensitivity
  /// analysis intact. Errors only on caller bugs (e.g. fallback dimension
  /// mismatch).
  Result<ChamberRun> Execute(const ProgramFactory& factory,
                             const Dataset& block, const Row& fallback) const;

  const ChamberPolicy& policy() const { return policy_; }

 private:
  ChamberPolicy policy_;
};

}  // namespace gupt

#endif  // GUPT_EXEC_CHAMBER_H_
