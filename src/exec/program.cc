#include "exec/program.h"

#include <utility>

namespace gupt {

Result<Row> AnalysisProgram::RunWithServices(const Dataset& block,
                                             ChamberServices* /*services*/) {
  return Run(block);
}

namespace {

class LambdaProgram final : public AnalysisProgram {
 public:
  LambdaProgram(std::string name, std::size_t output_dims,
                std::function<Result<Row>(const Dataset&)> fn)
      : name_(std::move(name)), output_dims_(output_dims), fn_(std::move(fn)) {}

  Result<Row> Run(const Dataset& block) override { return fn_(block); }
  std::size_t output_dims() const override { return output_dims_; }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::size_t output_dims_;
  std::function<Result<Row>(const Dataset&)> fn_;
};

}  // namespace

ProgramFactory MakeProgramFactory(
    std::string name, std::size_t output_dims,
    std::function<Result<Row>(const Dataset&)> fn) {
  return [name = std::move(name), output_dims, fn = std::move(fn)]() {
    return std::make_unique<LambdaProgram>(name, output_dims, fn);
  };
}

}  // namespace gupt
