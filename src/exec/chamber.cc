#include "exec/chamber.h"

#include <future>
#include <memory>
#include <thread>
#include <utility>

#include "testing/failpoints/failpoints.h"

namespace gupt {

Status ChamberServices::WriteScratch(const std::string& key,
                                     const std::string& value) {
  std::size_t delta = key.size() + value.size();
  auto it = scratch_.find(key);
  std::size_t reclaimed =
      (it == scratch_.end()) ? 0 : key.size() + it->second.size();
  if (scratch_bytes_ - reclaimed + delta > policy_.scratch_limit_bytes) {
    ++violation_count_;
    return Status::PolicyViolation("scratch space limit exceeded");
  }
  scratch_bytes_ = scratch_bytes_ - reclaimed + delta;
  scratch_[key] = value;
  return Status::OK();
}

Result<std::string> ChamberServices::ReadScratch(const std::string& key) const {
  auto it = scratch_.find(key);
  if (it == scratch_.end()) {
    return Status::NotFound("no scratch entry for key: " + key);
  }
  return it->second;
}

Status ChamberServices::OpenNetworkConnection(const std::string& endpoint) {
  ++violation_count_;
  return Status::PolicyViolation(
      "MAC profile denies all network activity (attempted: " + endpoint + ")");
}

Status ChamberServices::SendToPeerChamber(const std::string& peer,
                                          const std::string& /*message*/) {
  ++violation_count_;
  return Status::PolicyViolation(
      "MAC profile denies inter-chamber IPC (attempted peer: " + peer + ")");
}

Status ChamberServices::SendToManager(const std::string& message) {
  if (forwarded_.size() >= policy_.max_forwarded_messages) {
    ++violation_count_;
    return Status::PolicyViolation("forwarding-agent message cap exceeded");
  }
  forwarded_.push_back(message);
  return Status::OK();
}

namespace {

/// Everything a (possibly abandoned) run needs to own so that a timed-out
/// worker thread can keep running safely after the chamber has moved on.
/// Deadline runs own a private copy of the block; inline runs (no
/// deadline, same thread) borrow the caller's block to avoid the copy —
/// the program only ever sees a const view either way.
struct RunState {
  Dataset owned_block;
  const Dataset* block = nullptr;
  ChamberPolicy policy;
  std::shared_ptr<AnalysisProgram> program;
  std::promise<void> done;
  Result<Row> result = Status::Internal("run never executed");
  std::size_t violations = 0;
  std::vector<std::string> forwarded;
};

void RunProgram(const std::shared_ptr<RunState>& state) {
  {
    // Fault site: simulates a misbehaving program without needing one.
    // Fires in the worker thread, so an injected delay consumes the
    // chamber deadline exactly as a hung program would; an in-thread
    // chamber cannot crash safely, so kCrash degrades to the error path
    // (the program-status → fallback route the paper prescribes).
    if (failpoints::Eval("exec.chamber.program") !=
        failpoints::FireAction::kNone) {
      state->result = Status::PolicyViolation(
          failpoints::InjectedMessage("exec.chamber.program"));
      state->done.set_value();
      return;
    }
    ChamberServices services(state->policy);
    // Untrusted code must not bring the runtime down: an escaping
    // exception from a detached worker would std::terminate the process,
    // which is itself a denial-of-service channel. Convert to a fallback.
    try {
      state->result =
          state->program->RunWithServices(*state->block, &services);
    } catch (const std::exception& e) {
      state->result = Status::PolicyViolation(
          std::string("program threw an exception: ") + e.what());
    } catch (...) {
      state->result =
          Status::PolicyViolation("program threw a non-standard exception");
    }
    state->violations = services.violation_count();
    state->forwarded = services.forwarded_messages();
    // Scratch space is wiped here: `services` (the run's entire externally
    // visible state) dies with this scope, mirroring the emptied temp dir.
  }
  state->done.set_value();
}

}  // namespace

Result<ChamberRun> ExecutionChamber::Execute(const ProgramFactory& factory,
                                             const Dataset& block,
                                             const Row& fallback) const {
  GUPT_FAILPOINT_STATUS("exec.chamber.entry");
  if (!factory) {
    return Status::InvalidArgument("program factory is null");
  }
  std::unique_ptr<AnalysisProgram> program = factory();
  if (!program) {
    return Status::InvalidArgument("program factory returned null");
  }
  const std::size_t dims = program->output_dims();
  if (dims == 0) {
    return Status::InvalidArgument("program declares zero output dimensions");
  }
  if (fallback.size() != dims) {
    return Status::InvalidArgument(
        "fallback dimension does not match program output dimension");
  }

  ChamberRun run;
  const auto start = std::chrono::steady_clock::now();

  auto state = std::make_shared<RunState>();
  state->policy = policy_;
  state->program = std::move(program);
  std::future<void> done = state->done.get_future();

  bool finished;
  if (policy_.deadline.count() > 0) {
    // Run on a detached worker so an overrunning (even non-terminating)
    // program can be abandoned. The worker owns `state` — including a
    // private copy of the block — and touches nothing else, so
    // abandonment is safe; its output is never observed.
    state->owned_block = block;
    state->block = &state->owned_block;
    std::thread([state] { RunProgram(state); }).detach();
    finished = done.wait_for(policy_.deadline) == std::future_status::ready;
  } else {
    state->block = &block;
    RunProgram(state);
    done.wait();
    finished = true;
  }

  if (!finished) {
    run.deadline_exceeded = true;
    run.used_fallback = true;
    run.output = fallback;
    run.program_status =
        Status::DeadlineExceeded("block computation exceeded cycle budget");
  } else {
    run.policy_violations = state->violations;
    run.forwarded_messages = std::move(state->forwarded);
    run.program_status = state->result.status();
    if (!state->result.ok()) {
      run.used_fallback = true;
      run.output = fallback;
    } else if (state->result.value().size() != dims) {
      // Wrong output arity would break the aggregation (and could itself
      // leak); substitute the fallback, as §8.1 prescribes clamping/padding.
      run.used_fallback = true;
      run.output = fallback;
      run.program_status = Status::PolicyViolation(
          "program returned " + std::to_string(state->result.value().size()) +
          " dims, declared " + std::to_string(dims));
    } else {
      run.output = std::move(state->result).value();
    }
  }

  if (policy_.pad_to_deadline && policy_.deadline.count() > 0) {
    // Make the observable duration data-independent (timing defence).
    std::this_thread::sleep_until(start + policy_.deadline);
  }
  run.elapsed = std::chrono::steady_clock::now() - start;
  GUPT_FAILPOINT_STATUS("exec.chamber.exit");
  return run;
}

}  // namespace gupt
