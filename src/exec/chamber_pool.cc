#include "exec/chamber_pool.h"

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>

#include "obs/prof/profiler.h"
#include "testing/failpoints/failpoints.h"

namespace gupt {
namespace {

using Clock = std::chrono::steady_clock;

// Parent -> worker commands. kCmdCrash is the lease crash failpoint made
// real: the worker _exits before writing a response byte, so the parent
// observes the same EOF a genuine mid-lease SIGSEGV would produce.
constexpr std::uint8_t kCmdRun = 1;
constexpr std::uint8_t kCmdCrash = 2;
constexpr std::uint8_t kCmdShutdown = 3;

// Worker -> parent response statuses (a superset of the process-chamber
// frame: workers resolve program tokens themselves and can fail at that).
constexpr std::uint8_t kOk = 1;
constexpr std::uint8_t kProgramError = 2;
constexpr std::uint8_t kDimensionMismatch = 3;
constexpr std::uint8_t kResolverError = 4;

bool WriteFully(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking exact read (worker side — workers have no deadline of their
/// own; the parent enforces deadlines and kills overrunners).
bool ReadFully(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    ssize_t n = ::read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Parent-side exact read honouring an absolute deadline (nullopt = none).
bool ReadFullyWithDeadline(int fd, void* data, std::size_t len,
                           const std::optional<Clock::time_point>& deadline,
                           bool* timed_out) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    int wait_ms = -1;
    if (deadline) {
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          *deadline - Clock::now());
      if (remaining.count() <= 0) {
        *timed_out = true;
        return false;
      }
      wait_ms = static_cast<int>(remaining.count()) + 1;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) {
      *timed_out = true;
      return false;
    }
    ssize_t n = ::read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF: worker died mid-frame
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

std::int64_t TimevalNs(const struct timeval& tv) {
  return static_cast<std::int64_t>(tv.tv_sec) * 1'000'000'000 +
         static_cast<std::int64_t>(tv.tv_usec) * 1'000;
}

}  // namespace

ChamberPool::ChamberPool(ChamberPolicy policy, std::size_t num_workers)
    : policy_(std::move(policy)) {
  slots_.resize(num_workers == 0 ? 1 : num_workers);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  workers_gauge_ = registry.GetGauge(
      "gupt_chamber_pool_workers_count",
      "Live pre-warmed chamber pool workers (leased or idle).");
  spawned_counter_ = registry.GetCounter(
      "gupt_chamber_pool_spawned_total",
      "Pool worker processes forked (initial spawns plus respawns).");
  leases_counter_ = registry.GetCounter(
      "gupt_chamber_pool_leases_total",
      "Blocks dispatched to pooled workers (one lease per block).");
  resets_counter_ = registry.GetCounter(
      "gupt_chamber_pool_resets_total",
      "Clean leases after which the worker was reset and reused.");
  respawns_counter_ = registry.GetCounter(
      "gupt_chamber_pool_respawns_total",
      "Workers discarded (crash, timeout, or reset failpoint) and replaced.");
  shipped_bytes_counter_ = registry.GetCounter(
      "gupt_chamber_pool_shipped_bytes_total",
      "Request-frame bytes shipped to pool workers (tokens plus columns).");
  lease_wait_histogram_ = registry.GetHistogram(
      "gupt_chamber_pool_lease_wait_seconds",
      "Time a block waited for a free pool worker.",
      obs::Histogram::DurationBuckets());
}

ChamberPool::~ChamberPool() { Shutdown(); }

void ChamberPool::SetProgramResolver(ProgramResolver resolver) {
  std::lock_guard<std::mutex> lock(mu_);
  resolver_ = std::move(resolver);
}

[[noreturn]] void ChamberPool::WorkerMain(int request_fd,
                                          int response_fd) const {
  for (;;) {
    std::uint8_t cmd = 0;
    if (!ReadFully(request_fd, &cmd, sizeof(cmd))) ::_exit(0);
    if (cmd == kCmdShutdown) ::_exit(0);
    if (cmd == kCmdCrash) ::_exit(9);

    std::uint32_t token_len = 0;
    std::uint32_t num_dims = 0;
    std::uint32_t expected_dims = 0;
    std::uint64_t num_rows = 0;
    if (!ReadFully(request_fd, &token_len, sizeof(token_len)) ||
        !ReadFully(request_fd, &num_dims, sizeof(num_dims)) ||
        !ReadFully(request_fd, &expected_dims, sizeof(expected_dims)) ||
        !ReadFully(request_fd, &num_rows, sizeof(num_rows))) {
      ::_exit(1);
    }
    std::string token(token_len, '\0');
    if (token_len > 0 && !ReadFully(request_fd, token.data(), token_len)) {
      ::_exit(1);
    }
    std::vector<std::vector<double>> columns(num_dims);
    for (std::uint32_t d = 0; d < num_dims; ++d) {
      columns[d].resize(num_rows);
      if (!ReadFully(request_fd, columns[d].data(),
                     num_rows * sizeof(double))) {
        ::_exit(1);
      }
    }

    struct rusage before;
    struct rusage after;
    std::memset(&before, 0, sizeof(before));
    std::memset(&after, 0, sizeof(after));
    ::getrusage(RUSAGE_SELF, &before);

    std::uint8_t status = kOk;
    std::uint64_t violations = 0;
    Row output;
    Result<ProgramFactory> factory =
        resolver_ ? resolver_(token)
                  : Result<ProgramFactory>(Status::Internal(
                        "chamber pool has no program resolver"));
    if (!factory.ok()) {
      status = kResolverError;
    } else {
      ChamberServices services(policy_);
      Result<Row> result = Status::Internal("never ran");
      try {
        Result<Dataset> block = Dataset::FromColumns(std::move(columns));
        if (!block.ok()) {
          result = block.status();
        } else {
          std::unique_ptr<AnalysisProgram> program = factory.value()();
          result = program->RunWithServices(block.value(), &services);
        }
      } catch (...) {
        result = Status::PolicyViolation("program threw");
      }
      violations = static_cast<std::uint64_t>(services.violation_count());
      if (!result.ok()) {
        status = kProgramError;
      } else if (result.value().size() != expected_dims) {
        status = kDimensionMismatch;
      } else {
        output = std::move(result).value();
      }
    }

    ::getrusage(RUSAGE_SELF, &after);
    // Per-lease rusage delta reported by the worker itself: the parent
    // cannot wait4() a worker that stays alive across leases. Max RSS is a
    // process high-water mark, not a delta.
    std::int64_t cpu_user_ns =
        TimevalNs(after.ru_utime) - TimevalNs(before.ru_utime);
    std::int64_t cpu_sys_ns =
        TimevalNs(after.ru_stime) - TimevalNs(before.ru_stime);
    std::int64_t max_rss_kb = static_cast<std::int64_t>(after.ru_maxrss);

    bool ok = WriteFully(response_fd, &status, sizeof(status)) &&
              WriteFully(response_fd, &violations, sizeof(violations)) &&
              WriteFully(response_fd, &cpu_user_ns, sizeof(cpu_user_ns)) &&
              WriteFully(response_fd, &cpu_sys_ns, sizeof(cpu_sys_ns)) &&
              WriteFully(response_fd, &max_rss_kb, sizeof(max_rss_kb));
    if (ok && status == kOk) {
      auto n = static_cast<std::uint64_t>(output.size());
      ok = WriteFully(response_fd, &n, sizeof(n)) &&
           WriteFully(response_fd, output.data(), n * sizeof(double));
    }
    if (!ok) ::_exit(1);
  }
}

Status ChamberPool::SpawnSlotLocked(std::size_t slot) {
  GUPT_FAILPOINT_STATUS("exec.pool.spawn");
  int to_child[2];
  int from_child[2];
  if (::pipe(to_child) != 0) {
    return Status::Internal("pipe() failed: " +
                            std::string(std::strerror(errno)));
  }
  if (::pipe(from_child) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    return Status::Internal("pipe() failed: " +
                            std::string(std::strerror(errno)));
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    return Status::Internal("fork() failed: " +
                            std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    ::close(to_child[1]);
    ::close(from_child[0]);
    WorkerMain(to_child[0], from_child[1]);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  Worker& w = slots_[slot];
  w.pid = pid;
  w.to_child = to_child[1];
  w.from_child = from_child[0];
  w.alive = true;
  free_slots_.push_back(slot);
  ++stats_.spawned;
  ++stats_.workers_alive;
  spawned_counter_->Increment();
  workers_gauge_->Set(static_cast<double>(stats_.workers_alive));
  return Status::OK();
}

void ChamberPool::DiscardSlotLocked(std::size_t slot, bool kill) {
  Worker& w = slots_[slot];
  if (!w.alive) return;
  if (kill) ::kill(w.pid, SIGKILL);
  ::close(w.to_child);
  ::close(w.from_child);
  while (::waitpid(w.pid, nullptr, 0) < 0 && errno == EINTR) {
  }
  w.pid = -1;
  w.to_child = -1;
  w.from_child = -1;
  w.alive = false;
  --stats_.workers_alive;
  workers_gauge_->Set(static_cast<double>(stats_.workers_alive));
}

Status ChamberPool::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return Status::InvalidArgument("chamber pool already started");
  // Writes to a worker that died mid-lease must surface as EPIPE on the
  // write, not kill the whole service.
  ::signal(SIGPIPE, SIG_IGN);
  for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
    // A failed spawn (exec.pool.spawn, ENOMEM, ...) leaves the slot dead;
    // it is retried at the next lease. Only a pool with zero live workers
    // is unusable.
    (void)SpawnSlotLocked(slot);
  }
  if (free_slots_.empty()) {
    return Status::Internal("chamber pool failed to spawn any worker");
  }
  started_ = true;
  return Status::OK();
}

void ChamberPool::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return;
  shutdown_ = true;
  for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
    Worker& w = slots_[slot];
    if (!w.alive) continue;
    std::uint8_t cmd = kCmdShutdown;
    (void)WriteFully(w.to_child, &cmd, sizeof(cmd));
    DiscardSlotLocked(slot, /*kill=*/false);
  }
  worker_free_.notify_all();
}

int ChamberPool::LeaseSlotLocked(std::unique_lock<std::mutex>* lock) {
  for (;;) {
    if (shutdown_) return -1;
    if (!free_slots_.empty()) {
      std::size_t slot = free_slots_.back();
      free_slots_.pop_back();
      ++leased_count_;
      return static_cast<int>(slot);
    }
    // Revive dead slots before waiting: a crashed worker's slot is
    // respawned lazily, here, by whichever lease needs it next.
    bool revived = false;
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
      if (!slots_[slot].alive &&
          SpawnSlotLocked(slot).ok()) {
        ++stats_.respawns;
        respawns_counter_->Increment();
        revived = true;
        break;
      }
    }
    if (revived) continue;
    if (leased_count_ == 0) return -1;  // nothing running, nothing leasable
    worker_free_.wait(*lock);
  }
}

Result<ChamberRun> ChamberPool::Execute(const std::string& program_token,
                                        const DatasetView& block,
                                        const Row& fallback) {
  if (fallback.empty()) {
    return Status::InvalidArgument("fallback must be non-empty");
  }
  if (block.num_rows() == 0 || block.num_dims() == 0) {
    return Status::InvalidArgument("pooled execution needs a non-empty block");
  }
  obs::prof::ScopedStageTag stage_tag("chamber_pool");

  const auto start = Clock::now();
  std::optional<Clock::time_point> deadline;
  if (policy_.deadline.count() > 0) {
    deadline = start + policy_.deadline;
  }

  ChamberRun run;
  auto finish = [&](ChamberRun&& r) -> Result<ChamberRun> {
    if (policy_.pad_to_deadline && deadline) {
      std::this_thread::sleep_until(*deadline);
    }
    r.elapsed = Clock::now() - start;
    return std::move(r);
  };

  // The lease verdict is drawn parent-side (like the process chamber's
  // pre-fork verdict): kError substitutes the fallback without touching a
  // worker; kCrash sends kCmdCrash so the worker dies for real and the
  // whole EOF -> fallback -> respawn path is exercised.
  failpoints::Outcome lease_fp = failpoints::EvalDetailed("exec.pool.lease");
  if (lease_fp.fired && lease_fp.delay.count() > 0) {
    std::this_thread::sleep_for(lease_fp.delay);
  }
  if (lease_fp.fired && lease_fp.action == failpoints::FireAction::kError) {
    run.used_fallback = true;
    run.output = fallback;
    run.program_status =
        Status::Internal(failpoints::InjectedMessage("exec.pool.lease"));
    return finish(std::move(run));
  }
  const bool inject_crash =
      lease_fp.fired && lease_fp.action == failpoints::FireAction::kCrash;

  int slot = -1;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_) {
      return Status::InvalidArgument("chamber pool is not started");
    }
    slot = LeaseSlotLocked(&lock);
    if (slot < 0) {
      return Status::Internal("chamber pool has no leasable worker");
    }
    ++stats_.leases;
  }
  leases_counter_->Increment();
  lease_wait_histogram_->Observe(
      std::chrono::duration<double>(Clock::now() - start).count());
  Worker& w = slots_[static_cast<std::size_t>(slot)];  // stable after Start

  // Ship the request frame. A failed write means the worker is already
  // dead (EPIPE); that is the same story as EOF below.
  bool shipped = false;
  std::uint64_t frame_bytes = 0;
  {
    std::uint8_t cmd = inject_crash ? kCmdCrash : kCmdRun;
    shipped = WriteFully(w.to_child, &cmd, sizeof(cmd));
    frame_bytes += sizeof(cmd);
    if (shipped && !inject_crash) {
      auto token_len = static_cast<std::uint32_t>(program_token.size());
      auto num_dims = static_cast<std::uint32_t>(block.num_dims());
      auto expected_dims = static_cast<std::uint32_t>(fallback.size());
      auto num_rows = static_cast<std::uint64_t>(block.num_rows());
      shipped = WriteFully(w.to_child, &token_len, sizeof(token_len)) &&
                WriteFully(w.to_child, &num_dims, sizeof(num_dims)) &&
                WriteFully(w.to_child, &expected_dims, sizeof(expected_dims)) &&
                WriteFully(w.to_child, &num_rows, sizeof(num_rows)) &&
                WriteFully(w.to_child, program_token.data(), token_len);
      frame_bytes += sizeof(token_len) + sizeof(num_dims) +
                     sizeof(expected_dims) + sizeof(num_rows) + token_len;
      for (std::size_t d = 0; shipped && d < block.num_dims(); ++d) {
        shipped = WriteFully(w.to_child, block.col(d),
                             block.num_rows() * sizeof(double));
        frame_bytes += block.num_rows() * sizeof(double);
      }
    }
  }
  stats_.shipped_bytes += frame_bytes;
  shipped_bytes_counter_->Increment(static_cast<double>(frame_bytes));

  // Read the response under the deadline (when shipping already failed we
  // skip straight to the crash handling below).
  std::uint8_t status = 0;
  std::uint64_t violations = 0;
  std::int64_t cpu_user_ns = 0;
  std::int64_t cpu_sys_ns = 0;
  std::int64_t max_rss_kb = 0;
  bool timed_out = false;
  bool frame_ok = shipped;
  Row output;
  if (frame_ok) {
    frame_ok =
        ReadFullyWithDeadline(w.from_child, &status, sizeof(status), deadline,
                              &timed_out) &&
        ReadFullyWithDeadline(w.from_child, &violations, sizeof(violations),
                              deadline, &timed_out) &&
        ReadFullyWithDeadline(w.from_child, &cpu_user_ns, sizeof(cpu_user_ns),
                              deadline, &timed_out) &&
        ReadFullyWithDeadline(w.from_child, &cpu_sys_ns, sizeof(cpu_sys_ns),
                              deadline, &timed_out) &&
        ReadFullyWithDeadline(w.from_child, &max_rss_kb, sizeof(max_rss_kb),
                              deadline, &timed_out);
  }
  if (frame_ok && status == kOk) {
    std::uint64_t n = 0;
    frame_ok = ReadFullyWithDeadline(w.from_child, &n, sizeof(n), deadline,
                                     &timed_out) &&
               n == fallback.size();
    if (frame_ok) {
      output.resize(n);
      frame_ok = ReadFullyWithDeadline(w.from_child, output.data(),
                                       n * sizeof(double), deadline,
                                       &timed_out);
    }
  }

  const bool worker_healthy = frame_ok && !timed_out;
  bool discard = !worker_healthy;
  if (worker_healthy) {
    // exec.pool.reset: the reset-and-reuse step fails — the answer is
    // kept, but the worker is discarded instead of returning to the free
    // list, forcing the respawn path without losing a block.
    if (failpoints::Eval("exec.pool.reset") != failpoints::FireAction::kNone) {
      discard = true;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    --leased_count_;
    if (discard) {
      DiscardSlotLocked(static_cast<std::size_t>(slot),
                        /*kill=*/timed_out || !frame_ok);
    } else {
      ++stats_.resets;
      resets_counter_->Increment();
      free_slots_.push_back(static_cast<std::size_t>(slot));
    }
  }
  worker_free_.notify_one();

  run.policy_violations = static_cast<std::size_t>(violations);
  run.child_user_cpu_ns = cpu_user_ns;
  run.child_sys_cpu_ns = cpu_sys_ns;
  run.child_max_rss_kb = max_rss_kb;
  if (timed_out) {
    run.deadline_exceeded = true;
    run.used_fallback = true;
    run.output = fallback;
    run.policy_violations = 0;  // the partial frame is not trustworthy
    run.child_user_cpu_ns = 0;
    run.child_sys_cpu_ns = 0;
    run.child_max_rss_kb = 0;
    run.program_status =
        Status::DeadlineExceeded("pooled block exceeded cycle budget");
  } else if (!frame_ok) {
    run.used_fallback = true;
    run.output = fallback;
    run.policy_violations = 0;
    run.child_user_cpu_ns = 0;
    run.child_sys_cpu_ns = 0;
    run.child_max_rss_kb = 0;
    run.program_status = Status::PolicyViolation(
        "pool worker crashed or sent a malformed frame");
  } else if (status == kOk) {
    run.output = std::move(output);
    run.program_status = Status::OK();
  } else {
    run.used_fallback = true;
    run.output = fallback;
    if (status == kDimensionMismatch) {
      run.program_status =
          Status::PolicyViolation("pooled program returned wrong arity");
    } else if (status == kResolverError) {
      run.program_status =
          Status::Internal("pool worker could not resolve program token");
    } else {
      run.program_status =
          Status::NumericalError("pooled program reported an error");
    }
  }
  return finish(std::move(run));
}

ChamberPoolStats ChamberPool::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace gupt
