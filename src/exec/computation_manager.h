// Computation manager: schedules per-block executions across the cluster.
//
// In the paper (§3.1, §6) the computation manager is split into a server
// component (user-facing: accepts the program and pipes dataset blocks to
// computation instances) and a trusted client component on every cluster
// node (instantiates the chamber, restricts IPC to itself). Here the
// "cluster" is a thread pool: each worker thread plays one node's trusted
// client, and the server side is this class.

#ifndef GUPT_EXEC_COMPUTATION_MANAGER_H_
#define GUPT_EXEC_COMPUTATION_MANAGER_H_

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "data/partitioner.h"
#include "exec/chamber.h"
#include "exec/chamber_pool.h"
#include "exec/program.h"
#include "obs/metrics.h"

namespace gupt {

/// Where and when one block ran, for cross-thread trace export. The
/// worker id is ThreadPool::CurrentWorkerId() on the executing thread
/// (0 = the fan-out ran sequentially on the coordinator).
struct BlockTiming {
  int worker_id = 0;
  std::chrono::steady_clock::time_point start{};
  std::chrono::steady_clock::time_point end{};
};

/// Aggregate of one fan-out over all blocks.
struct BlockExecutionReport {
  /// Per-block outcomes, indexed like the BlockPlan's blocks.
  std::vector<ChamberRun> runs;
  /// Per-block scheduling facts, indexed like `runs`.
  std::vector<BlockTiming> timings;
  std::size_t fallback_count = 0;
  std::size_t deadline_exceeded_count = 0;
  std::size_t policy_violation_count = 0;
  /// Summed rusage of all process-chamber children in the fan-out (zero
  /// for in-thread chambers); max_rss is the largest single child.
  std::int64_t child_user_cpu_ns = 0;
  std::int64_t child_sys_cpu_ns = 0;
  std::int64_t child_max_rss_kb = 0;

  /// Just the per-block outputs, in block order.
  std::vector<Row> Outputs() const;
};

class ComputationManager {
 public:
  /// `pool` may be null, in which case blocks run sequentially on the
  /// calling thread (useful for deterministic tests and micro-benchmarks).
  /// `chamber_pool` (not owned, may be null) enables pre-warmed pooled
  /// execution for programs that carry a pool token.
  ComputationManager(ThreadPool* pool, ChamberPolicy policy,
                     ChamberPool* chamber_pool = nullptr);

  /// Executes a fresh instance of the program on every block of `blocks`
  /// inside a chamber. Blocks are zero-copy views into the BlockSet's
  /// gathered store. `fallback` is the constant substituted for
  /// failed/overrun blocks and must match the program's output dimension.
  /// When this manager has a chamber pool and `pool_token` is non-empty,
  /// blocks run on pre-warmed pool workers (the token is resolved inside
  /// the worker); otherwise the in-process or fork-per-block chamber runs
  /// `factory` directly.
  Result<BlockExecutionReport> ExecuteOnBlocks(const ProgramFactory& factory,
                                               const BlockSet& blocks,
                                               const Row& fallback,
                                               const std::string& pool_token =
                                                   std::string()) const;

  /// Compatibility shim: gathers `plan`'s blocks out of `dataset` (one
  /// copy total) and runs them as above.
  Result<BlockExecutionReport> ExecuteOnBlocks(const ProgramFactory& factory,
                                               const Dataset& dataset,
                                               const BlockPlan& plan,
                                               const Row& fallback) const;

  /// Runs the program once over an explicit dataset (no partitioning) in a
  /// single chamber. Used for whole-dataset baselines and the aged slice.
  Result<ChamberRun> ExecuteOnce(const ProgramFactory& factory,
                                 const Dataset& dataset,
                                 const Row& fallback) const;

  const ChamberPolicy& policy() const { return chamber_.policy(); }

 private:
  ThreadPool* pool_;  // not owned; null => sequential
  ChamberPool* chamber_pool_;  // not owned; null => no pooled execution
  ExecutionChamber chamber_;

  // Observability handles (process-global registry). Per-block chamber
  // latencies are observed by the coordinating thread after the fan-out
  // joins, from each ChamberRun's own elapsed clock.
  obs::Histogram* block_duration_histogram_;
  obs::Counter* blocks_ok_counter_;
  obs::Counter* blocks_fallback_counter_;
  obs::Counter* deadline_counter_;
  obs::Counter* violation_counter_;
  obs::Counter* child_user_cpu_counter_;
  obs::Counter* child_sys_cpu_counter_;
  obs::Gauge* child_max_rss_gauge_;
};

}  // namespace gupt

#endif  // GUPT_EXEC_COMPUTATION_MANAGER_H_
