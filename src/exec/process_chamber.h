// Process-level execution chamber (POSIX fork-based).
//
// The in-process ExecutionChamber models the paper's sandbox with
// fresh-instance isolation, which a *cooperating* program respects but a
// malicious native program could evade through globals. This backend runs
// each block computation in a forked child process — the real thing:
//
//   * State attacks:  the child has its own address space; even mutations
//     to global/static variables are invisible to later runs.
//   * Timing attacks: a child that overruns its cycle budget is SIGKILLed
//     — actually terminated, not abandoned.
//   * Crash containment: a child that segfaults or aborts merely yields
//     the fallback output.
//
// The child reports its output over a pipe as a tiny length-prefixed
// frame; nothing else crosses the boundary. Caveat (documented, standard
// for fork-based sandboxes): forking from a multi-threaded parent is only
// safe when the child avoids acquiring locks another thread may hold, so
// drive this backend from a single-threaded computation manager (the
// default `num_workers = 0`), as the tests and benches do.

#ifndef GUPT_EXEC_PROCESS_CHAMBER_H_
#define GUPT_EXEC_PROCESS_CHAMBER_H_

#include "exec/chamber.h"

namespace gupt {

/// Fork-based chamber with the same contract as ExecutionChamber::Execute.
/// `policy.deadline` of zero means wait indefinitely; `pad_to_deadline`
/// pads the parent-observed duration exactly as the in-process chamber
/// does. Policy violations inside the child are reported in the frame.
class ProcessChamber {
 public:
  explicit ProcessChamber(ChamberPolicy policy) : policy_(policy) {}

  Result<ChamberRun> Execute(const ProgramFactory& factory,
                             const Dataset& block, const Row& fallback) const;

  const ChamberPolicy& policy() const { return policy_; }

 private:
  ChamberPolicy policy_;
};

}  // namespace gupt

#endif  // GUPT_EXEC_PROCESS_CHAMBER_H_
